// Runtime-dispatched SIMD kernels for the θ_hm pruning hot loops.
//
// The pruned clustering path evaluates a cheap bin-L1 lower bound over dense
// per-cluster grid histograms before paying for an exact EMD resolution; that
// inner loop is a pure Σ|a[i] - b[i]| sweep over contiguous doubles and
// vectorizes perfectly. The kernel is selected once per process at first use:
// an AVX2 implementation (compiled with a per-function target attribute, so
// the rest of the build stays baseline-ISA) when the CPU supports it, the
// scalar loop otherwise.
//
// Determinism note: the AVX2 sum reassociates additions, so l1_distance is
// NOT guaranteed bit-identical to the scalar loop across machines. It is
// deterministic within a process (one dispatch decision, same instruction
// sequence every call), which is all the pruning layer needs — the bound only
// gates which pairs pay the exact kernel, it never feeds a verdict, and the
// caller applies an admissibility margin that absorbs the rounding
// difference. Verdict-bearing kernels (emd_1d_presorted, FlatBinSet::l1)
// deliberately do not use this function.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tradeplot::stats::simd {

/// Σ|a[i] - b[i]| over n contiguous doubles. AVX2 when available at runtime,
/// scalar otherwise; deterministic within a process.
[[nodiscard]] double l1_distance(const double* a, const double* b, std::size_t n);

/// True when the process dispatched l1_distance to the AVX2 kernel
/// (reported by bench_cluster so JSON trajectories note the ISA).
[[nodiscard]] bool using_avx2();

// Integer column reductions for the columnar flow-batch scans (FlowBatch
// counter/state columns, bench_io's feature-scan profile). Unlike the
// floating-point kernels above, integer addition is exactly associative, so
// these are bit-identical to the scalar loops on every machine and are safe
// in verdict-bearing paths.

/// Σ a[i] over n contiguous u64 (wrapping, like the scalar loop would).
[[nodiscard]] std::uint64_t sum_u64(const std::uint64_t* a, std::size_t n);

/// Number of nonzero bytes in a[0..n).
[[nodiscard]] std::size_t count_nonzero_u8(const std::uint8_t* a, std::size_t n);

// Clustering-scan kernels. Unlike l1_distance, BOTH kernels below are
// bit-identical to their scalar loops on every machine, so they are safe in
// verdict-bearing paths:
//  - pivot_interval_sweep uses only elementwise sub/add/abs and max/min
//    reductions. Each elementwise op is a single IEEE operation (exact same
//    rounding in scalar and vector form), and max/min over non-NaN doubles
//    are exactly associative and commutative, so the reduction order the
//    vector form uses cannot change any output bit. (The inputs here are
//    nonnegative distances, so the one max/min caveat — which operand of a
//    ±0.0 tie survives — cannot arise.)
//  - emd_sweep_x4 runs four independent merge sweeps in the four vector
//    lanes; each lane replays the exact floating-point operation sequence of
//    emd_1d_presorted (same sub/mul/add per step, ties broken identically),
//    with exhausted lanes frozen by masking their per-step contributions to
//    +0.0 — which leaves a nonnegative accumulator bit-unchanged.

/// Pass-1 interval sweep over column-major pivot storage. For each row
/// k in [0, count):
///   lo[k] = max_p |cols[p*stride + k] - top[p]|   (0.0 when pivots == 0)
///   hi[k] = min_p (cols[p*stride + k] + top[p])   (+inf when pivots == 0)
/// Rows poisoned with +inf yield lo = hi = +inf (self-eliminating on the
/// lower bound, inert on the upper bound). Bit-identical scalar vs AVX2.
void pivot_interval_sweep(const double* cols, std::size_t stride, std::size_t pivots,
                          const double* top, std::size_t count, double* lo, double* hi);

/// Pass-1 margin application over the interval sweep's output, in place:
///   lo[k] = lo[k] * (1 - 1e-9) - 1e-12    (the admissible under-margin)
///   hi[k] = hi[k] * (1 + 1e-9) + 1e-12    (the admissible over-margin)
/// Returns min_k hi[k] (+inf when n == 0) — the scan's elimination
/// threshold. Elementwise mul/sub/add are one IEEE operation each (same
/// rounding scalar or vector), and the min reduction runs over strictly
/// positive or +inf values (no NaN, no ±0 tie), so it is exactly
/// associative: bit-identical scalar vs AVX2. +inf-poisoned rows stay +inf
/// and never win the min.
[[nodiscard]] double margin_min_sweep(double* lo, double* hi, std::size_t n);

/// Index compress: writes k (ascending) to out for every v[k] <= threshold,
/// returns how many were written. out must hold n entries. A pure IEEE
/// comparison per element — trivially bit-identical scalar vs AVX2 (+inf
/// entries never pass a finite threshold; NaN never passes). The clustering
/// scan uses it to turn the O(n) branchy survivor walk into a compare mask
/// plus a sparse index scan.
[[nodiscard]] std::size_t filter_le(const double* v, std::size_t n, double threshold,
                                    std::uint32_t* out);

/// Four presorted-EMD merge sweeps at once over FlatSignatureSet-style
/// storage: lane l sweeps the slice pair
///   a_l = (positions + a_off[l], weights + a_off[l], a_len[l])
///   b_l = (positions + b_off[l], weights + b_off[l], b_len[l])
/// and out[l] receives a value bit-identical to emd_1d_presorted(a_l, b_l).
/// Every lane must have a_len/b_len >= 1 and the one-past-end +inf sentinel
/// slot FlatSignatureSet packs after each slice. Always writes out[0..3].
void emd_sweep_x4(const double* positions, const double* weights,
                  const std::uint64_t* a_off, const std::uint64_t* a_len,
                  const std::uint64_t* b_off, const std::uint64_t* b_len, double* out);

}  // namespace tradeplot::stats::simd
