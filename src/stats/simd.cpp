#include "stats/simd.h"

#include <cmath>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TRADEPLOT_X86 1
#else
#define TRADEPLOT_X86 0
#endif

namespace tradeplot::stats::simd {

namespace {

double l1_scalar(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

#if TRADEPLOT_X86

__attribute__((target("avx2"))) double l1_avx2(const double* a, const double* b,
                                               std::size_t n) {
  // |x| as a bitmask clear of the sign bit; four accumulators hide the
  // vaddpd latency on the 4-wide lanes.
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign_mask, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_andnot_pd(sign_mask, d1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign_mask, d));
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double sum = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

bool detect_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif

std::uint64_t sum_u64_scalar(const std::uint64_t* a, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += a[i];
  return sum;
}

std::size_t count_nonzero_u8_scalar(const std::uint8_t* a, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += a[i] != 0;
  return count;
}

#if TRADEPLOT_X86

__attribute__((target("avx2"))) std::uint64_t sum_u64_avx2(const std::uint64_t* a,
                                                           std::size_t n) {
  // Two 4-wide accumulators hide the vpaddq latency; u64 addition wraps the
  // same way in every order, so the reassociation is bit-exact.
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_epi64(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    acc1 = _mm256_add_epi64(
        acc1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_add_epi64(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
  }
  const __m256i acc = _mm256_add_epi64(acc0, acc1);
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += a[i];
  return sum;
}

__attribute__((target("avx2"))) std::size_t count_nonzero_u8_avx2(const std::uint8_t* a,
                                                                  std::size_t n) {
  // cmpeq-to-zero + movemask yields one bit per *zero* byte; popcount the
  // mask and subtract from the lane width.
  const __m256i zero = _mm256_setzero_si256();
  std::size_t nonzero = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    nonzero += 32u - static_cast<unsigned>(__builtin_popcount(mask));
  }
  for (; i < n; ++i) nonzero += a[i] != 0;
  return nonzero;
}

#endif

using Kernel = double (*)(const double*, const double*, std::size_t);
using SumU64Kernel = std::uint64_t (*)(const std::uint64_t*, std::size_t);
using CountU8Kernel = std::size_t (*)(const std::uint8_t*, std::size_t);

Kernel dispatch() {
#if TRADEPLOT_X86
  if (detect_avx2()) return &l1_avx2;
#endif
  return &l1_scalar;
}

Kernel kernel() {
  static const Kernel k = dispatch();
  return k;
}

SumU64Kernel sum_u64_kernel() {
#if TRADEPLOT_X86
  static const SumU64Kernel k = detect_avx2() ? &sum_u64_avx2 : &sum_u64_scalar;
#else
  static const SumU64Kernel k = &sum_u64_scalar;
#endif
  return k;
}

CountU8Kernel count_nonzero_u8_kernel() {
#if TRADEPLOT_X86
  static const CountU8Kernel k =
      detect_avx2() ? &count_nonzero_u8_avx2 : &count_nonzero_u8_scalar;
#else
  static const CountU8Kernel k = &count_nonzero_u8_scalar;
#endif
  return k;
}

}  // namespace

double l1_distance(const double* a, const double* b, std::size_t n) {
  return kernel()(a, b, n);
}

bool using_avx2() {
#if TRADEPLOT_X86
  return kernel() != &l1_scalar;
#else
  return false;
#endif
}

std::uint64_t sum_u64(const std::uint64_t* a, std::size_t n) {
  return sum_u64_kernel()(a, n);
}

std::size_t count_nonzero_u8(const std::uint8_t* a, std::size_t n) {
  return count_nonzero_u8_kernel()(a, n);
}

}  // namespace tradeplot::stats::simd
