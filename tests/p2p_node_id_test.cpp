#include "p2p/node_id.h"

#include <gtest/gtest.h>

#include <set>

namespace tradeplot::p2p {
namespace {

TEST(NodeId, XorMetricProperties) {
  util::Pcg32 rng(1);
  const NodeId a = NodeId::random(rng);
  const NodeId b = NodeId::random(rng);
  const NodeId c = NodeId::random(rng);
  // d(x,x) = 0.
  EXPECT_EQ(a.distance_to(a), NodeId(0, 0));
  // Symmetry.
  EXPECT_EQ(a.distance_to(b), b.distance_to(a));
  // XOR triangle *equality* relation: d(a,c) = d(a,b) ^ d(b,c).
  const NodeId ab = a.distance_to(b);
  const NodeId bc = b.distance_to(c);
  EXPECT_EQ(a.distance_to(c), NodeId(ab.hi() ^ bc.hi(), ab.lo() ^ bc.lo()));
}

TEST(NodeId, HighestBit) {
  EXPECT_EQ(NodeId(0, 0).highest_bit(), -1);
  EXPECT_EQ(NodeId(0, 1).highest_bit(), 0);
  EXPECT_EQ(NodeId(0, 0x8000000000000000ULL).highest_bit(), 63);
  EXPECT_EQ(NodeId(1, 0).highest_bit(), 64);
  EXPECT_EQ(NodeId(0x8000000000000000ULL, 0).highest_bit(), 127);
}

TEST(NodeId, OrderingMatchesNumericValue) {
  EXPECT_LT(NodeId(0, 1), NodeId(0, 2));
  EXPECT_LT(NodeId(0, 0xffffffffffffffffULL), NodeId(1, 0));
}

TEST(NodeId, HashIsDeterministic) {
  EXPECT_EQ(NodeId::hash("storm"), NodeId::hash("storm"));
  EXPECT_NE(NodeId::hash("storm"), NodeId::hash("nugache"));
  EXPECT_NE(NodeId::hash(""), NodeId::hash("x"));
}

TEST(NodeId, RandomIdsRarelyCollide) {
  util::Pcg32 rng(2);
  std::set<NodeId> seen;
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(seen.insert(NodeId::random(rng)).second);
}

TEST(NodeId, HexFormat) {
  EXPECT_EQ(NodeId(0, 0).to_hex(), "00000000000000000000000000000000");
  EXPECT_EQ(NodeId(0xdeadbeefULL, 0xcafeULL).to_hex(),
            "00000000deadbeef000000000000cafe");
}

}  // namespace
}  // namespace tradeplot::p2p
