# Empty compiler generated dependencies file for fig08_roc_hm.
# This may be replaced when dependencies are built.
