// FindPlotters — the paper's combined detection algorithm (Fig. 4).
//
//   FindPlotters(Λ, S):
//     100: S_vol   <- θ_vol(Λ, S, τ_vol)       (low traffic volume)
//     101: S_churn <- θ_churn(Λ, S, τ_churn)   (low peer churn)
//     102: S_hm    <- θ_hm(Λ, S_vol ∪ S_churn, τ_hm)
//     103: return S_hm
//
// preceded by the initial data-reduction step of §V-A (high failed-
// connection rate), whose output is the S given to lines 100-101. The
// evaluation's operating point is τ_vol = τ_churn = 50th percentile and
// τ_hm = 70th percentile of cluster diameters.
#pragma once

#include "detect/human_machine.h"
#include "detect/tests.h"

namespace tradeplot::detect {

struct FindPlottersConfig {
  DataReductionConfig reduction{};
  VolumeTestConfig volume{.percentile = 0.5};
  ChurnTestConfig churn{.percentile = 0.5};
  HumanMachineConfig human_machine{.diameter_percentile = 0.7};
};

/// Every intermediate set, for the paper's funnel analyses (Figs. 9-10).
struct FindPlottersResult {
  HostSet input;        // S: internal hosts considered
  HostSet reduced;      // after data reduction
  HostSet s_vol;        // θ_vol survivors
  HostSet s_churn;      // θ_churn survivors
  HostSet vol_or_churn; // S_vol ∪ S_churn (input to θ_hm)
  HumanMachineResult hm;
  HostSet plotters;     // final output (== hm.flagged)
};

/// Runs the full pipeline over the features of one detection window. A
/// non-null `cache` is handed to θ_hm so signatures and distance rows of
/// hosts with unchanged timing buffers are reused across windows (see
/// detect/hm_cache.h); the result is bit-identical with and without it.
[[nodiscard]] FindPlottersResult find_plotters(const FeatureMap& features,
                                               const FindPlottersConfig& config = {},
                                               HmCache* cache = nullptr);

}  // namespace tradeplot::detect
