#include "botnet/honeynet.h"

#include <memory>
#include <vector>

#include "p2p/kademlia.h"
#include "simnet/address.h"
#include "simnet/simulation.h"

namespace tradeplot::botnet {

namespace {

// The honeynet's own address block; Overlay re-homes these later.
const simnet::Subnet kHoneynet(simnet::Ipv4(10, 99, 0, 0), 16);

struct HoneynetWorld {
  simnet::Simulation sim;
  simnet::SubnetAllocator alloc;
  netflow::TraceSet trace;
  netflow::AppEnv env;

  HoneynetWorld(double duration, util::Pcg32 rng)
      : alloc({kHoneynet}, rng), trace(0.0, duration) {
    env.sim = &sim;
    env.window_end = duration;
    env.sink = [this](netflow::FlowRecord rec) { trace.add_flow(std::move(rec)); };
    env.external_addr = [this] { return alloc.random_external(); };
  }
};

}  // namespace

netflow::TraceSet generate_storm_trace(const HoneynetConfig& config) {
  util::Pcg32 root(config.seed, 0x5701);
  HoneynetWorld world(config.duration, root.split(1));

  // Build the Overnet overlay the bots draw peers from. A third of the
  // nodes are marked offline up front; StormConfig::dead_peer_frac governs
  // the liveness of the entries each bot actually stores.
  p2p::Overlay overnet;
  util::Pcg32 overlay_rng = root.split(2);
  for (int i = 0; i < config.overnet_size; ++i) {
    p2p::Contact c{p2p::NodeId::random(overlay_rng), world.alloc.random_external(),
                   StormBot::kPort};
    overnet.add_node(c);
    if (overlay_rng.chance(0.33)) overnet.set_online(c.id, false);
  }

  std::vector<std::unique_ptr<StormBot>> bots;
  for (int b = 0; b < config.storm_bots; ++b) {
    const simnet::Ipv4 self = world.alloc.next_internal();
    world.trace.set_truth(self, netflow::HostKind::kStorm);
    bots.push_back(std::make_unique<StormBot>(world.env, self, root.split(100 + b), &overnet,
                                              config.storm));
    bots.back()->start();
  }
  world.sim.run_until(config.duration);
  world.trace.sort_by_time();
  return std::move(world.trace);
}

netflow::TraceSet generate_nugache_trace(const HoneynetConfig& config) {
  util::Pcg32 root(config.seed, 0x76a1);
  HoneynetWorld world(config.duration, root.split(1));

  std::vector<std::unique_ptr<NugacheBot>> bots;
  for (int b = 0; b < config.nugache_bots; ++b) {
    const simnet::Ipv4 self = world.alloc.next_internal();
    world.trace.set_truth(self, netflow::HostKind::kNugache);
    bots.push_back(
        std::make_unique<NugacheBot>(world.env, self, root.split(200 + b), config.nugache));
    bots.back()->start();
  }
  world.sim.run_until(config.duration);
  world.trace.sort_by_time();
  return std::move(world.trace);
}

}  // namespace tradeplot::botnet
