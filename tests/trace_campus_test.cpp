#include "trace/campus.h"

#include <gtest/gtest.h>

#include <set>

#include "netflow/classifier.h"

namespace tradeplot::trace {
namespace {

CampusConfig small_config(std::uint64_t seed = 3) {
  CampusConfig config;
  config.seed = seed;
  config.window = 3600.0;  // one hour keeps the test fast
  config.web_clients = 40;
  config.idle_hosts = 10;
  config.dns_clients = 5;
  config.ntp_clients = 3;
  config.web_servers = 2;
  config.mail_servers = 2;
  config.scanners = 1;
  config.gnutella_hosts = 4;
  config.emule_hosts = 4;
  config.bittorrent_hosts = 4;
  config.bittorrent_web_only = 1;
  config.kad_overlay_size = 80;
  config.bt_overlay_size = 80;
  return config;
}

TEST(CampusSimulator, PopulationMatchesConfig) {
  const CampusConfig config = small_config();
  const netflow::TraceSet trace = generate_campus_trace(config);
  EXPECT_EQ(trace.hosts_of_kind(netflow::HostKind::kWebClient).size(), 40u);
  EXPECT_EQ(trace.hosts_of_kind(netflow::HostKind::kGnutella).size(), 4u);
  EXPECT_EQ(trace.hosts_of_kind(netflow::HostKind::kEMule).size(), 4u);
  EXPECT_EQ(trace.hosts_of_kind(netflow::HostKind::kBitTorrent).size(), 5u);  // incl. web-only
  EXPECT_EQ(trace.hosts_of_class(netflow::HostClass::kTrader).size(), 13u);
  EXPECT_TRUE(trace.hosts_of_class(netflow::HostClass::kPlotter).empty());
}

TEST(CampusSimulator, FlowsStayInWindowAndAreSorted) {
  const netflow::TraceSet trace = generate_campus_trace(small_config());
  ASSERT_FALSE(trace.flows().empty());
  double prev = 0.0;
  for (const auto& r : trace.flows()) {
    EXPECT_GE(r.start_time, prev);
    EXPECT_LE(r.start_time, trace.window_end());
    prev = r.start_time;
  }
}

TEST(CampusSimulator, EveryFlowTouchesTheCampus) {
  const netflow::TraceSet trace = generate_campus_trace(small_config());
  for (const auto& r : trace.flows()) {
    EXPECT_TRUE(campus_internal(r.src) || campus_internal(r.dst));
    EXPECT_FALSE(campus_internal(r.src) && campus_internal(r.dst))
        << "border monitor should not see internal-to-internal traffic";
  }
}

TEST(CampusSimulator, DeterministicPerSeed) {
  const auto a = generate_campus_trace(small_config(11));
  const auto b = generate_campus_trace(small_config(11));
  const auto c = generate_campus_trace(small_config(12));
  ASSERT_EQ(a.flows().size(), b.flows().size());
  for (std::size_t i = 0; i < a.flows().size(); ++i) EXPECT_EQ(a.flows()[i], b.flows()[i]);
  EXPECT_NE(a.flows().size(), c.flows().size());
}

TEST(CampusSimulator, PayloadClassifierRecoversTraders) {
  // Ground truth via payload inspection, exactly as the paper builds its
  // Trader dataset: every payload-labelled internal host must really be a
  // Trader, and most Traders must be found.
  const netflow::TraceSet trace = generate_campus_trace(small_config(4));
  const auto labels = netflow::PayloadClassifier::label_hosts(trace.flows(), 2);
  std::size_t labelled_traders = 0, mislabelled = 0;
  for (const auto& [ip, label] : labels) {
    if (!campus_internal(ip)) continue;
    if (trace.class_of(ip) == netflow::HostClass::kTrader) {
      ++labelled_traders;
    } else {
      ++mislabelled;
    }
  }
  const auto traders = trace.hosts_of_class(netflow::HostClass::kTrader);
  EXPECT_EQ(mislabelled, 0u);
  EXPECT_GE(labelled_traders, traders.size() * 3 / 4);
}

TEST(CampusSubnets, InternalPredicate) {
  EXPECT_TRUE(campus_internal(simnet::Ipv4(128, 2, 1, 1)));
  EXPECT_TRUE(campus_internal(simnet::Ipv4(128, 237, 200, 9)));
  EXPECT_FALSE(campus_internal(simnet::Ipv4(128, 3, 0, 1)));
  EXPECT_FALSE(campus_internal(simnet::Ipv4(8, 8, 8, 8)));
  EXPECT_EQ(campus_subnets().size(), 2u);
}

}  // namespace
}  // namespace tradeplot::trace
