#include <gtest/gtest.h>

#include <set>

#include "netflow/classifier.h"
#include "p2p/bittorrent.h"
#include "p2p/emule.h"
#include "p2p/gnutella.h"
#include "p2p/kademlia.h"
#include "simnet/simulation.h"

namespace tradeplot::p2p {
namespace {

constexpr double kWindow = 6 * 3600.0;
const simnet::Ipv4 kSelf(128, 2, 0, 7);

struct World {
  simnet::Simulation sim;
  simnet::SubnetAllocator alloc{{simnet::Subnet(simnet::Ipv4(128, 2, 0, 0), 16)},
                                util::Pcg32(4242)};
  std::vector<netflow::FlowRecord> flows;
  Overlay overlay;

  World() {
    util::Pcg32 rng(7);
    for (int i = 0; i < 120; ++i) {
      const Contact c{NodeId::random(rng), alloc.random_external(), 4672};
      overlay.add_node(c);
      if (rng.chance(0.3)) overlay.set_online(c.id, false);
    }
  }

  netflow::AppEnv env() {
    netflow::AppEnv e;
    e.sim = &sim;
    e.window_end = kWindow;
    e.sink = [this](netflow::FlowRecord r) { flows.push_back(std::move(r)); };
    e.external_addr = [this] { return alloc.random_external(); };
    return e;
  }

  void run() { sim.run_until(kWindow); }
};

struct Summary {
  std::size_t initiated = 0;
  std::size_t failed = 0;
  std::size_t inbound = 0;
  std::uint64_t bytes_down = 0;
  std::set<simnet::Ipv4> dsts;
  std::set<netflow::AppLabel> labels;
};

Summary summarize(const std::vector<netflow::FlowRecord>& flows) {
  Summary s;
  for (const auto& r : flows) {
    const auto label = netflow::PayloadClassifier::classify(r);
    if (label != netflow::AppLabel::kUnknown) s.labels.insert(label);
    if (r.src == kSelf) {
      ++s.initiated;
      if (r.failed()) ++s.failed;
      s.dsts.insert(r.dst);
      s.bytes_down += r.bytes_dst;
    } else {
      ++s.inbound;
    }
  }
  return s;
}

TEST(GnutellaHost, ProducesClassifiableFileSharingTraffic) {
  World world;
  GnutellaHost host(world.env(), kSelf, util::Pcg32(1));
  host.start();
  world.run();
  const Summary s = summarize(world.flows);
  ASSERT_GT(s.initiated, 10u);
  EXPECT_TRUE(s.labels.contains(netflow::AppLabel::kGnutella));
  // Stale sources produce a visible failed-connection rate.
  const double failed = static_cast<double>(s.failed) / static_cast<double>(s.initiated);
  EXPECT_GT(failed, 0.15);
  EXPECT_LT(failed, 0.7);
  // Media transfers dominate the byte count.
  EXPECT_GT(s.bytes_down, 10u * 1024 * 1024);
  for (const auto& r : world.flows) {
    EXPECT_LE(r.start_time, kWindow);
    if (r.src == kSelf) EXPECT_EQ(r.dport, GnutellaHost::kPort);
  }
}

TEST(EMuleHost, UsesKadOverlayAndEd2kPorts) {
  World world;
  EMuleHost host(world.env(), kSelf, util::Pcg32(2), &world.overlay);
  host.start();
  world.run();
  const Summary s = summarize(world.flows);
  ASSERT_GT(s.initiated, 20u);
  EXPECT_TRUE(s.labels.contains(netflow::AppLabel::kEMule));
  std::size_t udp_probes = 0;
  for (const auto& r : world.flows) {
    if (r.src != kSelf) continue;
    EXPECT_TRUE(r.dport == EMuleHost::kTcpPort || r.dport == EMuleHost::kUdpPort ||
                r.dport == EMuleHost::kServerPort)
        << r.dport;
    if (r.proto == netflow::Protocol::kUdp) ++udp_probes;
  }
  // Kad lookups against the overlay produce UDP probe flows.
  EXPECT_GT(udp_probes, 5u);
}

TEST(EMuleHost, WorksWithoutOverlay) {
  World world;
  EMuleHost host(world.env(), kSelf, util::Pcg32(3), nullptr);
  host.start();
  world.run();
  EXPECT_GT(summarize(world.flows).initiated, 10u);
}

TEST(BitTorrentHost, TrackerAnnouncesAndSwarmTraffic) {
  World world;
  BitTorrentHost host(world.env(), kSelf, util::Pcg32(4), &world.overlay);
  host.start();
  world.run();
  const Summary s = summarize(world.flows);
  ASSERT_GT(s.initiated, 20u);
  EXPECT_TRUE(s.labels.contains(netflow::AppLabel::kBitTorrent));
  // High peer churn: most swarm peers contacted once.
  EXPECT_GT(s.dsts.size(), s.initiated / 2);
  // Tracker re-announces: repeated successful flows to the same tracker.
  std::map<simnet::Ipv4, int> port80_counts;
  for (const auto& r : world.flows) {
    if (r.src == kSelf && r.dport == 80 && !r.failed()) port80_counts[r.dst] += 1;
  }
  int max_announces = 0;
  for (const auto& [tracker, count] : port80_counts) max_announces = std::max(max_announces, count);
  EXPECT_GE(max_announces, 2);
}

TEST(BitTorrentHost, WebOnlyVariantNeverJoinsSwarms) {
  World world;
  BitTorrentConfig config;
  config.web_only = true;
  BitTorrentHost host(world.env(), kSelf, util::Pcg32(5), &world.overlay, config);
  host.start();
  world.run();
  const Summary s = summarize(world.flows);
  ASSERT_GT(s.initiated, 2u);
  for (const auto& r : world.flows) {
    if (r.src != kSelf) continue;
    EXPECT_EQ(r.dport, 80);           // tracker web traffic only
    EXPECT_FALSE(r.failed());          // the paper's low-failure Trader corner
    EXPECT_EQ(r.proto, netflow::Protocol::kTcp);
  }
  EXPECT_TRUE(s.labels.contains(netflow::AppLabel::kBitTorrent));
}

TEST(TraderModels, SessionsAreDeterministicPerSeed) {
  const auto run_once = [] {
    World world;
    BitTorrentHost host(world.env(), kSelf, util::Pcg32(99), &world.overlay);
    host.start();
    world.run();
    return world.flows.size();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TraderModels, InboundServiceMakesTradersUploaders) {
  // Traders serve content: their inbound flows carry large responder bytes,
  // the source of the paper's Fig. 1 volume separation.
  World world;
  GnutellaHost host(world.env(), kSelf, util::Pcg32(6));
  host.start();
  world.run();
  std::uint64_t served = 0;
  for (const auto& r : world.flows) {
    if (r.dst == kSelf) served += r.bytes_dst;
  }
  EXPECT_GT(served, 1024u * 1024u);
}

}  // namespace
}  // namespace tradeplot::p2p
