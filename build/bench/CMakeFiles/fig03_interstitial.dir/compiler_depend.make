# Empty compiler generated dependencies file for fig03_interstitial.
# This may be replaced when dependencies are built.
