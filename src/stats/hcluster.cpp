#include "stats/hcluster.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <numeric>
#include <utility>

#include "stats/simd.h"
#include "util/bloom.h"
#include "util/error.h"
#include "util/flat_map.h"

namespace tradeplot::stats {

Dendrogram::Dendrogram(std::size_t leaves, std::vector<Merge> merges)
    : leaves_(leaves), merges_(std::move(merges)) {
  if (leaves_ == 0) throw util::ConfigError("dendrogram with no leaves");
  if (merges_.size() + 1 != leaves_ && !(leaves_ == 1 && merges_.empty()))
    throw util::ConfigError("dendrogram must have exactly n-1 merges");
}

std::vector<std::vector<std::size_t>> Dendrogram::components(
    const std::vector<bool>& keep_merge) const {
  // Union-find over leaves; apply kept merges only. Each node is represented
  // by a *structural* leaf — its left-descent leaf — so the result is the
  // plain graph connectivity after deleting the cut links, independent of
  // merge processing order. (An earlier version walked merges in height
  // order and chained representatives through internal-node slots; floating-
  // point rounding makes UPGMA heights non-monotone at noise level, the sort
  // then places a parent before its child, and the walk read uninitialized
  // slots — orphaning whole subtrees on near-tie populations.)
  std::vector<std::size_t> left_leaf(leaves_ + merges_.size());
  std::iota(left_leaf.begin(), left_leaf.begin() + static_cast<std::ptrdiff_t>(leaves_), 0);
  for (std::size_t k = 0; k < merges_.size(); ++k) {
    std::size_t x = merges_[k].left;
    while (x >= leaves_) x = merges_[x - leaves_].left;
    left_leaf[leaves_ + k] = x;
  }
  std::vector<std::size_t> parent(leaves_);
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t k = 0; k < merges_.size(); ++k) {
    if (!keep_merge[k]) continue;
    const Merge& m = merges_[k];
    const std::size_t a = find(left_leaf[m.left]);
    const std::size_t b = find(left_leaf[m.right]);
    parent[b] = a;
  }
  std::vector<std::vector<std::size_t>> groups;
  std::vector<int> group_of(leaves_, -1);
  for (std::size_t leaf = 0; leaf < leaves_; ++leaf) {
    const std::size_t root = find(leaf);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[root])].push_back(leaf);
  }
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return groups;
}

std::vector<std::vector<std::size_t>> Dendrogram::cut_top_fraction(double fraction) const {
  if (fraction < 0.0 || fraction > 1.0)
    throw util::ConfigError("cut fraction must be in [0,1]");
  const std::size_t links = merges_.size();
  const auto to_cut = static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(links)));
  // Indices of the `to_cut` merges with the largest heights (ties: later
  // merges cut first, matching the intuition that higher merges are weaker).
  std::vector<std::size_t> order(links);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (merges_[a].height != merges_[b].height) return merges_[a].height > merges_[b].height;
    return a > b;
  });
  std::vector<bool> keep(links, true);
  for (std::size_t i = 0; i < to_cut && i < links; ++i) keep[order[i]] = false;
  return components(keep);
}

std::vector<std::vector<std::size_t>> Dendrogram::cut_at_height(double threshold) const {
  std::vector<bool> keep(merges_.size());
  for (std::size_t k = 0; k < merges_.size(); ++k) keep[k] = merges_[k].height <= threshold;
  return components(keep);
}

namespace {

// The NN-chain discovers merges in an order that is not globally sorted by
// height (only locally reducible). Downstream cuts assume height order, so
// sort and remap internal node ids to the new positions. Shared by the dense
// and pruned drivers so both emit byte-identical dendrograms.
std::vector<Merge> sort_merges_by_height(std::vector<Merge> merges, std::size_t n) {
  std::vector<std::size_t> order(merges.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return merges[a].height < merges[b].height;
  });
  std::vector<std::size_t> new_pos(merges.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) new_pos[order[pos]] = pos;
  std::vector<Merge> sorted;
  sorted.reserve(merges.size());
  for (const std::size_t old_idx : order) {
    Merge m = merges[old_idx];
    if (m.left >= n) m.left = n + new_pos[m.left - n];
    if (m.right >= n) m.right = n + new_pos[m.right - n];
    sorted.push_back(m);
  }
  return sorted;
}

}  // namespace

Dendrogram agglomerative_average_linkage(std::span<const double> distances, std::size_t n) {
  if (n == 0) throw util::ConfigError("clustering zero items");
  if (distances.size() != n * n) throw util::ConfigError("distance matrix size mismatch");
  if (n == 1) return Dendrogram(1, {});

  // Working copy of the distance matrix; clusters are "active" slots.
  std::vector<double> d(distances.begin(), distances.end());
  std::vector<std::size_t> size(n, 1);
  std::vector<bool> active(n, true);
  // node_id[i]: dendrogram node currently represented by slot i.
  std::vector<std::size_t> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);

  const auto dist = [&](std::size_t a, std::size_t b) -> double& { return d[a * n + b]; };

  std::vector<Merge> merges;
  merges.reserve(n - 1);

  // Nearest-neighbour chain: average linkage is reducible, so following
  // nearest neighbours until a reciprocal pair is found yields the exact
  // UPGMA merge order in O(n^2) total.
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t remaining = n;
  while (remaining > 1) {
    if (chain.empty()) {
      for (std::size_t i = 0; i < n; ++i)
        if (active[i]) {
          chain.push_back(i);
          break;
        }
    }
    for (;;) {
      const std::size_t top = chain.back();
      // Nearest active neighbour of `top` (prefer the previous chain element
      // on ties so reciprocal pairs terminate the walk).
      std::size_t nearest = top;
      double best = std::numeric_limits<double>::max();
      const std::size_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : n;
      for (std::size_t j = 0; j < n; ++j) {
        if (!active[j] || j == top) continue;
        const double dj = dist(top, j);
        if (dj < best - 1e-15 || (std::abs(dj - best) <= 1e-15 && j == prev)) {
          best = dj;
          nearest = j;
        }
      }
      if (chain.size() >= 2 && nearest == chain[chain.size() - 2]) {
        // Reciprocal nearest neighbours: merge top and nearest.
        const std::size_t a = chain[chain.size() - 2];
        const std::size_t b = top;
        chain.pop_back();
        chain.pop_back();
        const double height = dist(a, b);
        merges.push_back(Merge{node_id[a], node_id[b], height, size[a] + size[b]});
        // Lance-Williams UPGMA update into slot a.
        for (std::size_t k = 0; k < n; ++k) {
          if (!active[k] || k == a || k == b) continue;
          const double na = static_cast<double>(size[a]);
          const double nb = static_cast<double>(size[b]);
          const double merged = (na * dist(a, k) + nb * dist(b, k)) / (na + nb);
          dist(a, k) = merged;
          dist(k, a) = merged;
        }
        size[a] += size[b];
        active[b] = false;
        node_id[a] = n + merges.size() - 1;
        --remaining;
        break;
      }
      chain.push_back(nearest);
    }
  }
  return Dendrogram(n, sort_merges_by_height(std::move(merges), n));
}

namespace {

/// Sparse store of resolved dendrogram-node-pair distances plus the
/// Lance-Williams replay machinery. Node ids are the dendrogram's: leaves
/// 0..n-1, internal node n+k formed by the k-th merge. Ids are immutable and
/// a later-formed node always has the larger id, so a cluster-pair value can
/// be replayed bottom-up with exactly the floating-point expression — and
/// operand order — the dense driver used when it eagerly updated its matrix:
///   d(X, Y) = (|Xl| * d(Xl, Y) + |Xr| * d(Xr, Y)) / (|Xl| + |Xr|)
/// where X is the later-formed of the two and (Xl, Xr) its children. By
/// induction every memoized value is bit-identical to the dense matrix cell
/// it stands for.
class ResolvedStore {
 public:
  struct Internal {
    std::size_t left;    // node id of the slot that survived the merge
    std::size_t right;   // node id of the slot that was absorbed
    double n_left;       // leaves under `left` at merge time
    double n_right;      // leaves under `right` at merge time
  };

  ResolvedStore(std::size_t leaves, const LeafDistanceFn& leaf_distance,
                PruneCounters* counters, bool collect_timing)
      : leaves_(leaves), leaf_distance_(leaf_distance), counters_(counters),
        collect_timing_(collect_timing) {
    memo_.reserve(leaves * 8);
    internal_.reserve(leaves);
    // The Bloom filter shadows every memoized key: NN scans probe mostly
    // absent pairs, and a definite-miss answer here skips the hash-map
    // find (hash + bucket walk + probable cache miss) entirely.
    bloom_.reset(leaves * 8);
  }

  void record_merge(std::size_t left_id, std::size_t right_id, double n_left,
                    double n_right) {
    internal_.push_back(Internal{left_id, right_id, n_left, n_right});
  }

  /// Seeds a leaf-pair value computed elsewhere (e.g. a pivot column entry).
  /// `value` must be bit-identical to what leaf_distance would return for
  /// the pair; the pair then never pays its kernel inside a replay.
  void seed(std::size_t a, std::size_t b, double value) { remember(key(a, b), value); }

  /// Memoized value for a node pair, or nullptr if it was never resolved.
  /// Never triggers resolution work.
  [[nodiscard]] const double* lookup(std::size_t ida, std::size_t idb) const {
    const std::uint64_t k = key(ida, idb);
    if (!bloom_.maybe_contains(k)) {
      if (counters_ != nullptr) ++counters_->bloom_skips;
      return nullptr;
    }
    return memo_.find(k);
  }

  /// True when resolve(ida, idb) would complete without invoking the leaf
  /// kernel — every unmemoized pair underneath decomposes into memoized
  /// leaf-pair values, so the replay is pure Lance-Williams arithmetic.
  [[nodiscard]] bool resolvable_from_cache(std::size_t ida, std::size_t idb) const {
    check_stack_.clear();
    check_stack_.emplace_back(ida, idb);
    while (!check_stack_.empty()) {
      const auto [x, y] = check_stack_.back();
      check_stack_.pop_back();
      if (contains(key(x, y))) continue;
      if (x < leaves_ && y < leaves_) return false;
      const std::size_t split = std::max(x, y);
      const std::size_t other = std::min(x, y);
      const Internal& node = internal_[split - leaves_];
      check_stack_.emplace_back(node.left, other);
      check_stack_.emplace_back(node.right, other);
    }
    return true;
  }

  /// Appends every unmemoized *leaf* pair that resolve(ida, idb) would feed
  /// through the kernel, as (min, max) leaf indices. The decomposition walk
  /// expands disjoint subtree cross-products, so pairs within one call are
  /// distinct — and calls for different scan survivors j stay distinct too,
  /// because the j subtrees are disjoint.
  void collect_missing(std::size_t ida, std::size_t idb,
                       std::vector<std::pair<std::uint32_t, std::uint32_t>>& out) const {
    check_stack_.clear();
    check_stack_.emplace_back(ida, idb);
    while (!check_stack_.empty()) {
      const auto [x, y] = check_stack_.back();
      check_stack_.pop_back();
      if (contains(key(x, y))) continue;
      if (x < leaves_ && y < leaves_) {
        out.emplace_back(static_cast<std::uint32_t>(std::min(x, y)),
                         static_cast<std::uint32_t>(std::max(x, y)));
        continue;
      }
      const std::size_t split = std::max(x, y);
      const std::size_t other = std::min(x, y);
      const Internal& node = internal_[split - leaves_];
      check_stack_.emplace_back(node.left, other);
      check_stack_.emplace_back(node.right, other);
    }
  }

  [[nodiscard]] double resolve(std::size_t ida, std::size_t idb) {
    if (!collect_timing_) return resolve_impl(ida, idb);
    const auto t0 = std::chrono::steady_clock::now();
    const double leaf_before = leaf_seconds_;
    const double v = resolve_impl(ida, idb);
    const double total =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    replay_seconds_ += total - (leaf_seconds_ - leaf_before);
    return v;
  }

  [[nodiscard]] double leaf_seconds() const { return leaf_seconds_; }
  [[nodiscard]] double replay_seconds() const { return replay_seconds_; }

 private:
  [[nodiscard]] double resolve_impl(std::size_t ida, std::size_t idb) {
    if (const double* hit = memo_.find(key(ida, idb)); hit != nullptr) return *hit;
    // Iterative post-order expansion: a pair is computable once both child
    // pairs of its later-formed side are memoized.
    stack_.clear();
    stack_.emplace_back(ida, idb);
    while (!stack_.empty()) {
      const auto [x, y] = stack_.back();
      const std::uint64_t k = key(x, y);
      if (memo_.contains(k)) {
        stack_.pop_back();
        continue;
      }
      if (x < leaves_ && y < leaves_) {
        remember(k, leaf_value(x, y));
        stack_.pop_back();
        continue;
      }
      // Split the later-formed (larger-id) side.
      const std::size_t split = std::max(x, y);
      const std::size_t other = std::min(x, y);
      const Internal& node = internal_[split - leaves_];
      const double* left = memo_.find(key(node.left, other));
      const double* right = memo_.find(key(node.right, other));
      if (left != nullptr && right != nullptr) {
        remember(k, (node.n_left * *left + node.n_right * *right) /
                        (node.n_left + node.n_right));
        stack_.pop_back();
      } else {
        if (left == nullptr) stack_.emplace_back(node.left, other);
        if (right == nullptr) stack_.emplace_back(node.right, other);
      }
    }
    return *memo_.find(key(ida, idb));
  }

  double leaf_value(std::size_t x, std::size_t y) {
    if (!collect_timing_) return x < y ? leaf_distance_(x, y) : leaf_distance_(y, x);
    const auto t0 = std::chrono::steady_clock::now();
    const double v = x < y ? leaf_distance_(x, y) : leaf_distance_(y, x);
    leaf_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return v;
  }

  void remember(std::uint64_t k, double v) {
    memo_.insert(k, v);
    bloom_.insert(k);
  }

  /// Bloom-gated membership test; miss answers skip the hash map.
  [[nodiscard]] bool contains(std::uint64_t k) const {
    return bloom_.maybe_contains(k) && memo_.contains(k);
  }

  [[nodiscard]] static std::uint64_t key(std::size_t a, std::size_t b) {
    const std::uint64_t lo = std::min(a, b);
    const std::uint64_t hi = std::max(a, b);
    return (lo << 32) | hi;
  }

  std::size_t leaves_;
  const LeafDistanceFn& leaf_distance_;
  PruneCounters* counters_;
  bool collect_timing_;
  double leaf_seconds_ = 0.0;
  double replay_seconds_ = 0.0;
  util::BloomFilter bloom_;
  util::Flat64Map memo_;
  std::vector<Internal> internal_;
  std::vector<std::pair<std::size_t, std::size_t>> stack_;
  mutable std::vector<std::pair<std::size_t, std::size_t>> check_stack_;
};

/// Admissibility margin: the bounds are computed with reassociated (possibly
/// SIMD) sums and running means, so the mathematically admissible value
/// carries a few ulps of rounding. Shaving a relative 1e-9 plus an absolute
/// 1e-12 keeps the computed bound below the true one for any realistic
/// distance magnitude; the loss of pruning power is negligible.
double with_margin(double bound) { return bound * (1.0 - 1e-9) - 1e-12; }

constexpr double kInfD = std::numeric_limits<double>::infinity();
// Elimination slack. The dense comparator's winner is within ~2e-15 of the
// true scan minimum, so a candidate provably more than 1e-12 above the
// minimum can neither win nor tie-with-prev; 1e-12 also dominates the
// with_margin() rounding allowance on the bounds themselves.
constexpr double kCutSlack = 1e-12;

/// The lazy nearest-neighbour chain shared by both pruned drivers.
///
/// Verdict-relevant behaviour — which slot every scan selects, which pairs
/// merge, and every resolved height — is bit-identical to the dense driver's
/// at every thread count; all machinery below only changes *how much work* a
/// scan pays:
///
///  * Pivot means live column-major (cols_[p * n + slot]) so pass 1 is one
///    SIMD interval sweep per scan instead of n strided bound evaluations;
///    dead slots are poisoned to +inf, whose intervals can never win.
///  * An adjacency overlay (per-slot lists of resolved neighbours, validated
///    by slot versions) replaces the per-candidate memo probe of pass 1:
///    a version match certifies slot and pair identity, so the interval
///    collapses to the exact point without hashing at all.
///  * A chain-local scan cache remembers each slot's surviving candidates.
///    When the chain re-enters a slot whose state is unchanged, the rescan
///    only visits the cached survivors plus slots merged since — sound while
///    the scan floor (ub_min) keeps falling, because every other slot was
///    eliminated against a threshold at least as large.
///  * With PruneOptions::batch_leaf set and threads > 1, the missing leaf
///    pairs behind a scan's unresolved survivors are evaluated as one batch
///    (in parallel, results committed serially in pair order) instead of one
///    at a time through the incremental gate. This resolves a superset of
///    the serial gate's pairs — counters vary with the thread count — but
///    every value is exact, so the selection is unchanged.
class PrunedChainEngine {
 public:
  /// A merge in chain-discovery order. `lo`/`hi` bound the true (dense) merge
  /// height; lo == hi with exact == true once the height is known bit-exactly.
  struct ChainMerge {
    std::size_t left;
    std::size_t right;
    double lo;
    double hi;
    bool exact;
    // Synthesized by the top-of-tree early stop: stands for a dense merge
    // already proven to land in the cut set. Must never be resolved — its
    // node ids have no ResolvedStore entry.
    bool forced = false;
    std::size_t merged_size = 0;  // leaves under the new node (real merges)
  };

  PrunedChainEngine(std::size_t n, const LeafDistanceFn& leaf_distance,
                    const PruneFeatures& features, const PruneOptions& opts,
                    PruneCounters& c)
      : n_(n),
        pivots_(features.pivots),
        grid_bins_(features.grid_bins),
        grid_half_width_(features.grid_half_width),
        opts_(opts),
        c_(c),
        store_(n, leaf_distance, &c, opts.collect_timing) {
    if (pivots_ > 0) {
      cols_.resize(pivots_ * n_);
      for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t p = 0; p < pivots_; ++p)
          cols_[p * n_ + i] = features.pivot_distances[i * pivots_ + p];
      top_vals_.resize(pivots_);
    }
    if (grid_bins_ > 0) {
      grid_mean_.assign(features.grid, features.grid + n_ * grid_bins_);
      snap_mean_.assign(features.snap_cost, features.snap_cost + n_);
    }
    size_.assign(n_, 1);
    active_.assign(n_, 1);
    node_id_.resize(n_);
    std::iota(node_id_.begin(), node_id_.end(), 0);
    slot_version_.assign(n_, 0);
    adj_.resize(n_);
    scan_cache_.resize(n_);
    lo_buf_.assign(n_, 0.0);
    hi_buf_.assign(n_, 0.0);
    exact_buf_.assign(n_, 0);
    in_cand_.assign(n_, 0);
    pass_idx_.resize(n_);
    chain_merges_.reserve(n_ - 1);
    chain_.reserve(n_);
    remaining_ = n_;
    if (features.pivot_leaves != nullptr) {
      // The pivot columns ARE exact leaf distances, so every (leaf, pivot)
      // pair starts resolved for free: seeded into the memo (a replay that
      // crosses a pivot leaf skips its kernel) and into the adjacency
      // overlay (a scan from or over a pivot sees the point, not a bound).
      for (std::size_t p = 0; p < pivots_; ++p) {
        const std::size_t s = features.pivot_leaves[p];
        for (std::size_t i = 0; i < n_; ++i) {
          if (i == s) continue;
          const double v = cols_[p * n_ + i];
          store_.seed(i, s, v);
          register_pair(i, s, v);
        }
      }
    }
  }

  /// Runs the chain to completion (eager_heights: every merge height is
  /// resolved exactly as it forms — the full-dendrogram mode) or until the
  /// early stop proves the rest of the tree is cut (to_cut_total > 0, the
  /// fused-cut mode).
  void run(std::size_t to_cut_total, bool eager_heights) {
    std::size_t next_check = std::numeric_limits<std::size_t>::max();
    while (remaining_ > 1) {
      if (!eager_heights && to_cut_total > 0 && remaining_ - 1 <= to_cut_total &&
          remaining_ <= next_check) {
        if (try_early_stop(to_cut_total)) break;
        // Not provable yet; back off geometrically so the bound sweep
        // amortizes to a constant number of attempts.
        next_check = remaining_ - std::max<std::size_t>(1, remaining_ / 8);
      }
      if (chain_.empty()) {
        for (std::size_t i = 0; i < n_; ++i) {
          if (active_[i] != 0) {
            chain_.push_back(i);
            break;
          }
        }
      }
      for (;;) {
        const std::size_t top = chain_.back();
        const std::size_t prev = chain_.size() >= 2 ? chain_[chain_.size() - 2] : n_;
        const std::size_t nearest = scan_and_select(top, prev);
        if (chain_.size() >= 2 && nearest == prev) {
          merge_reciprocal(eager_heights);
          break;
        }
        chain_.push_back(nearest);
      }
    }
  }

  [[nodiscard]] std::vector<ChainMerge>& merges() { return chain_merges_; }
  [[nodiscard]] ResolvedStore& store() { return store_; }

  /// Folds the engine's phase clocks into the counters. Call once, after all
  /// resolution work (including cut classification) is done.
  void finalize_timing() {
    if (!opts_.collect_timing) return;
    c_.bound_scan_seconds += scan_seconds_;
    c_.exact_eval_seconds += store_.leaf_seconds() + batch_seconds_;
    c_.replay_seconds += store_.replay_seconds();
  }

 private:
  struct AdjEntry {
    std::uint32_t slot;
    std::uint32_t version;  // slot_version_ of `slot` at insertion
    double value;
  };
  struct ScanCache {
    std::size_t base_epoch = 0;  // merge_log_ length when the cache was filled
    std::uint32_t self_version = 0;
    double threshold = 0.0;  // ub_min of the cached scan
    bool valid = false;
    std::vector<std::uint32_t> survivors;
  };

  static constexpr std::size_t kMaxCachedSurvivors = 4096;
  static constexpr std::size_t kMaxReuseCandidates = 4096;
  // Early-stop tier limits: the exact pairwise heap is O(active²) and the
  // kernel-free tightening sweep is O(links · subtree walk); both are cheap
  // insurance at detector scale and ruinous at 100k hosts, so each engages
  // only below its limit. Above the limits the projection bound stands in.
  static constexpr std::size_t kHeapActiveLimit = 2048;
  static constexpr std::size_t kTightenMergeLimit = 8192;

  using Clock = std::chrono::steady_clock;

  [[nodiscard]] Clock::time_point timing_start() const {
    return opts_.collect_timing ? Clock::now() : Clock::time_point{};
  }

  [[nodiscard]] double col(std::size_t p, std::size_t slot) const {
    return cols_[p * n_ + slot];
  }

  [[nodiscard]] double pivot_lb(std::size_t a, std::size_t b) const {
    double lb = 0.0;
    for (std::size_t p = 0; p < pivots_; ++p)
      lb = std::max(lb, std::abs(col(p, a) - col(p, b)));
    return with_margin(lb);
  }
  // Triangle upper bound through the pivots: for every pivot p,
  // d(x, y) <= d(x, p) + d(p, y), and averaging over the cross pairs of two
  // clusters preserves it, so mean_A(p) + mean_B(p) >= avg-linkage d(A, B).
  // Margin goes *up* here — an upper bound must never under-state.
  [[nodiscard]] double pivot_ub(std::size_t a, std::size_t b) const {
    if (pivots_ == 0) return kInfD;
    double ub = kInfD;
    for (std::size_t p = 0; p < pivots_; ++p) ub = std::min(ub, col(p, a) + col(p, b));
    return ub * (1.0 + 1e-9) + 1e-12;
  }
  [[nodiscard]] double grid_lb(std::size_t a, std::size_t b) const {
    const double l1 = simd::l1_distance(grid_mean_.data() + a * grid_bins_,
                                        grid_mean_.data() + b * grid_bins_, grid_bins_);
    return with_margin(grid_half_width_ * l1 - snap_mean_[a] - snap_mean_[b]);
  }

  void register_pair(std::size_t a, std::size_t b, double value) {
    adj_[a].push_back(AdjEntry{static_cast<std::uint32_t>(b), slot_version_[b], value});
    adj_[b].push_back(AdjEntry{static_cast<std::uint32_t>(a), slot_version_[a], value});
  }

  // Pass 1, full sweep: one SIMD interval computation over the contiguous
  // pivot columns, margins applied per active candidate, then the adjacency
  // overlay collapses every still-valid resolved neighbour to its exact
  // point (a version match certifies both the slot and the pair's node
  // identity are unchanged since insertion).
  void full_scan(std::size_t top, double& ub_min) {
    ub_min = kInfD;
    std::memset(exact_buf_.data(), 0, n_);
    if (pivots_ > 0) {
      for (std::size_t p = 0; p < pivots_; ++p) top_vals_[p] = col(p, top);
      simd::pivot_interval_sweep(cols_.data(), n_, pivots_, top_vals_.data(), n_,
                                 lo_buf_.data(), hi_buf_.data());
      // The margin pass runs branch-free over every row: retired slots carry
      // +inf poison in their columns (lo = hi = +inf, inert under min), and
      // top's own row — the one live row whose raw hi (2·mean_top) could
      // undercut the real minimum — is neutralized first.
      hi_buf_[top] = kInfD;
      ub_min = simd::margin_min_sweep(lo_buf_.data(), hi_buf_.data(), n_);
      c_.scanned += remaining_ - 1;
    } else {
      for (std::size_t j = 0; j < n_; ++j) {
        if (active_[j] == 0 || j == top) continue;
        ++c_.scanned;
        lo_buf_[j] = 0.0;
        hi_buf_[j] = kInfD;
      }
    }
    for (const AdjEntry& e : adj_[top]) {
      if (slot_version_[e.slot] != e.version) continue;
      lo_buf_[e.slot] = hi_buf_[e.slot] = e.value;
      exact_buf_[e.slot] = 1;
      ub_min = std::min(ub_min, e.value);
    }
  }

  // Pass 1, reduced sweep over the cached candidate set. Candidates are the
  // cached survivors plus every slot touched by a merge since the cache was
  // filled. Any other slot was eliminated at the cached scan with
  // lo > threshold + slack and its bound inputs are unchanged since (it took
  // part in no merge, and `top` is unchanged by the version check), so as
  // long as the new scan floor has not risen above the cached threshold the
  // old eliminations still hold against it. The monotone rule below
  // (threshold := new ub_min on every reuse) keeps that invariant across
  // arbitrarily many chained reuses.
  [[nodiscard]] bool try_reduced_scan(std::size_t top, const ScanCache& sc,
                                      double& ub_min) {
    cand_.clear();
    const auto add = [&](std::uint32_t j) {
      if (j == top || active_[j] == 0 || in_cand_[j] != 0) return;
      in_cand_[j] = 1;
      cand_.push_back(j);
    };
    for (const std::uint32_t j : sc.survivors) add(j);
    for (std::size_t e = sc.base_epoch; e < merge_log_.size(); ++e) add(merge_log_[e]);
    for (const std::uint32_t j : cand_) in_cand_[j] = 0;
    if (cand_.size() > kMaxReuseCandidates) return false;
    // Candidate order must match the full sweep's ascending-slot order so
    // the tie-with-prev selection below sees candidates in the same order
    // the dense comparator would.
    std::sort(cand_.begin(), cand_.end());
    ub_min = kInfD;
    for (const std::uint32_t j : cand_) {
      ++c_.scanned;
      in_cand_[j] = 1;
      exact_buf_[j] = 0;
      lo_buf_[j] = pivots_ > 0 ? pivot_lb(top, j) : 0.0;
      hi_buf_[j] = pivot_ub(top, j);
      ub_min = std::min(ub_min, hi_buf_[j]);
    }
    // Memoized candidates collapse to their exact values through the
    // adjacency overlay instead of a hash probe per candidate. The overlay is
    // complete here: a memo entry is keyed by the pair's current node ids,
    // every resolution of a still-current pair also registered it in both
    // slots' adjacency lists, and a merge that retires a node id bumps the
    // slot version that guards the entry. The overlay only lowers hi (an
    // exact value never exceeds its admissible upper bound), so folding its
    // values into ub_min afterwards yields the same minimum the probe-first
    // loop computed.
    for (const AdjEntry& e : adj_[top]) {
      if (slot_version_[e.slot] != e.version || in_cand_[e.slot] == 0) continue;
      lo_buf_[e.slot] = hi_buf_[e.slot] = e.value;
      exact_buf_[e.slot] = 1;
      ub_min = std::min(ub_min, e.value);
    }
    for (const std::uint32_t j : cand_) in_cand_[j] = 0;
    return ub_min <= sc.threshold;
  }

  // Pass 2: a candidate whose lower bound clears ub_min + slack sits
  // provably above the scan winner and is dropped unseen; the grid bound
  // only runs for pivot survivors. At least one candidate survives (the
  // one attaining ub_min bounds itself below it).
  void build_survivors(std::size_t top, double ub_min, bool reduced) {
    survivors_.clear();
    const auto consider = [&](std::size_t j) {
      if (exact_buf_[j] == 0) {
        if (lo_buf_[j] > ub_min + kCutSlack) {
          ++c_.skipped_pivot;
          return;
        }
        if (grid_bins_ > 0 && grid_lb(top, j) > ub_min + kCutSlack) {
          ++c_.skipped_grid;
          return;
        }
      }
      survivors_.push_back(static_cast<std::uint32_t>(j));
    };
    if (reduced) {
      for (const std::uint32_t j : cand_) consider(j);
    } else if (pivots_ > 0) {
      // After a full sweep every row holds a usable lower bound: retired
      // slots carry +inf and fail any finite threshold, and top is poisoned
      // here for the same effect, so one SIMD compare-compress replaces the
      // branchy all-slots walk. An exact row above the bar is dropped too —
      // its value exceeds ub_min + kCutSlack while the eventual winner sits
      // at or below ub_min, so it can neither win nor tie the selection.
      lo_buf_[top] = kInfD;
      const std::size_t passed =
          simd::filter_le(lo_buf_.data(), n_, ub_min + kCutSlack, pass_idx_.data());
      c_.skipped_pivot += remaining_ - 1 >= passed ? remaining_ - 1 - passed : 0;
      for (std::size_t k = 0; k < passed; ++k) {
        const std::uint32_t j = pass_idx_[k];
        if (exact_buf_[j] == 0 && grid_bins_ > 0 && grid_lb(top, j) > ub_min + kCutSlack) {
          ++c_.skipped_grid;
          continue;
        }
        survivors_.push_back(j);
      }
    } else {
      for (std::size_t j = 0; j < n_; ++j) {
        if (active_[j] == 0 || j == top) continue;
        consider(j);
      }
    }
  }

  [[nodiscard]] std::size_t scan_and_select(std::size_t top, std::size_t prev) {
    const auto t0 = timing_start();
    double ub_min = kInfD;
    bool reduced = false;
    {
      ScanCache& sc = scan_cache_[top];
      if (sc.valid && sc.self_version == slot_version_[top]) {
        reduced = try_reduced_scan(top, sc, ub_min);
        if (!reduced) sc.valid = false;
      }
    }
    if (reduced) {
      build_survivors(top, ub_min, /*reduced=*/true);
      if (survivors_.empty()) {
        // Only reachable with vacuous bounds (every candidate dead); the
        // full sweep below re-establishes a non-empty survivor set.
        reduced = false;
      } else {
        ++c_.scan_cache_hits;
      }
    }
    if (!reduced) {
      full_scan(top, ub_min);
      build_survivors(top, ub_min, /*reduced=*/false);
    }
    ScanCache& sc = scan_cache_[top];
    if (survivors_.size() <= kMaxCachedSurvivors) {
      sc.base_epoch = merge_log_.size();
      sc.self_version = slot_version_[top];
      sc.threshold = ub_min;
      sc.survivors.assign(survivors_.begin(), survivors_.end());
      sc.valid = true;
    } else {
      sc.valid = false;
    }
    if (opts_.collect_timing)
      scan_seconds_ += std::chrono::duration<double>(Clock::now() - t0).count();
    return select_nearest(top, prev);
  }

  [[nodiscard]] std::size_t select_nearest(std::size_t top, std::size_t prev) {
    if (survivors_.size() == 1) {
      // The dense comparator would pick the sole survivor whatever its
      // value; no resolution needed.
      return survivors_[0];
    }
    std::size_t nearest = top;
    double best = std::numeric_limits<double>::max();
    const auto consider = [&](std::uint32_t j, double dj) {
      if (dj < best - 1e-15 || (std::abs(dj - best) <= 1e-15 && j == prev)) {
        best = dj;
        nearest = j;
      }
    };
    // Resolve-and-consider for a pending block of gate-passing unresolved
    // survivors. Their missing leaf pairs are evaluated together through the
    // caller's batch kernel (which feeds the SIMD x4 sweep / thread pool),
    // then each survivor commits serially in slot order so the comparator
    // observes the exact same (j, value) sequence the one-at-a-time path
    // would have produced.
    const auto flush_block = [&](std::size_t top_id) {
      if (block_.empty()) return;
      if (opts_.batch_leaf) {
        batch_pairs_.clear();
        for (const std::uint32_t j : block_)
          store_.collect_missing(top_id, node_id_[j], batch_pairs_);
        if (batch_pairs_.size() >= 4) {
          batch_vals_.resize(batch_pairs_.size());
          const auto t0 = timing_start();
          opts_.batch_leaf(std::span<const std::pair<std::uint32_t, std::uint32_t>>(
                               batch_pairs_.data(), batch_pairs_.size()),
                           batch_vals_.data());
          if (opts_.collect_timing)
            batch_seconds_ += std::chrono::duration<double>(Clock::now() - t0).count();
          for (std::size_t k = 0; k < batch_pairs_.size(); ++k) {
            const auto [x, y] = batch_pairs_[k];
            store_.seed(x, y, batch_vals_[k]);
            if (opts_.on_leaf_resolved) opts_.on_leaf_resolved(x, y, batch_vals_[k]);
          }
        }
      }
      for (const std::uint32_t j : block_) {
        ++c_.resolved_cluster_pairs;
        const double dj = store_.resolve(top_id, node_id_[j]);
        register_pair(top, j, dj);
        lo_buf_[j] = hi_buf_[j] = dj;
        exact_buf_[j] = 1;
        consider(j, dj);
      }
      block_.clear();
    };
    // Gated lookahead: walk survivors in slot order, applying the
    // incremental lower-bound gate against the running best, but resolve
    // gate-passers in blocks of up to four so their leaf pairs fill the
    // batch kernel's vector lanes. A blocked candidate is resolved before
    // later block members could have tightened best, so it may be resolved
    // where the strict one-at-a-time gate would have skipped it — extra
    // exact work, never less — but its exact value dj >= its admissible
    // lower bound, so the comparator outcome (nearest, best) is identical:
    // anything the strict gate would have skipped still loses by
    // dj >= lo > best + 1e-15.
    const std::size_t block_cap = opts_.batch_leaf ? 4 : 1;  // serial: strict gate
    block_.clear();
    for (const std::uint32_t j : survivors_) {
      if (exact_buf_[j] != 0) {
        // Exact candidates must hit the comparator in slot order relative
        // to blocked ones; drain the block first.
        flush_block(node_id_[top]);
        consider(j, lo_buf_[j]);
        continue;
      }
      // Incremental gate: once a candidate's admissible lower bound sits
      // above best + tie-tolerance it can neither win nor tie in the dense
      // comparator, so its exact value is never observed.
      if (lo_buf_[j] > best + 1e-15) {
        ++c_.skipped_pivot;
        continue;
      }
      if (grid_bins_ > 0 && grid_lb(top, j) > best + 1e-15) {
        ++c_.skipped_grid;
        continue;
      }
      block_.push_back(j);
      if (block_.size() == block_cap) flush_block(node_id_[top]);
    }
    flush_block(node_id_[top]);
    return nearest;
  }

  void merge_reciprocal(bool eager_heights) {
    const std::size_t a = chain_[chain_.size() - 2];
    const std::size_t b = chain_.back();
    chain_.pop_back();
    chain_.pop_back();
    ChainMerge cm{node_id_[a], node_id_[b], 0.0,  0.0,
                  false,       false,       size_[a] + size_[b]};
    if (eager_heights) {
      const double h = store_.resolve(cm.left, cm.right);
      cm.lo = cm.hi = h;
      cm.exact = true;
    } else if (const double* hv = store_.lookup(cm.left, cm.right); hv != nullptr) {
      cm.lo = cm.hi = *hv;
      cm.exact = true;
    } else {
      double lo = pivots_ > 0 ? pivot_lb(a, b) : 0.0;
      if (grid_bins_ > 0) lo = std::max(lo, grid_lb(a, b));
      cm.lo = std::max(lo, 0.0);
      cm.hi = pivot_ub(a, b);
    }
    chain_merges_.push_back(cm);
    store_.record_merge(cm.left, cm.right, static_cast<double>(size_[a]),
                        static_cast<double>(size_[b]));
    const double na = static_cast<double>(size_[a]);
    const double nb = static_cast<double>(size_[b]);
    if (pivots_ > 0) {
      for (std::size_t p = 0; p < pivots_; ++p) {
        double* colp = cols_.data() + p * n_;
        colp[a] = (na * colp[a] + nb * colp[b]) / (na + nb);
        colp[b] = kInfD;  // poison: a dead slot's interval can never win
      }
    }
    if (grid_bins_ > 0) {
      double* ga = grid_mean_.data() + a * grid_bins_;
      const double* gb = grid_mean_.data() + b * grid_bins_;
      for (std::size_t w = 0; w < grid_bins_; ++w)
        ga[w] = (na * ga[w] + nb * gb[w]) / (na + nb);
      snap_mean_[a] = (na * snap_mean_[a] + nb * snap_mean_[b]) / (na + nb);
    }
    size_[a] += size_[b];
    active_[b] = 0;
    node_id_[a] = n_ + chain_merges_.size() - 1;
    ++slot_version_[a];
    ++slot_version_[b];
    adj_[a].clear();
    adj_[b].clear();
    scan_cache_[a].valid = false;
    scan_cache_[b].valid = false;
    merge_log_.push_back(static_cast<std::uint32_t>(a));
    merge_log_.push_back(static_cast<std::uint32_t>(b));
    --remaining_;
  }

  [[nodiscard]] bool try_early_stop(std::size_t to_cut_total) {
    const auto t0 = timing_start();
    const double leaf0 = store_.leaf_seconds();
    const double replay0 = store_.replay_seconds();
    const bool stopped = early_stop_impl(to_cut_total);
    if (opts_.collect_timing) {
      // Bound-sweep time only; any resolution work inside is already on the
      // store's leaf/replay clocks.
      scan_seconds_ += std::chrono::duration<double>(Clock::now() - t0).count() -
                       (store_.leaf_seconds() - leaf0) -
                       (store_.replay_seconds() - replay0);
    }
    return stopped;
  }

  // Top-of-tree early stop. The running minimum over active inter-cluster
  // distances never decreases under average linkage (a Lance-Williams
  // average of two values is never below their minimum), so every future
  // merge height is >= the current minimum, which is itself >= future_lo,
  // the smallest admissible lower bound over active pairs. A past link whose
  // upper bound is <= future_lo therefore sorts keep-ward of every future
  // link (height ties break toward the earlier chain index). If the links
  // above that bar plus all remaining future links fit inside the cut
  // budget, every future merge is provably cut: the top of the tree cannot
  // influence the kept partition, so the chain stops and the missing links
  // are synthesized as forced-cut placeholders. This is what lets the
  // big-cluster x big-cluster merges near the root — the most expensive
  // resolutions of the whole run — never pay their exact kernels.
  [[nodiscard]] bool early_stop_impl(std::size_t to_cut_total) {
    // Kernel-free tightening: a pending link whose leaf pairs are all
    // memoized resolves exactly by pure Lance-Williams arithmetic.
    if (chain_merges_.size() <= kTightenMergeLimit) {
      for (ChainMerge& m : chain_merges_) {
        if (!m.exact && !m.forced && store_.resolvable_from_cache(m.left, m.right)) {
          const double h = store_.resolve(m.left, m.right);
          m.lo = m.hi = h;
          m.exact = true;
        }
      }
    }
    active_slots_.clear();
    for (std::size_t s = 0; s < n_; ++s)
      if (active_[s] != 0) active_slots_.push_back(s);
    double future_lo;
    if (active_slots_.size() > kHeapActiveLimit) {
      future_lo = projected_future_lo();
    } else {
      future_lo = heap_future_lo();
    }
    std::size_t above = 0;
    for (const ChainMerge& m : chain_merges_)
      if (m.hi > future_lo) ++above;
    if (above + (remaining_ - 1) > to_cut_total) return false;
    std::size_t cur = std::numeric_limits<std::size_t>::max();
    for (const std::size_t s : active_slots_) {
      if (cur == std::numeric_limits<std::size_t>::max()) {
        cur = node_id_[s];
        continue;
      }
      chain_merges_.push_back(
          ChainMerge{cur, node_id_[s], future_lo, kInfD, false, true, 0});
      cur = n_ + chain_merges_.size() - 1;
    }
    return true;
  }

  // Lower bound on the smallest active inter-cluster distance. A pair
  // whose pivot bound is vacuous (two clusters that look alike through
  // every pivot) would pin future_lo near zero and make the stop
  // unprovable, so small pairs are resolved exactly in ascending-bound
  // order while that is cheap — results are memoized, the chain reuses
  // them, and future_lo climbs to the true minimum. Resolving one pair
  // memoizes only values inside its own two subtrees and active nodes
  // root disjoint subtrees, so no other active pair's bound moves: the
  // bounds can be heapified once per check and consumed with O(log)
  // reinsertions instead of an O(active^2) rescan per resolution.
  [[nodiscard]] double heap_future_lo() {
    constexpr std::size_t kCheapResolve = 256;
    struct BoundEntry {
      double lo;
      std::size_t a, b;
      bool exact;
      bool refined;
    };
    const auto later = [](const BoundEntry& x, const BoundEntry& y) {
      if (x.lo != y.lo) return x.lo > y.lo;  // min-heap on the bound...
      if (x.a != y.a) return x.a > y.a;      // ...slot-ordered on ties, so
      return x.b > y.b;                      // the sweep is deterministic
    };
    const std::size_t m = active_slots_.size();
    std::vector<BoundEntry> heap;
    heap.reserve(m * (m - 1) / 2);
    // Seed every pair with its pivot-only bound from the pass-1 SIMD sweep
    // over a compacted copy of the active pivot columns (the full columns
    // are mostly dead slots by the time this tier engages). The per-pair
    // refinements — memo lookup and grid bound — cost a hash probe and a
    // bin-L1 each and are deferred to pop time: most pairs are never popped.
    if (pivots_ > 0) {
      compact_cols_.resize(pivots_ * m);
      for (std::size_t p = 0; p < pivots_; ++p)
        for (std::size_t k = 0; k < m; ++k)
          compact_cols_[p * m + k] = col(p, active_slots_[k]);
      for (std::size_t ai = 0; ai + 1 < m; ++ai) {
        for (std::size_t p = 0; p < pivots_; ++p) top_vals_[p] = compact_cols_[p * m + ai];
        simd::pivot_interval_sweep(compact_cols_.data(), m, pivots_, top_vals_.data(), m,
                                   lo_buf_.data(), hi_buf_.data());
        const std::size_t a = active_slots_[ai];
        for (std::size_t bi = ai + 1; bi < m; ++bi)
          heap.push_back(BoundEntry{std::max(with_margin(lo_buf_[bi]), 0.0), a,
                                    active_slots_[bi], false, false});
      }
    } else {
      for (std::size_t ai = 0; ai + 1 < m; ++ai)
        for (std::size_t bi = ai + 1; bi < m; ++bi)
          heap.push_back(
              BoundEntry{0.0, active_slots_[ai], active_slots_[bi], false, false});
    }
    std::make_heap(heap.begin(), heap.end(), later);
    double future_lo = kInfD;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), later);
      BoundEntry e = heap.back();
      heap.pop_back();
      if (!e.refined) {
        if (const double* mv = store_.lookup(node_id_[e.a], node_id_[e.b]); mv != nullptr) {
          e.lo = *mv;
          e.exact = true;
        } else if (grid_bins_ > 0) {
          e.lo = std::max(e.lo, grid_lb(e.a, e.b));
        }
        e.refined = true;
        // Refinement only raises the bound. If another pair now sorts ahead,
        // reinsert and keep popping: entries still leave this loop in
        // ascending refined (lo, a, b) order — exactly the order the
        // refine-everything-upfront version processed them — because an
        // unrefined entry's seed bound never overstates its refined bound.
        if (!heap.empty() && later(e, heap.front())) {
          heap.push_back(e);
          std::push_heap(heap.begin(), heap.end(), later);
          continue;
        }
      }
      if (e.exact || size_[e.a] * size_[e.b] > kCheapResolve) {
        future_lo = e.lo;
        break;
      }
      ++c_.resolved_cluster_pairs;
      const double d = store_.resolve(node_id_[e.a], node_id_[e.b]);
      register_pair(e.a, e.b, d);
      heap.push_back(BoundEntry{d, e.a, e.b, true, true});
      std::push_heap(heap.begin(), heap.end(), later);
    }
    return future_lo;
  }

  // Cheap O(pivots · active log active) stand-in for the pairwise heap when
  // the active set is large. For every pair (A, B) and every pivot column q,
  // max_p |mean_A(p) - mean_B(p)| >= |mean_A(q) - mean_B(q)| >= the smallest
  // adjacent gap of column q's sorted active values; so the max over columns
  // of that gap lower-bounds every active pair's distance. Vacuous (zero)
  // when any two clusters coincide through some pivot — the geometric
  // backoff then retries until the heap tier takes over.
  [[nodiscard]] double projected_future_lo() {
    if (pivots_ == 0) return 0.0;
    double lo = 0.0;
    for (std::size_t p = 0; p < pivots_; ++p) {
      proj_.clear();
      for (const std::size_t s : active_slots_) proj_.push_back(col(p, s));
      std::sort(proj_.begin(), proj_.end());
      double gap = kInfD;
      for (std::size_t k = 1; k < proj_.size(); ++k)
        gap = std::min(gap, proj_[k] - proj_[k - 1]);
      lo = std::max(lo, gap);
    }
    return std::max(0.0, with_margin(lo));
  }

  std::size_t n_;
  std::size_t pivots_;
  std::size_t grid_bins_;
  double grid_half_width_;
  const PruneOptions& opts_;
  PruneCounters& c_;
  ResolvedStore store_;
  std::vector<double> cols_;  // column-major pivot means, cols_[p * n_ + slot]
  std::vector<double> top_vals_;
  std::vector<double> grid_mean_;
  std::vector<double> snap_mean_;
  std::vector<std::size_t> size_;
  std::vector<char> active_;
  std::vector<std::size_t> node_id_;
  std::vector<std::uint32_t> slot_version_;
  std::vector<std::vector<AdjEntry>> adj_;
  std::vector<ScanCache> scan_cache_;
  std::vector<std::uint32_t> merge_log_;  // (a, b) slot pairs, merge order
  std::vector<double> lo_buf_;
  std::vector<double> hi_buf_;
  std::vector<char> exact_buf_;
  std::vector<char> in_cand_;
  std::vector<std::uint32_t> cand_;
  std::vector<std::uint32_t> pass_idx_;  // filter_le output scratch
  std::vector<std::uint32_t> survivors_;
  std::vector<ChainMerge> chain_merges_;
  std::vector<std::size_t> chain_;
  std::size_t remaining_ = 0;
  std::vector<std::size_t> active_slots_;
  std::vector<double> proj_;
  std::vector<double> compact_cols_;  // heap-tier scratch: active pivot columns
  std::vector<std::pair<std::uint32_t, std::uint32_t>> batch_pairs_;
  std::vector<double> batch_vals_;
  std::vector<std::uint32_t> block_;  // gated-lookahead pending survivors
  double scan_seconds_ = 0.0;
  double batch_seconds_ = 0.0;
};

}  // namespace

Dendrogram agglomerative_average_linkage_pruned(std::size_t n,
                                                const LeafDistanceFn& leaf_distance,
                                                const PruneFeatures& features,
                                                PruneCounters* counters) {
  return agglomerative_average_linkage_pruned(n, leaf_distance, features, PruneOptions{},
                                              counters);
}

Dendrogram agglomerative_average_linkage_pruned(std::size_t n,
                                                const LeafDistanceFn& leaf_distance,
                                                const PruneFeatures& features,
                                                const PruneOptions& options,
                                                PruneCounters* counters) {
  if (n == 0) throw util::ConfigError("clustering zero items");
  if (n == 1) return Dendrogram(1, {});

  PruneCounters local;
  PruneCounters& c = counters != nullptr ? *counters : local;

  // Eager-height mode: the chain runs with every elimination the fused-cut
  // path has (a slot the upper bounds prove cannot win or tie a scan is
  // never chosen by the dense comparator either), and each merge's height is
  // resolved exactly as it forms — so the dendrogram below is bit-identical
  // to the dense driver's, including merge order and tie behaviour.
  PrunedChainEngine engine(n, leaf_distance, features, options, c);
  engine.run(0, /*eager_heights=*/true);
  std::vector<Merge> merges;
  merges.reserve(n - 1);
  for (const PrunedChainEngine::ChainMerge& m : engine.merges())
    merges.push_back(Merge{m.left, m.right, m.lo, m.merged_size});
  engine.finalize_timing();
  return Dendrogram(n, sort_merges_by_height(std::move(merges), n));
}

std::vector<std::vector<std::size_t>> average_linkage_cut_pruned(
    std::size_t n, const LeafDistanceFn& leaf_distance, const PruneFeatures& features,
    double fraction, PruneCounters* counters) {
  return average_linkage_cut_pruned(n, leaf_distance, features, fraction, PruneOptions{},
                                    counters);
}

std::vector<std::vector<std::size_t>> average_linkage_cut_pruned(
    std::size_t n, const LeafDistanceFn& leaf_distance, const PruneFeatures& features,
    double fraction, const PruneOptions& options, PruneCounters* counters) {
  if (n == 0) throw util::ConfigError("clustering zero items");
  if (fraction < 0.0 || fraction > 1.0)
    throw util::ConfigError("cut fraction must be in [0,1]");
  if (n == 1) return {{0}};

  PruneCounters local;
  PruneCounters& c = counters != nullptr ? *counters : local;

  // Cut budget, fixed up front: the chain always produces exactly n - 1
  // links (real or synthesized), so the fraction resolves before clustering.
  const std::size_t links_total = n - 1;
  const auto to_cut_total =
      static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(links_total)));

  PrunedChainEngine engine(n, leaf_distance, features, options, c);
  engine.run(to_cut_total, /*eager_heights=*/false);
  std::vector<PrunedChainEngine::ChainMerge>& chain_merges = engine.merges();
  ResolvedStore& store = engine.store();
  // --- Cut classification -------------------------------------------------
  // cut_top_fraction deletes the to_cut largest merges under the total order
  // (height asc, then position in the height-sorted dendrogram asc); a
  // stable sort by height over chain order makes that exactly
  // (height asc, chain index asc). Classify each merge as keep/cut from the
  // intervals alone where possible; resolve pendings only while the
  // partition stays ambiguous.
  const std::size_t links = chain_merges.size();
  const auto to_cut = static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(links)));
  const std::size_t keep_count = links - std::min(to_cut, links);

  std::vector<char> keep(links, 0);
  std::vector<char> decided(links, 0);
  using Key = std::pair<double, std::size_t>;  // (height bound, chain index)
  std::vector<Key> sorted_lo(links);
  std::vector<Key> sorted_hi(links);
  for (;;) {
    // Merge k surely precedes merge m iff (hi_k, k) < (lo_m, m): its height
    // is then no larger, and on possible equality the chain index decides.
    for (std::size_t k = 0; k < links; ++k) {
      sorted_lo[k] = Key(chain_merges[k].lo, k);
      sorted_hi[k] = Key(chain_merges[k].hi, k);
    }
    std::sort(sorted_lo.begin(), sorted_lo.end());
    std::sort(sorted_hi.begin(), sorted_hi.end());
    bool all_decided = true;
    for (std::size_t k = 0; k < links; ++k) {
      const Key lo_key(chain_merges[k].lo, k);
      const Key hi_key(chain_merges[k].hi, k);
      // # merges surely before k / surely after k; self never qualifies.
      const auto before = static_cast<std::size_t>(
          std::lower_bound(sorted_hi.begin(), sorted_hi.end(), lo_key) - sorted_hi.begin());
      const auto after = static_cast<std::size_t>(
          sorted_lo.end() - std::upper_bound(sorted_lo.begin(), sorted_lo.end(), hi_key));
      if (after >= to_cut) {
        decided[k] = 1;
        keep[k] = 1;
      } else if (before >= keep_count) {
        decided[k] = 1;
        keep[k] = 0;
      } else {
        decided[k] = 0;
        all_decided = false;
      }
    }
    if (all_decided) break;
    // Resolve the undecided pendings; if the ambiguity sits entirely in
    // already-decided pendings overlapping an undecided exact merge, fall
    // back to resolving every pending (correctness backstop — the next
    // round then classifies from points alone).
    bool resolved_any = false;
    for (std::size_t k = 0; k < links; ++k) {
      if (decided[k] == 0 && !chain_merges[k].exact && !chain_merges[k].forced) {
        ++c.resolved_cluster_pairs;
        const double h = store.resolve(chain_merges[k].left, chain_merges[k].right);
        chain_merges[k].lo = chain_merges[k].hi = h;
        chain_merges[k].exact = true;
        resolved_any = true;
      }
    }
    if (!resolved_any) {
      for (std::size_t k = 0; k < links; ++k) {
        if (!chain_merges[k].exact && !chain_merges[k].forced) {
          ++c.resolved_cluster_pairs;
          const double h = store.resolve(chain_merges[k].left, chain_merges[k].right);
          chain_merges[k].lo = chain_merges[k].hi = h;
          chain_merges[k].exact = true;
        }
      }
    }
  }

  engine.finalize_timing();

  // --- Components ---------------------------------------------------------
  // Union-find identical to Dendrogram::components, processed in chain order
  // (valid: every merge references nodes formed earlier in the chain, and
  // the kept-link leaf partition is order-independent).
  std::vector<std::size_t> parent(n + links);
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<std::size_t> rep(n + links);
  std::iota(rep.begin(), rep.end(), 0);
  for (std::size_t k = 0; k < links; ++k) {
    const auto& m = chain_merges[k];
    const std::size_t a = find(rep[m.left]);
    const std::size_t b = find(rep[m.right]);
    if (keep[k] != 0) {
      parent[b] = a;
      rep[n + k] = a;
    } else {
      rep[n + k] = a;
    }
  }
  std::vector<std::vector<std::size_t>> groups;
  std::vector<int> group_of(n + links, -1);
  for (std::size_t leaf = 0; leaf < n; ++leaf) {
    const std::size_t root = find(leaf);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[root])].push_back(leaf);
  }
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return groups;
}

double cluster_diameter(std::span<const double> distances, std::size_t n,
                        std::span<const std::size_t> members) {
  double diameter = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      diameter = std::max(diameter, distances[members[i] * n + members[j]]);
    }
  }
  return diameter;
}

Dendrogram agglomerative_average_linkage_weighted(std::span<const double> distances,
                                                  std::size_t n,
                                                  std::span<const std::size_t> weights) {
  if (n == 0) throw util::ConfigError("clustering zero items");
  if (distances.size() != n * n) throw util::ConfigError("distance matrix size mismatch");
  if (weights.size() != n) throw util::ConfigError("weights size mismatch");
  for (const std::size_t w : weights)
    if (w == 0) throw util::ConfigError("representative weight must be positive");
  if (n == 1) return Dendrogram(1, {});

  // The representative count is the number of shard-local clusters — small
  // next to the host population — so a straightforward min-pair scan per
  // merge (O(n³) worst case) is cheap and keeps the tie behaviour obvious:
  // smallest height wins, ties go to the lexicographically smallest active
  // (i, j) slot pair under the same tolerance as the unweighted chain.
  std::vector<double> d(distances.begin(), distances.end());
  std::vector<std::size_t> size(weights.begin(), weights.end());
  std::vector<bool> active(n, true);
  std::vector<std::size_t> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);
  const auto dist = [&](std::size_t a, std::size_t b) -> double& { return d[a * n + b]; };

  std::vector<Merge> merges;
  merges.reserve(n - 1);
  for (std::size_t remaining = n; remaining > 1; --remaining) {
    std::size_t best_i = n, best_j = n;
    double best = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (dist(i, j) < best - 1e-15) {
          best = dist(i, j);
          best_i = i;
          best_j = j;
        }
      }
    }
    merges.push_back(Merge{node_id[best_i], node_id[best_j], best,
                           size[best_i] + size[best_j]});
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == best_i || k == best_j) continue;
      const double na = static_cast<double>(size[best_i]);
      const double nb = static_cast<double>(size[best_j]);
      const double merged = (na * dist(best_i, k) + nb * dist(best_j, k)) / (na + nb);
      dist(best_i, k) = merged;
      dist(k, best_i) = merged;
    }
    size[best_i] += size[best_j];
    active[best_j] = false;
    node_id[best_i] = n + merges.size() - 1;
  }
  return Dendrogram(n, sort_merges_by_height(std::move(merges), n));
}

}  // namespace tradeplot::stats
