#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/parallel.h"

namespace tradeplot::obs {
namespace {

TEST(ObsEnabled, DefaultsOffAndToggles) {
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

TEST(ObsCounter, SingleThreadAddsAccumulate) {
  Registry r;
  Counter& c = r.counter("tp_c_total", "help");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsCounter, ParallelIncrementsSumExactly) {
  // Counters must lose no update under contention: parallel_for runs over the
  // shared ThreadPool, so increments land from many worker threads at once.
  Registry r;
  Counter& c = r.counter("tp_parallel_total", "help");
  constexpr std::size_t kIters = 20000;
  util::parallel_for(0, kIters, 1, 8, [&](std::size_t i) { c.add(i % 3 + 1); });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kIters; ++i) expected += i % 3 + 1;
  EXPECT_EQ(c.value(), expected);
}

TEST(ObsCounter, RawThreadsSumExactly) {
  Registry r;
  Counter& c = r.counter("tp_threads_total", "help");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGauge, SetAddRead) {
  Registry r;
  Gauge& g = r.gauge("tp_gauge", "help");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
}

TEST(ObsHistogram, BucketAssignmentMatchesPrometheusLe) {
  Registry r;
  Histogram& h = r.histogram("tp_hist", "help", {1.0, 2.0, 4.0});
  // le semantics: a value equal to a bound lands in that bound's bucket.
  h.observe(0.5);  // bucket 0 (le 1)
  h.observe(1.0);  // bucket 0 (le 1)
  h.observe(1.5);  // bucket 1 (le 2)
  h.observe(4.0);  // bucket 2 (le 4)
  h.observe(9.0);  // +Inf
  const HistogramValue v = h.collect();
  ASSERT_EQ(v.counts.size(), 3u);
  EXPECT_EQ(v.counts[0], 2u);
  EXPECT_EQ(v.counts[1], 1u);
  EXPECT_EQ(v.counts[2], 1u);
  EXPECT_EQ(v.count, 5u);  // +Inf raw count is count - sum(counts) == 1
  EXPECT_DOUBLE_EQ(v.sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(ObsHistogram, ConcurrentObservationsAllCounted) {
  Registry r;
  Histogram& h = r.histogram("tp_hist_mt", "help", {0.5});
  constexpr std::size_t kIters = 20000;
  util::parallel_for(0, kIters, 1, 8, [&](std::size_t i) {
    h.observe(i % 2 == 0 ? 0.25 : 1.0);
  });
  const HistogramValue v = h.collect();
  EXPECT_EQ(v.count, kIters);
  EXPECT_EQ(v.counts[0], kIters / 2);
}

TEST(ObsHistogram, RejectsBadBounds) {
  Registry r;
  EXPECT_THROW(r.histogram("tp_empty", "help", {}), util::ConfigError);
  EXPECT_THROW(r.histogram("tp_nonmono", "help", {1.0, 1.0}), util::ConfigError);
  EXPECT_THROW(r.histogram("tp_nonfinite", "help",
                           {1.0, std::numeric_limits<double>::infinity()}),
               util::ConfigError);
}

TEST(ObsRegistry, SameNameAndLabelsReturnsSameInstance) {
  Registry r;
  Counter& a = r.counter("tp_dedup_total", "help", {{"k", "v"}});
  Counter& b = r.counter("tp_dedup_total", "help", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  Counter& other = r.counter("tp_dedup_total", "help", {{"k", "w"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(r.size(), 2u);
}

TEST(ObsRegistry, RejectsConflictsAndBadNames) {
  Registry r;
  r.counter("tp_conflict", "help");
  EXPECT_THROW(r.gauge("tp_conflict", "help"), util::ConfigError);
  // A second label set under one family must keep the family's type.
  EXPECT_THROW(r.gauge("tp_conflict", "help", {{"k", "v"}}), util::ConfigError);
  r.histogram("tp_buckets", "help", {1.0, 2.0}, {{"k", "a"}});
  EXPECT_THROW(r.histogram("tp_buckets", "help", {1.0, 3.0}, {{"k", "b"}}),
               util::ConfigError);
  EXPECT_THROW(r.counter("0bad", "help"), util::ConfigError);
  EXPECT_THROW(r.counter("bad name", "help"), util::ConfigError);
  EXPECT_THROW(r.counter("tp_ok_total", "help", {{"bad label", "v"}}), util::ConfigError);
  EXPECT_THROW(r.counter("tp_ok_total", "help", {{"bad:label", "v"}}), util::ConfigError);
}

TEST(ObsRegistry, SnapshotIsSortedAndImmutable) {
  Registry r;
  r.counter("tp_z_total", "help").add(7);
  r.counter("tp_a_total", "help", {{"x", "2"}}).add(2);
  Counter& a1 = r.counter("tp_a_total", "help", {{"x", "1"}});
  a1.add(1);
  const MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "tp_a_total");
  EXPECT_EQ(snap.samples[0].labels, (Labels{{"x", "1"}}));
  EXPECT_EQ(snap.samples[1].labels, (Labels{{"x", "2"}}));
  EXPECT_EQ(snap.samples[2].name, "tp_z_total");
  // The snapshot is a deep copy: registry mutations after the fact must not
  // show through.
  a1.add(100);
  EXPECT_EQ(snap.samples[0].value, 1.0);
  EXPECT_EQ(r.snapshot().samples[0].value, 101.0);
}

TEST(ObsRegistry, ResetZeroesValuesKeepsHandles) {
  Registry r;
  Counter& c = r.counter("tp_reset_total", "help");
  Gauge& g = r.gauge("tp_reset_gauge", "help");
  Histogram& h = r.histogram("tp_reset_hist", "help", {1.0});
  c.add(5);
  g.set(3.0);
  h.observe(0.5);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.collect().count, 0u);
  EXPECT_EQ(r.size(), 3u);
  c.add(1);  // handle still live
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace tradeplot::obs
