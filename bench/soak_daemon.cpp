// Soak harness for the monitor daemon (DESIGN.md §17): millions of flows
// over a real socket, across two tenants, through a kill -9 and restart,
// with the three acceptance checks the service layer promises:
//
//   1. verdicts — the block-policy tenant's deduplicated verdict log is
//      bit-identical to a single-shot batch run of the same trace;
//   2. memory — the daemon's VmRSS stays under a hard bound for the whole
//      soak, across the crash and the resumed re-ingest;
//   3. accounting — every row a client offered is ingested, shed, or
//      quarantined: accepted == ingested + shed + quarantined per tenant,
//      including deterministically injected shed (oversize batch) and
//      quarantine (malformed CSV rows).
//
// Process architecture: fork discipline requires all forks to happen in a
// single-threaded process, so the parent forks one single-threaded "runner"
// child before spawning any sender threads; the runner forks/kills/restarts
// the daemon generations on command over a pipe. The daemon generations are
// this same binary post-fork running svc::Daemon directly — kill -9 lands on
// a real process with real checkpoint files.
//
//   soak_daemon [--flows N] [--rss-limit-mb M] [--kill-at-fraction F]
//               [--state-dir DIR] [--metrics-out FILE] [--window-a S]
//               [--window-b S]
//
// Prints a JSON report to stdout; exit 0 iff every check passed.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "detect/features.h"
#include "detect/streaming.h"
#include "netflow/flow_record.h"
#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "svc/config.h"
#include "svc/daemon.h"
#include "svc/frame.h"
#include "svc/net.h"
#include "svc/sender.h"
#include "svc/tenant.h"
#include "util/error.h"
#include "util/interrupt.h"

namespace {

using namespace tradeplot;

struct Options {
  std::uint64_t flows = 1'000'000;
  double kill_at_fraction = 0.35;  // SIGKILL once tenant A ingested this much
  long rss_limit_mb = 1024;        // hard VmRSS bound for the daemon (ASan-sized)
  std::string state_dir;           // empty = mkdtemp
  std::string metrics_out;         // dump the final /metrics scrape here
  double window_a = 900.0;
  double window_b = 600.0;
  double duration = 7200.0;  // trace span (seconds of flow time)
};

constexpr const char* kTenantA = "campus-a";  // block policy: oracle-exact
constexpr const char* kTenantB = "campus-b";  // shed policy: accounted loss

std::string ingest_spec(const Options& opt) { return "unix:" + opt.state_dir + "/ingest.sock"; }

svc::DaemonConfig build_config(const Options& opt) {
  svc::DaemonConfig cfg;
  cfg.ingest = ingest_spec(opt);
  cfg.http = "tcp:127.0.0.1:0";
  cfg.state_dir = opt.state_dir + "/state";
  cfg.metrics = true;
  cfg.read_timeout = 30.0;
  cfg.idle_timeout = 300.0;
  svc::TenantParams a;
  a.name = kTenantA;
  a.window = opt.window_a;
  a.checkpoint_every = 50'000;
  a.queue_capacity = 1u << 16;
  a.overflow = svc::Overflow::kBlock;
  cfg.tenants.push_back(a);
  svc::TenantParams b;
  b.name = kTenantB;
  b.window = opt.window_b;
  b.checkpoint_every = 50'000;
  // Below the 4096-row parse batch size: a full-size parsed batch can never
  // fit, which is what makes the oversize-injection shed deterministic.
  b.queue_capacity = 2048;
  b.overflow = svc::Overflow::kShed;
  cfg.tenants.push_back(b);
  return cfg;
}

/// Deterministic campus-like trace: internal hosts (128.2/16) talking to a
/// rotating external population, time-ordered, no RNG state beyond i.
void generate_trace(const std::string& path, std::uint64_t flows, double duration) {
  std::vector<netflow::FlowRecord> rows(flows);
  for (std::uint64_t i = 0; i < flows; ++i) {
    netflow::FlowRecord& r = rows[i];
    const std::uint64_t h = i * 0x9E3779B97F4A7C15ull;  // golden-ratio mix
    r.src = simnet::Ipv4(0x80020001u + static_cast<std::uint32_t>(h % 64));
    r.dst = simnet::Ipv4(0x0B000001u + static_cast<std::uint32_t>((h >> 8) % 4096));
    r.sport = static_cast<std::uint16_t>(1024 + (h >> 20) % 60000);
    r.dport = static_cast<std::uint16_t>(i % 3 == 0 ? 6881 : (i % 3 == 1 ? 80 : 443));
    r.proto = netflow::Protocol::kTcp;
    r.start_time = duration * static_cast<double>(i) / static_cast<double>(flows);
    r.end_time = r.start_time + 0.2 + static_cast<double>(h % 100) * 0.01;
    r.pkts_src = 2 + h % 23;
    r.pkts_dst = 1 + h % 17;
    r.bytes_src = 80 + h % 1400;
    r.bytes_dst = 60 + (h >> 4) % 1000;
    r.state = i % 6 == 0 ? netflow::FlowState::kAttempted : netflow::FlowState::kEstablished;
  }
  std::ofstream out(path, std::ios::binary);
  netflow::write_binary_columnar(out, rows.data(), rows.size(), 0.0, duration);
  if (!out) {
    std::fprintf(stderr, "soak: cannot write trace %s\n", path.c_str());
    std::exit(2);
  }
}

// ---------------------------------------------------------------------------
// Daemon generation processes (forked by the single-threaded runner).

[[noreturn]] void run_daemon_generation(const Options& opt, int msg_fd) {
  util::install_signal_handlers();
  util::clear_shutdown();
  svc::Daemon daemon(build_config(opt));
  try {
    daemon.start();
  } catch (const std::exception& e) {
    dprintf(msg_fd, "fail %s\n", e.what());
    _exit(3);
  }
  dprintf(msg_fd, "up %d %u\n", static_cast<int>(getpid()),
          static_cast<unsigned>(daemon.http_port()));
  while (!util::shutdown_requested())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  daemon.stop();
  _exit(0);
}

/// The runner: forked before any parent threads exist, so its own forks are
/// safe. Commands arrive one per line on cmd_fd; replies go to msg_fd.
[[noreturn]] void run_runner(const Options& opt, int cmd_fd, int msg_fd) {
  FILE* cmd = fdopen(cmd_fd, "r");
  pid_t daemon_pid = -1;
  char line[256];
  while (cmd != nullptr && std::fgets(line, sizeof(line), cmd) != nullptr) {
    if (std::strncmp(line, "start", 5) == 0) {
      daemon_pid = fork();
      if (daemon_pid == 0) run_daemon_generation(opt, msg_fd);  // never returns
    } else if (std::strncmp(line, "kill9", 5) == 0) {
      kill(daemon_pid, SIGKILL);
      waitpid(daemon_pid, nullptr, 0);
      dprintf(msg_fd, "killed\n");
    } else if (std::strncmp(line, "term", 4) == 0) {
      kill(daemon_pid, SIGTERM);
      int status = 0;
      waitpid(daemon_pid, &status, 0);
      dprintf(msg_fd, "exit %d\n", WIFEXITED(status) ? WEXITSTATUS(status) : 128);
    } else if (std::strncmp(line, "quit", 4) == 0) {
      break;
    }
  }
  _exit(0);
}

// ---------------------------------------------------------------------------
// Parent-side helpers.

std::string http_get(std::uint16_t port, const std::string& path) {
  try {
    svc::Fd fd = svc::connect_to(svc::Endpoint::parse("tcp:127.0.0.1:" + std::to_string(port)));
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    if (!svc::send_all(fd.get(), req.data(), req.size())) return {};
    std::string response;
    char buf[16 * 1024];
    for (;;) {
      if (!svc::wait_readable(fd.get(), 2000)) break;
      const std::size_t got = svc::recv_some(fd.get(), buf, sizeof(buf));
      if (got == 0) break;
      response.append(buf, got);
    }
    return response;
  } catch (const util::Error&) {
    return {};
  }
}

/// Pulls `"field":<number>` for the named tenant out of a /tenants response.
std::uint64_t tenant_field(const std::string& json, const std::string& tenant,
                           const std::string& field) {
  const std::size_t at = json.find("\"name\":\"" + tenant + "\"");
  if (at == std::string::npos) return 0;
  const std::size_t f = json.find("\"" + field + "\":", at);
  if (f == std::string::npos) return 0;
  return std::strtoull(json.c_str() + f + field.size() + 3, nullptr, 10);
}

long rss_kb(int pid) {
  std::ifstream in("/proc/" + std::to_string(pid) + "/status");
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("VmRSS:", 0) == 0) return std::strtol(line.c_str() + 6, nullptr, 10);
  return -1;
}

/// Raw-frame client for the deterministic shed/quarantine injections.
struct RawClient {
  svc::Fd fd;
  svc::FrameParser parser;

  explicit RawClient(const std::string& spec) : fd(svc::connect_to(svc::Endpoint::parse(spec))) {}

  bool send(svc::FrameType type, std::string_view payload) {
    const std::vector<char> wire = svc::encode_frame(type, payload);
    return svc::send_all(fd.get(), wire.data(), wire.size());
  }

  bool recv(svc::Frame& out) {
    char buf[16 * 1024];
    while (!parser.next(out)) {
      if (!svc::wait_readable(fd.get(), 10'000)) return false;
      const std::size_t got = svc::recv_some(fd.get(), buf, sizeof(buf));
      if (got == 0) return false;
      parser.append(buf, got);
    }
    return true;
  }
};

std::vector<std::string> batch_oracle(const std::string& trace_path, double window) {
  detect::StreamingConfig cfg;
  cfg.window = window;
  cfg.is_internal = detect::default_internal_predicate;
  std::vector<std::string> lines;
  detect::StreamingDetector det(cfg, [&](const detect::WindowVerdict& v) {
    lines.push_back(svc::format_verdict_line(v));
  });
  netflow::TraceReader reader(trace_path, netflow::ErrorPolicy::strict());
  for (;;) {
    netflow::FlowBatch batch;
    if (reader.next_batch(batch) == 0) break;
    det.ingest(batch);
  }
  det.flush();
  return lines;
}

std::vector<std::string> read_deduped_log(const std::string& path) {
  std::ifstream in(path);
  std::map<std::size_t, std::string> last;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t idx = 0;
    if (std::sscanf(line.c_str(), "{\"window_index\":%zu", &idx) == 1) last[idx] = line;
  }
  std::vector<std::string> out;
  for (auto& [idx, l] : last) out.push_back(std::move(l));
  return out;
}

struct CheckList {
  int failures = 0;
  void expect(bool ok, const std::string& what) {
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "soak: CHECK FAILED: %s\n", what.c_str());
    }
  }
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "soak: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--flows") opt.flows = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--rss-limit-mb") opt.rss_limit_mb = std::strtol(value().c_str(), nullptr, 10);
    else if (arg == "--kill-at-fraction") opt.kill_at_fraction = std::strtod(value().c_str(), nullptr);
    else if (arg == "--state-dir") opt.state_dir = value();
    else if (arg == "--metrics-out") opt.metrics_out = value();
    else if (arg == "--window-a") opt.window_a = std::strtod(value().c_str(), nullptr);
    else if (arg == "--window-b") opt.window_b = std::strtod(value().c_str(), nullptr);
    else {
      std::fprintf(stderr, "soak: unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_args(argc, argv);
  if (opt.state_dir.empty()) {
    char tmpl[] = "/tmp/tp_soak_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    if (dir == nullptr) {
      std::perror("soak: mkdtemp");
      return 2;
    }
    opt.state_dir = dir;
  }
  util::install_signal_handlers();  // also ignores SIGPIPE for the senders

  const std::string trace_path = opt.state_dir + "/soak_trace.bin";
  std::fprintf(stderr, "soak: generating %llu flows over %.0f s of flow time...\n",
               static_cast<unsigned long long>(opt.flows), opt.duration);
  generate_trace(trace_path, opt.flows, opt.duration);

  // Fork the single-threaded runner BEFORE any parent threads exist.
  int cmd_pipe[2], msg_pipe[2];
  if (pipe(cmd_pipe) != 0 || pipe(msg_pipe) != 0) {
    std::perror("soak: pipe");
    return 2;
  }
  const pid_t runner = fork();
  if (runner < 0) {
    std::perror("soak: fork");
    return 2;
  }
  if (runner == 0) {
    close(cmd_pipe[1]);
    close(msg_pipe[0]);
    run_runner(opt, cmd_pipe[0], msg_pipe[1]);  // never returns
  }
  close(cmd_pipe[0]);
  close(msg_pipe[1]);
  FILE* cmd = fdopen(cmd_pipe[1], "w");
  FILE* msg = fdopen(msg_pipe[0], "r");
  setvbuf(cmd, nullptr, _IOLBF, 0);

  std::atomic<int> daemon_pid{-1};
  std::atomic<unsigned> http_port{0};
  char line[256];
  const auto start_generation = [&]() -> bool {
    std::fprintf(cmd, "start\n");
    while (std::fgets(line, sizeof(line), msg) != nullptr) {
      int pid = 0;
      unsigned port = 0;
      if (std::sscanf(line, "up %d %u", &pid, &port) == 2) {
        daemon_pid.store(pid);
        http_port.store(port);
        return true;
      }
      if (std::strncmp(line, "fail", 4) == 0) {
        std::fprintf(stderr, "soak: daemon generation failed: %s", line + 5);
        return false;
      }
    }
    return false;
  };

  CheckList checks;
  checks.expect(start_generation(), "daemon generation 1 starts");

  // Wait for readiness through the real endpoint.
  for (int i = 0; i < 100 && http_get(http_port.load(), "/readyz").find("200 OK") ==
                                 std::string::npos; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  checks.expect(http_get(http_port.load(), "/readyz").find("ready") != std::string::npos,
                "/readyz reports ready");

  // RSS watchdog across generations (pid changes on restart).
  std::atomic<bool> soaking{true};
  std::atomic<long> rss_max_kb{0};
  std::thread rss_thread([&] {
    while (soaking.load()) {
      const long kb = rss_kb(daemon_pid.load());
      long prev = rss_max_kb.load();
      while (kb > prev && !rss_max_kb.compare_exchange_weak(prev, kb)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  // Two concurrent senders, one per tenant. Generous retry budget: they must
  // ride out the kill -9 window and resume against generation 2.
  const auto stream_tenant = [&](const char* tenant, std::size_t rows_per_frame,
                                 svc::SendReport& out) {
    svc::SenderOptions so;
    so.endpoint = ingest_spec(opt);
    so.tenant = tenant;
    so.rows_per_frame = rows_per_frame;
    so.max_attempts = 400;
    so.backoff_initial = 0.02;
    so.backoff_max = 0.25;
    svc::FrameSender sender(so);
    out = sender.stream(trace_path);
  };
  svc::SendReport report_a, report_b;
  std::thread sender_a([&] { stream_tenant(kTenantA, 4096, report_a); });
  std::thread sender_b([&] { stream_tenant(kTenantB, 512, report_b); });

  // Kill -9 once tenant A's books pass the threshold; restart generation 2
  // on the same state dir and socket path.
  // At least one checkpoint must exist before the kill, or there is nothing
  // to restore; clamp past the first 50k boundary for small --flows runs.
  const std::uint64_t kill_at = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(opt.kill_at_fraction * static_cast<double>(opt.flows)),
      55'000);
  std::uint64_t seen = 0;
  while (seen < kill_at) {
    seen = tenant_field(http_get(http_port.load(), "/tenants"), kTenantA, "ingested");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::fprintf(stderr, "soak: kill -9 at %llu/%llu ingested rows\n",
               static_cast<unsigned long long>(seen),
               static_cast<unsigned long long>(opt.flows));
  std::fprintf(cmd, "kill9\n");
  while (std::fgets(line, sizeof(line), msg) != nullptr &&
         std::strncmp(line, "killed", 6) != 0) {
  }
  checks.expect(start_generation(), "daemon generation 2 starts after kill -9");
  const std::uint64_t restored =
      tenant_field(http_get(http_port.load(), "/tenants"), kTenantA, "ingested");
  std::fprintf(stderr, "soak: generation 2 serving tenant A at row %llu\n",
               static_cast<unsigned long long>(restored));
  // The sender may already be re-ingesting by the time we poll, so the only
  // race-free claims are "some checkpoint was restored" here and the
  // bit-identical verdict log at the end.
  checks.expect(restored > 0, "restart restored a checkpoint");

  sender_a.join();
  sender_b.join();
  checks.expect(report_a.reconnects >= 1, "tenant A sender reconnected across the crash");
  checks.expect(report_a.ingested == opt.flows, "tenant A (block) ingested every flow");
  checks.expect(report_a.shed == 0, "tenant A (block) shed nothing");

  // Deterministic loss injections against tenant B: 8192 rows arrive as
  // full-size (4096-row) parsed batches that can never fit the 2048-row
  // queue (all shed), plus three malformed CSV rows (quarantined). The
  // FlushAck after both carries tenant B's final authoritative books.
  svc::SendReport inject;
  {
    std::vector<netflow::FlowRecord> big(8192);
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i].src = simnet::Ipv4(0x80020001u);
      big[i].dst = simnet::Ipv4(0x0B000001u + static_cast<std::uint32_t>(i));
      big[i].start_time = opt.duration;
      big[i].end_time = opt.duration + 0.1;
      big[i].bytes_src = 100;
    }
    std::ostringstream oversize;
    netflow::write_binary_columnar(oversize, big.data(), big.size(), 0.0, 0.0);
    const std::string garbage_csv =
        "src,dst,sport,dport,proto,start,end,pkts_src,pkts_dst,bytes_src,bytes_dst,state,"
        "payload\nnot,a,flow\ngarbage\n1,2,3\n";

    RawClient client(ingest_spec(opt));
    svc::Frame reply;
    checks.expect(client.send(svc::FrameType::kHello, kTenantB) && client.recv(reply) &&
                      reply.type == svc::FrameType::kHelloAck,
                  "injection client handshake");
    checks.expect(client.send(svc::FrameType::kFlows, oversize.str()), "send oversize batch");
    checks.expect(client.send(svc::FrameType::kFlows, garbage_csv), "send malformed CSV");
    checks.expect(client.send(svc::FrameType::kFlush, {}), "send flush");
    checks.expect(client.recv(reply) && reply.type == svc::FrameType::kFlushAck,
                  "flush ack after injections");
    if (reply.type == svc::FrameType::kFlushAck && reply.payload.size() >= 32) {
      const char* p = reply.payload.data();
      inject.accepted = svc::read_u64(p);
      inject.ingested = svc::read_u64(p + 8);
      inject.shed = svc::read_u64(p + 16);
      inject.quarantined = svc::read_u64(p + 24);
    }
    (void)client.send(svc::FrameType::kBye, {});
  }
  checks.expect(inject.shed >= 8192, "oversize batches were shed in full");
  checks.expect(inject.quarantined == 3, "malformed CSV rows were quarantined");
  checks.expect(inject.accepted == inject.ingested + inject.shed + inject.quarantined,
                "tenant B books balance: accepted == ingested + shed + quarantined");

  // Final metrics scrape from the live daemon (for check_prometheus).
  const std::string metrics = http_get(http_port.load(), "/metrics");
  checks.expect(metrics.find("200 OK") != std::string::npos, "/metrics serves");
  if (!opt.metrics_out.empty()) {
    const std::size_t body = metrics.find("\r\n\r\n");
    std::ofstream out(opt.metrics_out);
    out << (body == std::string::npos ? metrics : metrics.substr(body + 4));
  }

  // Graceful stop: generation 2 must exit 0 after final checkpoint + flush.
  std::fprintf(cmd, "term\n");
  int exit_code = -1;
  while (std::fgets(line, sizeof(line), msg) != nullptr) {
    if (std::sscanf(line, "exit %d", &exit_code) == 1) break;
  }
  checks.expect(exit_code == 0, "graceful SIGTERM stop exits 0");
  std::fprintf(cmd, "quit\n");
  waitpid(runner, nullptr, 0);
  soaking.store(false);
  rss_thread.join();

  // Verdict oracle: tenant A's deduplicated log must be bit-identical to the
  // batch run — the crash, restart, and resend are invisible.
  const std::vector<std::string> expected = batch_oracle(trace_path, opt.window_a);
  const std::vector<std::string> got =
      read_deduped_log(opt.state_dir + "/state/" + kTenantA + ".verdicts.jsonl");
  bool verdicts_equal = got.size() == expected.size();
  for (std::size_t i = 0; verdicts_equal && i < expected.size(); ++i)
    verdicts_equal = got[i] == expected[i];
  checks.expect(verdicts_equal, "tenant A verdicts bit-identical to the batch oracle (" +
                                    std::to_string(got.size()) + " vs " +
                                    std::to_string(expected.size()) + " windows)");

  const long rss_limit_kb = opt.rss_limit_mb * 1024;
  checks.expect(rss_max_kb.load() > 0 && rss_max_kb.load() <= rss_limit_kb,
                "daemon RSS bounded (" + std::to_string(rss_max_kb.load() / 1024) + " MB <= " +
                    std::to_string(opt.rss_limit_mb) + " MB)");

  std::printf(
      "{\"flows\":%llu,\"kills\":1,\"restored_at\":%llu,"
      "\"tenant_a\":{\"ingested\":%llu,\"shed\":%llu,\"reconnects\":%llu,"
      "\"verdict_windows\":%zu,\"oracle_match\":%s},"
      "\"tenant_b\":{\"accepted\":%llu,\"ingested\":%llu,\"shed\":%llu,"
      "\"quarantined\":%llu},"
      "\"rss_max_mb\":%ld,\"rss_limit_mb\":%ld,\"failures\":%d}\n",
      static_cast<unsigned long long>(opt.flows), static_cast<unsigned long long>(restored),
      static_cast<unsigned long long>(report_a.ingested),
      static_cast<unsigned long long>(report_a.shed),
      static_cast<unsigned long long>(report_a.reconnects), got.size(),
      verdicts_equal ? "true" : "false", static_cast<unsigned long long>(inject.accepted),
      static_cast<unsigned long long>(inject.ingested),
      static_cast<unsigned long long>(inject.shed),
      static_cast<unsigned long long>(inject.quarantined), rss_max_kb.load() / 1024,
      opt.rss_limit_mb, checks.failures);
  return checks.failures == 0 ? 0 : 1;
}
