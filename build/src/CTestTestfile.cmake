# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("simnet")
subdirs("netflow")
subdirs("stats")
subdirs("p2p")
subdirs("hosts")
subdirs("botnet")
subdirs("trace")
subdirs("detect")
subdirs("eval")
