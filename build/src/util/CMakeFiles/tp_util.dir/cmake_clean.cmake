file(REMOVE_RECURSE
  "CMakeFiles/tp_util.dir/format.cpp.o"
  "CMakeFiles/tp_util.dir/format.cpp.o.d"
  "CMakeFiles/tp_util.dir/rng.cpp.o"
  "CMakeFiles/tp_util.dir/rng.cpp.o.d"
  "libtp_util.a"
  "libtp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
