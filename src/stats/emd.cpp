#include "stats/emd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "stats/flat_signature.h"
#include "util/error.h"
#include "util/parallel.h"

namespace tradeplot::stats {

namespace {

obs::Histogram& emd_tile_seconds() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "tradeplot_pairwise_tile_seconds",
      "Wall-clock duration of one pairwise distance tile", obs::duration_buckets(),
      {{"kernel", "emd"}});
  return h;
}

double total_weight(const Signature& s) {
  double w = 0.0;
  for (const SignaturePoint& p : s) {
    if (p.weight < 0.0) throw util::ConfigError("EMD: negative signature weight");
    w += p.weight;
  }
  return w;
}

Signature normalized(const Signature& s) {
  const double w = total_weight(s);
  if (!(w > 0.0)) throw util::ConfigError("EMD: signature has no mass");
  Signature out = s;
  for (SignaturePoint& p : out) p.weight /= w;
  return out;
}

}  // namespace

double emd_1d(const Signature& a_in, const Signature& b_in) {
  Signature a = normalized(a_in);
  Signature b = normalized(b_in);
  const auto by_pos = [](const SignaturePoint& x, const SignaturePoint& y) {
    return x.position < y.position;
  };
  std::sort(a.begin(), a.end(), by_pos);
  std::sort(b.begin(), b.end(), by_pos);

  // EMD with |x-y| ground distance equals the integral of |F_a - F_b|:
  // sweep the merged support left to right, carrying the CDF difference.
  double emd = 0.0;
  double carried = 0.0;  // F_a(x) - F_b(x) just left of the sweep point
  double prev_pos = 0.0;
  bool first = true;
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    double pos;
    if (j >= b.size() || (i < a.size() && a[i].position <= b[j].position)) {
      pos = a[i].position;
    } else {
      pos = b[j].position;
    }
    if (!first) emd += std::abs(carried) * (pos - prev_pos);
    first = false;
    while (i < a.size() && a[i].position == pos) carried += a[i++].weight;
    while (j < b.size() && b[j].position == pos) carried -= b[j++].weight;
    prev_pos = pos;
  }
  return emd;
}

namespace {

// Successive-shortest-path min-cost flow on the bipartite transportation
// graph: source -> suppliers (capacity = supply) -> consumers (cost =
// ground distance, infinite capacity) -> sink (capacity = demand).
// Real-valued capacities; each augmentation saturates at least one
// source or sink arc, so there are at most |a| + |b| iterations.
class Transportation {
 public:
  Transportation(const Signature& a, const Signature& b, const GroundDistance& distance)
      : n_a_(a.size()), n_b_(b.size()) {
    const std::size_t nodes = 2 + n_a_ + n_b_;
    graph_.assign(nodes, {});
    for (std::size_t i = 0; i < n_a_; ++i) add_edge(source(), supplier(i), a[i].weight, 0.0);
    for (std::size_t j = 0; j < n_b_; ++j) add_edge(consumer(j), sink(), b[j].weight, 0.0);
    for (std::size_t i = 0; i < n_a_; ++i) {
      for (std::size_t j = 0; j < n_b_; ++j) {
        const double c = distance(a[i].position, b[j].position);
        if (c < 0.0) throw util::ConfigError("EMD: negative ground distance");
        add_edge(supplier(i), consumer(j), kInf, c);
      }
    }
  }

  double min_cost() {
    double cost = 0.0;
    for (;;) {
      // Bellman-Ford shortest path in the residual graph (residual arcs can
      // have negative cost, so Dijkstra would need potentials; graph is
      // small enough that Bellman-Ford is simpler and still fast).
      const std::size_t n = graph_.size();
      std::vector<double> dist(n, kInf);
      std::vector<int> prev_edge(n, -1);
      std::vector<std::size_t> prev_node(n, 0);
      dist[source()] = 0.0;
      for (std::size_t round = 0; round + 1 < n; ++round) {
        bool changed = false;
        for (std::size_t u = 0; u < n; ++u) {
          if (dist[u] >= kInf) continue;
          for (std::size_t e = 0; e < graph_[u].size(); ++e) {
            const Edge& edge = graph_[u][e];
            if (edge.capacity <= kEps) continue;
            if (dist[u] + edge.cost < dist[edge.to] - kEps) {
              dist[edge.to] = dist[u] + edge.cost;
              prev_edge[edge.to] = static_cast<int>(e);
              prev_node[edge.to] = u;
              changed = true;
            }
          }
        }
        if (!changed) break;
      }
      if (dist[sink()] >= kInf) break;  // no augmenting path left
      // Find bottleneck.
      double push = kInf;
      for (std::size_t v = sink(); v != source(); v = prev_node[v]) {
        const Edge& edge = graph_[prev_node[v]][static_cast<std::size_t>(prev_edge[v])];
        push = std::min(push, edge.capacity);
      }
      if (push <= kEps) break;
      for (std::size_t v = sink(); v != source(); v = prev_node[v]) {
        Edge& edge = graph_[prev_node[v]][static_cast<std::size_t>(prev_edge[v])];
        edge.capacity -= push;
        graph_[edge.to][edge.reverse].capacity += push;
        cost += push * edge.cost;
      }
    }
    return cost;
  }

 private:
  struct Edge {
    std::size_t to;
    std::size_t reverse;  // index of the reverse edge in graph_[to]
    double capacity;
    double cost;
  };

  static constexpr double kInf = std::numeric_limits<double>::max() / 4;
  static constexpr double kEps = 1e-12;

  [[nodiscard]] std::size_t source() const { return 0; }
  [[nodiscard]] std::size_t sink() const { return 1; }
  [[nodiscard]] std::size_t supplier(std::size_t i) const { return 2 + i; }
  [[nodiscard]] std::size_t consumer(std::size_t j) const { return 2 + n_a_ + j; }

  void add_edge(std::size_t from, std::size_t to, double capacity, double cost) {
    graph_[from].push_back(Edge{to, graph_[to].size(), capacity, cost});
    graph_[to].push_back(Edge{from, graph_[from].size() - 1, 0.0, -cost});
  }

  std::size_t n_a_;
  std::size_t n_b_;
  std::vector<std::vector<Edge>> graph_;
};

}  // namespace

double emd_transport(const Signature& a, const Signature& b, const GroundDistance& distance) {
  const Signature na = normalized(a);
  const Signature nb = normalized(b);
  Transportation problem(na, nb, distance);
  return problem.min_cost();
}

double emd_transport(const Signature& a, const Signature& b) {
  return emd_transport(a, b, [](double x, double y) { return std::abs(x - y); });
}

std::vector<double> pairwise_emd(const std::vector<Signature>& sigs, std::size_t threads) {
  // Preprocess once: validate (up front, on this thread), normalize, sort,
  // pack. Every per-pair evaluation below is then an allocation-free merge
  // sweep instead of emd_1d's copy+sort of both signatures.
  const FlatSignatureSet flat(sigs, threads);
  const std::size_t n = sigs.size();
  std::vector<double> d(n * n, 0.0);
  if (n < 2) return d;

  // Upper triangle in kTile x kTile tiles: one tile touches at most 2*kTile
  // signatures' flat data, which stays resident in cache across the tile's
  // kTile² sweeps. Each tile owns a disjoint set of (i,j) cells — and their
  // (j,i) mirrors, which no other tile writes — so tiles can run on any
  // worker in any order and the matrix is bit-identical for every thread
  // count. Every cell holds exactly the value emd_1d would produce.
  constexpr std::size_t kTile = 64;
  const std::size_t tile_count = (n + kTile - 1) / kTile;
  std::vector<std::pair<std::size_t, std::size_t>> tiles;
  tiles.reserve(tile_count * (tile_count + 1) / 2);
  for (std::size_t ti = 0; ti < tile_count; ++ti) {
    for (std::size_t tj = ti; tj < tile_count; ++tj) tiles.emplace_back(ti, tj);
  }
  util::parallel_for(0, tiles.size(), 1, threads, [&](std::size_t t) {
    const obs::ScopedTimer tile_timer(obs::enabled() ? &emd_tile_seconds() : nullptr);
    const auto [ti, tj] = tiles[t];
    const std::size_t i_end = std::min(n, (ti + 1) * kTile);
    const std::size_t j_end = std::min(n, (tj + 1) * kTile);
    for (std::size_t i = ti * kTile; i < i_end; ++i) {
      // Four sweeps per step through the row via the x4 kernel (per-lane
      // bit-identical to emd_1d_presorted, so every cell still holds exactly
      // the value emd_1d would produce), scalar kernel for the tail.
      std::size_t j = std::max(i + 1, tj * kTile);
      const std::size_t a4[4] = {i, i, i, i};
      std::size_t b4[4];
      double out4[4];
      for (; j + 4 <= j_end; j += 4) {
        b4[0] = j;
        b4[1] = j + 1;
        b4[2] = j + 2;
        b4[3] = j + 3;
        flat.emd_x4(a4, b4, out4);
        for (std::size_t l = 0; l < 4; ++l) {
          d[i * n + j + l] = out4[l];
          d[(j + l) * n + i] = out4[l];
        }
      }
      const FlatSignatureView a = flat.view(i);
      for (; j < j_end; ++j) {
        const double v = emd_1d_presorted(a, flat.view(j));
        d[i * n + j] = v;
        d[j * n + i] = v;
      }
    }
  });
  return d;
}

std::vector<double> pairwise_emd(const std::vector<Signature>& sigs) {
  return pairwise_emd(sigs, 0);
}

}  // namespace tradeplot::stats
