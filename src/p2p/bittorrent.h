// BitTorrent host behaviour model.
//
// Mechanics modelled:
//   * HTTP tracker announces ("GET /announce?...") on the client's
//     re-announce timer, plus occasional scrapes ("GET /scrape"),
//   * mainline-DHT get_peers lookups against the shared Kademlia Overlay
//     (bencoded "d1:ad2:id20..." query payloads; probes to departed nodes
//     fail),
//   * swarm peer connections: the 0x13 "BitTorrent protocol" handshake,
//     bidirectional piece exchange (tit-for-tat upload riding the same
//     connection), many stale peer addresses from the tracker/DHT,
//   * seeding: inbound connections served after the download completes.
//
// One special population matters for the paper's Fig. 5: "web-only" torrent
// users who merely fetch .torrent files from trackers over HTTP and never
// join a swarm — they are Traders by payload ground truth but show very low
// failed-connection rates. `web_only` reproduces them.
#pragma once

#include <vector>

#include "netflow/app_env.h"
#include "p2p/churn.h"
#include "netflow/flow_emit.h"
#include "p2p/kademlia.h"
#include "util/rng.h"

namespace tradeplot::p2p {

struct BitTorrentConfig {
  double session_start_frac_max = 0.5;
  double session_mu = 9.2;  // ~ 2.7 h median: clients keep seeding
  double session_sigma = 0.7;
  double torrent_think_mu = 6.0;  // new torrent every ~7 min (median)
  double torrent_think_sigma = 1.0;
  double announce_period = 1800.0;  // tracker re-announce
  double announce_jitter = 60.0;
  int peers_per_announce = 12;
  double peer_contact_spread = 60.0;  // dial returned peers over this window
  double file_lo_bytes = 1e6;
  double file_hi_bytes = 2e9;  // DVDs happen
  double file_alpha = 1.0;
  double rate_lo = 5e4;
  double rate_hi = 1.5e6;
  double titfortat_upload_frac = 0.25;  // upload share on download connections
  double inbound_per_hour = 10.0;
  bool web_only = false;  // only fetches .torrent files over HTTP
  ChurnParams churn{};
  LookupParams lookup{};
};

class BitTorrentHost {
 public:
  BitTorrentHost(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng, Overlay* dht,
                 BitTorrentConfig config = {});

  void start();

  static constexpr std::uint16_t kPeerPort = 6881;
  static constexpr std::uint16_t kTrackerPort = 80;
  static constexpr std::uint16_t kDhtPort = 6881;

 private:
  void begin_session();
  void torrent_loop(double session_end);
  void start_torrent(double session_end);
  void announce(simnet::Ipv4 tracker, double session_end, bool first);
  void dial_swarm(double session_end);
  void serve_inbound_loop(double session_end);
  void dht_get_peers();

  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  Overlay* dht_;
  BitTorrentConfig config_;
  ChurnModel churn_;
  RoutingTable table_;
};

}  // namespace tradeplot::p2p
