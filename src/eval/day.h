// One evaluation "day": a campus trace with both botnets' honeynet traces
// overlaid, plus extracted features and ground-truth host partitions.
//
// This mirrors the paper's per-day procedure (§V-B): the same fixed 24-hour
// bot traces are re-assigned to fresh random campus hosts on every day, and
// all detection results are averaged over the (eight) days.
#pragma once

#include <cstdint>
#include <vector>

#include "botnet/honeynet.h"
#include "detect/features.h"
#include "netflow/trace_set.h"
#include "trace/campus.h"
#include "trace/overlay.h"

namespace tradeplot::eval {

struct DayData {
  netflow::TraceSet combined;
  detect::FeatureMap features;
  std::vector<simnet::Ipv4> storm_hosts;    // campus hosts carrying Storm bots
  std::vector<simnet::Ipv4> nugache_hosts;  // campus hosts carrying Nugache bots

  [[nodiscard]] bool is_storm(simnet::Ipv4 host) const;
  [[nodiscard]] bool is_nugache(simnet::Ipv4 host) const;
  [[nodiscard]] bool is_plotter(simnet::Ipv4 host) const {
    return is_storm(host) || is_nugache(host);
  }
  /// Trader by ground truth and not carrying a bot.
  [[nodiscard]] bool is_trader(simnet::Ipv4 host) const;
};

/// Generates day `day_index`: a campus trace seeded from (campus.seed,
/// day_index) with `storm` and `nugache` honeynet traces overlaid onto
/// disjoint random active hosts. Either trace may be empty (no flows / no
/// truth), producing a single-botnet day — the paper evaluates Storm and
/// Nugache in separate runs over the same eight campus days ("we also
/// perform tests with Nugache bots ... for the same false positive rate").
[[nodiscard]] DayData make_day(const trace::CampusConfig& campus_template,
                               const netflow::TraceSet& storm, const netflow::TraceSet& nugache,
                               std::uint64_t day_index);

}  // namespace tradeplot::eval
