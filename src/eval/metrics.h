// Detection metrics relative to an input population.
//
// The paper reports every rate relative to the set a test actually received
// ("each ROC curve plots the true and false positive rates relative to its
// input set"), so rates here are parameterised by `population`.
#pragma once

#include <vector>

#include "detect/tests.h"
#include "eval/day.h"

namespace tradeplot::eval {

struct StageRates {
  double storm_tp = 0.0;    // detected Storm carriers / Storm carriers in population
  double nugache_tp = 0.0;
  double fp = 0.0;          // flagged non-Plotters / non-Plotters in population
  double traders_remaining = 0.0;  // flagged Traders / Traders in population
  std::size_t storm_in_population = 0;
  std::size_t nugache_in_population = 0;
  std::size_t negatives_in_population = 0;
  std::size_t traders_in_population = 0;
  std::size_t flagged = 0;
};

/// Rates for `output` given that the stage saw `population`.
[[nodiscard]] StageRates stage_rates(const DayData& day, const detect::HostSet& output,
                                     const detect::HostSet& population);

/// Element-wise mean of per-day rates (for "averaged over the eight days").
[[nodiscard]] StageRates average(const std::vector<StageRates>& days);

}  // namespace tradeplot::eval
