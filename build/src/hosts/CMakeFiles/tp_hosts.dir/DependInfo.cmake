
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hosts/misc.cpp" "src/hosts/CMakeFiles/tp_hosts.dir/misc.cpp.o" "gcc" "src/hosts/CMakeFiles/tp_hosts.dir/misc.cpp.o.d"
  "/root/repo/src/hosts/services.cpp" "src/hosts/CMakeFiles/tp_hosts.dir/services.cpp.o" "gcc" "src/hosts/CMakeFiles/tp_hosts.dir/services.cpp.o.d"
  "/root/repo/src/hosts/web.cpp" "src/hosts/CMakeFiles/tp_hosts.dir/web.cpp.o" "gcc" "src/hosts/CMakeFiles/tp_hosts.dir/web.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/tp_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/tp_netflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
