// ShardedDetector and its merge stage (src/shard/).
//
// The contracts under test, in the order the subsystem makes them:
//   * HashRing — deterministic, balanced, ConfigError on degenerate
//     geometry, short-circuit at one shard;
//   * shards == 1 — bit-identical verdicts to StreamingDetector (same
//     pipeline, same shed points, same τ_hm);
//   * shards > 1 — the scalar stages (data reduction, θ_vol, θ_churn) are
//     *set-identical* to the single-detector oracle whenever the merged
//     quantile sketches stayed lossless (population < k), with the reported
//     error bounds at exactly 0; the two-level θ_hm stage is an
//     approximation, so its agreement with the oracle is measured and
//     reported, not asserted to 100%;
//   * checkpoints — kill-and-restore resumes bit-identically, geometry
//     mismatches are ConfigError, corruption is ParseError;
//   * the weighted UPGMA driver — hand-checked Lance–Williams heights;
//   * human_machine_local — exports singletons (with medoid == member),
//     which human_machine_test would have suppressed.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "detect/human_machine.h"
#include "detect/streaming.h"
#include "netflow/flow_batch.h"
#include "shard/ring.h"
#include "shard/sharded_detector.h"
#include "stats/hcluster.h"
#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::shard {
namespace {

bool is_internal(simnet::Ipv4 a) { return (a.value() >> 24) == 10; }

// ---------------------------------------------------------------------------
// Workload: one detection window with a separable population. "Bot" hosts
// run a 60 s timer with millisecond jitter and fail often (they pass data
// reduction and cluster tightly under θ_hm); "human" hosts browse with
// lognormal gaps and mostly succeed. Every host revisits a small destination
// pool so it accrues enough interstitial samples to be θ_hm-eligible.

struct Event {
  double t;
  simnet::Ipv4 src, dst;
  std::uint64_t bytes_src, bytes_dst;
  bool failed;
};

std::vector<netflow::FlowBatch> make_window(std::size_t hosts, std::size_t bots,
                                            std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<Event> events;
  for (std::size_t h = 0; h < hosts; ++h) {
    const bool bot = h < bots;
    const simnet::Ipv4 src(10, static_cast<std::uint8_t>(h >> 8),
                           static_cast<std::uint8_t>(h), 1);
    std::array<simnet::Ipv4, 6> pool{};
    for (std::size_t d = 0; d < pool.size(); ++d) {
      // One internal destination per host keeps the responder path hot.
      pool[d] = d == 0 ? simnet::Ipv4(10, static_cast<std::uint8_t>((h + 7) >> 8),
                                      static_cast<std::uint8_t>(h + 7), 2)
                       : simnet::Ipv4(198, static_cast<std::uint8_t>(h % 251),
                                      static_cast<std::uint8_t>(d), 7);
    }
    double t = rng.uniform(0.0, 600.0);
    for (int i = 0; i < 130; ++i) {
      t += bot ? 60.0 + rng.uniform(-0.05, 0.05) : rng.lognormal(3.6, 1.0);
      Event e;
      e.t = t;
      e.src = src;
      e.dst = pool[static_cast<std::size_t>(i) % pool.size()];
      e.bytes_src = bot ? 250 : 4000 + static_cast<std::uint64_t>(rng.uniform_int(0, 40000));
      e.bytes_dst = bot ? 120 : 9000 + static_cast<std::uint64_t>(rng.uniform_int(0, 90000));
      e.failed = rng.uniform(0.0, 1.0) < (bot ? 0.45 : 0.05);
      events.push_back(e);
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.t != b.t ? a.t < b.t : a.src < b.src;
  });

  std::vector<netflow::FlowBatch> batches;
  batches.emplace_back();
  for (const Event& e : events) {
    if (batches.back().full()) batches.emplace_back();
    netflow::FlowBatch& b = batches.back();
    const std::size_t row = b.append_default();
    b.src()[row] = e.src;
    b.dst()[row] = e.dst;
    b.start_time()[row] = e.t;
    b.end_time()[row] = e.t + 0.5;
    b.bytes_src()[row] = e.bytes_src;
    b.bytes_dst()[row] = e.bytes_dst;
    b.state()[row] = e.failed ? netflow::FlowState::kAttempted
                              : netflow::FlowState::kEstablished;
  }
  return batches;
}

detect::StreamingConfig streaming_config() {
  detect::StreamingConfig cfg;
  cfg.is_internal = is_internal;
  return cfg;
}

ShardedConfig sharded_config(std::size_t shards) {
  ShardedConfig cfg;
  cfg.shards = shards;
  cfg.is_internal = is_internal;
  return cfg;
}

std::vector<detect::WindowVerdict> run_sharded(std::size_t shards,
                                               const std::vector<netflow::FlowBatch>& batches,
                                               MergedPipelineReport* report = nullptr) {
  std::vector<detect::WindowVerdict> verdicts;
  ShardedDetector detector(sharded_config(shards),
                           [&](const detect::WindowVerdict& v) { verdicts.push_back(v); });
  for (const netflow::FlowBatch& b : batches) detector.ingest(b);
  detector.flush();
  if (report != nullptr) *report = detector.last_merge_report();
  return verdicts;
}

std::vector<detect::WindowVerdict> run_streaming(
    const std::vector<netflow::FlowBatch>& batches) {
  std::vector<detect::WindowVerdict> verdicts;
  detect::StreamingDetector detector(
      streaming_config(), [&](const detect::WindowVerdict& v) { verdicts.push_back(v); });
  for (const netflow::FlowBatch& b : batches) detector.ingest(b);
  detector.flush();
  return verdicts;
}

detect::HostSet sorted(detect::HostSet s) {
  std::sort(s.begin(), s.end());
  return s;
}

double jaccard(const detect::HostSet& a, const detect::HostSet& b) {
  const detect::HostSet sa = sorted(a), sb = sorted(b);
  detect::HostSet inter, uni;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(), std::back_inserter(inter));
  std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(), std::back_inserter(uni));
  return uni.empty() ? 1.0 : static_cast<double>(inter.size()) / static_cast<double>(uni.size());
}

void expect_verdicts_bit_identical(const std::vector<detect::WindowVerdict>& a,
                                   const std::vector<detect::WindowVerdict>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].window_index, b[i].window_index);
    EXPECT_EQ(a[i].window_start, b[i].window_start);
    EXPECT_EQ(a[i].flows_seen, b[i].flows_seen);
    EXPECT_EQ(a[i].degraded, b[i].degraded);
    EXPECT_EQ(sorted(a[i].result.plotters), sorted(b[i].result.plotters));
    EXPECT_EQ(sorted(a[i].result.reduced), sorted(b[i].result.reduced));
    EXPECT_EQ(sorted(a[i].result.s_vol), sorted(b[i].result.s_vol));
    EXPECT_EQ(sorted(a[i].result.s_churn), sorted(b[i].result.s_churn));
    EXPECT_EQ(a[i].result.hm.tau_hm, b[i].result.hm.tau_hm);
    ASSERT_EQ(a[i].result.hm.clusters.size(), b[i].result.hm.clusters.size());
    for (std::size_t c = 0; c < a[i].result.hm.clusters.size(); ++c) {
      EXPECT_EQ(a[i].result.hm.clusters[c].members, b[i].result.hm.clusters[c].members);
      EXPECT_EQ(a[i].result.hm.clusters[c].diameter, b[i].result.hm.clusters[c].diameter);
      EXPECT_EQ(a[i].result.hm.clusters[c].kept, b[i].result.hm.clusters[c].kept);
    }
  }
}

// ---------------------------------------------------------------------------
// HashRing

TEST(HashRingTest, DeterministicAcrossInstances) {
  const HashRing a(8), b(8);
  util::Pcg32 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const simnet::Ipv4 host(static_cast<std::uint32_t>(rng.uniform_int(0, 0x7fffffff)));
    EXPECT_EQ(a.shard_of(host), b.shard_of(host));
  }
}

TEST(HashRingTest, SingleShardShortCircuits) {
  const HashRing ring(1);
  util::Pcg32 rng(5);
  for (int i = 0; i < 100; ++i) {
    const simnet::Ipv4 host(static_cast<std::uint32_t>(rng.uniform_int(0, 0x7fffffff)));
    EXPECT_EQ(ring.shard_of(host), 0u);
  }
}

TEST(HashRingTest, BalancedWithinTolerance) {
  const std::size_t shards = 8;
  const HashRing ring(shards);
  std::vector<std::size_t> counts(shards, 0);
  for (std::uint32_t h = 0; h < 20000; ++h)
    ++counts[ring.shard_of(simnet::Ipv4(10, static_cast<std::uint8_t>(h >> 8),
                                        static_cast<std::uint8_t>(h), 1))];
  const double mean = 20000.0 / static_cast<double>(shards);
  for (const std::size_t c : counts) {
    // 64 vnodes/shard keeps the heaviest shard well under 2x the mean.
    EXPECT_GT(static_cast<double>(c), 0.5 * mean);
    EXPECT_LT(static_cast<double>(c), 1.7 * mean);
  }
}

TEST(HashRingTest, RejectsDegenerateGeometry) {
  EXPECT_THROW(HashRing(0), util::ConfigError);
  EXPECT_THROW(HashRing(4, 0), util::ConfigError);
}

// ---------------------------------------------------------------------------
// shards == 1: bit-identity with the single streaming detector

TEST(ShardedDetectorTest, OneShardMatchesStreamingDetectorBitForBit) {
  const auto batches = make_window(160, 12, 41);
  const auto oracle = run_sharded(1, batches);
  const auto reference = run_streaming(batches);
  ASSERT_FALSE(reference.empty());
  expect_verdicts_bit_identical(oracle, reference);
}

// ---------------------------------------------------------------------------
// shards > 1: scalar stages exact in the lossless regime, θ_hm agreement
// measured and reported

class MergedOracleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergedOracleTest, ScalarStagesMatchOracleWithZeroErrorBound) {
  const std::size_t shards = GetParam();
  const auto batches = make_window(220, 16, 43);  // population << sketch k = 1024
  const auto reference = run_streaming(batches);
  MergedPipelineReport report;
  const auto merged = run_sharded(shards, batches, &report);
  ASSERT_EQ(reference.size(), 1u);
  ASSERT_EQ(merged.size(), 1u);

  // Lossless sketches: bounds must be exactly zero and every scalar stage's
  // survivor set identical to the single-detector pipeline.
  EXPECT_EQ(report.thresholds.reduction_error_bound, 0u);
  EXPECT_EQ(report.thresholds.vol_error_bound, 0u);
  EXPECT_EQ(report.thresholds.churn_error_bound, 0u);
  EXPECT_EQ(sorted(merged[0].result.input), sorted(reference[0].result.input));
  EXPECT_EQ(sorted(merged[0].result.reduced), sorted(reference[0].result.reduced));
  EXPECT_EQ(sorted(merged[0].result.s_vol), sorted(reference[0].result.s_vol));
  EXPECT_EQ(sorted(merged[0].result.s_churn), sorted(reference[0].result.s_churn));
  EXPECT_EQ(sorted(merged[0].result.vol_or_churn), sorted(reference[0].result.vol_or_churn));

  // θ_hm is the documented approximation (stitched-diameter upper bounds,
  // two cuts): measure and report agreement with the oracle instead of
  // pretending it is exact. The bots' tight timer cluster must survive the
  // stitch, so agreement cannot be degenerate.
  const double agreement =
      jaccard(merged[0].result.plotters, reference[0].result.plotters);
  ::testing::Test::RecordProperty("theta_hm_jaccard_x1000",
                                  static_cast<int>(agreement * 1000));
  std::printf("[ shards=%zu ] theta_hm verdict agreement (Jaccard): %.3f "
              "(merged %zu vs oracle %zu plotters, %zu representatives)\n",
              shards, agreement, merged[0].result.plotters.size(),
              reference[0].result.plotters.size(), report.representatives);
  EXPECT_FALSE(reference[0].result.plotters.empty());
  EXPECT_GT(agreement, 0.0);
  EXPECT_GT(report.representatives, 0u);
  EXPECT_EQ(report.shard_count, shards);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, MergedOracleTest, ::testing::Values(2u, 8u));

TEST(ShardedDetectorTest, MergedRunIsDeterministic) {
  const auto batches = make_window(120, 8, 47);
  const auto a = run_sharded(4, batches);
  const auto b = run_sharded(4, batches);
  expect_verdicts_bit_identical(a, b);
}

// ---------------------------------------------------------------------------
// Checkpoints

TEST(ShardedCheckpointTest, KillAndRestoreResumesBitIdentically) {
  const auto batches = make_window(100, 8, 53);
  const std::size_t cut = batches.size() / 2;
  const auto tmp = std::filesystem::temp_directory_path() / "tp_shard_ckpt_test.bin";

  const auto reference = run_sharded(4, batches);

  std::vector<detect::WindowVerdict> resumed;
  const auto sink = [&](const detect::WindowVerdict& v) { resumed.push_back(v); };
  {
    ShardedDetector first(sharded_config(4), sink);
    for (std::size_t i = 0; i < cut; ++i) first.ingest(batches[i]);
    first.save_checkpoint_file(tmp.string());
    // `first` is abandoned here: the simulated kill -9.
  }
  ShardedDetector second(sharded_config(4), sink);
  second.restore_checkpoint_file(tmp.string());
  for (std::size_t i = cut; i < batches.size(); ++i) second.ingest(batches[i]);
  second.flush();
  std::filesystem::remove(tmp);

  expect_verdicts_bit_identical(resumed, reference);
}

TEST(ShardedCheckpointTest, GeometryMismatchIsConfigError) {
  const auto batches = make_window(60, 4, 59);
  const auto tmp = std::filesystem::temp_directory_path() / "tp_shard_geom_test.bin";
  {
    ShardedDetector d(sharded_config(2), [](const detect::WindowVerdict&) {});
    for (const netflow::FlowBatch& b : batches) d.ingest(b);
    d.save_checkpoint_file(tmp.string());
  }
  ShardedDetector other(sharded_config(4), [](const detect::WindowVerdict&) {});
  EXPECT_THROW(other.restore_checkpoint_file(tmp.string()), util::ConfigError);

  ShardedConfig narrow = sharded_config(2);
  narrow.vnodes = 8;
  ShardedDetector rering(narrow, [](const detect::WindowVerdict&) {});
  EXPECT_THROW(rering.restore_checkpoint_file(tmp.string()), util::ConfigError);
  std::filesystem::remove(tmp);
}

TEST(ShardedCheckpointTest, CorruptImageIsParseErrorNeverPartial) {
  const auto batches = make_window(60, 4, 61);
  const auto tmp = std::filesystem::temp_directory_path() / "tp_shard_corrupt_test.bin";
  {
    ShardedDetector d(sharded_config(2), [](const detect::WindowVerdict&) {});
    for (const netflow::FlowBatch& b : batches) d.ingest(b);
    d.save_checkpoint_file(tmp.string());
  }
  std::fstream f(tmp, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  f.seekp(size / 2);
  char byte = 0;
  f.seekg(size / 2);
  f.read(&byte, 1);
  f.seekp(size / 2);
  byte = static_cast<char>(byte ^ 0x5a);
  f.write(&byte, 1);
  f.close();

  ShardedDetector fresh(sharded_config(2), [](const detect::WindowVerdict&) {});
  EXPECT_THROW(fresh.restore_checkpoint_file(tmp.string()), util::ParseError);
  std::filesystem::remove(tmp);
}

TEST(ShardedDetectorTest, RejectsDegenerateConfig) {
  EXPECT_THROW(ShardedDetector(sharded_config(0), [](const detect::WindowVerdict&) {}),
               util::ConfigError);
  ShardedConfig no_vnodes = sharded_config(2);
  no_vnodes.vnodes = 0;
  EXPECT_THROW(ShardedDetector(no_vnodes, [](const detect::WindowVerdict&) {}),
               util::ConfigError);
  ShardedConfig no_pred = sharded_config(2);
  no_pred.is_internal = nullptr;
  EXPECT_THROW(ShardedDetector(no_pred, [](const detect::WindowVerdict&) {}),
               util::ConfigError);
}

// ---------------------------------------------------------------------------
// Level-two building blocks

TEST(WeightedUpgmaTest, HandComputedLanceWilliamsHeights) {
  // Leaves {0,1,2} with weights {2,1,1}: d(0,1)=1, d(0,2)=4, d(1,2)=5.
  // First merge joins (0,1) at height 1. The merged node's distance to leaf
  // 2 under weighted average linkage is (2*4 + 1*5) / 3 = 13/3 — the height
  // unweighted UPGMA would produce had leaf 0 been two coincident points.
  const std::size_t n = 3;
  std::vector<double> dist(n * n, 0.0);
  const auto set = [&](std::size_t i, std::size_t j, double d) {
    dist[i * n + j] = dist[j * n + i] = d;
  };
  set(0, 1, 1.0);
  set(0, 2, 4.0);
  set(1, 2, 5.0);
  const std::vector<std::size_t> weights{2, 1, 1};
  const stats::Dendrogram dendrogram =
      stats::agglomerative_average_linkage_weighted(dist, n, weights);
  ASSERT_EQ(dendrogram.merges().size(), 2u);
  EXPECT_DOUBLE_EQ(dendrogram.merges()[0].height, 1.0);
  EXPECT_EQ(dendrogram.merges()[0].size, 3u);  // sizes count original items
  EXPECT_DOUBLE_EQ(dendrogram.merges()[1].height, 13.0 / 3.0);
  EXPECT_EQ(dendrogram.merges()[1].size, 4u);

  EXPECT_THROW(stats::agglomerative_average_linkage_weighted(
                   dist, n, std::vector<std::size_t>{2, 1}),
               util::ConfigError);
  EXPECT_THROW(stats::agglomerative_average_linkage_weighted(
                   dist, n, std::vector<std::size_t>{2, 1, 0}),
               util::ConfigError);
}

TEST(HumanMachineLocalTest, ExportsSingletonsWithSelfMedoid) {
  // A population too small and too scattered for human_machine_test to keep
  // anything (min_cluster_size = 3) must still come back from the local
  // level in full: the merge stage, not the shard, decides cluster fates.
  const auto batches = make_window(24, 0, 67);
  std::vector<detect::WindowVerdict> verdicts;
  detect::StreamingDetector detector(
      streaming_config(), [&](const detect::WindowVerdict& v) { verdicts.push_back(v); });
  for (const netflow::FlowBatch& b : batches) detector.ingest(b);
  detector.flush();
  ASSERT_EQ(verdicts.size(), 1u);
  const detect::FeatureMap& features = verdicts[0].features;

  detect::HostSet input;
  for (const auto& [addr, feat] : features)
    if (is_internal(addr)) input.push_back(addr);
  std::sort(input.begin(), input.end());

  const detect::LocalClusterResult local = detect::human_machine_local(features, input);
  std::size_t exported = 0;
  for (const detect::LocalCluster& c : local.clusters) {
    exported += c.members.size();
    ASSERT_FALSE(c.members.empty());
    EXPECT_TRUE(std::is_sorted(c.members.begin(), c.members.end()));
    EXPECT_TRUE(std::find(c.members.begin(), c.members.end(), c.medoid) != c.members.end());
    if (c.members.size() == 1) {
      EXPECT_EQ(c.medoid, c.members[0]);
      EXPECT_EQ(c.diameter, 0.0);
    }
  }
  // Everything eligible is exported — no min_cluster_size floor, no τ_hm.
  EXPECT_EQ(exported + local.skipped.size(), input.size());
}

}  // namespace
}  // namespace tradeplot::shard
