// Bot-trace overlay: re-homes honeynet Plotter traffic onto randomly chosen
// active internal campus hosts, as in the paper's §V evaluation setup.
//
// "For each day of traffic in the CMU dataset, we overlay the bot traces by
//  assigning them to randomly selected internal hosts that are active during
//  that day (including possibly Traders)."
//
// The honeynet traces are 24 h while the campus window is 6 h, so a window-
// length slice of each bot's trace is cut out (slice start configurable,
// random by default) and shifted into the campus window before re-homing.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "netflow/trace_set.h"
#include "util/rng.h"

namespace tradeplot::trace {

struct OverlayResult {
  netflow::TraceSet combined;
  /// Campus host that received each bot, keyed by the original honeynet ip.
  std::unordered_map<simnet::Ipv4, simnet::Ipv4> bot_to_host;
  /// The campus hosts now carrying bot traffic (ground-truth positives).
  std::vector<simnet::Ipv4> bot_hosts;
};

struct OverlayOptions {
  /// Pick the slice of the (longer) bot trace uniformly at random; if
  /// false, the slice starts at the beginning of the bot trace.
  bool random_slice = true;
  /// Campus hosts never chosen as bot carriers (e.g. hosts already carrying
  /// another botnet's trace in a previous overlay pass).
  std::vector<simnet::Ipv4> exclude_hosts;
  /// Only internal hosts are eligible carriers (the paper assigns bots to
  /// "internal hosts that are active"). Defaults to campus_internal().
  std::function<bool(simnet::Ipv4)> is_internal;
};

/// Overlays `bots` onto `campus`. Each bot is assigned a distinct active
/// internal host (an initiator in the campus trace) chosen uniformly at
/// random; the bot's flows get that host's source address. Ground truth for
/// the chosen hosts switches to the bot's kind. Throws util::ConfigError if
/// there are more bots than active hosts.
[[nodiscard]] OverlayResult overlay_bots(const netflow::TraceSet& campus,
                                         const netflow::TraceSet& bots, util::Pcg32& rng,
                                         const OverlayOptions& options = {});

}  // namespace tradeplot::trace
