file(REMOVE_RECURSE
  "CMakeFiles/ablation_binwidth.dir/ablation_binwidth.cpp.o"
  "CMakeFiles/ablation_binwidth.dir/ablation_binwidth.cpp.o.d"
  "ablation_binwidth"
  "ablation_binwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_binwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
