// campus_monitord: the FindPlotters monitor as a long-running daemon.
//
// Where campus_monitor --stream ingests one trace file and exits, this
// daemon accepts flows over a socket (the TPMF frame protocol,
// src/svc/frame.h), hosts one detector universe per configured tenant, and
// keeps running: checkpoints make kill -9 survivable, SIGHUP re-reads the
// config, SIGTERM/SIGINT drain and exit 0. See DESIGN.md §17 for the
// failure model and README for a quickstart.
//
// Usage: campus_monitord --config FILE [--check]
//
//   --config FILE   daemon configuration (required; see src/svc/config.h)
//   --check         parse + validate the config, print a summary, exit
//
// On startup the daemon prints one machine-readable line:
//
//   ready ingest_port=<N> http_port=<M>
//
// with the actual bound ports (0 for unix-domain endpoints), so scripts and
// tests that configured port 0 learn where to connect.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "svc/config.h"
#include "svc/daemon.h"
#include "util/error.h"
#include "util/interrupt.h"

using namespace tradeplot;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s --config FILE [--check]\n", argv0);
  return 2;
}

void print_config_summary(const svc::DaemonConfig& cfg) {
  std::printf("ingest %s, http %s, state_dir %s\n", cfg.ingest.c_str(),
              cfg.http.empty() ? "(disabled)" : cfg.http.c_str(), cfg.state_dir.c_str());
  std::printf("read_timeout %.1fs, idle_timeout %.1fs, metrics %s\n", cfg.read_timeout,
              cfg.idle_timeout, cfg.metrics ? "on" : "off");
  for (const svc::TenantParams& t : cfg.tenants)
    std::printf("tenant %s: window %.0fs, timing_budget %llu, checkpoint_every %llu, "
                "queue %llu rows (%s), shards %llu\n",
                t.name.c_str(), t.window,
                static_cast<unsigned long long>(t.timing_budget),
                static_cast<unsigned long long>(t.checkpoint_every),
                static_cast<unsigned long long>(t.queue_capacity),
                std::string(svc::to_string(t.overflow)).c_str(),
                static_cast<unsigned long long>(t.shards));
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  bool check_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      config_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check_only = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (config_path.empty()) return usage(argv[0]);

  svc::DaemonConfig config;
  try {
    config = svc::DaemonConfig::load_file(config_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (check_only) {
    print_config_summary(config);
    return 0;
  }

  util::install_signal_handlers();
  svc::Daemon daemon(config);
  try {
    daemon.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("ready ingest_port=%u http_port=%u\n", daemon.ingest_port(),
              daemon.http_port());
  std::fflush(stdout);

  while (!util::shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (util::consume_reload()) {
      try {
        const svc::DaemonConfig fresh = svc::DaemonConfig::load_file(config_path);
        std::printf("%s\n", daemon.reload(fresh).c_str());
      } catch (const std::exception& e) {
        // A broken config on disk must not take down a healthy daemon.
        std::fprintf(stderr, "reload rejected: %s\n", e.what());
      }
      std::fflush(stdout);
    }
  }

  std::printf("shutting down: draining queues, final checkpoints, flushing windows\n");
  std::fflush(stdout);
  daemon.stop();
  std::printf("shutdown complete\n");
  return 0;
}
