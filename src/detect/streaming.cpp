#include "detect/streaming.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "detect/payload_codec.h"
#include "netflow/trace_reader.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/checksum.h"
#include "util/error.h"

namespace tradeplot::detect {

namespace {

/// Streaming-detector metric handles; registered as one family set on first
/// enabled use so scrapes cover degraded/checkpoint families even at zero.
struct StreamObs {
  obs::Counter& flows = obs::Registry::global().counter(
      "tradeplot_stream_flows_total", "Flows ingested by the streaming detector");
  obs::Counter& windows = obs::Registry::global().counter(
      "tradeplot_stream_windows_total", "Detection windows closed, by outcome",
      {{"outcome", "ok"}});
  obs::Counter& windows_degraded = obs::Registry::global().counter(
      "tradeplot_stream_windows_total", "Detection windows closed, by outcome",
      {{"outcome", "degraded"}});
  obs::Counter& hosts_shed = obs::Registry::global().counter(
      "tradeplot_stream_hosts_shed_total",
      "Hosts whose timing state was shed by the budget");
  obs::Counter& samples_shed = obs::Registry::global().counter(
      "tradeplot_stream_timing_samples_shed_total",
      "Buffered timing samples dropped by budget shedding");
  obs::Gauge& timing_samples = obs::Registry::global().gauge(
      "tradeplot_stream_timing_samples",
      "Per-destination timing samples currently buffered across all hosts");
  obs::Gauge& timing_budget = obs::Registry::global().gauge(
      "tradeplot_stream_timing_budget",
      "Configured timing-sample budget (0 = unlimited)");
  obs::Histogram& window_flows = obs::Registry::global().histogram(
      "tradeplot_window_flows", "Flows per closed detection window",
      obs::count_buckets());
  obs::Histogram& checkpoint_bytes = obs::Registry::global().histogram(
      "tradeplot_checkpoint_bytes", "Checkpoint payload size",
      obs::size_buckets());

  static StreamObs& get() {
    static StreamObs o;
    return o;
  }
};

}  // namespace

StreamingDetector::StreamingDetector(StreamingConfig config, VerdictSink sink)
    : config_(std::move(config)), sink_(std::move(sink)) {
  if (!config_.is_internal)
    throw util::ConfigError("StreamingDetector: is_internal required");
  if (config_.window <= 0.0)
    throw util::ConfigError("StreamingDetector: window must be > 0");
  if (!sink_) throw util::ConfigError("StreamingDetector: verdict sink required");
}

void StreamingDetector::ingest_one(simnet::Ipv4 src, simnet::Ipv4 dst, double start_time,
                                   std::uint64_t bytes_src, std::uint64_t bytes_dst,
                                   bool failed) {
  if (!window_open_) {
    // First flow anchors the first window at a whole multiple of D, so
    // window boundaries are stable regardless of when traffic starts.
    window_start_ = std::floor(start_time / config_.window) * config_.window;
    window_open_ = true;
  }
  roll_to(start_time);

  const auto touch = [&](simnet::Ipv4 host, double t) -> HostState& {
    HostState& state = hosts_[host];
    if (!state.seen) {
      state.seen = true;
      state.features.host = host;
      state.features.first_activity = t;
    } else {
      state.features.first_activity = std::min(state.features.first_activity, t);
    }
    return state;
  };

  if (config_.is_internal(src)) {
    HostState& state = touch(src, start_time);
    HostFeatures& f = state.features;
    f.flows_initiated += 1;
    if (failed) f.flows_failed += 1;
    f.bytes_sent_initiated += bytes_src;
    // Accumulate the raw start time; churn and interstitials are derived
    // from the sorted per-destination times at window close, so late
    // arrivals land in their true position instead of producing spurious
    // |gap| samples that diverge from the batch extractor.
    //
    // A host whose timing state was shed this window stops buffering (its
    // scalar counters above stay exact); everyone else counts toward the
    // window's timing budget.
    if (!state.timing_shed) {
      state.per_dst_times[dst].push_back(start_time);
      ++state.timing_samples;
      ++timing_samples_;
      if (config_.timing_budget != 0 && timing_samples_ > config_.timing_budget)
        shed_timing_state();
    }
  }
  if (config_.is_internal(dst) && !failed) {
    HostState& state = touch(dst, start_time);
    state.features.flows_received += 1;
    state.features.bytes_sent_received += bytes_dst;
  }
  ++flows_in_window_;
  ++flows_ingested_total_;
}

void StreamingDetector::ingest(const netflow::FlowRecord& flow) {
  ingest_one(flow.src, flow.dst, flow.start_time, flow.bytes_src, flow.bytes_dst,
             flow.failed());
  if (obs::enabled()) {
    StreamObs& o = StreamObs::get();
    o.flows.add();
    o.timing_samples.set(static_cast<double>(timing_samples_));
    o.timing_budget.set(static_cast<double>(config_.timing_budget));
  }
}

void StreamingDetector::ingest(const netflow::FlowBatch& batch) {
  ingest(batch, 0, batch.size());
}

void StreamingDetector::ingest(const netflow::FlowBatch& batch, std::size_t begin,
                               std::size_t end) {
  // Column scan: only the six fields the detector reads are ever touched,
  // so ingesting a batch streams ~33 bytes per flow instead of the whole
  // 144-byte record. Windows still roll per flow (ingest_one), so verdicts
  // are identical to record-at-a-time ingestion of the same rows.
  const simnet::Ipv4* src = batch.src();
  const simnet::Ipv4* dst = batch.dst();
  const double* start = batch.start_time();
  const std::uint64_t* bytes_src = batch.bytes_src();
  const std::uint64_t* bytes_dst = batch.bytes_dst();
  const netflow::FlowState* state = batch.state();
  for (std::size_t i = begin; i < end; ++i) {
    ingest_one(src[i], dst[i], start[i], bytes_src[i], bytes_dst[i],
               state[i] != netflow::FlowState::kEstablished);
  }
  if (obs::enabled() && end > begin) {
    StreamObs& o = StreamObs::get();
    o.flows.add(end - begin);
    o.timing_samples.set(static_cast<double>(timing_samples_));
    o.timing_budget.set(static_cast<double>(config_.timing_budget));
  }
}

void StreamingDetector::shed_timing_state() {
  // Lowest evidence first: hosts with the fewest buffered timing samples
  // have the least interstitial/churn signal to lose. Ties break by
  // address so the shed set is deterministic for a given flow sequence.
  std::vector<std::pair<std::size_t, simnet::Ipv4>> candidates;
  candidates.reserve(hosts_.size());
  for (const auto& [host, state] : hosts_) {
    if (!state.timing_shed && state.timing_samples > 0)
      candidates.emplace_back(state.timing_samples, host);
  }
  std::sort(candidates.begin(), candidates.end());

  // Hysteresis: shed down to ~3/4 of the budget so one more sample does not
  // immediately re-trigger a full scan-and-sort.
  const std::size_t target = config_.timing_budget - config_.timing_budget / 4;
  for (const auto& [samples, host] : candidates) {
    if (timing_samples_ <= target) break;
    HostState& state = hosts_.at(host);
    timing_samples_ -= state.timing_samples;
    timing_samples_shed_ += state.timing_samples;
    state.timing_samples = 0;
    state.per_dst_times.clear();
    state.timing_shed = true;
    ++hosts_shed_;
  }
}

void StreamingDetector::roll_to(double time) {
  while (window_open_ && time >= window_start_ + config_.window) {
    emit();
    window_start_ += config_.window;
  }
}

void StreamingDetector::emit() {
  const obs::StageTimer close_timer(obs::Stage::kWindowClose);
  // Finalize per-destination state (churn + interstitials) via the same
  // helper as the batch extractor.
  FeatureMap features;
  features.reserve(hosts_.size());
  for (auto& [host, state] : hosts_) {
    finalize_destinations(state.features, state.per_dst_times, config_.new_ip_grace);
    features.emplace(host, std::move(state.features));
  }

  WindowVerdict verdict;
  verdict.window_index = windows_emitted_;
  verdict.window_start = window_start_;
  verdict.window_end = window_start_ + config_.window;
  verdict.flows_seen = flows_in_window_;
  verdict.degraded = hosts_shed_ > 0;
  verdict.hosts_shed = hosts_shed_;
  verdict.timing_samples_shed = timing_samples_shed_;
  if (!features.empty()) {
    verdict.result =
        find_plotters(features, config_.pipeline, config_.signature_cache ? &hm_cache_ : nullptr);
  }
  verdict.features = std::move(features);
  sink_(verdict);

  if (obs::enabled()) {
    StreamObs& o = StreamObs::get();
    (verdict.degraded ? o.windows_degraded : o.windows).add();
    o.hosts_shed.add(hosts_shed_);
    o.samples_shed.add(timing_samples_shed_);
    o.window_flows.observe(static_cast<double>(flows_in_window_));
    o.timing_samples.set(0.0);
  }

  hosts_.clear();
  flows_in_window_ = 0;
  timing_samples_ = 0;
  hosts_shed_ = 0;
  timing_samples_shed_ = 0;
  ++windows_emitted_;
}

void StreamingDetector::flush() {
  if (!window_open_) return;
  emit();
  window_open_ = false;
}

// ---------------------------------------------------------------------------
// Checkpoint format: a versioned, CRC-checked image of the full mid-window
// state. Layout (packed little-endian):
//
//   u32 magic "TPCK"   u32 version   u64 payload_size   payload   u32 crc32
//
// The payload opens with the config parameters the state depends on
// (window D, churn grace) so a restore into a differently-configured
// detector is rejected instead of silently producing different verdicts.
//
// Version 2 appends the θ_hm signature cache (detect/hm_cache.h) after the
// per-host state, so a resumed monitor keeps its warm cross-window cache.
// (The codec classes live in detect/payload_codec.h, shared with the cache.)

namespace {

constexpr std::uint32_t kCkptMagic = 0x4B435054;  // "TPCK" on the wire
constexpr std::uint32_t kCkptVersion = 2;
/// Upper bound on a plausible checkpoint payload; a corrupted size field
/// must not make restore attempt a multi-gigabyte allocation.
constexpr std::uint64_t kCkptMaxPayload = 1ull << 30;

}  // namespace

void StreamingDetector::save_checkpoint(std::ostream& out) const {
  const obs::StageTimer save_timer(obs::Stage::kCheckpointSave);
  PayloadWriter w;
  w.put(config_.window);
  w.put(config_.new_ip_grace);
  w.put(static_cast<std::uint8_t>(window_open_));
  w.put(window_start_);
  w.put(static_cast<std::uint64_t>(flows_in_window_));
  w.put(static_cast<std::uint64_t>(windows_emitted_));
  w.put(flows_ingested_total_);
  w.put(static_cast<std::uint64_t>(timing_samples_));
  w.put(static_cast<std::uint64_t>(hosts_shed_));
  w.put(static_cast<std::uint64_t>(timing_samples_shed_));
  w.put(static_cast<std::uint64_t>(hosts_.size()));
  for (const auto& [host, state] : hosts_) {
    w.put(host.value());
    w.put(static_cast<std::uint8_t>(state.seen));
    w.put(static_cast<std::uint8_t>(state.timing_shed));
    const HostFeatures& f = state.features;
    w.put(static_cast<std::uint64_t>(f.flows_initiated));
    w.put(static_cast<std::uint64_t>(f.flows_failed));
    w.put(static_cast<std::uint64_t>(f.flows_received));
    w.put(f.bytes_sent_initiated);
    w.put(f.bytes_sent_received);
    w.put(static_cast<std::uint64_t>(f.distinct_dsts));
    w.put(static_cast<std::uint64_t>(f.dsts_after_first_hour));
    w.put(f.first_activity);
    w.put_times(f.interstitials);
    w.put(static_cast<std::uint64_t>(state.per_dst_times.size()));
    for (const auto& [dst, times] : state.per_dst_times) {
      w.put(dst.value());
      w.put_times(times);
    }
  }
  hm_cache_.encode(w);

  const std::string& payload = w.bytes();
  if (obs::enabled())
    StreamObs::get().checkpoint_bytes.observe(static_cast<double>(payload.size()));
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  const auto put_raw = [&](const void* p, std::size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  };
  put_raw(&kCkptMagic, sizeof(kCkptMagic));
  put_raw(&kCkptVersion, sizeof(kCkptVersion));
  const auto size = static_cast<std::uint64_t>(payload.size());
  put_raw(&size, sizeof(size));
  put_raw(payload.data(), payload.size());
  put_raw(&crc, sizeof(crc));
  out.flush();
  if (!out) throw util::IoError("checkpoint write failed");
}

void StreamingDetector::restore_checkpoint(std::istream& in) {
  const obs::StageTimer restore_timer(obs::Stage::kCheckpointRestore);
  const auto read_raw = [&](void* p, std::size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in.gcount()) != n)
      throw util::ParseError("checkpoint: truncated");
  };
  std::uint32_t magic = 0, version = 0;
  read_raw(&magic, sizeof(magic));
  if (magic != kCkptMagic) throw util::ParseError("checkpoint: bad magic");
  read_raw(&version, sizeof(version));
  if (version != kCkptVersion)
    throw util::ParseError("checkpoint: unsupported version " + std::to_string(version));
  std::uint64_t size = 0;
  read_raw(&size, sizeof(size));
  if (size > kCkptMaxPayload) throw util::ParseError("checkpoint: implausible payload size");
  std::string payload(static_cast<std::size_t>(size), '\0');
  read_raw(payload.data(), payload.size());
  std::uint32_t crc = 0;
  read_raw(&crc, sizeof(crc));
  if (crc != util::crc32(payload.data(), payload.size()))
    throw util::ParseError("checkpoint: checksum mismatch");

  PayloadReader r(payload);
  const auto window = r.take<double>();
  const auto grace = r.take<double>();
  if (window != config_.window || grace != config_.new_ip_grace)
    throw util::ConfigError(
        "checkpoint: saved with different window/grace than this detector");

  // Decode into fresh state first; only swap in once the whole payload
  // parsed, so a fault mid-payload never leaves the detector half-restored.
  const auto open = r.take<std::uint8_t>();
  const auto window_start = r.take<double>();
  const auto flows_in_window = r.take<std::uint64_t>();
  const auto windows_emitted = r.take<std::uint64_t>();
  const auto flows_total = r.take<std::uint64_t>();
  const auto timing_samples = r.take<std::uint64_t>();
  const auto hosts_shed = r.take<std::uint64_t>();
  const auto samples_shed = r.take<std::uint64_t>();
  const auto host_count = r.take<std::uint64_t>();
  std::unordered_map<simnet::Ipv4, HostState> hosts;
  hosts.reserve(static_cast<std::size_t>(host_count));
  for (std::uint64_t i = 0; i < host_count; ++i) {
    const simnet::Ipv4 host(r.take<std::uint32_t>());
    HostState state;
    state.seen = r.take<std::uint8_t>() != 0;
    state.timing_shed = r.take<std::uint8_t>() != 0;
    HostFeatures& f = state.features;
    f.host = host;
    f.flows_initiated = static_cast<std::size_t>(r.take<std::uint64_t>());
    f.flows_failed = static_cast<std::size_t>(r.take<std::uint64_t>());
    f.flows_received = static_cast<std::size_t>(r.take<std::uint64_t>());
    f.bytes_sent_initiated = r.take<std::uint64_t>();
    f.bytes_sent_received = r.take<std::uint64_t>();
    f.distinct_dsts = static_cast<std::size_t>(r.take<std::uint64_t>());
    f.dsts_after_first_hour = static_cast<std::size_t>(r.take<std::uint64_t>());
    f.first_activity = r.take<double>();
    f.interstitials = r.take_times();
    const auto dst_count = r.take<std::uint64_t>();
    state.per_dst_times.reserve(static_cast<std::size_t>(dst_count));
    for (std::uint64_t d = 0; d < dst_count; ++d) {
      const simnet::Ipv4 dst(r.take<std::uint32_t>());
      state.per_dst_times.emplace(dst, r.take_times());
      state.timing_samples += state.per_dst_times.at(dst).size();
    }
    hosts.emplace(host, std::move(state));
  }
  HmCache cache;
  cache.decode(r);
  if (!r.exhausted()) throw util::ParseError("checkpoint: trailing bytes in payload");

  hosts_ = std::move(hosts);
  hm_cache_ = std::move(cache);
  window_open_ = open != 0;
  window_start_ = window_start;
  flows_in_window_ = static_cast<std::size_t>(flows_in_window);
  windows_emitted_ = static_cast<std::size_t>(windows_emitted);
  flows_ingested_total_ = flows_total;
  timing_samples_ = static_cast<std::size_t>(timing_samples);
  hosts_shed_ = static_cast<std::size_t>(hosts_shed);
  timing_samples_shed_ = static_cast<std::size_t>(samples_shed);
}

void StreamingDetector::save_checkpoint_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::IoError("cannot open checkpoint for writing: " + path);
  save_checkpoint(out);
  out.close();
  if (!out) throw util::IoError("checkpoint write failed: " + path);
}

void StreamingDetector::restore_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open checkpoint for reading: " + path);
  restore_checkpoint(in);
}

std::size_t feed(netflow::TraceReader& reader, StreamingDetector& detector) {
  netflow::FlowBatch batch;
  std::size_t fed = 0;
  for (;;) {
    std::size_t n = 0;
    try {
      n = reader.next_batch(batch);
    } catch (...) {
      // A decode fault (strict policy / exhausted skip budget) may leave
      // rows already staged in `batch`; the reader counted them, so ingest
      // them before propagating — a restart that skip_flows()es past the
      // reader's records_ok must not lose those flows.
      if (!batch.empty()) detector.ingest(batch);
      throw;
    }
    if (n == 0) break;
    detector.ingest(batch);
    fed += n;
  }
  detector.flush();
  return fed;
}

}  // namespace tradeplot::detect
