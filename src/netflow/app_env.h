// Execution environment handed to every simulated application model
// (background hosts, Traders, Plotters): the event engine, the flow sink
// that collects emitted records, a source of external addresses, and the
// trace window bounds.
#pragma once

#include <functional>

#include "netflow/flow_record.h"
#include "simnet/simulation.h"

namespace tradeplot::netflow {

/// Receives every flow record an application emits.
using FlowSink = std::function<void(FlowRecord)>;

struct AppEnv {
  simnet::Simulation* sim = nullptr;
  FlowSink sink;
  /// Mints a random routable external address (never an internal one).
  std::function<simnet::Ipv4()> external_addr;
  double window_end = 0.0;
};

}  // namespace tradeplot::netflow
