// Microbenchmarks (google-benchmark) for the computational kernels of the
// detection pipeline: histogram construction, the two EMD solvers,
// agglomerative clustering, flow-table packet assembly, and feature
// extraction.
#include <benchmark/benchmark.h>

#include "detect/features.h"
#include "netflow/flow_table.h"
#include "stats/emd.h"
#include "stats/hcluster.h"
#include "stats/histogram.h"
#include "util/rng.h"

using namespace tradeplot;

namespace {

std::vector<double> make_samples(std::size_t n, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.lognormal(4.0, 1.2);
  return v;
}

stats::Signature make_signature(std::size_t n_samples, std::uint64_t seed) {
  const auto samples = make_samples(n_samples, seed);
  return stats::Histogram::with_fd_width(samples).signature();
}

void BM_HistogramFd(benchmark::State& state) {
  const auto samples = make_samples(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::Histogram::with_fd_width(samples));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistogramFd)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Emd1d(benchmark::State& state) {
  const auto a = make_signature(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = make_signature(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(stats::emd_1d(a, b));
}
BENCHMARK(BM_Emd1d)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EmdTransport(benchmark::State& state) {
  const auto a = make_signature(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = make_signature(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(stats::emd_transport(a, b));
}
BENCHMARK(BM_EmdTransport)->Arg(50)->Arg(200);

void BM_Upgma(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Pcg32 rng(3);
  std::vector<double> d(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) d[i * n + j] = d[j * n + i] = rng.uniform(0.1, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::agglomerative_average_linkage(d, n));
  }
}
BENCHMARK(BM_Upgma)->Arg(50)->Arg(200)->Arg(500);

void BM_FlowTable(benchmark::State& state) {
  util::Pcg32 rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<netflow::PacketEvent> packets;
  packets.reserve(n);
  double t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(0.001);
    netflow::PacketEvent p;
    p.time = t;
    p.src = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1, 500)));
    p.dst = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1000, 1100)));
    p.sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    p.dport = 80;
    p.proto = netflow::Protocol::kUdp;
    p.payload_bytes = 100;
    packets.push_back(p);
  }
  for (auto _ : state) {
    netflow::FlowTable table;
    for (const auto& p : packets) table.add_packet(p);
    benchmark::DoNotOptimize(table.flush());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FlowTable)->Arg(10000)->Arg(100000);

void BM_FeatureExtraction(benchmark::State& state) {
  util::Pcg32 rng(5);
  netflow::TraceSet trace(0, 21600);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    netflow::FlowRecord r;
    r.src = simnet::Ipv4(128, 2, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 200)));
    r.dst = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1 << 24, 1 << 30)));
    r.start_time = rng.uniform(0, 21600);
    r.end_time = r.start_time + 1;
    r.pkts_src = 2;
    r.pkts_dst = rng.chance(0.3) ? 0 : 2;
    r.bytes_src = 500;
    r.bytes_dst = 1000;
    r.state = r.pkts_dst ? netflow::FlowState::kEstablished : netflow::FlowState::kAttempted;
    trace.add_flow(std::move(r));
  }
  detect::FeatureExtractorConfig fx;
  fx.is_internal = detect::default_internal_predicate;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect::extract_features(trace, fx));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FeatureExtraction)->Arg(100000);

void BM_Pcg32(benchmark::State& state) {
  util::Pcg32 rng(6);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_Pcg32);

}  // namespace

BENCHMARK_MAIN();
