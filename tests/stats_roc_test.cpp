#include "stats/roc.h"

#include <gtest/gtest.h>

namespace tradeplot::stats {
namespace {

TEST(RocCurve, EmptyCurveHasDiagonalAuc) {
  RocCurve curve;
  EXPECT_TRUE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.auc(), 0.5);  // straight line (0,0)-(1,1)
}

TEST(RocCurve, PerfectDetectorAucIsOne) {
  RocCurve curve;
  curve.add(0.0, 1.0, "perfect");
  EXPECT_DOUBLE_EQ(curve.auc(), 1.0);
}

TEST(RocCurve, UselessDetectorAucIsHalf) {
  RocCurve curve;
  curve.add(0.25, 0.25);
  curve.add(0.5, 0.5);
  curve.add(0.75, 0.75);
  EXPECT_DOUBLE_EQ(curve.auc(), 0.5);
}

TEST(RocCurve, PointsSortedByFalsePositiveRate) {
  RocCurve curve;
  curve.add(0.9, 1.0, "p90");
  curve.add(0.1, 0.5, "p10");
  curve.add(0.5, 0.9, "p50");
  const auto& pts = curve.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].label, "p10");
  EXPECT_EQ(pts[1].label, "p50");
  EXPECT_EQ(pts[2].label, "p90");
}

TEST(RocCurve, KnownAucValue) {
  RocCurve curve;
  curve.add(0.0, 0.5);
  curve.add(0.5, 1.0);
  // Segments: (0,0)->(0,0.5): 0; (0,0.5)->(0.5,1): 0.375; (0.5,1)->(1,1): 0.5.
  EXPECT_DOUBLE_EQ(curve.auc(), 0.875);
}

TEST(Confusion, Rates) {
  Confusion c;
  c.true_positives = 7;
  c.positives = 8;
  c.false_positives = 5;
  c.negatives = 1000;
  EXPECT_DOUBLE_EQ(c.tp_rate(), 0.875);
  EXPECT_DOUBLE_EQ(c.fp_rate(), 0.005);
  Confusion empty;
  EXPECT_DOUBLE_EQ(empty.tp_rate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.fp_rate(), 0.0);
}

}  // namespace
}  // namespace tradeplot::stats
