# Empty compiler generated dependencies file for tp_botnet.
# This may be replaced when dependencies are built.
