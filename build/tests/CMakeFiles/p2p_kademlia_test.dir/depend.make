# Empty dependencies file for p2p_kademlia_test.
# This may be replaced when dependencies are built.
