file(REMOVE_RECURSE
  "CMakeFiles/fig08_roc_hm.dir/fig08_roc_hm.cpp.o"
  "CMakeFiles/fig08_roc_hm.dir/fig08_roc_hm.cpp.o.d"
  "fig08_roc_hm"
  "fig08_roc_hm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_roc_hm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
