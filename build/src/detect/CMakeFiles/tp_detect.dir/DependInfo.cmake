
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/baselines.cpp" "src/detect/CMakeFiles/tp_detect.dir/baselines.cpp.o" "gcc" "src/detect/CMakeFiles/tp_detect.dir/baselines.cpp.o.d"
  "/root/repo/src/detect/features.cpp" "src/detect/CMakeFiles/tp_detect.dir/features.cpp.o" "gcc" "src/detect/CMakeFiles/tp_detect.dir/features.cpp.o.d"
  "/root/repo/src/detect/find_plotters.cpp" "src/detect/CMakeFiles/tp_detect.dir/find_plotters.cpp.o" "gcc" "src/detect/CMakeFiles/tp_detect.dir/find_plotters.cpp.o.d"
  "/root/repo/src/detect/human_machine.cpp" "src/detect/CMakeFiles/tp_detect.dir/human_machine.cpp.o" "gcc" "src/detect/CMakeFiles/tp_detect.dir/human_machine.cpp.o.d"
  "/root/repo/src/detect/streaming.cpp" "src/detect/CMakeFiles/tp_detect.dir/streaming.cpp.o" "gcc" "src/detect/CMakeFiles/tp_detect.dir/streaming.cpp.o.d"
  "/root/repo/src/detect/tests.cpp" "src/detect/CMakeFiles/tp_detect.dir/tests.cpp.o" "gcc" "src/detect/CMakeFiles/tp_detect.dir/tests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/tp_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/tp_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
