# Empty compiler generated dependencies file for tp_detect.
# This may be replaced when dependencies are built.
