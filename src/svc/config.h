// Monitor daemon configuration: one file, reloadable on SIGHUP.
//
// The format is a minimal INI dialect: top-level `key = value` lines
// configure the daemon; each `[tenant NAME]` section declares one detector
// universe with its own window, budgets, queue bound, and error policy.
// `#` starts a comment; unknown keys are errors (a typo in a config that a
// daemon will run for weeks must not be silently ignored).
//
// Reload semantics (Daemon::reload): endpoint and state_dir are fixed for
// the process lifetime; timeouts and per-tenant queue knobs take effect
// immediately; new tenant sections create fresh universes; tenants removed
// from the file keep running until restart (dropping live detector state on
// an editing slip would be the opposite of robust).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "netflow/trace_reader.h"

namespace tradeplot::svc {

/// What a tenant's ingest queue does when a producer outruns the detector.
enum class Overflow : std::uint8_t {
  kBlock,  // backpressure: offer() waits for the worker (lossless)
  kShed,   // load-shedding: drop the offered batch, account it, keep going
};

[[nodiscard]] std::string_view to_string(Overflow o);

struct TenantParams {
  std::string name;
  double window = 6 * 3600.0;                 // detection window D (seconds)
  std::uint64_t timing_budget = 0;            // detector degradation budget (0 = off)
  std::uint64_t checkpoint_every = 100000;    // flows between checkpoints (0 = off)
  std::uint64_t queue_capacity = 1u << 16;    // ingest queue bound (rows)
  std::uint64_t shards = 1;                   // detector worker shards (1 = single)
  Overflow overflow = Overflow::kBlock;
  netflow::ErrorPolicy policy = netflow::ErrorPolicy::skip();
};

struct DaemonConfig {
  std::string ingest;     // frame socket endpoint spec (required)
  std::string http;       // health/metrics endpoint spec (empty = disabled)
  std::string state_dir;  // checkpoints + verdict logs (required)
  double read_timeout = 30.0;   // seconds mid-frame without bytes -> disconnect
  double idle_timeout = 300.0;  // seconds between frames without bytes -> disconnect
  bool metrics = false;         // flip obs::set_enabled at startup
  double checkpoint_interval = 0.0;  // seconds between time-based checkpoints (0 = off)
  std::vector<TenantParams> tenants;

  [[nodiscard]] const TenantParams* find_tenant(const std::string& name) const;

  /// Parses the config text. Throws util::ConfigError with a line number on
  /// any malformed or unknown directive, and validates the result (ingest
  /// and state_dir present, at least one tenant, positive windows/timeouts).
  [[nodiscard]] static DaemonConfig parse(std::istream& in);
  [[nodiscard]] static DaemonConfig load_file(const std::string& path);
};

}  // namespace tradeplot::svc
