#include "netflow/classifier.h"

#include <algorithm>
#include <array>

namespace tradeplot::netflow {

std::string_view to_string(AppLabel label) {
  switch (label) {
    case AppLabel::kUnknown: return "unknown";
    case AppLabel::kGnutella: return "gnutella";
    case AppLabel::kEMule: return "emule";
    case AppLabel::kBitTorrent: return "bittorrent";
  }
  return "?";
}

namespace {

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace

bool PayloadClassifier::is_gnutella(std::string_view p) {
  return contains(p, "GNUTELLA") || contains(p, "CONNECT BACK") || contains(p, "LIME");
}

bool PayloadClassifier::is_emule(std::string_view p) {
  if (p.size() < 6) return false;
  const auto first = static_cast<unsigned char>(p[0]);
  if (first != 0xe3 && first != 0xc5) return false;
  // eD2k framing: [proto byte][4-byte little-endian length][opcode...]. We
  // accept any frame whose declared length is plausible for the prefix we
  // hold, mirroring the paper's "followed by various byte sequences as
  // specified in the protocol specification".
  const std::uint32_t len = static_cast<unsigned char>(p[1]) |
                            (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
                            (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 16) |
                            (static_cast<std::uint32_t>(static_cast<unsigned char>(p[4])) << 24);
  if (len == 0 || len > (1u << 24)) return false;
  // Known eD2k / eMule-extension opcodes (Kulbak & Bickson, 2005).
  static constexpr std::array<unsigned char, 12> kOpcodes = {
      0x01,  // OP_HELLO / LOGINREQUEST
      0x4c,  // OP_HELLOANSWER
      0x47,  // OP_SENDINGPART
      0x46,  // OP_REQUESTPARTS
      0x58,  // OP_FILEREQUEST (compat)
      0x59,  // OP_FILEREQANSWER
      0x50,  // OP_ASKSHAREDFILES
      0x16,  // OP_GETSERVERLIST / SEARCHREQUEST family
      0x15,  // OP_SERVERMESSAGE family
      0x40,  // OP_COMPRESSEDPART (0xc5 frames)
      0x92,  // Kad2 BOOTSTRAP_REQ
      0x96,  // Kad2 HELLO_REQ
  };
  const auto opcode = static_cast<unsigned char>(p[5]);
  return std::find(kOpcodes.begin(), kOpcodes.end(), opcode) != kOpcodes.end();
}

bool PayloadClassifier::is_bittorrent(std::string_view p) {
  if (contains(p, "BitTorrent protocol")) return true;
  if (starts_with(p, "GET /scrape") || starts_with(p, "GET /announce")) return true;
  return contains(p, "d1:ad2:id20") || contains(p, "d1:rd2:id20");
}

AppLabel PayloadClassifier::classify(std::string_view payload) {
  if (payload.empty()) return AppLabel::kUnknown;
  // BitTorrent first: its markers are the most specific (full handshake
  // string / bencoded keys), so misfires against the other matchers are
  // impossible; Gnutella's keyword scan is the loosest and goes last... but
  // order only matters if a payload matched several, which the tests check
  // cannot happen for well-formed protocol messages.
  if (is_bittorrent(payload)) return AppLabel::kBitTorrent;
  if (is_emule(payload)) return AppLabel::kEMule;
  if (is_gnutella(payload)) return AppLabel::kGnutella;
  return AppLabel::kUnknown;
}

std::unordered_map<simnet::Ipv4, AppLabel> PayloadClassifier::label_hosts(
    const std::vector<FlowRecord>& flows, std::size_t min_flows) {
  struct Counts {
    std::size_t per_label[4] = {0, 0, 0, 0};
  };
  std::unordered_map<simnet::Ipv4, Counts> counts;
  for (const FlowRecord& rec : flows) {
    const AppLabel label = classify(rec);
    if (label == AppLabel::kUnknown) continue;
    counts[rec.src].per_label[static_cast<std::size_t>(label)] += 1;
    // The responder is running the protocol too (it answered the handshake).
    if (!rec.failed()) counts[rec.dst].per_label[static_cast<std::size_t>(label)] += 1;
  }
  std::unordered_map<simnet::Ipv4, AppLabel> out;
  for (const auto& [ip, c] : counts) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < 4; ++i)
      if (c.per_label[i] > c.per_label[best]) best = i;
    if (best != 0 && c.per_label[best] >= min_flows) out[ip] = static_cast<AppLabel>(best);
  }
  return out;
}

}  // namespace tradeplot::netflow
