# Empty dependencies file for feature_explorer.
# This may be replaced when dependencies are built.
