// Peer churn models for file-sharing networks.
//
// Parameters follow the measurement studies the paper leans on:
//   * Stutzbach & Rejaie (IMC'06): session lengths are heavy-tailed; the
//     median session is minutes, not hours.
//   * Saroiu et al. (MMCN'02), Gummadi et al. (SOSP'03): most peers appear
//     once per day, stay briefly, and "most clients leave the network
//     permanently after requesting a single file".
//
// ChurnModel produces session durations and decides, at each contact
// attempt, whether the remote peer is still alive — the source of the high
// failed-connection rates that the paper's data-reduction step keys on.
#pragma once

#include "util/rng.h"

namespace tradeplot::p2p {

struct ChurnParams {
  /// Lognormal session duration (of remote peers), seconds.
  double session_mu = 5.8;     // median ~ exp(5.8) ~ 330 s  (minutes-scale)
  double session_sigma = 1.3;  // heavy spread: some peers stay hours
  /// Probability that a peer address learned from the network has already
  /// departed by the time we contact it (stale index/tracker entries).
  double stale_contact_prob = 0.35;
  /// Probability that a previously-successful peer is still there on a
  /// repeat contact (Traders rarely revisit; when they do, churn bites).
  double revisit_alive_prob = 0.45;
};

class ChurnModel {
 public:
  explicit ChurnModel(ChurnParams params = {}) : params_(params) {}

  [[nodiscard]] double session_duration(util::Pcg32& rng) const {
    return rng.lognormal(params_.session_mu, params_.session_sigma);
  }

  /// Does a fresh contact (address learned from tracker/DHT/index) respond?
  [[nodiscard]] bool fresh_contact_alive(util::Pcg32& rng) const {
    return !rng.chance(params_.stale_contact_prob);
  }

  /// Does a peer we previously talked to still respond?
  [[nodiscard]] bool revisit_alive(util::Pcg32& rng) const {
    return rng.chance(params_.revisit_alive_prob);
  }

  [[nodiscard]] const ChurnParams& params() const { return params_; }

 private:
  ChurnParams params_;
};

}  // namespace tradeplot::p2p
