#include "util/stream_retry.h"

#include <cerrno>
#include <istream>
#include <ostream>

#include "util/interrupt.h"

namespace tradeplot::util {

std::size_t read_retry(std::istream& in, char* dst, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    errno = 0;
    in.read(dst + got, static_cast<std::streamsize>(n - got));
    got += static_cast<std::size_t>(in.gcount());
    if (got == n) break;
    // Short read: the stream has failed. eofbit alone cannot tell EOF from
    // EINTR — a filebuf's underflow returns eof for both — so errno is the
    // discriminator (cleared above; read(2) leaves it 0 at true EOF).
    if (errno != EINTR) break;  // true EOF or hard error; leave stream state
    if (shutdown_requested()) {
      // Cooperative stop: report a clean short read so graceful-shutdown
      // paths see end-of-input instead of an I/O error.
      in.clear();
      break;
    }
    in.clear();  // retry the interrupted read
  }
  return got;
}

bool write_retry(std::ostream& out, const char* data, std::size_t n) {
  while (n > 0) {
    errno = 0;
    const std::streampos before = out.tellp();
    out.write(data, static_cast<std::streamsize>(n));
    if (out.good()) return true;
    if (errno != EINTR || shutdown_requested()) return false;
    out.clear();
    // Resume from the sink's actual put position when it is seekable so a
    // partially-consumed chunk is not written twice. tellp() == -1 means the
    // sink cannot tell us; reissue the whole chunk (all-or-nothing sinks).
    const std::streampos after = out.tellp();
    if (before != std::streampos(-1) && after != std::streampos(-1) && after > before) {
      const auto consumed = static_cast<std::size_t>(after - before);
      if (consumed >= n) return true;
      data += consumed;
      n -= consumed;
    }
  }
  return true;
}

}  // namespace tradeplot::util
