file(REMOVE_RECURSE
  "CMakeFiles/detect_human_machine_test.dir/detect_human_machine_test.cpp.o"
  "CMakeFiles/detect_human_machine_test.dir/detect_human_machine_test.cpp.o.d"
  "detect_human_machine_test"
  "detect_human_machine_test.pdb"
  "detect_human_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_human_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
