# Empty compiler generated dependencies file for trace_overlay_test.
# This may be replaced when dependencies are built.
