#include "hosts/misc.h"

namespace tradeplot::hosts {

ScannerHost::ScannerHost(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
                         ScannerConfig config)
    : env_(std::move(env)), rng_(rng), emit_(&env_, self, &rng_), config_(config) {}

void ScannerHost::start() { probe_loop(); }

void ScannerHost::probe_loop() {
  const double gap = rng_.exponential(3600.0 / config_.probes_per_hour);
  if (emit_.now() + gap >= env_.window_end) return;
  env_.sim->schedule_after(gap, [this] {
    if (rng_.chance(config_.burst_prob)) {
      for (int i = 0; i < config_.burst_len; ++i) {
        env_.sim->schedule_after(rng_.uniform(0.0, 10.0), [this] { probe_once(); });
      }
    } else {
      probe_once();
    }
    probe_loop();
  });
}

void ScannerHost::probe_once() {
  const simnet::Ipv4 target = env_.external_addr();
  if (rng_.chance(config_.hit_prob)) {
    emit_.tcp(target, config_.target_port, static_cast<std::uint64_t>(rng_.uniform(100, 400)),
              static_cast<std::uint64_t>(rng_.uniform(100, 1500)), rng_.uniform(0.1, 2.0));
  } else {
    emit_.tcp_failed(target, config_.target_port, rng_.chance(0.35));
  }
}

IdleHost::IdleHost(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng, IdleHostConfig config)
    : env_(std::move(env)), rng_(rng), emit_(&env_, self, &rng_), config_(config) {}

void IdleHost::start() {
  const auto flows = static_cast<int>(rng_.exponential(config_.flows_in_window_mean)) + 1;
  // Even idle machines accumulate some failures (sleeping peers, captive
  // portals, stale software-update mirrors).
  const double fail_prob = rng_.uniform(0.0, 0.3);
  for (int i = 0; i < flows; ++i) {
    env_.sim->schedule_at(rng_.uniform(0.0, env_.window_end), [this, fail_prob] {
      if (rng_.chance(fail_prob)) {
        emit_.tcp_failed(env_.external_addr(), 443);
      } else if (rng_.chance(0.3)) {
        emit_.udp(env_.external_addr(), 53, 60, 200, true);
      } else {
        emit_.tcp(env_.external_addr(), 443, static_cast<std::uint64_t>(rng_.uniform(300, 1500)),
                  static_cast<std::uint64_t>(rng_.uniform(2e3, 5e4)), rng_.uniform(0.2, 3.0));
      }
    });
  }
}

}  // namespace tradeplot::hosts
