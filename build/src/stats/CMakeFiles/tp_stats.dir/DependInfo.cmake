
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/tp_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/tp_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/emd.cpp" "src/stats/CMakeFiles/tp_stats.dir/emd.cpp.o" "gcc" "src/stats/CMakeFiles/tp_stats.dir/emd.cpp.o.d"
  "/root/repo/src/stats/hcluster.cpp" "src/stats/CMakeFiles/tp_stats.dir/hcluster.cpp.o" "gcc" "src/stats/CMakeFiles/tp_stats.dir/hcluster.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/tp_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/tp_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/roc.cpp" "src/stats/CMakeFiles/tp_stats.dir/roc.cpp.o" "gcc" "src/stats/CMakeFiles/tp_stats.dir/roc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
