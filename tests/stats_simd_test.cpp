// Bit-identity contracts of the runtime-dispatched clustering kernels
// (stats/simd.h). pivot_interval_sweep, margin_min_sweep, and filter_le are
// verdict-adjacent — the NN-chain's elimination decisions ride on their
// outputs — and their documented contract is bit-identity with the scalar
// reference loop on every machine, +inf poison rows included. emd_sweep_x4
// IS verdict-bearing: each lane must reproduce emd_1d_presorted exactly,
// ties and single-point signatures included. Every test here recomputes the
// scalar reference inline and compares bitwise.
#include "stats/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "stats/emd.h"
#include "stats/flat_signature.h"
#include "util/rng.h"

namespace tradeplot::stats {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool bit_equal(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

// Column-major pivot storage as the engine lays it out: cols[p * stride + k]
// holds |leaf k -> pivot p| means, with a sprinkling of +inf poison rows
// (retired slots).
struct PivotFixture {
  std::vector<double> cols;
  std::vector<double> top;
  std::size_t stride;
  std::size_t pivots;
  std::size_t count;
};

PivotFixture make_fixture(util::Pcg32& rng, std::size_t count, std::size_t pivots) {
  PivotFixture f;
  f.stride = count;
  f.pivots = pivots;
  f.count = count;
  f.cols.resize(pivots * count);
  f.top.resize(pivots);
  for (double& v : f.cols) v = rng.uniform(0.0, 50.0);
  for (std::size_t k = 0; k < count; ++k) {
    if (rng.uniform_int(0, 4) == 0) {
      for (std::size_t p = 0; p < pivots; ++p) f.cols[p * count + k] = kInf;
    }
  }
  for (std::size_t p = 0; p < pivots; ++p) f.top[p] = rng.uniform(0.0, 50.0);
  return f;
}

TEST(SimdPivotSweep, MatchesScalarReferenceWithPoisonRows) {
  util::Pcg32 rng(0x51D2);
  for (const std::size_t count : {0u, 1u, 3u, 4u, 7u, 64u, 129u}) {
    for (const std::size_t pivots : {1u, 2u, 3u, 8u}) {
      const PivotFixture f = make_fixture(rng, count, pivots);
      std::vector<double> lo(count, -1.0);
      std::vector<double> hi(count, -1.0);
      simd::pivot_interval_sweep(f.cols.data(), f.stride, f.pivots, f.top.data(), count,
                                 lo.data(), hi.data());
      for (std::size_t k = 0; k < count; ++k) {
        double ref_lo = 0.0;
        double ref_hi = kInf;
        for (std::size_t p = 0; p < pivots; ++p) {
          ref_lo = std::max(ref_lo, std::abs(f.cols[p * count + k] - f.top[p]));
          ref_hi = std::min(ref_hi, f.cols[p * count + k] + f.top[p]);
        }
        ASSERT_TRUE(bit_equal(lo[k], ref_lo))
            << "count=" << count << " pivots=" << pivots << " k=" << k;
        ASSERT_TRUE(bit_equal(hi[k], ref_hi))
            << "count=" << count << " pivots=" << pivots << " k=" << k;
      }
    }
  }
}

TEST(SimdPivotSweep, ZeroPivotsYieldsVacuousBounds) {
  std::vector<double> lo(5, -1.0);
  std::vector<double> hi(5, -1.0);
  simd::pivot_interval_sweep(nullptr, 5, 0, nullptr, 5, lo.data(), hi.data());
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(lo[k], 0.0);
    EXPECT_EQ(hi[k], kInf);
  }
}

TEST(SimdMarginSweep, MatchesScalarReferenceAndMin) {
  util::Pcg32 rng(0x51D3);
  for (const std::size_t n : {0u, 1u, 2u, 4u, 5u, 63u, 200u}) {
    std::vector<double> lo(n);
    std::vector<double> hi(n);
    for (std::size_t k = 0; k < n; ++k) {
      if (rng.uniform_int(0, 5) == 0) {
        lo[k] = hi[k] = kInf;  // poison row: must stay inert
      } else {
        lo[k] = rng.uniform(0.0, 40.0);
        hi[k] = lo[k] + rng.uniform(0.0, 40.0);
      }
    }
    std::vector<double> ref_lo = lo;
    std::vector<double> ref_hi = hi;
    double ref_min = kInf;
    for (std::size_t k = 0; k < n; ++k) {
      ref_lo[k] = ref_lo[k] * (1.0 - 1e-9) - 1e-12;
      ref_hi[k] = ref_hi[k] * (1.0 + 1e-9) + 1e-12;
      ref_min = std::min(ref_min, ref_hi[k]);
    }
    const double got_min = simd::margin_min_sweep(lo.data(), hi.data(), n);
    ASSERT_TRUE(bit_equal(got_min, ref_min)) << "n=" << n;
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_TRUE(bit_equal(lo[k], ref_lo[k])) << "n=" << n << " k=" << k;
      ASSERT_TRUE(bit_equal(hi[k], ref_hi[k])) << "n=" << n << " k=" << k;
    }
  }
}

TEST(SimdFilterLe, MatchesScalarCompressIncludingPoisonAndEdges) {
  util::Pcg32 rng(0x51D4);
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 100u, 257u}) {
    std::vector<double> v(n);
    for (std::size_t k = 0; k < n; ++k) {
      const int kind = rng.uniform_int(0, 5);
      v[k] = kind == 0 ? kInf : rng.uniform(0.0, 10.0);
    }
    for (const double threshold : {-1.0, 0.0, 5.0, 10.0, kInf}) {
      std::vector<std::uint32_t> ref;
      for (std::size_t k = 0; k < n; ++k)
        if (v[k] <= threshold) ref.push_back(static_cast<std::uint32_t>(k));
      std::vector<std::uint32_t> got(n + 1, 0xffffffffu);
      const std::size_t wrote = simd::filter_le(v.data(), n, threshold, got.data());
      ASSERT_EQ(wrote, ref.size()) << "n=" << n << " threshold=" << threshold;
      for (std::size_t k = 0; k < wrote; ++k)
        ASSERT_EQ(got[k], ref[k]) << "n=" << n << " threshold=" << threshold;
    }
  }
}

TEST(SimdFilterLe, EveryBoundaryValuePasses) {
  // <= must be inclusive: values exactly at the threshold pass, the next
  // representable above does not.
  const double t = 3.5;
  const std::vector<double> v = {t, std::nextafter(t, 4.0), std::nextafter(t, 0.0), t};
  std::vector<std::uint32_t> out(v.size());
  const std::size_t wrote = simd::filter_le(v.data(), v.size(), t, out.data());
  ASSERT_EQ(wrote, 3u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 2u);
  EXPECT_EQ(out[2], 3u);
}

// Random signatures with deliberately tied positions across lanes — the EMD
// merge sweep's tie-breaking (a before b) is part of the bit contract.
std::vector<Signature> sweep_population(util::Pcg32& rng, std::size_t n) {
  std::vector<Signature> sigs;
  sigs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Signature s;
    const auto points = static_cast<std::size_t>(rng.uniform_int(1, 20));
    for (std::size_t k = 0; k < points; ++k) {
      // Coarse grid positions: many exact cross-signature ties.
      s.push_back({static_cast<double>(rng.uniform_int(0, 12)) * 7.5, rng.uniform(0.1, 2.0)});
    }
    sigs.push_back(std::move(s));
  }
  sigs[0] = {{30.0, 1.0}};  // single-point signature: minimal lane length
  if (n > 2) sigs[2] = sigs[1];
  return sigs;
}

TEST(SimdEmdSweepX4, LanesBitIdenticalToScalarKernel) {
  util::Pcg32 rng(0x51D5);
  const std::vector<Signature> sigs = sweep_population(rng, 24);
  const FlatSignatureSet flat(sigs, 1);
  std::size_t a4[4];
  std::size_t b4[4];
  double out4[4];
  for (int round = 0; round < 200; ++round) {
    for (std::size_t l = 0; l < 4; ++l) {
      a4[l] = static_cast<std::size_t>(rng.uniform_int(0, 23));
      b4[l] = static_cast<std::size_t>(rng.uniform_int(0, 23));
    }
    flat.emd_x4(a4, b4, out4);
    for (std::size_t l = 0; l < 4; ++l) {
      const double ref = emd_1d_presorted(flat.view(a4[l]), flat.view(b4[l]));
      ASSERT_TRUE(bit_equal(out4[l], ref))
          << "round=" << round << " lane=" << l << " a=" << a4[l] << " b=" << b4[l];
    }
  }
}

TEST(SimdEmdSweepX4, MixedLaneLengthsIncludingSingletons) {
  // All four lanes pair the single-point signature against progressively
  // longer ones — exercises frozen-lane masking when short lanes exhaust
  // while long lanes keep sweeping.
  util::Pcg32 rng(0x51D6);
  const std::vector<Signature> sigs = sweep_population(rng, 16);
  const FlatSignatureSet flat(sigs, 1);
  const std::size_t a4[4] = {0, 0, 0, 0};  // the singleton
  const std::size_t b4[4] = {1, 5, 9, 13};
  double out4[4];
  flat.emd_x4(a4, b4, out4);
  for (std::size_t l = 0; l < 4; ++l) {
    const double ref = emd_1d_presorted(flat.view(a4[l]), flat.view(b4[l]));
    ASSERT_TRUE(bit_equal(out4[l], ref)) << "lane=" << l;
  }
}

}  // namespace
}  // namespace tradeplot::stats
