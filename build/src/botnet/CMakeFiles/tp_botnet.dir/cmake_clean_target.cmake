file(REMOVE_RECURSE
  "libtp_botnet.a"
)
