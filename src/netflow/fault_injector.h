// Deterministic trace corruption for fault-tolerance testing.
//
// FaultInjector takes the textual CSV image of a trace (as produced by
// write_csv) and damages a seeded, reproducible subset of its flow lines —
// flipped bytes, truncated lines, garbled lines, out-of-range field values,
// and an optional mid-record tail truncation. Every corrupting mutation is
// guaranteed to make the line unparseable (e.g. flipped bytes set the high
// bit, which no valid field byte carries), so the report's fault list is an
// exact account of the records a skip-policy reader must quarantine.
// CRLF mixing is also injected, as a *benign* mutation: the reader's CRLF
// tolerance means those lines must still parse.
//
// The injector is the workload generator for the fault-injection test
// suite: feed the corrupted image with ErrorPolicy::skip() and the verdicts
// must match feeding the clean subset (the original flows minus the ones
// listed in the report).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tradeplot::netflow {

enum class FaultKind : std::uint8_t {
  kFlippedByte,        // one byte XOR 0x80 (never a valid field byte)
  kTruncatedLine,      // line cut so fewer than 12 commas remain
  kGarbledLine,        // line replaced with comma-free junk
  kOutOfRangeField,    // a port field rewritten past 65535
  kMidRecordTruncation // the output's tail cut mid-way through the last line
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

struct InjectedFault {
  /// 0-based index among the trace's flow lines (== index into the original
  /// TraceSet::flows() for traces written by write_csv).
  std::size_t flow_index = 0;
  /// 1-based line number in the corrupted output.
  std::size_t lineno = 0;
  FaultKind kind = FaultKind::kFlippedByte;
};

struct FaultReport {
  std::size_t flow_lines = 0;          // flow lines in the input
  std::vector<InjectedFault> faults;   // corrupting mutations, in line order
  std::size_t crlf_lines = 0;          // benign CRLF endings injected

  [[nodiscard]] std::size_t fault_count() const { return faults.size(); }
  /// True when `flow_index` was corrupted (and must be absent from the
  /// clean subset a skip-policy read is compared against).
  [[nodiscard]] bool corrupted(std::size_t flow_index) const;
};

struct FaultInjectorConfig {
  std::uint64_t seed = 1;
  /// Probability that a flow line receives a corrupting mutation.
  double fault_rate = 0.05;
  /// Probability that a surviving line gets a CRLF ending (benign).
  double crlf_rate = 0.0;
  /// When true, the output is additionally cut mid-way through its last
  /// flow line (no trailing newline) — a crash-mid-write image.
  bool truncate_tail = false;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorConfig config) : config_(config) {}

  /// Corrupts the CSV text `csv`. Preamble comments and the header row are
  /// left intact (structural faults are always fatal and tested
  /// separately); only flow lines are mutated. Deterministic: the same
  /// (input, config) yields the same output and report.
  [[nodiscard]] std::string corrupt_csv(std::string_view csv, FaultReport& report) const;

 private:
  FaultInjectorConfig config_;
};

}  // namespace tradeplot::netflow
