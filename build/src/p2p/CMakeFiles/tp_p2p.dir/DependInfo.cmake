
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2p/bittorrent.cpp" "src/p2p/CMakeFiles/tp_p2p.dir/bittorrent.cpp.o" "gcc" "src/p2p/CMakeFiles/tp_p2p.dir/bittorrent.cpp.o.d"
  "/root/repo/src/p2p/emule.cpp" "src/p2p/CMakeFiles/tp_p2p.dir/emule.cpp.o" "gcc" "src/p2p/CMakeFiles/tp_p2p.dir/emule.cpp.o.d"
  "/root/repo/src/p2p/gnutella.cpp" "src/p2p/CMakeFiles/tp_p2p.dir/gnutella.cpp.o" "gcc" "src/p2p/CMakeFiles/tp_p2p.dir/gnutella.cpp.o.d"
  "/root/repo/src/p2p/kademlia.cpp" "src/p2p/CMakeFiles/tp_p2p.dir/kademlia.cpp.o" "gcc" "src/p2p/CMakeFiles/tp_p2p.dir/kademlia.cpp.o.d"
  "/root/repo/src/p2p/node_id.cpp" "src/p2p/CMakeFiles/tp_p2p.dir/node_id.cpp.o" "gcc" "src/p2p/CMakeFiles/tp_p2p.dir/node_id.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/tp_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/tp_netflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
