// Cross-window signature and distance cache for the θ_hm test.
//
// StreamingDetector recomputes the full θ_hm stage every window even when
// most hosts' timing evidence is unchanged — per-host histogram signatures
// are rebuilt and the O(n²) distance matrix is recomputed from scratch.
// HmCache keys each host's signature by a cheap content hash of its timing
// buffer (the pooled interstitials the signature is built from, plus the
// signature-shaping config), and each pairwise distance by the two hosts'
// hashes. At window close, human_machine_test reuses every cached signature
// and distance whose inputs are unchanged and recomputes only the rows of
// hosts whose buffers changed.
//
// Reused values were produced by the same kernels on identical inputs, so a
// cached window is bit-identical to a cold one — the cache changes wall
// clock, never verdicts. Retention is one window: entries not touched by the
// latest window are dropped, bounding memory (and checkpoint size) at the
// last window's host and pair counts.
//
// The cache serializes through the streaming checkpoint codec (payload
// version 2), so a monitor resumed with --resume keeps its warm state.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "simnet/address.h"
#include "stats/histogram.h"
#include "util/bloom.h"

namespace tradeplot::detect {

class PayloadReader;
class PayloadWriter;

class HmCache {
 public:
  struct SignatureEntry {
    std::uint64_t hash = 0;
    stats::Signature signature;
  };
  /// Distance between two hosts' signatures, valid only while both hosts'
  /// content hashes match the stored pair (hash_lo/hash_hi follow the
  /// address order of the pair key: lower address first).
  struct DistanceEntry {
    std::uint64_t hash_lo = 0;
    std::uint64_t hash_hi = 0;
    double distance = 0.0;
  };

  std::unordered_map<simnet::Ipv4, SignatureEntry> signatures;
  std::unordered_map<std::uint64_t, DistanceEntry> distances;

  /// Cumulative recompute accounting across windows: how many signatures /
  /// distance cells were rebuilt vs. served from cache. The streaming tests
  /// assert on deltas of these to prove that a one-host change recomputes
  /// only that host's signature and matrix rows.
  std::uint64_t signatures_built = 0;
  std::uint64_t signatures_reused = 0;
  std::uint64_t distances_computed = 0;
  std::uint64_t distances_reused = 0;

  /// Order-insensitive key for a host pair (lower address in the high bits).
  [[nodiscard]] static std::uint64_t pair_key(simnet::Ipv4 a, simnet::Ipv4 b);

  /// Probe gate for `distances`: false guarantees the key is absent, so the
  /// hash-map find can be skipped entirely. In a partially warm window the
  /// pruned stage probes far more never-cached pairs (changed hosts' rows,
  /// newly arrived hosts) than cached ones, and each map miss still walks a
  /// bucket. False positives just fall through to the find — they can never
  /// change what is served.
  [[nodiscard]] bool distance_maybe_cached(std::uint64_t key) const {
    return distance_filter_.maybe_contains(key);
  }

  /// Rebuilds the probe gate from the current `distances` keys. Must be
  /// called after replacing the map wholesale (window retention, decode);
  /// until the first rebuild the gate conservatively answers "maybe" for
  /// every key, degrading to the plain find. Not serialized — decode
  /// rebuilds it from the restored map.
  void rebuild_distance_filter();

  /// Drops all entries and zeroes the counters.
  void clear();

  /// Appends the cache to a checkpoint payload / restores it. decode reads
  /// exactly what encode wrote and throws util::ParseError on truncation.
  void encode(PayloadWriter& w) const;
  void decode(PayloadReader& r);

 private:
  util::BloomFilter distance_filter_;
};

/// FNV-1a content hash of a host's timing buffer plus the signature-shaping
/// parameters (fixed bin width and distance mode — a config change must
/// never resurrect a signature built under different binning).
[[nodiscard]] std::uint64_t hm_content_hash(std::span<const double> samples,
                                            double fixed_bin_width, int distance_mode);

}  // namespace tradeplot::detect
