file(REMOVE_RECURSE
  "CMakeFiles/netflow_io_test.dir/netflow_io_test.cpp.o"
  "CMakeFiles/netflow_io_test.dir/netflow_io_test.cpp.o.d"
  "netflow_io_test"
  "netflow_io_test.pdb"
  "netflow_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netflow_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
