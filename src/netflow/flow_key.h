// Canonical 5-tuple key used to match packets to bi-directional flows.
//
// Per the paper (§III, fn. 3): "the source and destination IP addresses are
// swappable in the logic that matches packets to flows" — i.e. both
// directions of a connection map to the same key — "however, the source IP
// address in the record is set to the IP address of the host that initiated
// the connection."
#pragma once

#include <cstdint>
#include <functional>

#include "netflow/flow_record.h"
#include "simnet/address.h"

namespace tradeplot::netflow {

struct FlowKey {
  // Canonical ordering: the (ip, port) pair that compares lower is stored
  // first, so both packet directions hash identically.
  simnet::Ipv4 ip_a;
  simnet::Ipv4 ip_b;
  std::uint16_t port_a = 0;
  std::uint16_t port_b = 0;
  Protocol proto = Protocol::kTcp;

  /// Builds the canonical key for a packet from (src, sport) to (dst, dport).
  [[nodiscard]] static FlowKey canonical(simnet::Ipv4 src, std::uint16_t sport, simnet::Ipv4 dst,
                                         std::uint16_t dport, Protocol proto);

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept {
    std::uint64_t h = (std::uint64_t{k.ip_a.value()} << 32) | k.ip_b.value();
    h ^= (std::uint64_t{k.port_a} << 17) ^ (std::uint64_t{k.port_b} << 1) ^
         (std::uint64_t{static_cast<std::uint8_t>(k.proto)} << 40);
    // SplitMix64 finisher.
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

}  // namespace tradeplot::netflow
