// Checkpoint/restore and graceful degradation for StreamingDetector: a
// monitor killed mid-window must resume and emit verdicts identical to an
// uninterrupted run, corrupt checkpoints must be rejected whole, and the
// timing budget must shed state without touching scalar evidence.
#include "detect/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <vector>

#include "botnet/honeynet.h"
#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "util/error.h"

namespace tradeplot::detect {
namespace {

bool is_internal(simnet::Ipv4 ip) { return default_internal_predicate(ip); }

StreamingConfig config(double window = 3600.0) {
  StreamingConfig c;
  c.window = window;
  c.is_internal = is_internal;
  return c;
}

netflow::TraceSet storm_trace(std::uint64_t seed, double duration = 2 * 3600.0) {
  botnet::HoneynetConfig h;
  h.seed = seed;
  h.duration = duration;
  h.nugache_bots = 0;
  return botnet::generate_storm_trace(h);
}

/// Full-strength verdict comparison: window metadata, every pipeline stage,
/// and every per-host feature (interstitials as multisets — their pooling
/// order over the per-destination hash map is not part of the contract).
void expect_verdicts_equal(const std::vector<WindowVerdict>& a,
                           const std::vector<WindowVerdict>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(a[i].window_index, b[i].window_index);
    EXPECT_DOUBLE_EQ(a[i].window_start, b[i].window_start);
    EXPECT_DOUBLE_EQ(a[i].window_end, b[i].window_end);
    EXPECT_EQ(a[i].flows_seen, b[i].flows_seen);
    EXPECT_EQ(a[i].degraded, b[i].degraded);
    EXPECT_EQ(a[i].hosts_shed, b[i].hosts_shed);
    EXPECT_EQ(a[i].result.input, b[i].result.input);
    EXPECT_EQ(a[i].result.reduced, b[i].result.reduced);
    EXPECT_EQ(a[i].result.s_vol, b[i].result.s_vol);
    EXPECT_EQ(a[i].result.s_churn, b[i].result.s_churn);
    EXPECT_EQ(a[i].result.vol_or_churn, b[i].result.vol_or_churn);
    EXPECT_EQ(a[i].result.plotters, b[i].result.plotters);
    ASSERT_EQ(a[i].features.size(), b[i].features.size());
    for (const auto& [host, fa] : a[i].features) {
      ASSERT_TRUE(b[i].features.contains(host)) << host.to_string();
      const HostFeatures& fb = b[i].features.at(host);
      EXPECT_EQ(fa.flows_initiated, fb.flows_initiated);
      EXPECT_EQ(fa.flows_failed, fb.flows_failed);
      EXPECT_EQ(fa.flows_received, fb.flows_received);
      EXPECT_EQ(fa.bytes_sent_initiated, fb.bytes_sent_initiated);
      EXPECT_EQ(fa.bytes_sent_received, fb.bytes_sent_received);
      EXPECT_EQ(fa.distinct_dsts, fb.distinct_dsts);
      EXPECT_EQ(fa.dsts_after_first_hour, fb.dsts_after_first_hour);
      EXPECT_DOUBLE_EQ(fa.first_activity, fb.first_activity);
      std::vector<double> ga = fa.interstitials, gb = fb.interstitials;
      std::sort(ga.begin(), ga.end());
      std::sort(gb.begin(), gb.end());
      EXPECT_EQ(ga, gb) << "interstitials diverge for " << host.to_string();
    }
  }
}

std::vector<WindowVerdict> uninterrupted_run(const netflow::TraceSet& trace,
                                             const StreamingConfig& cfg) {
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(cfg, [&](const WindowVerdict& v) { verdicts.push_back(v); });
  for (const auto& rec : trace.flows()) detector.ingest(rec);
  detector.flush();
  return verdicts;
}

TEST(Checkpoint, KillAndRestoreMidWindowReproducesVerdicts) {
  const netflow::TraceSet trace = storm_trace(5);
  const StreamingConfig cfg = config(1800.0);
  const std::vector<WindowVerdict> expected = uninterrupted_run(trace, cfg);
  ASSERT_GE(expected.size(), 2u);

  // Kill at several points — window boundaries and mid-window alike.
  for (const std::size_t kill_at :
       {std::size_t{1}, trace.flows().size() / 3, trace.flows().size() / 2,
        trace.flows().size() - 1}) {
    SCOPED_TRACE("kill after " + std::to_string(kill_at) + " flows");
    std::vector<WindowVerdict> verdicts;
    const auto sink = [&](const WindowVerdict& v) { verdicts.push_back(v); };

    std::stringstream image;
    {
      StreamingDetector first(cfg, sink);
      for (std::size_t i = 0; i < kill_at; ++i) first.ingest(trace.flows()[i]);
      first.save_checkpoint(image);
      // `first` is abandoned here without flush — the simulated crash.
    }

    StreamingDetector resumed(cfg, sink);
    resumed.restore_checkpoint(image);
    EXPECT_EQ(resumed.flows_ingested_total(), kill_at);
    for (std::size_t i = kill_at; i < trace.flows().size(); ++i)
      resumed.ingest(trace.flows()[i]);
    resumed.flush();

    expect_verdicts_equal(verdicts, expected);
  }
}

TEST(Checkpoint, FileRoundTripWithTraceFastForward) {
  // The full campus_monitor --resume workflow: checkpoint to disk, restart,
  // restore, fast-forward the trace with skip_flows, finish the run.
  const netflow::TraceSet trace = storm_trace(9);
  const StreamingConfig cfg = config(1800.0);
  const std::vector<WindowVerdict> expected = uninterrupted_run(trace, cfg);

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "tp_ckpt_test";
  fs::create_directories(dir);
  const std::string trace_path = (dir / "trace.csv").string();
  const std::string ckpt_path = (dir / "monitor.ckpt").string();
  netflow::write_csv_file(trace_path, trace);

  const std::size_t kill_at = trace.flows().size() / 2;
  std::vector<WindowVerdict> verdicts;
  const auto sink = [&](const WindowVerdict& v) { verdicts.push_back(v); };
  {
    netflow::TraceReader reader(trace_path);
    StreamingDetector first(cfg, sink);
    netflow::FlowRecord rec;
    while (first.flows_ingested_total() < kill_at && reader.next(rec)) first.ingest(rec);
    first.save_checkpoint_file(ckpt_path);
  }
  {
    netflow::TraceReader reader(trace_path);
    StreamingDetector resumed(cfg, sink);
    resumed.restore_checkpoint_file(ckpt_path);
    EXPECT_EQ(reader.skip_flows(static_cast<std::size_t>(resumed.flows_ingested_total())),
              kill_at);
    const std::size_t fed = feed(reader, resumed);
    EXPECT_EQ(fed, trace.flows().size() - kill_at);
  }
  expect_verdicts_equal(verdicts, expected);

  std::remove(trace_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST(Checkpoint, MidBatchCheckpointAndRestoreReproducesVerdicts) {
  // campus_monitor ingests columnar batches but checkpoints every N flows
  // with N not a multiple of the batch size, so the checkpoint cursor lands
  // mid-batch. A monitor killed at such a boundary and restored (restore +
  // skip_flows + batch ingestion of the remainder) must emit verdicts
  // identical to the uninterrupted run.
  const netflow::TraceSet trace = storm_trace(17);
  const StreamingConfig cfg = config(1800.0);
  const std::vector<WindowVerdict> expected = uninterrupted_run(trace, cfg);

  constexpr std::size_t kBatchCapacity = 64;
  constexpr std::size_t kCheckpointEvery = 97;  // deliberately not a multiple
  ASSERT_GT(trace.flows().size(), 3 * kCheckpointEvery);

  std::stringstream encoded;
  netflow::write_binary_columnar(encoded, trace);
  const std::string bytes = encoded.str();

  // First run: batch-ingest with the record-granular checkpoint split (the
  // campus_monitor loop), keeping the image saved at every boundary. Kill
  // after the third checkpoint. Verdicts emitted before the kill and after
  // the resume together must equal the uninterrupted run's.
  std::vector<WindowVerdict> verdicts;
  const auto sink = [&](const WindowVerdict& v) { verdicts.push_back(v); };
  std::stringstream image;
  std::size_t killed_at = 0;
  {
    std::stringstream in(bytes);
    netflow::TraceReader reader(in);
    StreamingDetector first(cfg, sink);
    netflow::FlowBatch batch(kBatchCapacity);
    std::size_t checkpoints = 0;
    while (checkpoints < 3 && reader.next_batch(batch) > 0) {
      std::size_t begin = 0;
      while (begin < batch.size()) {
        const std::size_t until =
            kCheckpointEvery - static_cast<std::size_t>(first.flows_ingested_total()) %
                                   kCheckpointEvery;
        const std::size_t end = std::min(batch.size(), begin + until);
        first.ingest(batch, begin, end);
        begin = end;
        if (first.flows_ingested_total() % kCheckpointEvery == 0) {
          image.str("");
          image.clear();
          first.save_checkpoint(image);
          killed_at = static_cast<std::size_t>(first.flows_ingested_total());
          if (++checkpoints == 3) break;
        }
      }
      // `first` keeps ingesting until the kill point; the crash abandons it.
    }
  }
  ASSERT_EQ(killed_at, 3 * kCheckpointEvery);
  ASSERT_NE(killed_at % kBatchCapacity, 0u);  // genuinely mid-batch

  // Resume: a fresh detector + reader, fast-forward, finish with feed().
  {
    std::stringstream in(bytes);
    netflow::TraceReader reader(in);
    StreamingDetector resumed(cfg, sink);
    resumed.restore_checkpoint(image);
    EXPECT_EQ(resumed.flows_ingested_total(), killed_at);
    EXPECT_EQ(reader.skip_flows(killed_at), killed_at);
    const std::size_t fed = feed(reader, resumed);
    EXPECT_EQ(fed, trace.flows().size() - killed_at);
  }

  expect_verdicts_equal(verdicts, expected);
}

TEST(Checkpoint, RejectsCorruptImages) {
  const netflow::TraceSet trace = storm_trace(13, 1800.0);
  const StreamingConfig cfg = config(3600.0);
  StreamingDetector detector(cfg, [](const WindowVerdict&) {});
  for (const auto& rec : trace.flows()) detector.ingest(rec);

  std::stringstream image;
  detector.save_checkpoint(image);
  const std::string good = image.str();

  const auto restore_from = [&](std::string bytes) {
    std::stringstream in(std::move(bytes));
    StreamingDetector fresh(cfg, [](const WindowVerdict&) {});
    fresh.restore_checkpoint(in);
  };

  // Pristine image restores.
  EXPECT_NO_THROW(restore_from(good));

  // A flipped payload byte fails the checksum.
  {
    std::string bad = good;
    bad[bad.size() / 2] ^= 0x01;
    EXPECT_THROW(restore_from(bad), util::ParseError);
  }
  // Truncation anywhere is detected.
  EXPECT_THROW(restore_from(good.substr(0, good.size() - 1)), util::ParseError);
  EXPECT_THROW(restore_from(good.substr(0, 10)), util::ParseError);
  // Bad magic / unsupported version.
  {
    std::string bad = good;
    bad[0] = 'X';
    EXPECT_THROW(restore_from(bad), util::ParseError);
  }
  {
    std::string bad = good;
    bad[4] = 99;
    EXPECT_THROW(restore_from(bad), util::ParseError);
  }
}

TEST(Checkpoint, RejectsConfigMismatch) {
  StreamingDetector saver(config(3600.0), [](const WindowVerdict&) {});
  std::stringstream image;
  saver.save_checkpoint(image);

  StreamingDetector other(config(1800.0), [](const WindowVerdict&) {});
  EXPECT_THROW(other.restore_checkpoint(image), util::ConfigError);
}

TEST(Checkpoint, FailedRestoreLeavesDetectorUsable) {
  const netflow::TraceSet trace = storm_trace(17, 1800.0);
  const StreamingConfig cfg = config(3600.0);
  const std::vector<WindowVerdict> expected = uninterrupted_run(trace, cfg);

  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(cfg, [&](const WindowVerdict& v) { verdicts.push_back(v); });
  std::stringstream garbage("not a checkpoint at all");
  EXPECT_THROW(detector.restore_checkpoint(garbage), util::ParseError);

  // The failed restore must not have half-applied anything.
  for (const auto& rec : trace.flows()) detector.ingest(rec);
  detector.flush();
  expect_verdicts_equal(verdicts, expected);
}

TEST(Checkpoint, MissingFileThrowsIoError) {
  StreamingDetector detector(config(), [](const WindowVerdict&) {});
  EXPECT_THROW(detector.restore_checkpoint_file("/nonexistent/dir/x.ckpt"), util::IoError);
  EXPECT_THROW(detector.save_checkpoint_file("/nonexistent/dir/x.ckpt"), util::IoError);
}

// ---------------------------------------------------------------------------
// Graceful degradation.

netflow::FlowRecord flow(simnet::Ipv4 src, simnet::Ipv4 dst, double start,
                         std::uint64_t bytes = 100) {
  netflow::FlowRecord r;
  r.src = src;
  r.dst = dst;
  r.start_time = start;
  r.end_time = start + 1;
  r.bytes_src = bytes;
  r.pkts_src = 1;
  r.pkts_dst = 1;
  return r;
}

TEST(Degradation, BudgetShedsTimingStateAndMarksVerdict) {
  // 20 hosts x 10 timing samples; a budget of 60 forces shedding.
  StreamingConfig cfg = config(10000.0);
  cfg.timing_budget = 60;
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(cfg, [&](const WindowVerdict& v) { verdicts.push_back(v); });
  for (int h = 0; h < 20; ++h) {
    const simnet::Ipv4 src(128, 2, 1, static_cast<std::uint8_t>(h + 1));
    for (int i = 0; i < 10; ++i)
      detector.ingest(flow(src, simnet::Ipv4(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
                           10.0 * h + i));
  }
  detector.flush();

  ASSERT_EQ(verdicts.size(), 1u);
  const WindowVerdict& v = verdicts[0];
  EXPECT_TRUE(v.degraded);
  EXPECT_GT(v.hosts_shed, 0u);
  EXPECT_GT(v.timing_samples_shed, 0u);
  EXPECT_EQ(v.flows_seen, 200u);

  // Scalar evidence is exact for every host, shed or not.
  ASSERT_EQ(v.features.size(), 20u);
  for (const auto& [host, f] : v.features) {
    EXPECT_EQ(f.flows_initiated, 10u);
    EXPECT_EQ(f.bytes_sent_initiated, 1000u);
  }
  // Some hosts kept their timing evidence; shed ones lost theirs.
  std::size_t with_timing = 0, without_timing = 0;
  for (const auto& [host, f] : v.features) {
    if (f.distinct_dsts > 0) ++with_timing;
    else ++without_timing;
  }
  EXPECT_EQ(without_timing, v.hosts_shed);
  EXPECT_GT(with_timing, 0u);
}

TEST(Degradation, GenerousBudgetChangesNothing) {
  const netflow::TraceSet trace = storm_trace(21, 1800.0);
  const StreamingConfig plain = config(3600.0);
  StreamingConfig budgeted = config(3600.0);
  budgeted.timing_budget = 1u << 20;  // far above the trace's needs

  const std::vector<WindowVerdict> a = uninterrupted_run(trace, plain);
  const std::vector<WindowVerdict> b = uninterrupted_run(trace, budgeted);
  for (const auto& v : b) EXPECT_FALSE(v.degraded);
  expect_verdicts_equal(a, b);
}

TEST(Degradation, BudgetResetsAtWindowBoundary) {
  StreamingConfig cfg = config(100.0);
  cfg.timing_budget = 5;
  std::vector<WindowVerdict> verdicts;
  StreamingDetector detector(cfg, [&](const WindowVerdict& v) { verdicts.push_back(v); });
  const simnet::Ipv4 src(128, 2, 0, 1);
  // Window 0: 8 samples — degrades. Window 1: 3 samples — clean.
  for (int i = 0; i < 8; ++i)
    detector.ingest(flow(src, simnet::Ipv4(10, 0, 0, static_cast<std::uint8_t>(i + 1)), i));
  for (int i = 0; i < 3; ++i)
    detector.ingest(flow(src, simnet::Ipv4(10, 0, 0, static_cast<std::uint8_t>(i + 1)), 100.0 + i));
  detector.flush();
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].degraded);
  EXPECT_FALSE(verdicts[1].degraded);
}

TEST(Degradation, CheckpointCarriesDegradedState) {
  // Kill-and-restore mid-way through a degraded window: the resumed run
  // must report the same shed accounting and the same verdict.
  StreamingConfig cfg = config(10000.0);
  cfg.timing_budget = 40;

  const auto make_flows = [] {
    std::vector<netflow::FlowRecord> flows;
    for (int h = 0; h < 15; ++h) {
      const simnet::Ipv4 src(128, 2, 2, static_cast<std::uint8_t>(h + 1));
      for (int i = 0; i < 8; ++i)
        flows.push_back(flow(src, simnet::Ipv4(10, 0, 1, static_cast<std::uint8_t>(i + 1)),
                             10.0 * h + i));
    }
    return flows;
  };
  const std::vector<netflow::FlowRecord> flows = make_flows();

  std::vector<WindowVerdict> expected;
  {
    StreamingDetector detector(cfg, [&](const WindowVerdict& v) { expected.push_back(v); });
    for (const auto& rec : flows) detector.ingest(rec);
    detector.flush();
  }
  ASSERT_EQ(expected.size(), 1u);
  ASSERT_TRUE(expected[0].degraded);

  std::vector<WindowVerdict> verdicts;
  const std::size_t kill_at = flows.size() / 2;
  std::stringstream image;
  {
    StreamingDetector first(cfg, [&](const WindowVerdict& v) { verdicts.push_back(v); });
    for (std::size_t i = 0; i < kill_at; ++i) first.ingest(flows[i]);
    first.save_checkpoint(image);
  }
  StreamingDetector resumed(cfg, [&](const WindowVerdict& v) { verdicts.push_back(v); });
  resumed.restore_checkpoint(image);
  for (std::size_t i = kill_at; i < flows.size(); ++i) resumed.ingest(flows[i]);
  resumed.flush();

  expect_verdicts_equal(verdicts, expected);
  EXPECT_EQ(verdicts[0].timing_samples_shed, expected[0].timing_samples_shed);
}

}  // namespace
}  // namespace tradeplot::detect
