// Streaming, pull-based ingestion of flow traces.
//
// TraceReader is the high-throughput counterpart to io.h's batch readers: it
// opens a CSV or binary trace (auto-detecting the format by content unless
// told otherwise), reads the preamble (window + ground-truth entries for the
// binary format, everything up to the header row for CSV), and then yields
// one FlowRecord per next() call. Memory use is bounded by one internal read
// buffer (kBufferSize) regardless of trace size, so a border monitor can feed
// detect::StreamingDetector from a multi-gigabyte trace without ever
// materializing a TraceSet.
//
// The reader is zero-copy on the hot path: input is pulled from the stream in
// large blocks, CSV lines are tokenized as std::string_view slices of the
// block, and numeric fields are decoded with std::from_chars (locale-free,
// range-checked). io.h's read_csv/read_binary are thin wrappers over
// TraceReader::read_all().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>

#include "netflow/trace_set.h"

namespace tradeplot::netflow {

enum class TraceFormat { kCsv, kBinary };

[[nodiscard]] std::string_view to_string(TraceFormat f);

class TraceReader {
 public:
  /// Size of the internal read buffer; the reader's memory bound. (A buffer
  /// holds whole CSV lines, so it grows only for pathological inputs whose
  /// single line exceeds this.)
  static constexpr std::size_t kBufferSize = 1 << 18;  // 256 KiB

  /// Opens a trace on a caller-owned stream, auto-detecting the format: a
  /// stream starting with the binary magic is binary, anything else is CSV.
  /// Reads the preamble eagerly; throws util::ParseError / util::IoError on
  /// malformed input, exactly as the batch readers do.
  explicit TraceReader(std::istream& in);

  /// Same, but with the format forced (no sniffing); a mismatched stream
  /// fails with the corresponding format's parse error.
  TraceReader(std::istream& in, TraceFormat format);

  /// Opens a trace file (auto-detect / forced format). Throws util::IoError
  /// if the file cannot be opened.
  explicit TraceReader(const std::string& path);
  TraceReader(const std::string& path, TraceFormat format);

  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] TraceFormat format() const { return format_; }
  [[nodiscard]] double window_start() const { return window_start_; }
  [[nodiscard]] double window_end() const { return window_end_; }

  /// Ground-truth entries seen so far. For binary traces this is complete
  /// after construction; CSV traces normally carry truth in the preamble,
  /// but "#truth" lines are legal anywhere, so entries can still be added
  /// while flows are being pulled.
  [[nodiscard]] const std::unordered_map<simnet::Ipv4, HostKind>& truth() const { return truth_; }

  /// Flows yielded so far.
  [[nodiscard]] std::size_t flows_read() const { return flows_read_; }

  /// For binary traces, the total flow count declared in the header; 0 for
  /// CSV (whose length is unknown until EOF).
  [[nodiscard]] std::uint64_t declared_flow_count() const { return flow_count_; }

  /// Reads the next flow into `out`. Returns false at clean end-of-trace;
  /// throws util::ParseError / util::IoError on malformed or truncated
  /// input. After false is returned, further calls keep returning false.
  [[nodiscard]] bool next(FlowRecord& out);

  /// Drains the remaining flows (plus window and truth) into a TraceSet —
  /// the batch entry points read_csv/read_binary are implemented with this.
  ///
  /// Unlike next(), this is allowed to materialize the remaining input, so
  /// the CSV drain decodes flow lines in parallel over the shared pool
  /// (thread count per util::resolve_threads / TRADEPLOT_THREADS). Each line
  /// parses into its own pre-sized slot, so the resulting TraceSet is
  /// bit-identical to the serial read for every thread count, and the
  /// earliest malformed line wins when reporting errors, exactly as a
  /// sequential pass would.
  [[nodiscard]] TraceSet read_all();

 private:
  class Source;  // buffered block reader (defined in trace_reader.cpp)

  void open(std::istream& in, const TraceFormat* forced);
  void read_csv_preamble();
  void read_binary_preamble();
  void parse_csv_comment(std::string_view line);
  void read_all_csv(TraceSet& trace);
  [[nodiscard]] bool next_csv(FlowRecord& out);
  [[nodiscard]] bool next_binary(FlowRecord& out);

  std::unique_ptr<std::istream> owned_stream_;  // set by the path ctors
  std::unique_ptr<Source> src_;

  TraceFormat format_ = TraceFormat::kCsv;
  double window_start_ = 0.0;
  double window_end_ = 0.0;
  std::unordered_map<simnet::Ipv4, HostKind> truth_;

  std::uint64_t flow_count_ = 0;  // binary only
  std::size_t flows_read_ = 0;
  std::size_t lineno_ = 0;  // CSV only
  bool done_ = false;
};

}  // namespace tradeplot::netflow
