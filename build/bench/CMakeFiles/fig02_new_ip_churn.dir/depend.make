# Empty dependencies file for fig02_new_ip_churn.
# This may be replaced when dependencies are built.
