# Empty compiler generated dependencies file for netflow_trace_set_test.
# This may be replaced when dependencies are built.
