file(REMOVE_RECURSE
  "CMakeFiles/fig10_nugache_survival.dir/fig10_nugache_survival.cpp.o"
  "CMakeFiles/fig10_nugache_survival.dir/fig10_nugache_survival.cpp.o.d"
  "fig10_nugache_survival"
  "fig10_nugache_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_nugache_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
