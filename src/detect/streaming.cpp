#include "detect/streaming.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "detect/payload_codec.h"
#include "netflow/trace_reader.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/checksum.h"
#include "util/error.h"

namespace tradeplot::detect {

namespace {

/// Streaming-detector metric handles; registered as one family set on first
/// enabled use so scrapes cover degraded/checkpoint families even at zero.
struct StreamObs {
  obs::Counter& flows = obs::Registry::global().counter(
      "tradeplot_stream_flows_total", "Flows ingested by the streaming detector");
  obs::Counter& windows = obs::Registry::global().counter(
      "tradeplot_stream_windows_total", "Detection windows closed, by outcome",
      {{"outcome", "ok"}});
  obs::Counter& windows_degraded = obs::Registry::global().counter(
      "tradeplot_stream_windows_total", "Detection windows closed, by outcome",
      {{"outcome", "degraded"}});
  obs::Counter& hosts_shed = obs::Registry::global().counter(
      "tradeplot_stream_hosts_shed_total",
      "Hosts whose timing state was shed by the budget");
  obs::Counter& samples_shed = obs::Registry::global().counter(
      "tradeplot_stream_timing_samples_shed_total",
      "Buffered timing samples dropped by budget shedding");
  obs::Gauge& timing_samples = obs::Registry::global().gauge(
      "tradeplot_stream_timing_samples",
      "Per-destination timing samples currently buffered across all hosts");
  obs::Gauge& timing_budget = obs::Registry::global().gauge(
      "tradeplot_stream_timing_budget",
      "Configured timing-sample budget (0 = unlimited)");
  obs::Histogram& window_flows = obs::Registry::global().histogram(
      "tradeplot_window_flows", "Flows per closed detection window",
      obs::count_buckets());
  obs::Histogram& checkpoint_bytes = obs::Registry::global().histogram(
      "tradeplot_checkpoint_bytes", "Checkpoint payload size",
      obs::size_buckets());

  static StreamObs& get() {
    static StreamObs o;
    return o;
  }
};

}  // namespace

StreamingDetector::StreamingDetector(StreamingConfig config, VerdictSink sink)
    : config_(std::move(config)), sink_(std::move(sink)) {
  if (!config_.is_internal)
    throw util::ConfigError("StreamingDetector: is_internal required");
  if (config_.window <= 0.0)
    throw util::ConfigError("StreamingDetector: window must be > 0");
  if (!sink_) throw util::ConfigError("StreamingDetector: verdict sink required");
}

void StreamingDetector::ingest_one(simnet::Ipv4 src, simnet::Ipv4 dst, double start_time,
                                   std::uint64_t bytes_src, std::uint64_t bytes_dst,
                                   bool failed) {
  if (!window_open_) {
    // First flow anchors the first window at a whole multiple of D, so
    // window boundaries are stable regardless of when traffic starts.
    window_start_ = std::floor(start_time / config_.window) * config_.window;
    window_open_ = true;
  }
  roll_to(start_time);

  if (config_.is_internal(src))
    acc_.apply_initiator(src, dst, start_time, bytes_src, failed, config_.timing_budget);
  if (config_.is_internal(dst) && !failed)
    acc_.apply_responder(dst, start_time, bytes_dst);
  ++flows_in_window_;
  ++flows_ingested_total_;
}

void StreamingDetector::ingest(const netflow::FlowRecord& flow) {
  ingest_one(flow.src, flow.dst, flow.start_time, flow.bytes_src, flow.bytes_dst,
             flow.failed());
  if (obs::enabled()) {
    StreamObs& o = StreamObs::get();
    o.flows.add();
    o.timing_samples.set(static_cast<double>(acc_.timing_samples()));
    o.timing_budget.set(static_cast<double>(config_.timing_budget));
  }
}

void StreamingDetector::ingest(const netflow::FlowBatch& batch) {
  ingest(batch, 0, batch.size());
}

void StreamingDetector::ingest(const netflow::FlowBatch& batch, std::size_t begin,
                               std::size_t end) {
  // Column scan: only the six fields the detector reads are ever touched,
  // so ingesting a batch streams ~33 bytes per flow instead of the whole
  // 144-byte record. Windows still roll per flow (ingest_one), so verdicts
  // are identical to record-at-a-time ingestion of the same rows.
  const simnet::Ipv4* src = batch.src();
  const simnet::Ipv4* dst = batch.dst();
  const double* start = batch.start_time();
  const std::uint64_t* bytes_src = batch.bytes_src();
  const std::uint64_t* bytes_dst = batch.bytes_dst();
  const netflow::FlowState* state = batch.state();
  for (std::size_t i = begin; i < end; ++i) {
    ingest_one(src[i], dst[i], start[i], bytes_src[i], bytes_dst[i],
               state[i] != netflow::FlowState::kEstablished);
  }
  if (obs::enabled() && end > begin) {
    StreamObs& o = StreamObs::get();
    o.flows.add(end - begin);
    o.timing_samples.set(static_cast<double>(acc_.timing_samples()));
    o.timing_budget.set(static_cast<double>(config_.timing_budget));
  }
}

void StreamingDetector::roll_to(double time) {
  while (window_open_ && time >= window_start_ + config_.window) {
    emit();
    window_start_ += config_.window;
  }
}

void StreamingDetector::emit() {
  const obs::StageTimer close_timer(obs::Stage::kWindowClose);
  // Finalize per-destination state (churn + interstitials) via the same
  // helper as the batch extractor.
  FeatureMap features = acc_.finalize(config_.new_ip_grace);

  WindowVerdict verdict;
  verdict.window_index = windows_emitted_;
  verdict.window_start = window_start_;
  verdict.window_end = window_start_ + config_.window;
  verdict.flows_seen = flows_in_window_;
  verdict.degraded = acc_.hosts_shed() > 0;
  verdict.hosts_shed = acc_.hosts_shed();
  verdict.timing_samples_shed = acc_.timing_samples_shed();
  if (!features.empty()) {
    verdict.result =
        find_plotters(features, config_.pipeline, config_.signature_cache ? &hm_cache_ : nullptr);
  }
  verdict.features = std::move(features);
  sink_(verdict);

  if (obs::enabled()) {
    StreamObs& o = StreamObs::get();
    (verdict.degraded ? o.windows_degraded : o.windows).add();
    o.hosts_shed.add(acc_.hosts_shed());
    o.samples_shed.add(acc_.timing_samples_shed());
    o.window_flows.observe(static_cast<double>(flows_in_window_));
    o.timing_samples.set(0.0);
  }

  acc_.reset();
  flows_in_window_ = 0;
  ++windows_emitted_;
}

void StreamingDetector::flush() {
  if (!window_open_) return;
  emit();
  window_open_ = false;
}

// ---------------------------------------------------------------------------
// Checkpoint format: a versioned, CRC-checked image of the full mid-window
// state. Layout (packed little-endian):
//
//   u32 magic "TPCK"   u32 version   u64 payload_size   payload   u32 crc32
//
// The payload opens with the config parameters the state depends on
// (window D, churn grace) so a restore into a differently-configured
// detector is rejected instead of silently producing different verdicts.
//
// Version 2 appends the θ_hm signature cache (detect/hm_cache.h) after the
// per-host state, so a resumed monitor keeps its warm cross-window cache.
// (The codec classes live in detect/payload_codec.h, shared with the cache.)

namespace {

constexpr std::uint32_t kCkptMagic = 0x4B435054;  // "TPCK" on the wire
constexpr std::uint32_t kCkptVersion = 2;
/// Upper bound on a plausible checkpoint payload; a corrupted size field
/// must not make restore attempt a multi-gigabyte allocation.
constexpr std::uint64_t kCkptMaxPayload = 1ull << 30;

}  // namespace

void StreamingDetector::save_checkpoint(std::ostream& out) const {
  const obs::StageTimer save_timer(obs::Stage::kCheckpointSave);
  PayloadWriter w;
  w.put(config_.window);
  w.put(config_.new_ip_grace);
  w.put(static_cast<std::uint8_t>(window_open_));
  w.put(window_start_);
  w.put(static_cast<std::uint64_t>(flows_in_window_));
  w.put(static_cast<std::uint64_t>(windows_emitted_));
  w.put(flows_ingested_total_);
  acc_.encode(w);
  hm_cache_.encode(w);

  const std::string& payload = w.bytes();
  if (obs::enabled())
    StreamObs::get().checkpoint_bytes.observe(static_cast<double>(payload.size()));
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  const auto put_raw = [&](const void* p, std::size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  };
  put_raw(&kCkptMagic, sizeof(kCkptMagic));
  put_raw(&kCkptVersion, sizeof(kCkptVersion));
  const auto size = static_cast<std::uint64_t>(payload.size());
  put_raw(&size, sizeof(size));
  put_raw(payload.data(), payload.size());
  put_raw(&crc, sizeof(crc));
  out.flush();
  if (!out) throw util::IoError("checkpoint write failed");
}

void StreamingDetector::restore_checkpoint(std::istream& in) {
  const obs::StageTimer restore_timer(obs::Stage::kCheckpointRestore);
  const auto read_raw = [&](void* p, std::size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in.gcount()) != n)
      throw util::ParseError("checkpoint: truncated");
  };
  std::uint32_t magic = 0, version = 0;
  read_raw(&magic, sizeof(magic));
  if (magic != kCkptMagic) throw util::ParseError("checkpoint: bad magic");
  read_raw(&version, sizeof(version));
  if (version != kCkptVersion)
    throw util::ParseError("checkpoint: unsupported version " + std::to_string(version));
  std::uint64_t size = 0;
  read_raw(&size, sizeof(size));
  if (size > kCkptMaxPayload) throw util::ParseError("checkpoint: implausible payload size");
  std::string payload(static_cast<std::size_t>(size), '\0');
  read_raw(payload.data(), payload.size());
  std::uint32_t crc = 0;
  read_raw(&crc, sizeof(crc));
  if (crc != util::crc32(payload.data(), payload.size()))
    throw util::ParseError("checkpoint: checksum mismatch");

  PayloadReader r(payload);
  const auto window = r.take<double>();
  const auto grace = r.take<double>();
  if (window != config_.window || grace != config_.new_ip_grace)
    throw util::ConfigError(
        "checkpoint: saved with different window/grace than this detector");

  // Decode into fresh state first; only swap in once the whole payload
  // parsed, so a fault mid-payload never leaves the detector half-restored.
  const auto open = r.take<std::uint8_t>();
  const auto window_start = r.take<double>();
  const auto flows_in_window = r.take<std::uint64_t>();
  const auto windows_emitted = r.take<std::uint64_t>();
  const auto flows_total = r.take<std::uint64_t>();
  WindowAccumulator acc;
  acc.decode(r);
  HmCache cache;
  cache.decode(r);
  if (!r.exhausted()) throw util::ParseError("checkpoint: trailing bytes in payload");

  acc_ = std::move(acc);
  hm_cache_ = std::move(cache);
  window_open_ = open != 0;
  window_start_ = window_start;
  flows_in_window_ = static_cast<std::size_t>(flows_in_window);
  windows_emitted_ = static_cast<std::size_t>(windows_emitted);
  flows_ingested_total_ = flows_total;
}

void StreamingDetector::save_checkpoint_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::IoError("cannot open checkpoint for writing: " + path);
  save_checkpoint(out);
  out.close();
  if (!out) throw util::IoError("checkpoint write failed: " + path);
}

void StreamingDetector::restore_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::IoError("cannot open checkpoint for reading: " + path);
  restore_checkpoint(in);
}

std::size_t feed(netflow::TraceReader& reader, StreamingDetector& detector) {
  netflow::FlowBatch batch;
  std::size_t fed = 0;
  for (;;) {
    std::size_t n = 0;
    try {
      n = reader.next_batch(batch);
    } catch (...) {
      // A decode fault (strict policy / exhausted skip budget) may leave
      // rows already staged in `batch`; the reader counted them, so ingest
      // them before propagating — a restart that skip_flows()es past the
      // reader's records_ok must not lose those flows.
      if (!batch.empty()) detector.ingest(batch);
      throw;
    }
    if (n == 0) break;
    detector.ingest(batch);
    fed += n;
  }
  detector.flush();
  return fed;
}

}  // namespace tradeplot::detect
