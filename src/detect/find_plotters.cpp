#include "detect/find_plotters.h"

namespace tradeplot::detect {

FindPlottersResult find_plotters(const FeatureMap& features, const FindPlottersConfig& config,
                                 HmCache* cache) {
  FindPlottersResult result;
  result.input = all_hosts(features);
  if (result.input.empty()) return result;
  result.reduced = data_reduction(features, result.input, config.reduction);
  if (result.reduced.empty()) return result;  // nobody above the failed-rate median
  result.s_vol = volume_test(features, result.reduced, config.volume);
  result.s_churn = churn_test(features, result.reduced, config.churn);
  result.vol_or_churn = host_union(result.s_vol, result.s_churn);
  result.hm = human_machine_test(features, result.vol_or_churn, config.human_machine, cache);
  result.plotters = result.hm.flagged;
  return result;
}

}  // namespace tradeplot::detect
