// Agglomerative hierarchical clustering with average linkage (UPGMA).
//
// The paper (§IV-C) merges the two closest hosts at each step, building a
// dendrogram whose link weights are the average distance between the pair of
// subtrees each link connects; the final clusters are formed "by cutting the
// top 5% links with the largest weights".
//
// Implementation: nearest-neighbour-chain algorithm with Lance–Williams
// updates — O(n^2) time, O(n^2) space — which produces exactly the UPGMA
// dendrogram.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

namespace tradeplot::stats {

/// One merge step of the dendrogram. Leaves are items 0..n-1; the k-th merge
/// creates internal node n+k joining `left` and `right` at `height` (their
/// average inter-cluster distance).
struct Merge {
  std::size_t left;
  std::size_t right;
  double height;
  std::size_t size;  // number of leaves under the new node
};

class Dendrogram {
 public:
  Dendrogram(std::size_t leaves, std::vector<Merge> merges);

  [[nodiscard]] std::size_t leaf_count() const { return leaves_; }
  [[nodiscard]] const std::vector<Merge>& merges() const { return merges_; }

  /// Clusters obtained by deleting the ceil(fraction * #links) links with
  /// the largest heights (the paper's cut; fraction in [0,1]). Each returned
  /// cluster is a sorted list of leaf indices; clusters are ordered by their
  /// smallest leaf.
  [[nodiscard]] std::vector<std::vector<std::size_t>> cut_top_fraction(double fraction) const;

  /// Clusters obtained by deleting every link with height > threshold.
  [[nodiscard]] std::vector<std::vector<std::size_t>> cut_at_height(double threshold) const;

 private:
  [[nodiscard]] std::vector<std::vector<std::size_t>> components(
      const std::vector<bool>& keep_merge) const;

  std::size_t leaves_;
  std::vector<Merge> merges_;
};

/// Runs UPGMA over a dense symmetric distance matrix (row-major, n x n).
/// Throws util::ConfigError if n == 0 or the matrix size is not n*n.
[[nodiscard]] Dendrogram agglomerative_average_linkage(std::span<const double> distances,
                                                       std::size_t n);

/// Maximum pairwise distance among `members` under the given matrix.
/// Returns 0 for clusters of size < 2.
[[nodiscard]] double cluster_diameter(std::span<const double> distances, std::size_t n,
                                      std::span<const std::size_t> members);

/// Weighted UPGMA: leaf i stands for `weights[i]` original items collapsed
/// onto one representative (a shard-local cluster exported by its medoid).
/// The Lance–Williams recurrence uses the leaf weights, so merge heights
/// equal what unweighted UPGMA would produce over the expanded population if
/// every collapsed item sat exactly at its representative — the second
/// level of the two-level θ_hm clustering. Merge sizes count original items,
/// ties break deterministically by the smallest (height, slot) pair under
/// the same 1e-15 tolerance as the unweighted driver. Throws
/// util::ConfigError on n == 0, a matrix size mismatch, a weights size
/// mismatch, or a zero weight.
[[nodiscard]] Dendrogram agglomerative_average_linkage_weighted(
    std::span<const double> distances, std::size_t n, std::span<const std::size_t> weights);

// ---------------------------------------------------------------------------
// Pruned (lazy) average linkage — the sub-quadratic θ_hm clustering path.
//
// agglomerative_average_linkage needs every one of the n(n-1)/2 leaf
// distances up front, which is the O(n²) exact-kernel wall. The pruned
// variant runs the *same* nearest-neighbour-chain algorithm but resolves
// distances lazily: every candidate in a nearest-neighbour scan is first
// tested against a cheap admissible lower bound, and only candidates whose
// bound could still win (or tie, under the chain's 1e-15 tolerance) pay for
// an exact resolution. Resolved values are memoized sparsely by dendrogram
// node id, and cluster-cluster values are replayed through the identical
// Lance-Williams recurrence — same operand order, same rounding — so every
// value the pruned run observes is bit-identical to the corresponding dense
// matrix entry, and the returned dendrogram (merge pairs, heights, tie
// behaviour) is bit-identical to the exhaustive run's. Exactness does not
// depend on the quality of the bounds; bad bounds only cost speed.
// ---------------------------------------------------------------------------

/// Leaf-level features backing the admissible cluster lower bounds. All
/// pointers borrow caller storage and must outlive the clustering call.
///
///  * pivot tier — pivot_distances[i * pivots + p] is the *exact* distance
///    from leaf i to the p-th pivot leaf under the same metric as
///    leaf_distance. Because the metric satisfies the triangle inequality,
///    |d(i,p) - d(j,p)| <= d(i,j); averaging preserves the bound, so the
///    running per-cluster pivot-distance means give
///    max_p |mean_A(p) - mean_B(p)| <= avg-linkage distance(A, B).
///  * grid tier (optional, grid_bins == 0 disables) — grid[i * grid_bins + b]
///    is leaf i's unit-mass histogram over a shared uniform grid,
///    snap_cost[i] the EMD cost of snapping leaf i onto that grid, and
///    grid_half_width half the grid spacing. For 1-D EMD,
///    d(i,j) >= grid_half_width * L1(grid_i, grid_j) - snap_cost_i -
///    snap_cost_j, and the bound again survives averaging into clusters.
struct PruneFeatures {
  const double* pivot_distances = nullptr;
  std::size_t pivots = 0;
  const double* grid = nullptr;
  std::size_t grid_bins = 0;
  const double* snap_cost = nullptr;
  double grid_half_width = 0.0;
  /// Optional: the leaf index backing each pivot column. When set, the
  /// engine seeds its resolved-pair store with the pivot columns for free
  /// point intervals; pivot_distances[i * pivots + p] must then be
  /// bit-identical to what leaf_distance would return for (i, pivot_leaves[p]).
  const std::size_t* pivot_leaves = nullptr;
};

/// Work accounting for one pruned clustering run.
struct PruneCounters {
  std::uint64_t scanned = 0;                 // candidate slots examined in NN scans
  std::uint64_t skipped_pivot = 0;           // pruned by the pivot-mean bound
  std::uint64_t skipped_grid = 0;            // pruned by the grid bound
  std::uint64_t resolved_cluster_pairs = 0;  // exact cluster-pair resolutions
  std::uint64_t scan_cache_hits = 0;  // NN scans served by the chain-local candidate cache
  std::uint64_t bloom_skips = 0;      // memo probes skipped by the Bloom gate
  // Per-phase wall-clock, filled only under PruneOptions::collect_timing.
  // pivot_build_seconds is the caller's slot: the neighbor index is built
  // before the engine runs, so the engine never touches it.
  double pivot_build_seconds = 0.0;
  double bound_scan_seconds = 0.0;
  double exact_eval_seconds = 0.0;
  double replay_seconds = 0.0;
};

/// Exact leaf-pair distance, i < j. Must return the same value as the dense
/// matrix entry the exhaustive path would have used (same kernel, same
/// inputs); called serially, at most once per pair.
using LeafDistanceFn = std::function<double(std::size_t, std::size_t)>;

/// Batch leaf-pair evaluator: writes out[k] = the exact distance for the
/// k-th (i, j) pair, i < j. Must produce values bit-identical to
/// leaf_distance for the same pair — it exists so independent resolutions
/// can run on a thread pool; any parallelism inside is the implementation's
/// to synchronize. Pairs within one call are distinct.
using BatchLeafFn = std::function<void(
    std::span<const std::pair<std::uint32_t, std::uint32_t>>, double*)>;

/// Notified (serially, on the engine thread) for every leaf pair resolved
/// through batch_leaf, so callers memoizing leaf distances themselves (e.g.
/// for cache retention) see batch-resolved values too.
using LeafResolvedSink = std::function<void(std::size_t, std::size_t, double)>;

/// Tuning knobs for the pruned drivers. Defaults reproduce the serial
/// behaviour; none of the options can change a verdict — batch resolution
/// may resolve *more* pairs than the serial gate (counters vary with
/// `threads`), but every resolved value is exact, so merges, heights, and
/// groups are bit-identical at every thread count.
struct PruneOptions {
  /// Worker count for batch leaf resolution (pass the already-resolved
  /// count; 0/1 keeps resolution serial).
  std::size_t threads = 1;
  BatchLeafFn batch_leaf;             // optional parallel leaf-pair evaluator
  LeafResolvedSink on_leaf_resolved;  // optional observer for batch-resolved pairs
  bool collect_timing = false;        // fill the phase-seconds counters
};

/// UPGMA over n leaves with lazy, lower-bound-gated distance resolution.
/// Returns a dendrogram bit-identical to
/// agglomerative_average_linkage(dense_matrix, n) where dense_matrix[i*n+j]
/// = leaf_distance(i, j) — including merge order and tie resolution — while
/// invoking leaf_distance only for pairs the bounds cannot exclude. Memory
/// is O(resolved pairs), never O(n²). Throws util::ConfigError if n == 0.
[[nodiscard]] Dendrogram agglomerative_average_linkage_pruned(
    std::size_t n, const LeafDistanceFn& leaf_distance, const PruneFeatures& features,
    PruneCounters* counters = nullptr);

/// PruneOptions-aware overload (parallel batch resolution, phase timing).
[[nodiscard]] Dendrogram agglomerative_average_linkage_pruned(
    std::size_t n, const LeafDistanceFn& leaf_distance, const PruneFeatures& features,
    const PruneOptions& options, PruneCounters* counters = nullptr);

/// The sub-quadratic verdict path: UPGMA + cut_top_fraction fused, with
/// deferred heights for the links the cut discards.
///
/// agglomerative_average_linkage_pruned still pays quadratic kernel work on
/// the top of the tree: a root-level merge height is the average of *every*
/// cross leaf distance between its two sides, so producing the exact height
/// of every merge forces nearly every far pair through the kernel. But the
/// detector never reads those heights — cut_top_fraction deletes the
/// ceil(fraction * (n-1)) heaviest links, and average linkage is monotone
/// (d(A∪B, C) >= min(d(A,C), d(B,C)) >= d(A,B) when (A,B) is the minimal
/// pair), so the cut links are precisely the ones whose exact heights the
/// verdict ignores.
///
/// This driver therefore runs the same lazy nearest-neighbour chain but:
///  * eliminates scan candidates with an *upper* bound too (min over pivots
///    of mean_A(p) + mean_B(p) >= avg-linkage distance), so a scan whose
///    survivors reduce to one slot picks its nearest neighbour without
///    resolving any distance at all — the dense comparator would have picked
///    that slot whatever its value;
///  * records a merge whose exact height was never needed as a *pending*
///    link carrying admissible [lower, upper] height bounds;
///  * classifies kept-vs-cut links at the end: a pending link whose lower
///    bound exceeds every kept exact height is provably cut and its exact
///    height is never computed; a pending link that straddles the boundary
///    is resolved exactly (correctness never depends on bound quality).
///
/// Returns exactly Dendrogram::cut_top_fraction(fraction)'s components for
/// the dendrogram the exhaustive path would have built — same groups, same
/// ordering, same tie behaviour at the cut boundary. Throws util::ConfigError
/// if n == 0 or fraction is outside [0, 1].
[[nodiscard]] std::vector<std::vector<std::size_t>> average_linkage_cut_pruned(
    std::size_t n, const LeafDistanceFn& leaf_distance, const PruneFeatures& features,
    double fraction, PruneCounters* counters = nullptr);

/// PruneOptions-aware overload (parallel batch resolution, phase timing).
[[nodiscard]] std::vector<std::vector<std::size_t>> average_linkage_cut_pruned(
    std::size_t n, const LeafDistanceFn& leaf_distance, const PruneFeatures& features,
    double fraction, const PruneOptions& options, PruneCounters* counters = nullptr);

}  // namespace tradeplot::stats
