#include "botnet/nugache.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace tradeplot::botnet {

namespace {
// Nugache payloads are encrypted and carry no recognisable marker; random-
// looking bytes keep the payload classifier honest (it must not label them).
const std::string kCipherish("\x9f\x3a\xc2\x71\x08\x5d", 6);
}  // namespace

NugacheBot::NugacheBot(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
                       NugacheConfig config)
    : env_(std::move(env)), rng_(rng), emit_(&env_, self, &rng_), config_(config) {
  peers_.reserve(static_cast<std::size_t>(config_.peer_list_size));
  for (int i = 0; i < config_.peer_list_size; ++i) {
    peers_.push_back(Peer{env_.external_addr(), !rng_.chance(config_.dead_peer_frac), false});
  }
  activity_ = rng_.lognormal(config_.activity_mu, config_.activity_sigma);
  // Cap runaway draws so one bot cannot dominate a trace.
  activity_ = std::clamp(activity_, 0.02, 4.0);
}

void NugacheBot::start() {
  env_.sim->schedule_after(rng_.uniform(0.0, 120.0), [this] { discovery_loop(); });
  env_.sim->schedule_after(rng_.uniform(0.0, 300.0), [this] { conversation_loop(); });
}

// Peer discovery: pick a stored-list entry (mostly long dead — the source
// of Nugache's >65% failed-connection rate) and retry it a few times at the
// protocol's modal intervals before giving up. The retries put even the
// *failed*-connection interstitials on the 10/25/50 s comb. The event rate
// scales with the bot's activity level.
void NugacheBot::discovery_loop() {
  const double gap = rng_.exponential(config_.discovery_gap / activity_);
  if (emit_.now() + gap >= env_.window_end) return;
  env_.sim->schedule_after(gap, [this] {
    // Walk the stored list as a shuffled ring: each peer is visited once per
    // cycle, so repeat visits to the same (dead) peer are a full list-cycle
    // apart — longer than the trace window for all but hyperactive bots.
    if (ring_.empty()) {
      ring_.resize(peers_.size());
      for (std::size_t i = 0; i < ring_.size(); ++i) ring_[i] = i;
      rng_.shuffle(ring_);
      ring_pos_ = 0;
    }
    const std::size_t idx = ring_[ring_pos_];
    ring_pos_ = (ring_pos_ + 1) % ring_.size();
    if (ring_pos_ == 0) rng_.shuffle(ring_);
    // Sluggish bots give up quickly (a single probe, no retry burst): their
    // failed contacts carry little of the protocol's timing comb, which is
    // what makes low-activity bots hard for theta_hm — the effect behind
    // the paper's Fig. 10.
    auto retries = static_cast<int>(rng_.uniform_int(config_.retries_lo, config_.retries_hi));
    retries = std::max(
        1, static_cast<int>(std::lround(retries * std::min(1.0, activity_ * 2.5))));
    double at = 0.0;
    for (int r = 0; r < retries; ++r) {
      env_.sim->schedule_after(at, [this, idx] { probe_peer(idx); });
      at += rng_.pick(config_.interval_modes) +
            rng_.uniform(-config_.interval_jitter, config_.interval_jitter);
    }
    discovery_loop();
  });
}

// Conversations: pick a live peer and exchange keep-alives at the protocol's
// modal intervals (~10/25/50 s — the comb in the paper's Fig. 3(b)) for a
// while, then go quiet; low-activity bots spend most of their time quiet.
void NugacheBot::conversation_loop() {
  const double off = rng_.exponential(config_.conversation_off / activity_);
  if (emit_.now() + off >= env_.window_end) return;
  env_.sim->schedule_after(off, [this] {
    // Find a live partner from the stored list (bounded search).
    std::size_t partner = peers_.size();
    for (int tries = 0; tries < 12; ++tries) {
      const auto idx = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(peers_.size()) - 1));
      if (peers_[idx].alive) {
        partner = idx;
        break;
      }
      probe_peer(idx);  // failed dials while hunting for a partner
    }
    if (partner != peers_.size()) {
      const double until = emit_.now() + rng_.exponential(config_.conversation_on);
      converse(partner, until);
    }
    conversation_loop();
  });
}

void NugacheBot::converse(std::size_t partner, double until) {
  if (emit_.now() >= until || emit_.now() >= env_.window_end) return;
  probe_peer(partner);
  const double mode = rng_.pick(config_.interval_modes);
  const double gap = mode + rng_.uniform(-config_.interval_jitter, config_.interval_jitter);
  env_.sim->schedule_after(std::max(gap, 1.0),
                           [this, partner, until] { converse(partner, until); });
}

void NugacheBot::probe_peer(std::size_t index) {
  Peer& peer = peers_[index];
  simnet::Ipv4 target = peer.addr;
  bool alive = peer.alive;
  bool repeat = peer.contacted_before;
  if (repeat && rng_.chance(config_.evasion.extra_new_contact_frac)) {
    target = env_.external_addr();
    alive = !rng_.chance(config_.dead_peer_frac);
    repeat = false;
  }

  const auto fire = [this, target, alive] {
    if (emit_.now() >= env_.window_end) return;
    if (!alive) {
      emit_.tcp_failed(target, kPort, rng_.chance(0.2));
      return;
    }
    const auto bytes = static_cast<std::uint64_t>(
        rng_.uniform(config_.msg_lo, config_.msg_hi) * config_.evasion.volume_multiplier);
    emit_.tcp(target, kPort, bytes, bytes + static_cast<std::uint64_t>(rng_.uniform(50, 400)),
              rng_.uniform(0.5, 8.0), kCipherish);
  };
  if (repeat && config_.evasion.jitter_range > 0) {
    env_.sim->schedule_after(rng_.uniform(0.0, 2.0 * config_.evasion.jitter_range), fire);
  } else {
    fire();
  }
  peer.contacted_before = true;
}

}  // namespace tradeplot::botnet
