#include "stats/roc.h"

#include <algorithm>

namespace tradeplot::stats {

void RocCurve::add(double fp_rate, double tp_rate, std::string label) {
  points_.push_back(RocPoint{fp_rate, tp_rate, std::move(label)});
  sorted_ = false;
}

void RocCurve::sort() const {
  if (sorted_) return;
  std::stable_sort(points_.begin(), points_.end(), [](const RocPoint& a, const RocPoint& b) {
    if (a.fp_rate != b.fp_rate) return a.fp_rate < b.fp_rate;
    return a.tp_rate < b.tp_rate;
  });
  sorted_ = true;
}

const std::vector<RocPoint>& RocCurve::points() const {
  sort();
  return points_;
}

double RocCurve::auc() const {
  sort();
  double area = 0.0;
  double prev_fp = 0.0;
  double prev_tp = 0.0;
  for (const RocPoint& p : points_) {
    area += (p.fp_rate - prev_fp) * (p.tp_rate + prev_tp) / 2.0;
    prev_fp = p.fp_rate;
    prev_tp = p.tp_rate;
  }
  area += (1.0 - prev_fp) * (1.0 + prev_tp) / 2.0;
  return area;
}

}  // namespace tradeplot::stats
