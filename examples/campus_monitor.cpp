// Campus monitor: the operational scenario from the paper's introduction.
//
// A network administrator collects border flow records day after day and
// wants a morning report: which internal hosts look like P2P bots? This
// example simulates a working week, runs FindPlotters on each day, and
// prints the report an operator would read — flagged hosts, their feature
// profile, and (since this is a simulation) whether the alarm was right.
//
// Usage: campus_monitor [days] [seed]
//        campus_monitor --stream <trace.(csv|bin)> [window_s]
//
// The --stream mode is the production ingestion path: it pulls flows from
// the trace file through netflow::TraceReader into detect::StreamingDetector,
// so memory stays bounded by one detection window no matter how large the
// trace is, and prints the same per-window report.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "botnet/honeynet.h"
#include "detect/find_plotters.h"
#include "detect/streaming.h"
#include "eval/day.h"
#include "netflow/trace_reader.h"
#include "util/format.h"
#include "util/parallel.h"

using namespace tradeplot;

namespace {

std::string verdict(const eval::DayData& day, simnet::Ipv4 host) {
  if (day.is_storm(host)) return "TRUE POSITIVE (Storm)";
  if (day.is_nugache(host)) return "TRUE POSITIVE (Nugache)";
  if (day.is_trader(host)) return "false alarm (file-sharing host)";
  return "false alarm (" + std::string(netflow::to_string(day.combined.kind_of(host))) + ")";
}

int run_stream(const std::string& path, double window) {
  netflow::TraceReader reader(path);
  std::printf("streaming %s (%s) in %.0f s windows, bounded-memory ingestion\n\n", path.c_str(),
              std::string(netflow::to_string(reader.format())).c_str(), window);

  detect::StreamingConfig cfg;
  cfg.window = window;
  cfg.is_internal = detect::default_internal_predicate;

  int flagged_total = 0, tp_total = 0;
  detect::StreamingDetector detector(cfg, [&](const detect::WindowVerdict& v) {
    std::printf("=== window %zu [%.0f, %.0f): %zu flows, %zu internal hosts ===\n",
                v.window_index, v.window_start, v.window_end, v.flows_seen, v.features.size());
    if (v.result.plotters.empty()) {
      std::printf("  nothing flagged\n\n");
      return;
    }
    std::printf("  %-16s %10s %12s %10s %8s  %s\n", "host", "flows", "avg B/flow", "failed%",
                "new-IP%", "assessment");
    for (const simnet::Ipv4 host : v.result.plotters) {
      const detect::HostFeatures& f = v.features.at(host);
      // Ground truth travels in the trace preamble; unknown hosts stay
      // "unlabeled" when the trace carries none.
      const auto it = reader.truth().find(host);
      const netflow::HostKind kind =
          it == reader.truth().end() ? netflow::HostKind::kUnknown : it->second;
      const bool is_bot = netflow::host_class(kind) == netflow::HostClass::kPlotter;
      std::printf("  %-16s %10zu %12.0f %9.1f%% %7.1f%%  %s (%s)\n", host.to_string().c_str(),
                  f.flows_initiated, f.volume(detect::VolumeMetric::kSentPerFlow),
                  f.failed_rate() * 100.0, f.new_ip_fraction() * 100.0,
                  is_bot ? "TRUE POSITIVE" : "false alarm",
                  std::string(netflow::to_string(kind)).c_str());
      ++flagged_total;
      if (is_bot) ++tp_total;
    }
    std::printf("\n");
  });

  const std::size_t fed = detect::feed(reader, detector);
  std::printf("=== summary: %zu flows across %zu windows, %d flagged (%d true positives) ===\n",
              fed, detector.windows_emitted(), flagged_total, tp_total);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 && std::string(argv[1]) == "--stream") {
    const double window = argc > 3 ? std::atof(argv[3]) : 6 * 3600.0;
    try {
      return run_stream(argv[2], window);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  const int days = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20100621;

  // The infection: Storm bots have a foothold on campus. The honeynet trace
  // stands in for their command-and-control traffic.
  botnet::HoneynetConfig honeynet;
  honeynet.seed = seed;
  const netflow::TraceSet storm = botnet::generate_storm_trace(honeynet);
  const netflow::TraceSet no_nugache;

  trace::CampusConfig campus;
  campus.seed = seed;

  // θ_hm's pairwise kernels honor TRADEPLOT_THREADS; the verdicts are
  // bit-identical no matter how many workers run them.
  std::printf("pairwise kernels on %zu thread(s)\n\n", util::resolve_threads());

  int tp_total = 0, fp_total = 0, bots_total = 0;
  for (int d = 0; d < days; ++d) {
    const eval::DayData day =
        eval::make_day(campus, storm, no_nugache, static_cast<std::uint64_t>(d));
    const detect::FindPlottersResult result = detect::find_plotters(day.features);

    std::printf("=== day %d: %zu flows from %zu internal hosts ===\n", d + 1,
                day.combined.flows().size(), day.features.size());
    std::printf("  pipeline: %zu hosts -> %zu after reduction -> %zu in S_vol u S_churn "
                "-> %zu flagged\n",
                result.input.size(), result.reduced.size(), result.vol_or_churn.size(),
                result.plotters.size());
    if (result.plotters.empty()) {
      std::printf("  nothing flagged today\n\n");
      continue;
    }
    std::printf("  %-16s %10s %12s %10s %8s  %s\n", "host", "flows", "avg B/flow", "failed%",
                "new-IP%", "assessment");
    for (const simnet::Ipv4 host : result.plotters) {
      const detect::HostFeatures& f = day.features.at(host);
      std::printf("  %-16s %10zu %12.0f %9.1f%% %7.1f%%  %s\n", host.to_string().c_str(),
                  f.flows_initiated, f.volume(detect::VolumeMetric::kSentPerFlow),
                  f.failed_rate() * 100.0, f.new_ip_fraction() * 100.0,
                  verdict(day, host).c_str());
      if (day.is_plotter(host)) ++tp_total;
      else ++fp_total;
    }
    bots_total += static_cast<int>(day.storm_hosts.size());
    std::printf("\n");
  }

  std::printf("=== week summary ===\n");
  std::printf("  caught %d of %d bot-days (%.1f%%), %d false alarms across %d days\n", tp_total,
              bots_total, bots_total ? 100.0 * tp_total / bots_total : 0.0, fp_total, days);
  return 0;
}
