// Consistent-hash ring assigning source hosts to worker shards.
//
// The sharded detector partitions the per-host state of one detection
// window across N workers. The partition must be (a) deterministic — every
// run, every process, every shard count maps a host the same way, because
// checkpoints encode per-shard state; (b) balanced — per-shard host counts
// within a few percent of n/N so the slowest shard does not dominate the
// window close; and (c) stable under resharding — growing N by one should
// move ~1/N of the hosts, not reshuffle everything, so an operator can
// re-bucket a saved trace (trace_tool shard) and compare runs.
//
// Standard construction: each shard contributes `vnodes` points on a
// 64-bit ring, at splitmix64(shard, replica); a host lands on the first
// point clockwise from splitmix64(address). splitmix64 is a fixed public
// mixing function, so the mapping is a pure function of (shards, vnodes,
// address) — nothing about it depends on process, platform, or time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "simnet/address.h"

namespace tradeplot::shard {

/// The 64-bit finalizer from the splitmix64 PRNG: bijective, cheap, and
/// avalanching — a fixed constant of the checkpoint format, never to change.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class HashRing {
 public:
  static constexpr std::size_t kDefaultVnodes = 64;

  /// Throws util::ConfigError if shards == 0 or vnodes == 0.
  explicit HashRing(std::size_t shards, std::size_t vnodes = kDefaultVnodes);

  /// The shard owning `host` (uniform across the ring; one-shard rings
  /// short-circuit to 0).
  [[nodiscard]] std::size_t shard_of(simnet::Ipv4 host) const;

  [[nodiscard]] std::size_t shards() const { return shards_; }
  [[nodiscard]] std::size_t vnodes() const { return vnodes_; }

 private:
  std::size_t shards_;
  std::size_t vnodes_;
  /// Ring points sorted by (hash, shard) — the shard tiebreak makes the
  /// astronomically-unlikely hash collision deterministic too.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace tradeplot::shard
