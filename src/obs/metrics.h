// Thread-safe, low-overhead metrics registry.
//
// Three metric kinds, all safe to update from any thread without locking:
//
//  * Counter   — monotonic u64. Updates land in per-thread cache-line-padded
//                shards (one relaxed fetch_add, no cross-core contention on
//                hot paths); shards are summed at snapshot time.
//  * Gauge     — a single double that can move both ways (set/add). Gauges
//                sit on cold paths (queue depth, occupancy), so one atomic
//                cell is enough.
//  * Histogram — fixed bucket bounds chosen at registration; per-shard
//                atomic bucket counts plus sum/count, aggregated at snapshot
//                time. Bucket semantics match Prometheus: bucket i counts
//                observations with value <= bounds[i].
//
// The whole subsystem is gated by one process-global flag: obs::enabled()
// is a single relaxed atomic load, false by default. Instrumented code runs
// `if (obs::enabled()) { ... }` around every metrics touch, so with no
// operator attached the cost is one predictable branch — nothing is
// registered, timed, or allocated (the committed benches hold the
// no-op path to <2% of baseline). Enabling (campus_monitor --metrics,
// trace_tool stats, tests) attaches the global registry lazily.
//
// Handles returned by Registry are stable for the registry's lifetime and
// re-requesting the same (name, labels) returns the same instance, so
// instrumentation sites cache them in function-local statics.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/snapshot.h"

namespace tradeplot::obs {

namespace detail {

inline std::atomic<bool> g_enabled{false};

/// Shard count for counters and histograms; power of two.
constexpr std::size_t kShards = 16;

/// Stable per-thread shard index: threads are assigned slots round-robin on
/// first use, so a thread pool's workers spread across shards instead of
/// hashing onto the same one.
[[nodiscard]] std::size_t thread_shard() noexcept;

}  // namespace detail

/// Whether instrumentation is live. One relaxed load; false by default.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the process-global instrumentation flag (operator tools and tests;
/// library code never calls this).
void set_enabled(bool on) noexcept;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum across shards. Monotonic between reset() calls.
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  friend class Registry;
  Counter() = default;
  void reset() noexcept;

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, detail::kShards> cells_{};
};

class Gauge {
 public:
  void set(double v) noexcept { bits_.store(to_bits(v), std::memory_order_relaxed); }
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return from_bits(bits_.load(std::memory_order_relaxed));
  }

 private:
  friend class Registry;
  Gauge() = default;
  void reset() noexcept { set(0.0); }

  static std::uint64_t to_bits(double v) noexcept;
  static double from_bits(std::uint64_t b) noexcept;

  std::atomic<std::uint64_t> bits_{0};  // IEEE-754 bits of the value
};

class Histogram {
 public:
  void observe(double v) noexcept;

  /// Aggregated copy of the current state (see snapshot.h for semantics).
  [[nodiscard]] HistogramValue collect() const;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);
  void reset() noexcept;

  std::vector<double> bounds_;
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;  // bounds_.size() + 1 (+Inf)
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};  // IEEE-754 bits, CAS-accumulated
  };
  std::array<Shard, detail::kShards> shards_;
};

/// Log-spaced upper bounds: start, start*factor, ... (n bounds).
[[nodiscard]] std::vector<double> exponential_buckets(double start, double factor,
                                                      std::size_t n);
/// 1 µs .. ~130 s in x4 steps — the default for stage / kernel latencies.
[[nodiscard]] std::vector<double> duration_buckets();
/// 256 B .. 4 GiB in x16 steps — checkpoint and payload sizes.
[[nodiscard]] std::vector<double> size_buckets();
/// 1 .. 16M in x8 steps — per-window object counts (flows, hosts).
[[nodiscard]] std::vector<double> count_buckets();

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the metric registered under (name, labels), creating it on
  /// first use. Throws util::ConfigError on an invalid Prometheus name or
  /// label, on a (name, labels) collision with a different metric type, or
  /// when one family (same name) mixes types or histogram bucket layouts.
  Counter& counter(std::string_view name, std::string_view help, Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help, Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, Labels labels = {});

  /// Immutable aggregated copy of every registered metric, sorted by
  /// (name, labels). Shares no state with the registry.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every value; registrations (and handles) stay valid. For tests
  /// and operator-driven restarts.
  void reset();

  [[nodiscard]] std::size_t size() const;

  /// The process-wide registry all built-in instrumentation reports to.
  [[nodiscard]] static Registry& global();

 private:
  struct Entry {
    MetricType type;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(MetricType type, std::string_view name, std::string_view help,
                        Labels&& labels, std::vector<double>* bounds);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;          // stable addresses
  std::unordered_map<std::string, std::size_t> index_;   // name + labels -> entry
};

}  // namespace tradeplot::obs
