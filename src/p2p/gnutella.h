// Gnutella file-sharing host behaviour model.
//
// Mechanics modelled (at flow granularity):
//   * long-lived TCP connections to a few ultrapeers ("GNUTELLA CONNECT/0.6"
//     handshake), some bootstrap attempts hitting departed peers,
//   * human-driven search sessions: heavy-tailed think times between
//     searches, each search followed by download attempts to freshly
//     learned source addresses (high peer churn, frequent stale sources),
//   * HTTP-style chunk downloads with bounded-Pareto media-file sizes,
//   * inbound uploads served to external leechers ("GNUTELLA CONNECT BACK"
//     push + HTTP GET flows carrying the LIME servent marker).
#pragma once

#include <vector>

#include "netflow/app_env.h"
#include "p2p/churn.h"
#include "netflow/flow_emit.h"
#include "util/rng.h"

namespace tradeplot::p2p {

struct GnutellaConfig {
  // Session structure (the human sitting at the machine).
  double session_start_frac_max = 0.4;  // session starts in the first X of the window
  double session_mu = 8.9;              // lognormal user session, median ~ 2 h
  double session_sigma = 0.7;
  // Searching.
  double think_mu = 4.6;  // lognormal think time between searches, median ~100 s
  double think_sigma = 1.0;
  int min_sources_per_search = 1;
  int max_sources_per_search = 6;
  // Ultrapeer mesh.
  int ultrapeer_count = 4;
  double ultrapeer_connect_fail_prob = 0.4;
  // Transfers.
  double file_lo_bytes = 2e5;   // 200 KB
  double file_hi_bytes = 2e8;   // 200 MB
  double file_alpha = 1.1;      // bounded-Pareto shape: mostly MP3s, some movies
  double rate_lo = 5e4;         // 50 KB/s
  double rate_hi = 1e6;         // 1 MB/s
  // Serving uploads.
  double inbound_per_hour = 5.0;
  ChurnParams churn{};
};

class GnutellaHost {
 public:
  GnutellaHost(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
               GnutellaConfig config = {});

  /// Schedules this host's activity into the simulation. Call once.
  void start();

  static constexpr std::uint16_t kPort = 6346;

 private:
  void begin_session();
  void search_loop(double session_end);
  void do_search(double session_end);
  void serve_inbound_loop(double session_end);

  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  GnutellaConfig config_;
  ChurnModel churn_;
  std::vector<simnet::Ipv4> past_sources_;  // for occasional revisits
};

}  // namespace tradeplot::p2p
