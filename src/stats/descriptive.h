// Descriptive statistics over double samples.
//
// Quantiles use the common linear-interpolation definition (type 7 in the
// Hyndman–Fan taxonomy, the R/NumPy default). All functions taking a span of
// samples accept them unsorted unless stated otherwise.
#pragma once

#include <span>
#include <vector>

namespace tradeplot::stats {

[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance (divides by n). Returns 0 for n <= 1.
[[nodiscard]] double variance(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);

/// q in [0,1]; throws util::ConfigError otherwise or if xs is empty.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// quantile() over samples the caller has already sorted ascending.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

[[nodiscard]] double median(std::span<const double> xs);

/// Inter-quartile range: Q3 - Q1.
[[nodiscard]] double iqr(std::span<const double> xs);

/// Empirical CDF evaluated at x: fraction of samples <= x.
[[nodiscard]] double ecdf_at(std::span<const double> sorted, double x);

/// The classic ECDF as a step-function sample: returns the sorted values
/// paired with cumulative fractions (k/n). Useful for rendering the paper's
/// CDF figures.
struct EcdfPoint {
  double value;
  double fraction;
};
[[nodiscard]] std::vector<EcdfPoint> ecdf(std::span<const double> xs);

}  // namespace tradeplot::stats
