// Tests for the TPMF frame codec (src/svc/frame.h): encode/decode
// round-trips, incremental delivery, and the ErrorPolicy-style resync
// accounting for garbage between frames.
#include "svc/frame.h"

#include <gtest/gtest.h>

#include <string>

#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "netflow/trace_set.h"

namespace tradeplot::svc {
namespace {

Frame decode_one(const std::vector<char>& wire) {
  FrameParser parser;
  parser.append(wire.data(), wire.size());
  Frame out;
  EXPECT_TRUE(parser.next(out));
  return out;
}

TEST(Frame, RoundTripsTypeAndPayload) {
  const Frame f = decode_one(encode_frame(FrameType::kHello, "campus-a"));
  EXPECT_EQ(f.type, FrameType::kHello);
  EXPECT_EQ(f.payload_view(), "campus-a");
}

TEST(Frame, EmptyPayloadRoundTrips) {
  const Frame f = decode_one(encode_frame(FrameType::kFlush, ""));
  EXPECT_EQ(f.type, FrameType::kFlush);
  EXPECT_TRUE(f.payload.empty());
}

TEST(Frame, U64HelpersRoundTrip) {
  std::vector<char> buf;
  append_u64(buf, 0xDEADBEEFCAFE1234ull);
  append_u64(buf, 7);
  ASSERT_EQ(buf.size(), 16u);
  EXPECT_EQ(read_u64(buf.data()), 0xDEADBEEFCAFE1234ull);
  EXPECT_EQ(read_u64(buf.data() + 8), 7u);
}

TEST(FrameParser, DeliversFramesFedOneByteAtATime) {
  std::vector<char> wire = encode_frame(FrameType::kHello, "t");
  const std::vector<char> second = encode_frame(FrameType::kFlows, std::string(1000, 'x'));
  wire.insert(wire.end(), second.begin(), second.end());

  FrameParser parser;
  Frame out;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    parser.append(&wire[i], 1);
    while (parser.next(out)) {
      ++delivered;
      if (delivered == 1) EXPECT_EQ(out.type, FrameType::kHello);
      if (delivered == 2) {
        EXPECT_EQ(out.type, FrameType::kFlows);
        EXPECT_EQ(out.payload.size(), 1000u);
      }
    }
  }
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(parser.stats().frames_ok, 2u);
  EXPECT_EQ(parser.stats().frames_bad, 0u);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParser, ResyncsPastLeadingGarbageWithAccounting) {
  std::vector<char> wire(100, '\x5a');  // garbage burst (no magic bytes)
  const std::vector<char> good = encode_frame(FrameType::kBye, "");
  wire.insert(wire.end(), good.begin(), good.end());

  FrameParser parser;
  parser.append(wire.data(), wire.size());
  Frame out;
  ASSERT_TRUE(parser.next(out));
  EXPECT_EQ(out.type, FrameType::kBye);
  EXPECT_EQ(parser.stats().bytes_skipped, 100u);
  EXPECT_EQ(parser.stats().resync_events, 1u);  // one contiguous burst
  EXPECT_EQ(parser.stats().frames_ok, 1u);
}

TEST(FrameParser, CrcMismatchSkipsFrameAndRecovers) {
  std::vector<char> bad = encode_frame(FrameType::kFlows, "payload-bytes");
  bad[kFrameHeaderSize + 3] ^= 0x40;  // corrupt the payload after the CRC was stamped
  const std::vector<char> good = encode_frame(FrameType::kHello, "t");
  bad.insert(bad.end(), good.begin(), good.end());

  FrameParser parser;
  parser.append(bad.data(), bad.size());
  Frame out;
  ASSERT_TRUE(parser.next(out));
  EXPECT_EQ(out.type, FrameType::kHello);  // the corrupt frame was dropped
  EXPECT_GE(parser.stats().frames_bad, 1u);
  EXPECT_GE(parser.stats().bytes_skipped, 1u);
  EXPECT_FALSE(parser.next(out));
}

TEST(FrameParser, ImplausibleHeaderIsNotTrusted) {
  // A magic followed by an oversized length must not make the parser wait
  // for 4 GiB that will never arrive; it treats the match as coincidence.
  std::vector<char> wire = {'T', 'P', 'M', 'F', 3, '\xff', '\xff', '\xff', '\xff',
                            0,   0,   0,   0};
  const std::vector<char> good = encode_frame(FrameType::kBye, "");
  wire.insert(wire.end(), good.begin(), good.end());

  FrameParser parser;
  parser.append(wire.data(), wire.size());
  Frame out;
  ASSERT_TRUE(parser.next(out));
  EXPECT_EQ(out.type, FrameType::kBye);
  EXPECT_GE(parser.stats().frames_bad, 1u);
}

TEST(FrameParser, TruncatedFrameWaitsForMoreBytes) {
  const std::vector<char> wire = encode_frame(FrameType::kFlows, std::string(64, 'p'));
  FrameParser parser;
  parser.append(wire.data(), wire.size() - 10);
  Frame out;
  EXPECT_FALSE(parser.next(out));
  EXPECT_EQ(parser.stats().frames_bad, 0u);  // incomplete != corrupt
  parser.append(wire.data() + wire.size() - 10, 10);
  EXPECT_TRUE(parser.next(out));
  EXPECT_EQ(out.payload.size(), 64u);
}

TEST(MemoryStream, FeedsTraceReaderZeroCopy) {
  // A kFlows payload is a self-contained trace image: MemoryStream over the
  // payload bytes must decode through the standard TraceReader.
  netflow::TraceSet trace;
  trace.set_window(0.0, 60.0);
  for (int i = 0; i < 10; ++i) {
    netflow::FlowRecord r;
    r.src = simnet::Ipv4(0x80020001u);
    r.dst = simnet::Ipv4(0x0a000002u + static_cast<std::uint32_t>(i));
    r.start_time = static_cast<double>(i);
    r.end_time = r.start_time + 0.25;
    r.bytes_src = 500;
    trace.add_flow(r);
  }
  std::ostringstream encoded;
  netflow::write_binary_columnar(encoded, trace);
  const std::string payload = encoded.str();

  MemoryStream stream(payload.data(), payload.size());
  netflow::TraceReader reader(stream);
  const netflow::TraceSet back = reader.read_all();
  ASSERT_EQ(back.flows().size(), 10u);
  EXPECT_EQ(back.flows()[3].dst, simnet::Ipv4(0x0a000005u));
  EXPECT_EQ(back.flows()[9].start_time, 9.0);
}

}  // namespace
}  // namespace tradeplot::svc
