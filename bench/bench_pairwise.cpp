// Serial vs. parallel pairwise-distance kernels (the θ_hm hot path).
//
// For host counts 64/256/1024 and small/large histogram signatures, times
// stats::pairwise_emd and detect::pairwise_bin_l1 at 1 thread (the serial
// reference path) and at 2/4/8/auto threads, and verifies the parallel
// matrices are bit-identical to the serial ones — the determinism contract
// of util::parallel_for. Speedups are hardware-dependent: expect ~linear
// scaling up to the physical core count and ~1x beyond it.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "detect/human_machine.h"
#include "stats/emd.h"
#include "stats/histogram.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace tradeplot;

namespace {

std::vector<stats::Signature> make_signatures(std::size_t hosts, std::size_t samples,
                                              std::uint64_t seed) {
  util::Pcg32 rng(seed);
  std::vector<stats::Signature> sigs;
  sigs.reserve(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    std::vector<double> v(samples);
    for (double& x : v) x = rng.lognormal(4.0, 1.2);
    sigs.push_back(stats::Histogram::with_fd_width(v).signature());
  }
  return sigs;
}

double time_ms(const std::function<std::vector<double>()>& fn, std::vector<double>& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("bench_pairwise - serial vs parallel pairwise distance kernels\n");
  std::printf("==============================================================\n");
  std::printf("  hardware threads: %zu, TRADEPLOT_THREADS-resolved: %zu\n\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()),
              util::resolve_threads(0));

  const std::size_t thread_counts[] = {2, 4, 8, util::resolve_threads(0)};
  bool all_identical = true;

  for (const std::size_t samples : {200UL, 2000UL}) {
    for (const std::size_t hosts : {64UL, 256UL, 1024UL}) {
      const auto sigs = make_signatures(hosts, samples, 20100621 + hosts);
      std::size_t points = 0;
      for (const auto& s : sigs) points += s.size();
      std::printf("  %4zu hosts, ~%3zu signature points (EMD):\n", hosts,
                  points / hosts);

      std::vector<double> serial;
      const double serial_ms = time_ms([&] { return stats::pairwise_emd(sigs, 1); }, serial);
      std::printf("    %-10s %9.1f ms\n", "serial", serial_ms);
      for (const std::size_t t : thread_counts) {
        std::vector<double> parallel;
        const double ms =
            time_ms([&] { return stats::pairwise_emd(sigs, t); }, parallel);
        const bool same = bit_identical(serial, parallel);
        all_identical = all_identical && same;
        std::printf("    %zu threads  %9.1f ms   speedup %5.2fx   bit-identical: %s\n", t, ms,
                    serial_ms / ms, same ? "yes" : "NO");
      }

      detect::HumanMachineConfig l1;
      l1.threads = 1;
      std::vector<double> l1_serial;
      const double l1_serial_ms =
          time_ms([&] { return detect::pairwise_bin_l1(sigs, l1); }, l1_serial);
      std::printf("    bin-L1 serial %6.1f ms", l1_serial_ms);
      l1.threads = util::resolve_threads(0);
      std::vector<double> l1_parallel;
      const double l1_ms = time_ms([&] { return detect::pairwise_bin_l1(sigs, l1); }, l1_parallel);
      const bool l1_same = bit_identical(l1_serial, l1_parallel);
      all_identical = all_identical && l1_same;
      std::printf(", auto %6.1f ms, speedup %5.2fx, bit-identical: %s\n\n", l1_ms,
                  l1_serial_ms / l1_ms, l1_same ? "yes" : "NO");
    }
  }

  std::printf("  determinism: %s\n", all_identical ? "PASS (all matrices bit-identical)"
                                                   : "FAIL (parallel != serial)");
  return all_identical ? 0 : 1;
}
