#include "detect/hm_cache.h"

#include <cstring>

#include "detect/payload_codec.h"

namespace tradeplot::detect {

std::uint64_t HmCache::pair_key(simnet::Ipv4 a, simnet::Ipv4 b) {
  const std::uint32_t lo = a.value() < b.value() ? a.value() : b.value();
  const std::uint32_t hi = a.value() < b.value() ? b.value() : a.value();
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void HmCache::rebuild_distance_filter() {
  distance_filter_.reset(distances.size());
  for (const auto& [key, entry] : distances) distance_filter_.insert(key);
}

void HmCache::clear() {
  signatures.clear();
  distances.clear();
  distance_filter_.clear();
  signatures_built = 0;
  signatures_reused = 0;
  distances_computed = 0;
  distances_reused = 0;
}

void HmCache::encode(PayloadWriter& w) const {
  w.put(static_cast<std::uint64_t>(signatures.size()));
  for (const auto& [host, entry] : signatures) {
    w.put(host.value());
    w.put(entry.hash);
    w.put(static_cast<std::uint64_t>(entry.signature.size()));
    for (const stats::SignaturePoint& p : entry.signature) {
      w.put(p.position);
      w.put(p.weight);
    }
  }
  w.put(static_cast<std::uint64_t>(distances.size()));
  for (const auto& [key, entry] : distances) {
    w.put(key);
    w.put(entry.hash_lo);
    w.put(entry.hash_hi);
    w.put(entry.distance);
  }
  w.put(signatures_built);
  w.put(signatures_reused);
  w.put(distances_computed);
  w.put(distances_reused);
}

void HmCache::decode(PayloadReader& r) {
  HmCache fresh;
  const auto sig_count = r.take<std::uint64_t>();
  fresh.signatures.reserve(static_cast<std::size_t>(sig_count));
  for (std::uint64_t i = 0; i < sig_count; ++i) {
    const simnet::Ipv4 host(r.take<std::uint32_t>());
    SignatureEntry entry;
    entry.hash = r.take<std::uint64_t>();
    const auto points = r.take<std::uint64_t>();
    entry.signature.reserve(static_cast<std::size_t>(points));
    for (std::uint64_t p = 0; p < points; ++p) {
      const double position = r.take<double>();
      const double weight = r.take<double>();
      entry.signature.push_back({position, weight});
    }
    fresh.signatures.emplace(host, std::move(entry));
  }
  const auto pair_count = r.take<std::uint64_t>();
  fresh.distances.reserve(static_cast<std::size_t>(pair_count));
  for (std::uint64_t i = 0; i < pair_count; ++i) {
    const auto key = r.take<std::uint64_t>();
    DistanceEntry entry;
    entry.hash_lo = r.take<std::uint64_t>();
    entry.hash_hi = r.take<std::uint64_t>();
    entry.distance = r.take<double>();
    fresh.distances.emplace(key, entry);
  }
  fresh.signatures_built = r.take<std::uint64_t>();
  fresh.signatures_reused = r.take<std::uint64_t>();
  fresh.distances_computed = r.take<std::uint64_t>();
  fresh.distances_reused = r.take<std::uint64_t>();
  fresh.rebuild_distance_filter();
  *this = std::move(fresh);
}

std::uint64_t hm_content_hash(std::span<const double> samples, double fixed_bin_width,
                              int distance_mode) {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  const auto mix_bytes = [&h](const void* data, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= kPrime;
    }
  };
  mix_bytes(&fixed_bin_width, sizeof(fixed_bin_width));
  mix_bytes(&distance_mode, sizeof(distance_mode));
  const std::uint64_t count = samples.size();
  mix_bytes(&count, sizeof(count));
  if (!samples.empty()) mix_bytes(samples.data(), samples.size() * sizeof(double));
  return h;
}

}  // namespace tradeplot::detect
