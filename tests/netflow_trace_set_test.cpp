#include "netflow/trace_set.h"

#include <gtest/gtest.h>

namespace tradeplot::netflow {
namespace {

FlowRecord flow(simnet::Ipv4 src, simnet::Ipv4 dst, double start) {
  FlowRecord r;
  r.src = src;
  r.dst = dst;
  r.start_time = start;
  r.end_time = start + 1;
  r.pkts_src = 1;
  r.pkts_dst = 1;
  return r;
}

TEST(HostTaxonomy, ClassOfKinds) {
  EXPECT_EQ(host_class(HostKind::kWebClient), HostClass::kBackground);
  EXPECT_EQ(host_class(HostKind::kScanner), HostClass::kBackground);
  EXPECT_EQ(host_class(HostKind::kGnutella), HostClass::kTrader);
  EXPECT_EQ(host_class(HostKind::kEMule), HostClass::kTrader);
  EXPECT_EQ(host_class(HostKind::kBitTorrent), HostClass::kTrader);
  EXPECT_EQ(host_class(HostKind::kStorm), HostClass::kPlotter);
  EXPECT_EQ(host_class(HostKind::kNugache), HostClass::kPlotter);
  EXPECT_EQ(host_class(HostKind::kUnknown), HostClass::kBackground);
}

TEST(HostTaxonomy, Names) {
  EXPECT_EQ(to_string(HostKind::kStorm), "storm");
  EXPECT_EQ(to_string(HostClass::kPlotter), "plotter");
  EXPECT_EQ(to_string(HostClass::kTrader), "trader");
}

TEST(TraceSet, TruthQueries) {
  TraceSet trace;
  const simnet::Ipv4 bot(128, 2, 0, 1);
  trace.set_truth(bot, HostKind::kStorm);
  EXPECT_EQ(trace.kind_of(bot), HostKind::kStorm);
  EXPECT_EQ(trace.class_of(bot), HostClass::kPlotter);
  EXPECT_EQ(trace.kind_of(simnet::Ipv4(9, 9, 9, 9)), HostKind::kUnknown);
  EXPECT_EQ(trace.hosts_of_kind(HostKind::kStorm).size(), 1u);
  EXPECT_EQ(trace.hosts_of_class(HostClass::kPlotter).size(), 1u);
  EXPECT_TRUE(trace.hosts_of_class(HostClass::kTrader).empty());
}

TEST(TraceSet, InitiatorsAreUniqueAndSorted) {
  TraceSet trace;
  const simnet::Ipv4 a(128, 2, 0, 2);
  const simnet::Ipv4 b(128, 2, 0, 1);
  trace.add_flow(flow(a, simnet::Ipv4(1, 1, 1, 1), 0));
  trace.add_flow(flow(a, simnet::Ipv4(1, 1, 1, 2), 1));
  trace.add_flow(flow(b, simnet::Ipv4(1, 1, 1, 3), 2));
  const auto inits = trace.initiators();
  ASSERT_EQ(inits.size(), 2u);
  EXPECT_EQ(inits[0], b);
  EXPECT_EQ(inits[1], a);
}

TEST(TraceSet, SortByTimeIsStable) {
  TraceSet trace;
  trace.add_flow(flow(simnet::Ipv4(1, 0, 0, 3), simnet::Ipv4(2, 0, 0, 0), 5.0));
  trace.add_flow(flow(simnet::Ipv4(1, 0, 0, 1), simnet::Ipv4(2, 0, 0, 0), 5.0));
  trace.add_flow(flow(simnet::Ipv4(1, 0, 0, 2), simnet::Ipv4(2, 0, 0, 0), 1.0));
  trace.sort_by_time();
  EXPECT_EQ(trace.flows()[0].src, simnet::Ipv4(1, 0, 0, 2));
  // Equal timestamps keep insertion order.
  EXPECT_EQ(trace.flows()[1].src, simnet::Ipv4(1, 0, 0, 3));
  EXPECT_EQ(trace.flows()[2].src, simnet::Ipv4(1, 0, 0, 1));
}

TEST(TraceSet, MergeCombinesFlowsTruthAndWindow) {
  TraceSet a(0.0, 100.0);
  a.add_flow(flow(simnet::Ipv4(1, 0, 0, 1), simnet::Ipv4(2, 0, 0, 0), 0));
  a.set_truth(simnet::Ipv4(1, 0, 0, 1), HostKind::kWebClient);

  TraceSet b(50.0, 300.0);
  b.add_flow(flow(simnet::Ipv4(1, 0, 0, 2), simnet::Ipv4(2, 0, 0, 0), 60));
  b.set_truth(simnet::Ipv4(1, 0, 0, 1), HostKind::kStorm);  // conflicting: b wins

  a.merge(b);
  EXPECT_EQ(a.flows().size(), 2u);
  EXPECT_EQ(a.kind_of(simnet::Ipv4(1, 0, 0, 1)), HostKind::kStorm);
  EXPECT_DOUBLE_EQ(a.window_start(), 0.0);
  EXPECT_DOUBLE_EQ(a.window_end(), 300.0);
}

}  // namespace
}  // namespace tradeplot::netflow
