#include "netflow/flow_batch.h"

#include <cstring>
#include <type_traits>

#include "stats/simd.h"

namespace tradeplot::netflow {

// The binary v3 block codec and the bulk decode paths treat the columns as
// raw little-endian arrays; pin the layout assumptions they rely on.
static_assert(sizeof(simnet::Ipv4) == sizeof(std::uint32_t),
              "Ipv4 columns are serialized as u32 arrays");
static_assert(std::is_trivially_copyable_v<simnet::Ipv4>);
static_assert(std::is_same_v<std::underlying_type_t<Protocol>, std::uint8_t>);
static_assert(std::is_same_v<std::underlying_type_t<FlowState>, std::uint8_t>);
static_assert(static_cast<std::uint8_t>(FlowState::kEstablished) == 0,
              "failed_count() counts nonzero state bytes");

FlowBatch::FlowBatch(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  src_.reserve(capacity_);
  dst_.reserve(capacity_);
  sport_.reserve(capacity_);
  dport_.reserve(capacity_);
  proto_.reserve(capacity_);
  start_.reserve(capacity_);
  end_.reserve(capacity_);
  pkts_src_.reserve(capacity_);
  pkts_dst_.reserve(capacity_);
  bytes_src_.reserve(capacity_);
  bytes_dst_.reserve(capacity_);
  state_.reserve(capacity_);
  payload_len_.reserve(capacity_);
  payload_.reserve(capacity_ * kPayloadPrefixLen);
}

void FlowBatch::clear() {
  src_.clear();
  dst_.clear();
  sport_.clear();
  dport_.clear();
  proto_.clear();
  start_.clear();
  end_.clear();
  pkts_src_.clear();
  pkts_dst_.clear();
  bytes_src_.clear();
  bytes_dst_.clear();
  state_.clear();
  payload_len_.clear();
  payload_.clear();
}

void FlowBatch::push_back(const FlowRecord& r) {
  src_.push_back(r.src);
  dst_.push_back(r.dst);
  sport_.push_back(r.sport);
  dport_.push_back(r.dport);
  proto_.push_back(r.proto);
  start_.push_back(r.start_time);
  end_.push_back(r.end_time);
  pkts_src_.push_back(r.pkts_src);
  pkts_dst_.push_back(r.pkts_dst);
  bytes_src_.push_back(r.bytes_src);
  bytes_dst_.push_back(r.bytes_dst);
  state_.push_back(r.state);
  payload_len_.push_back(r.payload_len);
  // FlowRecord keeps its payload array zero-padded past payload_len, so the
  // whole-slot copy preserves the zero-padding invariant.
  payload_.insert(payload_.end(), r.payload.begin(), r.payload.end());
}

std::size_t FlowBatch::append_default() {
  const std::size_t i = size();
  append_default(1);
  return i;
}

void FlowBatch::append_default(std::size_t n) {
  const std::size_t sz = size() + n;
  src_.resize(sz);
  dst_.resize(sz);
  sport_.resize(sz);
  dport_.resize(sz);
  proto_.resize(sz, Protocol::kTcp);
  start_.resize(sz);
  end_.resize(sz);
  pkts_src_.resize(sz);
  pkts_dst_.resize(sz);
  bytes_src_.resize(sz);
  bytes_dst_.resize(sz);
  state_.resize(sz, FlowState::kEstablished);
  payload_len_.resize(sz);
  payload_.resize(sz * kPayloadPrefixLen);  // value-init zeroes the new slots
}

void FlowBatch::truncate(std::size_t new_size) {
  if (new_size >= size()) return;
  src_.resize(new_size);
  dst_.resize(new_size);
  sport_.resize(new_size);
  dport_.resize(new_size);
  proto_.resize(new_size, Protocol::kTcp);
  start_.resize(new_size);
  end_.resize(new_size);
  pkts_src_.resize(new_size);
  pkts_dst_.resize(new_size);
  bytes_src_.resize(new_size);
  bytes_dst_.resize(new_size);
  state_.resize(new_size, FlowState::kEstablished);
  payload_len_.resize(new_size);
  payload_.resize(new_size * kPayloadPrefixLen);
}

void FlowBatch::erase_rows(const std::vector<std::uint32_t>& sorted_rows) {
  if (sorted_rows.empty()) return;
  const std::size_t n = size();
  std::size_t out = sorted_rows.front();
  std::size_t drop = 0;
  for (std::size_t i = out; i < n; ++i) {
    if (drop < sorted_rows.size() && sorted_rows[drop] == i) {
      ++drop;
      continue;
    }
    src_[out] = src_[i];
    dst_[out] = dst_[i];
    sport_[out] = sport_[i];
    dport_[out] = dport_[i];
    proto_[out] = proto_[i];
    start_[out] = start_[i];
    end_[out] = end_[i];
    pkts_src_[out] = pkts_src_[i];
    pkts_dst_[out] = pkts_dst_[i];
    bytes_src_[out] = bytes_src_[i];
    bytes_dst_[out] = bytes_dst_[i];
    state_[out] = state_[i];
    payload_len_[out] = payload_len_[i];
    std::memmove(payload_.data() + out * kPayloadPrefixLen,
                 payload_.data() + i * kPayloadPrefixLen, kPayloadPrefixLen);
    ++out;
  }
  truncate(out);
}

FlowRecord FlowBatch::record(std::size_t i) const {
  FlowRecord r;
  r.src = src_[i];
  r.dst = dst_[i];
  r.sport = sport_[i];
  r.dport = dport_[i];
  r.proto = proto_[i];
  r.start_time = start_[i];
  r.end_time = end_[i];
  r.pkts_src = pkts_src_[i];
  r.pkts_dst = pkts_dst_[i];
  r.bytes_src = bytes_src_[i];
  r.bytes_dst = bytes_dst_[i];
  r.state = state_[i];
  r.payload_len = payload_len_[i];
  std::memcpy(r.payload.data(), payload(i), kPayloadPrefixLen);
  return r;
}

std::uint64_t FlowBatch::total_bytes() const {
  return stats::simd::sum_u64(bytes_src_.data(), bytes_src_.size()) +
         stats::simd::sum_u64(bytes_dst_.data(), bytes_dst_.size());
}

std::uint64_t FlowBatch::total_pkts() const {
  return stats::simd::sum_u64(pkts_src_.data(), pkts_src_.size()) +
         stats::simd::sum_u64(pkts_dst_.data(), pkts_dst_.size());
}

std::size_t FlowBatch::failed_count() const {
  return stats::simd::count_nonzero_u8(
      reinterpret_cast<const std::uint8_t*>(state_.data()), state_.size());
}

}  // namespace tradeplot::netflow
