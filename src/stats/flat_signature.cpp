#include "stats/flat_signature.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "stats/simd.h"
#include "util/error.h"
#include "util/parallel.h"

namespace tradeplot::stats {

FlatSignatureSet::FlatSignatureSet(const std::vector<Signature>& sigs, std::size_t threads) {
  const std::size_t n = sigs.size();
  offsets_.resize(n + 1, 0);

  // Validation + total-mass pass, serial and up front: a malformed signature
  // must surface here, on the calling thread, never from inside a worker.
  // The weight sums run in the signatures' original point order — the same
  // order emd_1d's total_weight uses — so the normalized values below are
  // bit-identical to what emd_1d computes per call.
  std::vector<double> totals(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double w = 0.0;
    for (const SignaturePoint& p : sigs[i]) {
      if (p.weight < 0.0) throw util::ConfigError("EMD: negative signature weight");
      // A non-finite position would tie with (or pass) the sentinel and send
      // the sweep's indices out of their slices, so it is rejected here;
      // emd_1d would only have produced a non-finite distance from it.
      if (!std::isfinite(p.position)) {
        throw util::ConfigError("EMD: non-finite signature position");
      }
      w += p.weight;
    }
    if (!(w > 0.0)) throw util::ConfigError("EMD: signature has no mass");
    totals[i] = w;
    // One extra slot per signature holds the +inf sentinel the sweep kernel
    // relies on to stay branch-free (see emd_1d_presorted).
    offsets_[i + 1] = offsets_[i] + sigs[i].size() + 1;
  }

  positions_.resize(offsets_[n]);
  weights_.resize(offsets_[n]);

  // Normalize + sort + pack, one disjoint slice per signature. The sort runs
  // over the same normalized SignaturePoint sequence emd_1d sorts (same
  // values, same comparator), so ties land in the same order and the packed
  // arrays reproduce emd_1d's working copy exactly.
  util::parallel_for(0, n, 8, threads, [&](std::size_t i) {
    Signature sorted = sigs[i];
    for (SignaturePoint& p : sorted) p.weight /= totals[i];
    std::sort(sorted.begin(), sorted.end(),
              [](const SignaturePoint& x, const SignaturePoint& y) {
                return x.position < y.position;
              });
    double* pos = positions_.data() + offsets_[i];
    double* wgt = weights_.data() + offsets_[i];
    for (std::size_t k = 0; k < sorted.size(); ++k) {
      pos[k] = sorted[k].position;
      wgt[k] = sorted[k].weight;
    }
    // Sentinel: a position beyond any real one with zero mass. The kernel may
    // load (but never consume into the result) this slot.
    pos[sorted.size()] = std::numeric_limits<double>::infinity();
    wgt[sorted.size()] = 0.0;
  });
}

void FlatSignatureSet::emd_x4(const std::size_t* a, const std::size_t* b,
                              double* out) const {
  std::uint64_t a_off[4], a_len[4], b_off[4], b_len[4];
  for (int l = 0; l < 4; ++l) {
    a_off[l] = offsets_[a[l]];
    a_len[l] = offsets_[a[l] + 1] - a_off[l] - 1;
    b_off[l] = offsets_[b[l]];
    b_len[l] = offsets_[b[l] + 1] - b_off[l] - 1;
  }
  simd::emd_sweep_x4(positions_.data(), weights_.data(), a_off, a_len, b_off, b_len, out);
}

double emd_1d_presorted(const FlatSignatureView& a, const FlatSignatureView& b) {
  // The CDF-difference sweep of emd_1d: carry the running F_a - F_b across
  // the merged support, accumulating |carried| * gap.
  //
  // Unlike the reference, this loop consumes exactly ONE point per iteration
  // and accumulates into emd on EVERY iteration — the merge direction is a
  // data dependency (conditional moves), not a branch, which is what makes
  // the sweep fast on the randomly interleaved supports the reference's
  // branchy merge mispredicts on. Bit-identity with emd_1d is preserved:
  //  - Ties break toward `a` here exactly as in the reference, so the
  //    carried sums accumulate the same weights in the same order (all of
  //    a's equal-position weights before b's — one per iteration).
  //  - The extra per-iteration terms at a repeated position are exactly
  //    +0.0: gap = pos - prev_pos = x - x = +0.0, and |carried| * +0.0 is
  //    +0.0 for any finite carried, so `emd += +0.0` leaves every bit of
  //    emd unchanged (emd is a sum of non-negative terms, never -0.0).
  //  - The first iteration's term is +0.0 too (prev_pos is seeded with the
  //    first merged position and carried is zero), matching the reference's
  //    skipped first increment.
  // The one-past-end sentinel slot FlatSignatureSet packs after each slice
  // (+inf position, zero weight) keeps the exhausted side's loads in bounds;
  // positions are validated finite at pack time, so a sentinel can never win
  // the select while the other span still has real points, and the loop runs
  // exactly size_a + size_b iterations.
  const double* pa = a.positions;
  const double* wa = a.weights;
  const double* pb = b.positions;
  const double* wb = b.weights;
  const std::size_t total = a.size + b.size;
  double emd = 0.0;
  double carried = 0.0;
  double prev_pos = (pb[0] < pa[0]) ? pb[0] : pa[0];
  std::size_t i = 0, j = 0;
  // Bitwise m ? x : y — the selects must not become branches again under the
  // compiler, so they are spelled as mask arithmetic rather than ternaries.
  const auto select = [](std::uint64_t m, double x, double y) {
    return std::bit_cast<double>((std::bit_cast<std::uint64_t>(x) & m) |
                                 (std::bit_cast<std::uint64_t>(y) & ~m));
  };
  for (std::size_t k = 0; k < total; ++k) {
    const double ap = pa[i];
    const double bp = pb[j];
    // All ones when b's point is strictly smaller; a wins ties, as in emd_1d.
    const std::uint64_t take_b = -static_cast<std::uint64_t>(bp < ap);
    const double pos = select(take_b, bp, ap);
    emd += std::abs(carried) * (pos - prev_pos);
    carried += select(take_b, -wb[j], wa[i]);
    j += take_b & 1u;
    i += ~take_b & 1u;
    prev_pos = pos;
  }
  return emd;
}

}  // namespace tradeplot::stats
