# Empty compiler generated dependencies file for tp_simnet.
# This may be replaced when dependencies are built.
