file(REMOVE_RECURSE
  "CMakeFiles/detect_baselines_test.dir/detect_baselines_test.cpp.o"
  "CMakeFiles/detect_baselines_test.dir/detect_baselines_test.cpp.o.d"
  "detect_baselines_test"
  "detect_baselines_test.pdb"
  "detect_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
