// Nugache bot behaviour model.
//
// Nugache ran its own encrypted P2P protocol over TCP (infamously on
// port 8). Properties modelled, following Stover et al. and the paper's own
// observations of its honeynet trace (§V):
//   * a stored peer list with a *high* share of dead entries — "almost all
//     Nugache Plotters have more than 65% failed connections" (Fig. 5),
//   * connection attempts at multi-modal machine intervals (~10/25/50 s,
//     visible as the comb in the paper's Fig. 3(b)),
//   * tiny encrypted exchanges on success (hundreds of bytes to a few KB),
//   * a per-bot activity scale drawn from a heavy-tailed distribution: the
//     trace's bots varied enormously in flow counts (the paper blames the
//     botnet's limited viability at recording time), which is what drags
//     Nugache's detection rate down to ~30% (Figs. 9-10).
#pragma once

#include <vector>

#include "botnet/evasion.h"
#include "netflow/app_env.h"
#include "netflow/flow_emit.h"
#include "util/rng.h"

namespace tradeplot::botnet {

struct NugacheConfig {
  int peer_list_size = 90;
  double dead_peer_frac = 0.94;
  /// Keep-alive intervals within a conversation (seconds); each keep-alive
  /// picks one mode (the comb of Fig. 3(b)).
  std::vector<double> interval_modes = {10.0, 25.0, 50.0};
  double interval_jitter = 1.0;
  /// Mean gap between stored-list discovery events, divided by activity.
  /// Each event retries one peer `retries_lo..retries_hi` times at modal
  /// intervals before moving on.
  double discovery_gap = 300.0;
  int retries_lo = 4, retries_hi = 7;
  /// Conversation on/off dynamics: on-time is exponential(conversation_on);
  /// the off-time mean is conversation_off / activity, so sluggish bots are
  /// mostly silent.
  double conversation_on = 900.0;
  double conversation_off = 2500.0;
  /// Per-bot activity scale: lognormal(mu, sigma), clamped to [0.02, 4].
  double activity_mu = -0.9;    // median activity ~0.4x
  double activity_sigma = 1.4;  // orders-of-magnitude spread across bots
  double msg_lo = 200, msg_hi = 2500;
  EvasionConfig evasion{};
};

class NugacheBot {
 public:
  NugacheBot(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
             NugacheConfig config = {});

  void start();

  /// The activity factor this bot drew (exposed for tests / Fig. 10).
  [[nodiscard]] double activity() const { return activity_; }

  static constexpr std::uint16_t kPort = 8;

 private:
  struct Peer {
    simnet::Ipv4 addr;
    bool alive = true;
    bool contacted_before = false;
  };

  void discovery_loop();
  void conversation_loop();
  void converse(std::size_t partner, double until);
  void probe_peer(std::size_t index);

  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  NugacheConfig config_;
  std::vector<Peer> peers_;
  std::vector<std::size_t> ring_;  // shuffled discovery order over peers_
  std::size_t ring_pos_ = 0;
  double activity_ = 1.0;
};

}  // namespace tradeplot::botnet
