// Property tests of the sub-quadratic θ_hm path: for every population the
// pruned run's observable result — flagged set, clusters, diameters, τ_hm —
// must be bit-identical to the exhaustive run's, because the lazy clustering
// driver resolves exactly the same floating-point values the dense matrix
// would have held. These tests sweep randomized populations (tie-heavy,
// duplicate-heavy, tiny, and mixed), all three distance modes, and the
// cache-warm path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "detect/hm_cache.h"
#include "detect/human_machine.h"
#include "util/rng.h"

namespace tradeplot::detect {
namespace {

simnet::Ipv4 host(std::uint32_t id) {
  return simnet::Ipv4(10, static_cast<std::uint8_t>(id >> 8), static_cast<std::uint8_t>(id), 1);
}

struct Population {
  FeatureMap features;
  HostSet input;

  void add(std::uint32_t id, std::vector<double> gaps) {
    HostFeatures f;
    f.host = host(id);
    f.flows_initiated = gaps.size() + 1;
    f.interstitials = std::move(gaps);
    input.push_back(f.host);
    features.emplace(f.host, std::move(f));
  }
};

// A randomized post-funnel population: several bot families sharing timers,
// a human remnant, plus exact-duplicate timing buffers (distance-0 pairs and
// merge-height ties — the cases naive pruning gets wrong).
Population random_population(util::Pcg32& rng, std::size_t n) {
  Population pop;
  std::vector<double> last;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> gaps(60);
    const int kind = rng.uniform_int(0, 3);
    if (kind == 0 && !last.empty()) {
      gaps = last;  // exact duplicate of the previous host
    } else if (kind <= 1) {
      const double period = 15.0 * static_cast<double>(1 + rng.uniform_int(0, 3));
      for (double& g : gaps) g = period + rng.uniform(-0.5, 0.5);
    } else {
      for (double& g : gaps) g = rng.lognormal(4.0 + rng.uniform(0.0, 1.5), 1.0);
    }
    last = gaps;
    pop.add(static_cast<std::uint32_t>(i), std::move(gaps));
  }
  return pop;
}

void expect_same_result(const HumanMachineResult& got, const HumanMachineResult& want) {
  EXPECT_EQ(got.flagged, want.flagged);
  EXPECT_EQ(got.skipped, want.skipped);
  EXPECT_EQ(got.degenerate, want.degenerate);
  EXPECT_EQ(got.degraded, want.degraded);
  const double gt = got.tau_hm;
  const double wt = want.tau_hm;
  EXPECT_EQ(std::memcmp(&gt, &wt, sizeof gt), 0) << gt << " vs " << wt;
  ASSERT_EQ(got.clusters.size(), want.clusters.size());
  for (std::size_t c = 0; c < want.clusters.size(); ++c) {
    EXPECT_EQ(got.clusters[c].members, want.clusters[c].members) << "cluster " << c;
    EXPECT_EQ(got.clusters[c].kept, want.clusters[c].kept) << "cluster " << c;
    const double gd = got.clusters[c].diameter;
    const double wd = want.clusters[c].diameter;
    EXPECT_EQ(std::memcmp(&gd, &wd, sizeof gd), 0) << "cluster " << c;
  }
}

TEST(HmPrune, VerdictsBitIdenticalAcrossRandomPopulations) {
  util::Pcg32 rng(0x9A11);
  for (const std::size_t n : {3u, 4u, 13u, 48u, 110u}) {
    for (int round = 0; round < 3; ++round) {
      const Population pop = random_population(rng, n);
      HumanMachineConfig exhaustive;
      exhaustive.min_samples = 10;
      exhaustive.pruning = HmPruning::kExhaustive;
      HumanMachineConfig pruned = exhaustive;
      pruned.pruning = HmPruning::kPruned;
      const HumanMachineResult want = human_machine_test(pop.features, pop.input, exhaustive);
      const HumanMachineResult got = human_machine_test(pop.features, pop.input, pruned);
      SCOPED_TRACE(testing::Message() << "n=" << n << " round=" << round);
      expect_same_result(got, want);
      EXPECT_TRUE(got.prune.used);
      EXPECT_FALSE(want.prune.used);
      EXPECT_LE(got.prune.exact_kernel_evals, want.prune.exact_kernel_evals);
    }
  }
}

TEST(HmPrune, AllDistanceModesAgree) {
  util::Pcg32 rng(0x9A12);
  const Population pop = random_population(rng, 72);
  for (const HmDistance d : {HmDistance::kEmd, HmDistance::kEmdBinIndex, HmDistance::kBinL1}) {
    HumanMachineConfig exhaustive;
    exhaustive.min_samples = 10;
    exhaustive.distance = d;
    exhaustive.pruning = HmPruning::kExhaustive;
    HumanMachineConfig pruned = exhaustive;
    pruned.pruning = HmPruning::kPruned;
    SCOPED_TRACE(testing::Message() << "distance mode " << static_cast<int>(d));
    expect_same_result(human_machine_test(pop.features, pop.input, pruned),
                       human_machine_test(pop.features, pop.input, exhaustive));
  }
}

TEST(HmPrune, TieHeavyPopulationsAgree) {
  // Every host one of two exact timing buffers: the distance matrix is full
  // of exact zeros and equal heights — pure tie-resolution stress.
  Population pop;
  std::vector<double> a(50, 30.0);
  std::vector<double> b(50, 90.0);
  for (std::uint32_t i = 0; i < 80; ++i) pop.add(i, i % 2 == 0 ? a : b);
  HumanMachineConfig exhaustive;
  exhaustive.min_samples = 10;
  exhaustive.pruning = HmPruning::kExhaustive;
  HumanMachineConfig pruned = exhaustive;
  pruned.pruning = HmPruning::kPruned;
  expect_same_result(human_machine_test(pop.features, pop.input, pruned),
                     human_machine_test(pop.features, pop.input, exhaustive));
}

TEST(HmPrune, ThreadCountDoesNotChangePrunedResult) {
  util::Pcg32 rng(0x9A13);
  const Population pop = random_population(rng, 90);
  HumanMachineConfig serial;
  serial.min_samples = 10;
  serial.pruning = HmPruning::kPruned;
  serial.threads = 1;
  const HumanMachineResult reference = human_machine_test(pop.features, pop.input, serial);
  for (const std::size_t threads : {2u, 8u}) {
    HumanMachineConfig config = serial;
    config.threads = threads;
    SCOPED_TRACE(testing::Message() << threads << " threads");
    expect_same_result(human_machine_test(pop.features, pop.input, config), reference);
  }
}

TEST(HmPrune, EnvThreadCountInvariantOnTieHeavyPopulation) {
  // threads = 0 defers to TRADEPLOT_THREADS; the tie-heavy population (all
  // distances exact zeros or exact duplicates) is where a racy reduction
  // order would first show as a different merge sequence. Every env setting
  // must produce the serial reference bit-for-bit.
  Population pop;
  std::vector<double> a(50, 30.0);
  std::vector<double> b(50, 90.0);
  for (std::uint32_t i = 0; i < 80; ++i) pop.add(i, i % 2 == 0 ? a : b);
  HumanMachineConfig config;
  config.min_samples = 10;
  config.pruning = HmPruning::kPruned;
  config.threads = 1;
  const HumanMachineResult reference = human_machine_test(pop.features, pop.input, config);
  config.threads = 0;
  for (const char* threads : {"1", "2", "8"}) {
    ASSERT_EQ(setenv("TRADEPLOT_THREADS", threads, 1), 0);
    SCOPED_TRACE(testing::Message() << "TRADEPLOT_THREADS=" << threads);
    expect_same_result(human_machine_test(pop.features, pop.input, config), reference);
  }
  unsetenv("TRADEPLOT_THREADS");
}

TEST(HmPrune, EnvThreadCountInvariantOnWarmCacheWindow) {
  // The cache-warm path resolves everything through memo probes; mixing it
  // with batch resolution at different thread counts must not change what
  // gets retained or returned.
  util::Pcg32 rng(0x9A18);
  const Population pop = random_population(rng, 84);
  HumanMachineConfig config;
  config.min_samples = 10;
  config.pruning = HmPruning::kPruned;
  config.threads = 1;
  HmCache reference_cache;
  (void)human_machine_test(pop.features, pop.input, config, &reference_cache);
  const HumanMachineResult reference =
      human_machine_test(pop.features, pop.input, config, &reference_cache);
  config.threads = 0;
  for (const char* threads : {"1", "2", "8"}) {
    ASSERT_EQ(setenv("TRADEPLOT_THREADS", threads, 1), 0);
    SCOPED_TRACE(testing::Message() << "TRADEPLOT_THREADS=" << threads);
    HmCache cache;
    const HumanMachineResult cold = human_machine_test(pop.features, pop.input, config, &cache);
    const HumanMachineResult warm = human_machine_test(pop.features, pop.input, config, &cache);
    expect_same_result(warm, reference);
    expect_same_result(cold, reference);
    EXPECT_EQ(warm.prune.exact_kernel_evals, 0u);
  }
  unsetenv("TRADEPLOT_THREADS");
}

TEST(HmPrune, PhaseTimingFieldsFollowCollectFlag) {
  util::Pcg32 rng(0x9A19);
  const Population pop = random_population(rng, 96);
  HumanMachineConfig config;
  config.min_samples = 10;
  config.pruning = HmPruning::kPruned;
  const HumanMachineResult off = human_machine_test(pop.features, pop.input, config);
  EXPECT_EQ(off.prune.pivot_build_ms, 0.0);
  EXPECT_EQ(off.prune.bound_scan_ms, 0.0);
  EXPECT_EQ(off.prune.exact_eval_ms, 0.0);
  EXPECT_EQ(off.prune.replay_ms, 0.0);
  config.collect_phase_timing = true;
  const HumanMachineResult on = human_machine_test(pop.features, pop.input, config);
  expect_same_result(on, off);  // timing must never perturb the verdict
  // Steady clocks are monotone, so every phase is non-negative, and a
  // 96-host pruned run always does pivot construction and bound scans.
  EXPECT_GT(on.prune.pivot_build_ms, 0.0);
  EXPECT_GT(on.prune.bound_scan_ms, 0.0);
  EXPECT_GE(on.prune.exact_eval_ms, 0.0);
  EXPECT_GE(on.prune.replay_ms, 0.0);
}

TEST(HmPrune, AutoSwitchesAtPruneMinHosts) {
  util::Pcg32 rng(0x9A14);
  const Population small = random_population(rng, 20);
  const Population large = random_population(rng, 70);
  HumanMachineConfig config;
  config.min_samples = 10;
  config.prune_min_hosts = 64;
  const HumanMachineResult below = human_machine_test(small.features, small.input, config);
  const HumanMachineResult above = human_machine_test(large.features, large.input, config);
  EXPECT_FALSE(below.prune.used);
  EXPECT_TRUE(above.prune.used);
  EXPECT_GT(above.prune.skipped_pivot + above.prune.skipped_grid, 0u);
  EXPECT_LT(above.prune.exact_kernel_evals, above.prune.pairs_total);
}

TEST(HmPrune, PrunedPathReducesExactEvalsOnClusterablePopulations) {
  // The acceptance-shaped claim in miniature: on a population of tight bot
  // families plus scattered humans, the pruned path must evaluate the exact
  // kernel for well under a third of the pair space.
  util::Pcg32 rng(0x9A15);
  Population pop;
  for (std::uint32_t i = 0; i < 128; ++i) {
    std::vector<double> gaps(80);
    if (i < 112) {
      // 16 timer families with geometrically shrinking period gaps: tight
      // within a family, well separated across families. Shrinking gaps
      // keep each family's nearest neighbour on its denser side, so the
      // NN-chain finishes families before inter-family merges start and the
      // pruned driver's bounds carry almost every cross-family decision.
      const double period =
          8.0 + 500.0 * (1.0 - std::pow(0.96, static_cast<double>(i % 16)));
      for (double& g : gaps) g = period + rng.uniform(-0.25, 0.25);
    } else {
      for (double& g : gaps) g = rng.lognormal(4.5, 1.0);
    }
    pop.add(i, std::move(gaps));
  }
  HumanMachineConfig pruned;
  pruned.min_samples = 10;
  pruned.pruning = HmPruning::kPruned;
  HumanMachineConfig exhaustive = pruned;
  exhaustive.pruning = HmPruning::kExhaustive;
  const HumanMachineResult got = human_machine_test(pop.features, pop.input, pruned);
  const HumanMachineResult want = human_machine_test(pop.features, pop.input, exhaustive);
  expect_same_result(got, want);
  EXPECT_LT(got.prune.exact_kernel_evals, got.prune.pairs_total / 3);
}

TEST(HmPrune, WarmCacheWindowRunsZeroExactKernels) {
  util::Pcg32 rng(0x9A16);
  const Population pop = random_population(rng, 80);
  HumanMachineConfig config;
  config.min_samples = 10;
  config.pruning = HmPruning::kPruned;
  HmCache cache;
  const HumanMachineResult cold = human_machine_test(pop.features, pop.input, config, &cache);
  const std::uint64_t computed_after_cold = cache.distances_computed;
  const HumanMachineResult warm = human_machine_test(pop.features, pop.input, config, &cache);
  expect_same_result(warm, cold);
  // Identical inputs: every pivot column and chain resolution is a cache
  // hit; the exact kernel never runs and nothing new is computed.
  EXPECT_EQ(warm.prune.exact_kernel_evals, 0u);
  EXPECT_EQ(cache.distances_computed, computed_after_cold);
  EXPECT_GT(warm.prune.cache_hits, 0u);

  // And the cached pruned window is bit-identical to an uncached one.
  const HumanMachineResult uncached = human_machine_test(pop.features, pop.input, config);
  expect_same_result(warm, uncached);
}

TEST(HmPrune, CachedPrunedWindowMatchesCachedExhaustiveWindow) {
  // The sparse retention must serve the same values the dense retention
  // would have: run cold+warm under both strategies and compare everything.
  util::Pcg32 rng(0x9A17);
  const Population pop = random_population(rng, 70);
  HumanMachineConfig pruned;
  pruned.min_samples = 10;
  pruned.pruning = HmPruning::kPruned;
  HumanMachineConfig exhaustive = pruned;
  exhaustive.pruning = HmPruning::kExhaustive;
  HmCache pruned_cache;
  HmCache exhaustive_cache;
  (void)human_machine_test(pop.features, pop.input, pruned, &pruned_cache);
  (void)human_machine_test(pop.features, pop.input, exhaustive, &exhaustive_cache);
  const HumanMachineResult warm_pruned =
      human_machine_test(pop.features, pop.input, pruned, &pruned_cache);
  const HumanMachineResult warm_exhaustive =
      human_machine_test(pop.features, pop.input, exhaustive, &exhaustive_cache);
  expect_same_result(warm_pruned, warm_exhaustive);
}

}  // namespace
}  // namespace tradeplot::detect
