#include "detect/baselines.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::detect {
namespace {

simnet::Ipv4 internal_host(std::uint8_t last_octet) { return simnet::Ipv4(128, 2, 0, last_octet); }

bool is_internal(simnet::Ipv4 ip) { return (ip.value() >> 16) == ((128u << 8) | 2u); }

netflow::FlowRecord flow(simnet::Ipv4 src, simnet::Ipv4 dst, double start, bool failed = false) {
  netflow::FlowRecord r;
  r.src = src;
  r.dst = dst;
  r.start_time = start;
  r.end_time = start + 1;
  r.pkts_src = 1;
  r.pkts_dst = failed ? 0 : 1;
  r.bytes_src = 100;
  r.state = failed ? netflow::FlowState::kAttempted : netflow::FlowState::kEstablished;
  return r;
}

// ------------------------------------------------------------------- TDG

TEST(TdgTest, FlagsHighDegreeBidirectionalHosts) {
  netflow::TraceSet trace(0, 21600);
  const simnet::Ipv4 p2p = internal_host(1);
  // 12 outgoing peers + 3 incoming: in+out, degree 15.
  for (int i = 0; i < 12; ++i) trace.add_flow(flow(p2p, simnet::Ipv4(1, 1, 1, static_cast<std::uint8_t>(i)), i));
  for (int i = 0; i < 3; ++i) trace.add_flow(flow(simnet::Ipv4(2, 2, 2, static_cast<std::uint8_t>(i)), p2p, 100 + i));
  // A client: many outgoing, nothing incoming.
  const simnet::Ipv4 client = internal_host(2);
  for (int i = 0; i < 30; ++i) trace.add_flow(flow(client, simnet::Ipv4(3, 3, 3, static_cast<std::uint8_t>(i)), i));
  // A low-degree host with both directions.
  const simnet::Ipv4 quiet = internal_host(3);
  trace.add_flow(flow(quiet, simnet::Ipv4(4, 4, 4, 4), 0));
  trace.add_flow(flow(simnet::Ipv4(4, 4, 4, 5), quiet, 1));

  TdgConfig config;
  config.is_internal = is_internal;
  const TdgResult result = tdg_test(trace, config);
  EXPECT_EQ(result.flagged, (HostSet{p2p}));
  EXPECT_GT(result.average_degree, 0.0);
  // 2 of 3 internal hosts have both in and out edges.
  EXPECT_NEAR(result.ino_ratio, 2.0 / 3.0, 1e-9);
}

TEST(TdgTest, SuccessfulOnlyIgnoresFailedDials) {
  netflow::TraceSet trace(0, 21600);
  const simnet::Ipv4 host = internal_host(1);
  for (int i = 0; i < 20; ++i) {
    trace.add_flow(flow(host, simnet::Ipv4(1, 1, 1, static_cast<std::uint8_t>(i)), i,
                        /*failed=*/true));
  }
  trace.add_flow(flow(simnet::Ipv4(2, 2, 2, 2), host, 50));
  TdgConfig config;
  config.is_internal = is_internal;
  EXPECT_FALSE(tdg_test(trace, config).flagged.empty());
  config.successful_only = true;
  EXPECT_TRUE(tdg_test(trace, config).flagged.empty());
}

TEST(TdgTest, RequiresPredicate) {
  netflow::TraceSet trace;
  EXPECT_THROW((void)tdg_test(trace, TdgConfig{}), util::ConfigError);
}

// --------------------------------------------------------------- Entropy

HostFeatures features_with_gaps(std::uint8_t octet, std::vector<double> gaps) {
  HostFeatures f;
  f.host = internal_host(octet);
  f.interstitials = std::move(gaps);
  return f;
}

TEST(EntropyTest, MachineTimersHaveLowerEntropyThanHumans) {
  util::Pcg32 rng(1);
  std::vector<double> machine(500);
  for (double& g : machine) g = 30.0 + rng.uniform(-0.5, 0.5);
  std::vector<double> human(500);
  for (double& g : human) g = rng.lognormal(4.0, 1.2);
  const double machine_entropy =
      timing_entropy(features_with_gaps(1, std::move(machine)));
  const double human_entropy = timing_entropy(features_with_gaps(2, std::move(human)));
  EXPECT_GE(machine_entropy, 0.0);
  EXPECT_GT(human_entropy, machine_entropy + 1.0);  // clearly higher
}

TEST(EntropyTest, FlagsLowEntropyHosts) {
  util::Pcg32 rng(2);
  FeatureMap features;
  HostSet input;
  for (std::uint8_t b = 1; b <= 3; ++b) {
    std::vector<double> gaps(200);
    for (double& g : gaps) g = 20.0 + rng.uniform(-0.2, 0.2);
    HostFeatures f = features_with_gaps(b, std::move(gaps));
    input.push_back(f.host);
    features.emplace(f.host, std::move(f));
  }
  for (std::uint8_t h = 10; h < 20; ++h) {
    std::vector<double> gaps(200);
    for (double& g : gaps) g = rng.lognormal(4.0, 1.3);
    HostFeatures f = features_with_gaps(h, std::move(gaps));
    input.push_back(f.host);
    features.emplace(f.host, std::move(f));
  }
  const HostSet flagged = entropy_test(features, input, {});
  for (std::uint8_t b = 1; b <= 3; ++b) {
    EXPECT_TRUE(std::binary_search(flagged.begin(), flagged.end(), internal_host(b)));
  }
  // The percentile keeps roughly the bottom 30%: not everything.
  EXPECT_LT(flagged.size(), input.size() / 2);
}

TEST(EntropyTest, SkipsHostsWithFewSamples) {
  FeatureMap features;
  HostFeatures f = features_with_gaps(1, {1.0, 2.0, 3.0});
  const HostSet input = {f.host};
  features.emplace(f.host, std::move(f));
  EXPECT_TRUE(entropy_test(features, input, {}).empty());
  EXPECT_LT(timing_entropy(features.begin()->second), 0.0);
}

// ----------------------------------------------------------- Persistence

TEST(PersistenceTest, FlagsHostsWithPersistentAtoms) {
  netflow::TraceSet trace(0, 21600);
  const simnet::Ipv4 bot = internal_host(1);
  // Contacts the same /24 every slot of the day (C&C-ish).
  for (double t = 0; t < 21600; t += 300) {
    trace.add_flow(flow(bot, simnet::Ipv4(6, 6, 6, static_cast<std::uint8_t>(
                                              static_cast<int>(t / 300) % 4)),
                        t));
  }
  // A browser: each destination atom touched once.
  const simnet::Ipv4 browser = internal_host(2);
  for (int i = 0; i < 40; ++i) {
    trace.add_flow(flow(browser, simnet::Ipv4(static_cast<std::uint8_t>(50 + i), 1, 1, 1),
                        i * 500.0));
  }
  PersistenceTestConfig config;
  config.is_internal = is_internal;
  const PersistenceResult result = persistence_test(trace, config);
  EXPECT_EQ(result.flagged, (HostSet{bot}));
  EXPECT_GT(result.max_persistence.at(bot), 0.9);
}

TEST(PersistenceTest, MinActiveSlotsGuardsOneShotHosts) {
  netflow::TraceSet trace(0, 21600);
  const simnet::Ipv4 oneshot = internal_host(1);
  trace.add_flow(flow(oneshot, simnet::Ipv4(9, 9, 9, 9), 100.0));
  PersistenceTestConfig config;
  config.is_internal = is_internal;
  EXPECT_TRUE(persistence_test(trace, config).flagged.empty());
}

TEST(PersistenceTest, AtomAggregatesSlash24) {
  netflow::TraceSet trace(0, 21600);
  const simnet::Ipv4 host = internal_host(1);
  // Rotates through different addresses of the SAME /24 every slot: still
  // one persistent atom (the Giroire et al. rationale for atoms).
  for (double t = 0; t < 21600; t += 600) {
    trace.add_flow(flow(host, simnet::Ipv4(7, 7, 7, static_cast<std::uint8_t>(
                                               static_cast<int>(t / 600) % 200)),
                        t));
  }
  PersistenceTestConfig config;
  config.is_internal = is_internal;
  const PersistenceResult result = persistence_test(trace, config);
  EXPECT_EQ(result.flagged, (HostSet{host}));
}

TEST(PersistenceTest, ConfigValidation) {
  netflow::TraceSet trace;
  PersistenceTestConfig config;
  EXPECT_THROW((void)persistence_test(trace, config), util::ConfigError);
  config.is_internal = is_internal;
  config.slot_length = 0.0;
  EXPECT_THROW((void)persistence_test(trace, config), util::ConfigError);
}

}  // namespace
}  // namespace tradeplot::detect
