#include "p2p/churn.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tradeplot::p2p {
namespace {

TEST(ChurnModel, SessionDurationsArePositiveAndMinutesScale) {
  ChurnModel churn;
  util::Pcg32 rng(1);
  double sum = 0;
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double d = churn.session_duration(rng);
    ASSERT_GT(d, 0.0);
    xs.push_back(d);
    sum += d;
  }
  std::sort(xs.begin(), xs.end());
  // Median should be exp(mu) ~ 330 s with the default parameters.
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(churn.params().session_mu),
              std::exp(churn.params().session_mu) * 0.15);
}

TEST(ChurnModel, FreshContactLivenessMatchesStaleProbability) {
  ChurnParams params;
  params.stale_contact_prob = 0.35;
  ChurnModel churn(params);
  util::Pcg32 rng(2);
  int alive = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) alive += churn.fresh_contact_alive(rng) ? 1 : 0;
  EXPECT_NEAR(alive / static_cast<double>(n), 0.65, 0.02);
}

TEST(ChurnModel, RevisitLivenessMatchesProbability) {
  ChurnParams params;
  params.revisit_alive_prob = 0.45;
  ChurnModel churn(params);
  util::Pcg32 rng(3);
  int alive = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) alive += churn.revisit_alive(rng) ? 1 : 0;
  EXPECT_NEAR(alive / static_cast<double>(n), 0.45, 0.02);
}

TEST(ChurnModel, ExtremeProbabilities) {
  ChurnParams params;
  params.stale_contact_prob = 1.0;
  params.revisit_alive_prob = 0.0;
  ChurnModel churn(params);
  util::Pcg32 rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(churn.fresh_contact_alive(rng));
    EXPECT_FALSE(churn.revisit_alive(rng));
  }
}

}  // namespace
}  // namespace tradeplot::p2p
