file(REMOVE_RECURSE
  "CMakeFiles/netflow_flow_table_test.dir/netflow_flow_table_test.cpp.o"
  "CMakeFiles/netflow_flow_table_test.dir/netflow_flow_table_test.cpp.o.d"
  "netflow_flow_table_test"
  "netflow_flow_table_test.pdb"
  "netflow_flow_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netflow_flow_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
