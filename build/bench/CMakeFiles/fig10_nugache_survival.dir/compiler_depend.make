# Empty compiler generated dependencies file for fig10_nugache_survival.
# This may be replaced when dependencies are built.
