#include "shard/merge.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "detect/hm_cache.h"
#include "detect/human_machine.h"
#include "stats/descriptive.h"
#include "stats/emd.h"
#include "stats/hcluster.h"
#include "stats/quantile_sketch.h"
#include "util/error.h"

namespace tradeplot::shard {

namespace {

using detect::FeatureMap;
using detect::HostFeatures;
using detect::HostSet;

const HostFeatures& features_of(const FeatureMap& features, simnet::Ipv4 host) {
  const auto it = features.find(host);
  if (it == features.end())
    throw util::ConfigError("host " + host.to_string() + " missing from feature map");
  return it->second;
}

/// One shard's scalar-stage columns, hosts address-sorted so every pass is
/// deterministic regardless of FeatureMap iteration order.
struct ShardColumns {
  HostSet hosts;
  std::vector<unsigned char> eligible;  // initiated_success()
  std::vector<double> rates;            // failed_rate (0 when not eligible)
  HostSet reduced;
  HostSet s_vol;
  HostSet s_churn;
  HostSet vol_or_churn;
};

HostSet sorted_concat(const std::vector<HostSet>& parts) {
  HostSet out;
  std::size_t total = 0;
  for (const HostSet& p : parts) total += p.size();
  out.reserve(total);
  for (const HostSet& p : parts) out.insert(out.end(), p.begin(), p.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// A shard-local cluster lifted into the global stitch.
struct Representative {
  std::size_t shard = 0;
  std::vector<simnet::Ipv4> members;
  double diameter = 0.0;
  stats::Signature signature;  // the medoid's
};

}  // namespace

MergedResult merged_find_plotters(std::span<const FeatureMap> shard_features,
                                  const detect::FindPlottersConfig& config,
                                  std::span<detect::HmCache* const> caches,
                                  std::size_t sketch_k) {
  if (!caches.empty() && caches.size() != shard_features.size())
    throw util::ConfigError("merged_find_plotters: one cache slot per shard required");
  MergedResult merged;
  detect::FindPlottersResult& result = merged.result;
  MergedPipelineReport& report = merged.report;
  const std::size_t shards = shard_features.size();
  report.shard_count = shards;

  std::vector<ShardColumns> cols(shards);
  std::vector<HostSet> host_lists(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    cols[s].hosts = detect::all_hosts(shard_features[s]);
    host_lists[s] = cols[s].hosts;
  }
  result.input = sorted_concat(host_lists);
  if (result.input.empty()) return merged;

  // --- Data reduction: merged eligible failed-rate sketch, then the global
  // strict-survivor count drives the strict-then-inclusive fallback.
  stats::QuantileSketch rate_sketch(sketch_k);
  std::uint64_t eligible_total = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    ShardColumns& c = cols[s];
    c.eligible.reserve(c.hosts.size());
    c.rates.reserve(c.hosts.size());
    stats::QuantileSketch local(sketch_k);
    for (const simnet::Ipv4 host : c.hosts) {
      const HostFeatures& f = features_of(shard_features[s], host);
      const bool ok = f.initiated_success();
      const double rate = ok ? f.failed_rate() : 0.0;
      c.eligible.push_back(ok);
      c.rates.push_back(rate);
      if (ok) {
        local.add(rate);
        ++eligible_total;
      }
    }
    rate_sketch.merge(local);
  }
  report.thresholds.eligible_count = eligible_total;
  if (eligible_total == 0) return merged;  // nobody ever initiated successfully
  const double reduction_tau = rate_sketch.quantile(config.reduction.percentile);
  report.thresholds.reduction = reduction_tau;
  report.thresholds.reduction_error_bound = rate_sketch.error_bound();

  std::uint64_t strict_survivors = 0;
  for (const ShardColumns& c : cols) {
    for (std::size_t i = 0; i < c.hosts.size(); ++i)
      if (c.eligible[i] && c.rates[i] > reduction_tau) ++strict_survivors;
  }
  bool inclusive = false;
  switch (config.reduction.comparison) {
    case detect::ReductionComparison::kStrict:
      break;
    case detect::ReductionComparison::kInclusive:
      inclusive = true;
      break;
    case detect::ReductionComparison::kStrictThenInclusive:
      // The fallback decision must be global: one shard may have strict
      // survivors while another has only ties, and the single detector
      // would still use strict `>` everywhere.
      inclusive = strict_survivors == 0;
      break;
  }
  report.reduction_inclusive = inclusive;
  for (std::size_t s = 0; s < shards; ++s) {
    ShardColumns& c = cols[s];
    for (std::size_t i = 0; i < c.hosts.size(); ++i) {
      if (!c.eligible[i]) continue;
      if (c.rates[i] > reduction_tau || (inclusive && c.rates[i] == reduction_tau))
        c.reduced.push_back(c.hosts[i]);
    }
    host_lists[s] = c.reduced;
  }
  result.reduced = sorted_concat(host_lists);
  report.thresholds.reduced_count = result.reduced.size();
  if (result.reduced.empty()) return merged;

  // --- θ_vol and θ_churn: merged sketches over the reduced population,
  // strict `<` selection against the merged percentile (the same comparator
  // as detect::volume_test / churn_test).
  stats::QuantileSketch vol_sketch(sketch_k);
  stats::QuantileSketch churn_sketch(sketch_k);
  std::vector<std::vector<double>> vol_values(shards);
  std::vector<std::vector<double>> churn_values(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    stats::QuantileSketch vol_local(sketch_k);
    stats::QuantileSketch churn_local(sketch_k);
    vol_values[s].reserve(cols[s].reduced.size());
    churn_values[s].reserve(cols[s].reduced.size());
    for (const simnet::Ipv4 host : cols[s].reduced) {
      const HostFeatures& f = features_of(shard_features[s], host);
      const double vol = f.volume(config.volume.metric);
      const double churn = f.new_ip_fraction();
      vol_values[s].push_back(vol);
      churn_values[s].push_back(churn);
      vol_local.add(vol);
      churn_local.add(churn);
    }
    vol_sketch.merge(vol_local);
    churn_sketch.merge(churn_local);
  }
  const double tau_vol = vol_sketch.quantile(config.volume.percentile);
  const double tau_churn = churn_sketch.quantile(config.churn.percentile);
  report.thresholds.vol = tau_vol;
  report.thresholds.churn = tau_churn;
  report.thresholds.vol_error_bound = vol_sketch.error_bound();
  report.thresholds.churn_error_bound = churn_sketch.error_bound();

  for (std::size_t s = 0; s < shards; ++s) {
    ShardColumns& c = cols[s];
    for (std::size_t i = 0; i < c.reduced.size(); ++i) {
      if (vol_values[s][i] < tau_vol) c.s_vol.push_back(c.reduced[i]);
      if (churn_values[s][i] < tau_churn) c.s_churn.push_back(c.reduced[i]);
    }
    c.vol_or_churn = detect::host_union(c.s_vol, c.s_churn);
  }
  for (std::size_t s = 0; s < shards; ++s) host_lists[s] = cols[s].s_vol;
  result.s_vol = sorted_concat(host_lists);
  for (std::size_t s = 0; s < shards; ++s) host_lists[s] = cols[s].s_churn;
  result.s_churn = sorted_concat(host_lists);
  result.vol_or_churn = detect::host_union(result.s_vol, result.s_churn);

  // --- θ_hm, level one: shard-local clustering (sequential in shard order;
  // each call parallelizes internally and owns its shard's HmCache).
  detect::HumanMachineResult& hm = result.hm;
  std::vector<Representative> reps;
  for (std::size_t s = 0; s < shards; ++s) {
    detect::HmCache* cache = caches.empty() ? nullptr : caches[s];
    detect::LocalClusterResult local = detect::human_machine_local(
        shard_features[s], cols[s].vol_or_churn, config.human_machine, cache);
    hm.skipped.insert(hm.skipped.end(), local.skipped.begin(), local.skipped.end());
    hm.degenerate.insert(hm.degenerate.end(), local.degenerate.begin(),
                         local.degenerate.end());
    hm.degraded = hm.degraded || local.degraded;
    hm.prune.used = hm.prune.used || local.prune.used;
    hm.prune.pairs_total += local.prune.pairs_total;
    hm.prune.exact_kernel_evals += local.prune.exact_kernel_evals;
    hm.prune.cache_hits += local.prune.cache_hits;
    hm.prune.resolved_pairs += local.prune.resolved_pairs;
    hm.prune.pivots += local.prune.pivots;
    hm.prune.scanned += local.prune.scanned;
    hm.prune.skipped_pivot += local.prune.skipped_pivot;
    hm.prune.skipped_grid += local.prune.skipped_grid;
    hm.prune.scan_cache_hits += local.prune.scan_cache_hits;
    hm.prune.bloom_skips += local.prune.bloom_skips;
    for (detect::LocalCluster& cluster : local.clusters) {
      Representative rep;
      rep.shard = s;
      rep.members = std::move(cluster.members);
      rep.diameter = cluster.diameter;
      rep.signature = std::move(cluster.medoid_signature);
      reps.push_back(std::move(rep));
    }
  }
  std::sort(hm.skipped.begin(), hm.skipped.end());
  std::sort(hm.degenerate.begin(), hm.degenerate.end());
  report.representatives = reps.size();
  if (reps.empty()) return merged;

  // --- θ_hm, level two: stitch the representatives with weighted UPGMA over
  // medoid-signature distances, cut, and filter on admissible diameter
  // upper bounds.
  const std::size_t r = reps.size();
  std::vector<std::vector<std::size_t>> groups;
  std::vector<double> rep_dist;
  if (r == 1) {
    groups.push_back({0});
  } else {
    std::vector<stats::Signature> sigs;
    sigs.reserve(r);
    for (const Representative& rep : reps) sigs.push_back(rep.signature);
    rep_dist = config.human_machine.distance == detect::HmDistance::kBinL1
                   ? detect::pairwise_bin_l1(sigs, config.human_machine)
                   : stats::pairwise_emd(sigs, config.human_machine.threads);
    std::vector<std::size_t> weights;
    weights.reserve(r);
    for (const Representative& rep : reps) weights.push_back(rep.members.size());
    const stats::Dendrogram dendrogram =
        stats::agglomerative_average_linkage_weighted(rep_dist, r, weights);
    groups = dendrogram.cut_top_fraction(config.human_machine.cut_fraction);
  }

  std::vector<double> diameters;
  for (const auto& group : groups) {
    detect::HostCluster cluster;
    // Upper bound on the stitched diameter: within one representative no
    // pair exceeds its local diameter; across representatives a and b,
    // d(x, y) <= diam_a + d(medoid_a, medoid_b) + diam_b by the triangle
    // inequality (both metrics qualify), since the medoid is a member.
    double diameter = 0.0;
    for (const std::size_t a : group) diameter = std::max(diameter, reps[a].diameter);
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        const std::size_t a = group[i], b = group[j];
        diameter = std::max(diameter, reps[a].diameter + rep_dist[a * r + b] +
                                          reps[b].diameter);
      }
    }
    for (const std::size_t a : group)
      cluster.members.insert(cluster.members.end(), reps[a].members.begin(),
                             reps[a].members.end());
    std::sort(cluster.members.begin(), cluster.members.end());
    if (cluster.members.size() < config.human_machine.min_cluster_size) continue;
    cluster.diameter = diameter;
    diameters.push_back(diameter);
    hm.clusters.push_back(std::move(cluster));
  }
  if (hm.clusters.empty()) return merged;

  hm.tau_hm = stats::quantile(diameters, config.human_machine.diameter_percentile);
  for (detect::HostCluster& cluster : hm.clusters) {
    cluster.kept = cluster.diameter <= hm.tau_hm;
    if (cluster.kept)
      hm.flagged.insert(hm.flagged.end(), cluster.members.begin(), cluster.members.end());
  }
  std::sort(hm.flagged.begin(), hm.flagged.end());
  result.plotters = hm.flagged;
  return merged;
}

}  // namespace tradeplot::shard
