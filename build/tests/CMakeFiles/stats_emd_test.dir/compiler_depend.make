# Empty compiler generated dependencies file for stats_emd_test.
# This may be replaced when dependencies are built.
