#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace tradeplot::util {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(42, 7);
  Pcg32 b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(42);
  Pcg32 b(43);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, SplitIsDeterministicAndIndependent) {
  Pcg32 parent(99);
  Pcg32 child1 = parent.split(1);
  Pcg32 child1_again = Pcg32(99).split(1);
  Pcg32 child2 = parent.split(2);
  EXPECT_EQ(child1(), child1_again());
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1() == child2()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(1);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32, UniformIntCoversRangeInclusive) {
  Pcg32 rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Pcg32, UniformIntSingleton) {
  Pcg32 rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Pcg32, UniformIntRejectsInvertedRange) {
  Pcg32 rng(3);
  EXPECT_THROW((void)rng.uniform_int(10, 3), std::invalid_argument);
}

TEST(Pcg32, UniformIntNegativeRange) {
  Pcg32 rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    ASSERT_GE(v, -10);
    ASSERT_LE(v, -5);
  }
}

TEST(Pcg32, ChanceExtremes) {
  Pcg32 rng(5);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

TEST(Pcg32, ChanceFrequency) {
  Pcg32 rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Pcg32, ExponentialMean) {
  Pcg32 rng(7);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.2);
}

TEST(Pcg32, ExponentialRejectsNonPositiveMean) {
  Pcg32 rng(7);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(-1.0), std::invalid_argument);
}

TEST(Pcg32, NormalMoments) {
  Pcg32 rng(8);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.normal(10.0, 2.0);
  double mean = 0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Pcg32, LognormalMedian) {
  Pcg32 rng(9);
  std::vector<double> xs(20001);
  for (double& x : xs) x = rng.lognormal(3.0, 1.0);
  std::sort(xs.begin(), xs.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(3.0), std::exp(3.0) * 0.1);
}

TEST(Pcg32, ParetoBoundsAndShape) {
  Pcg32 rng(10);
  for (int i = 0; i < 1000; ++i) ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
  EXPECT_THROW((void)rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(Pcg32, BoundedParetoStaysInBounds) {
  Pcg32 rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.bounded_pareto(10.0, 1000.0, 1.2);
    ASSERT_GE(x, 10.0 * 0.999);
    ASSERT_LE(x, 1000.0 * 1.001);
  }
  EXPECT_THROW((void)rng.bounded_pareto(10.0, 5.0, 1.0), std::invalid_argument);
}

TEST(Pcg32, BoundedParetoIsHeavyTailedTowardsLow) {
  Pcg32 rng(12);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.bounded_pareto(1.0, 1000.0, 1.1) < 10.0) ++low;
  }
  // Most draws should be near the lower bound for alpha > 1.
  EXPECT_GT(low, n / 2);
}

TEST(Pcg32, ZipfBoundsAndMonotoneFrequencies) {
  Pcg32 rng(13);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto r = rng.zipf(10, 1.0);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 10u);
    counts[r] += 1;
  }
  // Rank 1 should clearly beat rank 5 which should beat rank 10.
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[5], counts[10]);
}

TEST(Pcg32, ZipfUniformWhenExponentZero) {
  Pcg32 rng(14);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.zipf(5, 0.0) - 1] += 1;
  for (const int c : counts) EXPECT_NEAR(c, 4000, 400);
}

TEST(Pcg32, ZipfSingleton) {
  Pcg32 rng(15);
  EXPECT_EQ(rng.zipf(1, 1.2), 1u);
  EXPECT_THROW((void)rng.zipf(0, 1.0), std::invalid_argument);
}

TEST(Pcg32, WeightedIndexRespectsWeights) {
  Pcg32 rng(16);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.weighted_index(weights)] += 1;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Pcg32, WeightedIndexErrors) {
  Pcg32 rng(17);
  std::vector<double> zero = {0.0, 0.0};
  std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW((void)rng.weighted_index(zero), std::invalid_argument);
  EXPECT_THROW((void)rng.weighted_index(negative), std::invalid_argument);
}

TEST(Pcg32, ShuffleIsPermutation) {
  Pcg32 rng(18);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Pcg32, PickReturnsElement) {
  Pcg32 rng(19);
  const std::vector<int> v = {7, 8, 9};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 7 || x == 8 || x == 9);
  }
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(0);
  SplitMix64 b(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(1);
  EXPECT_NE(SplitMix64(0).next(), c.next());
}

// Distribution determinism across the whole helper surface: the same seed
// must give the same draws — the reproducibility contract of the library.
TEST(Pcg32, AllDistributionsDeterministic) {
  const auto draw_all = [](Pcg32 rng) {
    std::vector<double> out;
    out.push_back(rng.uniform());
    out.push_back(rng.uniform(2, 3));
    out.push_back(static_cast<double>(rng.uniform_int(0, 1000)));
    out.push_back(rng.exponential(2.0));
    out.push_back(rng.normal(0, 1));
    out.push_back(rng.lognormal(1, 0.5));
    out.push_back(rng.pareto(1.0, 2.0));
    out.push_back(rng.bounded_pareto(1.0, 100.0, 1.5));
    out.push_back(static_cast<double>(rng.zipf(100, 0.8)));
    return out;
  };
  EXPECT_EQ(draw_all(Pcg32(12345)), draw_all(Pcg32(12345)));
}

}  // namespace
}  // namespace tradeplot::util
