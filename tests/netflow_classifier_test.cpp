#include "netflow/classifier.h"

#include <gtest/gtest.h>

#include <string>

#include "netflow/flow_record.h"

namespace tradeplot::netflow {
namespace {

std::string ed2k(unsigned char proto, std::uint32_t len, unsigned char opcode) {
  std::string f;
  f.push_back(static_cast<char>(proto));
  f.push_back(static_cast<char>(len & 0xff));
  f.push_back(static_cast<char>((len >> 8) & 0xff));
  f.push_back(static_cast<char>((len >> 16) & 0xff));
  f.push_back(static_cast<char>((len >> 24) & 0xff));
  f.push_back(static_cast<char>(opcode));
  return f;
}

TEST(PayloadClassifier, GnutellaKeywords) {
  EXPECT_EQ(PayloadClassifier::classify("GNUTELLA CONNECT/0.6\r\n"), AppLabel::kGnutella);
  EXPECT_EQ(PayloadClassifier::classify("GNUTELLA/0.6 200 OK"), AppLabel::kGnutella);
  EXPECT_EQ(PayloadClassifier::classify("x CONNECT BACK y"), AppLabel::kGnutella);
  EXPECT_EQ(PayloadClassifier::classify("servent: LIME"), AppLabel::kGnutella);
}

TEST(PayloadClassifier, EMuleFrames) {
  EXPECT_EQ(PayloadClassifier::classify(ed2k(0xe3, 0x55, 0x01)), AppLabel::kEMule);
  EXPECT_EQ(PayloadClassifier::classify(ed2k(0xc5, 0x2c00, 0x40)), AppLabel::kEMule);
  EXPECT_EQ(PayloadClassifier::classify(ed2k(0xe3, 0x20, 0x58)), AppLabel::kEMule);
  EXPECT_EQ(PayloadClassifier::classify(ed2k(0xe3, 0x30, 0x92)), AppLabel::kEMule);  // Kad
}

TEST(PayloadClassifier, EMuleRejectsBadFrames) {
  // Unknown opcode.
  EXPECT_EQ(PayloadClassifier::classify(ed2k(0xe3, 0x10, 0xff)), AppLabel::kUnknown);
  // Zero / absurd length.
  EXPECT_EQ(PayloadClassifier::classify(ed2k(0xe3, 0, 0x01)), AppLabel::kUnknown);
  EXPECT_EQ(PayloadClassifier::classify(ed2k(0xe3, 0x7fffffff, 0x01)), AppLabel::kUnknown);
  // Wrong protocol byte.
  EXPECT_EQ(PayloadClassifier::classify(ed2k(0xe5, 0x10, 0x01)), AppLabel::kUnknown);
  // Too short.
  EXPECT_EQ(PayloadClassifier::classify(std::string_view("\xe3\x01", 2)), AppLabel::kUnknown);
}

TEST(PayloadClassifier, BitTorrentMarkers) {
  const std::string handshake = std::string("\x13") + "BitTorrent protocol";
  EXPECT_EQ(PayloadClassifier::classify(handshake), AppLabel::kBitTorrent);
  EXPECT_EQ(PayloadClassifier::classify("GET /scrape?info_hash=aa HTTP/1.1"),
            AppLabel::kBitTorrent);
  EXPECT_EQ(PayloadClassifier::classify("GET /announce?info_hash=aa HTTP/1.1"),
            AppLabel::kBitTorrent);
  EXPECT_EQ(PayloadClassifier::classify("d1:ad2:id20:abcdefghij0123456789e1:q4:ping"),
            AppLabel::kBitTorrent);
  EXPECT_EQ(PayloadClassifier::classify("d1:rd2:id20:abcdefghij0123456789e"),
            AppLabel::kBitTorrent);
}

TEST(PayloadClassifier, TrackerRequestMustBeAtStart) {
  // The paper matches web requests *beginning with* GET /scrape|/announce.
  EXPECT_EQ(PayloadClassifier::classify("POST /x\r\nGET /scrape"), AppLabel::kUnknown);
}

TEST(PayloadClassifier, NegativesStayUnknown) {
  EXPECT_EQ(PayloadClassifier::classify(""), AppLabel::kUnknown);
  EXPECT_EQ(PayloadClassifier::classify("GET /index.html HTTP/1.1"), AppLabel::kUnknown);
  EXPECT_EQ(PayloadClassifier::classify("EHLO mail.campus.edu"), AppLabel::kUnknown);
  // Nugache-style opaque ciphertext.
  EXPECT_EQ(PayloadClassifier::classify(std::string_view("\x9f\x3a\xc2\x71\x08\x5d", 6)),
            AppLabel::kUnknown);
}

TEST(PayloadClassifier, ToStringNames) {
  EXPECT_EQ(to_string(AppLabel::kUnknown), "unknown");
  EXPECT_EQ(to_string(AppLabel::kGnutella), "gnutella");
  EXPECT_EQ(to_string(AppLabel::kEMule), "emule");
  EXPECT_EQ(to_string(AppLabel::kBitTorrent), "bittorrent");
}

FlowRecord flow(simnet::Ipv4 src, simnet::Ipv4 dst, std::string_view payload,
                bool failed = false) {
  FlowRecord r;
  r.src = src;
  r.dst = dst;
  r.pkts_src = 2;
  r.pkts_dst = failed ? 0 : 2;
  r.state = failed ? FlowState::kAttempted : FlowState::kEstablished;
  r.set_payload(payload);
  return r;
}

TEST(LabelHosts, MajorityLabelWins) {
  const simnet::Ipv4 host(128, 2, 0, 9);
  const simnet::Ipv4 peer(9, 9, 9, 9);
  std::vector<FlowRecord> flows;
  flows.push_back(flow(host, peer, "GNUTELLA CONNECT/0.6"));
  flows.push_back(flow(host, peer, "GNUTELLA CONNECT/0.6"));
  flows.push_back(flow(host, peer, ed2k(0xe3, 0x55, 0x01)));
  const auto labels = PayloadClassifier::label_hosts(flows);
  ASSERT_TRUE(labels.contains(host));
  EXPECT_EQ(labels.at(host), AppLabel::kGnutella);
}

TEST(LabelHosts, MinFlowsThresholdFiltersOneOffs) {
  const simnet::Ipv4 host(128, 2, 0, 9);
  std::vector<FlowRecord> flows = {flow(host, simnet::Ipv4(9, 9, 9, 9), "GNUTELLA")};
  EXPECT_TRUE(PayloadClassifier::label_hosts(flows, 2).empty());
  EXPECT_EQ(PayloadClassifier::label_hosts(flows, 1).size(), 2u);  // host + responding peer
}

TEST(LabelHosts, FailedFlowsDoNotLabelResponder) {
  const simnet::Ipv4 host(128, 2, 0, 9);
  const simnet::Ipv4 dead_peer(9, 9, 9, 10);
  std::vector<FlowRecord> flows = {
      flow(host, dead_peer, std::string("\x13") + "BitTorrent protocol", /*failed=*/true)};
  // UDP-style failed flow still shows the initiator's intent...
  const auto labels = PayloadClassifier::label_hosts(flows);
  EXPECT_TRUE(labels.contains(host));
  EXPECT_FALSE(labels.contains(dead_peer));
}

TEST(LabelHosts, UnknownPayloadsProduceNoLabels) {
  std::vector<FlowRecord> flows = {
      flow(simnet::Ipv4(1, 1, 1, 1), simnet::Ipv4(2, 2, 2, 2), "plain http")};
  EXPECT_TRUE(PayloadClassifier::label_hosts(flows).empty());
}

}  // namespace
}  // namespace tradeplot::netflow
