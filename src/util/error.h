// Library-wide error types.
//
// The library throws exceptions for programmer errors and unrecoverable
// conditions (per C++ Core Guidelines E.2); expected, recoverable outcomes
// (e.g. "this host has too few samples to build a histogram") are expressed
// in return types, not exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace tradeplot::util {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input data (e.g. a corrupt trace file).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Invalid configuration supplied by the caller.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// I/O failure (file missing, short read, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

}  // namespace tradeplot::util
