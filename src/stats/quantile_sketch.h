// Mergeable quantile summaries for the sharded detector's relative
// thresholds.
//
// The paper's τ_vol / τ_churn / data-reduction thresholds are percentiles of
// a feature's distribution over the *whole* live population — the one
// computation a per-shard worker cannot finish locally. QuantileSketch is a
// deterministic Munro–Paterson / KLL-style summary each shard fills over its
// own hosts; the merge stage combines the shards' sketches (associative,
// order-given-deterministic) and reads the threshold off the merged summary.
//
// Structure: level ℓ holds a buffer of at most k values, each standing for
// 2^ℓ original samples. When a buffer fills, it is sorted and every other
// element (alternating parity per level, deterministically) is promoted to
// level ℓ+1 at double weight. Each such compaction displaces any quantile
// query's rank by at most 2^ℓ, so the sketch tracks its own worst-case rank
// error exactly: error_bound() is the sum of 2^ℓ over all compactions
// performed (by this sketch or any sketch merged into it). With capacity k
// over n samples that sum telescopes to at most n·H/k ranks, H ≈ log2(n/k)
// levels — ~1% of n at the default k = 1024 for populations up to millions
// of hosts. Until the first compaction (n ≤ k, and in particular every
// population a single shard of today's eval traces produces) the sketch is
// lossless and quantile() reproduces stats::quantile bit for bit.
//
// Everything is deterministic: no randomized compaction offsets, so equal
// insert/merge sequences give equal summaries, equal thresholds, and equal
// verdicts on every run.
#pragma once

#include <cstdint>
#include <vector>

namespace tradeplot::stats {

class QuantileSketch {
 public:
  /// `k` is the per-level buffer capacity (error/space knob). Values below 8
  /// are clamped to 8; odd values round up to even so a full buffer always
  /// compacts without a remainder.
  explicit QuantileSketch(std::size_t k = 1024);

  /// Inserts one sample. Non-finite samples are a caller bug upstream of the
  /// sketch and are inserted as-is (they would equally poison an exact
  /// percentile).
  void add(double v);

  /// Folds `other` into this sketch. The result summarizes the union of
  /// both inputs; error bounds add. Merging in a fixed order (the sharded
  /// detector merges by ascending shard index) is deterministic.
  void merge(const QuantileSketch& other);

  /// The q-quantile (q clamped to [0,1]) of the summarized distribution,
  /// with type-7 (R/NumPy) interpolation over the weighted summary — the
  /// same convention as stats::quantile, which this reproduces exactly
  /// whenever no compaction has happened (count() <= k). Throws
  /// util::ConfigError on an empty sketch.
  [[nodiscard]] double quantile(double q) const;

  /// Samples summarized (exact, survives merges).
  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Worst-case rank displacement of any quantile() answer, in ranks of the
  /// summarized population: the value returned for q is guaranteed to be an
  /// element (or interpolation of adjacent elements) whose true rank lies
  /// within q·(count-1) ± error_bound(). 0 means the sketch is lossless.
  [[nodiscard]] std::uint64_t error_bound() const { return error_bound_; }

  /// error_bound() / count(): the bound as a fraction of the population
  /// (0 when empty).
  [[nodiscard]] double relative_error_bound() const;

  [[nodiscard]] std::size_t capacity() const { return k_; }
  /// Values currently retained across all levels (space accounting).
  [[nodiscard]] std::size_t retained() const;

 private:
  void compact(std::size_t level);

  std::size_t k_;
  std::uint64_t count_ = 0;
  std::uint64_t error_bound_ = 0;
  std::vector<std::vector<double>> levels_;  // levels_[l]: values of weight 2^l
  std::vector<std::uint8_t> parity_;         // per-level alternating offset
};

}  // namespace tradeplot::stats
