file(REMOVE_RECURSE
  "CMakeFiles/fig12_evasion_delay.dir/fig12_evasion_delay.cpp.o"
  "CMakeFiles/fig12_evasion_delay.dir/fig12_evasion_delay.cpp.o.d"
  "fig12_evasion_delay"
  "fig12_evasion_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_evasion_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
