// Figure 1: cumulative distribution of the average flow size per host in
// each dataset over one day.
//
// Paper shape: the Plotters (Storm, Nugache) contribute far fewer bytes per
// flow than the Traders; the CMU background spans the range in between.
#include "bench/bench_util.h"
#include "detect/features.h"

using namespace tradeplot;

int main() {
  benchx::header("Figure 1 - CDF of average flow size (bytes uploaded per flow) per host");

  const eval::EvalConfig cfg = benchx::paper_eval_config();
  const netflow::TraceSet storm = botnet::generate_storm_trace(cfg.honeynet);
  const netflow::TraceSet nugache = botnet::generate_nugache_trace(cfg.honeynet);
  trace::CampusConfig campus_cfg = cfg.campus;
  const netflow::TraceSet campus = trace::generate_campus_trace(campus_cfg);

  detect::FeatureExtractorConfig fx;
  fx.is_internal = detect::default_internal_predicate;
  const auto campus_features = detect::extract_features(campus, fx);
  const auto storm_features = detect::extract_features(storm, fx);
  const auto nugache_features = detect::extract_features(nugache, fx);

  const auto volume = [](const detect::HostFeatures& f) {
    return f.volume(detect::VolumeMetric::kSentPerFlow);
  };

  std::vector<double> cmu_background;
  std::vector<double> traders;
  for (const auto& [host, f] : campus_features) {
    if (campus.class_of(host) == netflow::HostClass::kTrader) {
      traders.push_back(volume(f));
    } else {
      cmu_background.push_back(volume(f));
    }
  }

  const std::vector<double> grid = {50,   100,  250,   500,   1000,   2500,  5000,
                                    1e4,  5e4,  1e5,   5e5,   1e6};
  benchx::print_grid_header("bytes/flow", grid, true);
  benchx::print_cdf_row("CMU\\Trader", cmu_background, grid);
  benchx::print_cdf_row("Gnutella",
                        benchx::values_of_kind(campus, campus_features,
                                               netflow::HostKind::kGnutella, volume),
                        grid);
  benchx::print_cdf_row("eMule",
                        benchx::values_of_kind(campus, campus_features, netflow::HostKind::kEMule,
                                               volume),
                        grid);
  benchx::print_cdf_row("BitTorrent",
                        benchx::values_of_kind(campus, campus_features,
                                               netflow::HostKind::kBitTorrent, volume),
                        grid);
  benchx::print_cdf_row("Trader(all)", traders, grid);
  benchx::print_cdf_row("Storm",
                        benchx::values_of_kind(storm, storm_features, netflow::HostKind::kStorm,
                                               volume),
                        grid);
  benchx::print_cdf_row("Nugache",
                        benchx::values_of_kind(nugache, nugache_features,
                                               netflow::HostKind::kNugache, volume),
                        grid);

  benchx::paper_reference(
      "Fig. 1: Plotter (Storm/Nugache) avg flow sizes are 'significantly\n"
      "smaller than Traders'; Storm hit ~100% CDF by a few hundred bytes,\n"
      "Traders put most mass at tens of KB to MBs, CMU background spans\n"
      "the middle. Expect: Storm/Nugache CDFs reach ~1.0 far left of the\n"
      "Trader rows; CMU\\Trader in between.");
  return 0;
}
