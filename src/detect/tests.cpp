#include "detect/tests.h"

#include <algorithm>

#include "stats/descriptive.h"
#include "util/error.h"

namespace tradeplot::detect {

namespace {

const HostFeatures& features_of(const FeatureMap& features, simnet::Ipv4 host) {
  const auto it = features.find(host);
  if (it == features.end())
    throw util::ConfigError("host " + host.to_string() + " missing from feature map");
  return it->second;
}

template <typename ValueFn>
double percentile_over(const FeatureMap& features, const HostSet& input, double percentile,
                       ValueFn value) {
  std::vector<double> values;
  values.reserve(input.size());
  for (const simnet::Ipv4 host : input) values.push_back(value(features_of(features, host)));
  if (values.empty()) throw util::ConfigError("percentile over empty host set");
  return stats::quantile(values, percentile);
}

}  // namespace

double data_reduction_threshold(const FeatureMap& features, const HostSet& input,
                                const DataReductionConfig& config) {
  HostSet eligible;
  for (const simnet::Ipv4 host : input)
    if (features_of(features, host).initiated_success()) eligible.push_back(host);
  return percentile_over(features, eligible, config.percentile,
                         [](const HostFeatures& f) { return f.failed_rate(); });
}

HostSet data_reduction(const FeatureMap& features, const HostSet& input,
                       const DataReductionConfig& config) {
  const bool any_eligible = std::any_of(input.begin(), input.end(), [&](simnet::Ipv4 host) {
    return features_of(features, host).initiated_success();
  });
  if (!any_eligible) return {};
  const double threshold = data_reduction_threshold(features, input, config);
  const auto select = [&](bool inclusive) {
    HostSet out;
    for (const simnet::Ipv4 host : input) {
      const HostFeatures& f = features_of(features, host);
      if (!f.initiated_success()) continue;
      const double rate = f.failed_rate();
      if (rate > threshold || (inclusive && rate == threshold)) out.push_back(host);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  switch (config.comparison) {
    case ReductionComparison::kStrict:
      return select(false);
    case ReductionComparison::kInclusive:
      return select(true);
    case ReductionComparison::kStrictThenInclusive:
      break;
  }
  HostSet out = select(false);
  // Strict `>` selects nobody exactly when the maximum eligible rate ties
  // the threshold (e.g. most hosts sharing one failed rate); keep the tied
  // hosts rather than collapsing the pipeline's input to nothing.
  if (out.empty()) out = select(true);
  return out;
}

double volume_threshold(const FeatureMap& features, const HostSet& input,
                        const VolumeTestConfig& config) {
  return percentile_over(features, input, config.percentile,
                         [&](const HostFeatures& f) { return f.volume(config.metric); });
}

HostSet volume_test(const FeatureMap& features, const HostSet& input,
                    const VolumeTestConfig& config) {
  const double tau = volume_threshold(features, input, config);
  HostSet out;
  for (const simnet::Ipv4 host : input)
    if (features_of(features, host).volume(config.metric) < tau) out.push_back(host);
  std::sort(out.begin(), out.end());
  return out;
}

double churn_threshold(const FeatureMap& features, const HostSet& input,
                       const ChurnTestConfig& config) {
  return percentile_over(features, input, config.percentile,
                         [](const HostFeatures& f) { return f.new_ip_fraction(); });
}

HostSet churn_test(const FeatureMap& features, const HostSet& input,
                   const ChurnTestConfig& config) {
  const double tau = churn_threshold(features, input, config);
  HostSet out;
  for (const simnet::Ipv4 host : input)
    if (features_of(features, host).new_ip_fraction() < tau) out.push_back(host);
  std::sort(out.begin(), out.end());
  return out;
}

HostSet host_union(const HostSet& a, const HostSet& b) {
  HostSet out = a;
  out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

HostSet all_hosts(const FeatureMap& features) {
  HostSet out;
  out.reserve(features.size());
  for (const auto& [host, f] : features) out.push_back(host);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tradeplot::detect
