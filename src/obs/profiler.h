// Stage profiler: RAII wall-clock timers for the detection pipeline phases.
//
// Every phase an operator would ask "where does the window's latency go?"
// about gets a Stage enum value; StageTimer records the enclosing scope's
// duration into the `tradeplot_stage_duration_seconds{stage="..."}`
// histogram family on the global registry. When obs::enabled() is false the
// timer never reads the clock and never touches the registry — constructing
// one costs a single branch, so timers can stay in place on hot paths.
//
// ScopedTimer is the generic building block (any histogram, nullable);
// StageTimer binds it to the per-stage family.
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>

#include "obs/metrics.h"

namespace tradeplot::obs {

/// Pipeline phases with per-stage latency histograms. Order is wire-stable
/// (names, not indices, are exported); extend at the end.
enum class Stage : std::uint8_t {
  kParse,              // trace record decoding (batch CSV drain)
  kWindowClose,        // StreamingDetector::emit, end to end
  kDataReduction,      // §V-A failed-rate reduction
  kThetaVol,           // θ_vol volume test
  kThetaChurn,         // θ_churn churn test
  kThetaHm,            // θ_hm end to end
  kSignatureBuild,     // per-host histogram signatures
  kPairwiseDistance,   // the O(n²) distance matrix
  kClustering,         // agglomerative clustering + cut
  kCheckpointSave,
  kCheckpointRestore,
  kPruneIndex,   // pruned-neighbor index build (pivot + grid tiers)
  kBatchDecode,  // one TraceReader::next_batch call (columnar decode)
};
constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kBatchDecode) + 1;

[[nodiscard]] std::string_view to_string(Stage s);

/// The `tradeplot_stage_duration_seconds{stage="..."}` histogram for one
/// stage, registered on the global registry on first use. Call only when
/// obs::enabled() — the lookup itself is lock-free after first registration.
[[nodiscard]] Histogram& stage_histogram(Stage s);

/// Records the scope's duration into `h` at destruction; a null histogram
/// makes the whole object a no-op (no clock reads).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) noexcept
      : h_(h), start_(h != nullptr ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (h_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    h_->observe(std::chrono::duration<double>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

/// ScopedTimer bound to a pipeline stage; no-op while obs is disabled.
class StageTimer : public ScopedTimer {
 public:
  explicit StageTimer(Stage s)
      : ScopedTimer(enabled() ? &stage_histogram(s) : nullptr) {}
};

}  // namespace tradeplot::obs
