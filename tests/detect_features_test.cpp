#include "detect/features.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"

namespace tradeplot::detect {
namespace {

const simnet::Ipv4 kHost(128, 2, 0, 1);
const simnet::Ipv4 kPeerA(1, 0, 0, 1);
const simnet::Ipv4 kPeerB(1, 0, 0, 2);
const simnet::Ipv4 kPeerC(1, 0, 0, 3);

netflow::FlowRecord flow(simnet::Ipv4 src, simnet::Ipv4 dst, double start,
                         std::uint64_t bytes_src = 100, std::uint64_t bytes_dst = 200,
                         bool failed = false) {
  netflow::FlowRecord r;
  r.src = src;
  r.dst = dst;
  r.start_time = start;
  r.end_time = start + 1;
  r.bytes_src = failed ? 0 : bytes_src;
  r.bytes_dst = failed ? 0 : bytes_dst;
  r.pkts_src = 1;
  r.pkts_dst = failed ? 0 : 1;
  r.state = failed ? netflow::FlowState::kAttempted : netflow::FlowState::kEstablished;
  return r;
}

FeatureExtractorConfig config() {
  FeatureExtractorConfig fx;
  fx.is_internal = [](simnet::Ipv4 ip) { return (ip.value() >> 16) == ((128u << 8) | 2u); };
  return fx;
}

TEST(FeatureExtractor, RequiresInternalPredicate) {
  netflow::TraceSet trace;
  EXPECT_THROW((void)extract_features(trace, FeatureExtractorConfig{}), util::ConfigError);
}

TEST(FeatureExtractor, CountsInitiatedAndFailedFlows) {
  netflow::TraceSet trace(0, 21600);
  trace.add_flow(flow(kHost, kPeerA, 0));
  trace.add_flow(flow(kHost, kPeerB, 10, 100, 200, /*failed=*/true));
  trace.add_flow(flow(kHost, kPeerB, 20, 100, 200, /*failed=*/true));
  const auto features = extract_features(trace, config());
  const HostFeatures& f = features.at(kHost);
  EXPECT_EQ(f.flows_initiated, 3u);
  EXPECT_EQ(f.flows_failed, 2u);
  EXPECT_NEAR(f.failed_rate(), 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(f.initiated_success());
}

TEST(FeatureExtractor, HostWithOnlyFailuresHasNoSuccess) {
  netflow::TraceSet trace(0, 21600);
  trace.add_flow(flow(kHost, kPeerA, 0, 0, 0, /*failed=*/true));
  const auto features = extract_features(trace, config());
  EXPECT_FALSE(features.at(kHost).initiated_success());
  EXPECT_DOUBLE_EQ(features.at(kHost).failed_rate(), 1.0);
}

TEST(FeatureExtractor, VolumeMetricsCountBothDirections) {
  netflow::TraceSet trace(0, 21600);
  // Host initiates one flow sending 100 B, and serves one inbound flow on
  // which it (as responder) sends 1000 B.
  trace.add_flow(flow(kHost, kPeerA, 0, 100, 200));
  trace.add_flow(flow(kPeerB, kHost, 10, 50, 1000));
  const auto features = extract_features(trace, config());
  const HostFeatures& f = features.at(kHost);
  EXPECT_EQ(f.flows_received, 1u);
  EXPECT_EQ(f.bytes_sent_initiated, 100u);
  EXPECT_EQ(f.bytes_sent_received, 1000u);
  EXPECT_DOUBLE_EQ(f.volume(VolumeMetric::kSentPerFlow), 1100.0 / 2.0);
  EXPECT_DOUBLE_EQ(f.volume(VolumeMetric::kSentPerInitiatedFlow), 100.0);
  EXPECT_DOUBLE_EQ(f.volume(VolumeMetric::kCumulativeBytes), 1100.0);
}

TEST(FeatureExtractor, FailedInboundFlowsDoNotCount) {
  netflow::TraceSet trace(0, 21600);
  trace.add_flow(flow(kHost, kPeerA, 0));
  trace.add_flow(flow(kPeerB, kHost, 5, 0, 0, /*failed=*/true));
  const auto features = extract_features(trace, config());
  EXPECT_EQ(features.at(kHost).flows_received, 0u);
}

TEST(FeatureExtractor, NewIpFractionUsesFirstHourOfActivity) {
  netflow::TraceSet trace(0, 21600);
  // Host becomes active at t=1000. Grace horizon ends at t=4600.
  trace.add_flow(flow(kHost, kPeerA, 1000));   // within first hour
  trace.add_flow(flow(kHost, kPeerB, 4000));   // still within first hour
  trace.add_flow(flow(kHost, kPeerB, 9000));   // repeat, not new
  trace.add_flow(flow(kHost, kPeerC, 10000));  // first contact after horizon: new
  const auto features = extract_features(trace, config());
  const HostFeatures& f = features.at(kHost);
  EXPECT_EQ(f.distinct_dsts, 3u);
  EXPECT_EQ(f.dsts_after_first_hour, 1u);
  EXPECT_NEAR(f.new_ip_fraction(), 1.0 / 3.0, 1e-12);
}

TEST(FeatureExtractor, NewIpGraceIsConfigurable) {
  netflow::TraceSet trace(0, 21600);
  trace.add_flow(flow(kHost, kPeerA, 0));
  trace.add_flow(flow(kHost, kPeerB, 100));
  FeatureExtractorConfig fx = config();
  fx.new_ip_grace = 50.0;
  const auto features = extract_features(trace, fx);
  EXPECT_NEAR(features.at(kHost).new_ip_fraction(), 0.5, 1e-12);
}

TEST(FeatureExtractor, InterstitialsArePerDestination) {
  netflow::TraceSet trace(0, 21600);
  trace.add_flow(flow(kHost, kPeerA, 0));
  trace.add_flow(flow(kHost, kPeerA, 10));
  trace.add_flow(flow(kHost, kPeerA, 30));
  trace.add_flow(flow(kHost, kPeerB, 5));
  trace.add_flow(flow(kHost, kPeerB, 6));
  const auto features = extract_features(trace, config());
  std::vector<double> gaps = features.at(kHost).interstitials;
  std::sort(gaps.begin(), gaps.end());
  EXPECT_EQ(gaps, (std::vector<double>{1.0, 10.0, 20.0}));
}

TEST(FeatureExtractor, UnsortedFlowsHandled) {
  netflow::TraceSet trace(0, 21600);
  trace.add_flow(flow(kHost, kPeerA, 30));
  trace.add_flow(flow(kHost, kPeerA, 0));
  trace.add_flow(flow(kHost, kPeerA, 10));
  const auto features = extract_features(trace, config());
  std::vector<double> gaps = features.at(kHost).interstitials;
  std::sort(gaps.begin(), gaps.end());
  EXPECT_EQ(gaps, (std::vector<double>{10.0, 20.0}));
  EXPECT_DOUBLE_EQ(features.at(kHost).first_activity, 0.0);
}

TEST(FeatureExtractor, ExternalHostsGetNoFeatures) {
  netflow::TraceSet trace(0, 21600);
  trace.add_flow(flow(kPeerA, kPeerB, 0));
  const auto features = extract_features(trace, config());
  EXPECT_TRUE(features.empty());
}

TEST(FeatureExtractor, ResponderOnlyHostStillAppears) {
  netflow::TraceSet trace(0, 21600);
  trace.add_flow(flow(kPeerA, kHost, 0, 50, 500));
  const auto features = extract_features(trace, config());
  ASSERT_TRUE(features.contains(kHost));
  EXPECT_EQ(features.at(kHost).flows_initiated, 0u);
  EXPECT_EQ(features.at(kHost).flows_received, 1u);
  EXPECT_DOUBLE_EQ(features.at(kHost).new_ip_fraction(), 0.0);
}

}  // namespace
}  // namespace tradeplot::detect
