// Histogram density estimation with Freedman–Diaconis bin width.
//
// The paper (§IV-C) approximates each host's per-destination flow
// interstitial-time distribution with a histogram whose bin width follows
// Freedman & Diaconis (1981):  b = 2 * IQR(v) * |v|^(-1/3),
// chosen to minimise the L2 error between histogram and true density — and,
// importantly for the security argument, data-dependent, so a bot cannot
// trivially predict the binning it must defeat.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tradeplot::stats {

/// A weighted point mass; a normalized histogram is a vector of these
/// (bin centre, bin probability). This is the "signature" form consumed by
/// the Earth Mover's Distance.
struct SignaturePoint {
  double position;
  double weight;
};
using Signature = std::vector<SignaturePoint>;

/// Freedman–Diaconis bin width for the samples. Falls back as follows when
/// degenerate: IQR == 0 -> uses (max-min)/sqrt(n); all samples equal ->
/// returns 1.0 (a single bin captures the point mass regardless of width).
[[nodiscard]] double freedman_diaconis_width(std::span<const double> samples);

class Histogram {
 public:
  /// Builds a histogram over `samples` with the given bin width (> 0).
  /// The first bin starts at min(samples). Throws util::ConfigError on
  /// empty samples or non-positive width.
  Histogram(std::span<const double> samples, double bin_width);

  /// Convenience: Freedman–Diaconis width.
  [[nodiscard]] static Histogram with_fd_width(std::span<const double> samples);

  [[nodiscard]] double bin_width() const { return bin_width_; }
  [[nodiscard]] double origin() const { return origin_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total_count() const { return total_; }
  [[nodiscard]] double bin_center(std::size_t bin) const {
    return origin_ + (static_cast<double>(bin) + 0.5) * bin_width_;
  }

  /// Probability mass per bin (sums to 1).
  [[nodiscard]] std::vector<double> pmf() const;

  /// Normalized (bin centre, probability) signature, omitting empty bins.
  [[nodiscard]] Signature signature() const;

  /// Like signature(), but positions are *bin indices* instead of sample
  /// units. Comparing index signatures of two histograms normalizes each
  /// distribution by its own origin and bin width — two distributions that
  /// are shifts (or, with Freedman-Diaconis widths, rescalings) of each
  /// other become near-identical, which is the robustness property the
  /// paper attributes to its EMD comparison (§IV-C).
  [[nodiscard]] Signature index_signature() const;

 private:
  double origin_ = 0.0;
  double bin_width_ = 1.0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace tradeplot::stats
