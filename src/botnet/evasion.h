// Evasion knobs for the paper's §VI experiments.
//
// Each knob maps to one of the behavioural changes the paper costs out:
//   * volume_multiplier      — inflate per-flow bytes to beat θ_vol
//                              (paper: Storm needs ~5x, Nugache ~1.3x),
//   * extra_new_contact_frac — redirect a fraction of repeat contacts to
//                              never-seen addresses to beat θ_churn
//                              (paper: needs a 1.5x+ boost in new-IP share),
//   * jitter_range d         — add/subtract a uniform(±d) delay before each
//                              connection to a previously-contacted peer to
//                              smear the interstitial-time histogram and
//                              beat θ_hm (paper Fig. 12: needs minutes).
#pragma once

namespace tradeplot::botnet {

struct EvasionConfig {
  double volume_multiplier = 1.0;
  double extra_new_contact_frac = 0.0;
  double jitter_range = 0.0;  // seconds; uniform in [-d, +d]
};

}  // namespace tradeplot::botnet
