file(REMOVE_RECURSE
  "libtp_simnet.a"
)
