#include "netflow/flow_key.h"

namespace tradeplot::netflow {

FlowKey FlowKey::canonical(simnet::Ipv4 src, std::uint16_t sport, simnet::Ipv4 dst,
                           std::uint16_t dport, Protocol proto) {
  FlowKey k;
  k.proto = proto;
  const bool src_first = src < dst || (src == dst && sport <= dport);
  if (src_first) {
    k.ip_a = src;
    k.port_a = sport;
    k.ip_b = dst;
    k.port_b = dport;
  } else {
    k.ip_a = dst;
    k.port_a = dport;
    k.ip_b = src;
    k.port_b = sport;
  }
  return k;
}

}  // namespace tradeplot::netflow
