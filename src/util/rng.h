// Deterministic, seedable random number generation for simulations.
//
// All stochastic behaviour in this library flows through Pcg32 so that every
// experiment is reproducible from a single seed. Pcg32 is the PCG-XSH-RR
// 64/32 generator (O'Neill, 2014): small state, good statistical quality,
// and cheap stream splitting, which we use to give each simulated host an
// independent substream.
#pragma once

#include <cstdint>
#include <vector>

namespace tradeplot::util {

/// PCG-XSH-RR 64/32 pseudo-random generator.
///
/// Satisfies std::uniform_random_bit_generator, so it can also be plugged
/// into <random> distributions, although the library provides its own
/// distribution helpers (see below) to guarantee cross-platform determinism
/// (libstdc++ / libc++ distributions may differ; ours do not).
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Default stream, seeded with a fixed constant (deterministic).
  Pcg32() : Pcg32(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL) {}

  /// Seeds the generator. `seq` selects one of 2^63 independent streams.
  explicit Pcg32(std::uint64_t seed, std::uint64_t seq = 1) { reseed(seed, seq); }

  void reseed(std::uint64_t seed, std::uint64_t seq = 1);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return 0xffffffffu; }

  result_type operator()();

  /// Derives an independent child generator; `tag` distinguishes children.
  /// Used to give each simulated host its own stream so adding or removing
  /// one host does not perturb the randomness seen by the others.
  [[nodiscard]] Pcg32 split(std::uint64_t tag) const;

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal: exp(N(mu, sigma)). Parameters are of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Pareto (Type I) with scale x_m > 0 and shape alpha > 0.
  double pareto(double x_m, double alpha);

  /// Bounded Pareto on [lo, hi] with shape alpha.
  double bounded_pareto(double lo, double hi, double alpha);

  /// Zipf-distributed rank in [1, n] with exponent s >= 0 (s=0: uniform).
  /// Uses rejection-inversion (Hörmann & Derflinger) for O(1) sampling.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element. Requires !v.empty().
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

/// SplitMix64: used to stretch a single user-provided seed into the several
/// 64-bit values needed to seed Pcg32 streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

}  // namespace tradeplot::util
