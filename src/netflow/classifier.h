// Payload-prefix ground-truth classifier.
//
// Implements the paper's §III rules for identifying Traders from the first
// 64 payload bytes of a flow:
//   * Gnutella   — keywords "GNUTELLA", "CONNECT BACK", "LIME"
//   * eMule      — initial byte 0xe3 or 0xc5 followed by known eD2k opcodes
//   * BitTorrent — "BitTorrent protocol" handshake, tracker HTTP requests
//                  "GET /scrape" / "GET /announce", and DHT control messages
//                  containing "d1:ad2:id20" or "d1:rd2:id20"
//
// The classifier is used only to establish ground truth (which hosts are
// Traders); the detection pipeline itself never looks at payload.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netflow/flow_record.h"

namespace tradeplot::netflow {

enum class AppLabel : std::uint8_t {
  kUnknown = 0,
  kGnutella,
  kEMule,
  kBitTorrent,
};

[[nodiscard]] std::string_view to_string(AppLabel label);

class PayloadClassifier {
 public:
  /// Classifies a single flow's payload prefix.
  [[nodiscard]] static AppLabel classify(std::string_view payload);
  [[nodiscard]] static AppLabel classify(const FlowRecord& rec) {
    return classify(rec.payload_view());
  }

  /// Scans a trace and labels each host that *initiated* at least
  /// `min_flows` flows matching one application. Hosts matching several
  /// applications get the label with the most matching flows.
  [[nodiscard]] static std::unordered_map<simnet::Ipv4, AppLabel> label_hosts(
      const std::vector<FlowRecord>& flows, std::size_t min_flows = 1);

 private:
  [[nodiscard]] static bool is_gnutella(std::string_view payload);
  [[nodiscard]] static bool is_emule(std::string_view payload);
  [[nodiscard]] static bool is_bittorrent(std::string_view payload);
};

}  // namespace tradeplot::netflow
