#include "detect/tests.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace tradeplot::detect {
namespace {

// Builds a feature map from compact per-host tuples.
struct HostSpec {
  std::uint8_t last_octet;
  double failed_rate;        // over 10 initiated flows
  double avg_bytes_per_flow; // sent per initiated flow, no received flows
  double new_ip_fraction;    // over 10 distinct destinations
};

FeatureMap build(const std::vector<HostSpec>& specs) {
  FeatureMap features;
  for (const HostSpec& spec : specs) {
    HostFeatures f;
    f.host = simnet::Ipv4(128, 2, 0, spec.last_octet);
    f.flows_initiated = 10;
    f.flows_failed = static_cast<std::size_t>(spec.failed_rate * 10.0 + 0.5);
    f.bytes_sent_initiated = static_cast<std::uint64_t>(spec.avg_bytes_per_flow * 10.0);
    f.distinct_dsts = 10;
    f.dsts_after_first_hour = static_cast<std::size_t>(spec.new_ip_fraction * 10.0 + 0.5);
    features.emplace(f.host, std::move(f));
  }
  return features;
}

simnet::Ipv4 host(std::uint8_t last_octet) { return simnet::Ipv4(128, 2, 0, last_octet); }

TEST(DataReduction, KeepsHostsAboveMedianFailedRate) {
  const FeatureMap features = build({
      {1, 0.0, 100, 0.5},
      {2, 0.1, 100, 0.5},
      {3, 0.2, 100, 0.5},
      {4, 0.5, 100, 0.5},
      {5, 0.9, 100, 0.5},
  });
  const HostSet input = all_hosts(features);
  EXPECT_DOUBLE_EQ(data_reduction_threshold(features, input), 0.2);
  const HostSet kept = data_reduction(features, input);
  EXPECT_EQ(kept, (HostSet{host(4), host(5)}));
}

TEST(DataReduction, DropsHostsWithNoSuccessfulFlows) {
  FeatureMap features = build({{1, 0.1, 100, 0.5}, {2, 0.5, 100, 0.5}});
  HostFeatures all_fail;
  all_fail.host = host(3);
  all_fail.flows_initiated = 5;
  all_fail.flows_failed = 5;
  features.emplace(all_fail.host, all_fail);
  const HostSet kept = data_reduction(features, all_hosts(features));
  // Host 3's 100% failure rate is excluded from both the threshold and the
  // output ("only hosts that initiated successful connections").
  EXPECT_EQ(kept, (HostSet{host(2)}));
}

TEST(DataReduction, PercentileIsConfigurable) {
  const FeatureMap features = build({
      {1, 0.1, 100, 0.5}, {2, 0.2, 100, 0.5}, {3, 0.3, 100, 0.5},
      {4, 0.4, 100, 0.5}, {5, 0.6, 100, 0.5},
  });
  DataReductionConfig config;
  config.percentile = 0.1;  // keep almost everyone
  const HostSet kept = data_reduction(features, all_hosts(features), config);
  EXPECT_EQ(kept.size(), 4u);
}

TEST(DataReduction, SharedFailedRateFallsBackToInclusive) {
  // Regression: when every eligible host shares one failed rate the median
  // equals it, strict `>` kept nobody, and find_plotters short-circuited
  // to an empty result. The default comparison now falls back to `>=` in
  // exactly that degenerate case.
  const FeatureMap features = build({
      {1, 0.4, 100, 0.5},
      {2, 0.4, 100, 0.5},
      {3, 0.4, 100, 0.5},
      {4, 0.4, 100, 0.5},
  });
  const HostSet input = all_hosts(features);
  EXPECT_EQ(data_reduction(features, input), input);  // default: fallback kicks in
  DataReductionConfig strict;
  strict.comparison = ReductionComparison::kStrict;
  EXPECT_EQ(data_reduction(features, input, strict), HostSet{});  // the paper, literally
}

TEST(DataReduction, ComparisonModesOnMixedRates) {
  const FeatureMap features = build({
      {1, 0.1, 100, 0.5},
      {2, 0.3, 100, 0.5},
      {3, 0.3, 100, 0.5},
      {4, 0.3, 100, 0.5},
      {5, 0.9, 100, 0.5},
  });
  const HostSet input = all_hosts(features);
  EXPECT_DOUBLE_EQ(data_reduction_threshold(features, input), 0.3);
  // Strict selection is non-empty (host 5), so the default does NOT fall
  // back: hosts tying the median stay excluded.
  EXPECT_EQ(data_reduction(features, input), (HostSet{host(5)}));
  DataReductionConfig inclusive;
  inclusive.comparison = ReductionComparison::kInclusive;
  EXPECT_EQ(data_reduction(features, input, inclusive),
            (HostSet{host(2), host(3), host(4), host(5)}));
}

TEST(VolumeTest, KeepsLowVolumeHosts) {
  const FeatureMap features = build({
      {1, 0.5, 50, 0.5},     // bot-like: tiny flows
      {2, 0.5, 2000, 0.5},   // web-ish
      {3, 0.5, 5000, 0.5},
      {4, 0.5, 100000, 0.5}, // trader-like
      {5, 0.5, 300000, 0.5},
  });
  const HostSet input = all_hosts(features);
  EXPECT_DOUBLE_EQ(volume_threshold(features, input, {}), 5000.0);
  const HostSet kept = volume_test(features, input, {});
  EXPECT_EQ(kept, (HostSet{host(1), host(2)}));
}

TEST(VolumeTest, MetricChoiceMatters) {
  FeatureMap features;
  HostFeatures chatty;  // many tiny flows: low avg, high cumulative
  chatty.host = host(1);
  chatty.flows_initiated = 1000;
  chatty.bytes_sent_initiated = 100000;  // 100 B per flow
  features.emplace(chatty.host, chatty);
  HostFeatures quiet;  // one large flow
  quiet.host = host(2);
  quiet.flows_initiated = 1;
  quiet.bytes_sent_initiated = 50000;
  features.emplace(quiet.host, quiet);

  EXPECT_LT(features.at(host(1)).volume(VolumeMetric::kSentPerFlow),
            features.at(host(2)).volume(VolumeMetric::kSentPerFlow));
  EXPECT_GT(features.at(host(1)).volume(VolumeMetric::kCumulativeBytes),
            features.at(host(2)).volume(VolumeMetric::kCumulativeBytes));
}

TEST(ChurnTest, KeepsLowChurnHosts) {
  const FeatureMap features = build({
      {1, 0.5, 100, 0.05},  // bot-like: mostly repeat contacts
      {2, 0.5, 100, 0.30},
      {3, 0.5, 100, 0.60},
      {4, 0.5, 100, 0.90},  // trader-like
      {5, 0.5, 100, 1.00},
  });
  const HostSet input = all_hosts(features);
  EXPECT_DOUBLE_EQ(churn_threshold(features, input, {}), 0.6);
  const HostSet kept = churn_test(features, input, {});
  EXPECT_EQ(kept, (HostSet{host(1), host(2)}));
}

TEST(Tests, ThrowOnUnknownHost) {
  const FeatureMap features = build({{1, 0.5, 100, 0.5}});
  const HostSet bogus = {host(99)};
  EXPECT_THROW((void)volume_test(features, bogus, {}), util::ConfigError);
  EXPECT_THROW((void)churn_test(features, bogus, {}), util::ConfigError);
  EXPECT_THROW((void)data_reduction(features, bogus), util::ConfigError);
}

TEST(Tests, EmptyInputThrows) {
  const FeatureMap features;
  EXPECT_THROW((void)volume_threshold(features, {}, {}), util::ConfigError);
}

TEST(HostUnion, SortedUniqueMerge) {
  const HostSet a = {host(3), host(1)};
  const HostSet b = {host(2), host(3)};
  EXPECT_EQ(host_union(a, b), (HostSet{host(1), host(2), host(3)}));
  EXPECT_EQ(host_union({}, {}), HostSet{});
}

TEST(AllHosts, SortedListOfFeatureMapKeys) {
  const FeatureMap features = build({{5, 0, 0, 0}, {1, 0, 0, 0}, {3, 0, 0, 0}});
  EXPECT_EQ(all_hosts(features), (HostSet{host(1), host(3), host(5)}));
}

// Property: the percentile threshold adapts — scaling every host's volume
// by a constant leaves the kept *set* unchanged (the paper's evasion
// argument in miniature).
class RelativeThresholdProperty : public ::testing::TestWithParam<double> {};

TEST_P(RelativeThresholdProperty, VolumeTestIsScaleInvariant) {
  const double scale = GetParam();
  std::vector<HostSpec> specs;
  for (std::uint8_t i = 1; i <= 20; ++i) {
    specs.push_back({i, 0.5, i * 137.0, 0.5});
  }
  const FeatureMap base = build(specs);
  for (auto& spec : specs) spec.avg_bytes_per_flow *= scale;
  const FeatureMap scaled = build(specs);
  EXPECT_EQ(volume_test(base, all_hosts(base), {}),
            volume_test(scaled, all_hosts(scaled), {}));
}

INSTANTIATE_TEST_SUITE_P(Scales, RelativeThresholdProperty,
                         ::testing::Values(0.5, 2.0, 10.0, 100.0));

}  // namespace
}  // namespace tradeplot::detect
