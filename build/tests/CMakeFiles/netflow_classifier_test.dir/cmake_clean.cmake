file(REMOVE_RECURSE
  "CMakeFiles/netflow_classifier_test.dir/netflow_classifier_test.cpp.o"
  "CMakeFiles/netflow_classifier_test.dir/netflow_classifier_test.cpp.o.d"
  "netflow_classifier_test"
  "netflow_classifier_test.pdb"
  "netflow_classifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netflow_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
