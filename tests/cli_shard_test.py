#!/usr/bin/env python3
"""CLI-level regression for the sharded detector surface.

Drives the built binaries end to end:

  1. --shards argument validation: zero, negative, non-numeric, and missing
     values must exit 2 with the pinned "bad --shards" diagnostic and must
     not start streaming;
  2. trace_tool shard: partitions a trace into per-shard files by the same
     consistent hash the detector uses, conserving every flow (the printed
     "N flows in, N flows out" accounting is parsed and cross-checked
     against the produced files), and rejects a bad --shards the same way;
  3. --shards 1 is the bit-identity contract at the CLI: its full stdout
     (banner aside, which is identical at one shard anyway) must equal the
     legacy single-detector run's byte for byte;
  4. --shards 4 smoke: streams the same trace through the merged pipeline
     and still exits 0 with a summary line.

Run by ctest as CliShardTest; paths to the binaries arrive as flags.
"""

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path


def run(cmd, **kwargs):
    print("+", " ".join(str(c) for c in cmd), flush=True)
    return subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, timeout=240, **kwargs
    )


def check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--campus-monitor", required=True, type=Path)
    parser.add_argument("--trace-tool", required=True, type=Path)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="tp_cli_shard_") as tmp:
        tmp = Path(tmp)
        trace = tmp / "trace.csv"
        r = run([args.trace_tool, "generate", trace, "1", "1800"])
        check(r.returncode == 0, f"trace_tool generate failed: {r.stderr}")

        # 1. Argument validation: the detector must never start on a bad N.
        for bad in ["0", "-3", "abc", "4x"]:
            r = run([args.campus_monitor, "--stream", trace, "--shards", bad])
            check(r.returncode == 2, f"--shards {bad}: expected rc 2, got {r.returncode}")
            check("bad --shards" in r.stderr, f"--shards {bad}: missing diagnostic: {r.stderr}")
            check("streaming" not in r.stdout, f"--shards {bad}: streaming started anyway")
        r = run([args.campus_monitor, "--stream", trace, "--shards"])
        check(r.returncode == 2, f"trailing --shards: expected rc 2, got {r.returncode}")

        # 2. trace_tool shard: conservation of flows across the partition.
        out = tmp / "part.csv"
        r = run([args.trace_tool, "shard", trace, out, "--shards", "4"])
        check(r.returncode == 0, f"trace_tool shard failed: {r.stderr}\n{r.stdout}")
        m = re.search(r"(\d+) flows in, (\d+) flows out across (\d+) shard file", r.stdout)
        check(m, f"missing accounting line in: {r.stdout}")
        check(m.group(1) == m.group(2), f"flows not conserved: {m.group(1)} != {m.group(2)}")
        check(m.group(3) == "4", f"expected 4 shard files, got {m.group(3)}")
        shard_files = sorted(tmp.glob("part.shard*.csv"))
        check(len(shard_files) == 4, f"expected 4 shard files on disk, got {shard_files}")
        for bad in ["0", "-1", "many"]:
            r = run([args.trace_tool, "shard", trace, out, "--shards", bad])
            check(r.returncode == 2, f"shard --shards {bad}: expected rc 2, got {r.returncode}")
            check("bad --shards" in r.stderr, f"shard --shards {bad}: missing diagnostic")

        # 3. --shards 1 == legacy single detector, byte for byte.
        legacy = run([args.campus_monitor, "--stream", trace, "1800"])
        check(legacy.returncode == 0, f"legacy stream failed: {legacy.stderr}")
        one = run([args.campus_monitor, "--stream", trace, "1800", "--shards", "1"])
        check(one.returncode == 0, f"--shards 1 stream failed: {one.stderr}")
        check(
            one.stdout == legacy.stdout,
            "--shards 1 output differs from the single detector:\n"
            f"--- legacy ---\n{legacy.stdout}\n--- shards 1 ---\n{one.stdout}",
        )

        # 4. Merged pipeline smoke at N > 1.
        four = run([args.campus_monitor, "--stream", trace, "1800", "--shards", "4"])
        check(four.returncode == 0, f"--shards 4 stream failed: {four.stderr}")
        check("4 worker shards" in four.stdout, f"missing shard banner: {four.stdout}")
        check("=== summary:" in four.stdout, f"missing summary: {four.stdout}")

    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
