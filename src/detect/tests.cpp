#include "detect/tests.h"

#include <algorithm>

#include "stats/descriptive.h"
#include "util/error.h"

namespace tradeplot::detect {

namespace {

const HostFeatures& features_of(const FeatureMap& features, simnet::Ipv4 host) {
  const auto it = features.find(host);
  if (it == features.end())
    throw util::ConfigError("host " + host.to_string() + " missing from feature map");
  return it->second;
}

/// Materializes one scalar test's feature values as a dense column parallel
/// to `input` — the single feature-map pass each test makes. The percentile
/// and the selection sweep then scan the column instead of re-walking the
/// hash map per host (same values, same order: bit-identical thresholds and
/// selections).
template <typename ValueFn>
std::vector<double> value_column(const FeatureMap& features, const HostSet& input,
                                 ValueFn value) {
  std::vector<double> values;
  values.reserve(input.size());
  for (const simnet::Ipv4 host : input) values.push_back(value(features_of(features, host)));
  return values;
}

double percentile_of(const std::vector<double>& values, double percentile) {
  if (values.empty()) throw util::ConfigError("percentile over empty host set");
  return stats::quantile(values, percentile);
}

/// Hosts whose column value is strictly below `tau`, sorted.
HostSet select_below(const HostSet& input, const std::vector<double>& values, double tau) {
  HostSet out;
  for (std::size_t i = 0; i < input.size(); ++i)
    if (values[i] < tau) out.push_back(input[i]);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

namespace {

/// One pass over the feature map for the reduction test, SoA-style:
/// eligibility flags and failed rates parallel to `input`, plus the packed
/// eligible-only rate column the threshold percentile runs over.
struct ReductionColumns {
  std::vector<unsigned char> eligible;  // input[i] has initiated_success()
  std::vector<double> rates;            // failed_rate of input[i] (0 if not eligible)
  std::vector<double> eligible_rates;   // rates of eligible hosts, input order
};

ReductionColumns reduction_columns(const FeatureMap& features, const HostSet& input) {
  ReductionColumns c;
  c.eligible.reserve(input.size());
  c.rates.reserve(input.size());
  for (const simnet::Ipv4 host : input) {
    const HostFeatures& f = features_of(features, host);
    const bool ok = f.initiated_success();
    const double rate = ok ? f.failed_rate() : 0.0;
    c.eligible.push_back(ok);
    c.rates.push_back(rate);
    if (ok) c.eligible_rates.push_back(rate);
  }
  return c;
}

}  // namespace

double data_reduction_threshold(const FeatureMap& features, const HostSet& input,
                                const DataReductionConfig& config) {
  return percentile_of(reduction_columns(features, input).eligible_rates, config.percentile);
}

HostSet data_reduction(const FeatureMap& features, const HostSet& input,
                       const DataReductionConfig& config) {
  const ReductionColumns c = reduction_columns(features, input);
  if (c.eligible_rates.empty()) return {};
  const double threshold = percentile_of(c.eligible_rates, config.percentile);
  const auto select = [&](bool inclusive) {
    HostSet out;
    for (std::size_t i = 0; i < input.size(); ++i) {
      if (!c.eligible[i]) continue;
      const double rate = c.rates[i];
      if (rate > threshold || (inclusive && rate == threshold)) out.push_back(input[i]);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  switch (config.comparison) {
    case ReductionComparison::kStrict:
      return select(false);
    case ReductionComparison::kInclusive:
      return select(true);
    case ReductionComparison::kStrictThenInclusive:
      break;
  }
  HostSet out = select(false);
  // Strict `>` selects nobody exactly when the maximum eligible rate ties
  // the threshold (e.g. most hosts sharing one failed rate); keep the tied
  // hosts rather than collapsing the pipeline's input to nothing.
  if (out.empty()) out = select(true);
  return out;
}

double volume_threshold(const FeatureMap& features, const HostSet& input,
                        const VolumeTestConfig& config) {
  return percentile_of(value_column(features, input,
                                    [&](const HostFeatures& f) { return f.volume(config.metric); }),
                       config.percentile);
}

HostSet volume_test(const FeatureMap& features, const HostSet& input,
                    const VolumeTestConfig& config) {
  const std::vector<double> values = value_column(
      features, input, [&](const HostFeatures& f) { return f.volume(config.metric); });
  const double tau = percentile_of(values, config.percentile);
  return select_below(input, values, tau);
}

double churn_threshold(const FeatureMap& features, const HostSet& input,
                       const ChurnTestConfig& config) {
  return percentile_of(
      value_column(features, input, [](const HostFeatures& f) { return f.new_ip_fraction(); }),
      config.percentile);
}

HostSet churn_test(const FeatureMap& features, const HostSet& input,
                   const ChurnTestConfig& config) {
  const std::vector<double> values = value_column(
      features, input, [](const HostFeatures& f) { return f.new_ip_fraction(); });
  const double tau = percentile_of(values, config.percentile);
  return select_below(input, values, tau);
}

HostSet host_union(const HostSet& a, const HostSet& b) {
  HostSet out = a;
  out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

HostSet all_hosts(const FeatureMap& features) {
  HostSet out;
  out.reserve(features.size());
  for (const auto& [host, f] : features) out.push_back(host);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tradeplot::detect
