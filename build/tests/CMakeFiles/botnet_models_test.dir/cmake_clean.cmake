file(REMOVE_RECURSE
  "CMakeFiles/botnet_models_test.dir/botnet_models_test.cpp.o"
  "CMakeFiles/botnet_models_test.dir/botnet_models_test.cpp.o.d"
  "botnet_models_test"
  "botnet_models_test.pdb"
  "botnet_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botnet_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
