#include "detect/find_plotters.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace tradeplot::detect {
namespace {

simnet::Ipv4 host(std::uint8_t last_octet) { return simnet::Ipv4(128, 2, 0, last_octet); }

// A synthetic population with the paper's four archetypes, expressed
// directly in feature space.
FeatureMap archetypes(util::Pcg32& rng) {
  FeatureMap features;
  const auto add = [&](std::uint8_t octet, std::size_t flows, double failed, double bytes_flow,
                       double new_frac, std::vector<double> gaps) {
    HostFeatures f;
    f.host = host(octet);
    f.flows_initiated = flows;
    f.flows_failed = static_cast<std::size_t>(failed * static_cast<double>(flows));
    f.bytes_sent_initiated =
        static_cast<std::uint64_t>(bytes_flow * static_cast<double>(flows));
    f.distinct_dsts = 100;
    f.dsts_after_first_hour = static_cast<std::size_t>(new_frac * 100.0);
    f.interstitials = std::move(gaps);
    features.emplace(f.host, std::move(f));
  };

  const auto machine = [&rng](double period, std::size_t n) {
    std::vector<double> gaps(n);
    for (double& g : gaps) g = period + rng.uniform(-0.5, 0.5);
    return gaps;
  };
  const auto human = [&rng](double mu, std::size_t n) {
    std::vector<double> gaps(n);
    for (double& g : gaps) g = rng.lognormal(mu, 1.0);
    return gaps;
  };

  // Bots (octets 1-6): high failure, tiny flows, low churn, shared timer.
  for (std::uint8_t b = 1; b <= 6; ++b) {
    add(b, 2000, 0.4, 150, 0.10, machine(25.0, 800));
  }
  // Traders (octets 10-19): high failure, huge flows, high churn, human gaps.
  for (std::uint8_t t = 10; t < 20; ++t) {
    add(t, 300, 0.35, 200000, 0.85, human(5.0 + (t % 3) * 0.5, 60));
  }
  // Clean web hosts (octets 30-59): low failure -> reduced away.
  for (std::uint8_t w = 30; w < 60; ++w) {
    add(w, 400, 0.02, 1500, 0.40, human(4.0 + (w % 7) * 0.3, 300));
  }
  // Flaky misc hosts (octets 70-89): high failure, low-ish volume and
  // churn spread around the thresholds so a realistic share of them lands
  // in theta_hm's input alongside the bots, with human timing at diverse
  // scales.
  for (std::uint8_t m = 70; m < 90; ++m) {
    add(m, 150, 0.5, 300.0 + (m % 10) * 160.0, 0.10 + (m % 10) * 0.05,
        human(4.5 + (m % 10) * 0.4, 120));
  }
  return features;
}

TEST(FindPlotters, FlagsBotsNotTradersOnArchetypePopulation) {
  util::Pcg32 rng(1);
  const FeatureMap features = archetypes(rng);
  const FindPlottersResult result = find_plotters(features);

  // All six bots flagged.
  for (std::uint8_t b = 1; b <= 6; ++b) {
    EXPECT_TRUE(std::binary_search(result.plotters.begin(), result.plotters.end(), host(b)))
        << "bot " << int(b);
  }
  // No trader flagged (their volume and churn keep them out of theta_hm's
  // input, and their timing is human anyway).
  for (std::uint8_t t = 10; t < 20; ++t) {
    EXPECT_FALSE(std::binary_search(result.plotters.begin(), result.plotters.end(), host(t)));
  }
  // False positives among the 50 background hosts stay small.
  std::size_t fp = 0;
  for (const simnet::Ipv4 ip : result.plotters) {
    const auto octet = ip.value() & 0xff;
    if (octet >= 30) ++fp;
  }
  EXPECT_LE(fp, 5u);
}

TEST(FindPlotters, StagesNest) {
  util::Pcg32 rng(2);
  const FeatureMap features = archetypes(rng);
  const FindPlottersResult result = find_plotters(features);
  const auto is_subset = [](const HostSet& small, const HostSet& big) {
    return std::includes(big.begin(), big.end(), small.begin(), small.end());
  };
  EXPECT_TRUE(is_subset(result.reduced, result.input));
  EXPECT_TRUE(is_subset(result.s_vol, result.reduced));
  EXPECT_TRUE(is_subset(result.s_churn, result.reduced));
  EXPECT_TRUE(is_subset(result.s_vol, result.vol_or_churn));
  EXPECT_TRUE(is_subset(result.s_churn, result.vol_or_churn));
  EXPECT_TRUE(is_subset(result.plotters, result.vol_or_churn));
  EXPECT_EQ(result.plotters, result.hm.flagged);
}

TEST(FindPlotters, CleanHostsAreReducedAway) {
  util::Pcg32 rng(3);
  const FeatureMap features = archetypes(rng);
  const FindPlottersResult result = find_plotters(features);
  for (std::uint8_t w = 30; w < 60; ++w) {
    EXPECT_FALSE(std::binary_search(result.reduced.begin(), result.reduced.end(), host(w)))
        << "clean host " << int(w);
  }
}

TEST(FindPlotters, ThresholdPercentilesArePluggable) {
  util::Pcg32 rng(4);
  const FeatureMap features = archetypes(rng);
  FindPlottersConfig strict;
  strict.volume.percentile = 0.1;
  strict.churn.percentile = 0.1;
  const FindPlottersResult strict_result = find_plotters(features, strict);
  const FindPlottersResult default_result = find_plotters(features);
  EXPECT_LE(strict_result.vol_or_churn.size(), default_result.vol_or_churn.size());
}

}  // namespace
}  // namespace tradeplot::detect
