// CampusSimulator: generates one monitored window of border flow records
// for a university campus network (the stand-in for the paper's CMU
// dataset — see DESIGN.md §2 for the substitution argument).
//
// The simulated campus has two /16 subnets (like CMU's) populated with a
// configurable mix of background hosts (web clients/servers, mail, DNS,
// NTP, scanners, idle machines) and Traders (Gnutella, eMule, BitTorrent —
// including tracker-web-only torrent users). eMule and BitTorrent hosts
// share per-protocol Kademlia overlays so their DHT probes exhibit genuine
// lookup/churn dynamics.
//
// Everything is driven by one seed; the same seed reproduces the same trace
// byte for byte.
#pragma once

#include <cstdint>
#include <memory>

#include "netflow/trace_set.h"
#include "p2p/bittorrent.h"
#include "p2p/emule.h"
#include "p2p/gnutella.h"

namespace tradeplot::trace {

struct CampusConfig {
  // Monitoring window: the paper records 9 a.m. to 3 p.m. (6 hours).
  double window = 6 * 3600.0;
  std::uint64_t seed = 1;

  // Background population.
  int web_clients = 700;
  int idle_hosts = 250;
  int dns_clients = 100;
  int ntp_clients = 40;
  int web_servers = 18;
  int mail_servers = 12;
  int scanners = 4;

  // Traders.
  int gnutella_hosts = 25;
  int emule_hosts = 22;
  int bittorrent_hosts = 30;
  int bittorrent_web_only = 8;

  // Shared DHT overlays.
  int kad_overlay_size = 500;
  int bt_overlay_size = 700;
  double overlay_offline_frac = 0.3;

  // Per-protocol knobs (applied to every host of that protocol).
  p2p::GnutellaConfig gnutella{};
  p2p::EMuleConfig emule{};
  p2p::BitTorrentConfig bittorrent{};
};

/// Runs the simulation and returns the window's flows plus ground truth.
[[nodiscard]] netflow::TraceSet generate_campus_trace(const CampusConfig& config);

/// The campus's internal prefixes (two /16s, mirroring CMU).
[[nodiscard]] const std::vector<simnet::Subnet>& campus_subnets();

/// True if `addr` is inside the campus (the administrator's purview).
[[nodiscard]] bool campus_internal(simnet::Ipv4 addr);

}  // namespace tradeplot::trace
