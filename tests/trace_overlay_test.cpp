#include "trace/overlay.h"

#include "trace/campus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.h"

namespace tradeplot::trace {
namespace {

netflow::FlowRecord flow(simnet::Ipv4 src, simnet::Ipv4 dst, double start) {
  netflow::FlowRecord r;
  r.src = src;
  r.dst = dst;
  r.start_time = start;
  r.end_time = start + 1;
  r.pkts_src = 1;
  r.pkts_dst = 1;
  r.bytes_src = 10;
  return r;
}

netflow::TraceSet campus_with_hosts(int hosts) {
  netflow::TraceSet campus(0.0, 21600.0);
  for (int i = 1; i <= hosts; ++i) {
    const simnet::Ipv4 ip(128, 2, 0, static_cast<std::uint8_t>(i));
    campus.set_truth(ip, netflow::HostKind::kWebClient);
    campus.add_flow(flow(ip, simnet::Ipv4(1, 2, 3, 4), i * 10.0));
  }
  // External hosts also initiate flows (inbound connections); they must
  // never be chosen as bot carriers.
  campus.add_flow(flow(simnet::Ipv4(9, 9, 9, 9), simnet::Ipv4(128, 2, 0, 1), 5.0));
  return campus;
}

netflow::TraceSet bot_trace(int bots, double duration = 86400.0) {
  netflow::TraceSet bots_trace(0.0, duration);
  for (int b = 1; b <= bots; ++b) {
    const simnet::Ipv4 bot(10, 99, 0, static_cast<std::uint8_t>(b));
    bots_trace.set_truth(bot, netflow::HostKind::kStorm);
    for (double t = 0; t < duration; t += 600.0) {
      bots_trace.add_flow(flow(bot, simnet::Ipv4(7, 7, 7, static_cast<std::uint8_t>(b)), t));
    }
  }
  return bots_trace;
}

TEST(Overlay, AssignsEachBotToDistinctInternalHost) {
  const auto campus = campus_with_hosts(20);
  const auto bots = bot_trace(5);
  util::Pcg32 rng(1);
  const OverlayResult result = overlay_bots(campus, bots, rng);
  EXPECT_EQ(result.bot_hosts.size(), 5u);
  const std::set<simnet::Ipv4> unique(result.bot_hosts.begin(), result.bot_hosts.end());
  EXPECT_EQ(unique.size(), 5u);
  for (const simnet::Ipv4 host : result.bot_hosts) {
    EXPECT_TRUE(campus_internal(host));
    EXPECT_EQ(result.combined.kind_of(host), netflow::HostKind::kStorm);
  }
}

TEST(Overlay, BotFlowsAreRehomedAndShiftedIntoWindow) {
  const auto campus = campus_with_hosts(20);
  const auto bots = bot_trace(3);
  util::Pcg32 rng(2);
  const OverlayResult result = overlay_bots(campus, bots, rng);
  std::size_t bot_flows = 0;
  for (const auto& r : result.combined.flows()) {
    EXPECT_GE(r.start_time, result.combined.window_start());
    EXPECT_LT(r.start_time, result.combined.window_end() + 1e-9);
    if ((r.dst.value() >> 8) == ((7u << 16) | (7u << 8) | 7u)) ++bot_flows;  // 7.7.7.x
  }
  // A 6-hour slice of a 24-hour trace with one flow per 10 min per bot.
  EXPECT_EQ(bot_flows, 3u * 36u);
  // No honeynet addresses survive re-homing.
  for (const auto& r : result.combined.flows()) {
    EXPECT_NE((r.src.value() >> 16), ((10u << 8) | 99u));
  }
}

TEST(Overlay, CarrierKeepsItsOwnTraffic) {
  const auto campus = campus_with_hosts(10);
  const auto bots = bot_trace(1);
  util::Pcg32 rng(3);
  const OverlayResult result = overlay_bots(campus, bots, rng);
  const simnet::Ipv4 carrier = result.bot_hosts[0];
  int own = 0, bot = 0;
  for (const auto& r : result.combined.flows()) {
    if (r.src != carrier) continue;
    if (r.dst == simnet::Ipv4(1, 2, 3, 4)) ++own;
    else ++bot;
  }
  EXPECT_EQ(own, 1);
  EXPECT_GT(bot, 0);
}

TEST(Overlay, ExcludedHostsAreNeverCarriers) {
  const auto campus = campus_with_hosts(6);
  const auto bots = bot_trace(5);
  OverlayOptions options;
  options.exclude_hosts = {simnet::Ipv4(128, 2, 0, 1)};
  util::Pcg32 rng(4);
  const OverlayResult result = overlay_bots(campus, bots, rng, options);
  for (const simnet::Ipv4 host : result.bot_hosts) {
    EXPECT_NE(host, simnet::Ipv4(128, 2, 0, 1));
  }
}

TEST(Overlay, ThrowsWhenMoreBotsThanHosts) {
  const auto campus = campus_with_hosts(3);
  const auto bots = bot_trace(10);
  util::Pcg32 rng(5);
  EXPECT_THROW((void)overlay_bots(campus, bots, rng), util::ConfigError);
}

TEST(Overlay, EmptyBotTraceIsNoOp) {
  const auto campus = campus_with_hosts(5);
  netflow::TraceSet empty;
  util::Pcg32 rng(6);
  const OverlayResult result = overlay_bots(campus, empty, rng);
  EXPECT_TRUE(result.bot_hosts.empty());
  EXPECT_EQ(result.combined.flows().size(), campus.flows().size());
}

TEST(Overlay, FixedSliceStartsAtTraceBeginning) {
  const auto campus = campus_with_hosts(5);
  auto bots = bot_trace(1);
  OverlayOptions options;
  options.random_slice = false;
  util::Pcg32 rng(7);
  const OverlayResult result = overlay_bots(campus, bots, rng, options);
  // With slice at 0 and flows every 600 s, the first re-homed flow lands at 0.
  double first_bot_flow = 1e18;
  for (const auto& r : result.combined.flows()) {
    if (r.dst == simnet::Ipv4(7, 7, 7, 1)) first_bot_flow = std::min(first_bot_flow, r.start_time);
  }
  EXPECT_DOUBLE_EQ(first_bot_flow, 0.0);
}

TEST(Overlay, DeterministicGivenSameRngState) {
  const auto campus = campus_with_hosts(15);
  const auto bots = bot_trace(4);
  util::Pcg32 rng_a(8);
  util::Pcg32 rng_b(8);
  const auto a = overlay_bots(campus, bots, rng_a);
  const auto b = overlay_bots(campus, bots, rng_b);
  EXPECT_EQ(a.bot_hosts, b.bot_hosts);
  EXPECT_EQ(a.combined.flows().size(), b.combined.flows().size());
}

}  // namespace
}  // namespace tradeplot::trace
