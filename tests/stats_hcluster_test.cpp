#include "stats/hcluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::stats {
namespace {

std::vector<double> matrix(std::size_t n, std::initializer_list<double> upper) {
  std::vector<double> d(n * n, 0.0);
  auto it = upper.begin();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d[i * n + j] = *it;
      d[j * n + i] = *it;
      ++it;
    }
  }
  return d;
}

TEST(Upgma, TwoItems) {
  const auto d = matrix(2, {3.0});
  const Dendrogram dend = agglomerative_average_linkage(d, 2);
  ASSERT_EQ(dend.merges().size(), 1u);
  EXPECT_DOUBLE_EQ(dend.merges()[0].height, 3.0);
  EXPECT_EQ(dend.merges()[0].size, 2u);
}

TEST(Upgma, ClassicThreeItemAverageLinkage) {
  // d(0,1)=2 (merge first); d(0,2)=8, d(1,2)=4 -> avg to {0,1} is 6.
  const auto d = matrix(3, {2.0, 8.0, 4.0});
  const Dendrogram dend = agglomerative_average_linkage(d, 3);
  ASSERT_EQ(dend.merges().size(), 2u);
  EXPECT_DOUBLE_EQ(dend.merges()[0].height, 2.0);
  EXPECT_DOUBLE_EQ(dend.merges()[1].height, 6.0);
  EXPECT_EQ(dend.merges()[1].size, 3u);
}

TEST(Upgma, WeightedAverageUsesClusterSizes) {
  // Items 0,1,2 mutually close (will merge into a 3-cluster), item 3 far.
  // d(3, {0,1,2}) must be the arithmetic mean of the three leaf distances.
  const auto d = matrix(4, {1.0, 1.0, 30.0,   // d01 d02 d03
                            1.0, 60.0,        // d12 d13
                            90.0});           // d23
  const Dendrogram dend = agglomerative_average_linkage(d, 4);
  ASSERT_EQ(dend.merges().size(), 3u);
  EXPECT_DOUBLE_EQ(dend.merges()[2].height, 60.0);  // (30+60+90)/3
}

TEST(Upgma, SingleLeafDendrogram) {
  const Dendrogram dend = agglomerative_average_linkage(std::vector<double>{0.0}, 1);
  EXPECT_EQ(dend.leaf_count(), 1u);
  EXPECT_TRUE(dend.merges().empty());
  EXPECT_EQ(dend.cut_top_fraction(0.05).size(), 1u);
}

TEST(Upgma, Errors) {
  EXPECT_THROW((void)agglomerative_average_linkage(std::vector<double>{}, 0), util::ConfigError);
  EXPECT_THROW((void)agglomerative_average_linkage(std::vector<double>{0.0, 1.0}, 2),
               util::ConfigError);
}

TEST(Dendrogram, CutZeroFractionKeepsOneCluster) {
  const auto d = matrix(3, {1.0, 5.0, 4.0});
  const Dendrogram dend = agglomerative_average_linkage(d, 3);
  const auto clusters = dend.cut_top_fraction(0.0);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 3u);
}

TEST(Dendrogram, CutFullFractionShattersToSingletons) {
  const auto d = matrix(4, {1, 2, 3, 4, 5, 6});
  const Dendrogram dend = agglomerative_average_linkage(d, 4);
  const auto clusters = dend.cut_top_fraction(1.0);
  EXPECT_EQ(clusters.size(), 4u);
}

TEST(Dendrogram, CutSeparatesTwoObviousGroups) {
  // Two tight pairs far apart: cutting the single top link yields them.
  const auto d = matrix(4, {1.0, 100.0, 100.0,   // d01 d02 d03
                            100.0, 100.0,        // d12 d13
                            1.0});               // d23
  const Dendrogram dend = agglomerative_average_linkage(d, 4);
  const auto clusters = dend.cut_top_fraction(0.3);  // cut 1 of 3 links
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(clusters[1], (std::vector<std::size_t>{2, 3}));
}

TEST(Dendrogram, CutAtHeight) {
  const auto d = matrix(4, {1.0, 100.0, 100.0, 100.0, 100.0, 1.0});
  const Dendrogram dend = agglomerative_average_linkage(d, 4);
  EXPECT_EQ(dend.cut_at_height(10.0).size(), 2u);
  EXPECT_EQ(dend.cut_at_height(0.5).size(), 4u);
  EXPECT_EQ(dend.cut_at_height(1000.0).size(), 1u);
}

TEST(Dendrogram, CutFractionOutOfRangeThrows) {
  const Dendrogram dend = agglomerative_average_linkage(matrix(2, {1.0}), 2);
  EXPECT_THROW((void)dend.cut_top_fraction(-0.1), util::ConfigError);
  EXPECT_THROW((void)dend.cut_top_fraction(1.1), util::ConfigError);
}

TEST(Dendrogram, TiedHeightsCutLaterMergesFirst) {
  // Three merges at the same height: cut_top_fraction's tie rule removes
  // later (higher) merges first, so cutting 1 of 3 severs the root and
  // cutting 2 of 3 additionally severs the second merge.
  const std::vector<Merge> merges = {
      {0, 1, 1.0, 2},  // node 4
      {2, 3, 1.0, 2},  // node 5
      {4, 5, 1.0, 4},  // root
  };
  const Dendrogram dend(4, merges);
  const auto one_cut = dend.cut_top_fraction(1.0 / 3.0);
  ASSERT_EQ(one_cut.size(), 2u);
  EXPECT_EQ(one_cut[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(one_cut[1], (std::vector<std::size_t>{2, 3}));
  const auto two_cuts = dend.cut_top_fraction(2.0 / 3.0);
  ASSERT_EQ(two_cuts.size(), 3u);
  EXPECT_EQ(two_cuts[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(two_cuts[1], (std::vector<std::size_t>{2}));
  EXPECT_EQ(two_cuts[2], (std::vector<std::size_t>{3}));
}

TEST(Dendrogram, SeveredMergeReferencedByLaterMergeResolves) {
  // Non-monotonic dendrogram: the first merge (node 3) is severed while a
  // *later* kept merge references node 3. The internal node's
  // representative is its left child, so the kept merge joins leaf 2 with
  // leaf 0's component — and leaf 1, detached by the cut, stays alone.
  const std::vector<Merge> merges = {
      {0, 1, 10.0, 2},  // node 3 (tall: severed by the height cut)
      {3, 2, 1.0, 3},   // root references severed node 3
  };
  const Dendrogram dend(3, merges);
  const auto groups = dend.cut_at_height(5.0);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{1}));
}

TEST(Dendrogram, HeightInversionDoesNotOrphanSubtrees) {
  // Floating-point UPGMA heights are not always monotone: a parent can carry
  // a height a few ulps *below* its child's, so walking merges in height
  // order visits the parent first. Components used to chain representatives
  // through internal slots in that order and read an uninitialized rep,
  // silently orphaning whole subtrees. The structural union-find must give
  // one component for a fully-kept tree regardless of height order.
  const std::vector<Merge> merges = {
      {0, 1, 1.11e-16, 2},  // node 3: child with the *larger* height
      {3, 2, 0.0, 3},       // root: parent sorts before its child
  };
  const Dendrogram dend(3, merges);
  const auto groups = dend.cut_top_fraction(0.0);  // keep every link
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Dendrogram, CutTopFractionOnTiesKeepsEarlierStructure) {
  // A tie between a leaf-level merge and the root: the root (later index)
  // must be the one removed.
  const std::vector<Merge> merges = {
      {0, 1, 2.0, 2},  // node 3
      {3, 2, 2.0, 3},  // root, same height
  };
  const Dendrogram dend(3, merges);
  const auto groups = dend.cut_top_fraction(0.5);  // cut 1 of 2 links
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{2}));
}

TEST(ClusterDiameter, MaxPairwiseDistance) {
  const auto d = matrix(3, {2.0, 8.0, 4.0});
  const std::vector<std::size_t> all = {0, 1, 2};
  EXPECT_DOUBLE_EQ(cluster_diameter(d, 3, all), 8.0);
  const std::vector<std::size_t> pair = {0, 1};
  EXPECT_DOUBLE_EQ(cluster_diameter(d, 3, pair), 2.0);
  const std::vector<std::size_t> single = {2};
  EXPECT_DOUBLE_EQ(cluster_diameter(d, 3, single), 0.0);
}

// Reference implementation: naive O(n^3) average linkage.
std::vector<Merge> brute_force_upgma(std::vector<double> d, std::size_t n) {
  std::vector<std::vector<std::size_t>> clusters;
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < n; ++i) {
    clusters.push_back({i});
    ids.push_back(i);
  }
  std::size_t next_id = n;
  std::vector<Merge> merges;
  const auto dist = [&](const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) {
    double sum = 0;
    for (const std::size_t x : a)
      for (const std::size_t y : b) sum += d[x * n + y];
    return sum / (static_cast<double>(a.size()) * static_cast<double>(b.size()));
  };
  while (clusters.size() > 1) {
    std::size_t bi = 0, bj = 1;
    double best = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        const double dij = dist(clusters[i], clusters[j]);
        if (dij < best) {
          best = dij;
          bi = i;
          bj = j;
        }
      }
    }
    merges.push_back(Merge{ids[bi], ids[bj], best, clusters[bi].size() + clusters[bj].size()});
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(), clusters[bj].end());
    ids[bi] = next_id++;
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bj));
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(bj));
  }
  return merges;
}

// Property: the NN-chain implementation produces the same merge heights as
// the brute-force reference on random matrices (heights identify the
// dendrogram up to tie-ordering).
class UpgmaAgainstBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpgmaAgainstBruteForce, SameMergeHeights) {
  util::Pcg32 rng(GetParam());
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 24));
  std::vector<double> d(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      d[i * n + j] = d[j * n + i] = rng.uniform(0.1, 100.0);
    }
  }
  const Dendrogram fast = agglomerative_average_linkage(d, n);
  auto reference = brute_force_upgma(d, n);
  std::vector<double> fast_heights, ref_heights;
  for (const Merge& m : fast.merges()) fast_heights.push_back(m.height);
  for (const Merge& m : reference) ref_heights.push_back(m.height);
  std::sort(ref_heights.begin(), ref_heights.end());
  ASSERT_EQ(fast_heights.size(), ref_heights.size());
  for (std::size_t i = 0; i < fast_heights.size(); ++i) {
    EXPECT_NEAR(fast_heights[i], ref_heights[i], 1e-9) << "merge " << i << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpgmaAgainstBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

// Property: cut components always partition the leaves.
class CutPartition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CutPartition, ComponentsPartitionLeaves) {
  util::Pcg32 rng(GetParam());
  const std::size_t n = 30;
  std::vector<double> d(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) d[i * n + j] = d[j * n + i] = rng.uniform(1, 50);
  const Dendrogram dend = agglomerative_average_linkage(d, n);
  for (const double frac : {0.05, 0.2, 0.5}) {
    const auto clusters = dend.cut_top_fraction(frac);
    std::vector<std::size_t> all;
    for (const auto& c : clusters) all.insert(all.end(), c.begin(), c.end());
    std::sort(all.begin(), all.end());
    std::vector<std::size_t> expected(n);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(all, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutPartition, ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace tradeplot::stats
