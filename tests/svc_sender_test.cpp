// Tests for FrameSender (src/svc/sender.h): the exact exponential backoff
// schedule on a SimulatedClock, the give-up error, and cursor fast-forward
// against a scripted in-test server.
#include "svc/sender.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "netflow/trace_set.h"
#include "svc/frame.h"
#include "svc/net.h"
#include "util/clock.h"
#include "util/error.h"

namespace tradeplot::svc {
namespace {

std::string make_temp_dir() {
  char tmpl[] = "/tmp/tp_sender_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

std::string write_sample_trace(const std::string& dir, std::size_t flows) {
  netflow::TraceSet trace;
  trace.set_window(0.0, 600.0);
  for (std::size_t i = 0; i < flows; ++i) {
    netflow::FlowRecord r;
    r.src = simnet::Ipv4(0x80020001u);
    r.dst = simnet::Ipv4(0x0a000001u + static_cast<std::uint32_t>(i));
    r.sport = 40000;
    r.dport = 6881;
    r.proto = netflow::Protocol::kTcp;
    r.start_time = static_cast<double>(i);
    r.end_time = r.start_time + 0.5;
    r.pkts_src = 4;
    r.pkts_dst = 3;
    r.bytes_src = 400;
    r.bytes_dst = 300;
    r.state = netflow::FlowState::kEstablished;
    trace.add_flow(r);
  }
  const std::string path = dir + "/trace.bin";
  std::ofstream out(path, std::ios::binary);
  netflow::write_binary(out, trace);
  return path;
}

TEST(Sender, BackoffScheduleIsExactAndGivesUp) {
  util::SimulatedClock clock;  // auto-advance: sleeps consume no real time
  SenderOptions opts;
  opts.endpoint = "unix:/tmp/tp_sender_no_such_socket";  // connect fails instantly
  opts.tenant = "t";
  opts.max_attempts = 4;
  opts.backoff_initial = 0.05;
  opts.backoff_max = 2.0;
  FrameSender sender(opts, clock);
  EXPECT_THROW(sender.stream("/tmp/tp_sender_no_such_trace"), util::IoError);
  // Sleeps land before retries 2..4: 0.05 + 0.10 + 0.20. No other time source
  // advances a SimulatedClock, so the total backoff reads straight off now().
  EXPECT_DOUBLE_EQ(clock.now(), 0.35);
}

TEST(Sender, BackoffIsCappedAtMax) {
  util::SimulatedClock clock;
  SenderOptions opts;
  opts.endpoint = "unix:/tmp/tp_sender_no_such_socket";
  opts.tenant = "t";
  opts.max_attempts = 6;
  opts.backoff_initial = 0.5;
  opts.backoff_max = 1.0;
  FrameSender sender(opts, clock);
  EXPECT_THROW(sender.stream("/tmp/tp_sender_no_such_trace"), util::IoError);
  EXPECT_DOUBLE_EQ(clock.now(), 0.5 + 1.0 + 1.0 + 1.0 + 1.0);
}

/// Scripted daemon stand-in: accepts one connection, acks Hello with a fixed
/// cursor, decodes every kFlows payload, acks Flush with canned accounting.
class ScriptedServer {
 public:
  explicit ScriptedServer(const std::string& spec, std::uint64_t cursor)
      : cursor_(cursor) {
    listener_ = listen_on(Endpoint::parse(spec));
    thread_ = std::thread([this] { run(); });
  }

  ~ScriptedServer() { thread_.join(); }

  [[nodiscard]] std::uint64_t rows_received() const { return rows_received_; }

 private:
  void run() {
    Fd conn = accept_conn(listener_.get());
    ASSERT_TRUE(conn.valid());
    FrameParser parser;
    Frame frame;
    char buf[64 * 1024];
    for (;;) {
      while (!parser.next(frame)) {
        if (!wait_readable(conn.get(), 1000)) return;
        const std::size_t got = recv_some(conn.get(), buf, sizeof(buf));
        if (got == 0) return;
        parser.append(buf, got);
      }
      switch (frame.type) {
        case FrameType::kHello: {
          std::vector<char> payload;
          append_u64(payload, cursor_);
          const auto wire = encode_frame(FrameType::kHelloAck,
                                         {payload.data(), payload.size()});
          ASSERT_TRUE(send_all(conn.get(), wire.data(), wire.size()));
          break;
        }
        case FrameType::kFlows: {
          MemoryStream stream(frame.payload.data(), frame.payload.size());
          netflow::TraceReader reader(stream);
          rows_received_ += reader.read_all().flows().size();
          break;
        }
        case FrameType::kFlush: {
          std::vector<char> payload;
          append_u64(payload, cursor_ + rows_received_);  // accepted
          append_u64(payload, cursor_ + rows_received_);  // ingested
          append_u64(payload, 0);                         // shed
          append_u64(payload, 0);                         // quarantined
          const auto wire = encode_frame(FrameType::kFlushAck,
                                         {payload.data(), payload.size()});
          ASSERT_TRUE(send_all(conn.get(), wire.data(), wire.size()));
          break;
        }
        case FrameType::kBye:
          return;
        default:
          FAIL() << "unexpected frame type " << static_cast<int>(frame.type);
      }
    }
  }

  Fd listener_;
  std::uint64_t cursor_;
  std::uint64_t rows_received_ = 0;
  std::thread thread_;
};

TEST(Sender, FastForwardsToTheAckedCursor) {
  const std::string dir = make_temp_dir();
  const std::string trace = write_sample_trace(dir, 10);
  const std::string spec = "unix:" + dir + "/ingest.sock";

  // The server claims 7 rows are already in its books: the sender must send
  // exactly the remaining 3, never the first 7 again.
  ScriptedServer server(spec, /*cursor=*/7);
  SenderOptions opts;
  opts.endpoint = spec;
  opts.tenant = "t";
  opts.rows_per_frame = 2;
  FrameSender sender(opts);
  const SendReport report = sender.stream(trace);

  EXPECT_EQ(report.rows_sent, 3u);
  EXPECT_EQ(report.frames_sent, 2u);  // 2 + 1 rows
  EXPECT_EQ(report.reconnects, 0u);
  EXPECT_EQ(report.accepted, 10u);
  EXPECT_EQ(report.ingested, 10u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(server.rows_received(), 3u);
}

TEST(Sender, CursorPastEndSendsNothingButStillFlushes) {
  const std::string dir = make_temp_dir();
  const std::string trace = write_sample_trace(dir, 5);
  const std::string spec = "unix:" + dir + "/ingest.sock";

  ScriptedServer server(spec, /*cursor=*/5);
  SenderOptions opts;
  opts.endpoint = spec;
  opts.tenant = "t";
  FrameSender sender(opts);
  const SendReport report = sender.stream(trace);
  EXPECT_EQ(report.rows_sent, 0u);
  EXPECT_EQ(report.frames_sent, 0u);
  EXPECT_EQ(report.accepted, 5u);
  EXPECT_EQ(server.rows_received(), 0u);
}

}  // namespace
}  // namespace tradeplot::svc
