# Empty compiler generated dependencies file for detect_baselines_test.
# This may be replaced when dependencies are built.
