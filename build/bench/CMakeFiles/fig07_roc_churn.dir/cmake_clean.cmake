file(REMOVE_RECURSE
  "CMakeFiles/fig07_roc_churn.dir/fig07_roc_churn.cpp.o"
  "CMakeFiles/fig07_roc_churn.dir/fig07_roc_churn.cpp.o.d"
  "fig07_roc_churn"
  "fig07_roc_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_roc_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
