#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace tradeplot::stats {

QuantileSketch::QuantileSketch(std::size_t k) : k_(std::max<std::size_t>(k, 8)) {
  if (k_ % 2 != 0) ++k_;
  levels_.emplace_back();
  levels_.front().reserve(k_);
  parity_.push_back(0);
}

void QuantileSketch::add(double v) {
  levels_.front().push_back(v);
  ++count_;
  if (levels_.front().size() >= k_) compact(0);
}

void QuantileSketch::compact(std::size_t level) {
  std::sort(levels_[level].begin(), levels_[level].end());
  // Promote every other element of the even prefix at double weight; an odd
  // straggler stays behind at its own weight (no error for it). The
  // alternating parity keeps the promoted subsample unbiased across
  // repeated compactions while staying fully deterministic.
  const std::size_t even = levels_[level].size() - levels_[level].size() % 2;
  if (even < 2) return;
  if (levels_.size() <= level + 1) {
    levels_.emplace_back();
    parity_.push_back(0);
  }
  // References only after any growth above: emplace_back may reallocate.
  std::vector<double>& buf = levels_[level];
  const std::size_t offset = parity_[level] & 1u;
  parity_[level] ^= 1u;
  std::vector<double>& up = levels_[level + 1];
  for (std::size_t i = offset; i < even; i += 2) up.push_back(buf[i]);
  error_bound_ += 1ull << level;
  if (even < buf.size()) {
    const double straggler = buf.back();
    buf.clear();
    buf.push_back(straggler);
  } else {
    buf.clear();
  }
  if (up.size() >= k_) compact(level + 1);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  for (std::size_t l = 0; l < other.levels_.size(); ++l) {
    if (other.levels_[l].empty()) continue;
    while (levels_.size() <= l) {
      levels_.emplace_back();
      parity_.push_back(0);
    }
    levels_[l].insert(levels_[l].end(), other.levels_[l].begin(), other.levels_[l].end());
  }
  count_ += other.count_;
  error_bound_ += other.error_bound_;
  // Bottom-up so a compaction's promotions land in a level that has not
  // been settled yet at most once.
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].size() >= k_) compact(l);
  }
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) throw util::ConfigError("quantile over empty sketch");
  q = std::clamp(q, 0.0, 1.0);

  struct Item {
    double value;
    std::uint64_t weight;
  };
  std::vector<Item> items;
  items.reserve(retained());
  std::uint64_t total = 0;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::uint64_t w = 1ull << l;
    for (const double v : levels_[l]) {
      items.push_back({v, w});
      total += w;
    }
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.value < b.value; });

  // Type-7 over the expanded (weighted) multiset of `total` values — the
  // identical arithmetic as stats::quantile_sorted, so a lossless sketch
  // (no compactions yet) reproduces the exact percentile bit for bit. The
  // value at an integer rank comes from a cumulative-weight walk instead of
  // direct indexing.
  const auto value_at = [&](std::uint64_t rank) {
    std::uint64_t cum = 0;
    for (const Item& item : items) {
      cum += item.weight;
      if (rank < cum) return item.value;
    }
    return items.back().value;
  };
  const double pos = q * static_cast<double>(total - 1);
  const auto lo = static_cast<std::uint64_t>(std::floor(pos));
  const auto hi = static_cast<std::uint64_t>(std::ceil(pos));
  if (lo == hi) return value_at(lo);
  const double frac = pos - static_cast<double>(lo);
  return value_at(lo) * (1.0 - frac) + value_at(hi) * frac;
}

double QuantileSketch::relative_error_bound() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(error_bound_) / static_cast<double>(count_);
}

std::size_t QuantileSketch::retained() const {
  std::size_t n = 0;
  for (const std::vector<double>& level : levels_) n += level.size();
  return n;
}

}  // namespace tradeplot::stats
