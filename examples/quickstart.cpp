// Quickstart: simulate one campus day, overlay the Storm and Nugache
// honeynet traces, run FindPlotters, and print what it caught.
//
// Also demonstrates the packet path: a few flows are reconstructed through
// netflow::FlowTable to show the Argus-equivalent front end.
#include <cstdio>

#include "botnet/honeynet.h"
#include "detect/find_plotters.h"
#include "eval/day.h"
#include "netflow/classifier.h"
#include "netflow/flow_table.h"
#include "util/format.h"

using namespace tradeplot;

int main() {
  // 1. Generate the fixed 24-hour honeynet traces (13 Storm, 82 Nugache).
  botnet::HoneynetConfig honeynet;
  honeynet.seed = 7;
  const netflow::TraceSet storm = botnet::generate_storm_trace(honeynet);
  const netflow::TraceSet nugache = botnet::generate_nugache_trace(honeynet);
  std::printf("honeynet: %zu storm flows, %zu nugache flows\n", storm.flows().size(),
              nugache.flows().size());

  // 2. Simulate one 6-hour campus day and overlay the bots onto random
  //    active internal hosts.
  trace::CampusConfig campus;
  campus.seed = 42;
  const eval::DayData day = eval::make_day(campus, storm, nugache, /*day_index=*/0);
  std::printf("campus day: %zu flows, %zu internal hosts with features\n",
              day.combined.flows().size(), day.features.size());

  // 3. Ground truth (payload-based, as the paper does for Traders).
  const auto labels = netflow::PayloadClassifier::label_hosts(day.combined.flows(), 3);
  std::printf("payload classifier found %zu P2P file-sharing participants\n", labels.size());

  // 4. Run the detection pipeline at the paper's operating point.
  const detect::FindPlottersResult result = detect::find_plotters(day.features);
  std::printf("\nFindPlotters funnel:\n");
  std::printf("  input hosts:        %zu\n", result.input.size());
  std::printf("  after reduction:    %zu\n", result.reduced.size());
  std::printf("  S_vol:              %zu\n", result.s_vol.size());
  std::printf("  S_churn:            %zu\n", result.s_churn.size());
  std::printf("  S_vol u S_churn:    %zu\n", result.vol_or_churn.size());
  std::printf("  flagged as Plotter: %zu\n", result.plotters.size());

  int storm_hits = 0, nugache_hits = 0, false_hits = 0;
  for (const simnet::Ipv4 host : result.plotters) {
    if (day.is_storm(host)) ++storm_hits;
    else if (day.is_nugache(host)) ++nugache_hits;
    else ++false_hits;
  }
  std::printf("\ncaught %d/%zu Storm, %d/%zu Nugache, %d false positives\n", storm_hits,
              day.storm_hosts.size(), nugache_hits, day.nugache_hosts.size(), false_hits);

  // 5. The packet path: rebuild one TCP exchange through the flow table.
  netflow::FlowTable table;
  netflow::PacketEvent syn{.time = 0.0,
                           .src = simnet::Ipv4(128, 2, 0, 50),
                           .dst = simnet::Ipv4(1, 2, 3, 4),
                           .sport = 50000,
                           .dport = 80,
                           .proto = netflow::Protocol::kTcp,
                           .payload_bytes = 0,
                           .tcp = {.syn = true}};
  table.add_packet(syn);
  netflow::PacketEvent synack = syn;
  std::swap(synack.src, synack.dst);
  std::swap(synack.sport, synack.dport);
  synack.time = 0.01;
  synack.tcp = {.syn = true, .ack = true};
  table.add_packet(synack);
  netflow::PacketEvent data = syn;
  data.time = 0.02;
  data.tcp = {.ack = true};
  data.payload_bytes = 512;
  data.payload = "GET / HTTP/1.1\r\n";
  table.add_packet(data);
  const auto flows = table.flush();
  std::printf("\nflow table rebuilt %zu flow(s); first: %s -> %s, %s, state %s\n", flows.size(),
              flows[0].src.to_string().c_str(), flows[0].dst.to_string().c_str(),
              util::human_bytes(static_cast<double>(flows[0].total_bytes())).c_str(),
              std::string(netflow::to_string(flows[0].state)).c_str());
  return 0;
}
