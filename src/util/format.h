// Small formatting helpers used by the benches and examples when rendering
// the paper's figures as text tables.
#pragma once

#include <string>

namespace tradeplot::util {

/// "1.21 KB", "3.4 MB", ... (powers of 1024, two significant decimals).
[[nodiscard]] std::string human_bytes(double bytes);

/// "12.34%" with the given number of decimals.
[[nodiscard]] std::string percent(double fraction, int decimals = 2);

/// "01:02:03" for 3723 seconds; sub-second durations as "0.5s".
[[nodiscard]] std::string human_duration(double seconds);

/// Fixed-point with `decimals` digits (locale-independent).
[[nodiscard]] std::string fixed(double value, int decimals = 2);

/// Left-pads/truncates to an exact column width (for text tables).
[[nodiscard]] std::string column(const std::string& s, std::size_t width);

}  // namespace tradeplot::util
