#include "shard/ring.h"

#include <algorithm>

#include "util/error.h"

namespace tradeplot::shard {

HashRing::HashRing(std::size_t shards, std::size_t vnodes)
    : shards_(shards), vnodes_(vnodes) {
  if (shards == 0) throw util::ConfigError("HashRing: shards must be > 0");
  if (vnodes == 0) throw util::ConfigError("HashRing: vnodes must be > 0");
  if (shards == 1) return;  // every host maps to shard 0; no ring needed
  points_.reserve(shards * vnodes);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t r = 0; r < vnodes; ++r) {
      // Mix the (shard, replica) pair through two rounds so replica points
      // of one shard are spread independently.
      const std::uint64_t point =
          splitmix64(splitmix64(static_cast<std::uint64_t>(s) << 32 | r));
      points_.emplace_back(point, static_cast<std::uint32_t>(s));
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::shard_of(simnet::Ipv4 host) const {
  if (shards_ == 1) return 0;
  const std::uint64_t h = splitmix64(host.value());
  auto it = std::upper_bound(points_.begin(), points_.end(),
                             std::make_pair(h, ~std::uint32_t{0}));
  if (it == points_.end()) it = points_.begin();  // wrap past the last point
  return it->second;
}

}  // namespace tradeplot::shard
