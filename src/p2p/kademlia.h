// Kademlia routing and iterative lookup over a simulated overlay.
//
// This is the DHT substrate shared by the Overnet model (Storm's transport),
// the eMule Kad model, and the BitTorrent DHT model. It implements:
//   * k-bucket routing tables keyed by XOR distance (Maymounkov & Mazieres),
//   * an Overlay registry holding every simulated DHT node and its liveness
//     (peer churn: nodes flip between online/offline),
//   * iterative lookups that return the exact sequence of probes performed —
//     including probes to departed peers, which is what produces the high
//     failed-connection rates characteristic of P2P hosts (paper §V-A).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "p2p/node_id.h"
#include "simnet/address.h"
#include "util/rng.h"

namespace tradeplot::p2p {

struct Contact {
  NodeId id;
  simnet::Ipv4 addr;
  std::uint16_t port = 0;

  friend bool operator==(const Contact&, const Contact&) = default;
};

/// One k-bucket: least-recently-seen at the front (Kademlia eviction order).
class KBucket {
 public:
  explicit KBucket(std::size_t capacity) : capacity_(capacity) {}

  /// Inserts or refreshes a contact. Returns false if the bucket was full
  /// and the contact was not inserted (the classic "ping the LRS node"
  /// policy is simplified to drop-new, which Kademlia permits).
  bool upsert(const Contact& c);
  bool remove(NodeId id);
  [[nodiscard]] const std::vector<Contact>& contacts() const { return contacts_; }
  [[nodiscard]] bool full() const { return contacts_.size() >= capacity_; }

 private:
  std::size_t capacity_;
  std::vector<Contact> contacts_;
};

class RoutingTable {
 public:
  RoutingTable(NodeId self, std::size_t k = 20);

  [[nodiscard]] NodeId self() const { return self_; }
  bool insert(const Contact& c);         // no-op (returns false) for self
  bool remove(NodeId id);
  [[nodiscard]] std::size_t size() const;

  /// The `count` known contacts closest to `target` by XOR distance.
  [[nodiscard]] std::vector<Contact> closest(NodeId target, std::size_t count) const;

  [[nodiscard]] const std::vector<KBucket>& buckets() const { return buckets_; }

 private:
  NodeId self_;
  std::size_t k_;
  std::vector<KBucket> buckets_;  // bucket i holds distance msb == i
};

/// Global registry of simulated DHT nodes. The overlay is where peer churn
/// lives: each node has an `online` flag toggled by the churn process.
class Overlay {
 public:
  struct Node {
    Contact contact;
    bool online = true;
  };

  /// Adds a node (initially online). Throws util::ConfigError on duplicate id.
  void add_node(const Contact& c);
  void set_online(NodeId id, bool online);
  [[nodiscard]] bool is_online(NodeId id) const;
  [[nodiscard]] std::optional<Contact> find(NodeId id) const;
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// A uniformly random node (online or not); nullopt if empty.
  [[nodiscard]] std::optional<Contact> random_node(util::Pcg32& rng) const;

  /// The `count` registered nodes closest to `target` (regardless of
  /// liveness — stale routing knowledge is the point).
  [[nodiscard]] std::vector<Contact> closest(NodeId target, std::size_t count) const;

 private:
  std::unordered_map<NodeId, Node> nodes_;
  std::vector<NodeId> ids_;  // stable order for random sampling
};

/// One probe performed during an iterative lookup.
struct Probe {
  Contact peer;
  bool responded = false;
};

struct LookupResult {
  std::vector<Probe> probes;        // in the order they were issued
  std::vector<Contact> closest;     // best k live contacts found
  bool converged = false;           // did the lookup terminate normally
};

struct LookupParams {
  std::size_t alpha = 3;   // parallelism (probes per round)
  std::size_t k = 20;      // result set size
  std::size_t max_rounds = 16;
};

/// Iterative FIND_NODE: starts from the caller's routing table, probes
/// alpha closest unqueried contacts per round, learns neighbours from
/// responders, stops when the closest set stabilises. Offline peers do not
/// respond (and are recorded as failed probes). Responders return their
/// `k` closest *registered* neighbours, emulating each node's view.
[[nodiscard]] LookupResult iterative_find_node(const Overlay& overlay, RoutingTable& table,
                                               NodeId target, const LookupParams& params,
                                               util::Pcg32& rng);

}  // namespace tradeplot::p2p
