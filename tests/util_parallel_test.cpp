#include "util/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.h"

namespace tradeplot::util {
namespace {

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_EQ(resolve_threads(1), 1u);
}

TEST(ResolveThreads, ReadsEnvironmentVariable) {
  const char* saved = std::getenv("TRADEPLOT_THREADS");
  const std::string restore = saved ? saved : "";
  setenv("TRADEPLOT_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(0), 5u);
  EXPECT_EQ(resolve_threads(2), 2u);  // explicit still wins
  setenv("TRADEPLOT_THREADS", "garbage", 1);
  EXPECT_GE(resolve_threads(0), 1u);  // invalid -> hardware fallback
  setenv("TRADEPLOT_THREADS", "0", 1);
  EXPECT_GE(resolve_threads(0), 1u);
  if (saved) {
    setenv("TRADEPLOT_THREADS", restore.c_str(), 1);
  } else {
    unsetenv("TRADEPLOT_THREADS");
  }
}

// RAII save/restore so the strict-parsing cases below can't leak a mutated
// TRADEPLOT_THREADS into later tests.
class ScopedThreadsEnv {
 public:
  ScopedThreadsEnv() : saved_(std::getenv("TRADEPLOT_THREADS")),
                       value_(saved_ ? saved_ : "") {}
  ~ScopedThreadsEnv() {
    if (saved_) {
      setenv("TRADEPLOT_THREADS", value_.c_str(), 1);
    } else {
      unsetenv("TRADEPLOT_THREADS");
    }
  }

 private:
  const char* saved_;
  std::string value_;
};

TEST(ThreadsEnvStrict, UnsetReturnsNullopt) {
  ScopedThreadsEnv guard;
  unsetenv("TRADEPLOT_THREADS");
  EXPECT_EQ(threads_env_strict(), std::nullopt);
}

TEST(ThreadsEnvStrict, ValidValueIsReturned) {
  ScopedThreadsEnv guard;
  setenv("TRADEPLOT_THREADS", "6", 1);
  EXPECT_EQ(threads_env_strict(), std::optional<std::size_t>(6));
  setenv("TRADEPLOT_THREADS", "1", 1);
  EXPECT_EQ(threads_env_strict(), std::optional<std::size_t>(1));
}

TEST(ThreadsEnvStrict, RejectsGarbageWithPinnedMessage) {
  ScopedThreadsEnv guard;
  const auto message = [](const char* value) -> std::string {
    setenv("TRADEPLOT_THREADS", value, 1);
    try {
      (void)threads_env_strict();
    } catch (const ConfigError& e) {
      return e.what();
    }
    return "(no throw)";
  };
  EXPECT_EQ(message("garbage"),
            "config error: TRADEPLOT_THREADS must be a positive integer, got 'garbage'");
  EXPECT_EQ(message("0"),
            "config error: TRADEPLOT_THREADS must be a positive integer, got '0'");
  EXPECT_EQ(message("-3"),
            "config error: TRADEPLOT_THREADS must be a positive integer, got '-3'");
  EXPECT_EQ(message("4x"),
            "config error: TRADEPLOT_THREADS must be a positive integer, got '4x'");
  EXPECT_EQ(message(""),
            "config error: TRADEPLOT_THREADS must be a positive integer, got ''");
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load() < 64 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) pool.submit([&done] { done.fetch_add(1); });
  }  // join happens here
  EXPECT_EQ(done.load(), 32);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    std::vector<int> hits(1000, 0);
    parallel_for(0, hits.size(), 7, threads, [&](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000) << threads << " threads";
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
  }
}

TEST(ParallelFor, RespectsRangeOffsets) {
  std::vector<int> hits(100, 0);
  parallel_for(40, 60, 3, 4, [&](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], i >= 40 && i < 60 ? 1 : 0);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(5, 5, 1, 8, [](std::size_t) { FAIL() << "must not be called"; });
  parallel_for(9, 2, 1, 8, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, ZeroGrainTreatedAsOne) {
  std::atomic<int> count{0};
  parallel_for(0, 10, 0, 4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, PropagatesFirstException) {
  for (const std::size_t threads : {1u, 4u}) {
    EXPECT_THROW(
        parallel_for(0, 100, 5, threads,
                     [](std::size_t i) {
                       if (i == 37) throw std::runtime_error("boom");
                     }),
        std::runtime_error)
        << threads << " threads";
  }
}

TEST(ParallelFor, ResultsAreIdenticalAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    std::vector<double> out(512);
    parallel_for(0, out.size(), 3, threads, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 0.37 + 1.0 / (static_cast<double>(i) + 1.0);
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ParallelFor, ManyConcurrentCallsShareThePool) {
  // Several parallel_for calls issued back to back from one thread (the
  // streaming detector's window cadence) must all complete.
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    parallel_for(0, 50, 1, 4, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 20 * 50);
}

}  // namespace
}  // namespace tradeplot::util
