// Figure 7: ROC curves for the peer-churn test θ_churn, thresholds at the
// 10/30/50/70/90-th percentiles, averaged over the eight days.
#include "bench/bench_util.h"

int main() {
  tradeplot::benchx::run_roc_bench(
      tradeplot::eval::SweepTest::kChurn,
      "Figure 7 - ROC of theta_churn (Storm & Nugache overlaid, after data reduction)",
      "Fig. 7: Storm (stored-peer-list reuse) beats Nugache across the\n"
      "sweep; alone the test stays coarse, with FP rising steeply at high\n"
      "percentiles. Expect: Storm curve above Nugache; both above-diagonal\n"
      "but far from perfect.");
  return 0;
}
