#include "util/fd_stream.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

#include "util/interrupt.h"

namespace tradeplot::util {

FdInputStreambuf::FdInputStreambuf(int fd, std::size_t buffer_size)
    : fd_(fd), buf_(buffer_size > 0 ? buffer_size : 1) {}

FdInputStreambuf::~FdInputStreambuf() {
  if (fd_ >= 0) ::close(fd_);
}

FdInputStreambuf::int_type FdInputStreambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  if (fd_ < 0) return traits_type::eof();
  for (;;) {
    if (shutdown_requested()) {
      // A stop requested before this read must not start another blocking
      // read(2) — the one EINTR a signal provides was already consumed.
      errno = EINTR;
      return traits_type::eof();
    }
    errno = 0;
    const ::ssize_t got = ::read(fd_, buf_.data(), buf_.size());
    if (got > 0) {
      setg(buf_.data(), buf_.data(), buf_.data() + got);
      return traits_type::to_int_type(*gptr());
    }
    if (got == 0) {
      errno = 0;  // true EOF, distinguishable from an interrupted read
      return traits_type::eof();
    }
    if (errno != EINTR) return traits_type::eof();  // hard error, errno kept
    if (shutdown_requested()) {
      // Cooperative stop: report end-of-stream with errno still EINTR so
      // read_retry's shutdown branch turns it into a clean short read.
      return traits_type::eof();
    }
    // A stray signal (SIGHUP reload, a profiler tick): retry the read.
  }
}

FdInputStream::FdInputStream(const std::string& path)
    : std::istream(nullptr), buf_(::open(path.c_str(), O_RDONLY | O_CLOEXEC)) {
  rdbuf(&buf_);  // also clears the badbit from the null-buffer base init
  if (!buf_.valid()) setstate(std::ios::failbit);
}

}  // namespace tradeplot::util
