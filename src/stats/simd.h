// Runtime-dispatched SIMD kernels for the θ_hm pruning hot loops.
//
// The pruned clustering path evaluates a cheap bin-L1 lower bound over dense
// per-cluster grid histograms before paying for an exact EMD resolution; that
// inner loop is a pure Σ|a[i] - b[i]| sweep over contiguous doubles and
// vectorizes perfectly. The kernel is selected once per process at first use:
// an AVX2 implementation (compiled with a per-function target attribute, so
// the rest of the build stays baseline-ISA) when the CPU supports it, the
// scalar loop otherwise.
//
// Determinism note: the AVX2 sum reassociates additions, so l1_distance is
// NOT guaranteed bit-identical to the scalar loop across machines. It is
// deterministic within a process (one dispatch decision, same instruction
// sequence every call), which is all the pruning layer needs — the bound only
// gates which pairs pay the exact kernel, it never feeds a verdict, and the
// caller applies an admissibility margin that absorbs the rounding
// difference. Verdict-bearing kernels (emd_1d_presorted, FlatBinSet::l1)
// deliberately do not use this function.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tradeplot::stats::simd {

/// Σ|a[i] - b[i]| over n contiguous doubles. AVX2 when available at runtime,
/// scalar otherwise; deterministic within a process.
[[nodiscard]] double l1_distance(const double* a, const double* b, std::size_t n);

/// True when the process dispatched l1_distance to the AVX2 kernel
/// (reported by bench_cluster so JSON trajectories note the ISA).
[[nodiscard]] bool using_avx2();

// Integer column reductions for the columnar flow-batch scans (FlowBatch
// counter/state columns, bench_io's feature-scan profile). Unlike the
// floating-point kernels above, integer addition is exactly associative, so
// these are bit-identical to the scalar loops on every machine and are safe
// in verdict-bearing paths.

/// Σ a[i] over n contiguous u64 (wrapping, like the scalar loop would).
[[nodiscard]] std::uint64_t sum_u64(const std::uint64_t* a, std::size_t n);

/// Number of nonzero bytes in a[0..n).
[[nodiscard]] std::size_t count_nonzero_u8(const std::uint8_t* a, std::size_t n);

}  // namespace tradeplot::stats::simd
