// Trace-ingestion throughput: legacy (iostream + stod) vs. current readers.
//
// Generates a synthetic trace (default 1,000,000 flows; argv[1] overrides),
// writes it as CSV and binary, then times four readers over the same files:
// the pre-rewrite CSV/binary readers (reproduced below verbatim as the
// baseline) and the current TraceReader-backed read_csv_file /
// read_binary_file. Every pass is verified to decode the identical TraceSet.
//
// Two columnar profiles ride along: a feature-scan pass (counter reductions
// over in-memory rows, AoS record walk vs. SoA FlowBatch columns) and a
// binary drain (record-at-a-time next() over a v1 file vs. next_batch()
// over a columnar v3 file). Both verify identical aggregates, so the
// reported speedups change wall clock only.
//
//   bench_io [flows] [--json <path>]
//
// --json writes a machine-readable report to <path>. TRADEPLOT_THREADS is
// parsed strictly (the readers are single-threaded, but a malformed value in
// the environment should fail any bench run, not be silently ignored): a bad
// value aborts with the pinned config error on stderr and exit code 2.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "netflow/flow_batch.h"
#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "util/error.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace tradeplot;

namespace legacy {

// The seed repo's readers, kept as the measurement baseline. Do not modernize:
// the point of this file is to quantify what the rewrite bought.
using namespace tradeplot::netflow;

constexpr std::string_view kCsvHeader =
    "src,dst,sport,dport,proto,start,end,pkts_src,pkts_dst,bytes_src,bytes_dst,state,payload";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw util::ParseError("bad hex digit");
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t next = line.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(line.substr(pos));
      return out;
    }
    out.push_back(line.substr(pos, next - pos));
    pos = next + 1;
  }
}

HostKind host_kind_from_string(std::string_view s) {
  for (int i = 0; i <= static_cast<int>(HostKind::kNugache); ++i) {
    const auto kind = static_cast<HostKind>(i);
    if (to_string(kind) == s) return kind;
  }
  throw util::ParseError("unknown host kind '" + std::string(s) + "'");
}

TraceSet read_csv(std::istream& in) {
  TraceSet trace;
  std::string line;
  bool seen_header = false;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto parts = split(line, ',');
      if (parts[0] == "#window" && parts.size() == 3) {
        trace.set_window(std::stod(parts[1]), std::stod(parts[2]));
      } else if (parts[0] == "#truth" && parts.size() == 3) {
        trace.set_truth(simnet::Ipv4::parse(parts[1]), host_kind_from_string(parts[2]));
      } else {
        throw util::ParseError("bad comment line " + std::to_string(lineno));
      }
      continue;
    }
    if (!seen_header) {
      if (line != kCsvHeader) throw util::ParseError("missing CSV header");
      seen_header = true;
      continue;
    }
    const auto f = split(line, ',');
    if (f.size() != 13) throw util::ParseError("bad field count on line " + std::to_string(lineno));
    FlowRecord r;
    r.src = simnet::Ipv4::parse(f[0]);
    r.dst = simnet::Ipv4::parse(f[1]);
    r.sport = static_cast<std::uint16_t>(std::stoul(f[2]));
    r.dport = static_cast<std::uint16_t>(std::stoul(f[3]));
    r.proto = protocol_from_string(f[4]);
    r.start_time = std::stod(f[5]);
    r.end_time = std::stod(f[6]);
    r.pkts_src = std::stoull(f[7]);
    r.pkts_dst = std::stoull(f[8]);
    r.bytes_src = std::stoull(f[9]);
    r.bytes_dst = std::stoull(f[10]);
    r.state = flow_state_from_string(f[11]);
    const std::string& hex = f[12];
    if (hex.size() % 2 != 0 || hex.size() / 2 > kPayloadPrefixLen)
      throw util::ParseError("bad payload hex");
    r.payload_len = static_cast<std::uint8_t>(hex.size() / 2);
    for (std::size_t i = 0; i < r.payload_len; ++i) {
      r.payload[i] = static_cast<unsigned char>((hex_nibble(hex[2 * i]) << 4) |
                                                hex_nibble(hex[2 * i + 1]));
    }
    trace.add_flow(std::move(r));
  }
  if (!seen_header) throw util::ParseError("empty CSV trace");
  return trace;
}

constexpr std::uint32_t kBinMagic = 0x54504654;

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw util::IoError("binary trace: short read");
  return value;
}

TraceSet read_binary(std::istream& in) {
  if (get<std::uint32_t>(in) != kBinMagic) throw util::ParseError("binary trace: bad magic");
  if (get<std::uint32_t>(in) != 1) throw util::ParseError("binary trace: bad version");
  TraceSet trace;
  const double ws = get<double>(in);
  const double we = get<double>(in);
  trace.set_window(ws, we);
  const auto truth_count = get<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < truth_count; ++i) {
    const auto ip = simnet::Ipv4(get<std::uint32_t>(in));
    trace.set_truth(ip, static_cast<HostKind>(get<std::uint8_t>(in)));
  }
  const auto flow_count = get<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < flow_count; ++i) {
    FlowRecord r;
    r.src = simnet::Ipv4(get<std::uint32_t>(in));
    r.dst = simnet::Ipv4(get<std::uint32_t>(in));
    r.sport = get<std::uint16_t>(in);
    r.dport = get<std::uint16_t>(in);
    r.proto = static_cast<Protocol>(get<std::uint8_t>(in));
    r.start_time = get<double>(in);
    r.end_time = get<double>(in);
    r.pkts_src = get<std::uint64_t>(in);
    r.pkts_dst = get<std::uint64_t>(in);
    r.bytes_src = get<std::uint64_t>(in);
    r.bytes_dst = get<std::uint64_t>(in);
    r.state = static_cast<FlowState>(get<std::uint8_t>(in));
    r.payload_len = get<std::uint8_t>(in);
    in.read(reinterpret_cast<char*>(r.payload.data()), r.payload_len);
    if (!in) throw util::IoError("binary trace: short payload read");
    trace.add_flow(std::move(r));
  }
  return trace;
}

TraceSet read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return read_csv(in);
}

TraceSet read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return read_binary(in);
}

}  // namespace legacy

namespace {

netflow::TraceSet synthetic_trace(std::size_t flows, std::uint64_t seed) {
  util::Pcg32 rng(seed);
  netflow::TraceSet trace(0.0, 86400.0);
  for (int h = 0; h < 64; ++h)
    trace.set_truth(simnet::Ipv4(128, 2, 1, static_cast<std::uint8_t>(h)),
                    rng.chance(0.1) ? netflow::HostKind::kStorm : netflow::HostKind::kWebClient);
  trace.reserve_flows(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    netflow::FlowRecord r;
    r.src = simnet::Ipv4(128, 2, static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                         static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
    r.dst = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1 << 26, 1 << 30)));
    r.sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    r.dport = static_cast<std::uint16_t>(rng.uniform_int(1, 1023));
    r.proto = rng.chance(0.7) ? netflow::Protocol::kTcp : netflow::Protocol::kUdp;
    r.start_time = rng.uniform(0, 86400);
    r.end_time = r.start_time + rng.uniform(0, 120);
    r.pkts_src = static_cast<std::uint64_t>(rng.uniform_int(1, 1000));
    r.pkts_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 1000));
    r.bytes_src = static_cast<std::uint64_t>(rng.uniform_int(0, 10'000'000));
    r.bytes_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 10'000'000));
    r.state = r.pkts_dst == 0 ? netflow::FlowState::kAttempted : netflow::FlowState::kEstablished;
    if (rng.chance(0.3)) {
      unsigned char payload[netflow::kPayloadPrefixLen];
      const auto len = static_cast<std::size_t>(rng.uniform_int(1, 64));
      for (std::size_t b = 0; b < len; ++b)
        payload[b] = static_cast<unsigned char>(rng.uniform_int(0, 255));
      r.set_payload({reinterpret_cast<const char*>(payload), len});
    }
    trace.add_flow(std::move(r));
  }
  return trace;
}

bool traces_equal(const netflow::TraceSet& a, const netflow::TraceSet& b) {
  if (a.window_start() != b.window_start() || a.window_end() != b.window_end()) return false;
  if (a.flows() != b.flows()) return false;
  if (a.truth().size() != b.truth().size()) return false;
  for (const auto& [ip, kind] : a.truth())
    if (b.kind_of(ip) != kind) return false;
  return true;
}

struct Timed {
  netflow::TraceSet trace;
  double seconds = 0.0;
};

Timed time_reader(const std::function<netflow::TraceSet()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  Timed out{fn(), 0.0};
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

void report(const char* format, std::size_t flows, const Timed& before, const Timed& after) {
  const double mflows_before = static_cast<double>(flows) / before.seconds / 1e6;
  const double mflows_after = static_cast<double>(flows) / after.seconds / 1e6;
  std::printf("  %-6s  legacy %7.2f s (%6.2f Mflows/s)   current %7.2f s (%6.2f Mflows/s)   "
              "speedup %5.2fx\n",
              format, before.seconds, mflows_before, after.seconds, mflows_after,
              before.seconds / after.seconds);
}

// ---------------------------------------------------------------------------
// Feature-scan profile: the counter reductions a detection pass makes
// (total bytes/packets, failed-flow count) over an in-memory trace, AoS
// record walk vs. columnar SoA batches (stats::simd column reductions).
// ---------------------------------------------------------------------------

struct ScanAggregates {
  std::uint64_t bytes = 0;
  std::uint64_t pkts = 0;
  std::uint64_t failed = 0;
  bool operator==(const ScanAggregates&) const = default;
};

ScanAggregates scan_records(const netflow::TraceSet& trace) {
  ScanAggregates a;
  for (const netflow::FlowRecord& r : trace.flows()) {
    a.bytes += r.bytes_src + r.bytes_dst;
    a.pkts += r.pkts_src + r.pkts_dst;
    a.failed += r.failed() ? 1 : 0;
  }
  return a;
}

ScanAggregates scan_batches(const std::vector<netflow::FlowBatch>& batches) {
  ScanAggregates a;
  for (const netflow::FlowBatch& b : batches) {
    a.bytes += b.total_bytes();
    a.pkts += b.total_pkts();
    a.failed += b.failed_count();
  }
  return a;
}

std::vector<netflow::FlowBatch> to_batches(const netflow::TraceSet& trace) {
  std::vector<netflow::FlowBatch> batches;
  batches.emplace_back();
  for (const netflow::FlowRecord& r : trace.flows()) {
    if (batches.back().full()) batches.emplace_back();
    batches.back().push_back(r);
  }
  if (batches.back().empty()) batches.pop_back();
  return batches;
}

/// Times `reps` passes of `scan` and checks every pass agrees with `expect`
/// (which also keeps the whole computation observable, so nothing is
/// optimized away).
template <typename ScanFn>
double time_scan(std::size_t reps, const ScanAggregates& expect, ScanFn scan, bool& ok) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < reps; ++i)
    if (!(scan() == expect)) ok = false;
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t flows = 1'000'000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      flows = static_cast<std::size_t>(std::strtoull(arg.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: bench_io [flows] [--json <path>]\n");
      return 2;
    }
  }

  std::optional<std::size_t> env_threads;
  try {
    env_threads = util::threads_env_strict();
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("==============================================================\n");
  std::printf("bench_io - trace ingestion throughput, %zu flows\n", flows);
  std::printf("==============================================================\n");

  const auto dir = std::filesystem::temp_directory_path();
  const std::string csv_path = (dir / "tp_bench_io.csv").string();
  const std::string bin_path = (dir / "tp_bench_io.bin").string();

  std::printf("  generating synthetic trace...\n");
  const netflow::TraceSet trace = synthetic_trace(flows, 20100621);
  netflow::write_csv_file(csv_path, trace);
  netflow::write_binary_file(bin_path, trace);
  std::printf("  csv %.1f MiB, bin %.1f MiB\n\n",
              static_cast<double>(std::filesystem::file_size(csv_path)) / (1 << 20),
              static_cast<double>(std::filesystem::file_size(bin_path)) / (1 << 20));

  const Timed csv_before = time_reader([&] { return legacy::read_csv_file(csv_path); });
  const Timed csv_after = time_reader([&] { return netflow::read_csv_file(csv_path); });
  report("csv", flows, csv_before, csv_after);

  const Timed bin_before = time_reader([&] { return legacy::read_binary_file(bin_path); });
  const Timed bin_after = time_reader([&] { return netflow::read_binary_file(bin_path); });
  report("binary", flows, bin_before, bin_after);

  const bool decoded_ok =
      traces_equal(trace, csv_before.trace) && traces_equal(trace, csv_after.trace) &&
      traces_equal(trace, bin_before.trace) && traces_equal(trace, bin_after.trace);
  std::printf("\n  all four decoded traces identical to the generated one: %s\n",
              decoded_ok ? "PASS" : "FAIL");

  // Feature-scan profile: counter reductions over the in-memory trace. The
  // same rows are held both ways (AoS record vector / SoA batches); each
  // pass computes identical aggregates, so the speedup is pure memory
  // layout + SIMD.
  const std::vector<netflow::FlowBatch> batches = to_batches(trace);
  const ScanAggregates expect = scan_records(trace);
  // Enough repetitions for a stable measurement regardless of trace size
  // (~20M rows scanned per side).
  const std::size_t reps = std::max<std::size_t>(4, 20'000'000 / std::max<std::size_t>(flows, 1));
  bool scans_agree = scan_batches(batches) == expect;
  const double aos_s = time_scan(reps, expect, [&] { return scan_records(trace); }, scans_agree);
  const double col_s = time_scan(reps, expect, [&] { return scan_batches(batches); }, scans_agree);
  const double scan_speedup = aos_s / col_s;
  std::printf("\n  feature-scan (%zu reps): AoS %7.3f s   columnar %7.3f s   speedup %5.2fx   "
              "aggregates %s\n",
              reps, aos_s, col_s, scan_speedup, scans_agree ? "identical" : "DIVERGED");

  // Columnar binary (v3) decode profile: drain the trace from disk through
  // TraceReader computing the same aggregates — record-at-a-time next()
  // over the v1 file vs. next_batch() over the v3 file.
  const std::string cbin_path = (dir / "tp_bench_io.cbin").string();
  netflow::write_binary_columnar_file(cbin_path, trace);
  std::printf("  cbin %.1f MiB (columnar v3)\n",
              static_cast<double>(std::filesystem::file_size(cbin_path)) / (1 << 20));
  bool drains_agree = true;
  const double v1_drain_s = time_scan(1, expect, [&] {
    netflow::TraceReader reader(bin_path);
    ScanAggregates a;
    netflow::FlowRecord r;
    while (reader.next(r)) {
      a.bytes += r.bytes_src + r.bytes_dst;
      a.pkts += r.pkts_src + r.pkts_dst;
      a.failed += r.failed() ? 1 : 0;
    }
    return a;
  }, drains_agree);
  const double v3_drain_s = time_scan(1, expect, [&] {
    netflow::TraceReader reader(cbin_path);
    ScanAggregates a;
    netflow::FlowBatch batch;
    while (reader.next_batch(batch) > 0) {
      a.bytes += batch.total_bytes();
      a.pkts += batch.total_pkts();
      a.failed += batch.failed_count();
    }
    return a;
  }, drains_agree);
  const bool columnar_decoded_ok = traces_equal(trace, netflow::read_binary_file(cbin_path));
  std::printf("  binary drain: v1 next() %7.3f s   v3 next_batch() %7.3f s   speedup %5.2fx   "
              "aggregates %s, v3 read_all %s\n",
              v1_drain_s, v3_drain_s, v1_drain_s / v3_drain_s,
              drains_agree ? "identical" : "DIVERGED",
              columnar_decoded_ok ? "identical" : "DIVERGED");

  const bool ok = decoded_ok && scans_agree && drains_agree && columnar_decoded_ok;

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_io: cannot write JSON to %s\n", json_path.c_str());
      return 1;
    }
    const auto mflows = [flows](const Timed& t) {
      return static_cast<double>(flows) / t.seconds / 1e6;
    };
    util::JsonWriter w(out);
    w.begin_object();
    w.kv("bench", "bench_io");
    w.kv("flows", static_cast<std::uint64_t>(flows));
    w.key("tradeplot_threads");
    if (env_threads) {
      w.value(static_cast<std::uint64_t>(*env_threads));
    } else {
      w.null();
    }
    w.key("formats");
    w.begin_array();
    const auto format_entry = [&](const char* format, const Timed& before,
                                  const Timed& after) {
      w.begin_object();
      w.kv("format", format);
      w.key("legacy_s");
      w.number(before.seconds, "%.3f");
      w.key("current_s");
      w.number(after.seconds, "%.3f");
      w.key("legacy_mflows_per_s");
      w.number(mflows(before), "%.3f");
      w.key("current_mflows_per_s");
      w.number(mflows(after), "%.3f");
      w.key("speedup_vs_legacy");
      w.number(before.seconds / after.seconds, "%.3f");
      w.end_object();
    };
    format_entry("csv", csv_before, csv_after);
    format_entry("binary", bin_before, bin_after);
    w.end_array();
    w.kv("decoded_traces_identical", decoded_ok);
    w.key("feature_scan");
    w.begin_object();
    w.kv("reps", static_cast<std::uint64_t>(reps));
    w.key("aos_s");
    w.number(aos_s, "%.4f");
    w.key("columnar_s");
    w.number(col_s, "%.4f");
    w.key("speedup_columnar_vs_aos");
    w.number(scan_speedup, "%.3f");
    w.kv("aggregates_identical", scans_agree);
    w.end_object();
    w.key("columnar_binary");
    w.begin_object();
    w.key("v1_next_s");
    w.number(v1_drain_s, "%.4f");
    w.key("v3_next_batch_s");
    w.number(v3_drain_s, "%.4f");
    w.key("speedup_v3_vs_v1");
    w.number(v1_drain_s / v3_drain_s, "%.3f");
    w.kv("aggregates_identical", drains_agree);
    w.kv("decoded_trace_identical", columnar_decoded_ok);
    w.end_object();
    w.end_object();
    out << "\n";
    if (!out.flush()) {
      std::fprintf(stderr, "bench_io: cannot write JSON to %s\n", json_path.c_str());
      return 1;
    }
    std::printf("  JSON report written to %s\n", json_path.c_str());
  }

  std::filesystem::remove(csv_path);
  std::filesystem::remove(bin_path);
  std::filesystem::remove(cbin_path);
  return ok ? 0 : 1;
}
