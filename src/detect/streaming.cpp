#include "detect/streaming.h"

#include <algorithm>
#include <cmath>

#include "netflow/trace_reader.h"
#include "util/error.h"

namespace tradeplot::detect {

StreamingDetector::StreamingDetector(StreamingConfig config, VerdictSink sink)
    : config_(std::move(config)), sink_(std::move(sink)) {
  if (!config_.is_internal)
    throw util::ConfigError("StreamingDetector: is_internal required");
  if (config_.window <= 0.0)
    throw util::ConfigError("StreamingDetector: window must be > 0");
  if (!sink_) throw util::ConfigError("StreamingDetector: verdict sink required");
}

void StreamingDetector::ingest(const netflow::FlowRecord& flow) {
  if (!window_open_) {
    // First flow anchors the first window at a whole multiple of D, so
    // window boundaries are stable regardless of when traffic starts.
    window_start_ = std::floor(flow.start_time / config_.window) * config_.window;
    window_open_ = true;
  }
  roll_to(flow.start_time);

  const auto touch = [&](simnet::Ipv4 host, double t) -> HostState& {
    HostState& state = hosts_[host];
    if (!state.seen) {
      state.seen = true;
      state.features.host = host;
      state.features.first_activity = t;
    } else {
      state.features.first_activity = std::min(state.features.first_activity, t);
    }
    return state;
  };

  if (config_.is_internal(flow.src)) {
    HostState& state = touch(flow.src, flow.start_time);
    HostFeatures& f = state.features;
    f.flows_initiated += 1;
    if (flow.failed()) f.flows_failed += 1;
    f.bytes_sent_initiated += flow.bytes_src;
    // Accumulate the raw start time; churn and interstitials are derived
    // from the sorted per-destination times at window close, so late
    // arrivals land in their true position instead of producing spurious
    // |gap| samples that diverge from the batch extractor.
    state.per_dst_times[flow.dst].push_back(flow.start_time);
  }
  if (config_.is_internal(flow.dst) && !flow.failed()) {
    HostState& state = touch(flow.dst, flow.start_time);
    state.features.flows_received += 1;
    state.features.bytes_sent_received += flow.bytes_dst;
  }
  ++flows_in_window_;
}

void StreamingDetector::roll_to(double time) {
  while (window_open_ && time >= window_start_ + config_.window) {
    emit();
    window_start_ += config_.window;
  }
}

void StreamingDetector::emit() {
  // Finalize per-destination state (churn + interstitials) via the same
  // helper as the batch extractor.
  FeatureMap features;
  features.reserve(hosts_.size());
  for (auto& [host, state] : hosts_) {
    finalize_destinations(state.features, state.per_dst_times, config_.new_ip_grace);
    features.emplace(host, std::move(state.features));
  }

  WindowVerdict verdict;
  verdict.window_index = windows_emitted_;
  verdict.window_start = window_start_;
  verdict.window_end = window_start_ + config_.window;
  verdict.flows_seen = flows_in_window_;
  if (!features.empty()) {
    verdict.result = find_plotters(features, config_.pipeline);
  }
  verdict.features = std::move(features);
  sink_(verdict);

  hosts_.clear();
  flows_in_window_ = 0;
  ++windows_emitted_;
}

void StreamingDetector::flush() {
  if (!window_open_) return;
  emit();
  window_open_ = false;
}

std::size_t feed(netflow::TraceReader& reader, StreamingDetector& detector) {
  netflow::FlowRecord rec;
  std::size_t fed = 0;
  while (reader.next(rec)) {
    detector.ingest(rec);
    ++fed;
  }
  detector.flush();
  return fed;
}

}  // namespace tradeplot::detect
