# Empty compiler generated dependencies file for stats_hcluster_test.
# This may be replaced when dependencies are built.
