#include "eval/experiments.h"

#include <algorithm>
#include <array>

#include "stats/descriptive.h"

namespace tradeplot::eval {

DaySet make_days(const EvalConfig& config) {
  DaySet set;
  // The honeynet traces are fixed across days, exactly as in the paper —
  // only the host assignment is re-randomised per day. Each botnet gets its
  // own overlay run per day (§V evaluates them separately).
  set.storm_trace = botnet::generate_storm_trace(config.honeynet);
  set.nugache_trace = botnet::generate_nugache_trace(config.honeynet);
  const netflow::TraceSet empty;
  set.storm_days.reserve(static_cast<std::size_t>(config.days));
  set.nugache_days.reserve(static_cast<std::size_t>(config.days));
  for (int d = 0; d < config.days; ++d) {
    set.storm_days.push_back(
        make_day(config.campus, set.storm_trace, empty, static_cast<std::uint64_t>(d)));
    set.nugache_days.push_back(
        make_day(config.campus, empty, set.nugache_trace, static_cast<std::uint64_t>(d)));
  }
  return set;
}

namespace {

/// Runs one test variant over one day and returns (output, population).
struct StageOutput {
  detect::HostSet output;
  detect::HostSet population;
};

StageOutput run_sweep_stage(const DayData& day, SweepTest test, double pct,
                            const detect::FindPlottersConfig& base) {
  const detect::HostSet input = detect::all_hosts(day.features);
  const detect::HostSet reduced = detect::data_reduction(day.features, input, base.reduction);
  StageOutput out;
  out.population = reduced;
  switch (test) {
    case SweepTest::kVolume: {
      detect::VolumeTestConfig cfg = base.volume;
      cfg.percentile = pct;
      out.output = detect::volume_test(day.features, reduced, cfg);
      break;
    }
    case SweepTest::kChurn: {
      detect::ChurnTestConfig cfg = base.churn;
      cfg.percentile = pct;
      out.output = detect::churn_test(day.features, reduced, cfg);
      break;
    }
    case SweepTest::kHumanMachine: {
      const detect::HostSet s_vol = detect::volume_test(day.features, reduced, base.volume);
      const detect::HostSet s_churn = detect::churn_test(day.features, reduced, base.churn);
      out.population = detect::host_union(s_vol, s_churn);
      detect::HumanMachineConfig cfg = base.human_machine;
      cfg.diameter_percentile = pct;
      out.output = detect::human_machine_test(day.features, out.population, cfg).flagged;
      break;
    }
  }
  return out;
}

}  // namespace

RocSweepResult roc_sweep(const DaySet& days, SweepTest test,
                         const detect::FindPlottersConfig& base) {
  RocSweepResult result;
  result.percentiles = {0.1, 0.3, 0.5, 0.7, 0.9};

  for (const double pct : result.percentiles) {
    std::vector<StageRates> storm_rates, nugache_rates;
    for (const DayData& day : days.storm_days) {
      const StageOutput s = run_sweep_stage(day, test, pct, base);
      storm_rates.push_back(stage_rates(day, s.output, s.population));
    }
    for (const DayData& day : days.nugache_days) {
      const StageOutput s = run_sweep_stage(day, test, pct, base);
      nugache_rates.push_back(stage_rates(day, s.output, s.population));
    }
    const StageRates storm_avg = average(storm_rates);
    const StageRates nugache_avg = average(nugache_rates);
    const std::string label = "p" + std::to_string(static_cast<int>(pct * 100));
    result.storm.add(storm_avg.fp, storm_avg.storm_tp, label);
    result.nugache.add(nugache_avg.fp, nugache_avg.nugache_tp, label);
  }
  return result;
}

FunnelResult funnel(const DaySet& days, const detect::FindPlottersConfig& config) {
  FunnelResult result;
  constexpr const char* kStageNames[] = {"data-reduction", "theta_vol", "theta_churn",
                                         "vol-or-churn", "theta_hm"};
  std::vector<std::vector<StageRates>> storm_stage(5), nugache_stage(5);
  result.nugache_flow_counts.assign(5, {});

  const auto stage_sets = [](const detect::FindPlottersResult& run) {
    return std::array<const detect::HostSet*, 5>{&run.reduced, &run.s_vol, &run.s_churn,
                                                 &run.vol_or_churn, &run.plotters};
  };

  for (const DayData& day : days.storm_days) {
    const detect::FindPlottersResult run = detect::find_plotters(day.features, config);
    const auto sets = stage_sets(run);
    for (int s = 0; s < 5; ++s) {
      storm_stage[static_cast<std::size_t>(s)].push_back(
          stage_rates(day, *sets[static_cast<std::size_t>(s)], run.input));
    }
  }
  for (const DayData& day : days.nugache_days) {
    const detect::FindPlottersResult run = detect::find_plotters(day.features, config);
    const auto sets = stage_sets(run);
    for (int s = 0; s < 5; ++s) {
      nugache_stage[static_cast<std::size_t>(s)].push_back(
          stage_rates(day, *sets[static_cast<std::size_t>(s)], run.input));
      for (const simnet::Ipv4 host : *sets[static_cast<std::size_t>(s)]) {
        if (day.is_nugache(host)) {
          result.nugache_flow_counts[static_cast<std::size_t>(s)].push_back(
              static_cast<double>(day.features.at(host).flows_initiated));
        }
      }
    }
  }

  // Merge the two runs into one row per stage: Storm TP from the Storm run,
  // Nugache TP from the Nugache run, negatives/Traders averaged across both
  // (the background population is the same eight days).
  for (int s = 0; s < 5; ++s) {
    const StageRates storm_avg = average(storm_stage[static_cast<std::size_t>(s)]);
    const StageRates nugache_avg = average(nugache_stage[static_cast<std::size_t>(s)]);
    StageRates merged = storm_avg;
    merged.nugache_tp = nugache_avg.nugache_tp;
    merged.nugache_in_population = nugache_avg.nugache_in_population;
    merged.fp = (storm_avg.fp + nugache_avg.fp) / 2.0;
    merged.traders_remaining =
        (storm_avg.traders_remaining + nugache_avg.traders_remaining) / 2.0;
    merged.flagged = (storm_avg.flagged + nugache_avg.flagged) / 2;
    result.stages.push_back(FunnelStage{kStageNames[s], merged});
  }
  return result;
}

std::vector<EvasionThresholdDay> evasion_thresholds(const DaySet& days,
                                                    const detect::FindPlottersConfig& config) {
  std::vector<EvasionThresholdDay> out;
  for (std::size_t d = 0; d < days.storm_days.size(); ++d) {
    const DayData& storm_day = days.storm_days[d];
    const DayData& nugache_day = days.nugache_days[d];

    const detect::HostSet input = detect::all_hosts(storm_day.features);
    const detect::HostSet reduced =
        detect::data_reduction(storm_day.features, input, config.reduction);

    EvasionThresholdDay row;
    row.day = static_cast<int>(d);
    row.tau_vol = detect::volume_threshold(storm_day.features, reduced, config.volume);
    row.tau_churn = detect::churn_threshold(storm_day.features, reduced, config.churn);

    std::vector<double> storm_vol, storm_churn;
    for (const simnet::Ipv4 host : storm_day.storm_hosts) {
      const auto& f = storm_day.features.at(host);
      storm_vol.push_back(f.volume(config.volume.metric));
      storm_churn.push_back(f.new_ip_fraction());
    }
    std::vector<double> nugache_vol, nugache_churn;
    for (const simnet::Ipv4 host : nugache_day.nugache_hosts) {
      const auto& f = nugache_day.features.at(host);
      nugache_vol.push_back(f.volume(config.volume.metric));
      nugache_churn.push_back(f.new_ip_fraction());
    }
    if (!storm_vol.empty()) {
      row.storm_median_volume = stats::median(storm_vol);
      row.storm_median_churn = stats::median(storm_churn);
    }
    if (!nugache_vol.empty()) {
      row.nugache_median_volume = stats::median(nugache_vol);
      row.nugache_median_churn = stats::median(nugache_churn);
    }
    out.push_back(row);
  }
  return out;
}

std::vector<JitterPoint> jitter_sweep(const EvalConfig& config, const std::vector<double>& delays,
                                      const detect::FindPlottersConfig& pipeline) {
  std::vector<JitterPoint> out;
  for (const double d : delays) {
    EvalConfig jittered = config;
    jittered.honeynet.storm.evasion.jitter_range = d;
    jittered.honeynet.nugache.evasion.jitter_range = d;
    const DaySet days = make_days(jittered);

    std::vector<StageRates> storm_rates, nugache_rates;
    for (const DayData& day : days.storm_days) {
      const detect::FindPlottersResult run = detect::find_plotters(day.features, pipeline);
      storm_rates.push_back(stage_rates(day, run.plotters, run.input));
    }
    for (const DayData& day : days.nugache_days) {
      const detect::FindPlottersResult run = detect::find_plotters(day.features, pipeline);
      nugache_rates.push_back(stage_rates(day, run.plotters, run.input));
    }
    out.push_back(
        JitterPoint{d, average(storm_rates).storm_tp, average(nugache_rates).nugache_tp});
  }
  return out;
}

}  // namespace tradeplot::eval
