// trace_tool: generate, convert and inspect flow traces from the command
// line — the library's I/O surface as a utility.
//
//   trace_tool generate <out.(csv|bin|cbin)> [seed] [window_s]  simulate a campus day
//   trace_tool storm    <out.(csv|bin|cbin)> [seed]             24h Storm honeynet trace
//   trace_tool nugache  <out.(csv|bin|cbin)> [seed]             24h Nugache honeynet trace
//   trace_tool convert  <in> <out>                              csv/bin/cbin by extension
//                                                               (.cbin = columnar v3)
//   trace_tool stats    <in>                                per-class summary + ingest
//                                                           metrics (prom + json)
//   trace_tool head     <in> [n]                            first n flows (streaming)
//   trace_tool shard    <in> <out> --shards N               split by consistent hash
//                                                           into out.shardK.<ext>
//
// Inputs are format-sniffed by content (TraceReader), so a binary trace with
// a .csv name still loads; outputs pick their format by extension.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "botnet/honeynet.h"
#include "detect/features.h"
#include "netflow/classifier.h"
#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "shard/ring.h"
#include "trace/campus.h"
#include "util/format.h"

using namespace tradeplot;

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

netflow::TraceSet load(const std::string& path) {
  netflow::TraceReader reader(path);  // format sniffed from the file content
  return reader.read_all();
}

void store(const std::string& path, const netflow::TraceSet& trace) {
  if (has_suffix(path, ".cbin")) {
    // Columnar (v3) binary: SoA blocks TraceReader::next_batch decodes with
    // straight column reads. Readers sniff the version, so either binary
    // flavor loads transparently.
    netflow::write_binary_columnar_file(path, trace);
  } else if (has_suffix(path, ".bin")) {
    netflow::write_binary_file(path, trace);
  } else {
    netflow::write_csv_file(path, trace);
  }
}

int stats(const std::string& path) {
  // Stream the trace through TraceReader with the obs registry live, and
  // snapshot immediately after ingestion so the exported metrics describe
  // the read itself (records, bytes, parse timings), not feature extraction.
  obs::set_enabled(true);
  const netflow::TraceSet trace = load(path);
  const obs::MetricsSnapshot ingest = obs::Registry::global().snapshot();
  std::printf("%s: %zu flows, window [%.0f, %.0f] s, %zu ground-truth hosts\n", path.c_str(),
              trace.flows().size(), trace.window_start(), trace.window_end(),
              trace.truth().size());

  detect::FeatureExtractorConfig fx;
  fx.is_internal = detect::default_internal_predicate;
  const auto features = detect::extract_features(trace, fx);

  struct Row {
    std::size_t hosts = 0;
    std::size_t flows = 0;
    double failed = 0;
    double volume = 0;
  };
  std::map<std::string, Row> rows;
  for (const auto& [ip, f] : features) {
    Row& row = rows[std::string(netflow::to_string(trace.kind_of(ip)))];
    row.hosts += 1;
    row.flows += f.flows_initiated;
    row.failed += f.failed_rate();
    row.volume += f.volume(detect::VolumeMetric::kSentPerFlow);
  }
  std::printf("  %-14s %8s %10s %10s %14s\n", "class", "hosts", "flows", "failed%",
              "avg B/flow");
  for (const auto& [kind, row] : rows) {
    const double n = static_cast<double>(row.hosts);
    std::printf("  %-14s %8zu %10zu %9.1f%% %14.0f\n", kind.c_str(), row.hosts, row.flows,
                100.0 * row.failed / n, row.volume / n);
  }

  const auto labels = netflow::PayloadClassifier::label_hosts(trace.flows(), 2);
  std::size_t internal_p2p = 0;
  for (const auto& [ip, label] : labels) {
    if (fx.is_internal(ip)) ++internal_p2p;
  }
  std::printf("  payload classifier: %zu internal hosts carry P2P file-sharing markers\n",
              internal_p2p);

  std::printf("\n--- ingest metrics (prometheus) ---\n");
  std::fputs(obs::to_prometheus(ingest).c_str(), stdout);
  std::printf("--- ingest metrics (json) ---\n");
  std::fputs(obs::to_json(ingest).c_str(), stdout);
  return 0;
}

int head(const std::string& path, std::size_t n) {
  // Streams the first n flows without loading the trace: memory stays at one
  // read buffer even for a multi-gigabyte input.
  netflow::TraceReader reader(path);
  std::printf("%s: %s trace, window [%.0f, %.0f] s\n", path.c_str(),
              std::string(netflow::to_string(reader.format())).c_str(), reader.window_start(),
              reader.window_end());
  netflow::FlowRecord r;
  while (reader.flows_read() < n && reader.next(r)) {
    std::printf("  %-15s -> %-15s %5u -> %5u %-4s t=[%.3f, %.3f] %llu/%llu B %s\n",
                r.src.to_string().c_str(), r.dst.to_string().c_str(), r.sport, r.dport,
                std::string(netflow::to_string(r.proto)).c_str(), r.start_time, r.end_time,
                static_cast<unsigned long long>(r.bytes_src),
                static_cast<unsigned long long>(r.bytes_dst),
                std::string(netflow::to_string(r.state)).c_str());
  }
  std::printf("  (%zu flow(s) shown)\n", reader.flows_read());
  return 0;
}

// Splits a trace into one file per shard with the SAME consistent hash the
// sharded detector routes by (shard/ring.h, keyed on the flow's source
// host), so "campus_monitor --stream out.shardK --shards 1" on each part
// replays exactly what shard K's accumulator would see on the initiator
// side. Row counts are conserved: every input flow lands in exactly one
// output file. Ground truth and the window span are replicated into every
// part so each stays a self-contained trace.
int shard_split(const std::string& in, const std::string& out, std::size_t shards) {
  const netflow::TraceSet trace = load(in);
  const shard::HashRing ring(shards);

  // out.csv -> out.shard0.csv; an extension-less path just gets the suffix.
  const std::size_t dot = out.rfind('.');
  const std::size_t slash = out.rfind('/');
  const bool has_ext = dot != std::string::npos && (slash == std::string::npos || dot > slash);
  const std::string stem = has_ext ? out.substr(0, dot) : out;
  const std::string ext = has_ext ? out.substr(dot) : "";

  std::vector<netflow::TraceSet> parts;
  parts.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    parts.emplace_back(trace.window_start(), trace.window_end());
    for (const auto& [host, kind] : trace.truth()) parts.back().set_truth(host, kind);
  }
  for (const netflow::FlowRecord& flow : trace.flows())
    parts[ring.shard_of(flow.src)].add_flow(flow);

  std::size_t total = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::string path = stem + ".shard" + std::to_string(s) + ext;
    store(path, parts[s]);
    std::printf("wrote %s: %zu flows\n", path.c_str(), parts[s].flows().size());
    total += parts[s].flows().size();
  }
  std::printf("%zu flows in, %zu flows out across %zu shard file(s)\n", trace.flows().size(),
              total, shards);
  return total == trace.flows().size() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s generate|storm|nugache <out> [seed] [window_s]\n"
                 "       %s convert <in> <out>\n"
                 "       %s stats <in>\n"
                 "       %s head <in> [n]\n"
                 "       %s shard <in> <out> --shards N\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "stats") return stats(argv[2]);
    if (command == "head")
      return head(argv[2], argc > 3 ? static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10))
                                    : 10);
    if (command == "shard") {
      if (argc != 6 || std::strcmp(argv[4], "--shards") != 0) {
        std::fprintf(stderr, "shard needs <in> <out> --shards N\n");
        return 2;
      }
      char* end = nullptr;
      const unsigned long long n = std::strtoull(argv[5], &end, 10);
      if (*argv[5] == '\0' || *argv[5] == '-' || *end != '\0' || n == 0) {
        std::fprintf(stderr, "bad --shards '%s': must be a positive integer\n", argv[5]);
        return 2;
      }
      return shard_split(argv[2], argv[3], static_cast<std::size_t>(n));
    }
    if (command == "convert") {
      if (argc < 4) {
        std::fprintf(stderr, "convert needs <in> <out>\n");
        return 2;
      }
      store(argv[3], load(argv[2]));
      std::printf("wrote %s\n", argv[3]);
      return 0;
    }
    const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
    if (command == "generate") {
      trace::CampusConfig config;
      config.seed = seed;
      if (argc > 4) config.window = std::atof(argv[4]);
      store(argv[2], trace::generate_campus_trace(config));
    } else if (command == "storm" || command == "nugache") {
      botnet::HoneynetConfig config;
      config.seed = seed;
      store(argv[2], command == "storm" ? botnet::generate_storm_trace(config)
                                        : botnet::generate_nugache_trace(config));
    } else {
      std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
      return 2;
    }
    std::printf("wrote %s\n", argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
