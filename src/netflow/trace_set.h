// TraceSet: a window of flow records plus ground truth about each host.
//
// Ground truth is what the paper derives from payload inspection (Traders)
// and from knowing which honeynet trace a bot came from (Plotters). The
// detection pipeline never reads it; the evaluation harness does.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netflow/flow_record.h"
#include "simnet/address.h"

namespace tradeplot::netflow {

/// Fine-grained role of a simulated host.
enum class HostKind : std::uint8_t {
  kUnknown = 0,
  // Background (non-P2P) roles.
  kWebClient,
  kWebServer,
  kMailServer,
  kDnsClient,
  kNtpClient,
  kScanner,
  kIdle,
  // Traders.
  kGnutella,
  kEMule,
  kBitTorrent,
  // Plotters.
  kStorm,
  kNugache,
};

/// The paper's three-way host taxonomy.
enum class HostClass : std::uint8_t { kBackground = 0, kTrader, kPlotter };

[[nodiscard]] std::string_view to_string(HostKind kind);
[[nodiscard]] std::string_view to_string(HostClass cls);
[[nodiscard]] HostClass host_class(HostKind kind);

class TraceSet {
 public:
  TraceSet() = default;
  TraceSet(double window_start, double window_end)
      : window_start_(window_start), window_end_(window_end) {}

  [[nodiscard]] double window_start() const { return window_start_; }
  [[nodiscard]] double window_end() const { return window_end_; }
  void set_window(double start, double end) {
    window_start_ = start;
    window_end_ = end;
  }

  [[nodiscard]] const std::vector<FlowRecord>& flows() const { return flows_; }
  [[nodiscard]] std::vector<FlowRecord>& flows() { return flows_; }

  void add_flow(FlowRecord rec) { flows_.push_back(std::move(rec)); }
  /// Pre-allocates room for `n` more flows (readers with a known flow count
  /// use this to avoid reallocation during bulk ingestion).
  void reserve_flows(std::size_t n) { flows_.reserve(flows_.size() + n); }
  void set_truth(simnet::Ipv4 host, HostKind kind) { truth_[host] = kind; }

  [[nodiscard]] HostKind kind_of(simnet::Ipv4 host) const;
  [[nodiscard]] HostClass class_of(simnet::Ipv4 host) const { return host_class(kind_of(host)); }
  [[nodiscard]] const std::unordered_map<simnet::Ipv4, HostKind>& truth() const { return truth_; }

  /// All hosts of a given kind / class (from ground truth).
  [[nodiscard]] std::vector<simnet::Ipv4> hosts_of_kind(HostKind kind) const;
  [[nodiscard]] std::vector<simnet::Ipv4> hosts_of_class(HostClass cls) const;

  /// Distinct initiator addresses appearing in the trace.
  [[nodiscard]] std::vector<simnet::Ipv4> initiators() const;

  /// Sorts flows by start time (stable, so equal timestamps keep order).
  void sort_by_time();

  /// Appends all of `other`'s flows and ground truth (other wins on
  /// conflicting truth entries); widens the window to cover both.
  void merge(const TraceSet& other);

 private:
  double window_start_ = 0.0;
  double window_end_ = 0.0;
  std::vector<FlowRecord> flows_;
  std::unordered_map<simnet::Ipv4, HostKind> truth_;
};

}  // namespace tradeplot::netflow
