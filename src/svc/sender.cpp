#include "svc/sender.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "util/error.h"
#include "util/interrupt.h"

namespace tradeplot::svc {

namespace {

constexpr int kPollMs = 100;

bool send_frame(int fd, FrameType type, std::string_view payload) {
  const std::vector<char> wire = encode_frame(type, payload);
  return send_all(fd, wire.data(), wire.size());
}

}  // namespace

FrameSender::FrameSender(SenderOptions options, util::Clock& clock)
    : options_(std::move(options)), clock_(clock) {}

bool FrameSender::recv_frame(int fd, FrameParser& parser, Frame& out) {
  char buf[16 * 1024];
  const double deadline = clock_.now() + options_.ack_timeout;
  for (;;) {
    if (parser.next(out)) return true;
    if (clock_.now() > deadline || util::shutdown_requested()) return false;
    if (!wait_readable(fd, kPollMs)) continue;
    std::size_t got = 0;
    try {
      got = recv_some(fd, buf, sizeof(buf));
    } catch (const util::IoError&) {
      return false;
    }
    if (got == 0) return false;
    parser.append(buf, got);
  }
}

Fd FrameSender::connect_with_retry(std::uint64_t& cursor, SendReport& report) {
  (void)report;
  const Endpoint ep = Endpoint::parse(options_.endpoint);
  double backoff = options_.backoff_initial;
  std::string last_error = "no attempt made";
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      clock_.sleep_for(backoff);
      backoff = std::min(backoff * 2.0, options_.backoff_max);
    }
    try {
      Fd fd = connect_to(ep);
      if (!send_frame(fd.get(), FrameType::kHello, options_.tenant)) {
        last_error = "peer closed during hello";
        continue;
      }
      FrameParser parser;
      Frame reply;
      if (!recv_frame(fd.get(), parser, reply)) {
        last_error = "no hello ack before timeout";
        continue;
      }
      if (reply.type == FrameType::kError)
        throw util::Error("daemon rejected hello: " + std::string(reply.payload_view()));
      if (reply.type != FrameType::kHelloAck || reply.payload.size() < sizeof(std::uint64_t)) {
        last_error = "malformed hello ack";
        continue;
      }
      cursor = read_u64(reply.payload.data());
      return fd;
    } catch (const util::IoError& e) {
      last_error = e.what();
    }
  }
  throw util::IoError("sender: gave up on " + ep.to_string() + " after " +
                      std::to_string(options_.max_attempts) + " attempts (" + last_error +
                      ")");
}

SendReport FrameSender::stream(const std::string& trace_path) {
  SendReport report;
  std::uint64_t cursor = 0;
  Fd fd = connect_with_retry(cursor, report);
  bool first_connect_done = true;

  const auto reconnect = [&] {
    fd.reset();
    fd = connect_with_retry(cursor, report);
    if (first_connect_done) ++report.reconnects;
  };

  for (;;) {
    // (Re)open the trace at the daemon's cursor. Rows before it are already
    // in the daemon's books (ingested, queued, shed, or quarantined) and
    // must not be sent twice; rows after it were lost with the crash and
    // are sent again.
    netflow::TraceReader reader(trace_path, netflow::ErrorPolicy::strict());
    reader.skip_flows(static_cast<std::size_t>(cursor));

    bool connection_lost = false;
    std::vector<netflow::FlowRecord> chunk;
    chunk.reserve(options_.rows_per_frame);
    for (;;) {
      chunk.clear();
      netflow::FlowRecord record;
      while (chunk.size() < options_.rows_per_frame && reader.next(record))
        chunk.push_back(record);
      if (chunk.empty()) break;

      // The payload is a self-contained v3 mini-trace; its preamble window
      // is a placeholder — detection windows roll on flow timestamps.
      std::ostringstream payload;
      netflow::write_binary_columnar(payload, chunk.data(), chunk.size(), 0.0, 0.0);
      const std::string bytes = payload.str();
      const std::vector<char> wire = encode_frame(FrameType::kFlows, bytes);
      if (!send_all(fd.get(), wire.data(), wire.size())) {
        connection_lost = true;
        break;
      }
      cursor += chunk.size();
      report.rows_sent += chunk.size();
      ++report.frames_sent;
    }
    if (connection_lost) {
      reconnect();
      continue;
    }

    // End of trace: flush barrier, collect the daemon's accounting.
    if (!send_frame(fd.get(), FrameType::kFlush, {})) {
      reconnect();
      continue;
    }
    FrameParser parser;
    Frame reply;
    if (!recv_frame(fd.get(), parser, reply)) {
      reconnect();
      continue;
    }
    if (reply.type == FrameType::kError)
      throw util::Error("daemon rejected flush: " + std::string(reply.payload_view()));
    if (reply.type != FrameType::kFlushAck || reply.payload.size() < 4 * sizeof(std::uint64_t)) {
      reconnect();
      continue;
    }
    const char* p = reply.payload.data();
    report.accepted = read_u64(p);
    report.ingested = read_u64(p + 8);
    report.shed = read_u64(p + 16);
    report.quarantined = read_u64(p + 24);
    (void)send_frame(fd.get(), FrameType::kBye, {});
    return report;
  }
}

}  // namespace tradeplot::svc
