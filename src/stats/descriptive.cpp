#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace tradeplot::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() <= 1) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (const double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw util::ConfigError("quantile of empty sample");
  if (q < 0.0 || q > 1.0) throw util::ConfigError("quantile q out of [0,1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  if (lo == hi) return sorted[lo];
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double iqr(std::span<const double> xs) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, 0.75) - quantile_sorted(copy, 0.25);
}

double ecdf_at(std::span<const double> sorted, double x) {
  if (sorted.empty()) return 0.0;
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size());
}

std::vector<EcdfPoint> ecdf(std::span<const double> xs) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  std::vector<EcdfPoint> out;
  out.reserve(copy.size());
  const double n = static_cast<double>(copy.size());
  for (std::size_t i = 0; i < copy.size(); ++i) {
    // Collapse duplicates: keep the highest fraction for each value.
    if (!out.empty() && out.back().value == copy[i]) {
      out.back().fraction = static_cast<double>(i + 1) / n;
    } else {
      out.push_back({copy[i], static_cast<double>(i + 1) / n});
    }
  }
  return out;
}

}  // namespace tradeplot::stats
