# Empty compiler generated dependencies file for ablation_binwidth.
# This may be replaced when dependencies are built.
