// Ablation: relative (percentile) thresholds vs fixed thresholds under
// volume evasion.
//
// The paper's evasion argument (§VI) rests on thresholds being computed
// from the live traffic mix. This bench quantifies it: bots inflate their
// per-flow volume by a multiplier; the dynamic pipeline recomputes τ_vol
// per day, while the "fixed" variant freezes τ_vol at its day-0,
// multiplier-1 value. A fixed threshold is a number the botmaster can learn
// and beat; the dynamic one moves with the population.
#include "bench/bench_util.h"

using namespace tradeplot;

namespace {

struct Outcome {
  double storm_tp;
  double nugache_tp;
};

Outcome run_pipeline(const eval::DaySet& days, const detect::FindPlottersConfig& cfg,
                     double fixed_tau_vol) {
  const benchx::MergedRates avg =
      benchx::merged_rates(days, [&](const eval::DayData& day) {
        const detect::HostSet input = detect::all_hosts(day.features);
        const detect::HostSet reduced =
            detect::data_reduction(day.features, input, cfg.reduction);
        detect::HostSet s_vol;
        if (fixed_tau_vol > 0) {
          for (const simnet::Ipv4 host : reduced) {
            if (day.features.at(host).volume(cfg.volume.metric) < fixed_tau_vol)
              s_vol.push_back(host);
          }
        } else {
          s_vol = detect::volume_test(day.features, reduced, cfg.volume);
        }
        const detect::HostSet s_churn = detect::churn_test(day.features, reduced, cfg.churn);
        const detect::HostSet unioned = detect::host_union(s_vol, s_churn);
        const auto hm = detect::human_machine_test(day.features, unioned, cfg.human_machine);
        return std::pair{hm.flagged, input};
      });
  return {avg.storm_tp, avg.nugache_tp};
}

}  // namespace

int main() {
  benchx::header("Ablation - percentile vs fixed tau_vol under volume-inflation evasion");

  const detect::FindPlottersConfig pipeline;
  eval::EvalConfig base = benchx::paper_eval_config();
  base.days = 4;  // ablation runs several full sweeps; fewer days keep it quick

  // Calibrate the fixed threshold on honest (multiplier = 1) traffic.
  const eval::DaySet honest = eval::make_days(base);
  const detect::HostSet input = detect::all_hosts(honest.storm_days[0].features);
  const detect::HostSet reduced = detect::data_reduction(honest.storm_days[0].features, input);
  const double frozen_tau = detect::volume_threshold(honest.storm_days[0].features, reduced);
  std::printf("  frozen tau_vol (day 0, x1): %.1f bytes/flow\n\n", frozen_tau);

  std::printf("  %-12s %-26s %-26s\n", "", "dynamic tau (Storm/Nugache)",
              "frozen tau (Storm/Nugache)");
  for (const double mult : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    eval::EvalConfig cfg = base;
    cfg.honeynet.storm.evasion.volume_multiplier = mult;
    cfg.honeynet.nugache.evasion.volume_multiplier = mult;
    const eval::DaySet days = eval::make_days(cfg);
    const Outcome dynamic = run_pipeline(days, pipeline, 0.0);
    const Outcome frozen = run_pipeline(days, pipeline, frozen_tau);
    std::printf("  volume x%-4.0f %9.1f%% / %-9.1f%%    %9.1f%% / %-9.1f%%\n", mult,
                dynamic.storm_tp * 100, dynamic.nugache_tp * 100, frozen.storm_tp * 100,
                frozen.nugache_tp * 100);
  }

  benchx::paper_reference(
      "DESIGN.md ablation (paper §VI rationale): with percentile\n"
      "thresholds the population median moves very little when 13+82 bots\n"
      "inflate their flows, so detection should degrade gracefully only\n"
      "once bots genuinely exceed the median Trader; a frozen threshold is\n"
      "beaten outright at the multiplier that crosses it. Expect the\n"
      "frozen column to collapse to ~0% at a lower multiplier than the\n"
      "dynamic column.");
  return 0;
}
