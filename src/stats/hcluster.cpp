#include "stats/hcluster.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "stats/simd.h"
#include "util/error.h"

namespace tradeplot::stats {

Dendrogram::Dendrogram(std::size_t leaves, std::vector<Merge> merges)
    : leaves_(leaves), merges_(std::move(merges)) {
  if (leaves_ == 0) throw util::ConfigError("dendrogram with no leaves");
  if (merges_.size() + 1 != leaves_ && !(leaves_ == 1 && merges_.empty()))
    throw util::ConfigError("dendrogram must have exactly n-1 merges");
}

std::vector<std::vector<std::size_t>> Dendrogram::components(
    const std::vector<bool>& keep_merge) const {
  // Union-find over leaves; apply kept merges only. Each node is represented
  // by a *structural* leaf — its left-descent leaf — so the result is the
  // plain graph connectivity after deleting the cut links, independent of
  // merge processing order. (An earlier version walked merges in height
  // order and chained representatives through internal-node slots; floating-
  // point rounding makes UPGMA heights non-monotone at noise level, the sort
  // then places a parent before its child, and the walk read uninitialized
  // slots — orphaning whole subtrees on near-tie populations.)
  std::vector<std::size_t> left_leaf(leaves_ + merges_.size());
  std::iota(left_leaf.begin(), left_leaf.begin() + static_cast<std::ptrdiff_t>(leaves_), 0);
  for (std::size_t k = 0; k < merges_.size(); ++k) {
    std::size_t x = merges_[k].left;
    while (x >= leaves_) x = merges_[x - leaves_].left;
    left_leaf[leaves_ + k] = x;
  }
  std::vector<std::size_t> parent(leaves_);
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t k = 0; k < merges_.size(); ++k) {
    if (!keep_merge[k]) continue;
    const Merge& m = merges_[k];
    const std::size_t a = find(left_leaf[m.left]);
    const std::size_t b = find(left_leaf[m.right]);
    parent[b] = a;
  }
  std::vector<std::vector<std::size_t>> groups;
  std::vector<int> group_of(leaves_, -1);
  for (std::size_t leaf = 0; leaf < leaves_; ++leaf) {
    const std::size_t root = find(leaf);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[root])].push_back(leaf);
  }
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return groups;
}

std::vector<std::vector<std::size_t>> Dendrogram::cut_top_fraction(double fraction) const {
  if (fraction < 0.0 || fraction > 1.0)
    throw util::ConfigError("cut fraction must be in [0,1]");
  const std::size_t links = merges_.size();
  const auto to_cut = static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(links)));
  // Indices of the `to_cut` merges with the largest heights (ties: later
  // merges cut first, matching the intuition that higher merges are weaker).
  std::vector<std::size_t> order(links);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (merges_[a].height != merges_[b].height) return merges_[a].height > merges_[b].height;
    return a > b;
  });
  std::vector<bool> keep(links, true);
  for (std::size_t i = 0; i < to_cut && i < links; ++i) keep[order[i]] = false;
  return components(keep);
}

std::vector<std::vector<std::size_t>> Dendrogram::cut_at_height(double threshold) const {
  std::vector<bool> keep(merges_.size());
  for (std::size_t k = 0; k < merges_.size(); ++k) keep[k] = merges_[k].height <= threshold;
  return components(keep);
}

namespace {

// The NN-chain discovers merges in an order that is not globally sorted by
// height (only locally reducible). Downstream cuts assume height order, so
// sort and remap internal node ids to the new positions. Shared by the dense
// and pruned drivers so both emit byte-identical dendrograms.
std::vector<Merge> sort_merges_by_height(std::vector<Merge> merges, std::size_t n) {
  std::vector<std::size_t> order(merges.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return merges[a].height < merges[b].height;
  });
  std::vector<std::size_t> new_pos(merges.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) new_pos[order[pos]] = pos;
  std::vector<Merge> sorted;
  sorted.reserve(merges.size());
  for (const std::size_t old_idx : order) {
    Merge m = merges[old_idx];
    if (m.left >= n) m.left = n + new_pos[m.left - n];
    if (m.right >= n) m.right = n + new_pos[m.right - n];
    sorted.push_back(m);
  }
  return sorted;
}

}  // namespace

Dendrogram agglomerative_average_linkage(std::span<const double> distances, std::size_t n) {
  if (n == 0) throw util::ConfigError("clustering zero items");
  if (distances.size() != n * n) throw util::ConfigError("distance matrix size mismatch");
  if (n == 1) return Dendrogram(1, {});

  // Working copy of the distance matrix; clusters are "active" slots.
  std::vector<double> d(distances.begin(), distances.end());
  std::vector<std::size_t> size(n, 1);
  std::vector<bool> active(n, true);
  // node_id[i]: dendrogram node currently represented by slot i.
  std::vector<std::size_t> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);

  const auto dist = [&](std::size_t a, std::size_t b) -> double& { return d[a * n + b]; };

  std::vector<Merge> merges;
  merges.reserve(n - 1);

  // Nearest-neighbour chain: average linkage is reducible, so following
  // nearest neighbours until a reciprocal pair is found yields the exact
  // UPGMA merge order in O(n^2) total.
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t remaining = n;
  while (remaining > 1) {
    if (chain.empty()) {
      for (std::size_t i = 0; i < n; ++i)
        if (active[i]) {
          chain.push_back(i);
          break;
        }
    }
    for (;;) {
      const std::size_t top = chain.back();
      // Nearest active neighbour of `top` (prefer the previous chain element
      // on ties so reciprocal pairs terminate the walk).
      std::size_t nearest = top;
      double best = std::numeric_limits<double>::max();
      const std::size_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : n;
      for (std::size_t j = 0; j < n; ++j) {
        if (!active[j] || j == top) continue;
        const double dj = dist(top, j);
        if (dj < best - 1e-15 || (std::abs(dj - best) <= 1e-15 && j == prev)) {
          best = dj;
          nearest = j;
        }
      }
      if (chain.size() >= 2 && nearest == chain[chain.size() - 2]) {
        // Reciprocal nearest neighbours: merge top and nearest.
        const std::size_t a = chain[chain.size() - 2];
        const std::size_t b = top;
        chain.pop_back();
        chain.pop_back();
        const double height = dist(a, b);
        merges.push_back(Merge{node_id[a], node_id[b], height, size[a] + size[b]});
        // Lance-Williams UPGMA update into slot a.
        for (std::size_t k = 0; k < n; ++k) {
          if (!active[k] || k == a || k == b) continue;
          const double na = static_cast<double>(size[a]);
          const double nb = static_cast<double>(size[b]);
          const double merged = (na * dist(a, k) + nb * dist(b, k)) / (na + nb);
          dist(a, k) = merged;
          dist(k, a) = merged;
        }
        size[a] += size[b];
        active[b] = false;
        node_id[a] = n + merges.size() - 1;
        --remaining;
        break;
      }
      chain.push_back(nearest);
    }
  }
  return Dendrogram(n, sort_merges_by_height(std::move(merges), n));
}

namespace {

/// Sparse store of resolved dendrogram-node-pair distances plus the
/// Lance-Williams replay machinery. Node ids are the dendrogram's: leaves
/// 0..n-1, internal node n+k formed by the k-th merge. Ids are immutable and
/// a later-formed node always has the larger id, so a cluster-pair value can
/// be replayed bottom-up with exactly the floating-point expression — and
/// operand order — the dense driver used when it eagerly updated its matrix:
///   d(X, Y) = (|Xl| * d(Xl, Y) + |Xr| * d(Xr, Y)) / (|Xl| + |Xr|)
/// where X is the later-formed of the two and (Xl, Xr) its children. By
/// induction every memoized value is bit-identical to the dense matrix cell
/// it stands for.
class ResolvedStore {
 public:
  struct Internal {
    std::size_t left;    // node id of the slot that survived the merge
    std::size_t right;   // node id of the slot that was absorbed
    double n_left;       // leaves under `left` at merge time
    double n_right;      // leaves under `right` at merge time
  };

  ResolvedStore(std::size_t leaves, const LeafDistanceFn& leaf_distance)
      : leaves_(leaves), leaf_distance_(leaf_distance) {
    memo_.reserve(leaves * 8);
    internal_.reserve(leaves);
  }

  void record_merge(std::size_t left_id, std::size_t right_id, double n_left,
                    double n_right) {
    internal_.push_back(Internal{left_id, right_id, n_left, n_right});
  }

  /// Memoized value for a node pair, or nullptr if it was never resolved.
  /// Never triggers resolution work.
  [[nodiscard]] const double* lookup(std::size_t ida, std::size_t idb) const {
    const auto hit = memo_.find(key(ida, idb));
    return hit == memo_.end() ? nullptr : &hit->second;
  }

  /// True when resolve(ida, idb) would complete without invoking the leaf
  /// kernel — every unmemoized pair underneath decomposes into memoized
  /// leaf-pair values, so the replay is pure Lance-Williams arithmetic.
  [[nodiscard]] bool resolvable_from_cache(std::size_t ida, std::size_t idb) const {
    check_stack_.clear();
    check_stack_.emplace_back(ida, idb);
    while (!check_stack_.empty()) {
      const auto [x, y] = check_stack_.back();
      check_stack_.pop_back();
      if (memo_.contains(key(x, y))) continue;
      if (x < leaves_ && y < leaves_) return false;
      const std::size_t split = std::max(x, y);
      const std::size_t other = std::min(x, y);
      const Internal& node = internal_[split - leaves_];
      check_stack_.emplace_back(node.left, other);
      check_stack_.emplace_back(node.right, other);
    }
    return true;
  }

  [[nodiscard]] double resolve(std::size_t ida, std::size_t idb) {
    const auto hit = memo_.find(key(ida, idb));
    if (hit != memo_.end()) return hit->second;
    // Iterative post-order expansion: a pair is computable once both child
    // pairs of its later-formed side are memoized.
    stack_.clear();
    stack_.emplace_back(ida, idb);
    while (!stack_.empty()) {
      const auto [x, y] = stack_.back();
      const std::uint64_t k = key(x, y);
      if (memo_.contains(k)) {
        stack_.pop_back();
        continue;
      }
      if (x < leaves_ && y < leaves_) {
        memo_.emplace(k, x < y ? leaf_distance_(x, y) : leaf_distance_(y, x));
        stack_.pop_back();
        continue;
      }
      // Split the later-formed (larger-id) side.
      const std::size_t split = std::max(x, y);
      const std::size_t other = std::min(x, y);
      const Internal& node = internal_[split - leaves_];
      const auto left = memo_.find(key(node.left, other));
      const auto right = memo_.find(key(node.right, other));
      if (left != memo_.end() && right != memo_.end()) {
        memo_.emplace(k, (node.n_left * left->second + node.n_right * right->second) /
                             (node.n_left + node.n_right));
        stack_.pop_back();
      } else {
        if (left == memo_.end()) stack_.emplace_back(node.left, other);
        if (right == memo_.end()) stack_.emplace_back(node.right, other);
      }
    }
    return memo_.at(key(ida, idb));
  }

 private:
  [[nodiscard]] static std::uint64_t key(std::size_t a, std::size_t b) {
    const std::uint64_t lo = std::min(a, b);
    const std::uint64_t hi = std::max(a, b);
    return (lo << 32) | hi;
  }

  std::size_t leaves_;
  const LeafDistanceFn& leaf_distance_;
  std::unordered_map<std::uint64_t, double> memo_;
  std::vector<Internal> internal_;
  std::vector<std::pair<std::size_t, std::size_t>> stack_;
  mutable std::vector<std::pair<std::size_t, std::size_t>> check_stack_;
};

/// Admissibility margin: the bounds are computed with reassociated (possibly
/// SIMD) sums and running means, so the mathematically admissible value
/// carries a few ulps of rounding. Shaving a relative 1e-9 plus an absolute
/// 1e-12 keeps the computed bound below the true one for any realistic
/// distance magnitude; the loss of pruning power is negligible.
double with_margin(double bound) { return bound * (1.0 - 1e-9) - 1e-12; }

}  // namespace

Dendrogram agglomerative_average_linkage_pruned(std::size_t n,
                                                const LeafDistanceFn& leaf_distance,
                                                const PruneFeatures& features,
                                                PruneCounters* counters) {
  if (n == 0) throw util::ConfigError("clustering zero items");
  if (n == 1) return Dendrogram(1, {});

  const std::size_t pivots = features.pivots;
  const std::size_t grid_bins = features.grid_bins;
  PruneCounters local;
  PruneCounters& c = counters != nullptr ? *counters : local;

  // Per-slot cluster state, mirroring the dense driver, plus the running
  // means that back the lower bounds. Means evolve by the same weighted
  // average as the Lance-Williams update, so they remain true per-cluster
  // means (up to rounding, absorbed by with_margin).
  std::vector<double> pivot_mean;
  if (pivots > 0)
    pivot_mean.assign(features.pivot_distances, features.pivot_distances + n * pivots);
  std::vector<double> grid_mean;
  std::vector<double> snap_mean;
  if (grid_bins > 0) {
    grid_mean.assign(features.grid, features.grid + n * grid_bins);
    snap_mean.assign(features.snap_cost, features.snap_cost + n);
  }
  std::vector<std::size_t> size(n, 1);
  std::vector<bool> active(n, true);
  std::vector<std::size_t> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);

  ResolvedStore store(n, leaf_distance);

  const auto pivot_lb = [&](std::size_t a, std::size_t b) {
    double lb = 0.0;
    const double* pa = pivot_mean.data() + a * pivots;
    const double* pb = pivot_mean.data() + b * pivots;
    for (std::size_t p = 0; p < pivots; ++p) lb = std::max(lb, std::abs(pa[p] - pb[p]));
    return with_margin(lb);
  };
  const auto grid_lb = [&](std::size_t a, std::size_t b) {
    const double l1 = simd::l1_distance(grid_mean.data() + a * grid_bins,
                                        grid_mean.data() + b * grid_bins, grid_bins);
    return with_margin(features.grid_half_width * l1 - snap_mean[a] - snap_mean[b]);
  };

  std::vector<Merge> merges;
  merges.reserve(n - 1);

  // The nearest-neighbour chain of agglomerative_average_linkage, byte for
  // byte — same iteration order, same comparator, same tolerances — except
  // that each candidate's distance is read through the bound gate: a slot
  // whose lower bound already exceeds best + 1e-15 can neither win the scan
  // nor tie it, so skipping it leaves `best`/`nearest` exactly as the dense
  // scan would have.
  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t remaining = n;
  while (remaining > 1) {
    if (chain.empty()) {
      for (std::size_t i = 0; i < n; ++i)
        if (active[i]) {
          chain.push_back(i);
          break;
        }
    }
    for (;;) {
      const std::size_t top = chain.back();
      std::size_t nearest = top;
      double best = std::numeric_limits<double>::max();
      const std::size_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : n;
      for (std::size_t j = 0; j < n; ++j) {
        if (!active[j] || j == top) continue;
        ++c.scanned;
        if (pivots > 0 && pivot_lb(top, j) > best + 1e-15) {
          ++c.skipped_pivot;
          continue;
        }
        if (grid_bins > 0 && grid_lb(top, j) > best + 1e-15) {
          ++c.skipped_grid;
          continue;
        }
        ++c.resolved_cluster_pairs;
        const double dj = store.resolve(node_id[top], node_id[j]);
        if (dj < best - 1e-15 || (std::abs(dj - best) <= 1e-15 && j == prev)) {
          best = dj;
          nearest = j;
        }
      }
      if (chain.size() >= 2 && nearest == chain[chain.size() - 2]) {
        const std::size_t a = chain[chain.size() - 2];
        const std::size_t b = chain.back();
        chain.pop_back();
        chain.pop_back();
        const double height = store.resolve(node_id[a], node_id[b]);
        merges.push_back(Merge{node_id[a], node_id[b], height, size[a] + size[b]});
        store.record_merge(node_id[a], node_id[b], static_cast<double>(size[a]),
                           static_cast<double>(size[b]));
        const double na = static_cast<double>(size[a]);
        const double nb = static_cast<double>(size[b]);
        if (pivots > 0) {
          double* pa = pivot_mean.data() + a * pivots;
          const double* pb = pivot_mean.data() + b * pivots;
          for (std::size_t p = 0; p < pivots; ++p)
            pa[p] = (na * pa[p] + nb * pb[p]) / (na + nb);
        }
        if (grid_bins > 0) {
          double* ga = grid_mean.data() + a * grid_bins;
          const double* gb = grid_mean.data() + b * grid_bins;
          for (std::size_t w = 0; w < grid_bins; ++w)
            ga[w] = (na * ga[w] + nb * gb[w]) / (na + nb);
          snap_mean[a] = (na * snap_mean[a] + nb * snap_mean[b]) / (na + nb);
        }
        size[a] += size[b];
        active[b] = false;
        node_id[a] = n + merges.size() - 1;
        --remaining;
        break;
      }
      chain.push_back(nearest);
    }
  }
  return Dendrogram(n, sort_merges_by_height(std::move(merges), n));
}

std::vector<std::vector<std::size_t>> average_linkage_cut_pruned(
    std::size_t n, const LeafDistanceFn& leaf_distance, const PruneFeatures& features,
    double fraction, PruneCounters* counters) {
  if (n == 0) throw util::ConfigError("clustering zero items");
  if (fraction < 0.0 || fraction > 1.0)
    throw util::ConfigError("cut fraction must be in [0,1]");
  if (n == 1) return {{0}};

  const std::size_t pivots = features.pivots;
  const std::size_t grid_bins = features.grid_bins;
  PruneCounters local;
  PruneCounters& c = counters != nullptr ? *counters : local;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Elimination slack. The dense comparator's winner is within ~2e-15 of the
  // true scan minimum, so a candidate provably more than 1e-12 above the
  // minimum can neither win nor tie-with-prev; 1e-12 also dominates the
  // with_margin() rounding allowance on the bounds themselves.
  constexpr double kCutSlack = 1e-12;

  std::vector<double> pivot_mean;
  if (pivots > 0)
    pivot_mean.assign(features.pivot_distances, features.pivot_distances + n * pivots);
  std::vector<double> grid_mean;
  std::vector<double> snap_mean;
  if (grid_bins > 0) {
    grid_mean.assign(features.grid, features.grid + n * grid_bins);
    snap_mean.assign(features.snap_cost, features.snap_cost + n);
  }
  std::vector<std::size_t> size(n, 1);
  std::vector<bool> active(n, true);
  std::vector<std::size_t> node_id(n);
  std::iota(node_id.begin(), node_id.end(), 0);

  ResolvedStore store(n, leaf_distance);

  const auto pivot_lb = [&](std::size_t a, std::size_t b) {
    double lb = 0.0;
    const double* pa = pivot_mean.data() + a * pivots;
    const double* pb = pivot_mean.data() + b * pivots;
    for (std::size_t p = 0; p < pivots; ++p) lb = std::max(lb, std::abs(pa[p] - pb[p]));
    return with_margin(lb);
  };
  const auto grid_lb = [&](std::size_t a, std::size_t b) {
    const double l1 = simd::l1_distance(grid_mean.data() + a * grid_bins,
                                        grid_mean.data() + b * grid_bins, grid_bins);
    return with_margin(features.grid_half_width * l1 - snap_mean[a] - snap_mean[b]);
  };
  // Triangle upper bound through the pivots: for every pivot p,
  // d(x, y) <= d(x, p) + d(p, y), and averaging over the cross pairs of two
  // clusters preserves it, so mean_A(p) + mean_B(p) >= avg-linkage d(A, B).
  // Margin goes *up* here — an upper bound must never under-state.
  const auto pivot_ub = [&](std::size_t a, std::size_t b) {
    if (pivots == 0) return kInf;
    double ub = kInf;
    const double* pa = pivot_mean.data() + a * pivots;
    const double* pb = pivot_mean.data() + b * pivots;
    for (std::size_t p = 0; p < pivots; ++p) ub = std::min(ub, pa[p] + pb[p]);
    return ub * (1.0 + 1e-9) + 1e-12;
  };

  // A merge in chain-discovery order. `lo`/`hi` bound the true (dense) merge
  // height; lo == hi with exact == true once the height is known bit-exactly.
  struct ChainMerge {
    std::size_t left;
    std::size_t right;
    double lo;
    double hi;
    bool exact;
    // Synthesized by the top-of-tree early stop: stands for a dense merge
    // already proven to land in the cut set. Must never be resolved — its
    // node ids have no ResolvedStore entry.
    bool forced = false;
  };
  std::vector<ChainMerge> chain_merges;
  chain_merges.reserve(n - 1);

  // Scratch reused across scans.
  std::vector<double> lo_buf(n, 0.0);
  std::vector<double> hi_buf(n, 0.0);
  std::vector<char> exact_buf(n, 0);
  std::vector<std::size_t> survivors;
  survivors.reserve(n);

  // Cut budget, fixed up front: the chain always produces exactly n - 1
  // links (real or synthesized), so the fraction resolves before clustering.
  const std::size_t links_total = n - 1;
  const auto to_cut_total =
      static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(links_total)));

  std::vector<std::size_t> active_slots;
  active_slots.reserve(n);

  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t remaining = n;
  std::size_t next_check = std::numeric_limits<std::size_t>::max();
  while (remaining > 1) {
    // --- Top-of-tree early stop --------------------------------------------
    // The running minimum over active inter-cluster distances never decreases
    // under average linkage (a Lance-Williams average of two values is never
    // below their minimum), so every future merge height is >= the current
    // minimum, which is itself >= future_lo, the smallest admissible lower
    // bound over active pairs. A past link whose upper bound is <= future_lo
    // therefore sorts keep-ward of every future link (height ties break
    // toward the earlier chain index). If the links above that bar plus all
    // remaining future links fit inside the cut budget, every future merge is
    // provably cut: the top of the tree cannot influence the kept partition,
    // so the chain stops and the missing links are synthesized as forced-cut
    // placeholders. This is what lets the big-cluster x big-cluster merges
    // near the root — the most expensive resolutions of the whole run —
    // never pay their exact kernels.
    if (remaining - 1 <= to_cut_total && remaining <= next_check && to_cut_total > 0) {
      // Kernel-free tightening: a pending link whose leaf pairs are all
      // memoized resolves exactly by pure Lance-Williams arithmetic.
      for (auto& m : chain_merges) {
        if (!m.exact && store.resolvable_from_cache(m.left, m.right)) {
          const double h = store.resolve(m.left, m.right);
          m.lo = m.hi = h;
          m.exact = true;
        }
      }
      active_slots.clear();
      for (std::size_t s = 0; s < n; ++s)
        if (active[s]) active_slots.push_back(s);
      // Lower bound on the smallest active inter-cluster distance. A pair
      // whose pivot bound is vacuous (two clusters that look alike through
      // every pivot) would pin future_lo near zero and make the stop
      // unprovable, so small pairs are resolved exactly in ascending-bound
      // order while that is cheap — results are memoized, the chain reuses
      // them, and future_lo climbs to the true minimum. Resolving one pair
      // memoizes only values inside its own two subtrees and active nodes
      // root disjoint subtrees, so no other active pair's bound moves: the
      // bounds can be heapified once per check and consumed with O(log)
      // reinsertions instead of an O(active^2) rescan per resolution.
      constexpr std::size_t kCheapResolve = 256;
      struct BoundEntry {
        double lo;
        std::size_t a, b;
        bool exact;
      };
      const auto later = [](const BoundEntry& x, const BoundEntry& y) {
        if (x.lo != y.lo) return x.lo > y.lo;  // min-heap on the bound...
        if (x.a != y.a) return x.a > y.a;      // ...slot-ordered on ties, so
        return x.b > y.b;                      // the sweep is deterministic
      };
      std::vector<BoundEntry> heap;
      heap.reserve(active_slots.size() * (active_slots.size() - 1) / 2);
      for (std::size_t ai = 0; ai < active_slots.size(); ++ai) {
        for (std::size_t bi = ai + 1; bi < active_slots.size(); ++bi) {
          const std::size_t a = active_slots[ai];
          const std::size_t b = active_slots[bi];
          if (const double* mv = store.lookup(node_id[a], node_id[b]); mv != nullptr) {
            heap.push_back(BoundEntry{*mv, a, b, true});
          } else {
            double lo = pivots > 0 ? pivot_lb(a, b) : 0.0;
            if (grid_bins > 0) lo = std::max(lo, grid_lb(a, b));
            heap.push_back(BoundEntry{std::max(lo, 0.0), a, b, false});
          }
        }
      }
      std::make_heap(heap.begin(), heap.end(), later);
      double future_lo = kInf;
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), later);
        const BoundEntry e = heap.back();
        heap.pop_back();
        if (e.exact || size[e.a] * size[e.b] > kCheapResolve) {
          future_lo = e.lo;
          break;
        }
        ++c.resolved_cluster_pairs;
        heap.push_back(BoundEntry{store.resolve(node_id[e.a], node_id[e.b]), e.a, e.b, true});
        std::push_heap(heap.begin(), heap.end(), later);
      }
      std::size_t above = 0;
      for (const ChainMerge& m : chain_merges)
        if (m.hi > future_lo) ++above;
      if (above + (remaining - 1) <= to_cut_total) {
        std::size_t cur = std::numeric_limits<std::size_t>::max();
        for (const std::size_t s : active_slots) {
          if (cur == std::numeric_limits<std::size_t>::max()) {
            cur = node_id[s];
            continue;
          }
          chain_merges.push_back(ChainMerge{cur, node_id[s], future_lo, kInf, false, true});
          cur = n + chain_merges.size() - 1;
        }
        break;
      }
      // Not provable yet; back off geometrically so the O(active^2) bound
      // sweep amortizes to a constant number of attempts.
      next_check = remaining - std::max<std::size_t>(1, remaining / 8);
    }

    if (chain.empty()) {
      for (std::size_t i = 0; i < n; ++i)
        if (active[i]) {
          chain.push_back(i);
          break;
        }
    }
    for (;;) {
      const std::size_t top = chain.back();
      const std::size_t prev = chain.size() >= 2 ? chain[chain.size() - 2] : n;

      // Pass 1: admissible [lo, hi] interval per candidate (memoized values
      // are point intervals) and the smallest upper bound of the scan.
      double ub_min = kInf;
      for (std::size_t j = 0; j < n; ++j) {
        if (!active[j] || j == top) continue;
        ++c.scanned;
        if (const double* mv = store.lookup(node_id[top], node_id[j]); mv != nullptr) {
          lo_buf[j] = hi_buf[j] = *mv;
          exact_buf[j] = 1;
        } else {
          exact_buf[j] = 0;
          lo_buf[j] = pivots > 0 ? pivot_lb(top, j) : 0.0;
          hi_buf[j] = pivot_ub(top, j);
        }
        ub_min = std::min(ub_min, hi_buf[j]);
      }

      // Pass 2: a candidate whose lower bound clears ub_min + slack sits
      // provably above the scan winner and is dropped unseen; the grid bound
      // only runs for pivot survivors. At least one candidate survives (the
      // one attaining ub_min bounds itself below it).
      survivors.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (!active[j] || j == top) continue;
        if (exact_buf[j] == 0) {
          if (lo_buf[j] > ub_min + kCutSlack) {
            ++c.skipped_pivot;
            continue;
          }
          if (grid_bins > 0 && grid_lb(top, j) > ub_min + kCutSlack) {
            ++c.skipped_grid;
            continue;
          }
        }
        survivors.push_back(j);
      }

      std::size_t nearest;
      if (survivors.size() == 1) {
        // The dense comparator would pick the sole survivor whatever its
        // value; no resolution needed.
        nearest = survivors[0];
      } else {
        nearest = top;
        double best = std::numeric_limits<double>::max();
        for (const std::size_t j : survivors) {
          double dj;
          if (exact_buf[j] != 0) {
            dj = lo_buf[j];
          } else {
            // Incremental gate: once a candidate's admissible lower bound
            // sits above best + tie-tolerance it can neither win nor tie in
            // the dense comparator, so its exact value is never observed.
            if (lo_buf[j] > best + 1e-15) {
              ++c.skipped_pivot;
              continue;
            }
            if (grid_bins > 0 && grid_lb(top, j) > best + 1e-15) {
              ++c.skipped_grid;
              continue;
            }
            ++c.resolved_cluster_pairs;
            dj = store.resolve(node_id[top], node_id[j]);
          }
          if (dj < best - 1e-15 || (std::abs(dj - best) <= 1e-15 && j == prev)) {
            best = dj;
            nearest = j;
          }
        }
      }

      if (chain.size() >= 2 && nearest == chain[chain.size() - 2]) {
        const std::size_t a = chain[chain.size() - 2];
        const std::size_t b = chain.back();
        chain.pop_back();
        chain.pop_back();
        ChainMerge cm{node_id[a], node_id[b], 0.0, 0.0, false};
        if (const double* hv = store.lookup(node_id[a], node_id[b]); hv != nullptr) {
          cm.lo = cm.hi = *hv;
          cm.exact = true;
        } else {
          double lo = pivots > 0 ? pivot_lb(a, b) : 0.0;
          if (grid_bins > 0) lo = std::max(lo, grid_lb(a, b));
          cm.lo = std::max(lo, 0.0);
          cm.hi = pivot_ub(a, b);
        }
        chain_merges.push_back(cm);
        store.record_merge(node_id[a], node_id[b], static_cast<double>(size[a]),
                           static_cast<double>(size[b]));
        const double na = static_cast<double>(size[a]);
        const double nb = static_cast<double>(size[b]);
        if (pivots > 0) {
          double* pa = pivot_mean.data() + a * pivots;
          const double* pb = pivot_mean.data() + b * pivots;
          for (std::size_t p = 0; p < pivots; ++p)
            pa[p] = (na * pa[p] + nb * pb[p]) / (na + nb);
        }
        if (grid_bins > 0) {
          double* ga = grid_mean.data() + a * grid_bins;
          const double* gb = grid_mean.data() + b * grid_bins;
          for (std::size_t w = 0; w < grid_bins; ++w)
            ga[w] = (na * ga[w] + nb * gb[w]) / (na + nb);
          snap_mean[a] = (na * snap_mean[a] + nb * snap_mean[b]) / (na + nb);
        }
        size[a] += size[b];
        active[b] = false;
        node_id[a] = n + chain_merges.size() - 1;
        --remaining;
        break;
      }
      chain.push_back(nearest);
    }
  }

  // --- Cut classification -------------------------------------------------
  // cut_top_fraction deletes the to_cut largest merges under the total order
  // (height asc, then position in the height-sorted dendrogram asc); a
  // stable sort by height over chain order makes that exactly
  // (height asc, chain index asc). Classify each merge as keep/cut from the
  // intervals alone where possible; resolve pendings only while the
  // partition stays ambiguous.
  const std::size_t links = chain_merges.size();
  const auto to_cut = static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(links)));
  const std::size_t keep_count = links - std::min(to_cut, links);

  std::vector<char> keep(links, 0);
  std::vector<char> decided(links, 0);
  using Key = std::pair<double, std::size_t>;  // (height bound, chain index)
  std::vector<Key> sorted_lo(links);
  std::vector<Key> sorted_hi(links);
  for (;;) {
    // Merge k surely precedes merge m iff (hi_k, k) < (lo_m, m): its height
    // is then no larger, and on possible equality the chain index decides.
    for (std::size_t k = 0; k < links; ++k) {
      sorted_lo[k] = Key(chain_merges[k].lo, k);
      sorted_hi[k] = Key(chain_merges[k].hi, k);
    }
    std::sort(sorted_lo.begin(), sorted_lo.end());
    std::sort(sorted_hi.begin(), sorted_hi.end());
    bool all_decided = true;
    for (std::size_t k = 0; k < links; ++k) {
      const Key lo_key(chain_merges[k].lo, k);
      const Key hi_key(chain_merges[k].hi, k);
      // # merges surely before k / surely after k; self never qualifies.
      const auto before = static_cast<std::size_t>(
          std::lower_bound(sorted_hi.begin(), sorted_hi.end(), lo_key) - sorted_hi.begin());
      const auto after = static_cast<std::size_t>(
          sorted_lo.end() - std::upper_bound(sorted_lo.begin(), sorted_lo.end(), hi_key));
      if (after >= to_cut) {
        decided[k] = 1;
        keep[k] = 1;
      } else if (before >= keep_count) {
        decided[k] = 1;
        keep[k] = 0;
      } else {
        decided[k] = 0;
        all_decided = false;
      }
    }
    if (all_decided) break;
    // Resolve the undecided pendings; if the ambiguity sits entirely in
    // already-decided pendings overlapping an undecided exact merge, fall
    // back to resolving every pending (correctness backstop — the next
    // round then classifies from points alone).
    bool resolved_any = false;
    for (std::size_t k = 0; k < links; ++k) {
      if (decided[k] == 0 && !chain_merges[k].exact && !chain_merges[k].forced) {
        ++c.resolved_cluster_pairs;
        const double h = store.resolve(chain_merges[k].left, chain_merges[k].right);
        chain_merges[k].lo = chain_merges[k].hi = h;
        chain_merges[k].exact = true;
        resolved_any = true;
      }
    }
    if (!resolved_any) {
      for (std::size_t k = 0; k < links; ++k) {
        if (!chain_merges[k].exact && !chain_merges[k].forced) {
          ++c.resolved_cluster_pairs;
          const double h = store.resolve(chain_merges[k].left, chain_merges[k].right);
          chain_merges[k].lo = chain_merges[k].hi = h;
          chain_merges[k].exact = true;
        }
      }
    }
  }

  // --- Components ---------------------------------------------------------
  // Union-find identical to Dendrogram::components, processed in chain order
  // (valid: every merge references nodes formed earlier in the chain, and
  // the kept-link leaf partition is order-independent).
  std::vector<std::size_t> parent(n + links);
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<std::size_t> rep(n + links);
  std::iota(rep.begin(), rep.end(), 0);
  for (std::size_t k = 0; k < links; ++k) {
    const ChainMerge& m = chain_merges[k];
    const std::size_t a = find(rep[m.left]);
    const std::size_t b = find(rep[m.right]);
    if (keep[k] != 0) {
      parent[b] = a;
      rep[n + k] = a;
    } else {
      rep[n + k] = a;
    }
  }
  std::vector<std::vector<std::size_t>> groups;
  std::vector<int> group_of(n + links, -1);
  for (std::size_t leaf = 0; leaf < n; ++leaf) {
    const std::size_t root = find(leaf);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[root])].push_back(leaf);
  }
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return groups;
}

double cluster_diameter(std::span<const double> distances, std::size_t n,
                        std::span<const std::size_t> members) {
  double diameter = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      diameter = std::max(diameter, distances[members[i] * n + members[j]]);
    }
  }
  return diameter;
}

}  // namespace tradeplot::stats
