file(REMOVE_RECURSE
  "CMakeFiles/fig05_failed_conn_cdf.dir/fig05_failed_conn_cdf.cpp.o"
  "CMakeFiles/fig05_failed_conn_cdf.dir/fig05_failed_conn_cdf.cpp.o.d"
  "fig05_failed_conn_cdf"
  "fig05_failed_conn_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_failed_conn_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
