#include "util/interrupt.h"

#include <atomic>
#include <csignal>

namespace tradeplot::util {

namespace {

// Lock-free atomics are async-signal-safe; relaxed ordering is enough for
// flags that are only ever polled.
std::atomic<bool> g_shutdown{false};
std::atomic<bool> g_reload{false};

extern "C" void handle_shutdown_signal(int) { g_shutdown.store(true, std::memory_order_relaxed); }
extern "C" void handle_reload_signal(int) { g_reload.store(true, std::memory_order_relaxed); }

}  // namespace

void request_shutdown() noexcept { g_shutdown.store(true, std::memory_order_relaxed); }

bool shutdown_requested() noexcept { return g_shutdown.load(std::memory_order_relaxed); }

void clear_shutdown() noexcept { g_shutdown.store(false, std::memory_order_relaxed); }

void request_reload() noexcept { g_reload.store(true, std::memory_order_relaxed); }

bool consume_reload() noexcept { return g_reload.exchange(false, std::memory_order_relaxed); }

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = handle_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must return EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  struct sigaction hup{};
  hup.sa_handler = handle_reload_signal;
  sigemptyset(&hup.sa_mask);
  hup.sa_flags = 0;
  sigaction(SIGHUP, &hup, nullptr);

  struct sigaction pipe_ignore{};
  pipe_ignore.sa_handler = SIG_IGN;
  sigemptyset(&pipe_ignore.sa_mask);
  sigaction(SIGPIPE, &pipe_ignore, nullptr);
}

ScopedWorkerSignalMask::ScopedWorkerSignalMask() noexcept {
  sigset_t block;
  sigemptyset(&block);
  sigaddset(&block, SIGINT);
  sigaddset(&block, SIGTERM);
  sigaddset(&block, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &block, &old_);
}

ScopedWorkerSignalMask::~ScopedWorkerSignalMask() {
  pthread_sigmask(SIG_SETMASK, &old_, nullptr);
}

}  // namespace tradeplot::util
