// Exposition: rendering a MetricsSnapshot for operators and scrapers.
//
// Two formats over the same snapshot:
//  * Prometheus text exposition format (version 0.0.4) — the scrapeable
//    surface: `# HELP`/`# TYPE` per family, escaped labels, cumulative
//    histogram buckets with the implicit `le="+Inf"` bound equal to _count.
//  * JSON — the same data for humans and scripts, via util::JsonWriter (the
//    repository's single JSON emission path).
//
// write_snapshot() appends neither timestamps nor process metadata; a
// snapshot is a pure function of the registry, so tests can golden-match the
// rendered text byte for byte.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/snapshot.h"

namespace tradeplot::obs {

enum class ExpositionFormat : std::uint8_t { kPrometheus, kJson };

[[nodiscard]] std::string_view to_string(ExpositionFormat f);

/// Parses "prom"/"prometheus"/"json" (util::ConfigError otherwise).
[[nodiscard]] ExpositionFormat exposition_format_from_string(std::string_view s);

[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

void write_snapshot(std::ostream& out, const MetricsSnapshot& snapshot,
                    ExpositionFormat format);

/// Writes the rendered snapshot to `path` ("-" = stdout). File writes go
/// through a temporary sibling and an atomic rename, so a concurrent scrape
/// of the textfile never observes a partial snapshot. Throws util::IoError
/// on failure.
void write_snapshot_file(const std::string& path, const MetricsSnapshot& snapshot,
                         ExpositionFormat format);

}  // namespace tradeplot::obs
