#include "detect/human_machine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "stats/descriptive.h"
#include "stats/emd.h"
#include "stats/hcluster.h"
#include "stats/histogram.h"
#include "util/error.h"
#include "util/parallel.h"

namespace tradeplot::detect {

std::vector<double> pairwise_bin_l1(const std::vector<stats::Signature>& sigs,
                                    const HumanMachineConfig& config) {
  const double grid = config.fixed_bin_width > 0.0 ? config.fixed_bin_width : 60.0;
  const std::size_t n = sigs.size();
  std::vector<std::unordered_map<long long, double>> binned(n);
  util::parallel_for(0, n, 8, config.threads, [&](std::size_t i) {
    for (const stats::SignaturePoint& p : sigs[i]) {
      // floor, not truncation: casting p.position / grid rounds toward zero
      // and would merge the two grid cells straddling 0 into one bin.
      binned[i][std::llround(std::floor(p.position / grid))] += p.weight;
    }
  });
  std::vector<double> d(n * n, 0.0);
  util::parallel_for(0, n, 1, config.threads, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double l1 = 0.0;
      for (const auto& [bin, w] : binned[i]) {
        const auto it = binned[j].find(bin);
        l1 += std::abs(w - (it == binned[j].end() ? 0.0 : it->second));
      }
      for (const auto& [bin, w] : binned[j]) {
        if (!binned[i].contains(bin)) l1 += w;
      }
      d[i * n + j] = l1;
      d[j * n + i] = l1;
    }
  });
  return d;
}

HumanMachineResult human_machine_test(const FeatureMap& features, const HostSet& input,
                                      const HumanMachineConfig& config) {
  HumanMachineResult result;

  // Select eligible hosts serially (cheap), then build the histogram
  // signatures in parallel — each host writes only its own slot, so the
  // signature list is identical for every thread count.
  std::vector<simnet::Ipv4> hosts;
  std::vector<const HostFeatures*> eligible;
  for (const simnet::Ipv4 host : input) {
    const auto it = features.find(host);
    if (it == features.end())
      throw util::ConfigError("host " + host.to_string() + " missing from feature map");
    const HostFeatures& f = it->second;
    if (f.interstitials.size() < config.min_samples) {
      result.skipped.push_back(host);
      continue;
    }
    hosts.push_back(host);
    eligible.push_back(&f);
  }
  if (hosts.size() < config.min_cluster_size) {
    std::sort(result.skipped.begin(), result.skipped.end());
    return result;
  }
  std::vector<stats::Signature> signatures(hosts.size());
  util::parallel_for(0, hosts.size(), 1, config.threads, [&](std::size_t i) {
    const HostFeatures& f = *eligible[i];
    const stats::Histogram hist =
        config.fixed_bin_width > 0.0
            ? stats::Histogram(f.interstitials, config.fixed_bin_width)
            : stats::Histogram::with_fd_width(f.interstitials);
    signatures[i] = config.distance == HmDistance::kEmdBinIndex ? hist.index_signature()
                                                                : hist.signature();
  });

  const std::vector<double> distances = config.distance == HmDistance::kBinL1
                                            ? pairwise_bin_l1(signatures, config)
                                            : stats::pairwise_emd(signatures, config.threads);
  const stats::Dendrogram dendrogram =
      stats::agglomerative_average_linkage(distances, hosts.size());
  const auto groups = dendrogram.cut_top_fraction(config.cut_fraction);

  // Diameters of the clusters that carry similarity evidence.
  std::vector<double> diameters;
  for (const auto& group : groups) {
    if (group.size() < config.min_cluster_size) continue;
    HostCluster cluster;
    for (const std::size_t idx : group) cluster.members.push_back(hosts[idx]);
    cluster.diameter = stats::cluster_diameter(distances, hosts.size(), group);
    diameters.push_back(cluster.diameter);
    result.clusters.push_back(std::move(cluster));
  }
  if (result.clusters.empty()) {
    std::sort(result.skipped.begin(), result.skipped.end());
    return result;
  }

  result.tau_hm = stats::quantile(diameters, config.diameter_percentile);
  for (HostCluster& cluster : result.clusters) {
    cluster.kept = cluster.diameter <= result.tau_hm;
    if (cluster.kept) {
      result.flagged.insert(result.flagged.end(), cluster.members.begin(),
                            cluster.members.end());
    }
  }
  std::sort(result.flagged.begin(), result.flagged.end());
  std::sort(result.skipped.begin(), result.skipped.end());
  return result;
}

}  // namespace tradeplot::detect
