// Evasion study: what does it cost a botmaster to slip past FindPlotters?
//
// Drives the three evasion knobs from §VI of the paper through the public
// API — volume inflation, churn inflation, and timing jitter — and reports
// how the detection rate responds, together with the collateral cost each
// manoeuvre imposes on the botnet (extra bytes on the wire, extra dials,
// slower command propagation).
//
// Usage: evasion_study [seed]
#include <cstdio>
#include <cstdlib>

#include "botnet/honeynet.h"
#include "detect/find_plotters.h"
#include "eval/day.h"
#include "util/format.h"

using namespace tradeplot;

namespace {

struct Outcome {
  double storm_tp = 0.0;
  double bytes_per_flow = 0.0;
  double flows_per_bot = 0.0;
};

Outcome run(std::uint64_t seed, const botnet::EvasionConfig& evasion, int days = 3) {
  botnet::HoneynetConfig honeynet;
  honeynet.seed = seed;
  honeynet.storm.evasion = evasion;
  const netflow::TraceSet storm = botnet::generate_storm_trace(honeynet);
  const netflow::TraceSet empty;
  trace::CampusConfig campus;
  campus.seed = seed;

  Outcome out;
  // Cost metrics from the raw honeynet trace.
  std::uint64_t bytes = 0;
  for (const auto& r : storm.flows()) bytes += r.bytes_src;
  out.bytes_per_flow = static_cast<double>(bytes) / static_cast<double>(storm.flows().size());
  out.flows_per_bot = static_cast<double>(storm.flows().size()) /
                      static_cast<double>(storm.hosts_of_kind(netflow::HostKind::kStorm).size());

  int caught = 0, total = 0;
  for (int d = 0; d < days; ++d) {
    const eval::DayData day =
        eval::make_day(campus, storm, empty, static_cast<std::uint64_t>(d));
    const detect::FindPlottersResult result = detect::find_plotters(day.features);
    for (const simnet::Ipv4 bot : day.storm_hosts) {
      ++total;
      if (std::binary_search(result.plotters.begin(), result.plotters.end(), bot)) ++caught;
    }
  }
  out.storm_tp = total ? static_cast<double>(caught) / total : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20100621;

  std::printf("baseline (no evasion)\n");
  const Outcome base = run(seed, {});
  std::printf("  detection %.1f%%, %s/flow, %.0f flows/bot/day\n\n", base.storm_tp * 100,
              util::human_bytes(base.bytes_per_flow).c_str(), base.flows_per_bot);

  std::printf("1) inflate per-flow volume to beat theta_vol (paper: ~5x needed)\n");
  for (const double mult : {2.0, 5.0, 15.0, 40.0}) {
    botnet::EvasionConfig evasion;
    evasion.volume_multiplier = mult;
    const Outcome o = run(seed, evasion);
    std::printf("  x%-5.0f detection %5.1f%%   cost: %s/flow (%.0fx the bandwidth)\n", mult,
                o.storm_tp * 100, util::human_bytes(o.bytes_per_flow).c_str(),
                o.bytes_per_flow / base.bytes_per_flow);
  }

  std::printf("\n2) divert repeat contacts to fresh addresses to beat theta_churn\n");
  for (const double frac : {0.2, 0.5, 0.8}) {
    botnet::EvasionConfig evasion;
    evasion.extra_new_contact_frac = frac;
    const Outcome o = run(seed, evasion);
    std::printf("  %3.0f%% diverted: detection %5.1f%%   cost: scanning-like fan-out, "
                "stored peers go unrefreshed\n",
                frac * 100, o.storm_tp * 100);
  }

  std::printf("\n3) jitter repeat-contact timing by +-d to beat theta_hm\n");
  for (const double d : {60.0, 600.0, 3600.0, 10800.0}) {
    botnet::EvasionConfig evasion;
    evasion.jitter_range = d;
    const Outcome o = run(seed, evasion);
    std::printf("  d=%-6s detection %5.1f%%   cost: command latency up to %s\n",
                util::human_duration(d).c_str(), o.storm_tp * 100,
                util::human_duration(2 * d).c_str());
  }

  std::printf(
      "\nPaper's conclusion (§VI): each evasion is visible somewhere else -\n"
      "volume inflation costs bandwidth and crosses the Trader median,\n"
      "churn inflation looks like scanning, and timing jitter must reach\n"
      "minutes-to-hours, crippling command responsiveness.\n");
  return 0;
}
