#include "netflow/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::netflow {
namespace {

TraceSet sample_trace(int flows = 25, std::uint64_t seed = 1) {
  util::Pcg32 rng(seed);
  TraceSet trace(0.0, 21600.0);
  trace.set_truth(simnet::Ipv4(128, 2, 0, 1), HostKind::kWebClient);
  trace.set_truth(simnet::Ipv4(128, 2, 0, 2), HostKind::kStorm);
  for (int i = 0; i < flows; ++i) {
    FlowRecord r;
    r.src = simnet::Ipv4(128, 2, 0, static_cast<std::uint8_t>(1 + (i % 2)));
    r.dst = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1 << 26, 1 << 28)));
    r.sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    r.dport = static_cast<std::uint16_t>(rng.uniform_int(1, 1023));
    r.proto = rng.chance(0.5) ? Protocol::kTcp : Protocol::kUdp;
    r.start_time = rng.uniform(0, 21000);
    r.end_time = r.start_time + rng.uniform(0, 60);
    r.pkts_src = static_cast<std::uint64_t>(rng.uniform_int(1, 100));
    r.pkts_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 100));
    r.bytes_src = static_cast<std::uint64_t>(rng.uniform_int(0, 100000));
    r.bytes_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 1000000));
    r.state = r.pkts_dst == 0 ? FlowState::kAttempted : FlowState::kEstablished;
    if (rng.chance(0.5))
      r.set_payload(std::string_view("\xe3\x01\x02" "binary\x00" "payload", 17));
    trace.add_flow(std::move(r));
  }
  return trace;
}

void expect_equal(const TraceSet& a, const TraceSet& b) {
  EXPECT_DOUBLE_EQ(a.window_start(), b.window_start());
  EXPECT_DOUBLE_EQ(a.window_end(), b.window_end());
  ASSERT_EQ(a.flows().size(), b.flows().size());
  for (std::size_t i = 0; i < a.flows().size(); ++i) {
    EXPECT_EQ(a.flows()[i], b.flows()[i]) << "flow " << i;
  }
  EXPECT_EQ(a.truth().size(), b.truth().size());
  for (const auto& [ip, kind] : a.truth()) EXPECT_EQ(b.kind_of(ip), kind);
}

TEST(CsvIo, RoundTrip) {
  const TraceSet trace = sample_trace();
  std::stringstream buffer;
  write_csv(buffer, trace);
  expect_equal(trace, read_csv(buffer));
}

TEST(CsvIo, EmptyTraceRoundTrips) {
  TraceSet trace(5.0, 10.0);
  std::stringstream buffer;
  write_csv(buffer, trace);
  const TraceSet back = read_csv(buffer);
  EXPECT_TRUE(back.flows().empty());
  EXPECT_DOUBLE_EQ(back.window_start(), 5.0);
}

TEST(CsvIo, RejectsMissingHeader) {
  std::stringstream buffer("1.2.3.4,5.6.7.8,1,2,tcp,0,1,1,1,1,1,est,\n");
  EXPECT_THROW((void)read_csv(buffer), util::ParseError);
}

TEST(CsvIo, RejectsBadFieldCount) {
  std::stringstream buffer;
  write_csv(buffer, sample_trace(1));
  std::string text = buffer.str();
  text += "only,three,fields\n";
  std::stringstream corrupted(text);
  EXPECT_THROW((void)read_csv(corrupted), util::ParseError);
}

TEST(CsvIo, RejectsOddPayloadHex) {
  std::stringstream buffer;
  buffer << "src,dst,sport,dport,proto,start,end,pkts_src,pkts_dst,bytes_src,bytes_dst,state,"
            "payload\n";
  buffer << "1.2.3.4,5.6.7.8,1,2,tcp,0,1,1,1,1,1,est,abc\n";
  EXPECT_THROW((void)read_csv(buffer), util::ParseError);
}

TEST(BinaryIo, RoundTrip) {
  const TraceSet trace = sample_trace(100, 7);
  std::stringstream buffer;
  write_binary(buffer, trace);
  expect_equal(trace, read_binary(buffer));
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buffer("not a trace at all");
  EXPECT_THROW((void)read_binary(buffer), util::ParseError);
}

TEST(BinaryIo, RejectsTruncation) {
  const TraceSet trace = sample_trace(10);
  std::stringstream buffer;
  write_binary(buffer, trace);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)read_binary(truncated), util::Error);
}

TEST(FileIo, RoundTripsThroughDisk) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string csv_path = (dir / "tp_test_trace.csv").string();
  const std::string bin_path = (dir / "tp_test_trace.bin").string();
  const TraceSet trace = sample_trace(40, 3);
  write_csv_file(csv_path, trace);
  write_binary_file(bin_path, trace);
  expect_equal(trace, read_csv_file(csv_path));
  expect_equal(trace, read_binary_file(bin_path));
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/path/x.csv"), util::IoError);
  EXPECT_THROW((void)read_binary_file("/nonexistent/path/x.bin"), util::IoError);
}

// --- CSV field validation -------------------------------------------------

std::string csv_with_flow_line(const std::string& flow_line) {
  return "src,dst,sport,dport,proto,start,end,pkts_src,pkts_dst,bytes_src,bytes_dst,state,"
         "payload\n" +
         flow_line + "\n";
}

TEST(CsvIo, RejectsOutOfRangePort) {
  // 70000 does not fit in uint16; the seed reader silently truncated it to
  // 4464 via static_cast — it must be a hard parse error.
  std::stringstream buffer(csv_with_flow_line("1.2.3.4,5.6.7.8,70000,2,tcp,0,1,1,1,1,1,est,"));
  try {
    (void)read_csv(buffer);
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("sport"), std::string::npos) << e.what();
  }
}

TEST(CsvIo, RejectsNegativeAndNonNumericCounters) {
  std::stringstream neg(csv_with_flow_line("1.2.3.4,5.6.7.8,1,2,tcp,0,1,-1,1,1,1,est,"));
  EXPECT_THROW((void)read_csv(neg), util::ParseError);
  std::stringstream alpha(csv_with_flow_line("1.2.3.4,5.6.7.8,1,2,tcp,0,1,1,1,1x,1,est,"));
  EXPECT_THROW((void)read_csv(alpha), util::ParseError);
}

TEST(CsvIo, RejectsBadAddressOctet) {
  std::stringstream buffer(csv_with_flow_line("1.2.3.456,5.6.7.8,1,2,tcp,0,1,1,1,1,1,est,"));
  EXPECT_THROW((void)read_csv(buffer), util::ParseError);
}

TEST(CsvIo, AcceptsHugeButValidCounter) {
  // 20 digits is longer than the fast path accepts but still within uint64.
  std::stringstream buffer(
      csv_with_flow_line("1.2.3.4,5.6.7.8,1,2,tcp,0,1,1,1,18446744073709551615,1,est,"));
  const TraceSet trace = read_csv(buffer);
  ASSERT_EQ(trace.flows().size(), 1u);
  EXPECT_EQ(trace.flows()[0].bytes_src, 18446744073709551615ull);
}

TEST(CsvIo, RejectsOverlongPayloadHex) {
  // 65 payload bytes = 130 hex chars, one byte past kPayloadPrefixLen.
  std::stringstream buffer(
      csv_with_flow_line("1.2.3.4,5.6.7.8,1,2,tcp,0,1,1,1,1,1,est," + std::string(130, 'a')));
  EXPECT_THROW((void)read_csv(buffer), util::ParseError);
}

TEST(CsvIo, RejectsNonHexPayloadDigit) {
  std::stringstream buffer(csv_with_flow_line("1.2.3.4,5.6.7.8,1,2,tcp,0,1,1,1,1,1,est,zz"));
  EXPECT_THROW((void)read_csv(buffer), util::ParseError);
}

TEST(CsvIo, CrlfLineEndingsRoundTrip) {
  const TraceSet trace = sample_trace(30, 11);
  std::stringstream buffer;
  write_csv(buffer, trace);
  std::string text = buffer.str();
  // Re-terminate every line the way a Windows tool (or an HTTP transfer)
  // would.
  std::string crlf;
  crlf.reserve(text.size() + text.size() / 40);
  for (const char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::stringstream rewritten(crlf);
  expect_equal(trace, read_csv(rewritten));
}

// --- binary wire validation ------------------------------------------------

// Byte offsets in a binary trace with zero truth entries: the 40-byte
// header (u32 magic, u32 version, f64 window x2, u64 truth count, u64 flow
// count) followed by the first record's packed fields.
constexpr std::size_t kVersionOffset = 4;
constexpr std::size_t kFlow0 = 40;
constexpr std::size_t kProtoOffset = kFlow0 + 4 + 4 + 2 + 2;            // 52
constexpr std::size_t kStateOffset = kProtoOffset + 1 + 8 * 6;          // 101
constexpr std::size_t kPayloadOffset = kStateOffset + 1 + 1;            // 103

TraceSet no_truth_trace(int flows = 1) {
  TraceSet trace = sample_trace(flows, 5);
  TraceSet stripped(trace.window_start(), trace.window_end());
  for (const FlowRecord& r : trace.flows()) stripped.add_flow(r);
  return stripped;
}

std::string binary_bytes(const TraceSet& trace) {
  std::stringstream buffer;
  write_binary(buffer, trace);
  return buffer.str();
}

TEST(BinaryIo, RejectsBadVersion) {
  std::string bytes = binary_bytes(no_truth_trace());
  bytes[kVersionOffset] = 9;
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)read_binary(corrupted), util::ParseError);
}

TEST(BinaryIo, RejectsBadProtocolByte) {
  std::string bytes = binary_bytes(no_truth_trace());
  bytes[kProtoOffset] = static_cast<char>(200);  // no Protocol enumerator
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)read_binary(corrupted), util::ParseError);
}

TEST(BinaryIo, RejectsBadFlowStateByte) {
  std::string bytes = binary_bytes(no_truth_trace());
  bytes[kStateOffset] = 17;  // FlowState tops out at kIcmpUnreach = 3
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)read_binary(corrupted), util::ParseError);
}

TEST(BinaryIo, RejectsTruncationMidRecord) {
  const std::string bytes = binary_bytes(no_truth_trace());
  // Cut inside the first record's fixed-size prefix.
  std::stringstream truncated(bytes.substr(0, kFlow0 + 20));
  EXPECT_THROW((void)read_binary(truncated), util::IoError);
}

TEST(BinaryIo, RejectsTruncationMidPayload) {
  TraceSet trace(0.0, 100.0);
  FlowRecord r;
  r.src = simnet::Ipv4(128, 2, 0, 1);
  r.dst = simnet::Ipv4(10, 0, 0, 1);
  r.proto = Protocol::kTcp;
  r.state = FlowState::kEstablished;
  r.set_payload("a sixteen-byte p");
  trace.add_flow(r);
  const std::string bytes = binary_bytes(trace);
  ASSERT_GT(bytes.size(), kPayloadOffset + 4);
  std::stringstream truncated(bytes.substr(0, kPayloadOffset + 4));
  EXPECT_THROW((void)read_binary(truncated), util::IoError);
}

TEST(BinaryIo, RejectsTruncationInsideHeader) {
  const std::string bytes = binary_bytes(no_truth_trace());
  std::stringstream truncated(bytes.substr(0, 13));
  EXPECT_THROW((void)read_binary(truncated), util::IoError);
}

// --- property-style round trips -------------------------------------------

TraceSet random_trace(util::Pcg32& rng) {
  TraceSet trace(rng.uniform(0, 100), rng.uniform(1000, 90000));
  const int truth = static_cast<int>(rng.uniform_int(0, 8));
  for (int i = 0; i < truth; ++i) {
    trace.set_truth(simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 30))),
                    static_cast<HostKind>(rng.uniform_int(
                        0, static_cast<std::int64_t>(HostKind::kNugache))));
  }
  const int flows = static_cast<int>(rng.uniform_int(0, 200));
  for (int i = 0; i < flows; ++i) {
    FlowRecord r;
    r.src = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1, 1u << 31)));
    r.dst = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1, 1u << 31)));
    r.sport = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    r.dport = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    const std::int64_t proto = rng.uniform_int(0, 2);
    r.proto = proto == 0 ? Protocol::kTcp : proto == 1 ? Protocol::kUdp : Protocol::kIcmp;
    r.start_time = rng.uniform(0, 86400);
    r.end_time = r.start_time + rng.uniform(0, 600);
    r.pkts_src = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    r.pkts_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    r.bytes_src = static_cast<std::uint64_t>(rng.uniform_int(0, 1ll << 40));
    r.bytes_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 1ll << 40));
    r.state = static_cast<FlowState>(rng.uniform_int(
        0, static_cast<std::int64_t>(FlowState::kIcmpUnreach)));
    const auto payload_len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::string payload(payload_len, '\0');
    for (char& c : payload) c = static_cast<char>(rng.uniform_int(0, 255));
    r.set_payload(payload);
    trace.add_flow(std::move(r));
  }
  return trace;
}

TEST(BinaryIo, WriteToFailedSinkThrowsIoError) {
  // A sink that rejects writes (closed file, full disk) must surface as
  // util::IoError, not be silently dropped. A never-opened ofstream is the
  // simplest always-failing ostream.
  const TraceSet trace = sample_trace();
  std::ofstream dead;  // no file attached: every write fails
  EXPECT_THROW(write_binary(dead, trace), util::IoError);
  std::ofstream dead_csv;
  EXPECT_THROW(write_csv(dead_csv, trace), util::IoError);
}

TEST(BinaryIo, WriteFileToBadPathThrowsIoError) {
  const TraceSet trace = sample_trace();
  // A directory is not a writable file; the open itself must be checked.
  EXPECT_THROW(write_binary_file("/tmp", trace), util::IoError);
  EXPECT_THROW(write_csv_file("/nonexistent-dir/trace.csv", trace), util::IoError);
}

TEST(PropertyIo, RandomTracesRoundTripBothFormats) {
  util::Pcg32 rng(20100621);
  for (int iteration = 0; iteration < 12; ++iteration) {
    SCOPED_TRACE(iteration);
    const TraceSet trace = random_trace(rng);
    std::stringstream csv;
    write_csv(csv, trace);
    expect_equal(trace, read_csv(csv));
    std::stringstream bin;
    write_binary(bin, trace);
    expect_equal(trace, read_binary(bin));
  }
}

}  // namespace
}  // namespace tradeplot::netflow
