file(REMOVE_RECURSE
  "CMakeFiles/tp_hosts.dir/misc.cpp.o"
  "CMakeFiles/tp_hosts.dir/misc.cpp.o.d"
  "CMakeFiles/tp_hosts.dir/services.cpp.o"
  "CMakeFiles/tp_hosts.dir/services.cpp.o.d"
  "CMakeFiles/tp_hosts.dir/web.cpp.o"
  "CMakeFiles/tp_hosts.dir/web.cpp.o.d"
  "libtp_hosts.a"
  "libtp_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
