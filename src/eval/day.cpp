#include "eval/day.h"

#include <algorithm>

namespace tradeplot::eval {

namespace {
bool contains(const std::vector<simnet::Ipv4>& hosts, simnet::Ipv4 host) {
  return std::binary_search(hosts.begin(), hosts.end(), host);
}
}  // namespace

bool DayData::is_storm(simnet::Ipv4 host) const { return contains(storm_hosts, host); }
bool DayData::is_nugache(simnet::Ipv4 host) const { return contains(nugache_hosts, host); }

bool DayData::is_trader(simnet::Ipv4 host) const {
  return combined.class_of(host) == netflow::HostClass::kTrader;
}

DayData make_day(const trace::CampusConfig& campus_template, const netflow::TraceSet& storm,
                 const netflow::TraceSet& nugache, std::uint64_t day_index) {
  trace::CampusConfig campus_cfg = campus_template;
  campus_cfg.seed = campus_template.seed * 8191 + day_index;

  DayData day;
  const netflow::TraceSet campus = trace::generate_campus_trace(campus_cfg);

  util::Pcg32 overlay_rng(campus_cfg.seed, 0x0e1a);
  trace::OverlayResult with_storm = trace::overlay_bots(campus, storm, overlay_rng);
  trace::OverlayOptions nugache_opts;
  nugache_opts.exclude_hosts = with_storm.bot_hosts;
  trace::OverlayResult with_both =
      trace::overlay_bots(with_storm.combined, nugache, overlay_rng, nugache_opts);

  day.combined = std::move(with_both.combined);
  day.storm_hosts = std::move(with_storm.bot_hosts);
  day.nugache_hosts = std::move(with_both.bot_hosts);
  std::sort(day.storm_hosts.begin(), day.storm_hosts.end());
  std::sort(day.nugache_hosts.begin(), day.nugache_hosts.end());

  detect::FeatureExtractorConfig fx;
  fx.is_internal = detect::default_internal_predicate;
  day.features = detect::extract_features(day.combined, fx);
  return day;
}

}  // namespace tradeplot::eval
