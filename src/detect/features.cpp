#include "detect/features.h"

#include <algorithm>

#include "util/error.h"

namespace tradeplot::detect {

double HostFeatures::volume(VolumeMetric metric) const {
  switch (metric) {
    case VolumeMetric::kSentPerFlow: {
      const std::size_t flows = flows_initiated + flows_received;
      if (flows == 0) return 0.0;
      return static_cast<double>(bytes_sent_initiated + bytes_sent_received) /
             static_cast<double>(flows);
    }
    case VolumeMetric::kSentPerInitiatedFlow: {
      if (flows_initiated == 0) return 0.0;
      return static_cast<double>(bytes_sent_initiated) / static_cast<double>(flows_initiated);
    }
    case VolumeMetric::kCumulativeBytes:
      return static_cast<double>(bytes_sent_initiated + bytes_sent_received);
  }
  return 0.0;
}

namespace {

struct Accumulator {
  HostFeatures features;
  // Per-destination initiated-flow start times (unsorted; sorted at the end).
  PerDestinationTimes per_dst_times;
  bool seen = false;
};

}  // namespace

void finalize_destinations(HostFeatures& f, PerDestinationTimes& times, double grace) {
  f.distinct_dsts = times.size();
  f.dsts_after_first_hour = 0;
  const double horizon = f.first_activity + grace;
  for (auto& [dst, starts] : times) {
    std::sort(starts.begin(), starts.end());
    if (starts.front() > horizon) f.dsts_after_first_hour += 1;
    for (std::size_t i = 1; i < starts.size(); ++i) {
      f.interstitials.push_back(starts[i] - starts[i - 1]);
    }
  }
}

FeatureMap extract_features(const netflow::TraceSet& trace,
                            const FeatureExtractorConfig& config) {
  if (!config.is_internal) throw util::ConfigError("extract_features: is_internal required");

  std::unordered_map<simnet::Ipv4, Accumulator> acc;

  const auto touch = [&](simnet::Ipv4 host, double t) -> Accumulator& {
    Accumulator& a = acc[host];
    if (!a.seen) {
      a.seen = true;
      a.features.host = host;
      a.features.first_activity = t;
    } else {
      a.features.first_activity = std::min(a.features.first_activity, t);
    }
    return a;
  };

  for (const netflow::FlowRecord& rec : trace.flows()) {
    if (config.is_internal(rec.src)) {
      Accumulator& a = touch(rec.src, rec.start_time);
      a.features.flows_initiated += 1;
      if (rec.failed()) a.features.flows_failed += 1;
      a.features.bytes_sent_initiated += rec.bytes_src;
      a.per_dst_times[rec.dst].push_back(rec.start_time);
    }
    if (config.is_internal(rec.dst) && !rec.failed()) {
      Accumulator& a = touch(rec.dst, rec.start_time);
      a.features.flows_received += 1;
      a.features.bytes_sent_received += rec.bytes_dst;
    }
  }

  FeatureMap out;
  out.reserve(acc.size());
  for (auto& [host, a] : acc) {
    finalize_destinations(a.features, a.per_dst_times, config.new_ip_grace);
    out.emplace(host, std::move(a.features));
  }
  return out;
}

bool default_internal_predicate(simnet::Ipv4 addr) {
  static const simnet::Subnet kNets[] = {
      simnet::Subnet(simnet::Ipv4(128, 2, 0, 0), 16),
      simnet::Subnet(simnet::Ipv4(128, 237, 0, 0), 16),
      simnet::Subnet(simnet::Ipv4(10, 99, 0, 0), 16),
  };
  for (const simnet::Subnet& net : kNets)
    if (net.contains(addr)) return true;
  return false;
}

}  // namespace tradeplot::detect
