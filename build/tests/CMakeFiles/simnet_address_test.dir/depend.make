# Empty dependencies file for simnet_address_test.
# This may be replaced when dependencies are built.
