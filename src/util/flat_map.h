// Flat open-addressing hash map for u64 -> double memo tables.
//
// The pruned θ_hm path memoizes millions of pair distances keyed by packed
// (lo << 32) | hi indices. std::unordered_map pays a node allocation per
// entry plus pointer-chasing probes, and at clustering scale (10^6..10^7
// entries) that bookkeeping dominates the wall-clock the pruning saved. This
// map stores keys and values in two flat arrays with linear probing over a
// power-of-two table — one cache line per probe, no per-entry allocation —
// and supports exactly the operations the memo tables need: insert-if-absent,
// lookup, and full iteration. No erase, so probe chains never need
// tombstones.
//
// Key 0 marks an empty slot. Both memo users pack (lo, hi) with lo < hi, so
// hi >= 1 and a real key is never 0; inserting key 0 is undefined.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tradeplot::util {

class Flat64Map {
 public:
  Flat64Map() { rehash(kMinCapacity); }

  /// Grows the table so `n` entries fit without further rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    if (cap > keys_.size()) rehash(cap);
  }

  /// Pointer to the value for `k`, or nullptr when absent. Invalidated by
  /// the next insert.
  [[nodiscard]] const double* find(std::uint64_t k) const {
    std::size_t i = probe_start(k);
    while (keys_[i] != 0) {
      if (keys_[i] == k) return &vals_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  [[nodiscard]] bool contains(std::uint64_t k) const { return find(k) != nullptr; }

  /// Inserts (k, v) unless `k` is already present (first value wins, like
  /// unordered_map::emplace — the memo users only ever re-insert identical
  /// values).
  void insert(std::uint64_t k, double v) {
    if ((size_ + 1) * kMaxLoadDen > keys_.size() * kMaxLoadNum) rehash(keys_.size() << 1);
    std::size_t i = probe_start(k);
    while (keys_[i] != 0) {
      if (keys_[i] == k) return;
      i = (i + 1) & mask_;
    }
    keys_[i] = k;
    vals_[i] = v;
    ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Calls fn(key, value) for every entry, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i)
      if (keys_[i] != 0) fn(keys_[i], vals_[i]);
  }

 private:
  static constexpr std::size_t kMinCapacity = 64;
  // Max load factor 7/8: linear probing stays short and the doubling
  // schedule wastes at most ~2x the entry footprint.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  // splitmix64 finalizer: packed pair keys are highly regular (small
  // integers in both halves), and linear probing needs the avalanche.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t k) {
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ULL;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebULL;
    k ^= k >> 31;
    return k;
  }

  [[nodiscard]] std::size_t probe_start(std::uint64_t k) const { return mix(k) & mask_; }

  void rehash(std::size_t new_cap) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<double> old_vals = std::move(vals_);
    keys_.assign(new_cap, 0);
    vals_.assign(new_cap, 0.0);
    mask_ = new_cap - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == 0) continue;
      std::size_t j = probe_start(old_keys[i]);
      while (keys_[j] != 0) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<double> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace tradeplot::util
