#include "svc/config.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>

#include "util/error.h"

namespace tradeplot::svc {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw util::ConfigError("daemon config line " + std::to_string(line) + ": " + what);
}

double parse_seconds(std::size_t line, const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (v.empty() || *end != '\0') fail(line, key + " must be a number, got '" + v + "'");
  return d;
}

std::uint64_t parse_u64(std::size_t line, const std::string& key, const std::string& v) {
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos)
    fail(line, key + " must be a non-negative integer, got '" + v + "'");
  return std::strtoull(v.c_str(), nullptr, 10);
}

bool parse_bool(std::size_t line, const std::string& key, const std::string& v) {
  if (v == "true" || v == "on" || v == "1") return true;
  if (v == "false" || v == "off" || v == "0") return false;
  fail(line, key + " must be true/false, got '" + v + "'");
}

netflow::ErrorPolicy parse_policy(std::size_t line, const std::string& v) {
  if (v == "strict") return netflow::ErrorPolicy::strict();
  if (v == "skip") return netflow::ErrorPolicy::skip();
  if (v.rfind("stop-after=", 0) == 0) {
    const std::uint64_t n = parse_u64(line, "policy", v.substr(11));
    return netflow::ErrorPolicy::stop_after(static_cast<std::size_t>(n));
  }
  fail(line, "policy must be strict|skip|stop-after=N, got '" + v + "'");
}

}  // namespace

std::string_view to_string(Overflow o) {
  switch (o) {
    case Overflow::kBlock: return "block";
    case Overflow::kShed: return "shed";
  }
  return "unknown";
}

const TenantParams* DaemonConfig::find_tenant(const std::string& name) const {
  for (const TenantParams& t : tenants)
    if (t.name == name) return &t;
  return nullptr;
}

DaemonConfig DaemonConfig::parse(std::istream& in) {
  DaemonConfig cfg;
  TenantParams* tenant = nullptr;  // nullptr = top-level section
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    const std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(lineno, "unterminated section header");
      const std::string section = trim(line.substr(1, line.size() - 2));
      if (section.rfind("tenant ", 0) != 0)
        fail(lineno, "unknown section '[" + section + "]' (expected [tenant NAME])");
      const std::string name = trim(section.substr(7));
      if (name.empty()) fail(lineno, "tenant section needs a name");
      if (cfg.find_tenant(name)) fail(lineno, "duplicate tenant '" + name + "'");
      cfg.tenants.emplace_back();
      tenant = &cfg.tenants.back();
      tenant->name = name;
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail(lineno, "expected key = value, got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    if (tenant == nullptr) {
      if (key == "ingest") cfg.ingest = value;
      else if (key == "http") cfg.http = value;
      else if (key == "state_dir") cfg.state_dir = value;
      else if (key == "read_timeout") cfg.read_timeout = parse_seconds(lineno, key, value);
      else if (key == "idle_timeout") cfg.idle_timeout = parse_seconds(lineno, key, value);
      else if (key == "metrics") cfg.metrics = parse_bool(lineno, key, value);
      else if (key == "checkpoint_interval")
        cfg.checkpoint_interval = parse_seconds(lineno, key, value);
      else fail(lineno, "unknown daemon key '" + key + "'");
    } else {
      if (key == "window") tenant->window = parse_seconds(lineno, key, value);
      else if (key == "timing_budget") tenant->timing_budget = parse_u64(lineno, key, value);
      else if (key == "checkpoint_every")
        tenant->checkpoint_every = parse_u64(lineno, key, value);
      else if (key == "queue_capacity") {
        tenant->queue_capacity = parse_u64(lineno, key, value);
        if (tenant->queue_capacity == 0) fail(lineno, "queue_capacity must be positive");
      } else if (key == "shards") {
        tenant->shards = parse_u64(lineno, key, value);
        if (tenant->shards == 0) fail(lineno, "shards must be positive");
      } else if (key == "overflow") {
        if (value == "block") tenant->overflow = Overflow::kBlock;
        else if (value == "shed") tenant->overflow = Overflow::kShed;
        else fail(lineno, "overflow must be block|shed, got '" + value + "'");
      } else if (key == "policy") {
        tenant->policy = parse_policy(lineno, value);
      } else {
        fail(lineno, "unknown tenant key '" + key + "'");
      }
    }
  }

  if (cfg.ingest.empty()) throw util::ConfigError("daemon config: ingest endpoint required");
  if (cfg.state_dir.empty()) throw util::ConfigError("daemon config: state_dir required");
  if (cfg.tenants.empty())
    throw util::ConfigError("daemon config: at least one [tenant NAME] section required");
  if (cfg.read_timeout <= 0.0 || cfg.idle_timeout <= 0.0)
    throw util::ConfigError("daemon config: timeouts must be positive");
  for (const TenantParams& t : cfg.tenants)
    if (t.window <= 0.0)
      throw util::ConfigError("daemon config: tenant '" + t.name + "' window must be positive");
  return cfg;
}

DaemonConfig DaemonConfig::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open daemon config: " + path);
  return parse(in);
}

}  // namespace tradeplot::svc
