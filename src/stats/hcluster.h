// Agglomerative hierarchical clustering with average linkage (UPGMA).
//
// The paper (§IV-C) merges the two closest hosts at each step, building a
// dendrogram whose link weights are the average distance between the pair of
// subtrees each link connects; the final clusters are formed "by cutting the
// top 5% links with the largest weights".
//
// Implementation: nearest-neighbour-chain algorithm with Lance–Williams
// updates — O(n^2) time, O(n^2) space — which produces exactly the UPGMA
// dendrogram.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tradeplot::stats {

/// One merge step of the dendrogram. Leaves are items 0..n-1; the k-th merge
/// creates internal node n+k joining `left` and `right` at `height` (their
/// average inter-cluster distance).
struct Merge {
  std::size_t left;
  std::size_t right;
  double height;
  std::size_t size;  // number of leaves under the new node
};

class Dendrogram {
 public:
  Dendrogram(std::size_t leaves, std::vector<Merge> merges);

  [[nodiscard]] std::size_t leaf_count() const { return leaves_; }
  [[nodiscard]] const std::vector<Merge>& merges() const { return merges_; }

  /// Clusters obtained by deleting the ceil(fraction * #links) links with
  /// the largest heights (the paper's cut; fraction in [0,1]). Each returned
  /// cluster is a sorted list of leaf indices; clusters are ordered by their
  /// smallest leaf.
  [[nodiscard]] std::vector<std::vector<std::size_t>> cut_top_fraction(double fraction) const;

  /// Clusters obtained by deleting every link with height > threshold.
  [[nodiscard]] std::vector<std::vector<std::size_t>> cut_at_height(double threshold) const;

 private:
  [[nodiscard]] std::vector<std::vector<std::size_t>> components(
      const std::vector<bool>& keep_merge) const;

  std::size_t leaves_;
  std::vector<Merge> merges_;
};

/// Runs UPGMA over a dense symmetric distance matrix (row-major, n x n).
/// Throws util::ConfigError if n == 0 or the matrix size is not n*n.
[[nodiscard]] Dendrogram agglomerative_average_linkage(std::span<const double> distances,
                                                       std::size_t n);

/// Maximum pairwise distance among `members` under the given matrix.
/// Returns 0 for clusters of size < 2.
[[nodiscard]] double cluster_diameter(std::span<const double> distances, std::size_t n,
                                      std::span<const std::size_t> members);

}  // namespace tradeplot::stats
