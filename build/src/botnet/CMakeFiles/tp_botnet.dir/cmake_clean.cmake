file(REMOVE_RECURSE
  "CMakeFiles/tp_botnet.dir/honeynet.cpp.o"
  "CMakeFiles/tp_botnet.dir/honeynet.cpp.o.d"
  "CMakeFiles/tp_botnet.dir/nugache.cpp.o"
  "CMakeFiles/tp_botnet.dir/nugache.cpp.o.d"
  "CMakeFiles/tp_botnet.dir/storm.cpp.o"
  "CMakeFiles/tp_botnet.dir/storm.cpp.o.d"
  "libtp_botnet.a"
  "libtp_botnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_botnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
