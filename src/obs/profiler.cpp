#include "obs/profiler.h"

#include <array>
#include <atomic>

namespace tradeplot::obs {

std::string_view to_string(Stage s) {
  switch (s) {
    case Stage::kParse: return "parse";
    case Stage::kWindowClose: return "window_close";
    case Stage::kDataReduction: return "data_reduction";
    case Stage::kThetaVol: return "theta_vol";
    case Stage::kThetaChurn: return "theta_churn";
    case Stage::kThetaHm: return "theta_hm";
    case Stage::kSignatureBuild: return "signature_build";
    case Stage::kPairwiseDistance: return "pairwise_distance";
    case Stage::kClustering: return "clustering";
    case Stage::kCheckpointSave: return "checkpoint_save";
    case Stage::kCheckpointRestore: return "checkpoint_restore";
    case Stage::kPruneIndex: return "prune_index";
    case Stage::kBatchDecode: return "batch_decode";
  }
  return "unknown";
}

Histogram& stage_histogram(Stage s) {
  // One atomic pointer per stage: after the first (mutex-guarded, in the
  // registry) registration, lookups are a single relaxed load. Racing first
  // calls both reach the registry, which dedups by (name, labels) and hands
  // back the same instance.
  static std::array<std::atomic<Histogram*>, kStageCount> cache{};
  const auto idx = static_cast<std::size_t>(s);
  Histogram* h = cache[idx].load(std::memory_order_acquire);
  if (h == nullptr) {
    h = &Registry::global().histogram(
        "tradeplot_stage_duration_seconds",
        "Wall-clock duration of one pipeline stage execution", duration_buckets(),
        {{"stage", std::string(to_string(s))}});
    cache[idx].store(h, std::memory_order_release);
  }
  return *h;
}

}  // namespace tradeplot::obs
