file(REMOVE_RECURSE
  "CMakeFiles/stats_hcluster_test.dir/stats_hcluster_test.cpp.o"
  "CMakeFiles/stats_hcluster_test.dir/stats_hcluster_test.cpp.o.d"
  "stats_hcluster_test"
  "stats_hcluster_test.pdb"
  "stats_hcluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_hcluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
