// Streaming detection: FindPlotters as an online monitor.
//
// The paper's vantage point is a border monitor ingesting flow records
// continuously. StreamingDetector accepts flows one at a time (in rough
// time order), maintains per-host state incrementally, and emits a full
// FindPlotters result at each detection-window boundary (the paper's
// window D, one day by default), then rolls the window forward.
//
// Memory is bounded by the flows of the current window: all per-host state
// is dropped when the window rolls. Flow ingestion is O(1) amortised per
// flow; the per-window detection pass finalizes features through the same
// code as the batch extractor, so a window's verdict is identical to
// running extract_features + find_plotters over that window's flows — for
// any arrival order of the flows within the window.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "detect/accumulator.h"
#include "detect/features.h"
#include "detect/find_plotters.h"
#include "detect/hm_cache.h"

namespace tradeplot::netflow {
class TraceReader;
}

namespace tradeplot::detect {

struct StreamingConfig {
  /// Detection window length D (seconds). Results fire at each boundary.
  double window = 6 * 3600.0;
  /// Predicate for internal hosts (required).
  std::function<bool(simnet::Ipv4)> is_internal;
  /// Churn grace period within the window (paper: first hour of activity).
  double new_ip_grace = 3600.0;
  /// Pipeline thresholds.
  FindPlottersConfig pipeline{};
  /// Graceful-degradation budget: the maximum number of buffered
  /// per-destination timing samples across all hosts in one window
  /// (0 = unlimited). The timing buffers are the only per-window state that
  /// grows with traffic rather than with the host count; when the budget is
  /// exceeded the detector sheds the lowest-evidence hosts' timing state
  /// (fewest buffered samples first, ties by address) until usage is back
  /// under ~3/4 of the budget. Shed hosts keep their scalar counters exact
  /// (θ_vol and the failed-rate reduction are unaffected) but lose churn and
  /// interstitial evidence for the window, and the window's verdict is
  /// marked degraded.
  std::size_t timing_budget = 0;
  /// Reuse θ_hm signatures and distance rows across windows for hosts whose
  /// timing buffers are unchanged (see detect/hm_cache.h). Verdicts are
  /// bit-identical with the cache on or off; only wall clock changes. The
  /// warm state rides along in checkpoints, so --resume keeps it.
  bool signature_cache = true;
};

struct WindowVerdict {
  std::size_t window_index = 0;
  double window_start = 0.0;
  double window_end = 0.0;
  std::size_t flows_seen = 0;
  /// The finalized per-host features the verdict was computed from (equal
  /// to extract_features over this window's flows).
  FeatureMap features;
  FindPlottersResult result;
  /// True when the timing budget forced state shedding this window: the
  /// verdict was computed from degraded (churn/timing-free) evidence for
  /// `hosts_shed` hosts. Scalar features stayed exact.
  bool degraded = false;
  std::size_t hosts_shed = 0;
  std::size_t timing_samples_shed = 0;
};

class StreamingDetector {
 public:
  using VerdictSink = std::function<void(const WindowVerdict&)>;

  /// Throws util::ConfigError if the config lacks is_internal or has a
  /// non-positive window.
  StreamingDetector(StreamingConfig config, VerdictSink sink);

  /// Ingests one flow. Flows may arrive slightly out of order *within* a
  /// window; a flow stamped before the current window start is counted
  /// into the current window (late arrival) rather than rejected. A flow
  /// past the current window boundary first closes the window (emitting a
  /// verdict) — possibly several empty windows in a row for long gaps.
  void ingest(const netflow::FlowRecord& flow);

  /// Ingests a columnar batch (equivalent to ingesting batch.record(i) for
  /// each row, in order — windows roll mid-batch exactly where they would
  /// record-at-a-time, so verdicts are bit-identical). The range overload
  /// ingests rows [begin, end), letting callers split a batch at a
  /// checkpoint boundary.
  void ingest(const netflow::FlowBatch& batch);
  void ingest(const netflow::FlowBatch& batch, std::size_t begin, std::size_t end);

  /// Closes the current window and emits its verdict (e.g. at shutdown).
  /// A no-op when no window was ever opened (no flows ingested) or when the
  /// detector was already flushed — flush never emits an empty verdict for
  /// a window it never saw, and double-flush is idempotent.
  void flush();

  [[nodiscard]] std::size_t windows_emitted() const { return windows_emitted_; }
  [[nodiscard]] std::size_t flows_in_current_window() const { return flows_in_window_; }
  [[nodiscard]] double current_window_start() const { return window_start_; }
  /// Flows ingested over the detector's lifetime (across all windows).
  /// Stored in checkpoints so a resumed monitor knows how far to fast-
  /// forward the trace (see netflow::TraceReader::skip_flows).
  [[nodiscard]] std::uint64_t flows_ingested_total() const { return flows_ingested_total_; }

  /// The cross-window θ_hm cache (signatures, distance rows, and cumulative
  /// reuse/recompute counters). Counters let tests assert that a window in
  /// which one host's timing changed rebuilt only that host's signature and
  /// matrix rows.
  [[nodiscard]] const HmCache& hm_cache() const { return hm_cache_; }

  /// Serializes the full detector state (window bounds, per-host
  /// accumulators, counters) as a versioned, CRC-checked binary image.
  /// A detector restored from the checkpoint and fed the remaining flows
  /// emits verdicts identical to the uninterrupted run. Throws
  /// util::IoError if the stream fails.
  void save_checkpoint(std::ostream& out) const;
  void save_checkpoint_file(const std::string& path) const;

  /// Replaces this detector's state with a checkpoint image. The detector
  /// must have been constructed with the same window and new_ip_grace as
  /// the one that saved it (util::ConfigError otherwise). Throws
  /// util::ParseError on a bad magic/version/checksum or a truncated image
  /// — corrupt checkpoints are rejected, never partially applied.
  void restore_checkpoint(std::istream& in);
  void restore_checkpoint_file(const std::string& path);

 private:
  void ingest_one(simnet::Ipv4 src, simnet::Ipv4 dst, double start_time,
                  std::uint64_t bytes_src, std::uint64_t bytes_dst, bool failed);
  void roll_to(double time);
  void emit();

  StreamingConfig config_;
  VerdictSink sink_;

  // Per-host accumulation for the current window (see detect/accumulator.h):
  // scalar counters update flow by flow; per-destination start times
  // accumulate raw and are finalized (sorted -> churn + interstitials) by
  // the shared finalize_destinations() when the window closes, exactly as
  // in the batch extractor. The sharded detector reuses the same class, one
  // accumulator per shard.
  WindowAccumulator acc_;

  HmCache hm_cache_;

  double window_start_ = 0.0;
  bool window_open_ = false;
  std::size_t flows_in_window_ = 0;
  std::size_t windows_emitted_ = 0;
  std::uint64_t flows_ingested_total_ = 0;
};

/// Drains `reader` into `detector` one flow at a time and flushes the final
/// window at end-of-trace. Returns the number of flows fed. Combined with
/// TraceReader this is the bounded-memory ingestion path: the trace is never
/// materialized, so memory stays proportional to one detection window.
std::size_t feed(netflow::TraceReader& reader, StreamingDetector& detector);

}  // namespace tradeplot::detect
