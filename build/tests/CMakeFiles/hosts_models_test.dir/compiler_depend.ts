# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hosts_models_test.
