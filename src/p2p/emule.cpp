#include "p2p/emule.h"

#include <algorithm>
#include <string>

namespace tradeplot::p2p {

namespace {

// eD2k frame: [0xe3][len32 LE][opcode]... The classifier checks the protocol
// byte, a plausible length, and a known opcode.
std::string ed2k_frame(unsigned char proto, std::uint32_t len, unsigned char opcode) {
  std::string f;
  f.push_back(static_cast<char>(proto));
  f.push_back(static_cast<char>(len & 0xff));
  f.push_back(static_cast<char>((len >> 8) & 0xff));
  f.push_back(static_cast<char>((len >> 16) & 0xff));
  f.push_back(static_cast<char>((len >> 24) & 0xff));
  f.push_back(static_cast<char>(opcode));
  f.append("\x10\x42\x42\x42", 4);  // opaque body bytes
  return f;
}

const std::string kLogin = ed2k_frame(0xe3, 0x55, 0x01);        // LOGINREQUEST
const std::string kHello = ed2k_frame(0xe3, 0x54, 0x01);        // OP_HELLO
const std::string kFileReq = ed2k_frame(0xe3, 0x20, 0x58);      // OP_FILEREQUEST
const std::string kSendPart = ed2k_frame(0xe3, 0x2c00, 0x47);   // OP_SENDINGPART
const std::string kCompressed = ed2k_frame(0xc5, 0x2c00, 0x40); // compressed part
const std::string kKadHello = ed2k_frame(0xe3, 0x30, 0x96);     // Kad2 HELLO_REQ
const std::string kKadBootstrap = ed2k_frame(0xe3, 0x30, 0x92); // Kad2 BOOTSTRAP_REQ

}  // namespace

EMuleHost::EMuleHost(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng, Overlay* kad,
                     EMuleConfig config)
    : env_(std::move(env)),
      rng_(rng),
      emit_(&env_, self, &rng_),
      kad_(kad),
      config_(config),
      churn_(config.churn),
      table_(NodeId::random(rng_), config.lookup.k) {}

void EMuleHost::start() {
  const double start = rng_.uniform(0.0, config_.session_start_frac_max * env_.window_end);
  env_.sim->schedule_at(start, [this] { begin_session(); });
}

void EMuleHost::begin_session() {
  const double session_len = rng_.lognormal(config_.session_mu, config_.session_sigma);
  const double session_end = std::min(emit_.now() + session_len, env_.window_end);

  // eD2k server connection: lives for the session, carries searches and
  // source responses.
  const simnet::Ipv4 server = env_.external_addr();
  emit_.tcp(server, kServerPort, static_cast<std::uint64_t>(rng_.uniform(5e3, 4e4)),
            static_cast<std::uint64_t>(rng_.uniform(2e4, 2e5)),
            std::max(1.0, session_end - emit_.now()), kLogin);

  // Bootstrap the Kad routing table from the overlay.
  if (kad_ != nullptr) {
    for (int i = 0; i < 12; ++i) {
      if (const auto c = kad_->random_node(rng_)) {
        table_.insert(*c);
        emit_.udp(c->addr, kUdpPort, 35, kad_->is_online(c->id) ? 61 : 0,
                  kad_->is_online(c->id), kKadBootstrap);
      }
    }
  }

  download_loop(session_end);
  serve_inbound_loop(session_end);
}

void EMuleHost::download_loop(double session_end) {
  const double think = rng_.lognormal(config_.think_mu, config_.think_sigma);
  if (emit_.now() + think >= session_end) return;
  env_.sim->schedule_after(think, [this, session_end] {
    start_download(session_end);
    download_loop(session_end);
  });
}

std::vector<simnet::Ipv4> EMuleHost::kad_discover_sources() {
  std::vector<simnet::Ipv4> sources;
  if (kad_ == nullptr) {
    for (int i = 0; i < config_.sources_per_lookup; ++i)
      sources.push_back(env_.external_addr());
    return sources;
  }
  const NodeId target = NodeId::random(rng_);
  const LookupResult res = iterative_find_node(*kad_, table_, target, config_.lookup, rng_);
  for (const Probe& probe : res.probes) {
    emit_.udp(probe.peer.addr, kUdpPort, 35, probe.responded ? 250 : 0, probe.responded,
              kKadHello);
  }
  for (const Contact& c : res.closest) {
    sources.push_back(c.addr);
    if (sources.size() >= static_cast<std::size_t>(config_.sources_per_lookup)) break;
  }
  // The index also returns sources that are not DHT nodes themselves.
  while (sources.size() < static_cast<std::size_t>(config_.sources_per_lookup))
    sources.push_back(env_.external_addr());
  return sources;
}

void EMuleHost::start_download(double session_end) {
  for (const simnet::Ipv4 addr : kad_discover_sources()) {
    const double jitter = rng_.uniform(0.5, 30.0);
    env_.sim->schedule_after(jitter, [this, addr, session_end] {
      if (emit_.now() >= session_end) return;
      contact_source(addr, session_end, /*is_reask=*/false);
    });
  }
}

void EMuleHost::contact_source(simnet::Ipv4 addr, double session_end, bool is_reask) {
  if (emit_.now() >= session_end) return;
  const bool alive =
      is_reask ? churn_.revisit_alive(rng_) : churn_.fresh_contact_alive(rng_);
  if (!alive) {
    emit_.tcp_failed(addr, kTcpPort, rng_.chance(0.2));
    return;
  }
  if (rng_.chance(config_.queue_only_prob)) {
    // Queued: hello + file request + queue rank, a small exchange; eMule
    // re-asks this source on its timer to keep the queue slot.
    emit_.tcp(addr, kTcpPort, static_cast<std::uint64_t>(rng_.uniform(300, 1500)),
              static_cast<std::uint64_t>(rng_.uniform(200, 900)), rng_.uniform(1.0, 6.0),
              kFileReq);
    schedule_reask(addr, session_end);
    return;
  }
  // An upload slot opened: part transfer.
  const double size =
      rng_.bounded_pareto(config_.file_lo_bytes, config_.file_hi_bytes, config_.file_alpha);
  const double rate = rng_.uniform(config_.rate_lo, config_.rate_hi);
  const double dur = std::max(1.0, std::min(size / rate, session_end - emit_.now()));
  emit_.tcp(addr, kTcpPort, static_cast<std::uint64_t>(rng_.uniform(1e3, 8e3)),
            static_cast<std::uint64_t>(rate * dur), dur,
            rng_.chance(0.3) ? kCompressed : kSendPart);
}

void EMuleHost::schedule_reask(simnet::Ipv4 addr, double session_end) {
  const double delay =
      config_.reask_period + rng_.uniform(-config_.reask_jitter, config_.reask_jitter);
  if (emit_.now() + delay >= session_end) return;
  env_.sim->schedule_after(delay, [this, addr, session_end] {
    contact_source(addr, session_end, /*is_reask=*/true);
  });
}

void EMuleHost::serve_inbound_loop(double session_end) {
  const double gap = rng_.exponential(3600.0 / config_.inbound_per_hour);
  if (emit_.now() + gap >= session_end) return;
  env_.sim->schedule_after(gap, [this, session_end] {
    const simnet::Ipv4 peer = env_.external_addr();
    if (rng_.chance(config_.queue_only_prob)) {
      emit_.inbound_tcp(peer, kTcpPort, static_cast<std::uint64_t>(rng_.uniform(300, 1500)),
                        static_cast<std::uint64_t>(rng_.uniform(200, 900)),
                        rng_.uniform(1.0, 6.0), kHello);
    } else {
      const double size = rng_.bounded_pareto(config_.file_lo_bytes, config_.file_hi_bytes / 2,
                                              config_.file_alpha);
      const double rate = rng_.uniform(config_.rate_lo, config_.rate_hi);
      const double dur = std::max(1.0, std::min(size / rate, session_end - emit_.now()));
      emit_.inbound_tcp(peer, kTcpPort, static_cast<std::uint64_t>(rng_.uniform(1e3, 8e3)),
                        static_cast<std::uint64_t>(rate * dur), dur, kSendPart);
    }
    serve_inbound_loop(session_end);
  });
}

}  // namespace tradeplot::p2p
