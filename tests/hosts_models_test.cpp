#include <gtest/gtest.h>

#include <set>

#include "hosts/misc.h"
#include "hosts/services.h"
#include "hosts/web.h"
#include "netflow/app_env.h"
#include "simnet/address.h"
#include "simnet/simulation.h"

namespace tradeplot::hosts {
namespace {

constexpr double kWindow = 6 * 3600.0;
const simnet::Ipv4 kSelf(128, 2, 0, 42);

struct World {
  simnet::Simulation sim;
  simnet::SubnetAllocator alloc{{simnet::Subnet(simnet::Ipv4(128, 2, 0, 0), 16)},
                                util::Pcg32(999)};
  std::vector<netflow::FlowRecord> flows;

  netflow::AppEnv env() {
    netflow::AppEnv e;
    e.sim = &sim;
    e.window_end = kWindow;
    e.sink = [this](netflow::FlowRecord r) { flows.push_back(std::move(r)); };
    e.external_addr = [this] { return alloc.random_external(); };
    return e;
  }

  void run() { sim.run_until(kWindow); }
};

struct Stats {
  std::size_t initiated = 0;
  std::size_t received = 0;
  std::size_t failed = 0;
  std::set<simnet::Ipv4> dsts;
};

Stats stats_for(const std::vector<netflow::FlowRecord>& flows, simnet::Ipv4 self) {
  Stats s;
  for (const auto& r : flows) {
    if (r.src == self) {
      ++s.initiated;
      if (r.failed()) ++s.failed;
      s.dsts.insert(r.dst);
    } else if (r.dst == self) {
      ++s.received;
    }
  }
  return s;
}

TEST(WebClient, GeneratesBrowsingTrafficWithinWindow) {
  World world;
  WebClient client(world.env(), kSelf, util::Pcg32(1));
  client.start();
  world.run();
  ASSERT_FALSE(world.flows.empty());
  const Stats s = stats_for(world.flows, kSelf);
  EXPECT_GT(s.initiated, 5u);
  EXPECT_GT(s.dsts.size(), 3u);
  for (const auto& r : world.flows) {
    EXPECT_GE(r.start_time, 0.0);
    EXPECT_LE(r.start_time, kWindow);
    EXPECT_TRUE(r.dport == 80 || r.dport == 443) << r.dport;
  }
}

TEST(WebClient, PopulationFailureRatesSpreadWide) {
  // The per-host flakiness draw must produce both clean and flaky hosts.
  World world;
  std::vector<std::unique_ptr<WebClient>> clients;
  std::vector<simnet::Ipv4> ips;
  for (int i = 0; i < 60; ++i) {
    const auto ip = world.alloc.next_internal();
    ips.push_back(ip);
    clients.push_back(std::make_unique<WebClient>(world.env(), ip, util::Pcg32(100 + i)));
    clients.back()->start();
  }
  world.run();
  int clean = 0, flaky = 0;
  for (const auto ip : ips) {
    const Stats s = stats_for(world.flows, ip);
    if (s.initiated < 10) continue;
    const double rate = static_cast<double>(s.failed) / static_cast<double>(s.initiated);
    if (rate < 0.05) ++clean;
    if (rate > 0.20) ++flaky;
  }
  EXPECT_GT(clean, 5);
  EXPECT_GT(flaky, 2);
}

TEST(WebServer, MostlyInboundTraffic) {
  World world;
  WebServer server(world.env(), kSelf, util::Pcg32(2));
  server.start();
  world.run();
  const Stats s = stats_for(world.flows, kSelf);
  EXPECT_GT(s.received, 100u);
  EXPECT_GT(s.initiated, 0u);
  EXPECT_LT(s.initiated, s.received / 4);
}

TEST(MailServer, HighChurnAndModerateFailures) {
  World world;
  MailServer mail(world.env(), kSelf, util::Pcg32(3));
  mail.start();
  world.run();
  const Stats s = stats_for(world.flows, kSelf);
  ASSERT_GT(s.initiated, 50u);
  const double fail_rate = static_cast<double>(s.failed) / static_cast<double>(s.initiated);
  EXPECT_GT(fail_rate, 0.08);
  EXPECT_LT(fail_rate, 0.40);
  // Most destinations contacted only once or twice: high churn.
  EXPECT_GT(s.dsts.size(), s.initiated / 3);
}

TEST(DnsClient, SmallUdpFlowsToFewResolvers) {
  World world;
  DnsClient dns(world.env(), kSelf, util::Pcg32(4));
  dns.start();
  world.run();
  const Stats s = stats_for(world.flows, kSelf);
  ASSERT_GT(s.initiated, 100u);
  EXPECT_LE(s.dsts.size(), 2u);
  for (const auto& r : world.flows) {
    if (r.src != kSelf) continue;
    EXPECT_EQ(r.proto, netflow::Protocol::kUdp);
    EXPECT_EQ(r.dport, 53);
    EXPECT_LT(r.bytes_src, 100u);
  }
}

TEST(NtpClient, StrictlyPeriodicBeacons) {
  World world;
  NtpClient ntp(world.env(), kSelf, util::Pcg32(5));
  ntp.start();
  world.run();
  const Stats s = stats_for(world.flows, kSelf);
  // ~ window/64s beacons per server, 2 servers.
  EXPECT_NEAR(static_cast<double>(s.initiated), 2 * kWindow / 64.0,
              0.1 * 2 * kWindow / 64.0);
  EXPECT_EQ(s.failed, 0u);
  // Interstitial gaps to one server concentrate at the poll period.
  std::vector<double> times;
  const simnet::Ipv4 server = *s.dsts.begin();
  for (const auto& r : world.flows) {
    if (r.src == kSelf && r.dst == server) times.push_back(r.start_time);
  }
  ASSERT_GT(times.size(), 10u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_NEAR(times[i] - times[i - 1], 64.0, 1.5);
  }
}

TEST(ScannerHost, OverwhelminglyFailedContactsToUniqueTargets) {
  World world;
  ScannerHost scanner(world.env(), kSelf, util::Pcg32(6));
  scanner.start();
  world.run();
  const Stats s = stats_for(world.flows, kSelf);
  ASSERT_GT(s.initiated, 300u);
  EXPECT_GT(static_cast<double>(s.failed) / static_cast<double>(s.initiated), 0.9);
  // Random scanning: virtually every destination is new.
  EXPECT_GT(s.dsts.size(), s.initiated * 95 / 100);
}

TEST(IdleHost, EmitsFewFlows) {
  World world;
  IdleHost idle(world.env(), kSelf, util::Pcg32(7));
  idle.start();
  world.run();
  const Stats s = stats_for(world.flows, kSelf);
  EXPECT_GE(s.initiated, 1u);
  EXPECT_LT(s.initiated, 60u);
}

TEST(Models, DeterministicAcrossRuns) {
  const auto run_once = [] {
    World world;
    WebClient client(world.env(), kSelf, util::Pcg32(42));
    client.start();
    world.run();
    return world.flows;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace tradeplot::hosts
