#include "simnet/address.h"

#include <array>
#include <cstdio>

#include "util/error.h"

namespace tradeplot::simnet {

Ipv4 Ipv4::parse(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trailing = 0;
  const int n = std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trailing);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255)
    throw util::ParseError("bad IPv4 address: '" + text + "'");
  return Ipv4(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
              static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4::to_string() const {
  std::array<char, 16> buf{};
  std::snprintf(buf.data(), buf.size(), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return std::string(buf.data());
}

Subnet::Subnet(Ipv4 base, int prefix_len) : prefix_len_(prefix_len) {
  if (prefix_len < 0 || prefix_len > 32)
    throw util::ConfigError("subnet prefix length out of range");
  mask_ = prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  base_ = Ipv4(base.value() & mask_);
}

Subnet Subnet::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) throw util::ParseError("subnet missing '/': '" + text + "'");
  const Ipv4 base = Ipv4::parse(text.substr(0, slash));
  int len = 0;
  try {
    len = std::stoi(text.substr(slash + 1));
  } catch (const std::exception&) {
    throw util::ParseError("bad subnet prefix length: '" + text + "'");
  }
  return Subnet(base, len);
}

bool Subnet::contains(Ipv4 addr) const { return (addr.value() & mask_) == base_.value(); }

std::uint64_t Subnet::size() const { return std::uint64_t{1} << (32 - prefix_len_); }

Ipv4 Subnet::at(std::uint64_t i) const {
  if (i >= size()) throw std::out_of_range("Subnet::at past end");
  return Ipv4(base_.value() + static_cast<std::uint32_t>(i));
}

std::string Subnet::to_string() const {
  return base_.to_string() + "/" + std::to_string(prefix_len_);
}

namespace {

// Ranges we never hand out as "external" addresses: RFC1918, loopback,
// link-local, multicast/reserved, and 0.0.0.0/8.
bool is_reserved(Ipv4 addr) {
  const std::uint32_t v = addr.value();
  const auto octet1 = (v >> 24) & 0xff;
  if (octet1 == 0 || octet1 == 10 || octet1 == 127) return true;
  if (octet1 >= 224) return true;                                     // multicast + reserved
  if (octet1 == 172 && ((v >> 16) & 0xf0) == 16) return true;         // 172.16/12
  if (octet1 == 192 && ((v >> 16) & 0xff) == 168) return true;        // 192.168/16
  if (octet1 == 169 && ((v >> 16) & 0xff) == 254) return true;        // 169.254/16
  return false;
}

}  // namespace

SubnetAllocator::SubnetAllocator(std::vector<Subnet> internal, util::Pcg32 rng)
    : internal_(std::move(internal)), rng_(rng) {
  if (internal_.empty()) throw util::ConfigError("SubnetAllocator needs >= 1 internal subnet");
}

Ipv4 SubnetAllocator::next_internal() {
  while (subnet_idx_ < internal_.size()) {
    const Subnet& net = internal_[subnet_idx_];
    if (offset_ + 1 < net.size()) {  // skip network + broadcast addresses
      return net.at(offset_++);
    }
    ++subnet_idx_;
    offset_ = 1;
  }
  throw util::Error("internal address space exhausted");
}

Ipv4 SubnetAllocator::random_external() {
  for (;;) {
    const auto v = static_cast<std::uint32_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(0xffffffffu)));
    const Ipv4 addr(v);
    if (is_reserved(addr)) continue;
    if (is_internal(addr)) continue;
    return addr;
  }
}

bool SubnetAllocator::is_internal(Ipv4 addr) const {
  for (const Subnet& net : internal_)
    if (net.contains(addr)) return true;
  return false;
}

}  // namespace tradeplot::simnet
