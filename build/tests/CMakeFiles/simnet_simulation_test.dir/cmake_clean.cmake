file(REMOVE_RECURSE
  "CMakeFiles/simnet_simulation_test.dir/simnet_simulation_test.cpp.o"
  "CMakeFiles/simnet_simulation_test.dir/simnet_simulation_test.cpp.o.d"
  "simnet_simulation_test"
  "simnet_simulation_test.pdb"
  "simnet_simulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
