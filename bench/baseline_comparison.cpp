// Baseline comparison: FindPlotters vs the related-work detectors the
// paper positions itself against (§II) — traffic dispersion graphs
// (Iliofotou et al.), timing entropy (Gianvecchio et al.), and destination
// persistence (Giroire et al.) — on identical simulated days.
#include "bench/bench_util.h"
#include "detect/baselines.h"

using namespace tradeplot;

namespace {

bool internal(simnet::Ipv4 ip) { return detect::default_internal_predicate(ip); }

}  // namespace

int main() {
  benchx::header("Baseline comparison - FindPlotters vs §II related-work detectors");

  eval::EvalConfig cfg = benchx::paper_eval_config();
  cfg.days = 4;
  std::printf("  generating %d days...\n\n", cfg.days);
  const eval::DaySet days = eval::make_days(cfg);

  std::printf("  %-34s %10s %12s %10s\n", "detector", "Storm TP", "Nugache TP", "FP");

  const auto report = [&](const char* name, auto run) {
    const benchx::MergedRates avg = benchx::merged_rates(days, run);
    std::printf("  %-34s %9.1f%% %11.1f%% %9.1f%%\n", name, avg.storm_tp * 100,
                avg.nugache_tp * 100, avg.fp * 100);
  };

  report("FindPlotters (this paper)", [](const eval::DayData& day) {
    const auto run = detect::find_plotters(day.features);
    return std::pair{run.plotters, run.input};
  });

  report("TDG: in+out degree >= 10", [](const eval::DayData& day) {
    detect::TdgConfig tdg;
    tdg.is_internal = internal;
    return std::pair{detect::tdg_test(day.combined, tdg).flagged,
                     detect::all_hosts(day.features)};
  });

  report("TDG: successful flows only", [](const eval::DayData& day) {
    detect::TdgConfig tdg;
    tdg.is_internal = internal;
    tdg.successful_only = true;
    return std::pair{detect::tdg_test(day.combined, tdg).flagged,
                     detect::all_hosts(day.features)};
  });

  report("timing entropy (lowest 30%)", [](const eval::DayData& day) {
    const detect::HostSet input = detect::all_hosts(day.features);
    return std::pair{detect::entropy_test(day.features, input, {}), input};
  });

  report("entropy after data reduction", [](const eval::DayData& day) {
    const detect::HostSet input = detect::all_hosts(day.features);
    const detect::HostSet reduced = detect::data_reduction(day.features, input);
    return std::pair{detect::entropy_test(day.features, reduced, {}), reduced};
  });

  report("persistence >= 0.6 (atom=/24)", [](const eval::DayData& day) {
    detect::PersistenceTestConfig persistence;
    persistence.is_internal = internal;
    return std::pair{detect::persistence_test(day.combined, persistence).flagged,
                     detect::all_hosts(day.features)};
  });

  benchx::paper_reference(
      "Paper §II: TDG-style graph criteria identify *P2P hosts*, not bots -\n"
      "Traders and Plotters alike have in+out edges and high degree, so the\n"
      "FP column (which counts Traders) stays high. Timing entropy separates\n"
      "machine-driven hosts but cannot tell a bot from any other automated\n"
      "service without the volume/churn context. Persistence targets\n"
      "*centralized* C&C: a P2P bot spreads its contacts over a changing\n"
      "peer subset, and legitimate hosts show persistent destinations too,\n"
      "'requir[ing] whitelisting common sites'. Expect FindPlotters to be\n"
      "the only row with high Storm TP *and* a low FP rate.");
  return 0;
}
