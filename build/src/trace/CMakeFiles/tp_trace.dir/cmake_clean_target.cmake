file(REMOVE_RECURSE
  "libtp_trace.a"
)
