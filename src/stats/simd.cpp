#include "stats/simd.h"

#include <bit>
#include <cmath>
#include <limits>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TRADEPLOT_X86 1
#else
#define TRADEPLOT_X86 0
#endif

namespace tradeplot::stats::simd {

namespace {

double l1_scalar(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

#if TRADEPLOT_X86

__attribute__((target("avx2"))) double l1_avx2(const double* a, const double* b,
                                               std::size_t n) {
  // |x| as a bitmask clear of the sign bit; four accumulators hide the
  // vaddpd latency on the 4-wide lanes.
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign_mask, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_andnot_pd(sign_mask, d1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(sign_mask, d));
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double sum = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

bool detect_avx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif

std::uint64_t sum_u64_scalar(const std::uint64_t* a, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += a[i];
  return sum;
}

std::size_t count_nonzero_u8_scalar(const std::uint8_t* a, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += a[i] != 0;
  return count;
}

#if TRADEPLOT_X86

__attribute__((target("avx2"))) std::uint64_t sum_u64_avx2(const std::uint64_t* a,
                                                           std::size_t n) {
  // Two 4-wide accumulators hide the vpaddq latency; u64 addition wraps the
  // same way in every order, so the reassociation is bit-exact.
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_epi64(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    acc1 = _mm256_add_epi64(
        acc1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_add_epi64(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
  }
  const __m256i acc = _mm256_add_epi64(acc0, acc1);
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += a[i];
  return sum;
}

__attribute__((target("avx2"))) std::size_t count_nonzero_u8_avx2(const std::uint8_t* a,
                                                                  std::size_t n) {
  // cmpeq-to-zero + movemask yields one bit per *zero* byte; popcount the
  // mask and subtract from the lane width.
  const __m256i zero = _mm256_setzero_si256();
  std::size_t nonzero = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    nonzero += 32u - static_cast<unsigned>(__builtin_popcount(mask));
  }
  for (; i < n; ++i) nonzero += a[i] != 0;
  return nonzero;
}

#endif

void pivot_interval_sweep_scalar(const double* cols, std::size_t stride,
                                 std::size_t pivots, const double* top, std::size_t count,
                                 double* lo, double* hi) {
  for (std::size_t k = 0; k < count; ++k) {
    double l = 0.0;
    double h = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < pivots; ++p) {
      const double c = cols[p * stride + k];
      const double d = std::abs(c - top[p]);
      if (d > l) l = d;
      const double u = c + top[p];
      if (u < h) h = u;
    }
    lo[k] = l;
    hi[k] = h;
  }
}

double margin_min_sweep_scalar(double* lo, double* hi, std::size_t n) {
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    lo[k] = lo[k] * (1.0 - 1e-9) - 1e-12;
    const double h = hi[k] * (1.0 + 1e-9) + 1e-12;
    hi[k] = h;
    if (h < m) m = h;
  }
  return m;
}

#if TRADEPLOT_X86

__attribute__((target("avx2"))) double margin_min_sweep_avx2(double* lo, double* hi,
                                                             std::size_t n) {
  const __m256d lo_scale = _mm256_set1_pd(1.0 - 1e-9);
  const __m256d hi_scale = _mm256_set1_pd(1.0 + 1e-9);
  const __m256d slack = _mm256_set1_pd(1e-12);
  __m256d m = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d l =
        _mm256_sub_pd(_mm256_mul_pd(_mm256_loadu_pd(lo + k), lo_scale), slack);
    const __m256d h =
        _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(hi + k), hi_scale), slack);
    _mm256_storeu_pd(lo + k, l);
    _mm256_storeu_pd(hi + k, h);
    m = _mm256_min_pd(m, h);
  }
  const __m128d pair =
      _mm_min_pd(_mm256_castpd256_pd128(m), _mm256_extractf128_pd(m, 1));
  double result = _mm_cvtsd_f64(_mm_min_sd(pair, _mm_unpackhi_pd(pair, pair)));
  if (k < n) result = std::min(result, margin_min_sweep_scalar(lo + k, hi + k, n - k));
  return result;
}

#endif

std::size_t filter_le_scalar(const double* v, std::size_t n, double threshold,
                             std::uint32_t* out) {
  std::size_t count = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (v[k] <= threshold) out[count++] = static_cast<std::uint32_t>(k);
  }
  return count;
}

#if TRADEPLOT_X86

__attribute__((target("avx2"))) std::size_t filter_le_avx2(const double* v, std::size_t n,
                                                           double threshold,
                                                           std::uint32_t* out) {
  const __m256d t = _mm256_set1_pd(threshold);
  std::size_t count = 0;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    int mask = _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(v + k), t, _CMP_LE_OQ));
    while (mask != 0) {
      const int bit = __builtin_ctz(static_cast<unsigned>(mask));
      out[count++] = static_cast<std::uint32_t>(k) + static_cast<std::uint32_t>(bit);
      mask &= mask - 1;
    }
  }
  for (; k < n; ++k) {
    if (v[k] <= threshold) out[count++] = static_cast<std::uint32_t>(k);
  }
  return count;
}

#endif

// One presorted-EMD merge sweep over raw SoA storage — the exact operation
// sequence of emd_1d_presorted, restated over (base + offset, len) slices so
// the scalar fallback of emd_sweep_x4 and the per-lane AVX2 replay are
// op-for-op identical to the reference kernel.
double emd_sweep_one(const double* positions, const double* weights, std::uint64_t a_off,
                     std::uint64_t a_len, std::uint64_t b_off, std::uint64_t b_len) {
  const double* pa = positions + a_off;
  const double* wa = weights + a_off;
  const double* pb = positions + b_off;
  const double* wb = weights + b_off;
  const std::uint64_t total = a_len + b_len;
  double emd = 0.0;
  double carried = 0.0;
  double prev_pos = (pb[0] < pa[0]) ? pb[0] : pa[0];
  std::uint64_t i = 0, j = 0;
  const auto select = [](std::uint64_t m, double x, double y) {
    return std::bit_cast<double>((std::bit_cast<std::uint64_t>(x) & m) |
                                 (std::bit_cast<std::uint64_t>(y) & ~m));
  };
  for (std::uint64_t k = 0; k < total; ++k) {
    const double ap = pa[i];
    const double bp = pb[j];
    const std::uint64_t take_b = -static_cast<std::uint64_t>(bp < ap);
    const double pos = select(take_b, bp, ap);
    emd += std::abs(carried) * (pos - prev_pos);
    carried += select(take_b, -wb[j], wa[i]);
    j += take_b & 1u;
    i += ~take_b & 1u;
    prev_pos = pos;
  }
  return emd;
}

void emd_sweep_x4_scalar(const double* positions, const double* weights,
                         const std::uint64_t* a_off, const std::uint64_t* a_len,
                         const std::uint64_t* b_off, const std::uint64_t* b_len,
                         double* out) {
  for (int l = 0; l < 4; ++l) {
    out[l] = emd_sweep_one(positions, weights, a_off[l], a_len[l], b_off[l], b_len[l]);
  }
}

#if TRADEPLOT_X86

__attribute__((target("avx2"))) void pivot_interval_sweep_avx2(
    const double* cols, std::size_t stride, std::size_t pivots, const double* top,
    std::size_t count, double* lo, double* hi) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    __m256d l = _mm256_setzero_pd();
    __m256d h = inf;
    for (std::size_t p = 0; p < pivots; ++p) {
      const __m256d c = _mm256_loadu_pd(cols + p * stride + k);
      const __m256d t = _mm256_set1_pd(top[p]);
      l = _mm256_max_pd(l, _mm256_andnot_pd(sign, _mm256_sub_pd(c, t)));
      h = _mm256_min_pd(h, _mm256_add_pd(c, t));
    }
    _mm256_storeu_pd(lo + k, l);
    _mm256_storeu_pd(hi + k, h);
  }
  if (k < count) {
    pivot_interval_sweep_scalar(cols + k, stride, pivots, top, count - k, lo + k, hi + k);
  }
}

__attribute__((target("avx2"))) void emd_sweep_x4_avx2(
    const double* positions, const double* weights, const std::uint64_t* a_off,
    const std::uint64_t* a_len, const std::uint64_t* b_off, const std::uint64_t* b_len,
    double* out) {
  // Four merge sweeps, one per lane, advanced in lockstep. A lane whose
  // total is exhausted freezes: its `active` mask zeroes gap and weight-delta
  // contributions (adding +0.0 to a nonnegative accumulator is a bitwise
  // no-op) and holds its cursors still, while the other lanes keep sweeping.
  // Each active lane's arithmetic is the exact per-step operation sequence of
  // emd_1d_presorted: same single-rounded sub/mul/add, same a-wins-ties
  // select, so every out[l] matches the scalar kernel bit for bit.
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256i ia = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a_off));
  __m256i ib = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_off));
  const __m256i la = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a_len));
  const __m256i lb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_len));
  const __m256i total = _mm256_add_epi64(la, lb);
  std::uint64_t max_total = 0;
  for (int l = 0; l < 4; ++l) {
    const std::uint64_t t = a_len[l] + b_len[l];
    if (t > max_total) max_total = t;
  }
  const __m256d pa0 = _mm256_i64gather_pd(positions, ia, 8);
  const __m256d pb0 = _mm256_i64gather_pd(positions, ib, 8);
  __m256d prev = _mm256_blendv_pd(pa0, pb0, _mm256_cmp_pd(pb0, pa0, _CMP_LT_OQ));
  __m256d emd = _mm256_setzero_pd();
  __m256d carried = _mm256_setzero_pd();
  __m256i k = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi64x(1);
  for (std::uint64_t step = 0; step < max_total; ++step) {
    const __m256d active = _mm256_castsi256_pd(_mm256_cmpgt_epi64(total, k));
    const __m256d ap = _mm256_i64gather_pd(positions, ia, 8);
    const __m256d bp = _mm256_i64gather_pd(positions, ib, 8);
    const __m256d take_b = _mm256_cmp_pd(bp, ap, _CMP_LT_OQ);
    const __m256d pos = _mm256_blendv_pd(ap, bp, take_b);
    // Frozen lanes sit on their +inf sentinels: pos - prev may be inf or
    // inf - inf = NaN there, and the bitwise AND with the zero mask turns
    // either into exactly +0.0 before it can reach the accumulator.
    const __m256d gap = _mm256_and_pd(_mm256_sub_pd(pos, prev), active);
    emd = _mm256_add_pd(emd, _mm256_mul_pd(_mm256_andnot_pd(sign, carried), gap));
    const __m256d wa = _mm256_i64gather_pd(weights, ia, 8);
    const __m256d wb = _mm256_i64gather_pd(weights, ib, 8);
    const __m256d delta = _mm256_blendv_pd(wa, _mm256_xor_pd(wb, sign), take_b);
    carried = _mm256_add_pd(carried, _mm256_and_pd(delta, active));
    // An all-ones mask is -1 as i64; subtracting it advances the cursor.
    const __m256i step_b = _mm256_castpd_si256(_mm256_and_pd(take_b, active));
    const __m256i step_a = _mm256_castpd_si256(_mm256_andnot_pd(take_b, active));
    ib = _mm256_sub_epi64(ib, step_b);
    ia = _mm256_sub_epi64(ia, step_a);
    prev = _mm256_blendv_pd(prev, pos, active);
    k = _mm256_add_epi64(k, one);
  }
  _mm256_storeu_pd(out, emd);
}

#endif

using Kernel = double (*)(const double*, const double*, std::size_t);
using SumU64Kernel = std::uint64_t (*)(const std::uint64_t*, std::size_t);
using CountU8Kernel = std::size_t (*)(const std::uint8_t*, std::size_t);
using IntervalKernel = void (*)(const double*, std::size_t, std::size_t, const double*,
                                std::size_t, double*, double*);
using EmdX4Kernel = void (*)(const double*, const double*, const std::uint64_t*,
                             const std::uint64_t*, const std::uint64_t*,
                             const std::uint64_t*, double*);
using MarginKernel = double (*)(double*, double*, std::size_t);
using FilterKernel = std::size_t (*)(const double*, std::size_t, double, std::uint32_t*);

Kernel dispatch() {
#if TRADEPLOT_X86
  if (detect_avx2()) return &l1_avx2;
#endif
  return &l1_scalar;
}

Kernel kernel() {
  static const Kernel k = dispatch();
  return k;
}

SumU64Kernel sum_u64_kernel() {
#if TRADEPLOT_X86
  static const SumU64Kernel k = detect_avx2() ? &sum_u64_avx2 : &sum_u64_scalar;
#else
  static const SumU64Kernel k = &sum_u64_scalar;
#endif
  return k;
}

CountU8Kernel count_nonzero_u8_kernel() {
#if TRADEPLOT_X86
  static const CountU8Kernel k =
      detect_avx2() ? &count_nonzero_u8_avx2 : &count_nonzero_u8_scalar;
#else
  static const CountU8Kernel k = &count_nonzero_u8_scalar;
#endif
  return k;
}

IntervalKernel interval_kernel() {
#if TRADEPLOT_X86
  static const IntervalKernel k =
      detect_avx2() ? &pivot_interval_sweep_avx2 : &pivot_interval_sweep_scalar;
#else
  static const IntervalKernel k = &pivot_interval_sweep_scalar;
#endif
  return k;
}

EmdX4Kernel emd_x4_kernel() {
#if TRADEPLOT_X86
  static const EmdX4Kernel k = detect_avx2() ? &emd_sweep_x4_avx2 : &emd_sweep_x4_scalar;
#else
  static const EmdX4Kernel k = &emd_sweep_x4_scalar;
#endif
  return k;
}

MarginKernel margin_kernel() {
#if TRADEPLOT_X86
  static const MarginKernel k =
      detect_avx2() ? &margin_min_sweep_avx2 : &margin_min_sweep_scalar;
#else
  static const MarginKernel k = &margin_min_sweep_scalar;
#endif
  return k;
}

FilterKernel filter_kernel() {
#if TRADEPLOT_X86
  static const FilterKernel k = detect_avx2() ? &filter_le_avx2 : &filter_le_scalar;
#else
  static const FilterKernel k = &filter_le_scalar;
#endif
  return k;
}

}  // namespace

double l1_distance(const double* a, const double* b, std::size_t n) {
  return kernel()(a, b, n);
}

bool using_avx2() {
#if TRADEPLOT_X86
  return kernel() != &l1_scalar;
#else
  return false;
#endif
}

std::uint64_t sum_u64(const std::uint64_t* a, std::size_t n) {
  return sum_u64_kernel()(a, n);
}

std::size_t count_nonzero_u8(const std::uint8_t* a, std::size_t n) {
  return count_nonzero_u8_kernel()(a, n);
}

void pivot_interval_sweep(const double* cols, std::size_t stride, std::size_t pivots,
                          const double* top, std::size_t count, double* lo, double* hi) {
  interval_kernel()(cols, stride, pivots, top, count, lo, hi);
}

void emd_sweep_x4(const double* positions, const double* weights,
                  const std::uint64_t* a_off, const std::uint64_t* a_len,
                  const std::uint64_t* b_off, const std::uint64_t* b_len, double* out) {
  emd_x4_kernel()(positions, weights, a_off, a_len, b_off, b_len, out);
}

double margin_min_sweep(double* lo, double* hi, std::size_t n) {
  return margin_kernel()(lo, hi, n);
}

std::size_t filter_le(const double* v, std::size_t n, double threshold, std::uint32_t* out) {
  return filter_kernel()(v, n, threshold, out);
}

}  // namespace tradeplot::stats::simd
