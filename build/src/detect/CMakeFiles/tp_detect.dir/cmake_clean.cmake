file(REMOVE_RECURSE
  "CMakeFiles/tp_detect.dir/baselines.cpp.o"
  "CMakeFiles/tp_detect.dir/baselines.cpp.o.d"
  "CMakeFiles/tp_detect.dir/features.cpp.o"
  "CMakeFiles/tp_detect.dir/features.cpp.o.d"
  "CMakeFiles/tp_detect.dir/find_plotters.cpp.o"
  "CMakeFiles/tp_detect.dir/find_plotters.cpp.o.d"
  "CMakeFiles/tp_detect.dir/human_machine.cpp.o"
  "CMakeFiles/tp_detect.dir/human_machine.cpp.o.d"
  "CMakeFiles/tp_detect.dir/streaming.cpp.o"
  "CMakeFiles/tp_detect.dir/streaming.cpp.o.d"
  "CMakeFiles/tp_detect.dir/tests.cpp.o"
  "CMakeFiles/tp_detect.dir/tests.cpp.o.d"
  "libtp_detect.a"
  "libtp_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
