// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench renders one of the paper's evaluation figures as a text table
// from a deterministic simulation (see DESIGN.md §4 for the index), and
// finishes with a "paper reference" block quoting what the original figure
// showed, so paper-vs-measured comparison is mechanical.
#pragma once

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "eval/experiments.h"
#include "stats/descriptive.h"

namespace tradeplot::benchx {

/// The evaluation setup used by all figure benches: the paper's eight days,
/// 13 Storm bots, 82 Nugache bots, 6-hour campus windows. One fixed master
/// seed keeps every bench deterministic.
inline eval::EvalConfig paper_eval_config(std::uint64_t seed = 20100621) {
  eval::EvalConfig config;
  config.campus.seed = seed;
  config.honeynet.seed = seed;
  config.days = 8;
  return config;
}

inline void header(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void paper_reference(const std::string& text) {
  std::printf("\n-- paper reference ------------------------------------------\n");
  std::printf("%s\n", text.c_str());
}

/// Prints one dataset's CDF sampled at the given x grid.
inline void print_cdf_row(const std::string& name, std::vector<double> values,
                          std::span<const double> grid) {
  std::sort(values.begin(), values.end());
  std::printf("  %-14s", name.c_str());
  for (const double x : grid) {
    std::printf(" %6.3f", values.empty() ? 0.0 : stats::ecdf_at(values, x));
  }
  std::printf("   (n=%zu)\n", values.size());
}

inline void print_grid_header(const char* label, std::span<const double> grid,
                              bool log_labels = false) {
  std::printf("  %-14s", label);
  for (const double x : grid) {
    if (log_labels) {
      std::printf(" %6.0e", x);
    } else if (x < 10.0) {
      std::printf(" %6.2f", x);
    } else {
      std::printf(" %6.0f", x);
    }
  }
  std::printf("\n");
}

/// Per-host feature vectors grouped by ground-truth kind, extracted from a
/// raw trace (no overlay).
template <typename ValueFn>
std::vector<double> values_of_kind(const netflow::TraceSet& trace,
                                   const detect::FeatureMap& features, netflow::HostKind kind,
                                   ValueFn value) {
  std::vector<double> out;
  for (const auto& [host, f] : features) {
    if (trace.kind_of(host) == kind) out.push_back(value(f));
  }
  return out;
}

/// Combined rates from the two per-botnet overlay runs: Storm TP from the
/// Storm days, Nugache TP from the Nugache days, FP averaged across both.
struct MergedRates {
  double storm_tp = 0.0;
  double nugache_tp = 0.0;
  double fp = 0.0;
};

/// `run` maps one DayData to (flagged set, population) for the variant
/// being measured.
template <typename RunFn>
MergedRates merged_rates(const eval::DaySet& days, RunFn run) {
  std::vector<eval::StageRates> storm_rates, nugache_rates;
  for (const eval::DayData& day : days.storm_days) {
    const auto [output, population] = run(day);
    storm_rates.push_back(eval::stage_rates(day, output, population));
  }
  for (const eval::DayData& day : days.nugache_days) {
    const auto [output, population] = run(day);
    nugache_rates.push_back(eval::stage_rates(day, output, population));
  }
  const eval::StageRates s = eval::average(storm_rates);
  const eval::StageRates n = eval::average(nugache_rates);
  return MergedRates{s.storm_tp, n.nugache_tp, (s.fp + n.fp) / 2.0};
}

/// Shared body of the three ROC benches (Figs. 6-8).
inline void run_roc_bench(eval::SweepTest test, const std::string& title,
                          const std::string& reference) {
  header(title);
  const eval::EvalConfig cfg = paper_eval_config();
  std::printf("  generating %d days...\n", cfg.days);
  const eval::DaySet days = eval::make_days(cfg);
  const eval::RocSweepResult roc = eval::roc_sweep(days, test);

  std::printf("\n  %-10s %-24s %-24s\n", "threshold", "Storm (FP,TP)", "Nugache (FP,TP)");
  const auto& sp = roc.storm.points();
  const auto& np = roc.nugache.points();
  // Points are sorted by FP; labels identify the percentile.
  for (std::size_t i = 0; i < sp.size(); ++i) {
    std::printf("  %-10s (%6.4f, %6.4f)        ", sp[i].label.c_str(), sp[i].fp_rate,
                sp[i].tp_rate);
    std::printf("(%6.4f, %6.4f)\n", np[i].fp_rate, np[i].tp_rate);
  }
  std::printf("\n  AUC: Storm %.4f, Nugache %.4f\n", roc.storm.auc(), roc.nugache.auc());
  paper_reference(reference);
}

}  // namespace tradeplot::benchx
