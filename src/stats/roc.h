// ROC (Receiver Operating Characteristic) assembly.
//
// The paper's ROC curves (Figs. 6-8) are built from a handful of discrete
// threshold settings (the 10/30/50/70/90-th percentiles), each yielding one
// (false-positive rate, true-positive rate) point. RocCurve collects such
// points, sorts them, anchors (0,0) and (1,1), and integrates AUC.
#pragma once

#include <string>
#include <vector>

namespace tradeplot::stats {

struct RocPoint {
  double fp_rate = 0.0;
  double tp_rate = 0.0;
  std::string label;  // e.g. "p50" for the 50th-percentile threshold
};

class RocCurve {
 public:
  void add(double fp_rate, double tp_rate, std::string label = {});

  /// Points sorted by (fp, tp), without the synthetic anchors.
  [[nodiscard]] const std::vector<RocPoint>& points() const;

  /// Trapezoidal area under the curve through (0,0), the points, and (1,1).
  [[nodiscard]] double auc() const;

  [[nodiscard]] bool empty() const { return points_.empty(); }

 private:
  void sort() const;
  mutable std::vector<RocPoint> points_;
  mutable bool sorted_ = true;
};

/// Confusion-matrix tallies for one detector output.
struct Confusion {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t positives = 0;  // ground-truth positive population
  std::size_t negatives = 0;  // ground-truth negative population

  [[nodiscard]] double tp_rate() const {
    return positives == 0 ? 0.0
                          : static_cast<double>(true_positives) / static_cast<double>(positives);
  }
  [[nodiscard]] double fp_rate() const {
    return negatives == 0 ? 0.0
                          : static_cast<double>(false_positives) / static_cast<double>(negatives);
  }
};

}  // namespace tradeplot::stats
