#include "util/clock.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace tradeplot::util {

namespace {

std::chrono::steady_clock::time_point epoch() {
  static const std::chrono::steady_clock::time_point e = std::chrono::steady_clock::now();
  return e;
}

}  // namespace

double SystemClock::now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch()).count();
}

void SystemClock::sleep_for(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

Clock& Clock::system() {
  static SystemClock clock;
  (void)epoch();  // pin the epoch to the first use, not the first now()
  return clock;
}

SimulatedClock::SimulatedClock(double start, bool auto_advance)
    : now_(start), auto_advance_(auto_advance) {}

double SimulatedClock::now() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return now_;
}

void SimulatedClock::sleep_for(double seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (seconds <= 0.0) return;
  if (auto_advance_) {
    now_ += seconds;
    return;
  }
  const double deadline = now_ + seconds;
  const std::size_t epoch_at_entry = wake_epoch_;
  ++sleepers_;
  cv_.wait(lock, [&] { return now_ >= deadline || wake_epoch_ != epoch_at_entry; });
  --sleepers_;
}

void SimulatedClock::advance(double seconds) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    now_ += std::max(0.0, seconds);
  }
  cv_.notify_all();
}

std::size_t SimulatedClock::sleepers() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sleepers_;
}

void SimulatedClock::wake_all() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++wake_epoch_;
  }
  cv_.notify_all();
}

}  // namespace tradeplot::util
