// Figure 8: ROC curves for the human-vs-machine test θ_hm run on
// S_vol ∪ S_churn (both at the 50th percentile), sweeping τ_hm over the
// 10/30/50/70/90-th percentiles of cluster diameters.
#include "bench/bench_util.h"

int main() {
  tradeplot::benchx::run_roc_bench(
      tradeplot::eval::SweepTest::kHumanMachine,
      "Figure 8 - ROC of theta_hm on S_vol u S_churn (50th pct), tau_hm swept",
      "Fig. 8: the timing test is the discriminative one: Storm TP high\n"
      "(~0.9-1.0) at low FP; Nugache substantially lower (its low/variable\n"
      "activity obscures the comb); FP stays small compared to Figs. 6-7.\n"
      "Expect: Storm's curve hugging the top-left relative to Nugache's.");
  return 0;
}
