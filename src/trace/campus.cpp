#include "trace/campus.h"

#include <vector>

#include "hosts/misc.h"
#include "hosts/services.h"
#include "hosts/web.h"
#include "p2p/kademlia.h"
#include "simnet/address.h"
#include "simnet/simulation.h"
#include "util/rng.h"

namespace tradeplot::trace {

const std::vector<simnet::Subnet>& campus_subnets() {
  // Two /16s, mirroring CMU's allocation at recording time.
  static const std::vector<simnet::Subnet> kCampusSubnets = {
      simnet::Subnet(simnet::Ipv4(128, 2, 0, 0), 16),
      simnet::Subnet(simnet::Ipv4(128, 237, 0, 0), 16),
  };
  return kCampusSubnets;
}

bool campus_internal(simnet::Ipv4 addr) {
  for (const simnet::Subnet& net : campus_subnets())
    if (net.contains(addr)) return true;
  return false;
}

namespace {

p2p::Overlay build_overlay(int size, double offline_frac, std::uint16_t port,
                           simnet::SubnetAllocator& alloc, util::Pcg32& rng) {
  p2p::Overlay overlay;
  for (int i = 0; i < size; ++i) {
    const p2p::Contact c{p2p::NodeId::random(rng), alloc.random_external(), port};
    overlay.add_node(c);
    if (rng.chance(offline_frac)) overlay.set_online(c.id, false);
  }
  return overlay;
}

}  // namespace

netflow::TraceSet generate_campus_trace(const CampusConfig& config) {
  util::Pcg32 root(config.seed, 0xca3b05);

  simnet::Simulation sim;
  simnet::SubnetAllocator alloc(campus_subnets(), root.split(0xa110c));
  netflow::TraceSet trace(0.0, config.window);

  netflow::AppEnv env;
  env.sim = &sim;
  env.window_end = config.window;
  env.sink = [&trace](netflow::FlowRecord rec) { trace.add_flow(std::move(rec)); };
  env.external_addr = [&alloc] { return alloc.random_external(); };

  util::Pcg32 overlay_rng = root.split(0xd47);
  p2p::Overlay kad = build_overlay(config.kad_overlay_size, config.overlay_offline_frac,
                                   p2p::EMuleHost::kUdpPort, alloc, overlay_rng);
  p2p::Overlay bt_dht = build_overlay(config.bt_overlay_size, config.overlay_offline_frac,
                                      p2p::BitTorrentHost::kDhtPort, alloc, overlay_rng);

  // Hosts are heap-allocated and kept alive for the whole run; the callbacks
  // they schedule capture `this`.
  std::vector<std::unique_ptr<hosts::WebClient>> web_clients;
  std::vector<std::unique_ptr<hosts::WebServer>> web_servers;
  std::vector<std::unique_ptr<hosts::MailServer>> mail_servers;
  std::vector<std::unique_ptr<hosts::DnsClient>> dns_clients;
  std::vector<std::unique_ptr<hosts::NtpClient>> ntp_clients;
  std::vector<std::unique_ptr<hosts::ScannerHost>> scanners;
  std::vector<std::unique_ptr<hosts::IdleHost>> idle_hosts;
  std::vector<std::unique_ptr<p2p::GnutellaHost>> gnutella;
  std::vector<std::unique_ptr<p2p::EMuleHost>> emule;
  std::vector<std::unique_ptr<p2p::BitTorrentHost>> bittorrent;

  std::uint64_t tag = 1000;
  const auto next_rng = [&] { return root.split(tag++); };

  for (int i = 0; i < config.web_clients; ++i) {
    const auto ip = alloc.next_internal();
    trace.set_truth(ip, netflow::HostKind::kWebClient);
    web_clients.push_back(std::make_unique<hosts::WebClient>(env, ip, next_rng()));
    web_clients.back()->start();
  }
  for (int i = 0; i < config.idle_hosts; ++i) {
    const auto ip = alloc.next_internal();
    trace.set_truth(ip, netflow::HostKind::kIdle);
    idle_hosts.push_back(std::make_unique<hosts::IdleHost>(env, ip, next_rng()));
    idle_hosts.back()->start();
  }
  for (int i = 0; i < config.dns_clients; ++i) {
    const auto ip = alloc.next_internal();
    trace.set_truth(ip, netflow::HostKind::kDnsClient);
    dns_clients.push_back(std::make_unique<hosts::DnsClient>(env, ip, next_rng()));
    dns_clients.back()->start();
  }
  for (int i = 0; i < config.ntp_clients; ++i) {
    const auto ip = alloc.next_internal();
    trace.set_truth(ip, netflow::HostKind::kNtpClient);
    ntp_clients.push_back(std::make_unique<hosts::NtpClient>(env, ip, next_rng()));
    ntp_clients.back()->start();
  }
  for (int i = 0; i < config.web_servers; ++i) {
    const auto ip = alloc.next_internal();
    trace.set_truth(ip, netflow::HostKind::kWebServer);
    web_servers.push_back(std::make_unique<hosts::WebServer>(env, ip, next_rng()));
    web_servers.back()->start();
  }
  for (int i = 0; i < config.mail_servers; ++i) {
    const auto ip = alloc.next_internal();
    trace.set_truth(ip, netflow::HostKind::kMailServer);
    mail_servers.push_back(std::make_unique<hosts::MailServer>(env, ip, next_rng()));
    mail_servers.back()->start();
  }
  for (int i = 0; i < config.scanners; ++i) {
    const auto ip = alloc.next_internal();
    trace.set_truth(ip, netflow::HostKind::kScanner);
    scanners.push_back(std::make_unique<hosts::ScannerHost>(env, ip, next_rng()));
    scanners.back()->start();
  }
  for (int i = 0; i < config.gnutella_hosts; ++i) {
    const auto ip = alloc.next_internal();
    trace.set_truth(ip, netflow::HostKind::kGnutella);
    gnutella.push_back(
        std::make_unique<p2p::GnutellaHost>(env, ip, next_rng(), config.gnutella));
    gnutella.back()->start();
  }
  for (int i = 0; i < config.emule_hosts; ++i) {
    const auto ip = alloc.next_internal();
    trace.set_truth(ip, netflow::HostKind::kEMule);
    emule.push_back(std::make_unique<p2p::EMuleHost>(env, ip, next_rng(), &kad, config.emule));
    emule.back()->start();
  }
  for (int i = 0; i < config.bittorrent_hosts + config.bittorrent_web_only; ++i) {
    const auto ip = alloc.next_internal();
    trace.set_truth(ip, netflow::HostKind::kBitTorrent);
    p2p::BitTorrentConfig bt = config.bittorrent;
    bt.web_only = i >= config.bittorrent_hosts;
    bittorrent.push_back(std::make_unique<p2p::BitTorrentHost>(env, ip, next_rng(), &bt_dht, bt));
    bittorrent.back()->start();
  }

  sim.run_until(config.window);
  trace.sort_by_time();
  return trace;
}

}  // namespace tradeplot::trace
