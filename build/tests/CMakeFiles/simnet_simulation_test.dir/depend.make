# Empty dependencies file for simnet_simulation_test.
# This may be replaced when dependencies are built.
