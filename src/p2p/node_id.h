// 128-bit DHT node identifiers with the Kademlia XOR metric.
//
// Overnet (the substrate Storm built on) uses 128-bit MD4 ids; mainline
// BitTorrent DHT and eMule Kad use 128/160-bit ids with the same XOR
// distance. 128 bits is enough for all three models here.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "util/rng.h"

namespace tradeplot::p2p {

class NodeId {
 public:
  static constexpr std::size_t kBits = 128;

  constexpr NodeId() = default;
  constexpr NodeId(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  [[nodiscard]] static NodeId random(util::Pcg32& rng);

  /// Deterministic id from arbitrary bytes (FNV-1a based; not
  /// cryptographic, which the simulation does not need).
  [[nodiscard]] static NodeId hash(std::string_view data);

  [[nodiscard]] constexpr std::uint64_t hi() const { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const { return lo_; }

  [[nodiscard]] constexpr NodeId distance_to(NodeId other) const {
    return NodeId(hi_ ^ other.hi_, lo_ ^ other.lo_);
  }

  /// Index of the highest set bit (0 = least significant); -1 for zero.
  /// bucket_index(a.distance_to(b)) is the Kademlia bucket of b relative
  /// to a.
  [[nodiscard]] int highest_bit() const;

  [[nodiscard]] std::string to_hex() const;

  friend constexpr auto operator<=>(NodeId, NodeId) = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

}  // namespace tradeplot::p2p

template <>
struct std::hash<tradeplot::p2p::NodeId> {
  std::size_t operator()(const tradeplot::p2p::NodeId& id) const noexcept {
    return static_cast<std::size_t>(id.hi() ^ (id.lo() * 0x9e3779b97f4a7c15ULL));
  }
};
