// Fault-injection harness: corrupt traces with seeded faults and assert the
// skip policy recovers — every injected fault accounted for, and the decoded
// stream identical to the clean subset of records.
#include "netflow/fault_injector.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "detect/streaming.h"
#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::netflow {
namespace {

TraceSet sample_trace(int flows = 200, std::uint64_t seed = 1, bool payloads = true) {
  util::Pcg32 rng(seed);
  TraceSet trace(0.0, 21600.0);
  trace.set_truth(simnet::Ipv4(128, 2, 0, 1), HostKind::kWebClient);
  trace.set_truth(simnet::Ipv4(128, 2, 0, 2), HostKind::kStorm);
  for (int i = 0; i < flows; ++i) {
    FlowRecord r;
    r.src = simnet::Ipv4(128, 2, 0, static_cast<std::uint8_t>(1 + (i % 8)));
    r.dst = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1 << 26, 1 << 28)));
    r.sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    r.dport = static_cast<std::uint16_t>(rng.uniform_int(1, 1023));
    r.proto = rng.chance(0.5) ? Protocol::kTcp : Protocol::kUdp;
    r.start_time = rng.uniform(0, 21000);
    r.end_time = r.start_time + rng.uniform(0, 60);
    r.pkts_src = static_cast<std::uint64_t>(rng.uniform_int(1, 100));
    r.pkts_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 100));
    r.bytes_src = static_cast<std::uint64_t>(rng.uniform_int(0, 100000));
    r.bytes_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 1000000));
    r.state = r.pkts_dst == 0 ? FlowState::kAttempted : FlowState::kEstablished;
    if (payloads && rng.chance(0.5))
      r.set_payload(std::string_view("\xe3\x01\x02" "fault\x00" "payload", 16));
    trace.add_flow(std::move(r));
  }
  return trace;
}

std::string csv_bytes(const TraceSet& trace) {
  std::stringstream buffer;
  write_csv(buffer, trace);
  return buffer.str();
}

/// The flows the injector left intact, in trace order.
std::vector<FlowRecord> clean_subset(const TraceSet& trace, const FaultReport& report) {
  std::vector<FlowRecord> out;
  for (std::size_t i = 0; i < trace.flows().size(); ++i) {
    if (!report.corrupted(i)) out.push_back(trace.flows()[i]);
  }
  return out;
}

TEST(FaultInjector, DeterministicForSameSeed) {
  const TraceSet trace = sample_trace();
  const std::string csv = csv_bytes(trace);
  FaultInjectorConfig cfg;
  cfg.seed = 42;
  cfg.fault_rate = 0.3;
  cfg.crlf_rate = 0.2;
  FaultReport r1, r2;
  const std::string a = FaultInjector(cfg).corrupt_csv(csv, r1);
  const std::string b = FaultInjector(cfg).corrupt_csv(csv, r2);
  EXPECT_EQ(a, b);
  ASSERT_EQ(r1.fault_count(), r2.fault_count());
  for (std::size_t i = 0; i < r1.faults.size(); ++i) {
    EXPECT_EQ(r1.faults[i].flow_index, r2.faults[i].flow_index);
    EXPECT_EQ(r1.faults[i].kind, r2.faults[i].kind);
  }

  cfg.seed = 43;
  FaultReport r3;
  const std::string c = FaultInjector(cfg).corrupt_csv(csv, r3);
  EXPECT_NE(a, c);  // a different seed corrupts a different subset
}

TEST(FaultInjector, SkipPolicyRecoversEveryInjectedFault) {
  const TraceSet trace = sample_trace(300, 7);
  const std::string csv = csv_bytes(trace);
  FaultInjectorConfig cfg;
  cfg.seed = 9;
  cfg.fault_rate = 0.25;
  cfg.crlf_rate = 0.1;
  FaultReport report;
  const std::string corrupted = FaultInjector(cfg).corrupt_csv(csv, report);
  ASSERT_GT(report.fault_count(), 10u);  // the workload actually corrupts
  EXPECT_EQ(report.flow_lines, trace.flows().size());

  std::stringstream in(corrupted);
  TraceReader reader(in, ErrorPolicy::skip());
  std::vector<FlowRecord> decoded;
  FlowRecord rec;
  while (reader.next(rec)) decoded.push_back(rec);

  const IngestStats& stats = reader.ingest_stats();
  // Every injected fault is quarantined — no more (benign CRLF lines must
  // parse), no fewer (every corruption must be unparseable).
  EXPECT_EQ(stats.records_quarantined, report.fault_count());
  EXPECT_EQ(stats.records_ok, trace.flows().size() - report.fault_count());
  EXPECT_GE(stats.resync_events, 1u);
  EXPECT_LE(stats.resync_events, stats.records_quarantined);
  EXPECT_FALSE(stats.first_error.empty());
  EXPECT_GT(stats.first_error_record, 0u);

  // The surviving records decode to exactly the clean subset.
  const std::vector<FlowRecord> expected = clean_subset(trace, report);
  ASSERT_EQ(decoded.size(), expected.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i], expected[i]) << "flow " << i;
  }
}

TEST(FaultInjector, TailTruncationIsAccountedFor) {
  const TraceSet trace = sample_trace(60, 3);
  FaultInjectorConfig cfg;
  cfg.seed = 5;
  cfg.fault_rate = 0.0;
  cfg.truncate_tail = true;
  FaultReport report;
  const std::string corrupted = FaultInjector(cfg).corrupt_csv(csv_bytes(trace), report);
  ASSERT_EQ(report.fault_count(), 1u);
  EXPECT_EQ(report.faults[0].kind, FaultKind::kMidRecordTruncation);
  EXPECT_EQ(report.faults[0].flow_index, trace.flows().size() - 1);

  std::stringstream in(corrupted);
  TraceReader reader(in, ErrorPolicy::skip());
  std::vector<FlowRecord> decoded;
  FlowRecord rec;
  while (reader.next(rec)) decoded.push_back(rec);
  EXPECT_EQ(decoded.size(), trace.flows().size() - 1);
  EXPECT_EQ(reader.ingest_stats().records_quarantined, 1u);
}

TEST(FaultInjector, CrlfMixingIsBenign) {
  const TraceSet trace = sample_trace(80, 11);
  FaultInjectorConfig cfg;
  cfg.seed = 2;
  cfg.fault_rate = 0.0;
  cfg.crlf_rate = 1.0;
  FaultReport report;
  const std::string mixed = FaultInjector(cfg).corrupt_csv(csv_bytes(trace), report);
  EXPECT_EQ(report.fault_count(), 0u);
  EXPECT_GT(report.crlf_lines, 0u);

  std::stringstream in(mixed);
  TraceReader reader(in, ErrorPolicy::skip());
  const TraceSet decoded = reader.read_all();
  EXPECT_EQ(reader.ingest_stats().records_quarantined, 0u);
  ASSERT_EQ(decoded.flows().size(), trace.flows().size());
  for (std::size_t i = 0; i < decoded.flows().size(); ++i) {
    EXPECT_EQ(decoded.flows()[i], trace.flows()[i]) << "flow " << i;
  }
}

TEST(FaultInjector, StrictPolicyStillThrows) {
  const TraceSet trace = sample_trace(100, 13);
  FaultInjectorConfig cfg;
  cfg.seed = 17;
  cfg.fault_rate = 0.2;
  FaultReport report;
  const std::string corrupted = FaultInjector(cfg).corrupt_csv(csv_bytes(trace), report);
  ASSERT_GT(report.fault_count(), 0u);

  std::stringstream in(corrupted);
  TraceReader reader(in);  // default policy: strict
  FlowRecord rec;
  EXPECT_THROW(
      {
        while (reader.next(rec)) {
        }
      },
      util::Error);
  EXPECT_EQ(reader.ingest_stats().records_quarantined, 0u);
}

TEST(FaultInjector, StopAfterBudgetsQuarantines) {
  const TraceSet trace = sample_trace(150, 19);
  FaultInjectorConfig cfg;
  cfg.seed = 23;
  cfg.fault_rate = 0.2;
  FaultReport report;
  const std::string corrupted = FaultInjector(cfg).corrupt_csv(csv_bytes(trace), report);
  ASSERT_GE(report.fault_count(), 3u);

  const auto drain = [&](ErrorPolicy policy) {
    std::stringstream in(corrupted);
    TraceReader reader(in, policy);
    FlowRecord rec;
    while (reader.next(rec)) {
    }
    return reader.ingest_stats().records_quarantined;
  };

  // A budget below the fault count throws on fault budget+1...
  {
    std::stringstream in(corrupted);
    TraceReader reader(in, ErrorPolicy::stop_after(report.fault_count() - 1));
    FlowRecord rec;
    EXPECT_THROW(
        {
          while (reader.next(rec)) {
          }
        },
        util::Error);
    EXPECT_EQ(reader.ingest_stats().records_quarantined, report.fault_count() - 1);
  }
  // ...while a budget at or above it behaves exactly like kSkip.
  EXPECT_EQ(drain(ErrorPolicy::stop_after(report.fault_count())), report.fault_count());
  EXPECT_EQ(drain(ErrorPolicy::skip()), report.fault_count());
}

TEST(FaultInjector, ConsecutiveBadLinesAreOneResyncEvent) {
  const TraceSet trace = sample_trace(6, 29);
  std::string csv = csv_bytes(trace);
  // Hand-build a burst: three garbage lines in the middle of the stream.
  const std::size_t header_end = csv.find("payload\n") + 8;
  const std::size_t second_line = csv.find('\n', header_end) + 1;
  csv.insert(second_line, "garbage one\n???\n,,,,\n");

  std::stringstream in(csv);
  TraceReader reader(in, ErrorPolicy::skip());
  FlowRecord rec;
  while (reader.next(rec)) {
  }
  const IngestStats& stats = reader.ingest_stats();
  EXPECT_EQ(stats.records_quarantined, 3u);
  EXPECT_EQ(stats.resync_events, 1u);
  EXPECT_EQ(stats.records_ok, trace.flows().size());
}

TEST(FaultInjector, BinaryBadEnumByteIsQuarantinedInPlace) {
  // Payload-free records are fixed 63 bytes; with 2 truth entries the first
  // record starts at byte 50 and its proto byte sits at offset +12.
  const TraceSet trace = sample_trace(20, 31, /*payloads=*/false);
  std::stringstream buffer;
  write_binary(buffer, trace);
  std::string bytes = buffer.str();
  const std::size_t first_record = 4 + 4 + 8 + 8 + 8 + 2 * 5 + 8;
  bytes[first_record + 12] = static_cast<char>(0xFF);  // invalid Protocol

  std::stringstream in(bytes);
  TraceReader reader(in, ErrorPolicy::skip());
  std::vector<FlowRecord> decoded;
  FlowRecord rec;
  while (reader.next(rec)) decoded.push_back(rec);

  const IngestStats& stats = reader.ingest_stats();
  EXPECT_EQ(stats.records_quarantined, 1u);
  EXPECT_FALSE(stats.lost_sync);
  ASSERT_EQ(decoded.size(), trace.flows().size() - 1);
  // Framing was preserved: every record after the corrupt one decodes intact.
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i], trace.flows()[i + 1]) << "flow " << i;
  }
}

TEST(FaultInjector, BinaryMidRecordTruncationLosesSyncGracefully) {
  const TraceSet trace = sample_trace(20, 37, /*payloads=*/false);
  std::stringstream buffer;
  write_binary(buffer, trace);
  const std::string bytes = buffer.str();
  const std::size_t first_record = 4 + 4 + 8 + 8 + 8 + 2 * 5 + 8;
  // Keep 10 full records plus half of the 11th.
  const std::string truncated = bytes.substr(0, first_record + 10 * 63 + 30);

  {
    std::stringstream in(truncated);
    TraceReader reader(in, ErrorPolicy::skip());
    std::vector<FlowRecord> decoded;
    FlowRecord rec;
    while (reader.next(rec)) decoded.push_back(rec);
    EXPECT_EQ(decoded.size(), 10u);
    EXPECT_TRUE(reader.ingest_stats().lost_sync);
    EXPECT_EQ(reader.ingest_stats().records_quarantined, 1u);
  }
  {
    std::stringstream in(truncated);
    TraceReader reader(in);  // strict: same corruption must still throw
    FlowRecord rec;
    EXPECT_THROW(
        {
          while (reader.next(rec)) {
          }
        },
        util::IoError);
  }
}

TEST(FaultInjector, SkipPolicyVerdictsMatchCleanSubset) {
  // The acceptance bar: detection over a corrupted trace under kSkip is
  // indistinguishable from detection over the records that survived.
  const TraceSet trace = sample_trace(400, 41);
  FaultInjectorConfig cfg;
  cfg.seed = 43;
  cfg.fault_rate = 0.15;
  cfg.crlf_rate = 0.1;
  FaultReport report;
  const std::string corrupted = FaultInjector(cfg).corrupt_csv(csv_bytes(trace), report);
  ASSERT_GT(report.fault_count(), 0u);

  const auto run = [](auto&& feed_fn) {
    std::vector<detect::WindowVerdict> verdicts;
    detect::StreamingConfig cfg2;
    cfg2.window = 21600.0;
    cfg2.is_internal = detect::default_internal_predicate;
    detect::StreamingDetector detector(
        cfg2, [&](const detect::WindowVerdict& v) { verdicts.push_back(v); });
    feed_fn(detector);
    detector.flush();
    return verdicts;
  };

  const auto corrupted_verdicts = run([&](detect::StreamingDetector& d) {
    std::stringstream in(corrupted);
    TraceReader reader(in, ErrorPolicy::skip());
    FlowRecord rec;
    while (reader.next(rec)) d.ingest(rec);
  });
  const auto clean_verdicts = run([&](detect::StreamingDetector& d) {
    for (const FlowRecord& rec : clean_subset(trace, report)) d.ingest(rec);
  });

  ASSERT_EQ(corrupted_verdicts.size(), clean_verdicts.size());
  for (std::size_t i = 0; i < corrupted_verdicts.size(); ++i) {
    const auto& a = corrupted_verdicts[i];
    const auto& b = clean_verdicts[i];
    EXPECT_EQ(a.flows_seen, b.flows_seen);
    EXPECT_EQ(a.result.input, b.result.input);
    EXPECT_EQ(a.result.reduced, b.result.reduced);
    EXPECT_EQ(a.result.s_vol, b.result.s_vol);
    EXPECT_EQ(a.result.s_churn, b.result.s_churn);
    EXPECT_EQ(a.result.plotters, b.result.plotters);
  }
}

}  // namespace
}  // namespace tradeplot::netflow
