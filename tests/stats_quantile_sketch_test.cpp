// QuantileSketch: the mergeable threshold summary behind the sharded
// detector's relative thresholds.
//
// The contract under test has three layers:
//   1. losslessness — while a sketch has never compacted (n < k, the case
//      for every per-shard population today's traces produce), quantile()
//      is bit-identical to stats::quantile over the same values, and so is
//      a merge of lossless shards whose total stays under k;
//   2. the tracked error bound — after compactions, any quantile's rank may
//      be displaced by at most error_bound() ranks, and the sketch reports
//      that bound exactly (sandwich-asserted against the exact order
//      statistics under adversarial skew: ties, heavy tails, tiny shards);
//   3. determinism — equal insert/merge sequences give equal summaries, so
//      the merged thresholds are reproducible across runs and thread
//      counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "stats/descriptive.h"
#include "stats/quantile_sketch.h"
#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::stats {
namespace {

const double kProbes[] = {0.0, 0.01, 0.1, 0.25, 0.5, 0.66, 0.75, 0.9, 0.99, 1.0};

bool bit_equal(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

/// Sandwich assertion: the sketch's answer must sit between the exact order
/// statistics `bound` ranks on either side of the query's interpolation
/// window. This is precisely what "rank displaced by at most error_bound()"
/// means for an interpolating (type-7) quantile.
void assert_within_rank_bound(const std::vector<double>& sorted, const QuantileSketch& sketch,
                              double q) {
  const double v = sketch.quantile(q);
  const auto n = static_cast<std::uint64_t>(sorted.size());
  const auto bound = sketch.error_bound();
  const double pos = q * static_cast<double>(n - 1);
  const std::uint64_t lo_rank =
      static_cast<std::uint64_t>(std::floor(pos)) > bound
          ? static_cast<std::uint64_t>(std::floor(pos)) - bound
          : 0;
  const std::uint64_t hi_rank =
      std::min<std::uint64_t>(n - 1, static_cast<std::uint64_t>(std::ceil(pos)) + bound);
  EXPECT_GE(v, sorted[static_cast<std::size_t>(lo_rank)])
      << "q=" << q << " bound=" << bound;
  EXPECT_LE(v, sorted[static_cast<std::size_t>(hi_rank)])
      << "q=" << q << " bound=" << bound;
}

TEST(QuantileSketchTest, LosslessBeforeFirstCompaction) {
  util::Pcg32 rng(7);
  QuantileSketch sketch(1024);
  std::vector<double> values;
  for (int i = 0; i < 1023; ++i) {
    const double v = rng.lognormal(3.0, 1.5);
    values.push_back(v);
    sketch.add(v);
  }
  ASSERT_EQ(sketch.error_bound(), 0u);
  for (const double q : kProbes) {
    EXPECT_TRUE(bit_equal(sketch.quantile(q), stats::quantile(values, q))) << "q=" << q;
  }
}

TEST(QuantileSketchTest, LosslessMergeOfSmallShards) {
  // Eight shards of ~100 hosts each: every per-shard sketch is lossless and
  // the merged total (800 < k) still never compacts, so the merged
  // threshold equals the single-detector percentile bit for bit.
  util::Pcg32 rng(11);
  QuantileSketch merged(1024);
  std::vector<double> pooled;
  for (int s = 0; s < 8; ++s) {
    QuantileSketch local(1024);
    for (int i = 0; i < 100; ++i) {
      const double v = rng.uniform(0.0, 1.0);
      pooled.push_back(v);
      local.add(v);
    }
    merged.merge(local);
  }
  ASSERT_EQ(merged.error_bound(), 0u);
  ASSERT_EQ(merged.count(), pooled.size());
  for (const double q : kProbes) {
    EXPECT_TRUE(bit_equal(merged.quantile(q), stats::quantile(pooled, q))) << "q=" << q;
  }
}

TEST(QuantileSketchTest, ErrorBoundHoldsUnderUniformLoad) {
  util::Pcg32 rng(13);
  QuantileSketch sketch(64);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    values.push_back(v);
    sketch.add(v);
  }
  EXPECT_GT(sketch.error_bound(), 0u);
  // The telescoped bound: ~n/k ranks per level over ~log2(n/k) levels.
  EXPECT_LT(sketch.relative_error_bound(), 0.2);
  std::sort(values.begin(), values.end());
  for (const double q : kProbes) assert_within_rank_bound(values, sketch, q);
}

TEST(QuantileSketchTest, ErrorBoundHoldsUnderHeavyTails) {
  // Lognormal with σ=3: the top ranks are orders of magnitude apart, so a
  // rank displacement that a uniform distribution would hide becomes a huge
  // value error if the bound lies.
  util::Pcg32 rng(17);
  QuantileSketch sketch(32);
  std::vector<double> values;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.lognormal(0.0, 3.0);
    values.push_back(v);
    sketch.add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : kProbes) assert_within_rank_bound(values, sketch, q);
}

TEST(QuantileSketchTest, ErrorBoundHoldsWithAllValuesTied) {
  QuantileSketch sketch(16);
  for (int i = 0; i < 5000; ++i) sketch.add(42.0);
  for (const double q : kProbes) EXPECT_EQ(sketch.quantile(q), 42.0);
}

TEST(QuantileSketchTest, ErrorBoundHoldsUnderManyTinyShardMerges) {
  // Adversarial shard geometry: 512 shards of 1–5 hosts each. Every local
  // sketch is trivially lossless; all the compaction pressure lands on the
  // merge path.
  util::Pcg32 rng(23);
  QuantileSketch merged(16);
  std::vector<double> pooled;
  for (int s = 0; s < 512; ++s) {
    QuantileSketch local(16);
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < n; ++i) {
      // Mix ties and spread so compaction has both to chew on.
      const double v = (s % 3 == 0) ? 5.0 : rng.uniform(0.0, 10.0);
      pooled.push_back(v);
      local.add(v);
    }
    merged.merge(local);
  }
  ASSERT_EQ(merged.count(), pooled.size());
  std::sort(pooled.begin(), pooled.end());
  for (const double q : kProbes) assert_within_rank_bound(pooled, merged, q);
}

TEST(QuantileSketchTest, MergeMatchesSequentialInsertDeterministically) {
  // Same multiset, two routes: one sketch fed sequentially vs a merge of
  // per-shard sketches fed the same values in the same global order. The
  // summaries need not be identical (compaction points differ), but both
  // must respect their own bounds — and each route must be reproducible
  // bit for bit when repeated.
  const auto build_sequential = [] {
    util::Pcg32 rng(29);
    QuantileSketch s(32);
    for (int i = 0; i < 9000; ++i) s.add(rng.uniform(0.0, 1.0));
    return s;
  };
  const auto build_merged = [] {
    util::Pcg32 rng(29);
    QuantileSketch merged(32);
    for (int shard = 0; shard < 9; ++shard) {
      QuantileSketch local(32);
      for (int i = 0; i < 1000; ++i) local.add(rng.uniform(0.0, 1.0));
      merged.merge(local);
    }
    return merged;
  };
  const QuantileSketch a1 = build_sequential();
  const QuantileSketch a2 = build_sequential();
  const QuantileSketch b1 = build_merged();
  const QuantileSketch b2 = build_merged();
  for (const double q : kProbes) {
    EXPECT_TRUE(bit_equal(a1.quantile(q), a2.quantile(q))) << "q=" << q;
    EXPECT_TRUE(bit_equal(b1.quantile(q), b2.quantile(q))) << "q=" << q;
  }
  EXPECT_EQ(b1.error_bound(), b2.error_bound());
}

TEST(QuantileSketchTest, EmptySketchThrows) {
  const QuantileSketch sketch;
  EXPECT_THROW((void)sketch.quantile(0.5), util::ConfigError);
}

}  // namespace
}  // namespace tradeplot::stats
