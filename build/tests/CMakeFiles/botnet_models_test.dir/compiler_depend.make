# Empty compiler generated dependencies file for botnet_models_test.
# This may be replaced when dependencies are built.
