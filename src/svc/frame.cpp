#include "svc/frame.h"

#include <cstring>

#include "util/checksum.h"

namespace tradeplot::svc {

namespace {

// Wire image of the magic for resync scanning ("TPMF" little-endian).
constexpr char kMagicBytes[4] = {'T', 'P', 'M', 'F'};

template <typename T>
void append_raw(std::vector<char>& out, T value) {
  const char* bytes = reinterpret_cast<const char*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(value));
}

template <typename T>
T read_raw(const char* p) {
  T value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

}  // namespace

bool frame_type_valid(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kError);
}

std::string_view to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello_ack";
    case FrameType::kFlows: return "flows";
    case FrameType::kFlush: return "flush";
    case FrameType::kFlushAck: return "flush_ack";
    case FrameType::kBye: return "bye";
    case FrameType::kError: return "error";
  }
  return "unknown";
}

void append_frame(std::vector<char>& out, FrameType type, const char* payload,
                  std::size_t n) {
  out.reserve(out.size() + kFrameHeaderSize + n);
  append_raw(out, kFrameMagic);
  append_raw(out, static_cast<std::uint8_t>(type));
  append_raw(out, static_cast<std::uint32_t>(n));
  append_raw(out, util::crc32(payload, n));
  out.insert(out.end(), payload, payload + n);
}

std::vector<char> encode_frame(FrameType type, std::string_view payload) {
  std::vector<char> out;
  append_frame(out, type, payload.data(), payload.size());
  return out;
}

void append_u64(std::vector<char>& out, std::uint64_t v) { append_raw(out, v); }

std::uint64_t read_u64(const char* p) { return read_raw<std::uint64_t>(p); }

void FrameParser::skip(std::size_t n) {
  pos_ += n;
  stats_.bytes_skipped += n;
  if (!resyncing_) {
    resyncing_ = true;
    ++stats_.resync_events;
  }
}

void FrameParser::compact() {
  // Reclaim consumed prefix once it dominates the buffer, keeping append()
  // amortized O(1) without unbounded growth across a long connection.
  if (pos_ > (1u << 16) && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

bool FrameParser::next(Frame& out) {
  for (;;) {
    const std::size_t avail = buf_.size() - pos_;
    if (avail < kFrameHeaderSize) {
      compact();
      return false;
    }
    const char* p = buf_.data() + pos_;

    if (std::memcmp(p, kMagicBytes, sizeof(kMagicBytes)) != 0) {
      // Not at a frame boundary: scan forward to the next candidate magic.
      const char* found = static_cast<const char*>(
          std::memchr(p + 1, kMagicBytes[0], avail - 1));
      skip(found ? static_cast<std::size_t>(found - p) : avail);
      continue;
    }

    const std::uint8_t type = static_cast<std::uint8_t>(p[4]);
    const std::uint32_t len = read_raw<std::uint32_t>(p + 5);
    const std::uint32_t crc = read_raw<std::uint32_t>(p + 9);
    if (!frame_type_valid(type) || len > kMaxFramePayload) {
      // Header is implausible; treat the magic match as coincidence.
      ++stats_.frames_bad;
      skip(1);
      continue;
    }
    if (avail < kFrameHeaderSize + len) {
      compact();
      return false;  // header plausible, payload still in flight
    }
    const char* payload = p + kFrameHeaderSize;
    if (util::crc32(payload, len) != crc) {
      ++stats_.frames_bad;
      skip(1);  // resync from the next byte; the scan above finds the next magic
      continue;
    }

    out.type = static_cast<FrameType>(type);
    out.payload.assign(payload, payload + len);
    pos_ += kFrameHeaderSize + len;
    ++stats_.frames_ok;
    resyncing_ = false;
    compact();
    return true;
  }
}

}  // namespace tradeplot::svc
