# Empty dependencies file for detect_human_machine_test.
# This may be replaced when dependencies are built.
