#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "botnet/honeynet.h"
#include "botnet/nugache.h"
#include "botnet/storm.h"
#include "detect/features.h"
#include "netflow/app_env.h"
#include "simnet/simulation.h"
#include "stats/descriptive.h"

namespace tradeplot::botnet {
namespace {

constexpr double kWindow = 6 * 3600.0;
const simnet::Ipv4 kSelf(10, 99, 0, 1);

struct World {
  simnet::Simulation sim;
  simnet::SubnetAllocator alloc{{simnet::Subnet(simnet::Ipv4(10, 99, 0, 0), 16)},
                                util::Pcg32(999)};
  std::vector<netflow::FlowRecord> flows;

  netflow::AppEnv env() {
    netflow::AppEnv e;
    e.sim = &sim;
    e.window_end = kWindow;
    e.sink = [this](netflow::FlowRecord r) { flows.push_back(std::move(r)); };
    e.external_addr = [this] { return alloc.random_external(); };
    return e;
  }
};

TEST(StormBot, TinyFlowsLowChurnSharpTimers) {
  World world;
  StormBot bot(world.env(), kSelf, util::Pcg32(1), nullptr);
  bot.start();
  world.sim.run_until(kWindow);

  std::set<simnet::Ipv4> dsts;
  std::map<simnet::Ipv4, std::vector<double>> per_dst;
  std::uint64_t failed = 0, total = 0, bytes = 0;
  for (const auto& r : world.flows) {
    ASSERT_EQ(r.src, kSelf);
    EXPECT_EQ(r.proto, netflow::Protocol::kUdp);
    EXPECT_EQ(r.dport, StormBot::kPort);
    dsts.insert(r.dst);
    per_dst[r.dst].push_back(r.start_time);
    ++total;
    bytes += r.bytes_src;
    if (r.failed()) ++failed;
  }
  ASSERT_GT(total, 1000u);
  // Control messages only: average flow size far below any Trader's.
  EXPECT_LT(static_cast<double>(bytes) / static_cast<double>(total), 500.0);
  // Stored peer list: destinations are bounded and heavily reused.
  EXPECT_LT(dsts.size(), 400u);
  EXPECT_GT(total / dsts.size(), 10u);
  // Failure rate in the plausible band for a 40%-stale list.
  const double fail_rate = static_cast<double>(failed) / static_cast<double>(total);
  EXPECT_GT(fail_rate, 0.10);
  EXPECT_LT(fail_rate, 0.60);
  // Active-neighbour pings: the dominant interstitial is the keepalive
  // timer (20 s by default).
  std::vector<double> gaps;
  for (auto& [dst, times] : per_dst) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 1; i < times.size(); ++i) gaps.push_back(times[i] - times[i - 1]);
  }
  ASSERT_GT(gaps.size(), 500u);
  EXPECT_NEAR(stats::median(gaps), 20.0, 2.0);
}

TEST(StormBot, SameTimersAcrossBots) {
  // Two bots with different seeds share the timing signature — the basis of
  // theta_hm's cluster signal.
  const auto median_gap = [](std::uint64_t seed) {
    World world;
    StormBot bot(world.env(), kSelf, util::Pcg32(seed), nullptr);
    bot.start();
    world.sim.run_until(kWindow);
    std::map<simnet::Ipv4, std::vector<double>> per_dst;
    for (const auto& r : world.flows) per_dst[r.dst].push_back(r.start_time);
    std::vector<double> gaps;
    for (auto& [dst, times] : per_dst) {
      std::sort(times.begin(), times.end());
      for (std::size_t i = 1; i < times.size(); ++i) gaps.push_back(times[i] - times[i - 1]);
    }
    return stats::median(gaps);
  };
  EXPECT_NEAR(median_gap(7), median_gap(8), 1.0);
}

TEST(StormBot, VolumeEvasionMultiplierScalesBytes) {
  const auto avg_bytes = [](double multiplier) {
    World world;
    StormConfig config;
    config.evasion.volume_multiplier = multiplier;
    StormBot bot(world.env(), kSelf, util::Pcg32(5), nullptr, config);
    bot.start();
    world.sim.run_until(3600.0);
    std::uint64_t bytes = 0, flows = 0;
    for (const auto& r : world.flows) {
      bytes += r.bytes_src;
      ++flows;
    }
    return static_cast<double>(bytes) / static_cast<double>(flows);
  };
  const double base = avg_bytes(1.0);
  const double inflated = avg_bytes(5.0);
  EXPECT_NEAR(inflated / base, 5.0, 0.5);
}

TEST(StormBot, ChurnEvasionRaisesNewDestinations) {
  const auto distinct_dsts = [](double frac) {
    World world;
    StormConfig config;
    config.evasion.extra_new_contact_frac = frac;
    StormBot bot(world.env(), kSelf, util::Pcg32(6), nullptr, config);
    bot.start();
    world.sim.run_until(kWindow);
    std::set<simnet::Ipv4> dsts;
    for (const auto& r : world.flows) dsts.insert(r.dst);
    return dsts.size();
  };
  EXPECT_GT(distinct_dsts(0.5), distinct_dsts(0.0) * 5);
}

TEST(StormBot, JitterEvasionSmearsTheComb) {
  const auto comb_mass = [](double jitter) {
    World world;
    StormConfig config;
    config.evasion.jitter_range = jitter;
    StormBot bot(world.env(), kSelf, util::Pcg32(7), nullptr, config);
    bot.start();
    world.sim.run_until(kWindow);
    std::map<simnet::Ipv4, std::vector<double>> per_dst;
    for (const auto& r : world.flows) per_dst[r.dst].push_back(r.start_time);
    std::size_t near_timer = 0, total = 0;
    for (auto& [dst, times] : per_dst) {
      std::sort(times.begin(), times.end());
      for (std::size_t i = 1; i < times.size(); ++i) {
        const double gap = times[i] - times[i - 1];
        ++total;
        if (std::abs(gap - 20.0) < 2.0) ++near_timer;
      }
    }
    return static_cast<double>(near_timer) / static_cast<double>(total);
  };
  EXPECT_GT(comb_mass(0.0), 0.5);
  EXPECT_LT(comb_mass(120.0), 0.2);
}

TEST(NugacheBot, HighFailureRateOnPort8) {
  // The paper's Fig. 5: "almost all Nugache Plotters [have] more than 65%
  // failed connections" — a *population* statistic; the most conversation-
  // heavy bots fail less, the (more numerous) discovery-dominated ones more.
  std::vector<double> rates;
  for (int b = 0; b < 15; ++b) {
    World world;
    NugacheBot bot(world.env(), kSelf, util::Pcg32(200 + static_cast<std::uint64_t>(b)));
    bot.start();
    world.sim.run_until(kWindow);
    std::uint64_t failed = 0, total = 0;
    for (const auto& r : world.flows) {
      EXPECT_EQ(r.proto, netflow::Protocol::kTcp);
      EXPECT_EQ(r.dport, NugacheBot::kPort);
      ++total;
      if (r.failed()) ++failed;
    }
    if (total >= 20) rates.push_back(static_cast<double>(failed) / static_cast<double>(total));
  }
  ASSERT_GE(rates.size(), 8u);
  std::sort(rates.begin(), rates.end());
  EXPECT_GT(rates[rates.size() / 2], 0.6);  // median bot above 60%
}

TEST(NugacheBot, ActivitySpreadsOverOrdersOfMagnitude) {
  std::vector<double> counts;
  for (int b = 0; b < 40; ++b) {
    World world;
    NugacheBot bot(world.env(), kSelf, util::Pcg32(100 + static_cast<std::uint64_t>(b)));
    bot.start();
    world.sim.run_until(kWindow);
    counts.push_back(static_cast<double>(world.flows.size()) + 1);
  }
  std::sort(counts.begin(), counts.end());
  EXPECT_GT(counts.back() / counts.front(), 20.0);
}

TEST(NugacheBot, ConversationGapsSitOnTheModes) {
  World world;
  NugacheConfig config;
  config.activity_mu = 0.7;
  config.activity_sigma = 0.05;
  NugacheBot bot(world.env(), kSelf, util::Pcg32(3), config);
  bot.start();
  world.sim.run_until(kWindow);
  std::map<simnet::Ipv4, std::vector<double>> per_dst;
  for (const auto& r : world.flows) per_dst[r.dst].push_back(r.start_time);
  std::size_t on_mode = 0, total = 0;
  for (auto& [dst, times] : per_dst) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 1; i < times.size(); ++i) {
      const double gap = times[i] - times[i - 1];
      ++total;
      for (const double mode : config.interval_modes) {
        if (std::abs(gap - mode) <= config.interval_jitter + 0.5) {
          ++on_mode;
          break;
        }
      }
    }
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(on_mode) / static_cast<double>(total), 0.6);
}

TEST(Honeynet, StormTraceShapeMatchesPaperSetup) {
  HoneynetConfig config;
  config.seed = 5;
  config.duration = 4 * 3600.0;  // shorter for test speed
  const netflow::TraceSet trace = generate_storm_trace(config);
  EXPECT_EQ(trace.hosts_of_kind(netflow::HostKind::kStorm).size(), 13u);
  EXPECT_GT(trace.flows().size(), 10000u);
  EXPECT_DOUBLE_EQ(trace.window_end(), config.duration);
  // Flows are time-sorted and within the window.
  for (std::size_t i = 1; i < trace.flows().size(); ++i) {
    EXPECT_LE(trace.flows()[i - 1].start_time, trace.flows()[i].start_time);
  }
}

TEST(Honeynet, NugacheTraceHas82Bots) {
  HoneynetConfig config;
  config.seed = 5;
  config.duration = 2 * 3600.0;
  const netflow::TraceSet trace = generate_nugache_trace(config);
  EXPECT_EQ(trace.hosts_of_kind(netflow::HostKind::kNugache).size(), 82u);
  EXPECT_FALSE(trace.flows().empty());
}

TEST(Honeynet, Deterministic) {
  HoneynetConfig config;
  config.seed = 9;
  config.duration = 1800.0;
  const auto a = generate_storm_trace(config);
  const auto b = generate_storm_trace(config);
  ASSERT_EQ(a.flows().size(), b.flows().size());
  for (std::size_t i = 0; i < a.flows().size(); ++i) EXPECT_EQ(a.flows()[i], b.flows()[i]);
}

}  // namespace
}  // namespace tradeplot::botnet
