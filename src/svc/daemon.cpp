#include "svc/daemon.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "netflow/trace_reader.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "svc/frame.h"
#include "util/error.h"
#include "util/interrupt.h"

namespace tradeplot::svc {

namespace {

/// Socket-poll granularity: loops re-check stop flags and clock deadlines
/// at this cadence, so shutdown latency and timeout jitter are bounded by
/// it (timeout precision beyond this is not a goal).
constexpr int kPollMs = 100;

void count_frame(FrameType type) {
  if (!obs::enabled()) return;
  obs::Registry::global()
      .counter("tradeplot_svc_frames_total", "Protocol frames received by type",
               {{"type", std::string(to_string(type))}})
      .add();
}

void count_disconnect(const char* reason) {
  if (!obs::enabled()) return;
  obs::Registry::global()
      .counter("tradeplot_svc_disconnects_total", "Connection ends by reason",
               {{"reason", reason}})
      .add();
}

bool send_frame(int fd, FrameType type, std::string_view payload) {
  const std::vector<char> wire = encode_frame(type, payload);
  return send_all(fd, wire.data(), wire.size());
}

bool send_error(int fd, const std::string& reason) {
  return send_frame(fd, FrameType::kError, reason);
}

}  // namespace

Daemon::Daemon(DaemonConfig config, util::Clock& clock)
    : config_(std::move(config)), clock_(clock) {
  read_timeout_.store(config_.read_timeout);
  idle_timeout_.store(config_.idle_timeout);
}

Daemon::~Daemon() { stop(); }

void Daemon::track_thread(std::thread t) {
  std::lock_guard<std::mutex> lock(mutex_);
  threads_.push_back(std::move(t));
}

void Daemon::start() {
  if (running_.load()) return;
  if (config_.metrics) obs::set_enabled(true);

  if (::mkdir(config_.state_dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw util::IoError("cannot create state_dir " + config_.state_dir + ": " +
                        std::strerror(errno));

  for (const TenantParams& params : config_.tenants) {
    auto tenant = std::make_unique<Tenant>(params, config_.state_dir, clock_);
    tenant->set_checkpoint_interval(config_.checkpoint_interval);
    tenant->start();
    std::lock_guard<std::mutex> lock(mutex_);
    tenants_.push_back(std::move(tenant));
  }

  ingest_listener_ = listen_on(Endpoint::parse(config_.ingest), 32, &ingest_port_);
  if (!config_.http.empty())
    http_listener_ = listen_on(Endpoint::parse(config_.http), 16, &http_port_);

  started_at_ = clock_.now();
  stopping_.store(false);
  running_.store(true);
  {
    // Service threads (and the connection threads they spawn, which inherit
    // this mask transitively) must leave SIGINT/SIGTERM/SIGHUP delivery to
    // the main thread; see util/interrupt.h.
    util::ScopedWorkerSignalMask mask;
    track_thread(std::thread([this] { accept_loop(); }));
    if (http_listener_.valid()) track_thread(std::thread([this] { http_loop(); }));
    track_thread(std::thread([this] { housekeeping_loop(); }));
  }
}

void Daemon::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);

  // Join in passes: the accept loops may spawn one last connection thread
  // before observing stopping_, and it lands in threads_ after the first
  // swap. Joining the accept loops first guarantees the second pass sees
  // every straggler.
  for (;;) {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      threads.swap(threads_);
    }
    if (threads.empty()) break;
    for (std::thread& t : threads)
      if (t.joinable()) t.join();
  }
  ingest_listener_.reset();
  http_listener_.reset();

  std::vector<Tenant*> all = tenants();
  for (Tenant* t : all) t->stop();
}

Tenant* Daemon::find_tenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& t : tenants_)
    if (t->name() == name) return t.get();
  return nullptr;
}

std::vector<Tenant*> Daemon::tenants() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Tenant*> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) out.push_back(t.get());
  return out;
}

std::string Daemon::reload(const DaemonConfig& fresh) {
  read_timeout_.store(fresh.read_timeout);
  idle_timeout_.store(fresh.idle_timeout);
  std::size_t updated = 0, added = 0, incompatible = 0;
  for (const TenantParams& params : fresh.tenants) {
    if (Tenant* existing = find_tenant(params.name)) {
      if (existing->update(params)) ++updated;
      else ++incompatible;
      continue;
    }
    auto tenant = std::make_unique<Tenant>(params, config_.state_dir, clock_);
    tenant->set_checkpoint_interval(config_.checkpoint_interval);
    tenant->start();
    std::lock_guard<std::mutex> lock(mutex_);
    tenants_.push_back(std::move(tenant));
    ++added;
  }
  if (obs::enabled())
    obs::Registry::global()
        .counter("tradeplot_svc_reloads_total", "Config reloads applied")
        .add();
  std::ostringstream out;
  out << "reload: " << updated << " tenant(s) updated, " << added << " added";
  if (incompatible > 0)
    out << ", " << incompatible
        << " kept prior window/timing_budget (fixed for process lifetime)";
  return out.str();
}

void Daemon::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!wait_readable(ingest_listener_.get(), kPollMs)) continue;
    Fd conn = accept_conn(ingest_listener_.get());
    if (!conn.valid()) continue;
    if (obs::enabled())
      obs::Registry::global()
          .counter("tradeplot_svc_connections_total", "Ingest connections accepted")
          .add();
    track_thread(std::thread([this, fd = std::move(conn)]() mutable {
      serve_connection(std::move(fd));
    }));
  }
}

void Daemon::serve_connection(Fd fd) {
  FrameParser parser;
  Frame frame;
  Tenant* tenant = nullptr;
  std::vector<char> rbuf(64 * 1024);
  double last_activity = clock_.now();

  while (!stopping_.load(std::memory_order_relaxed)) {
    // Drain every complete frame before touching the socket again: a
    // blocked tenant queue (backpressure) must stop the reads, not grow
    // the parser buffer.
    while (parser.next(frame)) {
      last_activity = clock_.now();
      count_frame(frame.type);
      switch (frame.type) {
        case FrameType::kHello: {
          const std::string name(frame.payload_view());
          tenant = find_tenant(name);
          if (tenant == nullptr) {
            (void)send_error(fd.get(), "unknown tenant: " + name);
            count_disconnect("unknown_tenant");
            return;
          }
          std::vector<char> ack;
          append_u64(ack, tenant->accepted_total());
          if (!send_frame(fd.get(), FrameType::kHelloAck,
                          {ack.data(), ack.size()})) {
            count_disconnect("peer_gone");
            return;
          }
          break;
        }
        case FrameType::kFlows: {
          if (tenant == nullptr) {
            (void)send_error(fd.get(), "flows before hello");
            break;
          }
          MemoryStream payload(frame.payload.data(), frame.payload.size());
          netflow::TraceReader reader(payload, tenant->params().policy);
          try {
            for (;;) {
              netflow::FlowBatch batch;
              if (reader.next_batch(batch) == 0) break;
              (void)tenant->offer(std::move(batch));
            }
          } catch (const util::Error& e) {
            // Strict-policy fault or lost record sync inside one payload:
            // the faulting payload is abandoned (its parsed prefix was
            // offered above), the connection and other frames are fine.
            (void)send_error(fd.get(), e.what());
          }
          tenant->add_quarantined(reader.ingest_stats().records_quarantined);
          break;
        }
        case FrameType::kFlush: {
          if (tenant == nullptr) {
            (void)send_error(fd.get(), "flush before hello");
            break;
          }
          const Tenant::Stats s = tenant->flush_barrier();
          std::vector<char> ack;
          append_u64(ack, s.accepted);
          append_u64(ack, s.ingested);
          append_u64(ack, s.shed);
          append_u64(ack, s.quarantined);
          if (!send_frame(fd.get(), FrameType::kFlushAck,
                          {ack.data(), ack.size()})) {
            count_disconnect("peer_gone");
            return;
          }
          break;
        }
        case FrameType::kBye:
          count_disconnect("bye");
          return;
        default:
          // Server-to-client types from a client: ignore with accounting
          // (count_frame above already recorded it).
          break;
      }
    }

    // A connection holding half a frame gets the (short) read timeout; an
    // idle one between frames gets the idle timeout.
    const double limit =
        parser.buffered() > 0 ? read_timeout_.load() : idle_timeout_.load();
    if (clock_.now() - last_activity > limit) {
      (void)send_error(fd.get(), parser.buffered() > 0 ? "read timeout" : "idle timeout");
      count_disconnect(parser.buffered() > 0 ? "read_timeout" : "idle_timeout");
      return;
    }

    if (!wait_readable(fd.get(), kPollMs)) continue;
    std::size_t got = 0;
    try {
      got = recv_some(fd.get(), rbuf.data(), rbuf.size());
    } catch (const util::IoError&) {
      count_disconnect("recv_error");
      return;
    }
    if (got == 0) {
      count_disconnect("eof");
      return;
    }
    parser.append(rbuf.data(), got);
    last_activity = clock_.now();
  }
  count_disconnect("shutdown");
}

std::string Daemon::http_response_for(const std::string& path) {
  const auto respond = [](int code, const char* status, const std::string& type,
                          const std::string& body) {
    std::ostringstream out;
    out << "HTTP/1.0 " << code << ' ' << status << "\r\nContent-Type: " << type
        << "\r\nContent-Length: " << body.size() << "\r\nConnection: close\r\n\r\n"
        << body;
    return out.str();
  };

  if (path == "/healthz") return respond(200, "OK", "text/plain", "ok\n");
  if (path == "/readyz") {
    std::string unready;
    for (Tenant* t : tenants())
      if (!t->ready()) unready += (unready.empty() ? "" : ", ") + t->name();
    if (unready.empty()) return respond(200, "OK", "text/plain", "ready\n");
    return respond(503, "Service Unavailable", "text/plain", "not ready: " + unready + "\n");
  }
  if (path == "/metrics") {
    if (!obs::enabled())
      return respond(503, "Service Unavailable", "text/plain",
                     "metrics disabled (set metrics = true)\n");
    return respond(200, "OK", "text/plain; version=0.0.4",
                   obs::to_prometheus(obs::Registry::global().snapshot()));
  }
  if (path == "/tenants") {
    std::ostringstream body;
    body << "{\"tenants\":[";
    bool first = true;
    for (Tenant* t : tenants()) {
      const Tenant::Stats s = t->stats();
      if (!first) body << ',';
      first = false;
      body << "{\"name\":\"" << t->name() << "\",\"ready\":" << (t->ready() ? "true" : "false")
           << ",\"accepted\":" << s.accepted << ",\"ingested\":" << s.ingested
           << ",\"shed\":" << s.shed << ",\"quarantined\":" << s.quarantined
           << ",\"verdicts\":" << s.verdicts << ",\"checkpoints\":" << s.checkpoints
           << ",\"checkpoint_failures\":" << s.checkpoint_failures
           << ",\"restore_failures\":" << s.restore_failures
           << ",\"queued_rows\":" << t->queued_rows() << "}";
    }
    body << "]}";
    return respond(200, "OK", "application/json", body.str());
  }
  return respond(404, "Not Found", "text/plain", "not found\n");
}

void Daemon::serve_http(Fd fd) {
  // Minimal HTTP/1.0: read the request head (bounded), answer, close.
  std::string req;
  char buf[2048];
  const double deadline = clock_.now() + 5.0;
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
    if (stopping_.load(std::memory_order_relaxed) || clock_.now() > deadline) return;
    if (!wait_readable(fd.get(), kPollMs)) continue;
    std::size_t got = 0;
    try {
      got = recv_some(fd.get(), buf, sizeof(buf));
    } catch (const util::IoError&) {
      return;
    }
    if (got == 0) break;
    req.append(buf, got);
  }
  std::istringstream head(req);
  std::string method, path;
  head >> method >> path;
  if (method != "GET" || path.empty()) return;
  const std::string response = http_response_for(path);
  (void)send_all(fd.get(), response.data(), response.size());
}

void Daemon::http_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!wait_readable(http_listener_.get(), kPollMs)) continue;
    Fd conn = accept_conn(http_listener_.get());
    if (!conn.valid()) continue;
    track_thread(
        std::thread([this, fd = std::move(conn)]() mutable { serve_http(std::move(fd)); }));
  }
}

void Daemon::housekeeping_loop() {
  // Touch the family up front so a scrape in the daemon's first second
  // already sees it (at 0) instead of a missing series.
  obs::Counter* uptime =
      obs::enabled()
          ? &obs::Registry::global().counter("tradeplot_svc_uptime_seconds_total",
                                             "Whole seconds since daemon start")
          : nullptr;
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Real-time cadence (stop latency); elapsed time via the injected clock.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    if (uptime == nullptr) continue;
    const auto up = static_cast<std::uint64_t>(clock_.now() - started_at_);
    if (up > uptime_reported_) {
      uptime->add(up - uptime_reported_);
      uptime_reported_ = up;
    }
  }
}

}  // namespace tradeplot::svc
