# Empty compiler generated dependencies file for fig01_volume_cdf.
# This may be replaced when dependencies are built.
