#include "util/format.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace tradeplot::util {

std::string fixed(double value, int decimals) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", decimals, value);
  return std::string(buf.data());
}

std::string human_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  double v = bytes;
  while (std::abs(v) >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return fixed(v, unit == 0 ? 0 : 2) + " " + kUnits[unit];
}

std::string percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

std::string human_duration(double seconds) {
  if (seconds < 1.0) return fixed(seconds, 2) + "s";
  const auto total = static_cast<long long>(std::llround(seconds));
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%02lld:%02lld:%02lld", h, m, s);
  return std::string(buf.data());
}

std::string column(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

}  // namespace tradeplot::util
