// Infrastructure-service host models: mail relays, DNS-chatty clients, and
// NTP beacons.
//
// These populate the corners of the feature space that stress the detector:
//   * MailServer contacts many brand-new MX hosts per day (churn as high as
//     a Trader's) with a noticeable failure rate (greylisting, dead MXs) —
//     the host class most likely to sneak past data reduction.
//   * NtpClient is pure machine-periodic traffic to a fixed destination set:
//     a potential false positive for the human-vs-machine test if it ever
//     survives the earlier stages.
#pragma once

#include <vector>

#include "netflow/app_env.h"
#include "netflow/flow_emit.h"
#include "util/rng.h"

namespace tradeplot::hosts {

struct MailServerConfig {
  double outbound_per_hour = 40.0;
  double fail_prob = 0.18;       // greylists, dead MXs, DNSBL rejects
  double inbound_per_hour = 30.0;
  double msg_lo = 2e3, msg_hi = 5e5;
  double revisit_prob = 0.3;  // big providers get most of the mail
  int provider_pool = 8;
};

class MailServer {
 public:
  MailServer(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
             MailServerConfig config = {});
  void start();

 private:
  void outbound_loop();
  void inbound_loop();

  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  MailServerConfig config_;
  std::vector<simnet::Ipv4> providers_;
};

struct DnsClientConfig {
  int resolvers = 2;
  double queries_per_hour = 150.0;
  double fail_prob = 0.02;
};

/// A host whose visible border traffic is mostly DNS to campus resolvers
/// (the rest of its traffic stays inside the network).
class DnsClient {
 public:
  DnsClient(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng, DnsClientConfig config = {});
  void start();

 private:
  void query_loop();

  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  DnsClientConfig config_;
  std::vector<simnet::Ipv4> resolvers_;
};

struct NtpClientConfig {
  int servers = 2;
  double period = 64.0;  // classic ntpd minpoll
  double jitter = 0.5;
};

class NtpClient {
 public:
  NtpClient(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng, NtpClientConfig config = {});
  void start();

 private:
  netflow::AppEnv env_;
  util::Pcg32 rng_;
  netflow::FlowEmitter emit_;
  NtpClientConfig config_;
  std::vector<simnet::Ipv4> servers_;
};

}  // namespace tradeplot::hosts
