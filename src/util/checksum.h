// Data integrity checksums.
//
// crc32 implements the IEEE 802.3 CRC (reflected polynomial 0xEDB88320),
// the same function used by zlib/PNG/Ethernet. The checkpoint format (see
// detect/streaming.h) appends it to every serialized payload so that a
// truncated or bit-flipped checkpoint is rejected on restore instead of
// silently resurrecting corrupt detector state.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tradeplot::util {

/// CRC-32 of `n` bytes at `data`. `seed` is the running CRC from a previous
/// call, letting large payloads be checksummed in chunks:
///   crc32(b, n1 + n2) == crc32(b + n1, n2, crc32(b, n1)).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace tradeplot::util
