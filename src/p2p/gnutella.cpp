#include "p2p/gnutella.h"

#include <algorithm>

namespace tradeplot::p2p {

namespace {
constexpr std::string_view kHandshake = "GNUTELLA CONNECT/0.6\r\nUser-Agent: LimeWire/4.12\r\n";
constexpr std::string_view kDownload =
    "GET /get/4242/song.mp3 HTTP/1.1\r\nX-Features: LIME fwalt/0.1\r\n";
constexpr std::string_view kPush = "GNUTELLA CONNECT BACK/0.6\r\n";
}  // namespace

GnutellaHost::GnutellaHost(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
                           GnutellaConfig config)
    : env_(std::move(env)),
      rng_(rng),
      emit_(&env_, self, &rng_),
      config_(config),
      churn_(config.churn) {}

void GnutellaHost::start() {
  const double start =
      rng_.uniform(0.0, config_.session_start_frac_max * env_.window_end);
  env_.sim->schedule_at(start, [this] { begin_session(); });
}

void GnutellaHost::begin_session() {
  const double session_len = rng_.lognormal(config_.session_mu, config_.session_sigma);
  const double session_end = std::min(emit_.now() + session_len, env_.window_end);

  // Bootstrap: dial ultrapeers from the (stale) host cache until enough
  // connect. Each failed dial is a flow the border monitor sees.
  int connected = 0;
  int attempts = 0;
  while (connected < config_.ultrapeer_count && attempts < config_.ultrapeer_count * 4) {
    ++attempts;
    const simnet::Ipv4 up = env_.external_addr();
    if (rng_.chance(config_.ultrapeer_connect_fail_prob)) {
      emit_.tcp_failed(up, kPort);
      continue;
    }
    ++connected;
    // The ultrapeer connection lives for the session and carries pings,
    // queries and query hits: modest, bursty byte counts.
    const double dur = std::max(1.0, session_end - emit_.now());
    emit_.tcp(up, kPort, static_cast<std::uint64_t>(rng_.uniform(2e4, 1e5)),
              static_cast<std::uint64_t>(rng_.uniform(1e5, 6e5)), dur, kHandshake);
  }

  search_loop(session_end);
  serve_inbound_loop(session_end);
}

void GnutellaHost::search_loop(double session_end) {
  const double think = rng_.lognormal(config_.think_mu, config_.think_sigma);
  if (emit_.now() + think >= session_end) return;
  env_.sim->schedule_after(think, [this, session_end] {
    do_search(session_end);
    search_loop(session_end);
  });
}

void GnutellaHost::do_search(double session_end) {
  // The query itself rides the ultrapeer connections (no new flow). What
  // the border sees is the wave of download attempts to learned sources.
  const int sources = static_cast<int>(
      rng_.uniform_int(config_.min_sources_per_search, config_.max_sources_per_search));
  for (int s = 0; s < sources; ++s) {
    const bool revisit = !past_sources_.empty() && rng_.chance(0.1);
    const simnet::Ipv4 src = revisit ? rng_.pick(past_sources_) : env_.external_addr();
    const bool alive =
        revisit ? churn_.revisit_alive(rng_) : churn_.fresh_contact_alive(rng_);
    const double jitter = rng_.uniform(0.1, 20.0);
    env_.sim->schedule_after(jitter, [this, src, alive, session_end] {
      if (emit_.now() >= session_end) return;
      if (!alive) {
        emit_.tcp_failed(src, kPort, rng_.chance(0.3));
        return;
      }
      const double size =
          rng_.bounded_pareto(config_.file_lo_bytes, config_.file_hi_bytes, config_.file_alpha);
      const double rate = rng_.uniform(config_.rate_lo, config_.rate_hi);
      const double dur = std::min(size / rate, session_end - emit_.now());
      const auto down = static_cast<std::uint64_t>(rate * dur);
      const auto up = static_cast<std::uint64_t>(rng_.uniform(500, 4000));
      emit_.tcp(src, kPort, up, down, std::max(dur, 1.0), kDownload);
      past_sources_.push_back(src);
    });
  }
}

void GnutellaHost::serve_inbound_loop(double session_end) {
  const double gap = rng_.exponential(3600.0 / config_.inbound_per_hour);
  if (emit_.now() + gap >= session_end) return;
  env_.sim->schedule_after(gap, [this, session_end] {
    // An external leecher fetches a chunk from us; occasionally it is a
    // firewalled peer using CONNECT BACK push semantics first.
    const simnet::Ipv4 leecher = env_.external_addr();
    if (rng_.chance(0.15)) emit_.tcp(leecher, kPort, 300, 150, 1.0, kPush);
    const double size = rng_.bounded_pareto(config_.file_lo_bytes, config_.file_hi_bytes / 4,
                                            config_.file_alpha + 0.1);
    const double rate = rng_.uniform(config_.rate_lo, config_.rate_hi / 2);
    const double dur = std::max(1.0, std::min(size / rate, session_end - emit_.now()));
    emit_.inbound_tcp(leecher, kPort, static_cast<std::uint64_t>(rng_.uniform(400, 2000)),
                      static_cast<std::uint64_t>(rate * dur), dur, kDownload);
    serve_inbound_loop(session_end);
  });
}

}  // namespace tradeplot::p2p
