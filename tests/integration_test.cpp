// End-to-end integration: campus simulation -> honeynet overlay -> feature
// extraction -> FindPlotters, plus serialization round-trips of generated
// traces — the full paper pipeline on a reduced-scale day.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "botnet/honeynet.h"
#include "detect/find_plotters.h"
#include "eval/experiments.h"
#include "netflow/io.h"
#include "trace/campus.h"
#include "trace/overlay.h"

namespace tradeplot {
namespace {

trace::CampusConfig small_campus(std::uint64_t seed) {
  trace::CampusConfig config;
  config.seed = seed;
  config.window = 2 * 3600.0;
  config.web_clients = 120;
  config.idle_hosts = 40;
  config.dns_clients = 15;
  config.ntp_clients = 8;
  config.web_servers = 4;
  config.mail_servers = 3;
  config.scanners = 1;
  config.gnutella_hosts = 6;
  config.emule_hosts = 6;
  config.bittorrent_hosts = 8;
  config.bittorrent_web_only = 2;
  config.kad_overlay_size = 120;
  config.bt_overlay_size = 120;
  return config;
}

botnet::HoneynetConfig small_honeynet(std::uint64_t seed) {
  botnet::HoneynetConfig config;
  config.seed = seed;
  config.duration = 4 * 3600.0;
  config.overnet_size = 150;
  return config;
}

TEST(Integration, StormPipelineCatchesMostBots) {
  const auto storm = botnet::generate_storm_trace(small_honeynet(5));
  const netflow::TraceSet empty;
  const eval::DayData day = eval::make_day(small_campus(5), storm, empty, 0);

  ASSERT_EQ(day.storm_hosts.size(), 13u);
  const detect::FindPlottersResult result = detect::find_plotters(day.features);

  std::size_t caught = 0;
  for (const simnet::Ipv4 bot : day.storm_hosts) {
    if (std::binary_search(result.plotters.begin(), result.plotters.end(), bot)) ++caught;
  }
  // On a 2-hour reduced-scale day the bar is lower than the headline
  // experiment, but the pipeline must catch the majority of Storm carriers
  // with few false positives.
  EXPECT_GE(caught, 7u);
  std::size_t fp = 0;
  for (const simnet::Ipv4 ip : result.plotters) {
    if (!day.is_plotter(ip)) ++fp;
  }
  EXPECT_LT(fp, result.input.size() / 20);
}

TEST(Integration, GeneratedTraceSurvivesSerializationRoundTrip) {
  const auto storm = botnet::generate_storm_trace(small_honeynet(6));
  const netflow::TraceSet empty;
  const eval::DayData day = eval::make_day(small_campus(6), storm, empty, 0);

  std::stringstream binary;
  netflow::write_binary(binary, day.combined);
  const netflow::TraceSet back = netflow::read_binary(binary);
  ASSERT_EQ(back.flows().size(), day.combined.flows().size());
  for (std::size_t i = 0; i < back.flows().size(); i += 97) {
    EXPECT_EQ(back.flows()[i], day.combined.flows()[i]);
  }
  // Feature extraction on the round-tripped trace is identical.
  detect::FeatureExtractorConfig fx;
  fx.is_internal = detect::default_internal_predicate;
  const auto features_a = detect::extract_features(day.combined, fx);
  const auto features_b = detect::extract_features(back, fx);
  ASSERT_EQ(features_a.size(), features_b.size());
  for (const auto& [ip, fa] : features_a) {
    const auto& fb = features_b.at(ip);
    EXPECT_EQ(fa.flows_initiated, fb.flows_initiated);
    EXPECT_EQ(fa.bytes_sent_initiated, fb.bytes_sent_initiated);
    EXPECT_EQ(fa.interstitials.size(), fb.interstitials.size());
  }
}

TEST(Integration, MakeDayIsDeterministic) {
  const auto storm = botnet::generate_storm_trace(small_honeynet(7));
  const netflow::TraceSet empty;
  const eval::DayData a = eval::make_day(small_campus(7), storm, empty, 2);
  const eval::DayData b = eval::make_day(small_campus(7), storm, empty, 2);
  EXPECT_EQ(a.storm_hosts, b.storm_hosts);
  EXPECT_EQ(a.combined.flows().size(), b.combined.flows().size());
  const eval::DayData c = eval::make_day(small_campus(7), storm, empty, 3);
  EXPECT_NE(a.storm_hosts, c.storm_hosts);
}

TEST(Integration, EvalHarnessSmoke) {
  eval::EvalConfig config;
  config.campus = small_campus(8);
  config.honeynet = small_honeynet(8);
  config.honeynet.nugache_bots = 20;  // keep the smoke test quick
  config.days = 2;
  const eval::DaySet days = eval::make_days(config);
  ASSERT_EQ(days.storm_days.size(), 2u);
  ASSERT_EQ(days.nugache_days.size(), 2u);
  EXPECT_EQ(days.storm_days[0].nugache_hosts.size(), 0u);
  EXPECT_EQ(days.nugache_days[0].storm_hosts.size(), 0u);
  EXPECT_EQ(days.nugache_days[0].nugache_hosts.size(), 20u);

  const eval::FunnelResult funnel = eval::funnel(days);
  ASSERT_EQ(funnel.stages.size(), 5u);
  // The funnel must be monotone in flagged counts from reduction to theta_hm.
  EXPECT_LE(funnel.stages.back().rates.flagged, funnel.stages.front().rates.flagged);

  const eval::RocSweepResult roc = eval::roc_sweep(days, eval::SweepTest::kVolume);
  EXPECT_EQ(roc.storm.points().size(), 5u);
  const auto thresholds = eval::evasion_thresholds(days);
  EXPECT_EQ(thresholds.size(), 2u);
  for (const auto& row : thresholds) {
    EXPECT_GT(row.tau_vol, 0.0);
    EXPECT_GT(row.storm_median_volume, 0.0);
  }
}

}  // namespace
}  // namespace tradeplot
