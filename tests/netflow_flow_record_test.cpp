#include "netflow/flow_record.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace tradeplot::netflow {
namespace {

TEST(FlowRecord, EnumRoundTrips) {
  for (const Protocol p : {Protocol::kTcp, Protocol::kUdp, Protocol::kIcmp}) {
    EXPECT_EQ(protocol_from_string(to_string(p)), p);
  }
  for (const FlowState s : {FlowState::kEstablished, FlowState::kAttempted, FlowState::kReset,
                            FlowState::kIcmpUnreach}) {
    EXPECT_EQ(flow_state_from_string(to_string(s)), s);
  }
  EXPECT_THROW((void)protocol_from_string("bogus"), util::ParseError);
  EXPECT_THROW((void)flow_state_from_string("bogus"), util::ParseError);
}

TEST(FlowRecord, PayloadTruncatesAt64Bytes) {
  FlowRecord r;
  const std::string big(200, 'x');
  r.set_payload(big);
  EXPECT_EQ(r.payload_len, kPayloadPrefixLen);
  EXPECT_EQ(r.payload_view(), std::string(64, 'x'));
}

TEST(FlowRecord, PayloadHandlesBinaryAndEmpty) {
  FlowRecord r;
  r.set_payload(std::string_view("\x00\xe3\x01", 3));
  EXPECT_EQ(r.payload_len, 3);
  EXPECT_EQ(r.payload_view()[1], '\xe3');
  r.set_payload("");
  EXPECT_EQ(r.payload_len, 0);
  EXPECT_TRUE(r.payload_view().empty());
}

TEST(FlowRecord, DerivedQuantities) {
  FlowRecord r;
  r.start_time = 10;
  r.end_time = 25;
  r.bytes_src = 100;
  r.bytes_dst = 200;
  r.pkts_src = 3;
  r.pkts_dst = 4;
  EXPECT_DOUBLE_EQ(r.duration(), 15.0);
  EXPECT_EQ(r.total_bytes(), 300u);
  EXPECT_EQ(r.total_pkts(), 7u);
  EXPECT_FALSE(r.failed());
  r.state = FlowState::kAttempted;
  EXPECT_TRUE(r.failed());
}

TEST(FlowBuilder, SuccessfulTcpExchange) {
  const FlowRecord r = FlowBuilder{}
                           .from(simnet::Ipv4(128, 2, 0, 1), 50000)
                           .to(simnet::Ipv4(1, 2, 3, 4), 80)
                           .proto(Protocol::kTcp)
                           .at(100.0, 5.0)
                           .transfer(1000, 50000)
                           .payload("GET /")
                           .build();
  EXPECT_EQ(r.state, FlowState::kEstablished);
  EXPECT_EQ(r.bytes_src, 1000u);
  EXPECT_EQ(r.bytes_dst, 50000u);
  // Data packets plus handshake/teardown overhead.
  EXPECT_GE(r.pkts_src, 3u);
  EXPECT_GE(r.pkts_dst, 35u);  // ~50000/1460 + overhead
  EXPECT_DOUBLE_EQ(r.start_time, 100.0);
  EXPECT_DOUBLE_EQ(r.end_time, 105.0);
  EXPECT_EQ(r.payload_view(), "GET /");
}

TEST(FlowBuilder, DerivedStateIsAttemptedWithoutResponse) {
  const FlowRecord r = FlowBuilder{}
                           .from(simnet::Ipv4(128, 2, 0, 1), 50000)
                           .to(simnet::Ipv4(1, 2, 3, 4), 80)
                           .proto(Protocol::kUdp)
                           .at(0, 1)
                           .transfer(100, 0)
                           .payload("x")
                           .build();
  EXPECT_EQ(r.state, FlowState::kAttempted);
  EXPECT_EQ(r.pkts_dst, 0u);
}

TEST(FlowBuilder, FailedTcpCarriesNoPayloadOrData) {
  const FlowRecord r = FlowBuilder{}
                           .from(simnet::Ipv4(128, 2, 0, 1), 50000)
                           .to(simnet::Ipv4(1, 2, 3, 4), 80)
                           .proto(Protocol::kTcp)
                           .at(0, 6)
                           .transfer(500, 0)
                           .state(FlowState::kAttempted)
                           .payload("should vanish")
                           .build();
  EXPECT_EQ(r.state, FlowState::kAttempted);
  EXPECT_EQ(r.bytes_src, 0u);   // SYNs carry no payload bytes
  EXPECT_EQ(r.bytes_dst, 0u);
  EXPECT_EQ(r.pkts_dst, 0u);
  EXPECT_EQ(r.payload_len, 0);
}

TEST(FlowBuilder, ResetHasOneResponderPacket) {
  const FlowRecord r = FlowBuilder{}
                           .from(simnet::Ipv4(128, 2, 0, 1), 50000)
                           .to(simnet::Ipv4(1, 2, 3, 4), 80)
                           .proto(Protocol::kTcp)
                           .at(0, 0.1)
                           .transfer(0, 0)
                           .state(FlowState::kReset)
                           .build();
  EXPECT_EQ(r.state, FlowState::kReset);
  EXPECT_EQ(r.pkts_dst, 1u);  // the RST itself
}

TEST(FlowBuilder, FailedUdpKeepsRequestPayload) {
  // An unanswered UDP probe still carried its request payload on the wire.
  const FlowRecord r = FlowBuilder{}
                           .from(simnet::Ipv4(128, 2, 0, 1), 50000)
                           .to(simnet::Ipv4(1, 2, 3, 4), 53)
                           .proto(Protocol::kUdp)
                           .at(0, 2)
                           .transfer(60, 0)
                           .state(FlowState::kAttempted)
                           .payload("\x12\x34")
                           .build();
  EXPECT_EQ(r.bytes_src, 60u);
  EXPECT_EQ(r.payload_len, 2);
}

TEST(FlowBuilder, NegativeDurationClampsToZero) {
  const FlowRecord r = FlowBuilder{}
                           .from(simnet::Ipv4(1, 1, 1, 1), 1)
                           .to(simnet::Ipv4(2, 2, 2, 2), 2)
                           .at(10.0, -5.0)
                           .transfer(1, 1)
                           .build();
  EXPECT_DOUBLE_EQ(r.end_time, 10.0);
}

}  // namespace
}  // namespace tradeplot::netflow
