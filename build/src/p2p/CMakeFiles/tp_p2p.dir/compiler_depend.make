# Empty compiler generated dependencies file for tp_p2p.
# This may be replaced when dependencies are built.
