
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_thresholds.cpp" "bench/CMakeFiles/ablation_thresholds.dir/ablation_thresholds.cpp.o" "gcc" "bench/CMakeFiles/ablation_thresholds.dir/ablation_thresholds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/tp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hosts/CMakeFiles/tp_hosts.dir/DependInfo.cmake"
  "/root/repo/build/src/botnet/CMakeFiles/tp_botnet.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/tp_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/tp_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/tp_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/tp_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
