// Fault-injection tests for EINTR/short-read hardening (util/stream_retry.h)
// and its integration into the netflow readers/writers: a signal landing
// mid-buffer must never truncate a trace or misreport EOF.
//
// The injecting streambufs follow the glibc filebuf contract exactly: a
// failed operation returns eof from underflow / 0 from xsputn with errno
// carrying the cause — which is why eofbit alone cannot distinguish EOF from
// EINTR and the helpers discriminate on errno.
#include <gtest/gtest.h>
#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <string>

#include "netflow/io.h"
#include "netflow/trace_reader.h"
#include "netflow/trace_set.h"
#include "util/fd_stream.h"
#include "util/interrupt.h"
#include "util/stream_retry.h"

namespace tradeplot {
namespace {

/// Serves `data` one byte per underflow; before serving byte i with
/// i in `interrupt_at`, fails exactly once with errno = EINTR (or a chosen
/// hard errno). True end of data returns eof with errno untouched.
class InterruptingSource : public std::streambuf {
 public:
  InterruptingSource(std::string data, std::set<std::size_t> interrupt_at,
                     int injected_errno = EINTR)
      : data_(std::move(data)), interrupt_at_(std::move(interrupt_at)),
        errno_(injected_errno) {}

  [[nodiscard]] int interruptions() const { return interruptions_; }

 protected:
  int_type underflow() override {
    if (pos_ >= data_.size()) return traits_type::eof();
    if (interrupt_at_.count(pos_) != 0) {
      interrupt_at_.erase(pos_);
      ++interruptions_;
      errno = errno_;
      return traits_type::eof();
    }
    ch_ = data_[pos_++];
    setg(&ch_, &ch_, &ch_ + 1);
    return traits_type::to_int_type(ch_);
  }

 private:
  std::string data_;
  std::set<std::size_t> interrupt_at_;
  int errno_;
  int interruptions_ = 0;
  std::size_t pos_ = 0;
  char ch_ = 0;
};

/// All-or-nothing sink: an interrupted xsputn consumes nothing (errno =
/// EINTR, returns 0) — the contract write_retry's non-seekable reissue path
/// assumes. Fails call 1 and every fail_every-th call after it, so even a
/// single buffered flush hits at least one interruption.
class InterruptingSink : public std::streambuf {
 public:
  explicit InterruptingSink(int fail_every) : fail_every_(fail_every) {}

  [[nodiscard]] const std::string& data() const { return data_; }
  [[nodiscard]] int interruptions() const { return interruptions_; }

 protected:
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    if (fail_every_ > 0 && ++calls_ % fail_every_ == 1) {
      ++interruptions_;
      errno = EINTR;
      return 0;
    }
    data_.append(s, static_cast<std::size_t>(n));
    return n;
  }

  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) return traits_type::not_eof(ch);
    const char c = traits_type::to_char_type(ch);
    return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
  }

 private:
  std::string data_;
  int fail_every_;
  int calls_ = 0;
  int interruptions_ = 0;
};

TEST(StreamRetry, ReadAccumulatesAcrossInterruptions) {
  InterruptingSource buf("abcdefgh", {0, 3, 5});
  std::istream in(&buf);
  char out[8] = {};
  EXPECT_EQ(util::read_retry(in, out, 8), 8u);
  EXPECT_EQ(std::string(out, 8), "abcdefgh");
  EXPECT_EQ(buf.interruptions(), 3);
  EXPECT_FALSE(in.eof());  // the request was satisfied, not the stream drained
}

TEST(StreamRetry, TrueEofReturnsShortWithEofbit) {
  InterruptingSource buf("abc", {1});
  std::istream in(&buf);
  char out[16] = {};
  EXPECT_EQ(util::read_retry(in, out, 16), 3u);
  EXPECT_EQ(std::string(out, 3), "abc");
  EXPECT_TRUE(in.eof());
}

TEST(StreamRetry, HardErrorIsNotRetried) {
  InterruptingSource buf("abcdef", {2}, EIO);
  std::istream in(&buf);
  char out[6] = {};
  EXPECT_EQ(util::read_retry(in, out, 6), 2u);
  EXPECT_EQ(buf.interruptions(), 1);  // one failure, no retry
  EXPECT_TRUE(in.fail());             // left failed for the caller to see
}

TEST(StreamRetry, ShutdownRequestTurnsInterruptIntoCleanShortRead) {
  util::request_shutdown();
  InterruptingSource buf("abcdef", {3});
  std::istream in(&buf);
  char out[6] = {};
  EXPECT_EQ(util::read_retry(in, out, 6), 3u);
  EXPECT_FALSE(in.fail());  // cleared: graceful-stop paths see end-of-input
  util::clear_shutdown();
}

TEST(StreamRetry, WriteReissuesInterruptedChunks) {
  InterruptingSink buf(/*fail_every=*/3);
  std::ostream out(&buf);
  const std::string chunk(1000, 'x');
  for (int i = 0; i < 9; ++i) {
    out.clear();
    ASSERT_TRUE(util::write_retry(out, chunk.data(), chunk.size()));
  }
  EXPECT_EQ(buf.data().size(), 9u * 1000u);
  EXPECT_GT(buf.interruptions(), 0);
}

netflow::TraceSet sample_trace(std::size_t flows) {
  netflow::TraceSet trace;
  trace.set_window(0.0, 3600.0);
  for (std::size_t i = 0; i < flows; ++i) {
    netflow::FlowRecord r;
    r.src = simnet::Ipv4(0x80020000u + static_cast<std::uint32_t>(i % 200));
    r.dst = simnet::Ipv4(0x0a000001u + static_cast<std::uint32_t>(i % 500));
    r.sport = static_cast<std::uint16_t>(1024 + i % 4000);
    r.dport = static_cast<std::uint16_t>(i % 2 ? 80 : 6881);
    r.proto = netflow::Protocol::kTcp;
    r.start_time = 0.1 * static_cast<double>(i);
    r.end_time = r.start_time + 0.5;
    r.pkts_src = 3 + i % 7;
    r.pkts_dst = 2 + i % 5;
    r.bytes_src = 100 + i % 1000;
    r.bytes_dst = 80 + i % 800;
    r.state = netflow::FlowState::kEstablished;
    trace.add_flow(r);
  }
  return trace;
}

TEST(StreamRetry, TraceReaderSurvivesInterruptsMidBuffer) {
  // The satellite scenario: signals interrupting refills mid-record must not
  // lose or duplicate flows, in either binary format.
  const netflow::TraceSet trace = sample_trace(500);
  for (const bool columnar : {false, true}) {
    std::ostringstream encoded;
    if (columnar) netflow::write_binary_columnar(encoded, trace);
    else netflow::write_binary(encoded, trace);
    const std::string image = encoded.str();

    // Interrupt every 97th byte: dozens of interruptions, many of them
    // inside a record/column block rather than at a boundary.
    std::set<std::size_t> points;
    for (std::size_t i = 0; i < image.size(); i += 97) points.insert(i);
    InterruptingSource buf(image, points);
    std::istream in(&buf);
    netflow::TraceReader reader(in);
    const netflow::TraceSet back = reader.read_all();

    ASSERT_EQ(back.flows().size(), trace.flows().size());
    EXPECT_GT(buf.interruptions(), 10);
    EXPECT_EQ(reader.ingest_stats().records_quarantined, 0u);
    for (std::size_t i = 0; i < trace.flows().size(); ++i) {
      EXPECT_EQ(back.flows()[i].src, trace.flows()[i].src);
      EXPECT_EQ(back.flows()[i].start_time, trace.flows()[i].start_time);
      EXPECT_EQ(back.flows()[i].bytes_src, trace.flows()[i].bytes_src);
    }
  }
}

TEST(StreamRetry, BinaryWriterSurvivesInterruptedSink) {
  const netflow::TraceSet trace = sample_trace(300);
  std::ostringstream clean;
  netflow::write_binary_columnar(clean, trace);

  InterruptingSink buf(/*fail_every=*/2);  // every other flush interrupted
  std::ostream out(&buf);
  netflow::write_binary_columnar(out, trace);
  EXPECT_EQ(buf.data(), clean.str());
  EXPECT_GT(buf.interruptions(), 0);
}

TEST(StreamRetry, FdStreamReadsFilesAndReportsOpenFailure) {
  char tmpl[] = "/tmp/tp_fdstream_XXXXXX";
  const int fd = ::mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  const std::string payload = "line one\nline two\n";
  ASSERT_EQ(::write(fd, payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  ::close(fd);

  util::FdInputStream in(tmpl);
  ASSERT_TRUE(in.good());
  char buf[64];
  EXPECT_EQ(util::read_retry(in, buf, sizeof(buf)), payload.size());
  EXPECT_EQ(std::string(buf, payload.size()), payload);
  ::unlink(tmpl);

  util::FdInputStream missing("/tmp/tp_fdstream_no_such_file");
  EXPECT_TRUE(missing.fail());
}

TEST(StreamRetry, FdStreambufUnblocksOnCooperativeShutdown) {
  // The production deadlock this guards against: a monitor blocked in
  // read(2) on a FIFO must wake when a shutdown signal arrives. glibc's
  // filebuf retries EINTR internally (so std::ifstream can never be
  // interrupted); FdInputStreambuf surfaces it and consults the shutdown
  // flag — and, crucially, refuses to START another blocking read once the
  // flag is up, because the signal's one EINTR has already been spent.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  // A no-op SIGUSR1 handler without SA_RESTART stands in for SIGINT (whose
  // real handler is process-global); it makes the blocked read return EINTR.
  struct sigaction sa {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);
  util::clear_shutdown();

  util::FdInputStreambuf buf(fds[0]);  // owns the read end
  std::istream in(&buf);
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);

  std::atomic<bool> done{false};
  std::size_t got = 0;
  char out[64] = {};
  std::thread reader([&] {
    got = util::read_retry(in, out, sizeof(out));  // blocks: pipe stays open
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  util::request_shutdown();
  // Keep signalling until the reader observes the stop: a single signal
  // could land in the gap before the reader blocks.
  while (!done.load()) {
    ::pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  reader.join();
  util::clear_shutdown();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);

  EXPECT_EQ(got, 3u);  // the bytes written before the stop, nothing lost
  EXPECT_EQ(std::string(out, got), "abc");

  // With the flag already up, further reads end immediately instead of
  // blocking on the still-open pipe.
  util::request_shutdown();
  in.clear();
  char again[8];
  EXPECT_EQ(util::read_retry(in, again, sizeof(again)), 0u);
  util::clear_shutdown();
  ::close(fds[1]);
}

}  // namespace
}  // namespace tradeplot
