# Empty dependencies file for netflow_flow_record_test.
# This may be replaced when dependencies are built.
