#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace tradeplot::eval {
namespace {

simnet::Ipv4 host(std::uint8_t last_octet) { return simnet::Ipv4(128, 2, 0, last_octet); }

DayData fake_day() {
  DayData day;
  day.storm_hosts = {host(1), host(2)};
  day.nugache_hosts = {host(3), host(4), host(5)};
  day.combined.set_truth(host(10), netflow::HostKind::kBitTorrent);
  day.combined.set_truth(host(11), netflow::HostKind::kGnutella);
  day.combined.set_truth(host(20), netflow::HostKind::kWebClient);
  return day;
}

TEST(StageRatesTest, CountsPerBotnetAndNegatives) {
  const DayData day = fake_day();
  const detect::HostSet population = {host(1), host(2), host(3), host(4), host(5),
                                      host(10), host(11), host(20)};
  const detect::HostSet output = {host(1), host(3), host(10)};
  const StageRates rates = stage_rates(day, output, population);
  EXPECT_EQ(rates.storm_in_population, 2u);
  EXPECT_EQ(rates.nugache_in_population, 3u);
  EXPECT_EQ(rates.negatives_in_population, 3u);
  EXPECT_EQ(rates.traders_in_population, 2u);
  EXPECT_DOUBLE_EQ(rates.storm_tp, 0.5);
  EXPECT_NEAR(rates.nugache_tp, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(rates.fp, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(rates.traders_remaining, 0.5);
  EXPECT_EQ(rates.flagged, 3u);
}

TEST(StageRatesTest, RatesAreRelativeToPopulation) {
  const DayData day = fake_day();
  // A population that excludes one storm host: only the included one counts.
  const detect::HostSet population = {host(1), host(20)};
  const detect::HostSet output = {host(1)};
  const StageRates rates = stage_rates(day, output, population);
  EXPECT_EQ(rates.storm_in_population, 1u);
  EXPECT_DOUBLE_EQ(rates.storm_tp, 1.0);
  EXPECT_DOUBLE_EQ(rates.fp, 0.0);
}

TEST(StageRatesTest, EmptyPopulationYieldsZeros) {
  const DayData day = fake_day();
  const StageRates rates = stage_rates(day, {}, {});
  EXPECT_DOUBLE_EQ(rates.storm_tp, 0.0);
  EXPECT_DOUBLE_EQ(rates.fp, 0.0);
}

TEST(AverageTest, MeansOverDays) {
  StageRates a;
  a.storm_tp = 1.0;
  a.fp = 0.02;
  a.flagged = 10;
  StageRates b;
  b.storm_tp = 0.5;
  b.fp = 0.04;
  b.flagged = 20;
  const StageRates avg = average({a, b});
  EXPECT_DOUBLE_EQ(avg.storm_tp, 0.75);
  EXPECT_DOUBLE_EQ(avg.fp, 0.03);
  EXPECT_EQ(avg.flagged, 30u);  // accumulated, not averaged
  EXPECT_DOUBLE_EQ(average({}).storm_tp, 0.0);
}

TEST(DayDataTest, MembershipPredicates) {
  const DayData day = fake_day();
  EXPECT_TRUE(day.is_storm(host(1)));
  EXPECT_FALSE(day.is_storm(host(3)));
  EXPECT_TRUE(day.is_nugache(host(3)));
  EXPECT_TRUE(day.is_plotter(host(2)));
  EXPECT_FALSE(day.is_plotter(host(10)));
  EXPECT_TRUE(day.is_trader(host(10)));
  EXPECT_FALSE(day.is_trader(host(20)));
}

}  // namespace
}  // namespace tradeplot::eval
