// Length-prefixed binary framing for the monitor daemon's ingest socket.
//
// Wire format of one frame (all integers little-endian):
//
//   u32 magic   0x464D5054 ("TPMF" on the wire)
//   u8  type    FrameType
//   u32 len     payload byte count (<= kMaxFramePayload)
//   u32 crc     util::crc32 of the payload bytes
//   ..  payload
//
// A kFlows payload is a complete binary/CSV trace image — exactly the bytes
// write_binary / write_binary_columnar / write_csv produce — so the daemon
// decodes it with the same netflow::TraceReader (and the same ErrorPolicy
// quarantine/resync semantics) used for file ingestion. MemoryStream below
// adapts a received payload into an std::istream without copying.
//
// FrameParser is an incremental decoder with the resync discipline of
// ErrorPolicy::kSkip: garbage between frames (bad magic, oversized length,
// CRC mismatch) is skipped byte-by-byte until the next plausible frame
// header, and every decision is accounted in FrameParserStats so a flaky
// client shows up in metrics instead of silently losing data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <streambuf>
#include <string>
#include <string_view>
#include <vector>

namespace tradeplot::svc {

enum class FrameType : std::uint8_t {
  kHello = 1,     // client -> daemon: payload = tenant name (UTF-8 bytes)
  kHelloAck = 2,  // daemon -> client: payload = u64 accepted-flow cursor (resume point)
  kFlows = 3,     // client -> daemon: payload = self-contained trace image
  kFlush = 4,     // client -> daemon: request ingest barrier + accounting
  kFlushAck = 5,  // daemon -> client: payload = u64 accepted, ingested, shed, quarantined
  kBye = 6,       // client -> daemon: orderly end of stream
  kError = 7,     // daemon -> client: payload = human-readable reason
};

constexpr std::uint32_t kFrameMagic = 0x464D5054;      // "TPMF" little-endian
constexpr std::size_t kFrameHeaderSize = 13;           // magic + type + len + crc
constexpr std::uint32_t kMaxFramePayload = 32u << 20;  // 32 MiB sanity bound

[[nodiscard]] bool frame_type_valid(std::uint8_t type);
[[nodiscard]] std::string_view to_string(FrameType type);

struct Frame {
  FrameType type{};
  std::vector<char> payload;

  [[nodiscard]] std::string_view payload_view() const {
    return {payload.data(), payload.size()};
  }
};

/// Appends one encoded frame (header + CRC-protected payload) to `out`.
void append_frame(std::vector<char>& out, FrameType type, const char* payload,
                  std::size_t n);
[[nodiscard]] std::vector<char> encode_frame(FrameType type, std::string_view payload);

/// Little-endian u64 helpers for the fixed-layout payloads (HelloAck,
/// FlushAck). read_u64 requires 8 readable bytes at `p`.
void append_u64(std::vector<char>& out, std::uint64_t v);
[[nodiscard]] std::uint64_t read_u64(const char* p);

struct FrameParserStats {
  std::uint64_t frames_ok = 0;
  std::uint64_t frames_bad = 0;     // bad header or CRC mismatch
  std::uint64_t resync_events = 0;  // contiguous skip runs (one per garbage burst)
  std::uint64_t bytes_skipped = 0;  // total bytes discarded while resyncing
};

/// Incremental frame decoder. Feed raw socket bytes with append(); drain
/// complete frames with next(). Never throws on malformed input — corrupt
/// framing is skipped with accounting (the daemon's analog of
/// ErrorPolicy::kSkip; the policy decision of when "too much garbage" ends
/// the connection belongs to the caller, via stats()).
class FrameParser {
 public:
  void append(const char* data, std::size_t n) { buf_.insert(buf_.end(), data, data + n); }

  /// Decodes the next complete frame into `out`. Returns false when the
  /// buffered bytes do not yet contain one (read more and retry).
  [[nodiscard]] bool next(Frame& out);

  [[nodiscard]] const FrameParserStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  // Skips `n` bytes as garbage, folding adjacent skips into one resync event.
  void skip(std::size_t n);
  void compact();

  std::vector<char> buf_;
  std::size_t pos_ = 0;
  bool resyncing_ = false;
  FrameParserStats stats_;
};

/// Read-only std::istream over a borrowed byte span. Lets the daemon hand a
/// kFlows payload straight to netflow::TraceReader — zero copies, same
/// parsers and quarantine semantics as file ingestion. The span must outlive
/// the stream.
class MemoryStream : private std::streambuf, public std::istream {
 public:
  MemoryStream(const char* data, std::size_t n) : std::istream(this) {
    char* p = const_cast<char*>(data);  // read-only use; setg demands char*
    setg(p, p, p + n);
  }
  MemoryStream(const MemoryStream&) = delete;
  MemoryStream& operator=(const MemoryStream&) = delete;
};

}  // namespace tradeplot::svc
