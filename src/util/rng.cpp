#include "util/rng.h"

#include <cmath>
#include <stdexcept>

namespace tradeplot::util {

std::uint64_t SplitMix64::next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void Pcg32::reseed(std::uint64_t seed, std::uint64_t seq) {
  state_ = 0;
  inc_ = (seq << 1) | 1;
  (void)(*this)();
  state_ += seed;
  (void)(*this)();
}

Pcg32::result_type Pcg32::operator()() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
  const auto rot = static_cast<std::uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

Pcg32 Pcg32::split(std::uint64_t tag) const {
  // Mix the parent's identity with the tag through SplitMix64 so children
  // with adjacent tags land on uncorrelated streams.
  SplitMix64 mix(state_ ^ (inc_ * 0x9e3779b97f4a7c15ULL) ^ tag);
  const std::uint64_t seed = mix.next();
  const std::uint64_t seq = mix.next();
  return Pcg32(seed, seq);
}

double Pcg32::uniform() {
  // 32 bits of mantissa is plenty for simulation purposes; divide by 2^32.
  return static_cast<double>((*this)()) * (1.0 / 4294967296.0);
}

double Pcg32::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Pcg32::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // Full 64-bit range requested: combine two draws.
    const std::uint64_t v = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
    return static_cast<std::int64_t>(v);
  }
  // Lemire-style rejection to remove modulo bias (64-bit accumulator).
  const std::uint64_t threshold = (0ULL - range) % range;
  for (;;) {
    const std::uint64_t v = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
    if (v >= threshold) return lo + static_cast<std::int64_t>(v % range);
  }
}

bool Pcg32::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Pcg32::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential: mean must be > 0");
  double u = uniform();
  if (u <= 0.0) u = 1e-12;  // avoid log(0)
  return -mean * std::log(u);
}

double Pcg32::normal(double mean, double stddev) {
  // Box-Muller; we deliberately discard the second variate to keep the
  // stream position a pure function of the number of calls.
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 1e-12;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Pcg32::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Pcg32::pareto(double x_m, double alpha) {
  if (x_m <= 0.0 || alpha <= 0.0) throw std::invalid_argument("pareto: bad parameters");
  double u = uniform();
  if (u <= 0.0) u = 1e-12;
  return x_m / std::pow(u, 1.0 / alpha);
}

double Pcg32::bounded_pareto(double lo, double hi, double alpha) {
  if (lo <= 0.0 || hi <= lo || alpha <= 0.0)
    throw std::invalid_argument("bounded_pareto: bad parameters");
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the truncated Pareto.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::uint64_t Pcg32::zipf(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument("zipf: n must be >= 1");
  if (n == 1) return 1;
  if (s <= 0.0) return static_cast<std::uint64_t>(uniform_int(1, static_cast<std::int64_t>(n)));
  // Rejection-inversion sampling (Hörmann & Derflinger, 1996).
  const double nd = static_cast<double>(n);
  const auto h_integral = [s](double x) {
    const double log_x = std::log(x);
    if (std::abs(s - 1.0) < 1e-12) return log_x;
    return (std::exp((1.0 - s) * log_x) - 1.0) / (1.0 - s);
  };
  const auto h = [s](double x) { return std::exp(-s * std::log(x)); };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(nd + 0.5);
  for (;;) {
    const double u = h_n + uniform() * (h_x1 - h_n);
    // Inverse of h_integral.
    double x;
    if (std::abs(s - 1.0) < 1e-12) {
      x = std::exp(u);
    } else {
      x = std::exp(std::log(1.0 + u * (1.0 - s)) / (1.0 - s));
    }
    const double k = std::floor(x + 0.5);
    if (k < 1.0) continue;
    if (k > nd) continue;
    if (u >= h_integral(k + 0.5) - h(k)) return static_cast<std::uint64_t>(k);
  }
}

std::size_t Pcg32::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("weighted_index: no positive weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical fallback
}

}  // namespace tradeplot::util
