// Ablation: Earth Mover's Distance versus plain binned-L1 distance in
// θ_hm's clustering, and sensitivity to the dendrogram cut fraction.
//
// EMD knows *how far* probability mass moved (two combs offset by one bin
// are close); L1 over a fixed binning only knows *whether* mass coincides
// (the same two combs look maximally distant). The paper picked EMD for
// exactly this robustness.
#include "bench/bench_util.h"

using namespace tradeplot;

namespace {

benchx::MergedRates run(const eval::DaySet& days, const detect::FindPlottersConfig& pipeline) {
  return benchx::merged_rates(days, [&](const eval::DayData& day) {
    const auto result = detect::find_plotters(day.features, pipeline);
    return std::pair{result.plotters, result.input};
  });
}

}  // namespace

int main() {
  benchx::header("Ablation - theta_hm distance metric and dendrogram cut fraction");

  eval::EvalConfig cfg = benchx::paper_eval_config();
  cfg.days = 4;
  std::printf("  generating %d days...\n\n", cfg.days);
  const eval::DaySet days = eval::make_days(cfg);

  std::printf("  distance metric (cut = default):\n");
  std::printf("  %-26s %10s %12s %10s\n", "metric", "Storm TP", "Nugache TP", "FP");
  for (const auto& [distance, name] :
       {std::pair{detect::HmDistance::kEmd, "EMD (paper)"},
        std::pair{detect::HmDistance::kBinL1, "binned L1 (60 s grid)"}}) {
    detect::FindPlottersConfig pipeline;
    pipeline.human_machine.distance = distance;
    const benchx::MergedRates avg = run(days, pipeline);
    std::printf("  %-26s %9.1f%% %11.1f%% %9.1f%%\n", name, avg.storm_tp * 100,
                avg.nugache_tp * 100, avg.fp * 100);
  }

  std::printf("\n  dendrogram cut fraction (EMD):\n");
  std::printf("  %-26s %10s %12s %10s\n", "cut", "Storm TP", "Nugache TP", "FP");
  for (const double cut : {0.01, 0.05, 0.10, 0.15, 0.25, 0.40}) {
    detect::FindPlottersConfig pipeline;
    pipeline.human_machine.cut_fraction = cut;
    const benchx::MergedRates avg = run(days, pipeline);
    std::printf("  top %2.0f%% of links%12s %9.1f%% %11.1f%% %9.1f%%\n", cut * 100, "", avg.storm_tp * 100,
                avg.nugache_tp * 100, avg.fp * 100);
  }

  benchx::paper_reference(
      "DESIGN.md ablation (paper §IV-C rationale): EMD 'is especially\n"
      "useful in cases where the distributions are simply shifts of each\n"
      "other'; binned L1 is blind to how far mass moved. On this simulator\n"
      "both detect the (extremely tight) Storm cluster; the differences\n"
      "show in the Nugache and FP columns. The cut sweep locates the knee\n"
      "discussed in DESIGN.md §7: shallow cuts leave the bots' cluster\n"
      "attached to the human mass (low TP); past the knee the TP plateaus,\n"
      "and very deep cuts shatter clusters below min_cluster_size.");
  return 0;
}
