#include "detect/features.h"

#include <algorithm>

#include "netflow/trace_reader.h"
#include "util/error.h"

namespace tradeplot::detect {

double HostFeatures::volume(VolumeMetric metric) const {
  switch (metric) {
    case VolumeMetric::kSentPerFlow: {
      const std::size_t flows = flows_initiated + flows_received;
      if (flows == 0) return 0.0;
      return static_cast<double>(bytes_sent_initiated + bytes_sent_received) /
             static_cast<double>(flows);
    }
    case VolumeMetric::kSentPerInitiatedFlow: {
      if (flows_initiated == 0) return 0.0;
      return static_cast<double>(bytes_sent_initiated) / static_cast<double>(flows_initiated);
    }
    case VolumeMetric::kCumulativeBytes:
      return static_cast<double>(bytes_sent_initiated + bytes_sent_received);
  }
  return 0.0;
}

namespace {

struct Accumulator {
  HostFeatures features;
  // Per-destination initiated-flow start times (unsorted; sorted at the end).
  PerDestinationTimes per_dst_times;
  bool seen = false;
};

/// Shared accumulation core: the AoS and columnar extract_features overloads
/// both feed flows through add(), so they cannot diverge.
class Extractor {
 public:
  explicit Extractor(const FeatureExtractorConfig& config) : config_(config) {
    if (!config.is_internal) throw util::ConfigError("extract_features: is_internal required");
  }

  void add(simnet::Ipv4 src, simnet::Ipv4 dst, double start, std::uint64_t bytes_src,
           std::uint64_t bytes_dst, bool failed) {
    if (config_.is_internal(src)) {
      Accumulator& a = touch(src, start);
      a.features.flows_initiated += 1;
      if (failed) a.features.flows_failed += 1;
      a.features.bytes_sent_initiated += bytes_src;
      a.per_dst_times[dst].push_back(start);
    }
    if (config_.is_internal(dst) && !failed) {
      Accumulator& a = touch(dst, start);
      a.features.flows_received += 1;
      a.features.bytes_sent_received += bytes_dst;
    }
  }

  [[nodiscard]] FeatureMap finish() {
    FeatureMap out;
    out.reserve(acc_.size());
    for (auto& [host, a] : acc_) {
      finalize_destinations(a.features, a.per_dst_times, config_.new_ip_grace);
      out.emplace(host, std::move(a.features));
    }
    return out;
  }

 private:
  Accumulator& touch(simnet::Ipv4 host, double t) {
    Accumulator& a = acc_[host];
    if (!a.seen) {
      a.seen = true;
      a.features.host = host;
      a.features.first_activity = t;
    } else {
      a.features.first_activity = std::min(a.features.first_activity, t);
    }
    return a;
  }

  const FeatureExtractorConfig& config_;
  std::unordered_map<simnet::Ipv4, Accumulator> acc_;
};

void add_batch(Extractor& ex, const netflow::FlowBatch& batch) {
  const simnet::Ipv4* src = batch.src();
  const simnet::Ipv4* dst = batch.dst();
  const double* start = batch.start_time();
  const std::uint64_t* bytes_src = batch.bytes_src();
  const std::uint64_t* bytes_dst = batch.bytes_dst();
  const netflow::FlowState* state = batch.state();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ex.add(src[i], dst[i], start[i], bytes_src[i], bytes_dst[i],
           state[i] != netflow::FlowState::kEstablished);
  }
}

}  // namespace

void finalize_destinations(HostFeatures& f, PerDestinationTimes& times, double grace) {
  f.distinct_dsts = times.size();
  f.dsts_after_first_hour = 0;
  const double horizon = f.first_activity + grace;
  for (auto& [dst, starts] : times) {
    std::sort(starts.begin(), starts.end());
    if (starts.front() > horizon) f.dsts_after_first_hour += 1;
    for (std::size_t i = 1; i < starts.size(); ++i) {
      f.interstitials.push_back(starts[i] - starts[i - 1]);
    }
  }
}

FeatureMap extract_features(const netflow::TraceSet& trace,
                            const FeatureExtractorConfig& config) {
  Extractor ex(config);
  for (const netflow::FlowRecord& rec : trace.flows())
    ex.add(rec.src, rec.dst, rec.start_time, rec.bytes_src, rec.bytes_dst, rec.failed());
  return ex.finish();
}

FeatureMap extract_features(std::span<const netflow::FlowBatch> batches,
                            const FeatureExtractorConfig& config) {
  Extractor ex(config);
  for (const netflow::FlowBatch& batch : batches) add_batch(ex, batch);
  return ex.finish();
}

FeatureMap extract_features(netflow::TraceReader& reader,
                            const FeatureExtractorConfig& config) {
  Extractor ex(config);
  netflow::FlowBatch batch;
  while (reader.next_batch(batch) > 0) add_batch(ex, batch);
  return ex.finish();
}

bool default_internal_predicate(simnet::Ipv4 addr) {
  static const simnet::Subnet kNets[] = {
      simnet::Subnet(simnet::Ipv4(128, 2, 0, 0), 16),
      simnet::Subnet(simnet::Ipv4(128, 237, 0, 0), 16),
      simnet::Subnet(simnet::Ipv4(10, 99, 0, 0), 16),
  };
  for (const simnet::Subnet& net : kNets)
    if (net.contains(addr)) return true;
  return false;
}

}  // namespace tradeplot::detect
