#include "p2p/bittorrent.h"

#include <algorithm>
#include <string>

namespace tradeplot::p2p {

namespace {

const std::string kHandshake = std::string("\x13") + "BitTorrent protocol" +
                               std::string(8, '\0') + "infohash-20-bytes-xx";
constexpr std::string_view kAnnounce =
    "GET /announce?info_hash=x%12y&peer_id=-TR2940-&port=6881 HTTP/1.1\r\n";
constexpr std::string_view kScrape = "GET /scrape?info_hash=x%12y HTTP/1.1\r\n";
constexpr std::string_view kDhtQuery = "d1:ad2:id20:abcdefghij0123456789e1:q9:get_peers";
constexpr std::string_view kDhtResponse = "d1:rd2:id20:abcdefghij0123456789e1:t2:aa";
constexpr std::string_view kTorrentFetch = "GET /announce.php?passkey=aa HTTP/1.1\r\n";

}  // namespace

BitTorrentHost::BitTorrentHost(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
                               Overlay* dht, BitTorrentConfig config)
    : env_(std::move(env)),
      rng_(rng),
      emit_(&env_, self, &rng_),
      dht_(dht),
      config_(config),
      churn_(config.churn),
      table_(NodeId::random(rng_), config.lookup.k) {}

void BitTorrentHost::start() {
  const double start = rng_.uniform(0.0, config_.session_start_frac_max * env_.window_end);
  env_.sim->schedule_at(start, [this] { begin_session(); });
}

void BitTorrentHost::begin_session() {
  const double session_len = rng_.lognormal(config_.session_mu, config_.session_sigma);
  const double session_end = std::min(emit_.now() + session_len, env_.window_end);

  if (config_.web_only) {
    // Browses torrent sites and trackers over HTTP only: successful small
    // web flows with BitTorrent-classifiable payloads, near-zero failures.
    const int fetches = static_cast<int>(rng_.uniform_int(3, 15));
    for (int i = 0; i < fetches; ++i) {
      env_.sim->schedule_after(rng_.uniform(0.0, std::max(1.0, session_end - emit_.now())),
                               [this] {
                                 emit_.tcp(env_.external_addr(), kTrackerPort,
                                           static_cast<std::uint64_t>(rng_.uniform(300, 900)),
                                           static_cast<std::uint64_t>(rng_.uniform(2e4, 3e5)),
                                           rng_.uniform(0.5, 4.0),
                                           rng_.chance(0.5) ? kScrape : kTorrentFetch);
                               });
    }
    return;
  }

  if (dht_ != nullptr) {
    for (int i = 0; i < 10; ++i) {
      if (const auto c = dht_->random_node(rng_)) {
        table_.insert(*c);
        emit_.udp(c->addr, kDhtPort, 90, dht_->is_online(c->id) ? 300 : 0,
                  dht_->is_online(c->id), kDhtQuery);
      }
    }
  }

  torrent_loop(session_end);
  serve_inbound_loop(session_end);
  // First torrent starts immediately: the user launched the client with
  // something to download.
  start_torrent(session_end);
}

void BitTorrentHost::torrent_loop(double session_end) {
  const double think = rng_.lognormal(config_.torrent_think_mu, config_.torrent_think_sigma);
  if (emit_.now() + think >= session_end) return;
  env_.sim->schedule_after(think, [this, session_end] {
    start_torrent(session_end);
    torrent_loop(session_end);
  });
}

void BitTorrentHost::start_torrent(double session_end) {
  if (emit_.now() >= session_end) return;
  const simnet::Ipv4 tracker = env_.external_addr();
  announce(tracker, session_end, /*first=*/true);
  if (dht_ != nullptr && rng_.chance(0.7)) dht_get_peers();
}

void BitTorrentHost::announce(simnet::Ipv4 tracker, double session_end, bool first) {
  if (emit_.now() >= session_end) return;
  emit_.tcp(tracker, kTrackerPort, static_cast<std::uint64_t>(rng_.uniform(300, 700)),
            static_cast<std::uint64_t>(rng_.uniform(500, 4000)), rng_.uniform(0.2, 2.0),
            kAnnounce);
  if (first && rng_.chance(0.2)) {
    emit_.tcp(tracker, kTrackerPort, 350, 600, rng_.uniform(0.2, 1.0), kScrape);
  }
  dial_swarm(session_end);
  // Re-announce on the tracker timer.
  const double delay =
      config_.announce_period + rng_.uniform(-config_.announce_jitter, config_.announce_jitter);
  if (emit_.now() + delay < session_end) {
    env_.sim->schedule_after(
        delay, [this, tracker, session_end] { announce(tracker, session_end, false); });
  }
}

void BitTorrentHost::dht_get_peers() {
  const NodeId target = NodeId::random(rng_);
  const LookupResult res = iterative_find_node(*dht_, table_, target, config_.lookup, rng_);
  for (const Probe& probe : res.probes) {
    emit_.udp(probe.peer.addr, kDhtPort, static_cast<std::uint64_t>(kDhtQuery.size()) + 40,
              probe.responded ? static_cast<std::uint64_t>(kDhtResponse.size()) + 120 : 0,
              probe.responded, kDhtQuery);
  }
}

void BitTorrentHost::dial_swarm(double session_end) {
  for (int p = 0; p < config_.peers_per_announce; ++p) {
    const double jitter = rng_.uniform(0.1, config_.peer_contact_spread);
    env_.sim->schedule_after(jitter, [this, session_end] {
      if (emit_.now() >= session_end) return;
      const simnet::Ipv4 peer = env_.external_addr();
      if (!churn_.fresh_contact_alive(rng_)) {
        emit_.tcp_failed(peer, kPeerPort, rng_.chance(0.25));
        return;
      }
      const double size =
          rng_.bounded_pareto(config_.file_lo_bytes, config_.file_hi_bytes, config_.file_alpha);
      // A swarm connection carries only a share of the file.
      const double share = rng_.uniform(0.02, 0.3);
      const double rate = rng_.uniform(config_.rate_lo, config_.rate_hi);
      const double dur = std::max(2.0, std::min(size * share / rate, session_end - emit_.now()));
      const auto down = static_cast<std::uint64_t>(rate * dur);
      const auto up = static_cast<std::uint64_t>(static_cast<double>(down) *
                                                 config_.titfortat_upload_frac * rng_.uniform(0.2, 1.0));
      emit_.tcp(peer, kPeerPort, up + 400, down, dur, kHandshake);
    });
  }
}

void BitTorrentHost::serve_inbound_loop(double session_end) {
  const double gap = rng_.exponential(3600.0 / config_.inbound_per_hour);
  if (emit_.now() + gap >= session_end) return;
  env_.sim->schedule_after(gap, [this, session_end] {
    const simnet::Ipv4 peer = env_.external_addr();
    const double size = rng_.bounded_pareto(config_.file_lo_bytes, config_.file_hi_bytes / 2,
                                            config_.file_alpha + 0.1);
    const double share = rng_.uniform(0.02, 0.2);
    const double rate = rng_.uniform(config_.rate_lo, config_.rate_hi);
    const double dur = std::max(2.0, std::min(size * share / rate, session_end - emit_.now()));
    emit_.inbound_tcp(peer, kPeerPort, static_cast<std::uint64_t>(rng_.uniform(500, 3000)),
                      static_cast<std::uint64_t>(rate * dur), dur, kHandshake);
    serve_inbound_loop(session_end);
  });
}

}  // namespace tradeplot::p2p
