#include "netflow/trace_reader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "netflow/io.h"
#include "util/error.h"
#include "util/rng.h"

namespace tradeplot::netflow {
namespace {

TraceSet sample_trace(int flows = 50, std::uint64_t seed = 1) {
  util::Pcg32 rng(seed);
  TraceSet trace(0.0, 21600.0);
  trace.set_truth(simnet::Ipv4(128, 2, 0, 1), HostKind::kWebClient);
  trace.set_truth(simnet::Ipv4(128, 2, 0, 2), HostKind::kStorm);
  for (int i = 0; i < flows; ++i) {
    FlowRecord r;
    r.src = simnet::Ipv4(128, 2, 0, static_cast<std::uint8_t>(1 + (i % 2)));
    r.dst = simnet::Ipv4(static_cast<std::uint32_t>(rng.uniform_int(1 << 26, 1 << 28)));
    r.sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    r.dport = static_cast<std::uint16_t>(rng.uniform_int(1, 1023));
    r.proto = rng.chance(0.5) ? Protocol::kTcp : Protocol::kUdp;
    r.start_time = rng.uniform(0, 21000);
    r.end_time = r.start_time + rng.uniform(0, 60);
    r.pkts_src = static_cast<std::uint64_t>(rng.uniform_int(1, 100));
    r.pkts_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 100));
    r.bytes_src = static_cast<std::uint64_t>(rng.uniform_int(0, 100000));
    r.bytes_dst = static_cast<std::uint64_t>(rng.uniform_int(0, 1000000));
    r.state = r.pkts_dst == 0 ? FlowState::kAttempted : FlowState::kEstablished;
    if (rng.chance(0.5))
      r.set_payload(std::string_view("\xe3\x01\x02" "stream\x00" "payload", 17));
    trace.add_flow(std::move(r));
  }
  return trace;
}

std::string csv_bytes(const TraceSet& trace) {
  std::stringstream buffer;
  write_csv(buffer, trace);
  return buffer.str();
}

std::string binary_bytes(const TraceSet& trace) {
  std::stringstream buffer;
  write_binary(buffer, trace);
  return buffer.str();
}

void expect_equal(const TraceSet& a, const TraceSet& b) {
  EXPECT_DOUBLE_EQ(a.window_start(), b.window_start());
  EXPECT_DOUBLE_EQ(a.window_end(), b.window_end());
  ASSERT_EQ(a.flows().size(), b.flows().size());
  for (std::size_t i = 0; i < a.flows().size(); ++i) {
    EXPECT_EQ(a.flows()[i], b.flows()[i]) << "flow " << i;
  }
  EXPECT_EQ(a.truth().size(), b.truth().size());
  for (const auto& [ip, kind] : a.truth()) EXPECT_EQ(b.kind_of(ip), kind);
}

TEST(TraceFormatName, RoundTrips) {
  EXPECT_EQ(to_string(TraceFormat::kCsv), "csv");
  EXPECT_EQ(to_string(TraceFormat::kBinary), "binary");
}

TEST(TraceReader, StreamingCsvMatchesBatchReader) {
  const TraceSet trace = sample_trace();
  std::stringstream in(csv_bytes(trace));
  TraceReader reader(in, TraceFormat::kCsv);
  EXPECT_EQ(reader.format(), TraceFormat::kCsv);
  std::size_t i = 0;
  FlowRecord r;
  while (reader.next(r)) {
    ASSERT_LT(i, trace.flows().size());
    EXPECT_EQ(r, trace.flows()[i]) << "flow " << i;
    ++i;
  }
  EXPECT_EQ(i, trace.flows().size());
  EXPECT_EQ(reader.flows_read(), trace.flows().size());
  EXPECT_DOUBLE_EQ(reader.window_start(), trace.window_start());
  EXPECT_DOUBLE_EQ(reader.window_end(), trace.window_end());
  EXPECT_EQ(reader.truth().size(), trace.truth().size());
}

TEST(TraceReader, StreamingBinaryMatchesBatchReader) {
  const TraceSet trace = sample_trace(120, 9);
  std::stringstream in(binary_bytes(trace));
  TraceReader reader(in, TraceFormat::kBinary);
  EXPECT_EQ(reader.format(), TraceFormat::kBinary);
  EXPECT_EQ(reader.declared_flow_count(), trace.flows().size());
  // Binary preambles carry the window and the full truth map up front.
  EXPECT_DOUBLE_EQ(reader.window_start(), trace.window_start());
  EXPECT_DOUBLE_EQ(reader.window_end(), trace.window_end());
  EXPECT_EQ(reader.truth().size(), trace.truth().size());
  std::size_t i = 0;
  FlowRecord r;
  while (reader.next(r)) {
    ASSERT_LT(i, trace.flows().size());
    EXPECT_EQ(r, trace.flows()[i]) << "flow " << i;
    ++i;
  }
  EXPECT_EQ(i, trace.flows().size());
}

TEST(TraceReader, AutoDetectsBothFormats) {
  const TraceSet trace = sample_trace(10, 3);
  std::stringstream csv(csv_bytes(trace));
  EXPECT_EQ(TraceReader(csv).format(), TraceFormat::kCsv);
  std::stringstream bin(binary_bytes(trace));
  EXPECT_EQ(TraceReader(bin).format(), TraceFormat::kBinary);
}

TEST(TraceReader, NextKeepsReturningFalseAfterEnd) {
  const TraceSet trace = sample_trace(3, 2);
  std::stringstream in(csv_bytes(trace));
  TraceReader reader(in);
  FlowRecord r;
  while (reader.next(r)) {
  }
  EXPECT_FALSE(reader.next(r));
  EXPECT_FALSE(reader.next(r));
  EXPECT_EQ(reader.flows_read(), 3u);
}

TEST(TraceReader, ReadAllMatchesBatchReaders) {
  const TraceSet trace = sample_trace(80, 4);
  std::stringstream csv(csv_bytes(trace));
  expect_equal(trace, TraceReader(csv).read_all());
  std::stringstream bin(binary_bytes(trace));
  expect_equal(trace, TraceReader(bin).read_all());
}

TEST(TraceReader, ReadAllAfterPartialStreamYieldsRemainder) {
  const TraceSet trace = sample_trace(20, 6);
  std::stringstream in(csv_bytes(trace));
  TraceReader reader(in);
  FlowRecord r;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(reader.next(r));
  const TraceSet rest = reader.read_all();
  ASSERT_EQ(rest.flows().size(), trace.flows().size() - 5);
  for (std::size_t i = 0; i < rest.flows().size(); ++i) {
    EXPECT_EQ(rest.flows()[i], trace.flows()[i + 5]) << "flow " << i;
  }
  EXPECT_EQ(reader.flows_read(), trace.flows().size());
}

TEST(TraceReader, TruthCommentsMidStreamAreApplied) {
  std::string text =
      "#window,0,100\n"
      "src,dst,sport,dport,proto,start,end,pkts_src,pkts_dst,bytes_src,bytes_dst,state,payload\n"
      "1.2.3.4,5.6.7.8,1,2,tcp,0,1,1,1,1,1,est,\n"
      "#truth,1.2.3.4,storm\n"
      "9.8.7.6,5.6.7.8,1,2,udp,2,3,1,1,1,1,est,\n";
  std::stringstream in(text);
  TraceReader reader(in);
  FlowRecord r;
  ASSERT_TRUE(reader.next(r));
  EXPECT_TRUE(reader.truth().empty());  // truth line not reached yet
  ASSERT_TRUE(reader.next(r));
  EXPECT_EQ(reader.truth().size(), 1u);  // applied while pulling flow 2
  EXPECT_FALSE(reader.next(r));
}

TEST(TraceReader, MalformedLineMidStreamThrowsOnNext) {
  std::string text =
      "src,dst,sport,dport,proto,start,end,pkts_src,pkts_dst,bytes_src,bytes_dst,state,payload\n"
      "1.2.3.4,5.6.7.8,1,2,tcp,0,1,1,1,1,1,est,\n"
      "not,a,flow\n";
  std::stringstream in(text);
  TraceReader reader(in);
  FlowRecord r;
  ASSERT_TRUE(reader.next(r));  // the good line still streams out
  EXPECT_THROW((void)reader.next(r), util::ParseError);
}

TEST(TraceReader, FileConstructorAutoDetects) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string csv_path = (dir / "tp_reader_test.csv").string();
  const std::string bin_path = (dir / "tp_reader_test.bin").string();
  const TraceSet trace = sample_trace(30, 8);
  write_csv_file(csv_path, trace);
  write_binary_file(bin_path, trace);
  {
    TraceReader reader(csv_path);
    EXPECT_EQ(reader.format(), TraceFormat::kCsv);
    expect_equal(trace, reader.read_all());
  }
  {
    TraceReader reader(bin_path);
    EXPECT_EQ(reader.format(), TraceFormat::kBinary);
    expect_equal(trace, reader.read_all());
  }
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
  EXPECT_THROW(TraceReader("/nonexistent/path/x.csv"), util::IoError);
}

TEST(TraceReader, ForcedFormatMismatchFails) {
  const TraceSet trace = sample_trace(5, 1);
  // Binary bytes forced through the CSV parser: the magic is not a header.
  std::stringstream bin(binary_bytes(trace));
  EXPECT_THROW(TraceReader(bin, TraceFormat::kCsv), util::ParseError);
  // CSV bytes forced through the binary parser: no magic.
  std::stringstream csv(csv_bytes(trace));
  EXPECT_THROW(TraceReader(csv, TraceFormat::kBinary), util::ParseError);
}

TEST(TraceReader, BoundedBufferHandlesManyFlows) {
  // More CSV bytes than kBufferSize, pulled one flow at a time: exercises
  // block refills and the buffer-compaction path.
  const TraceSet trace = sample_trace(5000, 13);
  const std::string text = csv_bytes(trace);
  ASSERT_GT(text.size(), TraceReader::kBufferSize);
  std::stringstream in(text);
  TraceReader reader(in);
  std::size_t i = 0;
  FlowRecord r;
  while (reader.next(r)) {
    ASSERT_EQ(r, trace.flows()[i]);
    ++i;
  }
  EXPECT_EQ(i, trace.flows().size());
}

}  // namespace
}  // namespace tradeplot::netflow
