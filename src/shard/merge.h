// Global merge stage of the sharded detector: the cross-shard computations
// that a per-host partition cannot finish locally.
//
// The paper's thresholds are all *relative* — percentiles over the live
// population (§V, §IV) — so every scalar stage needs a global distribution:
//
//  * data reduction, θ_vol, θ_churn — each shard summarizes its hosts'
//    feature values in a mergeable QuantileSketch (stats/quantile_sketch.h);
//    the merged sketch yields the global threshold together with a tracked
//    worst-case rank-error bound. For populations up to the sketch capacity
//    (default 1024 per level) the sketch is lossless and the thresholds are
//    bit-identical to the exact percentiles the single detector computes.
//    The reduction's strict-then-inclusive fallback needs one more global
//    fact — whether strict `>` selects anybody at all — which merges as a
//    plain sum of per-shard survivor counts.
//
//  * θ_hm — two-level clustering. Level one: each shard runs the standard
//    UPGMA + top-fraction cut over its own hosts (human_machine_local,
//    sharing the PR-6/9 pruned drivers and the per-shard HmCache) and
//    exports every local cluster as a representative: medoid signature,
//    member list, exact local diameter. Level two: the representatives are
//    stitched globally — dense pairwise distances between medoid signatures
//    under the same metric, weighted UPGMA (weights = cluster sizes, see
//    stats::agglomerative_average_linkage_weighted), the same top-fraction
//    cut, and a τ_hm quantile over the stitched clusters' diameter
//    estimates. A stitched diameter is an admissible upper bound:
//    max(local diameters, max over rep pairs of d(medoid_a, medoid_b) +
//    diam_a + diam_b) — by the triangle inequality (EMD and bin-L1 are both
//    metrics) no member pair can be farther apart.
//
// Everything here is deterministic: shards are merged in ascending index
// order, per-shard host lists are address-sorted, and the level-two matrix
// is dense (representative counts are tiny next to the host population).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "detect/find_plotters.h"

namespace tradeplot::detect {
class HmCache;
}

namespace tradeplot::shard {

/// The merged relative thresholds and their sketch error bounds, surfaced
/// so tests (and operators) can assert how far a merged threshold's rank may
/// sit from the exact percentile. A bound of 0 means the merged sketch was
/// lossless and the threshold is bit-identical to the single-detector one.
struct MergedThresholds {
  double reduction = 0.0;
  double vol = 0.0;
  double churn = 0.0;
  std::uint64_t reduction_error_bound = 0;  // worst-case rank displacement
  std::uint64_t vol_error_bound = 0;
  std::uint64_t churn_error_bound = 0;
  std::uint64_t eligible_count = 0;  // hosts behind the reduction threshold
  std::uint64_t reduced_count = 0;   // hosts surviving data reduction
};

struct MergedPipelineReport {
  MergedThresholds thresholds;
  std::size_t shard_count = 0;
  /// Shard-local clusters exported to the level-two stitch.
  std::size_t representatives = 0;
  /// Strict `>` selected nobody and the reduction fell back to `>=`
  /// (ReductionComparison::kStrictThenInclusive's degenerate case, decided
  /// on the *global* strict-survivor count).
  bool reduction_inclusive = false;
};

struct MergedResult {
  detect::FindPlottersResult result;
  MergedPipelineReport report;
};

/// Runs the merged FindPlotters pipeline over per-shard feature maps (one
/// entry per shard, host-disjoint by the routing invariant). `caches` must
/// be empty or have one (possibly null) HmCache* per shard — each shard's
/// level-one clustering keeps its own warm cache. `sketch_k` is the
/// QuantileSketch capacity. Deterministic for fixed inputs at every thread
/// count. Throws util::ConfigError if `caches` is non-empty with a size
/// other than shard_features.size().
[[nodiscard]] MergedResult merged_find_plotters(
    std::span<const detect::FeatureMap> shard_features,
    const detect::FindPlottersConfig& config, std::span<detect::HmCache* const> caches = {},
    std::size_t sketch_k = 1024);

}  // namespace tradeplot::shard
