#!/usr/bin/env python3
"""Validate Prometheus text exposition format (version 0.0.4), stdlib only.

promtool is not available in the CI image, so this script is the repo's
scrape-format gate. It checks the invariants a scraper relies on:

  * every sample line parses (metric name, label block, float value);
  * every family has a ``# HELP`` and exactly one ``# TYPE`` line, emitted
    before its first sample;
  * ``_bucket``/``_sum``/``_count`` samples only appear under a histogram
    family;
  * histogram buckets are cumulative (non-decreasing with increasing ``le``),
    the ``le="+Inf"`` bucket is present, and it equals ``_count``;
  * counter values are finite and non-negative;
  * label values use only the legal escapes (``\\\\``, ``\\"``, ``\\n``).

Usage:
  check_prometheus.py FILE [--require FAMILY ...]

Exits 0 when FILE is valid (and every --require'd family has at least one
sample), 1 otherwise with one message per violation.
"""

import argparse
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises ValueError on garbage


def parse_labels(text, errors, lineno):
    """Parses the inside of a `{...}` label block into a dict."""
    labels = {}
    i = 0
    while i < len(text):
        m = LABEL_NAME_RE.match(text, i)
        if m is None:
            errors.append(f"line {lineno}: bad label name at ...{text[i:]!r}")
            return labels
        name = m.group(0)
        i = m.end()
        if text[i : i + 2] != '="':
            errors.append(f"line {lineno}: expected '=\"' after label {name}")
            return labels
        i += 2
        value = []
        while i < len(text):
            c = text[i]
            if c == "\\":
                esc = text[i : i + 2]
                if esc not in ('\\\\', '\\"', "\\n"):
                    errors.append(f"line {lineno}: illegal escape {esc!r}")
                    return labels
                value.append({"\\\\": "\\", '\\"': '"', "\\n": "\n"}[esc])
                i += 2
            elif c == '"':
                break
            elif c == "\n":
                errors.append(f"line {lineno}: unescaped newline in label value")
                return labels
            else:
                value.append(c)
                i += 1
        else:
            errors.append(f"line {lineno}: unterminated label value for {name}")
            return labels
        labels[name] = "".join(value)
        i += 1  # closing quote
        if i < len(text):
            if text[i] != ",":
                errors.append(f"line {lineno}: expected ',' between labels")
                return labels
            i += 1
    return labels


def family_of(name, types):
    """Maps a sample name to its family, folding histogram suffixes."""
    for suffix in HISTOGRAM_SUFFIXES:
        base = name[: -len(suffix)]
        if name.endswith(suffix) and types.get(base) == "histogram":
            return base
    return name


def validate(text, require=()):
    errors = []
    if text and not text.endswith("\n"):
        errors.append("exposition does not end with a newline")

    helps = {}  # family -> lineno of HELP
    types = {}  # family -> declared type
    samples = []  # (lineno, name, labels, value)

    for lineno, line in enumerate(text.split("\n"), start=1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 3 and parts[1] == "HELP":
                helps[parts[2]] = lineno
            elif len(parts) >= 3 and parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in TYPES:
                    errors.append(f"line {lineno}: unknown TYPE {kind!r}")
                if parts[2] in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {parts[2]}")
                types[parts[2]] = kind
            # other comments are legal and ignored
            continue

        m = METRIC_NAME_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample line {line!r}")
            continue
        name = m.group(0)
        rest = line[m.end() :]
        labels = {}
        if rest.startswith("{"):
            close = rest.rfind("}")
            if close < 0:
                errors.append(f"line {lineno}: unterminated label block")
                continue
            labels = parse_labels(rest[1:close], errors, lineno)
            rest = rest[close + 1 :]
        if not rest.startswith(" "):
            errors.append(f"line {lineno}: expected space before value")
            continue
        try:
            value = parse_value(rest.strip())
        except ValueError:
            errors.append(f"line {lineno}: bad value {rest.strip()!r}")
            continue

        fam = family_of(name, types)
        if fam not in types:
            errors.append(f"line {lineno}: sample {name} has no # TYPE for {fam}")
        elif fam != name and types[fam] != "histogram":
            errors.append(f"line {lineno}: {name} used under non-histogram {fam}")
        if fam not in helps:
            errors.append(f"line {lineno}: sample {name} has no # HELP for {fam}")
        if types.get(fam) == "counter" and not value >= 0:
            errors.append(f"line {lineno}: counter {name} has value {value}")
        samples.append((lineno, name, labels, value))

    # Histogram invariants, per (family, labels-without-le) series.
    series = {}
    for lineno, name, labels, value in samples:
        fam = family_of(name, types)
        if types.get(fam) != "histogram":
            continue
        key = (fam, tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
        entry = series.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if name == fam + "_bucket":
            if "le" not in labels:
                errors.append(f"line {lineno}: {name} without an le label")
                continue
            try:
                entry["buckets"].append((parse_value(labels["le"]), value, lineno))
            except ValueError:
                errors.append(f"line {lineno}: bad le value {labels['le']!r}")
        elif name == fam + "_sum":
            entry["sum"] = value
        elif name == fam + "_count":
            entry["count"] = value

    for (fam, labelkey), entry in series.items():
        where = f"histogram {fam}{dict(labelkey) if labelkey else ''}"
        if entry["sum"] is None:
            errors.append(f"{where}: missing _sum")
        if entry["count"] is None:
            errors.append(f"{where}: missing _count")
        buckets = sorted(entry["buckets"])
        if not buckets:
            errors.append(f"{where}: no _bucket samples")
            continue
        if not math.isinf(buckets[-1][0]):
            errors.append(f"{where}: missing le=\"+Inf\" bucket")
        prev = -math.inf
        for le, count, lineno in buckets:
            if count < prev:
                errors.append(
                    f"line {lineno}: {where}: bucket le={le} count {count} "
                    f"below previous bucket's {prev} (not cumulative)"
                )
            prev = count
        if entry["count"] is not None and math.isinf(buckets[-1][0]):
            if buckets[-1][1] != entry["count"]:
                errors.append(
                    f"{where}: le=\"+Inf\" bucket {buckets[-1][1]} != _count "
                    f"{entry['count']}"
                )

    present = {family_of(name, types) for _, name, _, _ in samples}
    for fam in require:
        if fam not in present:
            errors.append(f"required family {fam} has no samples")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="Prometheus text exposition file ('-' = stdin)")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="FAMILY",
        help="fail unless this metric family has at least one sample",
    )
    args = parser.parse_args()
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as f:
            text = f.read()
    errors = validate(text, require=args.require)
    for e in errors:
        print(f"check_prometheus: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"check_prometheus: OK ({args.file})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
