#include "netflow/flow_emit.h"

#include "netflow/flow_record.h"

namespace tradeplot::netflow {

using netflow::FlowBuilder;
using netflow::FlowState;
using netflow::Protocol;

std::uint16_t FlowEmitter::ephemeral_port() {
  return static_cast<std::uint16_t>(rng_->uniform_int(49152, 65535));
}

void FlowEmitter::tcp(simnet::Ipv4 dst, std::uint16_t dport, std::uint64_t bytes_up,
                      std::uint64_t bytes_down, double duration, std::string_view payload) {
  env_->sink(FlowBuilder{}
                 .from(self_, ephemeral_port())
                 .to(dst, dport)
                 .proto(Protocol::kTcp)
                 .at(now(), duration)
                 .transfer(bytes_up, bytes_down)
                 .payload(payload)
                 .build());
}

void FlowEmitter::tcp_failed(simnet::Ipv4 dst, std::uint16_t dport, bool reset) {
  // SYN retries stretch a failed attempt over a few seconds (3 retries).
  env_->sink(FlowBuilder{}
                 .from(self_, ephemeral_port())
                 .to(dst, dport)
                 .proto(Protocol::kTcp)
                 .at(now(), reset ? rng_->uniform(0.01, 0.3) : rng_->uniform(3.0, 9.0))
                 .transfer(0, 0)
                 .state(reset ? FlowState::kReset : FlowState::kAttempted)
                 .build());
}

void FlowEmitter::udp(simnet::Ipv4 dst, std::uint16_t dport, std::uint64_t bytes_up,
                      std::uint64_t bytes_down, bool replied, std::string_view payload) {
  auto b = FlowBuilder{}
               .from(self_, ephemeral_port())
               .to(dst, dport)
               .proto(Protocol::kUdp)
               .at(now(), replied ? rng_->uniform(0.02, 0.5) : rng_->uniform(2.0, 6.0))
               .transfer(bytes_up, replied ? bytes_down : 0);
  if (replied) {
    b.payload(payload);
  } else {
    b.state(FlowState::kAttempted).payload(payload);
  }
  env_->sink(b.build());
}

void FlowEmitter::inbound_tcp(simnet::Ipv4 peer, std::uint16_t local_port,
                              std::uint64_t bytes_requested, std::uint64_t bytes_served,
                              double duration, std::string_view payload) {
  env_->sink(FlowBuilder{}
                 .from(peer, ephemeral_port())
                 .to(self_, local_port)
                 .proto(Protocol::kTcp)
                 .at(now(), duration)
                 .transfer(bytes_requested, bytes_served)
                 .payload(payload)
                 .build());
}

}  // namespace tradeplot::netflow
