// Streaming detection: FindPlotters as an online monitor.
//
// The paper's vantage point is a border monitor ingesting flow records
// continuously. StreamingDetector accepts flows one at a time (in rough
// time order), maintains per-host state incrementally, and emits a full
// FindPlotters result at each detection-window boundary (the paper's
// window D, one day by default), then rolls the window forward.
//
// Memory is bounded by the flows of the current window: all per-host state
// is dropped when the window rolls. Flow ingestion is O(1) amortised per
// flow; the per-window detection pass finalizes features through the same
// code as the batch extractor, so a window's verdict is identical to
// running extract_features + find_plotters over that window's flows — for
// any arrival order of the flows within the window.
#pragma once

#include <functional>
#include <vector>

#include "detect/features.h"
#include "detect/find_plotters.h"

namespace tradeplot::netflow {
class TraceReader;
}

namespace tradeplot::detect {

struct StreamingConfig {
  /// Detection window length D (seconds). Results fire at each boundary.
  double window = 6 * 3600.0;
  /// Predicate for internal hosts (required).
  std::function<bool(simnet::Ipv4)> is_internal;
  /// Churn grace period within the window (paper: first hour of activity).
  double new_ip_grace = 3600.0;
  /// Pipeline thresholds.
  FindPlottersConfig pipeline{};
};

struct WindowVerdict {
  std::size_t window_index = 0;
  double window_start = 0.0;
  double window_end = 0.0;
  std::size_t flows_seen = 0;
  /// The finalized per-host features the verdict was computed from (equal
  /// to extract_features over this window's flows).
  FeatureMap features;
  FindPlottersResult result;
};

class StreamingDetector {
 public:
  using VerdictSink = std::function<void(const WindowVerdict&)>;

  /// Throws util::ConfigError if the config lacks is_internal or has a
  /// non-positive window.
  StreamingDetector(StreamingConfig config, VerdictSink sink);

  /// Ingests one flow. Flows may arrive slightly out of order *within* a
  /// window; a flow stamped before the current window start is counted
  /// into the current window (late arrival) rather than rejected. A flow
  /// past the current window boundary first closes the window (emitting a
  /// verdict) — possibly several empty windows in a row for long gaps.
  void ingest(const netflow::FlowRecord& flow);

  /// Closes the current window and emits its verdict (e.g. at shutdown).
  void flush();

  [[nodiscard]] std::size_t windows_emitted() const { return windows_emitted_; }
  [[nodiscard]] std::size_t flows_in_current_window() const { return flows_in_window_; }
  [[nodiscard]] double current_window_start() const { return window_start_; }

 private:
  void roll_to(double time);
  void emit();

  StreamingConfig config_;
  VerdictSink sink_;

  // Incremental per-host accumulation for the current window: scalar
  // counters update flow by flow; per-destination start times accumulate
  // raw and are finalized (sorted -> churn + interstitials) by the shared
  // finalize_destinations() when the window closes, exactly as in the
  // batch extractor.
  struct HostState {
    HostFeatures features;
    PerDestinationTimes per_dst_times;  // dst -> initiated-flow start times
    bool seen = false;
  };
  std::unordered_map<simnet::Ipv4, HostState> hosts_;

  double window_start_ = 0.0;
  bool window_open_ = false;
  std::size_t flows_in_window_ = 0;
  std::size_t windows_emitted_ = 0;
};

/// Drains `reader` into `detector` one flow at a time and flushes the final
/// window at end-of-trace. Returns the number of flows fed. Combined with
/// TraceReader this is the bounded-memory ingestion path: the trace is never
/// materialized, so memory stays proportional to one detection window.
std::size_t feed(netflow::TraceReader& reader, StreamingDetector& detector);

}  // namespace tradeplot::detect
