# Empty dependencies file for tp_util.
# This may be replaced when dependencies are built.
