file(REMOVE_RECURSE
  "CMakeFiles/detect_features_test.dir/detect_features_test.cpp.o"
  "CMakeFiles/detect_features_test.dir/detect_features_test.cpp.o.d"
  "detect_features_test"
  "detect_features_test.pdb"
  "detect_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
