#include "botnet/storm.h"

#include <algorithm>
#include <string>

namespace tradeplot::botnet {

namespace {
// Overnet/Storm messages start with 0xe3 (eDonkey framing) — deliberately
// indistinguishable from eMule Kad at the payload-prefix level, mirroring
// the real-world overlap the paper highlights. The detection pipeline never
// reads payload, so this only matters for ground-truth bookkeeping.
const std::string kPublicize("\xe3\x0c", 2);
const std::string kSearch("\xe3\x0e", 2);
const std::string kPing("\xe3\x10", 2);
}  // namespace

StormBot::StormBot(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
                   p2p::Overlay* overlay, StormConfig config)
    : env_(std::move(env)),
      rng_(rng),
      emit_(&env_, self, &rng_),
      overlay_(overlay),
      config_(config) {
  peers_.reserve(static_cast<std::size_t>(config_.peer_list_size));
  for (int i = 0; i < config_.peer_list_size; ++i) {
    peers_.push_back(Peer{fresh_peer_addr(), !rng_.chance(config_.dead_peer_frac), false});
  }
  for (int i = 0; i < config_.active_neighbours; ++i) active_.push_back(random_list_index());
}

simnet::Ipv4 StormBot::fresh_peer_addr() {
  if (overlay_ != nullptr) {
    if (const auto c = overlay_->random_node(rng_)) return c->addr;
  }
  return env_.external_addr();
}

std::size_t StormBot::random_list_index() {
  return static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(peers_.size()) - 1));
}

void StormBot::start() {
  // Per-slot ping timers, desynchronised across slots and bots.
  for (std::size_t slot = 0; slot < active_.size(); ++slot) {
    env_.sim->schedule_after(rng_.uniform(0.0, config_.keepalive_period),
                             [this, slot] { ping_neighbour(slot); });
  }
  env_.sim->schedule_after(rng_.uniform(0.0, config_.search_period),
                           [this] { search_round(); });
}

void StormBot::ping_neighbour(std::size_t slot) {
  if (emit_.now() >= env_.window_end) return;
  const std::size_t idx = active_[slot];
  contact_peer(idx);
  // Neighbour lifecycle: live peers occasionally depart; dead slots are
  // eventually replaced from the stored list (the bot keeps retrying for a
  // while first — its share of failed connections).
  Peer& peer = peers_[idx];
  if (peer.alive && rng_.chance(config_.neighbour_death_prob)) peer.alive = false;
  if (!peer.alive && rng_.chance(config_.replace_dead_prob)) active_[slot] = random_list_index();
  env_.sim->schedule_after(
      config_.keepalive_period +
          rng_.uniform(-config_.keepalive_jitter, config_.keepalive_jitter),
      [this, slot] { ping_neighbour(slot); });
}

void StormBot::search_round() {
  if (emit_.now() >= env_.window_end) return;
  // Search for the day's rendezvous hashes: a burst of route probes walking
  // the shuffled ring over the stored list (so every stored peer is
  // re-touched within a few rounds), occasionally learning fresh peers.
  const int probes =
      static_cast<int>(rng_.uniform_int(config_.search_probes_lo, config_.search_probes_hi));
  for (int i = 0; i < probes; ++i) {
    if (rng_.chance(config_.learn_new_peer_prob)) {
      peers_.push_back(Peer{fresh_peer_addr(), !rng_.chance(config_.dead_peer_frac), false});
      contact_peer(peers_.size() - 1);
      continue;
    }
    if (ring_.size() != peers_.size()) {
      ring_.resize(peers_.size());
      for (std::size_t r = 0; r < ring_.size(); ++r) ring_[r] = r;
      rng_.shuffle(ring_);
      ring_pos_ = 0;
    }
    contact_peer(ring_[ring_pos_]);
    ring_pos_ = (ring_pos_ + 1) % ring_.size();
    if (ring_pos_ == 0) rng_.shuffle(ring_);
  }
  env_.sim->schedule_after(
      config_.search_period + rng_.uniform(-config_.search_jitter, config_.search_jitter),
      [this] { search_round(); });
}

void StormBot::contact_peer(std::size_t index) {
  Peer& peer = peers_[index];
  simnet::Ipv4 target = peer.addr;
  bool alive = peer.alive;
  bool repeat = peer.contacted_before;

  // Churn evasion: divert some repeat contacts to brand-new addresses.
  if (repeat && rng_.chance(config_.evasion.extra_new_contact_frac)) {
    target = env_.external_addr();
    alive = !rng_.chance(config_.dead_peer_frac);
    repeat = false;
  }

  const auto bytes = static_cast<std::uint64_t>(
      rng_.uniform(config_.msg_lo, config_.msg_hi) * config_.evasion.volume_multiplier);
  const std::string_view payload =
      rng_.chance(0.4) ? std::string_view(kPublicize)
                       : (rng_.chance(0.5) ? std::string_view(kSearch) : std::string_view(kPing));
  const auto fire = [this, target, alive, bytes, payload] {
    if (emit_.now() >= env_.window_end) return;
    emit_.udp(target, kPort, bytes, alive ? bytes + 20 : 0, alive, payload);
  };
  // Timing evasion: jitter connections to previously-contacted peers. The
  // paper draws the delay uniformly over [-d, +d]; since an event cannot
  // move into the past, we draw over [0, 2d] — the same smear width, with a
  // constant shift that interstitial times cancel out.
  if (repeat && config_.evasion.jitter_range > 0) {
    env_.sim->schedule_after(rng_.uniform(0.0, 2.0 * config_.evasion.jitter_range), fire);
  } else {
    fire();
  }
  peer.contacted_before = true;
}

}  // namespace tradeplot::botnet
