// Deterministic fork-join parallelism for the detection pipeline's O(n^2)
// kernels (pairwise distances, per-host signature construction).
//
// ThreadPool is a fixed set of workers fed from one queue. parallel_for
// splits an index range into contiguous chunks, hands chunks to the shared
// pool, and blocks until every index has been processed. Each index runs
// exactly once and callers write to disjoint output slots, so results are
// bit-identical to the serial loop for every thread count — `threads == 1`
// is the serial reference path (no pool, plain loop), kept reachable for
// A/B testing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace tradeplot::util {

/// Effective worker count: `requested` if > 0; else the TRADEPLOT_THREADS
/// environment variable if set to a positive integer; else
/// std::thread::hardware_concurrency() (at least 1). Malformed environment
/// values are silently ignored here (library code must not abort on a bad
/// env var); user-facing tools validate with threads_env_strict() first.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested = 0);

/// Strict TRADEPLOT_THREADS parse for the benches and CLI tools: returns
/// std::nullopt when the variable is unset, its value when it is a positive
/// integer, and throws ConfigError with the pinned message
/// "TRADEPLOT_THREADS must be a positive integer, got '<value>'" for
/// anything else (garbage, zero, negative, trailing junk).
[[nodiscard]] std::optional<std::size_t> threads_env_strict();

class ThreadPool {
 public:
  /// threads == 0 resolves via resolve_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task for any idle worker. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Process-wide pool, created on first use with resolve_threads(0)
  /// workers (TRADEPLOT_THREADS is read once, when the pool is created).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Invokes fn(i) for every i in [begin, end). The range is split into
/// contiguous chunks of `grain` indices; chunks are claimed dynamically, so
/// uneven per-index cost (e.g. triangular pairwise loops) still balances.
/// The calling thread participates in the work, so the function completes
/// even if every pool worker is busy. The first exception thrown by fn is
/// rethrown after in-flight chunks drain; remaining chunks are abandoned.
/// `threads` follows resolve_threads(); pass 1 to force the serial path.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

/// parallel_for with the default thread count (TRADEPLOT_THREADS or
/// hardware concurrency).
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

}  // namespace tradeplot::util
