file(REMOVE_RECURSE
  "CMakeFiles/stats_emd_test.dir/stats_emd_test.cpp.o"
  "CMakeFiles/stats_emd_test.dir/stats_emd_test.cpp.o.d"
  "stats_emd_test"
  "stats_emd_test.pdb"
  "stats_emd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_emd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
