# Empty compiler generated dependencies file for fig05_failed_conn_cdf.
# This may be replaced when dependencies are built.
