file(REMOVE_RECURSE
  "CMakeFiles/detect_tests_test.dir/detect_tests_test.cpp.o"
  "CMakeFiles/detect_tests_test.dir/detect_tests_test.cpp.o.d"
  "detect_tests_test"
  "detect_tests_test.pdb"
  "detect_tests_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_tests_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
