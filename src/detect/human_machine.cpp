#include "detect/human_machine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "detect/hm_cache.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "stats/descriptive.h"
#include "stats/emd.h"
#include "stats/flat_signature.h"
#include "stats/hcluster.h"
#include "stats/histogram.h"
#include "stats/neighbor_index.h"
#include "util/error.h"
#include "util/flat_map.h"
#include "util/parallel.h"

namespace tradeplot::detect {

namespace {

/// theta_hm metric handles: signature / distance provenance counters (the
/// cross-window cache's hit economics) plus per-tile kernel timings.
struct HmObs {
  obs::Counter& signatures_built = obs::Registry::global().counter(
      "tradeplot_hm_signatures_total", "theta_hm host signatures, by provenance",
      {{"op", "built"}});
  obs::Counter& signatures_reused = obs::Registry::global().counter(
      "tradeplot_hm_signatures_total", "theta_hm host signatures, by provenance",
      {{"op", "reused"}});
  obs::Counter& distances_computed = obs::Registry::global().counter(
      "tradeplot_hm_distances_total", "theta_hm pairwise distances, by provenance",
      {{"op", "computed"}});
  obs::Counter& distances_reused = obs::Registry::global().counter(
      "tradeplot_hm_distances_total", "theta_hm pairwise distances, by provenance",
      {{"op", "reused"}});
  obs::Histogram& tile_seconds = obs::Registry::global().histogram(
      "tradeplot_pairwise_tile_seconds",
      "Wall-clock duration of one pairwise distance tile", obs::duration_buckets(),
      {{"kernel", "bin_l1"}});
  obs::Counter& degenerate_hosts = obs::Registry::global().counter(
      "tradeplot_hm_degenerate_hosts_total",
      "theta_hm hosts skipped for degenerate timing evidence");
  obs::Counter& dense_matrix = obs::Registry::global().counter(
      "tradeplot_hm_dense_matrix_total",
      "dense n x n distance matrices allocated by theta_hm");
  obs::Counter& prune_exact = obs::Registry::global().counter(
      "tradeplot_hm_prune_pairs_total",
      "theta_hm pruned-path pair evaluations, by outcome", {{"op", "exact"}});
  obs::Counter& prune_skipped_pivot = obs::Registry::global().counter(
      "tradeplot_hm_prune_pairs_total",
      "theta_hm pruned-path pair evaluations, by outcome", {{"op", "skipped_pivot"}});
  obs::Counter& prune_skipped_grid = obs::Registry::global().counter(
      "tradeplot_hm_prune_pairs_total",
      "theta_hm pruned-path pair evaluations, by outcome", {{"op", "skipped_grid"}});
  // Clustering-engine work counters, exported per run so operators can watch
  // the pruned path's economics (how much of the pair space was paid for)
  // drift as traffic changes.
  obs::Counter& cluster_scan_cache_hits = obs::Registry::global().counter(
      "tradeplot_cluster_scan_cache_hits_total",
      "theta_hm NN scans served by the chain-local candidate cache");
  obs::Counter& cluster_bloom_skips = obs::Registry::global().counter(
      "tradeplot_cluster_bloom_skips_total",
      "theta_hm memo probes skipped by the Bloom gate");
  obs::Counter& cluster_exact_evals = obs::Registry::global().counter(
      "tradeplot_cluster_exact_evals_total",
      "theta_hm exact kernel evaluations by the clustering engine");

  static HmObs& get() {
    static HmObs o;
    return o;
  }
};

/// S1: a negative or non-finite fixed_bin_width used to fall silently back to
/// the 60 s grid inside bin_l1_grid; it is a misconfiguration and is rejected
/// up front. 0 stays valid (the documented FD / 60 s fallback sentinel).
void validate_config(const HumanMachineConfig& config) {
  if (!std::isfinite(config.fixed_bin_width) || config.fixed_bin_width < 0.0) {
    throw util::ConfigError(
        "theta_hm: fixed_bin_width must be a finite, non-negative seconds value");
  }
}

/// S2: a signature the distance kernels would reject (zero mass, non-finite
/// or negative weight, non-finite position). Such a host is skipped and
/// accounted instead of aborting the whole window.
bool degenerate_signature(const stats::Signature& s) {
  double mass = 0.0;
  for (const stats::SignaturePoint& p : s) {
    if (!std::isfinite(p.position) || !std::isfinite(p.weight) || p.weight < 0.0) return true;
    mass += p.weight;
  }
  return !(mass > 0.0);
}

/// All signatures re-binned once onto the absolute grid, stored flat. The
/// per-pair kernel is then a straight L1 sweep with no lookups and no
/// allocation. Two storage forms, bit-identical in the sums they produce
/// (the sweep visits bins in ascending order either way, and bins where both
/// signatures are empty contribute an exact 0.0):
///  * dense  — one weight vector per signature over the population's full
///             [lo, hi] bin span; branch-free sweep. Used when the span is
///             modest (the realistic case: interstitials bounded by the
///             detection window over a 60 s grid).
///  * sparse — per-signature sorted (bin, weight) arrays with a merge
///             sweep; keeps memory O(points) when outlier positions blow
///             the span up.
class FlatBinSet {
 public:
  FlatBinSet(const std::vector<stats::Signature>& sigs, double grid, std::size_t threads) {
    const std::size_t n = sigs.size();
    // Validate serially, up front: a malformed signature must throw on the
    // calling thread before any worker starts.
    for (const stats::Signature& s : sigs) {
      double mass = 0.0;
      for (const stats::SignaturePoint& p : s) {
        if (p.weight < 0.0) throw util::ConfigError("bin-L1: negative signature weight");
        mass += p.weight;
      }
      if (!(mass > 0.0)) throw util::ConfigError("bin-L1: signature has no mass");
    }

    // Re-bin each signature once (weights accumulated in point order, bins
    // sorted). Each slot is written by exactly one task.
    std::vector<std::vector<std::pair<long long, double>>> sparse(n);
    util::parallel_for(0, n, 8, threads, [&](std::size_t i) {
      // floor, not truncation: casting p.position / grid rounds toward zero
      // and would merge the two grid cells straddling 0 into one bin.
      std::map<long long, double> acc;
      for (const stats::SignaturePoint& p : sigs[i]) {
        acc[std::llround(std::floor(p.position / grid))] += p.weight;
      }
      sparse[i].assign(acc.begin(), acc.end());
    });

    offsets_.resize(n + 1, 0);
    long long lo = 0, hi = -1;
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      offsets_[i + 1] = offsets_[i] + sparse[i].size();
      if (!sparse[i].empty()) {
        lo = any ? std::min(lo, sparse[i].front().first) : sparse[i].front().first;
        hi = any ? std::max(hi, sparse[i].back().first) : sparse[i].back().first;
        any = true;
      }
    }
    bins_.resize(offsets_[n]);
    bin_weights_.resize(offsets_[n]);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < sparse[i].size(); ++k) {
        bins_[offsets_[i] + k] = sparse[i][k].first;
        bin_weights_[offsets_[i] + k] = sparse[i][k].second;
      }
    }

    constexpr long long kDenseMaxBins = 4096;
    if (any && hi - lo + 1 <= kDenseMaxBins) {
      dense_ = true;
      lo_ = lo;
      width_ = static_cast<std::size_t>(hi - lo + 1);
      dense_weights_.assign(n * width_, 0.0);
      util::parallel_for(0, n, 8, threads, [&](std::size_t i) {
        double* row = dense_weights_.data() + i * width_;
        for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
          row[static_cast<std::size_t>(bins_[k] - lo_)] = bin_weights_[k];
        }
      });
    }
  }

  [[nodiscard]] double l1(std::size_t i, std::size_t j) const {
    double l1 = 0.0;
    if (dense_) {
      const double* a = dense_weights_.data() + i * width_;
      const double* b = dense_weights_.data() + j * width_;
      for (std::size_t k = 0; k < width_; ++k) l1 += std::abs(a[k] - b[k]);
      return l1;
    }
    std::size_t a = offsets_[i], b = offsets_[j];
    const std::size_t a_end = offsets_[i + 1], b_end = offsets_[j + 1];
    while (a < a_end || b < b_end) {
      if (b >= b_end || (a < a_end && bins_[a] < bins_[b])) {
        l1 += bin_weights_[a++];
      } else if (a >= a_end || bins_[b] < bins_[a]) {
        l1 += bin_weights_[b++];
      } else {
        l1 += std::abs(bin_weights_[a++] - bin_weights_[b++]);
      }
    }
    return l1;
  }

 private:
  std::vector<long long> bins_;
  std::vector<double> bin_weights_;
  std::vector<std::size_t> offsets_;  // n + 1 entries into the sparse arrays
  bool dense_ = false;
  long long lo_ = 0;
  std::size_t width_ = 0;
  std::vector<double> dense_weights_;  // n * width_ when dense
};

/// Upper-triangle pairwise fill in cache-blocked tiles (mirrored into the
/// lower triangle). Each tile owns disjoint cells, so any worker order
/// produces the identical matrix.
template <typename CellFn>
void fill_pairwise_tiled(std::vector<double>& d, std::size_t n, std::size_t threads,
                         const CellFn& cell) {
  constexpr std::size_t kTile = 64;
  const std::size_t tile_count = (n + kTile - 1) / kTile;
  std::vector<std::pair<std::size_t, std::size_t>> tiles;
  tiles.reserve(tile_count * (tile_count + 1) / 2);
  for (std::size_t ti = 0; ti < tile_count; ++ti) {
    for (std::size_t tj = ti; tj < tile_count; ++tj) tiles.emplace_back(ti, tj);
  }
  util::parallel_for(0, tiles.size(), 1, threads, [&](std::size_t t) {
    const obs::ScopedTimer tile_timer(obs::enabled() ? &HmObs::get().tile_seconds
                                                     : nullptr);
    const auto [ti, tj] = tiles[t];
    const std::size_t i_end = std::min(n, (ti + 1) * kTile);
    const std::size_t j_end = std::min(n, (tj + 1) * kTile);
    for (std::size_t i = ti * kTile; i < i_end; ++i) {
      for (std::size_t j = std::max(i + 1, tj * kTile); j < j_end; ++j) {
        const double v = cell(i, j);
        d[i * n + j] = v;
        d[j * n + i] = v;
      }
    }
  });
}

double bin_l1_grid(const HumanMachineConfig& config) {
  return config.fixed_bin_width > 0.0 ? config.fixed_bin_width : 60.0;
}

/// Distance matrix through the cross-window cache: reuse every pair whose
/// two hosts' content hashes match the stored entry, compute only the
/// missing cells with the flat kernels, then retain exactly this window's
/// pairs (one-window retention keeps the cache — and its checkpoint image —
/// bounded by the last window's size).
std::vector<double> cached_distances(const std::vector<stats::Signature>& signatures,
                                     const std::vector<simnet::Ipv4>& hosts,
                                     const std::vector<std::uint64_t>& hashes,
                                     const HumanMachineConfig& config, HmCache& cache) {
  const std::size_t n = signatures.size();
  std::vector<double> d(n * n, 0.0);
  const std::size_t reused_before = cache.distances_reused;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> missing;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto it = cache.distances.find(HmCache::pair_key(hosts[i], hosts[j]));
      const std::uint64_t hash_lo = hosts[i].value() < hosts[j].value() ? hashes[i] : hashes[j];
      const std::uint64_t hash_hi = hosts[i].value() < hosts[j].value() ? hashes[j] : hashes[i];
      if (it != cache.distances.end() && it->second.hash_lo == hash_lo &&
          it->second.hash_hi == hash_hi) {
        d[i * n + j] = it->second.distance;
        d[j * n + i] = it->second.distance;
        ++cache.distances_reused;
      } else {
        missing.emplace_back(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
      }
    }
  }

  if (!missing.empty()) {
    if (config.distance == HmDistance::kBinL1) {
      const FlatBinSet bins(signatures, bin_l1_grid(config), config.threads);
      util::parallel_for(0, missing.size(), 64, config.threads, [&](std::size_t k) {
        const auto [i, j] = missing[k];
        const double v = bins.l1(i, j);
        d[i * n + j] = v;
        d[j * n + i] = v;
      });
    } else {
      const stats::FlatSignatureSet flat(signatures, config.threads);
      util::parallel_for(0, missing.size(), 64, config.threads, [&](std::size_t k) {
        const auto [i, j] = missing[k];
        const double v = stats::emd_1d_presorted(flat.view(i), flat.view(j));
        d[i * n + j] = v;
        d[j * n + i] = v;
      });
    }
    cache.distances_computed += missing.size();
  }
  if (obs::enabled()) {
    HmObs& o = HmObs::get();
    o.distances_reused.add(cache.distances_reused - reused_before);
    o.distances_computed.add(missing.size());
  }

  std::unordered_map<std::uint64_t, HmCache::DistanceEntry> retained;
  retained.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::uint64_t hash_lo = hosts[i].value() < hosts[j].value() ? hashes[i] : hashes[j];
      const std::uint64_t hash_hi = hosts[i].value() < hosts[j].value() ? hashes[j] : hashes[i];
      retained.emplace(HmCache::pair_key(hosts[i], hosts[j]),
                       HmCache::DistanceEntry{hash_lo, hash_hi, d[i * n + j]});
    }
  }
  cache.distances = std::move(retained);
  cache.rebuild_distance_filter();
  return d;
}

/// The sub-quadratic distance + clustering stage. Exact leaf distances are
/// resolved on demand (HmCache first, then the flat kernels) and memoized by
/// leaf pair; the lazy clustering driver gates every candidate through the
/// pruned-neighbor index's lower bounds so only near pairs pay the kernel.
/// Verdicts are bit-identical to the dense path (see
/// stats::average_linkage_cut_pruned); memory stays O(resolved
/// pairs) — a fully cache-warm window runs zero kernel evaluations and never
/// allocates quadratic storage.
class PrunedStage {
 public:
  PrunedStage(const std::vector<stats::Signature>& signatures,
              const std::vector<simnet::Ipv4>& hosts,
              const std::vector<std::uint64_t>& hashes, const HumanMachineConfig& config,
              HmCache* cache)
      : hosts_(hosts), hashes_(hashes), cache_(cache),
        threads_(util::resolve_threads(config.threads)),
        collect_timing_(config.collect_phase_timing) {
    const std::size_t n = signatures.size();
    if (config.distance == HmDistance::kBinL1) {
      bins_.emplace(signatures, bin_l1_grid(config), config.threads);
    } else {
      flat_.emplace(signatures, config.threads);
    }

    // Pivot columns are filled with parallel_for: exact_pair is pure (cache
    // reads only, atomic counters), so the index is thread-count invariant.
    const auto index_start = collect_timing_ ? std::chrono::steady_clock::now()
                                             : std::chrono::steady_clock::time_point{};
    {
      const obs::StageTimer index_timer(obs::Stage::kPruneIndex);
      index_.emplace(
          n, [this](std::size_t i, std::size_t j) { return exact_pair(i, j); },
          config.prune_pivots, config.threads);
      if (config.distance != HmDistance::kBinL1 && config.prune_grid_bins > 0) {
        index_->build_grid(*flat_, config.prune_grid_bins, config.threads);
      }
    }
    if (collect_timing_) {
      pivot_build_seconds_ =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - index_start)
              .count();
    }

    // Seed the serial memo with the pivot columns — the NN-chain and the
    // diameter pass re-ask for many leaf-pivot pairs.
    const std::size_t p_count = index_->pivot_count();
    leaf_memo_.reserve(n * p_count);
    for (std::size_t p = 0; p < p_count; ++p) {
      const std::size_t pivot = index_->pivot_leaves()[p];
      for (std::size_t i = 0; i < n; ++i) {
        if (i != pivot)
          leaf_memo_.insert(pair_slot(i, pivot), index_->pivot_distances()[i * p_count + p]);
      }
    }
  }

  /// Memoized exact leaf distance; serial (clustering driver and diameter
  /// pass only).
  double leaf_distance(std::size_t i, std::size_t j) {
    const std::uint64_t slot = pair_slot(i, j);
    if (const double* hit = leaf_memo_.find(slot); hit != nullptr) return *hit;
    const double v = exact_pair(i, j);
    leaf_memo_.insert(slot, v);
    return v;
  }

  /// Batch resolution of distinct (min, max) leaf pairs on the thread pool.
  /// Cross-window cache hits resolve in a serial probe pass; the cold pairs
  /// run in parallel blocks of four through the 4-lane EMD sweep (per-lane
  /// bit-identical to the scalar kernel), scalar for the bin-L1 mode and the
  /// tail. exact_pair is pure and every index writes one disjoint out slot,
  /// so out[] is bit-identical to a serial exact_pair loop at every thread
  /// count. Does NOT touch leaf_memo_ (not thread-safe); the engine reports
  /// each resolution back serially through note_resolved.
  void batch_eval(std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs,
                  double* out) {
    cold_pairs_.clear();
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      double v = 0.0;
      if (cache_probe(pairs[k].first, pairs[k].second, v)) {
        out[k] = v;
      } else {
        cold_pairs_.push_back(k);
      }
    }
    if (cold_pairs_.empty()) return;
    kernel_evals_.fetch_add(cold_pairs_.size(), std::memory_order_relaxed);
    const std::size_t blocks = (cold_pairs_.size() + 3) / 4;
    util::parallel_for(0, blocks, 1, threads_, [&](std::size_t blk) {
      const std::size_t begin = blk * 4;
      const std::size_t count = std::min<std::size_t>(4, cold_pairs_.size() - begin);
      if (flat_ && count == 4) {
        std::size_t a4[4], b4[4];
        double out4[4];
        for (std::size_t l = 0; l < 4; ++l) {
          a4[l] = pairs[cold_pairs_[begin + l]].first;
          b4[l] = pairs[cold_pairs_[begin + l]].second;
        }
        flat_->emd_x4(a4, b4, out4);
        for (std::size_t l = 0; l < 4; ++l) out[cold_pairs_[begin + l]] = out4[l];
        return;
      }
      for (std::size_t l = 0; l < count; ++l) {
        const auto [a, b] = pairs[cold_pairs_[begin + l]];
        out[cold_pairs_[begin + l]] =
            bins_ ? bins_->l1(a, b) : stats::emd_1d_presorted(flat_->view(a), flat_->view(b));
      }
    });
  }

  /// Serial observer for batch-resolved pairs: memoize so retention and the
  /// diameter pass see batch values too.
  void note_resolved(std::size_t i, std::size_t j, double v) {
    leaf_memo_.insert(pair_slot(i, j), v);
  }

  /// Options handed to the pruned clustering drivers: batch resolution on
  /// this stage's pool, resolutions mirrored into the memo, phase timing per
  /// config.
  [[nodiscard]] stats::PruneOptions prune_options() {
    stats::PruneOptions opts;
    opts.threads = threads_;
    opts.batch_leaf = [this](std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs,
                             double* out) { batch_eval(pairs, out); };
    opts.on_leaf_resolved = [this](std::size_t i, std::size_t j, double v) {
      note_resolved(i, j, v);
    };
    opts.collect_timing = collect_timing_;
    return opts;
  }

  /// Max pairwise distance within `group` (ascending leaf indices). The
  /// clustering run has already resolved most pairs inside a tight cluster,
  /// so probe the memo first and batch-evaluate only the missing pairs. Max
  /// over the same exact values the serial leaf_distance loop would take —
  /// identical result.
  double group_diameter(std::span<const std::size_t> group) {
    double diameter = 0.0;
    diameter_missing_.clear();
    for (std::size_t a = 0; a < group.size(); ++a) {
      for (std::size_t b = a + 1; b < group.size(); ++b) {
        const double* hit = leaf_memo_.find(pair_slot(group[a], group[b]));
        if (hit != nullptr) {
          diameter = std::max(diameter, *hit);
        } else {
          diameter_missing_.emplace_back(
              static_cast<std::uint32_t>(std::min(group[a], group[b])),
              static_cast<std::uint32_t>(std::max(group[a], group[b])));
        }
      }
    }
    if (!diameter_missing_.empty()) {
      std::vector<double> values(diameter_missing_.size());
      batch_eval(diameter_missing_, values.data());
      for (std::size_t k = 0; k < diameter_missing_.size(); ++k) {
        note_resolved(diameter_missing_[k].first, diameter_missing_[k].second, values[k]);
        diameter = std::max(diameter, values[k]);
      }
    }
    return diameter;
  }

  /// group_diameter plus the medoid: the member (local index into `group`)
  /// minimizing the sum of exact distances to the other members, ties to the
  /// lowest index (== smallest address, since groups are ascending and the
  /// host list is address-sorted). Resolves the full intra-group pair set,
  /// so the values are the same exact kernels as everywhere else.
  std::pair<double, std::size_t> group_diameter_and_medoid(
      std::span<const std::size_t> group) {
    if (group.size() < 2) return {0.0, 0};
    const double diameter = group_diameter(group);  // memoizes every pair
    std::vector<double> row_sum(group.size(), 0.0);
    for (std::size_t a = 0; a < group.size(); ++a) {
      for (std::size_t b = a + 1; b < group.size(); ++b) {
        const double* hit = leaf_memo_.find(pair_slot(group[a], group[b]));
        row_sum[a] += *hit;
        row_sum[b] += *hit;
      }
    }
    std::size_t medoid = 0;
    for (std::size_t a = 1; a < group.size(); ++a)
      if (row_sum[a] < row_sum[medoid]) medoid = a;
    return {diameter, medoid};
  }

  [[nodiscard]] double pivot_build_seconds() const { return pivot_build_seconds_; }

  [[nodiscard]] stats::PruneFeatures features() const { return index_->features(); }
  [[nodiscard]] std::size_t pivot_count() const { return index_->pivot_count(); }
  [[nodiscard]] std::uint64_t kernel_evals() const {
    return kernel_evals_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t resolved_pairs() const { return leaf_memo_.size(); }

  /// One-window retention of exactly the resolved pairs: the next warm
  /// window's pivot columns and chain resolutions become pure cache hits.
  void retain_into_cache() {
    if (cache_ == nullptr) return;
    std::unordered_map<std::uint64_t, HmCache::DistanceEntry> retained;
    retained.reserve(leaf_memo_.size());
    leaf_memo_.for_each([&](std::uint64_t slot, double distance) {
      const auto i = static_cast<std::size_t>(slot >> 32);
      const auto j = static_cast<std::size_t>(slot & 0xffffffffu);
      const bool i_low = hosts_[i].value() < hosts_[j].value();
      retained.emplace(HmCache::pair_key(hosts_[i], hosts_[j]),
                       HmCache::DistanceEntry{i_low ? hashes_[i] : hashes_[j],
                                              i_low ? hashes_[j] : hashes_[i], distance});
    });
    cache_->distances = std::move(retained);
    cache_->rebuild_distance_filter();
    cache_->distances_computed += kernel_evals();
    cache_->distances_reused += cache_hits();
  }

 private:
  static std::uint64_t pair_slot(std::size_t i, std::size_t j) {
    const std::uint64_t lo = std::min(i, j);
    const std::uint64_t hi = std::max(i, j);
    return (lo << 32) | hi;
  }

  /// Cross-window cache probe (thread-safe: map reads only, atomic counter).
  /// True and fills `v` when the cached value's content hashes still match.
  bool cache_probe(std::size_t i, std::size_t j, double& v) {
    if (cache_ == nullptr) return false;
    const std::uint64_t key = HmCache::pair_key(hosts_[i], hosts_[j]);
    // Bloom gate: in a partially warm window most probed pairs (changed
    // hosts' rows, new hosts) were never cached, and the filter answers
    // "definitely absent" without a bucket walk.
    if (!cache_->distance_maybe_cached(key)) return false;
    const auto it = cache_->distances.find(key);
    if (it == cache_->distances.end()) return false;
    const bool i_low = hosts_[i].value() < hosts_[j].value();
    const std::uint64_t hash_lo = i_low ? hashes_[i] : hashes_[j];
    const std::uint64_t hash_hi = i_low ? hashes_[j] : hashes_[i];
    if (it->second.hash_lo != hash_lo || it->second.hash_hi != hash_hi) return false;
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    v = it->second.distance;
    return true;
  }

  /// Pure, thread-safe exact pair distance: cross-window cache lookup first,
  /// then the same flat kernel the dense path uses (bit-identical values).
  double exact_pair(std::size_t i, std::size_t j) {
    double cached = 0.0;
    if (cache_probe(i, j, cached)) return cached;
    kernel_evals_.fetch_add(1, std::memory_order_relaxed);
    // The dense path only ever evaluates (low, high) pairs; the EMD merge
    // sweep is not bitwise symmetric under tied positions, so normalize the
    // operand order to stay bit-identical.
    const std::size_t a = std::min(i, j);
    const std::size_t b = std::max(i, j);
    return bins_ ? bins_->l1(a, b) : stats::emd_1d_presorted(flat_->view(a), flat_->view(b));
  }

  const std::vector<simnet::Ipv4>& hosts_;
  const std::vector<std::uint64_t>& hashes_;
  HmCache* cache_;
  std::size_t threads_;
  bool collect_timing_;
  double pivot_build_seconds_ = 0.0;
  std::optional<FlatBinSet> bins_;
  std::optional<stats::FlatSignatureSet> flat_;
  std::optional<stats::NeighborIndex> index_;
  util::Flat64Map leaf_memo_;  // (min<<32)|max -> exact
  // Scratch for batch_eval / group_diameter (serial entry points).
  std::vector<std::size_t> cold_pairs_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> diameter_missing_;
  std::atomic<std::uint64_t> kernel_evals_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
};

/// Shared preparation for the global θ_hm test and the shard-local variant:
/// eligibility screen, content hashes, parallel signature build, degenerate
/// compaction, and cache signature retention. `min_required` is the host
/// floor below which the caller will not cluster (min_cluster_size for the
/// global test, 1 for the shard-local export — a lone eligible host must
/// still reach the global merge); when the survivor count falls below it,
/// prep stops where the distance stage would have been skipped (ready stays
/// false and the cache is left untouched).
struct HmPrep {
  std::vector<simnet::Ipv4> hosts;
  std::vector<const HostFeatures*> eligible;
  std::vector<std::uint64_t> hashes;  // filled only when a cache is in play
  std::vector<stats::Signature> signatures;
  bool ready = false;
};

HmPrep prepare_hm(const FeatureMap& features, const HostSet& input,
                  const HumanMachineConfig& config, HmCache* cache,
                  std::size_t min_required, HostSet& skipped, HostSet& degenerate,
                  bool& degraded) {
  HmPrep prep;
  min_required = std::max<std::size_t>(min_required, 1);
  const auto mark_degenerate = [&](simnet::Ipv4 host) {
    skipped.push_back(host);
    degenerate.push_back(host);
    degraded = true;
    if (obs::enabled()) HmObs::get().degenerate_hosts.add(1);
  };

  // Select eligible hosts serially (cheap), then build the histogram
  // signatures in parallel — each host writes only its own slot, so the
  // signature list is identical for every thread count. A host whose timing
  // buffer cannot produce a valid histogram (empty, or containing non-finite
  // samples the kernels would reject) is skipped and accounted as degenerate
  // instead of aborting the window.
  std::vector<simnet::Ipv4>& hosts = prep.hosts;
  std::vector<const HostFeatures*>& eligible = prep.eligible;
  for (const simnet::Ipv4 host : input) {
    const auto it = features.find(host);
    if (it == features.end())
      throw util::ConfigError("host " + host.to_string() + " missing from feature map");
    const HostFeatures& f = it->second;
    if (f.interstitials.size() < config.min_samples) {
      skipped.push_back(host);
      continue;
    }
    const bool finite = std::all_of(f.interstitials.begin(), f.interstitials.end(),
                                    [](double v) { return std::isfinite(v); });
    if (f.interstitials.empty() || !finite) {
      mark_degenerate(host);
      continue;
    }
    hosts.push_back(host);
    eligible.push_back(&f);
  }
  if (hosts.size() < min_required) return prep;

  // Content hashes of the timing buffers gate signature reuse: a host whose
  // interstitials are byte-identical to its cached entry keeps its signature
  // (and, below, its distance rows) without recomputation.
  std::vector<std::uint64_t>& hashes = prep.hashes;
  std::vector<std::uint8_t> reuse_signature;
  if (cache != nullptr) {
    hashes.resize(hosts.size());
    reuse_signature.assign(hosts.size(), 0);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      hashes[i] = hm_content_hash(eligible[i]->interstitials, config.fixed_bin_width,
                                  static_cast<int>(config.distance));
      const auto it = cache->signatures.find(hosts[i]);
      reuse_signature[i] = it != cache->signatures.end() && it->second.hash == hashes[i];
    }
  }

  std::vector<stats::Signature>& signatures = prep.signatures;
  signatures.resize(hosts.size());
  {
    const obs::StageTimer sig_timer(obs::Stage::kSignatureBuild);
    util::parallel_for(0, hosts.size(), 1, config.threads, [&](std::size_t i) {
      if (cache != nullptr && reuse_signature[i]) {
        signatures[i] = cache->signatures.at(hosts[i]).signature;
        return;
      }
      const HostFeatures& f = *eligible[i];
      const stats::Histogram hist =
          config.fixed_bin_width > 0.0
              ? stats::Histogram(f.interstitials, config.fixed_bin_width)
              : stats::Histogram::with_fd_width(f.interstitials);
      signatures[i] = config.distance == HmDistance::kEmdBinIndex ? hist.index_signature()
                                                                  : hist.signature();
    });
  }
  // Post-build screen: a histogram can still be degenerate (zero total mass,
  // non-finite bin centres from pathological widths). Compact such hosts out
  // of every parallel array before the distance stage — the kernels would
  // otherwise throw and abort the whole window.
  {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (degenerate_signature(signatures[i])) {
        mark_degenerate(hosts[i]);
        continue;
      }
      if (kept != i) {
        hosts[kept] = hosts[i];
        eligible[kept] = eligible[i];
        signatures[kept] = std::move(signatures[i]);
        if (cache != nullptr) {
          hashes[kept] = hashes[i];
          reuse_signature[kept] = reuse_signature[i];
        }
      }
      ++kept;
    }
    if (kept != hosts.size()) {
      hosts.resize(kept);
      eligible.resize(kept);
      signatures.resize(kept);
      if (cache != nullptr) {
        hashes.resize(kept);
        reuse_signature.resize(kept);
      }
    }
  }
  if (hosts.size() < min_required) return prep;

  if (cache != nullptr) {
    const std::size_t built_before = cache->signatures_built;
    const std::size_t reused_before = cache->signatures_reused;
    std::unordered_map<simnet::Ipv4, HmCache::SignatureEntry> retained;
    retained.reserve(hosts.size());
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (reuse_signature[i]) {
        ++cache->signatures_reused;
      } else {
        ++cache->signatures_built;
      }
      retained.emplace(hosts[i], HmCache::SignatureEntry{hashes[i], signatures[i]});
    }
    cache->signatures = std::move(retained);
    if (obs::enabled()) {
      HmObs& o = HmObs::get();
      o.signatures_built.add(cache->signatures_built - built_before);
      o.signatures_reused.add(cache->signatures_reused - reused_before);
    }
  } else if (obs::enabled()) {
    HmObs::get().signatures_built.add(hosts.size());
  }
  prep.ready = true;
  return prep;
}

}  // namespace

std::vector<double> pairwise_bin_l1(const std::vector<stats::Signature>& sigs,
                                    const HumanMachineConfig& config) {
  validate_config(config);
  const std::size_t n = sigs.size();
  const FlatBinSet bins(sigs, bin_l1_grid(config), config.threads);
  std::vector<double> d(n * n, 0.0);
  if (n < 2) return d;
  fill_pairwise_tiled(d, n, config.threads,
                      [&](std::size_t i, std::size_t j) { return bins.l1(i, j); });
  return d;
}

HumanMachineResult human_machine_test(const FeatureMap& features, const HostSet& input,
                                      const HumanMachineConfig& config, HmCache* cache) {
  validate_config(config);
  HumanMachineResult result;
  const auto finish = [&result] {
    std::sort(result.skipped.begin(), result.skipped.end());
    std::sort(result.degenerate.begin(), result.degenerate.end());
  };

  HmPrep prep = prepare_hm(features, input, config, cache, config.min_cluster_size,
                           result.skipped, result.degenerate, result.degraded);
  if (!prep.ready) {
    finish();
    return result;
  }
  std::vector<simnet::Ipv4>& hosts = prep.hosts;
  std::vector<std::uint64_t>& hashes = prep.hashes;
  std::vector<stats::Signature>& signatures = prep.signatures;

  const std::size_t n = hosts.size();
  result.prune.pairs_total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const bool use_pruned =
      config.pruning == HmPruning::kPruned ||
      (config.pruning == HmPruning::kAuto && n >= config.prune_min_hosts);

  std::vector<double> diameters;
  if (use_pruned) {
    // Sub-quadratic path: no dense matrix is ever allocated. Exact distances
    // resolve lazily through the cache and the flat kernels; the clustering
    // driver prunes candidates with the index's admissible lower bounds and
    // is bit-identical to the dense run by construction.
    PrunedStage stage(signatures, hosts, hashes, config, cache);
    stats::PruneCounters counters;
    const auto groups = [&] {
      const obs::StageTimer cluster_timer(obs::Stage::kClustering);
      // Fused UPGMA + cut: the heights of cut (far) links are never
      // resolved exactly, which is what keeps the kernel count sub-quadratic
      // — a full dendrogram's top merge heights would need nearly every far
      // pair (see stats::average_linkage_cut_pruned).
      return stats::average_linkage_cut_pruned(
          n, [&stage](std::size_t i, std::size_t j) { return stage.leaf_distance(i, j); },
          stage.features(), config.cut_fraction, stage.prune_options(), &counters);
    }();

    for (const auto& group : groups) {
      if (group.size() < config.min_cluster_size) continue;
      HostCluster cluster;
      for (const std::size_t idx : group) cluster.members.push_back(hosts[idx]);
      // Memo-probing + batched: the clustering run already resolved most
      // pairs inside a tight cluster, and the few missing ones go through
      // the pool in one batch instead of one serial kernel at a time.
      cluster.diameter = stage.group_diameter(group);
      diameters.push_back(cluster.diameter);
      result.clusters.push_back(std::move(cluster));
    }

    stage.retain_into_cache();
    result.prune.used = true;
    result.prune.exact_kernel_evals = stage.kernel_evals();
    result.prune.cache_hits = stage.cache_hits();
    result.prune.resolved_pairs = stage.resolved_pairs();
    result.prune.pivots = stage.pivot_count();
    result.prune.scanned = counters.scanned;
    result.prune.skipped_pivot = counters.skipped_pivot;
    result.prune.skipped_grid = counters.skipped_grid;
    result.prune.scan_cache_hits = counters.scan_cache_hits;
    result.prune.bloom_skips = counters.bloom_skips;
    result.prune.pivot_build_ms = stage.pivot_build_seconds() * 1e3;
    result.prune.bound_scan_ms = counters.bound_scan_seconds * 1e3;
    result.prune.exact_eval_ms = counters.exact_eval_seconds * 1e3;
    result.prune.replay_ms = counters.replay_seconds * 1e3;
    if (obs::enabled()) {
      HmObs& o = HmObs::get();
      o.distances_computed.add(stage.kernel_evals());
      o.distances_reused.add(stage.cache_hits());
      o.prune_exact.add(stage.kernel_evals());
      o.prune_skipped_pivot.add(counters.skipped_pivot);
      o.prune_skipped_grid.add(counters.skipped_grid);
      o.cluster_scan_cache_hits.add(counters.scan_cache_hits);
      o.cluster_bloom_skips.add(counters.bloom_skips);
      o.cluster_exact_evals.add(stage.kernel_evals());
    }
  } else {
    if (obs::enabled()) HmObs::get().dense_matrix.add(1);
    const std::uint64_t computed_before = cache != nullptr ? cache->distances_computed : 0;
    const std::uint64_t reused_before = cache != nullptr ? cache->distances_reused : 0;
    std::vector<double> distances;
    {
      const obs::StageTimer dist_timer(obs::Stage::kPairwiseDistance);
      distances = cache != nullptr
                      ? cached_distances(signatures, hosts, hashes, config, *cache)
                  : config.distance == HmDistance::kBinL1
                      ? pairwise_bin_l1(signatures, config)
                      : stats::pairwise_emd(signatures, config.threads);
      if (cache == nullptr && obs::enabled())
        HmObs::get().distances_computed.add(result.prune.pairs_total);
    }
    result.prune.exact_kernel_evals =
        cache != nullptr ? cache->distances_computed - computed_before
                         : result.prune.pairs_total;
    result.prune.cache_hits = cache != nullptr ? cache->distances_reused - reused_before : 0;
    result.prune.resolved_pairs = result.prune.pairs_total;
    if (obs::enabled()) HmObs::get().cluster_exact_evals.add(result.prune.exact_kernel_evals);

    const auto groups = [&] {
      const obs::StageTimer cluster_timer(obs::Stage::kClustering);
      const stats::Dendrogram dendrogram = stats::agglomerative_average_linkage(distances, n);
      return dendrogram.cut_top_fraction(config.cut_fraction);
    }();

    // Diameters of the clusters that carry similarity evidence.
    for (const auto& group : groups) {
      if (group.size() < config.min_cluster_size) continue;
      HostCluster cluster;
      for (const std::size_t idx : group) cluster.members.push_back(hosts[idx]);
      cluster.diameter = stats::cluster_diameter(distances, n, group);
      diameters.push_back(cluster.diameter);
      result.clusters.push_back(std::move(cluster));
    }
  }
  if (result.clusters.empty()) {
    finish();
    return result;
  }

  result.tau_hm = stats::quantile(diameters, config.diameter_percentile);
  for (HostCluster& cluster : result.clusters) {
    cluster.kept = cluster.diameter <= result.tau_hm;
    if (cluster.kept) {
      result.flagged.insert(result.flagged.end(), cluster.members.begin(),
                            cluster.members.end());
    }
  }
  std::sort(result.flagged.begin(), result.flagged.end());
  finish();
  return result;
}

LocalClusterResult human_machine_local(const FeatureMap& features, const HostSet& input,
                                       const HumanMachineConfig& config, HmCache* cache) {
  validate_config(config);
  LocalClusterResult result;
  const auto finish = [&result] {
    std::sort(result.skipped.begin(), result.skipped.end());
    std::sort(result.degenerate.begin(), result.degenerate.end());
  };

  // Floor of 1 instead of min_cluster_size: a shard with one or two eligible
  // hosts still exports them (the size floor is the merge stage's call).
  HmPrep prep = prepare_hm(features, input, config, cache, 1, result.skipped,
                           result.degenerate, result.degraded);
  if (!prep.ready) {
    finish();
    return result;
  }
  const std::vector<simnet::Ipv4>& hosts = prep.hosts;
  const std::vector<stats::Signature>& signatures = prep.signatures;

  const std::size_t n = hosts.size();
  result.prune.pairs_total = static_cast<std::uint64_t>(n) * (n - 1) / 2;

  const auto emit_cluster = [&](const std::vector<std::size_t>& group, double diameter,
                                std::size_t medoid_local) {
    LocalCluster cluster;
    cluster.members.reserve(group.size());
    for (const std::size_t idx : group) cluster.members.push_back(hosts[idx]);
    cluster.diameter = diameter;
    cluster.medoid = hosts[group[medoid_local]];
    cluster.medoid_signature = signatures[group[medoid_local]];
    result.clusters.push_back(std::move(cluster));
  };

  if (n == 1) {
    emit_cluster({0}, 0.0, 0);
    finish();
    return result;
  }

  const bool use_pruned =
      config.pruning == HmPruning::kPruned ||
      (config.pruning == HmPruning::kAuto && n >= config.prune_min_hosts);

  if (use_pruned) {
    PrunedStage stage(signatures, hosts, prep.hashes, config, cache);
    stats::PruneCounters counters;
    const auto groups = [&] {
      const obs::StageTimer cluster_timer(obs::Stage::kClustering);
      return stats::average_linkage_cut_pruned(
          n, [&stage](std::size_t i, std::size_t j) { return stage.leaf_distance(i, j); },
          stage.features(), config.cut_fraction, stage.prune_options(), &counters);
    }();

    for (const auto& group : groups) {
      const auto [diameter, medoid] = stage.group_diameter_and_medoid(group);
      emit_cluster(group, diameter, medoid);
    }

    stage.retain_into_cache();
    result.prune.used = true;
    result.prune.exact_kernel_evals = stage.kernel_evals();
    result.prune.cache_hits = stage.cache_hits();
    result.prune.resolved_pairs = stage.resolved_pairs();
    result.prune.pivots = stage.pivot_count();
    result.prune.scanned = counters.scanned;
    result.prune.skipped_pivot = counters.skipped_pivot;
    result.prune.skipped_grid = counters.skipped_grid;
    result.prune.scan_cache_hits = counters.scan_cache_hits;
    result.prune.bloom_skips = counters.bloom_skips;
    if (obs::enabled()) {
      HmObs& o = HmObs::get();
      o.distances_computed.add(stage.kernel_evals());
      o.distances_reused.add(stage.cache_hits());
      o.prune_exact.add(stage.kernel_evals());
      o.prune_skipped_pivot.add(counters.skipped_pivot);
      o.prune_skipped_grid.add(counters.skipped_grid);
      o.cluster_scan_cache_hits.add(counters.scan_cache_hits);
      o.cluster_bloom_skips.add(counters.bloom_skips);
      o.cluster_exact_evals.add(stage.kernel_evals());
    }
  } else {
    if (obs::enabled()) HmObs::get().dense_matrix.add(1);
    const std::uint64_t computed_before = cache != nullptr ? cache->distances_computed : 0;
    const std::uint64_t reused_before = cache != nullptr ? cache->distances_reused : 0;
    std::vector<double> distances;
    {
      const obs::StageTimer dist_timer(obs::Stage::kPairwiseDistance);
      distances = cache != nullptr
                      ? cached_distances(signatures, hosts, prep.hashes, config, *cache)
                  : config.distance == HmDistance::kBinL1
                      ? pairwise_bin_l1(signatures, config)
                      : stats::pairwise_emd(signatures, config.threads);
      if (cache == nullptr && obs::enabled())
        HmObs::get().distances_computed.add(result.prune.pairs_total);
    }
    result.prune.exact_kernel_evals =
        cache != nullptr ? cache->distances_computed - computed_before
                         : result.prune.pairs_total;
    result.prune.cache_hits = cache != nullptr ? cache->distances_reused - reused_before : 0;
    result.prune.resolved_pairs = result.prune.pairs_total;
    if (obs::enabled()) HmObs::get().cluster_exact_evals.add(result.prune.exact_kernel_evals);

    const auto groups = [&] {
      const obs::StageTimer cluster_timer(obs::Stage::kClustering);
      const stats::Dendrogram dendrogram = stats::agglomerative_average_linkage(distances, n);
      return dendrogram.cut_top_fraction(config.cut_fraction);
    }();

    for (const auto& group : groups) {
      double diameter = 0.0;
      std::size_t medoid = 0;
      std::vector<double> row_sum(group.size(), 0.0);
      for (std::size_t a = 0; a < group.size(); ++a) {
        for (std::size_t b = a + 1; b < group.size(); ++b) {
          const double v = distances[group[a] * n + group[b]];
          diameter = std::max(diameter, v);
          row_sum[a] += v;
          row_sum[b] += v;
        }
      }
      for (std::size_t a = 1; a < group.size(); ++a)
        if (row_sum[a] < row_sum[medoid]) medoid = a;
      emit_cluster(group, diameter, medoid);
    }
  }

  finish();
  return result;
}

}  // namespace tradeplot::detect
