// IPv4 address model for the campus simulation.
//
// Addresses are plain 32-bit values with helpers for textual form and subnet
// membership. The paper's vantage point is a border monitor of a campus with
// two /16 subnets; SubnetAllocator hands out "internal" addresses from
// configured prefixes and "external" addresses from the remaining space.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tradeplot::simnet {

/// An IPv4 address. Value type, totally ordered, hashable.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
               std::uint32_t{d}) {}

  /// Parses dotted-quad notation; throws util::ParseError on bad input.
  [[nodiscard]] static Ipv4 parse(const std::string& text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix, e.g. 128.2.0.0/16.
class Subnet {
 public:
  constexpr Subnet() = default;
  /// Throws util::ConfigError if prefix_len > 32.
  Subnet(Ipv4 base, int prefix_len);

  /// Parses "a.b.c.d/len".
  [[nodiscard]] static Subnet parse(const std::string& text);

  [[nodiscard]] bool contains(Ipv4 addr) const;
  [[nodiscard]] Ipv4 base() const { return base_; }
  [[nodiscard]] int prefix_len() const { return prefix_len_; }
  /// Number of addresses in the subnet (2^(32-len)).
  [[nodiscard]] std::uint64_t size() const;
  /// The i-th address of the subnet; throws std::out_of_range past the end.
  [[nodiscard]] Ipv4 at(std::uint64_t i) const;
  [[nodiscard]] std::string to_string() const;

 private:
  Ipv4 base_{};
  int prefix_len_ = 0;
  std::uint32_t mask_ = 0;
};

/// Allocates internal addresses sequentially from campus prefixes and
/// external addresses randomly from the rest of the address space
/// (excluding the campus prefixes and reserved ranges).
class SubnetAllocator {
 public:
  /// `internal` must be non-empty; throws util::ConfigError otherwise.
  SubnetAllocator(std::vector<Subnet> internal, util::Pcg32 rng);

  /// Next unused internal address; throws util::Error when exhausted.
  [[nodiscard]] Ipv4 next_internal();

  /// Uniformly random globally-routable external address.
  [[nodiscard]] Ipv4 random_external();

  [[nodiscard]] bool is_internal(Ipv4 addr) const;
  [[nodiscard]] const std::vector<Subnet>& internal_subnets() const { return internal_; }

 private:
  std::vector<Subnet> internal_;
  std::size_t subnet_idx_ = 0;
  std::uint64_t offset_ = 1;  // skip the network address
  util::Pcg32 rng_;
};

}  // namespace tradeplot::simnet

template <>
struct std::hash<tradeplot::simnet::Ipv4> {
  std::size_t operator()(tradeplot::simnet::Ipv4 addr) const noexcept {
    // Fibonacci hashing spreads sequential internal addresses well.
    return static_cast<std::size_t>(addr.value() * 2654435761u);
  }
};
