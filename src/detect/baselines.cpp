#include "detect/baselines.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "util/error.h"

namespace tradeplot::detect {

TdgResult tdg_test(const netflow::TraceSet& trace, const TdgConfig& config) {
  if (!config.is_internal) throw util::ConfigError("tdg_test: is_internal required");

  struct NodeDegrees {
    std::unordered_set<simnet::Ipv4> out;
    std::unordered_set<simnet::Ipv4> in;
  };
  std::unordered_map<simnet::Ipv4, NodeDegrees> graph;
  for (const netflow::FlowRecord& rec : trace.flows()) {
    if (config.successful_only && rec.failed()) continue;
    if (config.is_internal(rec.src)) graph[rec.src].out.insert(rec.dst);
    if (config.is_internal(rec.dst)) graph[rec.dst].in.insert(rec.src);
  }

  TdgResult result;
  std::size_t ino = 0;
  double degree_sum = 0.0;
  for (const auto& [host, degrees] : graph) {
    const std::size_t degree = degrees.out.size() + degrees.in.size();
    degree_sum += static_cast<double>(degree);
    const bool both = !degrees.out.empty() && !degrees.in.empty();
    if (both) ++ino;
    if (both && degree >= config.min_degree) result.flagged.push_back(host);
  }
  if (!graph.empty()) {
    result.average_degree = degree_sum / static_cast<double>(graph.size());
    result.ino_ratio = static_cast<double>(ino) / static_cast<double>(graph.size());
  }
  std::sort(result.flagged.begin(), result.flagged.end());
  return result;
}

double timing_entropy(const HostFeatures& features, const EntropyTestConfig& config) {
  if (features.interstitials.size() < config.min_samples) return -1.0;
  const stats::Histogram hist(features.interstitials, config.bin_width);
  double entropy = 0.0;
  for (const double p : hist.pmf()) {
    if (p > 0.0) entropy -= p * std::log2(p);
  }
  return entropy;
}

HostSet entropy_test(const FeatureMap& features, const HostSet& input,
                     const EntropyTestConfig& config) {
  std::vector<double> entropies;
  std::vector<std::pair<simnet::Ipv4, double>> per_host;
  for (const simnet::Ipv4 host : input) {
    const auto it = features.find(host);
    if (it == features.end())
      throw util::ConfigError("entropy_test: host missing from feature map");
    const double h = timing_entropy(it->second, config);
    if (h < 0.0) continue;  // too few samples to judge
    entropies.push_back(h);
    per_host.emplace_back(host, h);
  }
  if (entropies.empty()) return {};
  const double tau = stats::quantile(entropies, config.percentile);
  HostSet out;
  for (const auto& [host, h] : per_host) {
    if (h <= tau) out.push_back(host);
  }
  std::sort(out.begin(), out.end());
  return out;
}

PersistenceResult persistence_test(const netflow::TraceSet& trace,
                                   const PersistenceTestConfig& config) {
  if (!config.is_internal) throw util::ConfigError("persistence_test: is_internal required");
  if (config.slot_length <= 0.0)
    throw util::ConfigError("persistence_test: slot_length must be > 0");

  // Atom = destination /24 (Giroire et al. aggregate addresses into atoms
  // so a service's load-balanced frontends count as one destination).
  const auto atom_of = [](simnet::Ipv4 dst) { return dst.value() >> 8; };

  struct HostState {
    // atom -> set of slot indices with at least one contact
    std::unordered_map<std::uint32_t, std::set<std::int64_t>> atom_slots;
    std::int64_t first_slot = std::numeric_limits<std::int64_t>::max();
    std::int64_t last_slot = std::numeric_limits<std::int64_t>::min();
  };
  std::unordered_map<simnet::Ipv4, HostState> hosts;
  for (const netflow::FlowRecord& rec : trace.flows()) {
    if (!config.is_internal(rec.src)) continue;
    const auto slot = static_cast<std::int64_t>(rec.start_time / config.slot_length);
    HostState& state = hosts[rec.src];
    state.atom_slots[atom_of(rec.dst)].insert(slot);
    state.first_slot = std::min(state.first_slot, slot);
    state.last_slot = std::max(state.last_slot, slot);
  }

  PersistenceResult result;
  for (const auto& [host, state] : hosts) {
    const auto active_span =
        static_cast<double>(state.last_slot - state.first_slot + 1);
    std::size_t persistent_atoms = 0;
    double best = 0.0;
    for (const auto& [atom, slots] : state.atom_slots) {
      if (slots.size() < config.min_active_slots) continue;
      const double persistence = static_cast<double>(slots.size()) / active_span;
      best = std::max(best, persistence);
      if (persistence >= config.persistence_threshold) ++persistent_atoms;
    }
    if (config.min_persistent_atoms > 0 && persistent_atoms >= config.min_persistent_atoms) {
      result.flagged.push_back(host);
      result.max_persistence.emplace(host, best);
    }
  }
  std::sort(result.flagged.begin(), result.flagged.end());
  return result;
}

}  // namespace tradeplot::detect
