#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/error.h"

namespace tradeplot::obs {

namespace detail {

std::size_t thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot & (kShards - 1);
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::string_view to_string(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Counter

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Gauge

std::uint64_t Gauge::to_bits(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }
double Gauge::from_bits(std::uint64_t b) noexcept { return std::bit_cast<double>(b); }

void Gauge::add(double delta) noexcept {
  std::uint64_t observed = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(observed, to_bits(from_bits(observed) + delta),
                                      std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (!(bounds_[i] < bounds_[i + 1]))
      throw util::ConfigError("metrics: histogram bounds must be strictly increasing");
  }
  for (const double b : bounds_) {
    if (!std::isfinite(b))
      throw util::ConfigError("metrics: histogram bounds must be finite (+Inf is implicit)");
  }
  for (Shard& s : shards_) {
    s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
      s.buckets[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) noexcept {
  // First bound >= v is the Prometheus `le` bucket; past the end lands in
  // the implicit +Inf slot (index bounds_.size()). NaN observations count
  // toward +Inf, matching client_golang.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  Shard& s = shards_[detail::thread_shard()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t observed = s.sum_bits.load(std::memory_order_relaxed);
  while (!s.sum_bits.compare_exchange_weak(
      observed, std::bit_cast<std::uint64_t>(std::bit_cast<double>(observed) + v),
      std::memory_order_relaxed)) {
  }
}

HistogramValue Histogram::collect() const {
  HistogramValue out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size(), 0);
  std::uint64_t overflow = 0;
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < bounds_.size(); ++i)
      out.counts[i] += s.buckets[i].load(std::memory_order_relaxed);
    overflow += s.buckets[bounds_.size()].load(std::memory_order_relaxed);
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += std::bit_cast<double>(s.sum_bits.load(std::memory_order_relaxed));
  }
  (void)overflow;  // implicit in count - sum(counts); kept explicit for clarity
  return out;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
      s.buckets[i].store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum_bits.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> exponential_buckets(double start, double factor, std::size_t n) {
  if (!(start > 0.0) || !(factor > 1.0))
    throw util::ConfigError("metrics: exponential_buckets needs start > 0 and factor > 1");
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = start;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> duration_buckets() { return exponential_buckets(1e-6, 4.0, 14); }
std::vector<double> size_buckets() { return exponential_buckets(256.0, 16.0, 7); }
std::vector<double> count_buckets() { return exponential_buckets(1.0, 8.0, 9); }

// ---------------------------------------------------------------------------
// Registry

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto ok_first = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!ok_first(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!(ok_first(c) || (c >= '0' && c <= '9'))) return false;
  }
  return true;
}

bool valid_label_name(std::string_view name) {
  // Like a metric name, minus the colon (reserved for recording rules).
  return valid_metric_name(name) && name.find(':') == std::string_view::npos;
}

/// Key = name + labels in registration order; label values may contain any
/// byte, so lengths are baked in to keep the key unambiguous.
std::string instance_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += std::to_string(k.size());
    key += ':';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

}  // namespace

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Entry& Registry::find_or_create(MetricType type, std::string_view name,
                                          std::string_view help, Labels&& labels,
                                          std::vector<double>* bounds) {
  if (!valid_metric_name(name))
    throw util::ConfigError("metrics: invalid metric name '" + std::string(name) + "'");
  for (const auto& [k, v] : labels) {
    if (!valid_label_name(k))
      throw util::ConfigError("metrics: invalid label name '" + k + "' on " +
                              std::string(name));
  }

  const std::string key = instance_key(name, labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    Entry& entry = *entries_[it->second];
    if (entry.type != type)
      throw util::ConfigError("metrics: " + std::string(name) +
                              " re-registered as a different type");
    if (type == MetricType::kHistogram && bounds != nullptr &&
        entry.histogram->bounds() != *bounds)
      throw util::ConfigError("metrics: " + std::string(name) +
                              " re-registered with different buckets");
    return entry;
  }
  // One family, one type: a second label set under an existing name must
  // agree with the family's type (Prometheus families are homogeneous).
  for (const auto& existing : entries_) {
    if (existing->name == name && existing->type != type)
      throw util::ConfigError("metrics: family " + std::string(name) + " mixes types");
    if (existing->name == name && type == MetricType::kHistogram && bounds != nullptr &&
        existing->histogram->bounds() != *bounds)
      throw util::ConfigError("metrics: family " + std::string(name) +
                              " mixes bucket layouts");
  }

  auto entry = std::make_unique<Entry>();
  entry->type = type;
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->labels = std::move(labels);
  switch (type) {
    case MetricType::kCounter: entry->counter.reset(new Counter()); break;
    case MetricType::kGauge: entry->gauge.reset(new Gauge()); break;
    case MetricType::kHistogram:
      entry->histogram.reset(new Histogram(std::move(*bounds)));
      break;
  }
  entries_.push_back(std::move(entry));
  index_.emplace(key, entries_.size() - 1);
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help, Labels labels) {
  return *find_or_create(MetricType::kCounter, name, help, std::move(labels), nullptr).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help, Labels labels) {
  return *find_or_create(MetricType::kGauge, name, help, std::move(labels), nullptr).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds, Labels labels) {
  if (bounds.empty())
    throw util::ConfigError("metrics: histogram " + std::string(name) + " needs buckets");
  return *find_or_create(MetricType::kHistogram, name, help, std::move(labels), &bounds)
              .histogram;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snap.samples.reserve(entries_.size());
    for (const auto& entry : entries_) {
      SnapshotSample s;
      s.name = entry->name;
      s.help = entry->help;
      s.type = entry->type;
      s.labels = entry->labels;
      switch (entry->type) {
        case MetricType::kCounter:
          s.value = static_cast<double>(entry->counter->value());
          break;
        case MetricType::kGauge: s.value = entry->gauge->value(); break;
        case MetricType::kHistogram: s.histogram = entry->histogram->collect(); break;
      }
      snap.samples.push_back(std::move(s));
    }
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const SnapshotSample& a, const SnapshotSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    switch (entry->type) {
      case MetricType::kCounter: entry->counter->reset(); break;
      case MetricType::kGauge: entry->gauge->reset(); break;
      case MetricType::kHistogram: entry->histogram->reset(); break;
    }
  }
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace tradeplot::obs
