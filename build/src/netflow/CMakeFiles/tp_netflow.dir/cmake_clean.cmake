file(REMOVE_RECURSE
  "CMakeFiles/tp_netflow.dir/classifier.cpp.o"
  "CMakeFiles/tp_netflow.dir/classifier.cpp.o.d"
  "CMakeFiles/tp_netflow.dir/flow_emit.cpp.o"
  "CMakeFiles/tp_netflow.dir/flow_emit.cpp.o.d"
  "CMakeFiles/tp_netflow.dir/flow_key.cpp.o"
  "CMakeFiles/tp_netflow.dir/flow_key.cpp.o.d"
  "CMakeFiles/tp_netflow.dir/flow_record.cpp.o"
  "CMakeFiles/tp_netflow.dir/flow_record.cpp.o.d"
  "CMakeFiles/tp_netflow.dir/flow_table.cpp.o"
  "CMakeFiles/tp_netflow.dir/flow_table.cpp.o.d"
  "CMakeFiles/tp_netflow.dir/io.cpp.o"
  "CMakeFiles/tp_netflow.dir/io.cpp.o.d"
  "CMakeFiles/tp_netflow.dir/trace_set.cpp.o"
  "CMakeFiles/tp_netflow.dir/trace_set.cpp.o.d"
  "libtp_netflow.a"
  "libtp_netflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
