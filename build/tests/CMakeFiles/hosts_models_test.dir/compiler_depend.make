# Empty compiler generated dependencies file for hosts_models_test.
# This may be replaced when dependencies are built.
