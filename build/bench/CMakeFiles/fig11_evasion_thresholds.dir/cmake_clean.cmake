file(REMOVE_RECURSE
  "CMakeFiles/fig11_evasion_thresholds.dir/fig11_evasion_thresholds.cpp.o"
  "CMakeFiles/fig11_evasion_thresholds.dir/fig11_evasion_thresholds.cpp.o.d"
  "fig11_evasion_thresholds"
  "fig11_evasion_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_evasion_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
