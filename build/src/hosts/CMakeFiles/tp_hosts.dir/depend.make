# Empty dependencies file for tp_hosts.
# This may be replaced when dependencies are built.
