// Preprocessed flat signature storage for the θ_hm pairwise-distance kernels.
//
// emd_1d copies, normalizes, and sorts *both* signatures on every call, so an
// O(n²) pairwise sweep redoes O(n) sorts and heap allocations per signature —
// O(n²·m log m) redundant work. FlatSignatureSet hoists all of that into one
// preprocessing pass: every signature is validated, normalized to unit mass,
// sorted by position, and packed into contiguous structure-of-arrays storage
// (positions[], weights[], offsets[]). The per-pair kernel emd_1d_presorted
// is then a pure merge sweep over two spans — zero allocation, zero sorting,
// cache-friendly sequential reads.
//
// Determinism contract: emd_1d_presorted over FlatSignatureSet views performs
// the *identical* floating-point operation sequence as emd_1d on the raw
// signatures (same normalization order, same std::sort invocation on the same
// values, same sweep arithmetic), so the results are bit-identical to the
// reference kernel — and therefore bit-identical at every thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/histogram.h"

namespace tradeplot::stats {

/// One preprocessed signature inside a FlatSignatureSet: parallel spans of
/// sorted positions and matching normalized weights.
struct FlatSignatureView {
  const double* positions = nullptr;
  const double* weights = nullptr;
  std::size_t size = 0;
};

class FlatSignatureSet {
 public:
  /// Validates, normalizes, sorts, and packs all signatures in one pass.
  /// Validation happens serially up front — before any worker threads run —
  /// with the same pinned messages as emd_1d ("EMD: negative signature
  /// weight", "EMD: signature has no mass"), so a bad signature can never
  /// throw from inside a parallel_for worker. The normalize+sort pass runs
  /// on `threads` workers (resolve_threads semantics); each signature is
  /// packed into its own disjoint slice, so the packed data is identical
  /// for every thread count.
  explicit FlatSignatureSet(const std::vector<Signature>& sigs, std::size_t threads = 1);

  [[nodiscard]] std::size_t size() const { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t total_points() const { return positions_.size() - size(); }
  [[nodiscard]] FlatSignatureView view(std::size_t i) const {
    // Each slice is followed by one sentinel slot (+inf position, zero
    // weight) that the sweep kernel may load but never consumes; the view's
    // size excludes it.
    return FlatSignatureView{positions_.data() + offsets_[i], weights_.data() + offsets_[i],
                             offsets_[i + 1] - offsets_[i] - 1};
  }

  /// Four pair distances at once: out[l] receives a value bit-identical to
  /// emd_1d_presorted(view(a[l]), view(b[l])). Dispatches to the 4-lane AVX2
  /// merge sweep when available; each lane replays the scalar kernel's exact
  /// operation sequence, so this is safe wherever emd_1d_presorted is.
  void emd_x4(const std::size_t* a, const std::size_t* b, double* out) const;

 private:
  std::vector<double> positions_;
  std::vector<double> weights_;
  std::vector<std::size_t> offsets_;  // size() + 1 physical slice starts
};

/// Closed-form 1-D EMD over two preprocessed (normalized, position-sorted)
/// signatures: the CDF-difference merge sweep of emd_1d without its per-call
/// copy/normalize/sort, restructured branch-free. Allocation-free;
/// bit-identical to emd_1d(raw_a, raw_b) when the views come from a
/// FlatSignatureSet built over the same raw signatures. The views MUST come
/// from a FlatSignatureSet: the kernel relies on the one-past-end sentinel
/// slot the set packs after each slice.
[[nodiscard]] double emd_1d_presorted(const FlatSignatureView& a, const FlatSignatureView& b);

}  // namespace tradeplot::stats
