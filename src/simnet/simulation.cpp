#include "simnet/simulation.h"

#include <memory>
#include <utility>

namespace tradeplot::simnet {

void Simulation::schedule_at(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulation::schedule_after(SimTime delay, Callback fn) {
  schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
}

std::size_t Simulation::run_until(SimTime end) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= end) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle (std::function copy is cheap enough here).
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  if (now_ < end) now_ = end;
  return executed;
}

std::size_t Simulation::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  return executed;
}

void PeriodicProcess::start(Simulation& sim, SimTime first_delay, SimTime until,
                            NextDelay next_delay, Body body) {
  // The recursive lambda owns both closures via shared_ptr so the chain of
  // scheduled events keeps itself alive without an external registry.
  auto state = std::make_shared<std::pair<NextDelay, Body>>(std::move(next_delay),
                                                            std::move(body));
  auto step = std::make_shared<std::function<void()>>();
  *step = [&sim, until, state, step]() {
    if (sim.now() > until) return;
    state->second(sim.now());
    const double d = state->first();
    const SimTime next = sim.now() + (d > 0 ? d : 0);
    if (next <= until) sim.schedule_at(next, *step);
  };
  if (sim.now() + first_delay <= until) sim.schedule_after(first_delay, *step);
}

}  // namespace tradeplot::simnet
