#include "netflow/fault_injector.h"

#include <algorithm>

#include "util/rng.h"

namespace tradeplot::netflow {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFlippedByte: return "flipped-byte";
    case FaultKind::kTruncatedLine: return "truncated-line";
    case FaultKind::kGarbledLine: return "garbled-line";
    case FaultKind::kOutOfRangeField: return "out-of-range-field";
    case FaultKind::kMidRecordTruncation: return "mid-record-truncation";
  }
  return "?";
}

bool FaultReport::corrupted(std::size_t flow_index) const {
  return std::any_of(faults.begin(), faults.end(), [&](const InjectedFault& f) {
    return f.flow_index == flow_index;
  });
}

namespace {

/// Offset just past the `n`-th comma, or npos when the line has fewer.
std::size_t after_nth_comma(std::string_view line, std::size_t n) {
  std::size_t seen = 0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == ',' && ++seen == n) return i + 1;
  }
  return std::string_view::npos;
}

/// Cuts `line` to a prefix holding at most 11 commas, so the 13-field split
/// can never succeed. Length is seeded but always in [1, pos-of-12th-comma).
std::string truncate_line(std::string_view line, util::Pcg32& rng) {
  const std::size_t limit = after_nth_comma(line, 12);
  const std::size_t hi = (limit == std::string_view::npos ? line.size() : limit) - 1;
  const auto cut = static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(hi)));
  return std::string(line.substr(0, cut));
}

/// One byte XOR 0x80: every valid flow-line byte is ASCII (< 0x80), so the
/// result is invalid in any field — and if the victim is a comma, the field
/// count breaks instead.
std::string flip_byte(std::string_view line, util::Pcg32& rng) {
  std::string out(line);
  const auto pos =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
  out[pos] = static_cast<char>(static_cast<unsigned char>(out[pos]) ^ 0x80u);
  return out;
}

/// Comma-free junk (never 13 fields); first byte is not '#' so the line is
/// not mistaken for a comment.
std::string garble_line(util::Pcg32& rng) {
  static constexpr std::string_view kJunk = "~!@$%^&*()_=?<>xyzqwerty";
  const auto len = static_cast<std::size_t>(rng.uniform_int(3, 24));
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(kJunk[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kJunk.size()) - 1))]);
  return out;
}

/// Rewrites the sport or dport field (fields 2/3) to a value past 65535 —
/// syntactically clean, semantically impossible.
std::string out_of_range_field(std::string_view line, util::Pcg32& rng) {
  const bool sport = rng.chance(0.5);
  const std::size_t begin = after_nth_comma(line, sport ? 2 : 3);
  const std::size_t end = after_nth_comma(line, sport ? 3 : 4);
  if (begin == std::string_view::npos || end == std::string_view::npos)
    return flip_byte(line, rng);  // malformed input line; still corrupt it
  std::string out(line.substr(0, begin));
  out += sport ? "655360" : "99999";
  out += line.substr(end - 1);  // keep the trailing comma
  return out;
}

}  // namespace

std::string FaultInjector::corrupt_csv(std::string_view csv, FaultReport& report) const {
  report = FaultReport{};
  const util::Pcg32 root(config_.seed);

  // Index the input: split into lines and find the flow lines (everything
  // after the header row that is neither empty nor a comment).
  struct Line {
    std::string_view text;
    bool is_flow = false;
  };
  std::vector<Line> lines;
  bool header_seen = false;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t nl = csv.find('\n', pos);
    std::string_view text = csv.substr(pos, nl == std::string_view::npos ? csv.size() - pos
                                                                         : nl - pos);
    pos = nl == std::string_view::npos ? csv.size() : nl + 1;
    if (!text.empty() && text.back() == '\r') text.remove_suffix(1);
    Line line{text, false};
    if (!text.empty() && text[0] != '#') {
      if (!header_seen) {
        header_seen = true;  // the header row itself stays intact
      } else {
        line.is_flow = true;
        ++report.flow_lines;
      }
    }
    lines.push_back(line);
  }

  // The tail truncation consumes the last flow line; keep it out of the
  // per-line mutation pass so each flow index appears at most once in the
  // report.
  std::size_t last_flow_line = lines.size();
  if (config_.truncate_tail) {
    for (std::size_t i = lines.size(); i-- > 0;) {
      if (lines[i].is_flow) {
        last_flow_line = i;
        break;
      }
    }
  }

  std::string out;
  out.reserve(csv.size());
  std::size_t flow_index = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Line& line = lines[i];
    std::string text(line.text);
    bool crlf = false;
    if (line.is_flow && i != last_flow_line) {
      util::Pcg32 rng = root.split(flow_index);
      if (!text.empty() && rng.chance(config_.fault_rate)) {
        const auto kind = static_cast<FaultKind>(rng.uniform_int(0, 3));
        switch (kind) {
          case FaultKind::kFlippedByte: text = flip_byte(text, rng); break;
          case FaultKind::kTruncatedLine: text = truncate_line(text, rng); break;
          case FaultKind::kGarbledLine: text = garble_line(rng); break;
          default: text = out_of_range_field(text, rng); break;
        }
        report.faults.push_back({flow_index, i + 1, kind});
      } else if (rng.chance(config_.crlf_rate)) {
        crlf = true;
        ++report.crlf_lines;
      }
    }
    if (line.is_flow) ++flow_index;
    if (i == last_flow_line) {
      // Crash-mid-write image: the last record stops mid-way, unterminated.
      util::Pcg32 rng = root.split(0x7461696CULL + flow_index);
      out += truncate_line(text, rng);
      report.faults.push_back({flow_index - 1, i + 1, FaultKind::kMidRecordTruncation});
      break;
    }
    out += text;
    out += crlf ? "\r\n" : "\n";
  }
  return out;
}

}  // namespace tradeplot::netflow
