// Figure 6: ROC curves for the volume test θ_vol, thresholds at the
// 10/30/50/70/90-th percentiles, averaged over the eight days.
#include "bench/bench_util.h"

int main() {
  tradeplot::benchx::run_roc_bench(
      tradeplot::eval::SweepTest::kVolume,
      "Figure 6 - ROC of theta_vol (Storm & Nugache overlaid, after data reduction)",
      "Fig. 6: Storm's TP reaches ~100% even at mid thresholds while the FP\n"
      "rate grows roughly with the percentile (the test alone is coarse -\n"
      "FP can reach ~90% at p90); Storm dominates Nugache everywhere.\n"
      "Expect: storm TP ~1.0 by p50; both curves near the diagonal or\n"
      "above; Nugache below Storm.");
  return 0;
}
