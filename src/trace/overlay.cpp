#include "trace/overlay.h"

#include "trace/campus.h"

#include <algorithm>

#include "util/error.h"

namespace tradeplot::trace {

OverlayResult overlay_bots(const netflow::TraceSet& campus, const netflow::TraceSet& bots,
                           util::Pcg32& rng, const OverlayOptions& options) {
  OverlayResult result;
  result.combined = campus;

  const std::vector<simnet::Ipv4> bot_ips = [&] {
    std::vector<simnet::Ipv4> ips;
    for (const auto& [ip, kind] : bots.truth()) ips.push_back(ip);
    std::sort(ips.begin(), ips.end());  // unordered_map order is not stable
    return ips;
  }();

  std::vector<simnet::Ipv4> active = campus.initiators();
  const auto internal = options.is_internal ? options.is_internal
                                            : [](simnet::Ipv4 ip) { return campus_internal(ip); };
  std::erase_if(active, [&](simnet::Ipv4 ip) { return !internal(ip); });
  if (!options.exclude_hosts.empty()) {
    std::vector<simnet::Ipv4> excluded = options.exclude_hosts;
    std::sort(excluded.begin(), excluded.end());
    std::erase_if(active, [&](simnet::Ipv4 ip) {
      return std::binary_search(excluded.begin(), excluded.end(), ip);
    });
  }
  if (bot_ips.size() > active.size())
    throw util::ConfigError("overlay: more bots than active campus hosts");
  rng.shuffle(active);

  const double campus_len = campus.window_end() - campus.window_start();
  const double bot_len = bots.window_end() - bots.window_start();

  for (std::size_t b = 0; b < bot_ips.size(); ++b) {
    const simnet::Ipv4 bot_ip = bot_ips[b];
    const simnet::Ipv4 host_ip = active[b];
    result.bot_to_host.emplace(bot_ip, host_ip);
    result.bot_hosts.push_back(host_ip);
    result.combined.set_truth(host_ip, bots.kind_of(bot_ip));

    // Window-length slice of this bot's trace, shifted into the campus
    // window. Each bot gets its own slice offset, as each honeynet machine
    // was recorded on its own clock relative to the campus day.
    double slice_start = bots.window_start();
    if (options.random_slice && bot_len > campus_len) {
      slice_start += rng.uniform(0.0, bot_len - campus_len);
    }
    const double shift = campus.window_start() - slice_start;

    for (const netflow::FlowRecord& rec : bots.flows()) {
      if (rec.src != bot_ip) continue;
      if (rec.start_time < slice_start || rec.start_time >= slice_start + campus_len) continue;
      netflow::FlowRecord moved = rec;
      moved.src = host_ip;
      moved.start_time += shift;
      moved.end_time += shift;
      result.combined.add_flow(std::move(moved));
    }
  }
  result.combined.sort_by_time();
  return result;
}

}  // namespace tradeplot::trace
