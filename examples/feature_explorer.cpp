// Feature explorer: prints, per ground-truth host kind, the distribution of
// every feature the detector uses, and how each kind fares at each pipeline
// stage. This is the lens used to understand *why* FindPlotters flags what
// it flags on a given trace.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "detect/find_plotters.h"
#include "eval/day.h"
#include "stats/descriptive.h"
#include "util/format.h"

using namespace tradeplot;

namespace {

std::string kind_name(const eval::DayData& day, simnet::Ipv4 host) {
  if (day.is_storm(host)) return "STORM-carrier";
  if (day.is_nugache(host)) return "NUGACHE-carrier";
  return std::string(netflow::to_string(day.combined.kind_of(host)));
}

void print_quantiles(const char* label, std::vector<double>& v) {
  if (v.empty()) return;
  std::sort(v.begin(), v.end());
  std::printf("    %-28s n=%-5zu p10=%-12.4g p50=%-12.4g p90=%-12.4g\n", label, v.size(),
              stats::quantile_sorted(v, 0.1), stats::quantile_sorted(v, 0.5),
              stats::quantile_sorted(v, 0.9));
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  botnet::HoneynetConfig honeynet;
  honeynet.seed = seed;
  const auto storm = botnet::generate_storm_trace(honeynet);
  const auto nugache = botnet::generate_nugache_trace(honeynet);
  trace::CampusConfig campus;
  campus.seed = seed;
  const eval::DayData day = eval::make_day(campus, storm, nugache, 0);

  // Group features by host kind.
  std::map<std::string, std::vector<const detect::HostFeatures*>> by_kind;
  for (const auto& [host, f] : day.features) by_kind[kind_name(day, host)].push_back(&f);

  std::printf("=== per-kind feature distributions (one day, seed %llu) ===\n",
              static_cast<unsigned long long>(seed));
  for (auto& [kind, fs] : by_kind) {
    std::printf("  %s (%zu hosts)\n", kind.c_str(), fs.size());
    std::vector<double> failed, vol, churn, flows, samples;
    for (const auto* f : fs) {
      failed.push_back(f->failed_rate());
      vol.push_back(f->volume(detect::VolumeMetric::kSentPerFlow));
      churn.push_back(f->new_ip_fraction());
      flows.push_back(static_cast<double>(f->flows_initiated));
      samples.push_back(static_cast<double>(f->interstitials.size()));
    }
    print_quantiles("failed_rate", failed);
    print_quantiles("avg_bytes_sent_per_flow", vol);
    print_quantiles("new_ip_fraction", churn);
    print_quantiles("flows_initiated", flows);
    print_quantiles("interstitial_samples", samples);
  }

  const detect::FindPlottersResult run = detect::find_plotters(day.features);
  std::printf("\n=== pipeline survival by kind ===\n");
  const std::pair<const char*, const detect::HostSet*> stages[] = {
      {"input", &run.input},          {"reduced", &run.reduced},   {"S_vol", &run.s_vol},
      {"S_churn", &run.s_churn},      {"union", &run.vol_or_churn}, {"flagged", &run.plotters},
  };
  std::printf("    %-16s", "kind");
  for (const auto& [name, set] : stages) std::printf("%10s", name);
  std::printf("\n");
  for (const auto& [kind, fs] : by_kind) {
    std::printf("    %-16s", kind.c_str());
    for (const auto& [name, set] : stages) {
      int count = 0;
      for (const simnet::Ipv4 host : *set)
        if (kind_name(day, host) == kind) ++count;
      std::printf("%10d", count);
    }
    std::printf("\n");
  }

  std::printf("\n=== theta_hm cluster report ===\n");
  std::printf("  tau_hm = %.4f; %zu clusters (size >= 2), %zu hosts skipped (few samples)\n",
              run.hm.tau_hm, run.hm.clusters.size(), run.hm.skipped.size());
  for (const auto& cluster : run.hm.clusters) {
    std::map<std::string, int> mix;
    for (const simnet::Ipv4 host : cluster.members) mix[kind_name(day, host)] += 1;
    std::printf("  cluster size=%-3zu diam=%-8.4f kept=%d  [", cluster.members.size(),
                cluster.diameter, cluster.kept ? 1 : 0);
    for (const auto& [kind, count] : mix) std::printf(" %s:%d", kind.c_str(), count);
    std::printf(" ]\n");
  }
  return 0;
}
