// θ_hm — the human-driven vs. machine-driven test (§IV-C).
//
// Pipeline: per host, approximate the per-destination flow interstitial-time
// distribution with a Freedman–Diaconis histogram; compare hosts by Earth
// Mover's Distance; cluster agglomeratively (average linkage); form final
// clusters by cutting the top 5% heaviest dendrogram links; keep clusters
// whose diameter is at most τ_hm, set as a percentile of the observed
// cluster diameters. Machine-driven hosts running the same bot binary share
// timer constants, land in tight clusters, and survive; human-driven hosts'
// irregular timing inflates their cluster diameters.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "detect/features.h"
#include "detect/tests.h"
#include "stats/histogram.h"

namespace tradeplot::detect {

class HmCache;

/// Distance between per-host interstitial-time histograms.
///
///  * kEmd         — EMD with |seconds| ground distance between bin
///                   centres (the paper's metric; default).
///  * kEmdBinIndex — EMD with bin-*index* ground distance, the other
///                   reading of "c_ij [is] the distance between the i-th
///                   and j-th bins" (§IV-C). Normalizing each histogram by
///                   its own FD width turns out to *invert* the geometry
///                   (human hosts collapse onto one shape); kept as an
///                   ablation (bench/ablation_distance).
///  * kBinL1       — plain L1 over a fixed common binning (ablation): blind
///                   to *how far* mass moved, the weakness EMD avoids.
enum class HmDistance { kEmd, kEmdBinIndex, kBinL1 };

/// Strategy for the pairwise-distance + clustering stage.
///
///  * kExhaustive — dense n×n distance matrix, every pair through the exact
///    kernel (the reference path).
///  * kPruned     — lazy clustering over a pruned-neighbor index: pivot
///    triangle-inequality and bin-L1 grid lower bounds gate which pairs pay
///    the exact kernel; distances resolve on demand into a sparse store.
///    Verdicts are bit-identical to kExhaustive by construction (see
///    stats::agglomerative_average_linkage_pruned), only cheaper.
///  * kAuto       — kPruned from prune_min_hosts eligible hosts upward,
///    kExhaustive below (at small n the dense path's fixed costs win).
enum class HmPruning { kAuto, kExhaustive, kPruned };

struct HumanMachineConfig {
  /// τ_hm as a percentile of cluster diameters (paper sweeps 10..90th and
  /// uses the 70th in FindPlotters).
  double diameter_percentile = 0.7;
  /// Fraction of heaviest dendrogram links removed to form clusters. The
  /// paper cuts the top 5%; the right depth is data-dependent (it must
  /// reach down past the point where the bots' tight cluster attaches to
  /// the human mass), and on this simulator's traffic mix 25% is the knee —
  /// see bench/ablation_distance for the sweep.
  double cut_fraction = 0.25;
  /// Hosts with fewer interstitial samples than this cannot produce a
  /// meaningful histogram and are excluded (they cannot be flagged).
  std::size_t min_samples = 40;
  /// Clusters below this size carry too little cross-host similarity
  /// evidence and are never returned (a singleton trivially has diameter 0;
  /// a pair is a single coincidence).
  std::size_t min_cluster_size = 3;
  /// 0 = Freedman-Diaconis per host (the paper); > 0 = fixed bin width in
  /// seconds (ablation: fixed widths are easier for a bot to reason about).
  /// Must be finite and non-negative: a negative or non-finite width is a
  /// misconfiguration and is rejected with util::ConfigError rather than
  /// silently falling back to a default grid.
  double fixed_bin_width = 0.0;
  HmDistance distance = HmDistance::kEmd;
  /// Distance/clustering strategy; see HmPruning.
  HmPruning pruning = HmPruning::kAuto;
  /// kAuto switches to the pruned path at this many eligible hosts.
  std::size_t prune_min_hosts = 64;
  /// Pivot leaves for the triangle-inequality tier (clamped to the host
  /// count). More pivots = tighter bounds at n·pivots extra exact
  /// evaluations. Benched across 256..4096 hosts the marginal pivot saves
  /// fewer resolutions than its column costs — eval counts and wall-clock
  /// were best at 2-3 pivots at every size — so the default stays low and
  /// keeps one spare pivot beyond the first two spread directions.
  std::size_t prune_pivots = 3;
  /// Bins of the shared-grid bin-L1 lower-bound tier (EMD distances only;
  /// 0 disables the tier).
  std::size_t prune_grid_bins = 64;
  /// Worker threads for the O(n^2) kernels (per-host signature build and
  /// the pairwise distance matrix). 0 = the TRADEPLOT_THREADS environment
  /// variable, else hardware concurrency; 1 = the serial reference path.
  /// Every thread count produces bit-identical results.
  std::size_t threads = 0;
  /// Fill the per-phase wall-clock fields of HmPruneStats (pivot build,
  /// bound scans, exact kernel time, replay time). Off by default: timing
  /// reads a clock inside the clustering hot loops, which the benches want
  /// and the detectors do not pay for.
  bool collect_phase_timing = false;
};

struct HostCluster {
  std::vector<simnet::Ipv4> members;
  double diameter = 0.0;
  bool kept = false;  // survived the τ_hm filter
};

/// Work accounting for one θ_hm distance/clustering stage. On the pruned
/// path `used` is true and the counters describe how much of the quadratic
/// pair space was actually paid for; on the exhaustive path only
/// pairs_total / exact_kernel_evals / cache_hits are meaningful.
struct HmPruneStats {
  bool used = false;                      // pruned path taken
  std::uint64_t pairs_total = 0;          // n(n-1)/2 over eligible hosts
  std::uint64_t exact_kernel_evals = 0;   // exact kernel invocations
  std::uint64_t cache_hits = 0;           // pairs served by the HmCache
  std::uint64_t resolved_pairs = 0;       // distinct leaf pairs with exact values
  std::uint64_t pivots = 0;               // pivot leaves used
  std::uint64_t scanned = 0;              // NN-scan candidate evaluations
  std::uint64_t skipped_pivot = 0;        // pruned by the pivot bound
  std::uint64_t skipped_grid = 0;         // pruned by the grid bound
  std::uint64_t scan_cache_hits = 0;      // NN scans served by the candidate cache
  std::uint64_t bloom_skips = 0;          // memo probes skipped by the Bloom gate
  // Per-phase wall-clock, filled only under config.collect_phase_timing
  // (zero otherwise): neighbor-index construction, lower/upper-bound scans,
  // exact kernel evaluations, and Lance-Williams replay of memoized values.
  double pivot_build_ms = 0.0;
  double bound_scan_ms = 0.0;
  double exact_eval_ms = 0.0;
  double replay_ms = 0.0;
};

struct HumanMachineResult {
  HostSet flagged;                    // union of kept clusters
  std::vector<HostCluster> clusters;  // every cluster of size >= min_cluster_size
  double tau_hm = 0.0;                // the diameter threshold used
  HostSet skipped;                    // hosts with too few samples or degenerate evidence
  /// Hosts whose timing evidence could not produce a valid signature (empty
  /// or non-finite interstitials, zero-mass histograms). They are skipped —
  /// and counted in `skipped` too — instead of aborting the whole window.
  HostSet degenerate;
  /// True when at least one host was dropped as degenerate: the verdict is
  /// complete over the remaining hosts but did not assess the dropped ones.
  bool degraded = false;
  HmPruneStats prune;
};

/// Runs θ_hm over `input`. Returns the flagged set plus full diagnostics.
///
/// When `cache` is non-null, per-host signatures and pairwise distances are
/// reused across calls for hosts whose timing buffers (content-hashed) are
/// unchanged, and only the changed hosts' signatures and matrix rows are
/// recomputed — the streaming detector's cross-window warm path. Cached
/// values were produced by the same kernels on identical inputs, so the
/// result is bit-identical with and without the cache, at every thread
/// count.
///
/// The distance/clustering stage follows config.pruning: the pruned path
/// produces bit-identical verdicts to the exhaustive one while evaluating
/// the exact kernel only for pairs the lower bounds cannot exclude, and
/// keeps memory at O(resolved pairs) instead of the dense n×n matrix (the
/// fully cache-warm window allocates no quadratic storage at all). Hosts
/// with degenerate timing evidence are skipped and accounted
/// (result.degenerate / result.degraded) instead of failing the window.
/// Throws util::ConfigError on a negative or non-finite
/// config.fixed_bin_width.
[[nodiscard]] HumanMachineResult human_machine_test(const FeatureMap& features,
                                                    const HostSet& input,
                                                    const HumanMachineConfig& config = {},
                                                    HmCache* cache = nullptr);

/// One shard-local θ_hm cluster exported to the global merge stage of the
/// sharded detector (src/shard/merge.h): its members, its exact diameter
/// under the configured distance, and a medoid representative — the member
/// minimizing the sum of distances to the other members (ties by smallest
/// address) — whose signature stands for the whole cluster in the global
/// weighted agglomeration. Unlike HostCluster, singletons and pairs are
/// exported too: a shard cannot know whether its lone bot joins a big
/// cluster on another shard.
struct LocalCluster {
  std::vector<simnet::Ipv4> members;  // ascending addresses
  double diameter = 0.0;              // exact max pairwise distance (0 below size 2)
  simnet::Ipv4 medoid;
  stats::Signature medoid_signature;
};

struct LocalClusterResult {
  std::vector<LocalCluster> clusters;  // every cluster, singletons included
  HostSet skipped;                     // too few samples (plus the degenerate)
  HostSet degenerate;
  bool degraded = false;
  HmPruneStats prune;
};

/// Shard-local first level of the two-level θ_hm clustering: the same
/// eligibility screen, signature build, UPGMA and top-fraction cut as
/// human_machine_test over this shard's hosts, but with *every* resulting
/// cluster exported (no min_cluster_size floor, no τ_hm filter — both are
/// global decisions the merge stage makes) together with its exact diameter
/// and medoid signature. Shares the HmCache warm path and the pruned
/// drivers; deterministic for a given input at every thread count.
[[nodiscard]] LocalClusterResult human_machine_local(const FeatureMap& features,
                                                     const HostSet& input,
                                                     const HumanMachineConfig& config = {},
                                                     HmCache* cache = nullptr);

/// The kBinL1 distance matrix (the ablation alternative to EMD): every
/// signature is re-binned once onto an absolute grid of width
/// config.fixed_bin_width (60 s when unset) anchored at 0 — a dense
/// per-signature bin vector when the population's bin span is modest, a
/// sorted sparse one otherwise (bit-identical either way) — and the per-pair
/// kernel is a straight allocation-free L1 sweep over two flat arrays.
/// Signatures are validated up front (pinned ConfigError messages "bin-L1:
/// negative signature weight" / "bin-L1: signature has no mass", thrown
/// before any worker runs). Exposed for the ablation and pairwise benches;
/// entry [i*n + j] as in stats::pairwise_emd.
[[nodiscard]] std::vector<double> pairwise_bin_l1(const std::vector<stats::Signature>& sigs,
                                                  const HumanMachineConfig& config);

}  // namespace tradeplot::detect
