#include "netflow/trace_reader.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <chrono>
#include <cstring>
#include <exception>
#include <fstream>
#include <istream>
#include <limits>
#include <mutex>
#include <type_traits>
#include <string_view>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/fd_stream.h"
#include "util/stream_retry.h"

namespace tradeplot::netflow {

namespace {

/// Ingest metric handles, registered together on first enabled use so every
/// family (including zero-valued ones) shows up in a scrape as soon as any
/// trace is read.
struct IngestObs {
  obs::Counter& records_ok = obs::Registry::global().counter(
      "tradeplot_ingest_records_total", "Trace records processed, by outcome",
      {{"result", "ok"}});
  obs::Counter& records_quarantined = obs::Registry::global().counter(
      "tradeplot_ingest_records_total", "Trace records processed, by outcome",
      {{"result", "quarantined"}});
  obs::Counter& resync_events = obs::Registry::global().counter(
      "tradeplot_ingest_resync_events_total",
      "Recovery runs: maximal bursts of consecutive malformed records");
  obs::Counter& bytes = obs::Registry::global().counter(
      "tradeplot_ingest_bytes_total", "Raw trace bytes pulled from the input stream");
  obs::Histogram& record_seconds = obs::Registry::global().histogram(
      "tradeplot_ingest_record_seconds",
      "Latency of pulling and decoding one trace record", obs::duration_buckets());
  obs::Counter& batches = obs::Registry::global().counter(
      "tradeplot_ingest_batches_total", "Columnar flow batches decoded by next_batch");

  static IngestObs& get() {
    static IngestObs o;
    return o;
  }
};

constexpr std::string_view kCsvHeader =
    "src,dst,sport,dport,proto,start,end,pkts_src,pkts_dst,bytes_src,bytes_dst,state,payload";

constexpr std::uint32_t kBinMagic = 0x54504654;  // "TPFT"
constexpr std::uint32_t kBinVersion = 1;
/// Binary v3: same preamble as v1, but the record stream is column blocks
/// (see read_columnar_block / io.h's write_binary_columnar). Version 2 is
/// reserved (the checkpoint format's payload v2 shipped between the two).
constexpr std::uint32_t kBinVersionColumnar = 3;

// ---------------------------------------------------------------------------
// Field decoding: locale-free, range-checked, allocation-free.

[[noreturn]] void bad_field(std::size_t lineno, const char* name, std::string_view value) {
  throw util::ParseError("line " + std::to_string(lineno) + ": bad " + name + " '" +
                         std::string(value) + "'");
}

template <typename T>
T parse_number(std::string_view s, std::size_t lineno, const char* name) {
  T value{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) bad_field(lineno, name, s);
  return value;
}

// Unsigned decimal fast path: a plain accumulate loop beats from_chars for
// the short counters that dominate a flow line (2 ports + 4 pkts/bytes
// fields). Up to 19 digits cannot overflow uint64; longer inputs defer to
// from_chars, which range-checks exactly.
template <typename T>
T parse_uint(std::string_view s, std::size_t lineno, const char* name) {
  static_assert(std::is_unsigned_v<T>);
  if (s.empty() || s.size() > 19) return parse_number<T>(s, lineno, name);
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') bad_field(lineno, name, s);
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value > std::numeric_limits<T>::max()) bad_field(lineno, name, s);
  return static_cast<T>(value);
}

// Hand-rolled dotted-quad parser: ~2x faster than four from_chars calls on
// the ingestion hot path (two addresses per flow line).
simnet::Ipv4 parse_ipv4(std::string_view s, std::size_t lineno, const char* name) {
  std::uint32_t value = 0;
  const char* p = s.data();
  const char* const end = s.data() + s.size();
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (p == end || *p != '.') bad_field(lineno, name, s);
      ++p;
    }
    if (p == end || *p < '0' || *p > '9') bad_field(lineno, name, s);
    unsigned byte = static_cast<unsigned>(*p++ - '0');
    while (p != end && *p >= '0' && *p <= '9') {
      byte = byte * 10 + static_cast<unsigned>(*p++ - '0');
      if (byte > 255) bad_field(lineno, name, s);
    }
    value = (value << 8) | byte;
  }
  if (p != end) bad_field(lineno, name, s);
  return simnet::Ipv4(value);
}

/// hex digit -> value, -1 for non-hex bytes; merged validity check keeps the
/// payload decode loop branch-light.
constexpr std::array<std::int8_t, 256> make_hex_table() {
  std::array<std::int8_t, 256> t{};
  for (auto& v : t) v = -1;
  for (int c = '0'; c <= '9'; ++c) t[static_cast<std::size_t>(c)] = static_cast<std::int8_t>(c - '0');
  for (int c = 'a'; c <= 'f'; ++c) t[static_cast<std::size_t>(c)] = static_cast<std::int8_t>(c - 'a' + 10);
  for (int c = 'A'; c <= 'F'; ++c) t[static_cast<std::size_t>(c)] = static_cast<std::int8_t>(c - 'A' + 10);
  return t;
}
constexpr std::array<std::int8_t, 256> kHexTable = make_hex_table();

/// Splits `line` on `sep` into at most `max` fields in a single pass.
/// Returns the field count, or max + 1 if the line has more fields than
/// `max` (the caller treats both a shortfall and an overflow as a
/// field-count error).
std::size_t split_fields(std::string_view line, char sep, std::string_view* out,
                         std::size_t max) {
  std::size_t count = 0;
  const char* field = line.data();
  const char* const end = line.data() + line.size();
  for (const char* p = field; p != end; ++p) {
    if (*p == sep) {
      if (count == max) return max + 1;
      out[count++] = std::string_view(field, static_cast<std::size_t>(p - field));
      field = p + 1;
    }
  }
  if (count == max) return max + 1;
  out[count++] = std::string_view(field, static_cast<std::size_t>(end - field));
  return count;
}

HostKind host_kind_from_string(std::string_view s) {
  for (int i = 0; i <= static_cast<int>(HostKind::kNugache); ++i) {
    const auto kind = static_cast<HostKind>(i);
    if (to_string(kind) == s) return kind;
  }
  throw util::ParseError("unknown host kind '" + std::string(s) + "'");
}

Protocol protocol_from_byte(std::uint8_t byte) {
  switch (static_cast<Protocol>(byte)) {
    case Protocol::kTcp:
    case Protocol::kUdp:
    case Protocol::kIcmp: return static_cast<Protocol>(byte);
  }
  throw util::ParseError("binary trace: bad protocol");
}

FlowState flow_state_from_byte(std::uint8_t byte) {
  if (byte > static_cast<std::uint8_t>(FlowState::kIcmpUnreach))
    throw util::ParseError("binary trace: bad flow state");
  return static_cast<FlowState>(byte);
}

template <typename T>
T take(const char*& p) {
  T value;
  std::memcpy(&value, p, sizeof(value));
  p += sizeof(value);
  return value;
}

/// One decode destination for the fused CSV parser: references to each flow
/// field, wherever they live. The same parser body fills an AoS FlowRecord
/// (refs into one struct) or one FlowBatch row (refs into thirteen columns),
/// so the two decode paths cannot drift. `payload` must point at a
/// kPayloadPrefixLen slot already zeroed past whatever the parser writes.
struct FlowFieldRefs {
  simnet::Ipv4& src;
  simnet::Ipv4& dst;
  std::uint16_t& sport;
  std::uint16_t& dport;
  Protocol& proto;
  double& start_time;
  double& end_time;
  std::uint64_t& pkts_src;
  std::uint64_t& pkts_dst;
  std::uint64_t& bytes_src;
  std::uint64_t& bytes_dst;
  FlowState& state;
  unsigned char* payload;
  std::uint8_t& payload_len;
};

FlowFieldRefs record_refs(FlowRecord& r) {
  return {r.src,      r.dst,      r.sport,     r.dport,     r.proto,
          r.start_time, r.end_time, r.pkts_src, r.pkts_dst, r.bytes_src,
          r.bytes_dst, r.state,    r.payload.data(), r.payload_len};
}

FlowFieldRefs batch_row_refs(FlowBatch& b, std::size_t i) {
  return {b.src()[i],      b.dst()[i],      b.sport()[i],    b.dport()[i],
          b.proto()[i],    b.start_time()[i], b.end_time()[i], b.pkts_src()[i],
          b.pkts_dst()[i], b.bytes_src()[i], b.bytes_dst()[i], b.state()[i],
          b.payload(i),    b.payload_len()[i]};
}

/// Fused tokenize-and-decode fast path: one left-to-right pass, each field
/// parser consumes its bytes and the trailing separator directly, so the
/// line is never pre-split. Returns false on ANY anomaly (bad digit, wrong
/// separator, unknown keyword, overflow, end_time before start_time) without
/// diagnosing it — the caller re-parses through the split-based slow path,
/// which reproduces the exact error the batch readers have always thrown.
bool parse_flow_line_fast(std::string_view line, FlowFieldRefs out) noexcept {
  const char* p = line.data();
  const char* const end = p + line.size();

  const auto sep = [&]() -> bool {
    if (p == end || *p != ',') return false;
    ++p;
    return true;
  };
  const auto ipv4 = [&](simnet::Ipv4& ip) -> bool {
    std::uint32_t value = 0;
    for (int octet = 0; octet < 4; ++octet) {
      if (octet > 0) {
        if (p == end || *p != '.') return false;
        ++p;
      }
      if (p == end || *p < '0' || *p > '9') return false;
      unsigned byte = static_cast<unsigned>(*p++ - '0');
      while (p != end && *p >= '0' && *p <= '9') {
        byte = byte * 10 + static_cast<unsigned>(*p++ - '0');
        if (byte > 255) return false;
      }
      value = (value << 8) | byte;
    }
    ip = simnet::Ipv4(value);
    return true;
  };
  const auto uint_field = [&](auto& dst) -> bool {
    using T = std::remove_reference_t<decltype(dst)>;
    if (p == end || *p < '0' || *p > '9') return false;
    std::uint64_t value = 0;
    int digits = 0;
    while (p != end && *p >= '0' && *p <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(*p++ - '0');
      if (++digits > 19) return false;  // could overflow; let from_chars decide
    }
    if (value > std::numeric_limits<T>::max()) return false;
    dst = static_cast<T>(value);
    return true;
  };
  const auto dbl = [&](double& dst) -> bool {
    const auto [q, ec] = std::from_chars(p, end, dst);
    if (ec != std::errc()) return false;
    p = q;
    return true;
  };
  const auto lit = [&](std::string_view s) -> bool {
    if (static_cast<std::size_t>(end - p) < s.size() ||
        std::memcmp(p, s.data(), s.size()) != 0)
      return false;
    p += s.size();
    return true;
  };

  if (!ipv4(out.src) || !sep() || !ipv4(out.dst) || !sep()) return false;
  if (!uint_field(out.sport) || !sep() || !uint_field(out.dport) || !sep()) return false;
  if (lit("tcp,")) out.proto = Protocol::kTcp;
  else if (lit("udp,")) out.proto = Protocol::kUdp;
  else if (lit("icmp,")) out.proto = Protocol::kIcmp;
  else return false;
  if (!dbl(out.start_time) || !sep() || !dbl(out.end_time) || !sep()) return false;
  // A flow cannot end before it starts (negated compare also rejects NaNs);
  // the slow path turns this into the pinned diagnostic.
  if (!(out.end_time >= out.start_time)) return false;
  if (!uint_field(out.pkts_src) || !sep() || !uint_field(out.pkts_dst) || !sep()) return false;
  if (!uint_field(out.bytes_src) || !sep() || !uint_field(out.bytes_dst) || !sep()) return false;
  if (lit("est,")) out.state = FlowState::kEstablished;
  else if (lit("att,")) out.state = FlowState::kAttempted;
  else if (lit("rst,")) out.state = FlowState::kReset;
  else if (lit("unr,")) out.state = FlowState::kIcmpUnreach;
  else return false;
  const std::size_t hex_len = static_cast<std::size_t>(end - p);
  if (hex_len % 2 != 0 || hex_len / 2 > kPayloadPrefixLen) return false;
  out.payload_len = static_cast<std::uint8_t>(hex_len / 2);
  for (std::size_t i = 0; i < out.payload_len; ++i) {
    const int value = (kHexTable[static_cast<unsigned char>(p[2 * i])] << 4) |
                      kHexTable[static_cast<unsigned char>(p[2 * i + 1])];
    if (value < 0) return false;
    out.payload[i] = static_cast<unsigned char>(value);
  }
  return true;
}

/// Split-then-decode slow path: the reference decoder. Only reached for
/// lines the fast path rejects; its job is to throw the precise, pinned
/// diagnostics ("bad field count on line N", "line N: bad sport '…'", …) —
/// or to accept the rare shapes the fast path conservatively refuses (e.g.
/// 20-digit counters that still fit in uint64).
void parse_flow_line_slow(std::string_view line, std::size_t lineno, FlowRecord& out) {
  std::array<std::string_view, 13> f;
  if (split_fields(line, ',', f.data(), f.size()) != f.size())
    throw util::ParseError("bad field count on line " + std::to_string(lineno));
  out.src = parse_ipv4(f[0], lineno, "src");
  out.dst = parse_ipv4(f[1], lineno, "dst");
  out.sport = parse_uint<std::uint16_t>(f[2], lineno, "sport");
  out.dport = parse_uint<std::uint16_t>(f[3], lineno, "dport");
  out.proto = protocol_from_string(f[4]);
  out.start_time = parse_number<double>(f[5], lineno, "start");
  out.end_time = parse_number<double>(f[6], lineno, "end");
  // Range checks are per-field; the cross-field invariant needs its own
  // check or duration() goes negative and skews the timing features.
  if (!(out.end_time >= out.start_time))
    throw util::ParseError("line " + std::to_string(lineno) +
                           ": end_time precedes start_time");
  out.pkts_src = parse_uint<std::uint64_t>(f[7], lineno, "pkts_src");
  out.pkts_dst = parse_uint<std::uint64_t>(f[8], lineno, "pkts_dst");
  out.bytes_src = parse_uint<std::uint64_t>(f[9], lineno, "bytes_src");
  out.bytes_dst = parse_uint<std::uint64_t>(f[10], lineno, "bytes_dst");
  out.state = flow_state_from_string(f[11]);
  const std::string_view hex = f[12];
  if (hex.size() % 2 != 0 || hex.size() / 2 > kPayloadPrefixLen)
    throw util::ParseError("line " + std::to_string(lineno) + ": bad payload hex");
  out.payload_len = static_cast<std::uint8_t>(hex.size() / 2);
  for (std::size_t i = 0; i < out.payload_len; ++i) {
    const int value =
        (kHexTable[static_cast<unsigned char>(hex[2 * i])] << 4) |
        kHexTable[static_cast<unsigned char>(hex[2 * i + 1])];
    if (value < 0)
      throw util::ParseError("line " + std::to_string(lineno) + ": bad hex digit");
    out.payload[i] = static_cast<unsigned char>(value);
  }
}

/// Decodes one CSV flow line into `out`. Pure (no shared state), so the
/// batch drain can run it across threads. `out.payload` must be zeroed past
/// whatever this writes — callers pass a fresh or reset record.
void parse_flow_line(std::string_view line, std::size_t lineno, FlowRecord& out) {
  if (parse_flow_line_fast(line, record_refs(out))) return;
  parse_flow_line_slow(line, lineno, out);
}

}  // namespace

std::string_view to_string(TraceFormat f) {
  return f == TraceFormat::kBinary ? "binary" : "csv";
}

// ---------------------------------------------------------------------------
// Source: a chunked block reader over std::istream. One istream::read per
// block; lines and binary records are served out of the block buffer.

class TraceReader::Source {
 public:
  explicit Source(std::istream& in) : in_(in), buf_(kBufferSize) {}

  /// Yields the next line (excluding the terminator, with one trailing '\r'
  /// stripped so CRLF traces parse like LF ones). The view stays valid until
  /// the following next_line / read_exact call. Returns false at EOF.
  bool next_line(std::string_view& line) {
    for (;;) {
      const char* base = buf_.data() + pos_;
      const auto* nl =
          static_cast<const char*>(std::memchr(base, '\n', end_ - pos_));
      if (nl != nullptr) {
        line = std::string_view(base, static_cast<std::size_t>(nl - base));
        pos_ += line.size() + 1;
        strip_cr(line);
        return true;
      }
      if (eof_) {
        if (pos_ == end_) return false;
        line = std::string_view(base, end_ - pos_);  // final unterminated line
        pos_ = end_;
        strip_cr(line);
        return true;
      }
      refill();
    }
  }

  /// Copies exactly `n` bytes into `dst`; throws util::IoError tagged with
  /// `what` when the stream runs dry first.
  void read_exact(void* dst, std::size_t n, const char* what) {
    char* out = static_cast<char*>(dst);
    while (n > 0) {
      if (pos_ == end_) {
        if (eof_) throw util::IoError(std::string("binary trace: ") + what);
        refill();
        continue;
      }
      const std::size_t chunk = std::min(n, end_ - pos_);
      std::memcpy(out, buf_.data() + pos_, chunk);
      pos_ += chunk;
      out += chunk;
      n -= chunk;
    }
  }

  /// Ensures up to `n` bytes are buffered (fewer only at EOF) and returns a
  /// view of them without consuming. Used for format sniffing.
  std::string_view peek(std::size_t n) {
    while (end_ - pos_ < n && !eof_) refill();
    return {buf_.data() + pos_, std::min(n, end_ - pos_)};
  }

  /// Appends everything left (buffered bytes, then the rest of the stream)
  /// to `out`. Used by the batch drain, which materializes the remainder to
  /// decode it in parallel.
  void drain(std::string& out) {
    out.append(buf_.data() + pos_, end_ - pos_);
    pos_ = end_;
    while (!eof_) {
      // The buffer is fully consumed, so reuse it as the read scratch.
      // read_retry survives EINTR (a signal landing mid-read must not
      // truncate the trace) and accumulates short reads.
      const std::size_t got = util::read_retry(in_, buf_.data(), buf_.size());
      if (got == 0) {
        eof_ = true;
        break;
      }
      if (got < buf_.size()) eof_ = true;
      if (obs::enabled()) IngestObs::get().bytes.add(got);
      out.append(buf_.data(), got);
    }
  }

 private:
  static void strip_cr(std::string_view& line) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  }

  // Compacts the unconsumed tail to the front of the buffer and reads one
  // more block. Grows the buffer only if a single line/record exceeds it.
  void refill() {
    if (pos_ > 0) {
      std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
      end_ -= pos_;
      pos_ = 0;
    }
    if (end_ == buf_.size()) buf_.resize(buf_.size() * 2);
    // read_retry survives EINTR and accumulates short reads, so a signal
    // landing mid-refill cannot masquerade as a truncated trace. It returns
    // short on real EOF, on a hard I/O error, and on a cooperative shutdown
    // request — all of which end the stream here (graceful stop reads as a
    // clean end-of-input at the next record boundary).
    const std::size_t request = buf_.size() - end_;
    const std::size_t got = util::read_retry(in_, buf_.data() + end_, request);
    end_ += got;
    // read_retry returns short ONLY at a terminal condition (EOF, hard
    // error, cooperative shutdown) — never on a transient short read. Any
    // shortfall therefore ends the stream; asking again would re-enter a
    // blocking read that a consumed shutdown signal can no longer wake.
    if (got < request) eof_ = true;
    if (got > 0 && obs::enabled()) IngestObs::get().bytes.add(got);
  }

  std::istream& in_;
  std::vector<char> buf_;
  std::size_t pos_ = 0;  // consume cursor
  std::size_t end_ = 0;  // valid bytes
  bool eof_ = false;
};

// ---------------------------------------------------------------------------
// Construction / preamble.

TraceReader::TraceReader(std::istream& in) { open(in, nullptr); }

TraceReader::TraceReader(std::istream& in, TraceFormat format) { open(in, &format); }

TraceReader::TraceReader(std::istream& in, ErrorPolicy policy) : policy_(policy) {
  open(in, nullptr);
}

TraceReader::TraceReader(std::istream& in, TraceFormat format, ErrorPolicy policy)
    : policy_(policy) {
  open(in, &format);
}

TraceReader::TraceReader(const std::string& path) {
  auto file = std::make_unique<util::FdInputStream>(path);
  if (!*file) throw util::IoError("cannot open for reading: " + path);
  owned_stream_ = std::move(file);
  open(*owned_stream_, nullptr);
}

TraceReader::TraceReader(const std::string& path, TraceFormat format) {
  auto file = std::make_unique<util::FdInputStream>(path);
  if (!*file) throw util::IoError("cannot open for reading: " + path);
  owned_stream_ = std::move(file);
  open(*owned_stream_, &format);
}

TraceReader::TraceReader(const std::string& path, ErrorPolicy policy) : policy_(policy) {
  auto file = std::make_unique<util::FdInputStream>(path);
  if (!*file) throw util::IoError("cannot open for reading: " + path);
  owned_stream_ = std::move(file);
  open(*owned_stream_, nullptr);
}

TraceReader::TraceReader(const std::string& path, TraceFormat format, ErrorPolicy policy)
    : policy_(policy) {
  auto file = std::make_unique<util::FdInputStream>(path);
  if (!*file) throw util::IoError("cannot open for reading: " + path);
  owned_stream_ = std::move(file);
  open(*owned_stream_, &format);
}

TraceReader::~TraceReader() = default;

void TraceReader::open(std::istream& in, const TraceFormat* forced) {
  src_ = std::make_unique<Source>(in);
  if (forced != nullptr) {
    format_ = *forced;
  } else {
    const std::string_view head = src_->peek(sizeof(kBinMagic));
    std::uint32_t magic = 0;
    if (head.size() == sizeof(magic)) std::memcpy(&magic, head.data(), sizeof(magic));
    format_ = magic == kBinMagic ? TraceFormat::kBinary : TraceFormat::kCsv;
  }
  if (format_ == TraceFormat::kBinary) {
    read_binary_preamble();
  } else {
    read_csv_preamble();
  }
}

void TraceReader::read_csv_preamble() {
  std::string_view line;
  for (;;) {
    if (!src_->next_line(line)) throw util::ParseError("empty CSV trace");
    ++lineno_;
    if (line.empty()) continue;
    if (line[0] == '#') {
      parse_csv_comment(line);
      continue;
    }
    if (line != kCsvHeader) throw util::ParseError("missing CSV header");
    return;
  }
}

void TraceReader::parse_csv_comment(std::string_view line) {
  std::array<std::string_view, 3> f;
  const std::size_t n = split_fields(line, ',', f.data(), f.size());
  if (f[0] == "#window" && n == 3) {
    window_start_ = parse_number<double>(f[1], lineno_, "window start");
    window_end_ = parse_number<double>(f[2], lineno_, "window end");
  } else if (f[0] == "#truth" && n == 3) {
    truth_[parse_ipv4(f[1], lineno_, "truth host")] = host_kind_from_string(f[2]);
  } else {
    throw util::ParseError("bad comment line " + std::to_string(lineno_));
  }
}

void TraceReader::read_binary_preamble() {
  const auto get32 = [&](const char* what) {
    std::uint32_t v = 0;
    src_->read_exact(&v, sizeof(v), what);
    return v;
  };
  if (get32("short read") != kBinMagic) throw util::ParseError("binary trace: bad magic");
  bin_version_ = get32("short read");
  if (bin_version_ != kBinVersion && bin_version_ != kBinVersionColumnar)
    throw util::ParseError("binary trace: bad version");
  src_->read_exact(&window_start_, sizeof(window_start_), "short read");
  src_->read_exact(&window_end_, sizeof(window_end_), "short read");
  std::uint64_t truth_count = 0;
  src_->read_exact(&truth_count, sizeof(truth_count), "short read");
  truth_.reserve(truth_count);
  for (std::uint64_t i = 0; i < truth_count; ++i) {
    // One truth entry on the wire: u32 address, u8 HostKind.
    std::array<char, sizeof(std::uint32_t) + 1> raw;
    src_->read_exact(raw.data(), raw.size(), "short read");
    const char* p = raw.data();
    const auto ip = simnet::Ipv4(take<std::uint32_t>(p));
    const auto byte = take<std::uint8_t>(p);
    if (byte > static_cast<std::uint8_t>(HostKind::kNugache))
      throw util::ParseError("binary trace: bad host kind");
    truth_[ip] = static_cast<HostKind>(byte);
  }
  src_->read_exact(&flow_count_, sizeof(flow_count_), "short read");
}

// ---------------------------------------------------------------------------
// Flow pulling.

bool TraceReader::next(FlowRecord& out) {
  if (done_) return false;
  const auto pull = [&] {
    if (format_ != TraceFormat::kBinary) return next_csv(out);
    return bin_version_ == kBinVersionColumnar ? next_columnar(out) : next_binary(out);
  };
  bool got;
  if (obs::enabled()) {
    IngestObs& o = IngestObs::get();
    const std::size_t quarantined_before = stats_.records_quarantined;
    const std::size_t resyncs_before = stats_.resync_events;
    const auto start = std::chrono::steady_clock::now();
    got = pull();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    o.record_seconds.observe(std::chrono::duration<double>(elapsed).count());
    if (got) o.records_ok.add();
    o.records_quarantined.add(stats_.records_quarantined - quarantined_before);
    o.resync_events.add(stats_.resync_events - resyncs_before);
  } else {
    got = pull();
  }
  if (got) {
    ++flows_read_;
    ++stats_.records_ok;
    // Columnar staging settles resync-run state at block decode time (in
    // stream order); serving a staged row later must not clobber it, or a
    // quarantine run spanning a block boundary would double-count.
    if (staged_ == nullptr) in_bad_run_ = false;
  } else {
    done_ = true;
  }
  return got;
}

std::size_t TraceReader::skip_flows(std::size_t n) {
  FlowRecord scratch;
  std::size_t skipped = 0;
  while (skipped < n && next(scratch)) ++skipped;
  return skipped;
}

void TraceReader::quarantine(std::size_t record) {
  if (policy_.action == OnError::kStrict) throw;
  if (policy_.action == OnError::kStopAfter &&
      stats_.records_quarantined >= policy_.max_quarantined)
    throw;
  ++stats_.records_quarantined;
  if (!in_bad_run_) {
    ++stats_.resync_events;
    in_bad_run_ = true;
  }
  if (stats_.first_error_record == 0) {
    stats_.first_error_record = record;
    try {
      throw;
    } catch (const std::exception& e) {
      stats_.first_error = e.what();
    }
  }
}

bool TraceReader::next_csv(FlowRecord& out) {
  std::string_view line;
  while (src_->next_line(line)) {
    ++lineno_;
    if (line.empty()) continue;
    if (line[0] == '#') {
      try {
        parse_csv_comment(line);
      } catch (...) {
        quarantine(lineno_);  // rethrows under kStrict / exhausted kStopAfter
      }
      continue;
    }
    out = FlowRecord{};
    try {
      parse_flow_line(line, lineno_, out);
    } catch (...) {
      quarantine(lineno_);
      continue;  // resync: the line boundary was already consumed
    }
    return true;
  }
  return false;
}

bool TraceReader::next_binary(FlowRecord& out) {
  // The fixed-size part of one record on the wire (fields are written
  // individually, so the layout is packed, independent of FlowRecord's
  // in-memory padding).
  constexpr std::size_t kFixedBytes = 4 + 4 + 2 + 2 + 1 + 8 + 8 + 8 + 8 + 8 + 8 + 1 + 1;

  // A record whose *length* cannot be trusted (truncated fixed part, or a
  // payload_len past the cap) leaves the reader with no next boundary to
  // resync to; under a skip policy the remainder of the stream is abandoned
  // (stats_.lost_sync) instead of misparsed.
  const auto lose_sync = [&](std::size_t ordinal) {
    quarantine(ordinal);  // rethrows under kStrict / exhausted kStopAfter
    stats_.lost_sync = true;
    records_consumed_ = flow_count_;
  };

  while (records_consumed_ < flow_count_) {
    ++records_consumed_;
    const auto ordinal = static_cast<std::size_t>(records_consumed_);
    std::array<char, kFixedBytes> raw;
    try {
      src_->read_exact(raw.data(), raw.size(), "short read");
    } catch (...) {
      lose_sync(ordinal);
      return false;
    }
    const char* p = raw.data();
    out = FlowRecord{};
    out.src = simnet::Ipv4(take<std::uint32_t>(p));
    out.dst = simnet::Ipv4(take<std::uint32_t>(p));
    out.sport = take<std::uint16_t>(p);
    out.dport = take<std::uint16_t>(p);
    const auto proto_byte = take<std::uint8_t>(p);
    out.start_time = take<double>(p);
    out.end_time = take<double>(p);
    out.pkts_src = take<std::uint64_t>(p);
    out.pkts_dst = take<std::uint64_t>(p);
    out.bytes_src = take<std::uint64_t>(p);
    out.bytes_dst = take<std::uint64_t>(p);
    const auto state_byte = take<std::uint8_t>(p);
    out.payload_len = take<std::uint8_t>(p);
    if (out.payload_len > kPayloadPrefixLen) {
      try {
        throw util::ParseError("binary trace: bad payload len");
      } catch (...) {
        lose_sync(ordinal);
      }
      return false;
    }
    try {
      src_->read_exact(out.payload.data(), out.payload_len, "short payload read");
    } catch (...) {
      lose_sync(ordinal);
      return false;
    }
    // Value validation last: a bad proto/state byte or an inverted time pair
    // leaves the record fully consumed (framing intact), so under a skip
    // policy we quarantine just this record and continue with the next one.
    try {
      out.proto = protocol_from_byte(proto_byte);
      out.state = flow_state_from_byte(state_byte);
      if (!(out.end_time >= out.start_time))
        throw util::ParseError("binary trace: end_time precedes start_time");
    } catch (...) {
      quarantine(ordinal);
      continue;
    }
    return true;
  }
  return false;
}

bool TraceReader::next_columnar(FlowRecord& out) {
  if (staged_ == nullptr) staged_ = std::make_unique<FlowBatch>();
  while (staged_pos_ >= staged_->size()) {
    staged_->clear();
    staged_pos_ = 0;
    if (!read_columnar_block(*staged_)) return false;
  }
  out = staged_->record(staged_pos_++);
  return true;
}

bool TraceReader::read_columnar_block(FlowBatch& out) {
  const auto lose_sync = [&](std::size_t ordinal) {
    quarantine(ordinal);  // rethrows under kStrict / exhausted kStopAfter
    stats_.lost_sync = true;
    records_consumed_ = flow_count_;
  };

  while (records_consumed_ < flow_count_) {
    const auto base = static_cast<std::size_t>(records_consumed_);

    // Block framing: a u32 row count, then the column arrays. A count of
    // zero or one past the declared remainder means the writer and reader
    // disagree about the stream shape — there is no next boundary to trust.
    std::uint32_t rows = 0;
    try {
      src_->read_exact(&rows, sizeof(rows), "short block header");
      if (rows == 0 || rows > flow_count_ - records_consumed_)
        throw util::ParseError("binary trace: bad block size");
    } catch (...) {
      lose_sync(base + 1);
      return false;
    }

    const std::size_t n = rows;
    out.append_default(n);
    try {
      src_->read_exact(out.src(), n * sizeof(std::uint32_t), "short column read");
      src_->read_exact(out.dst(), n * sizeof(std::uint32_t), "short column read");
      src_->read_exact(out.sport(), n * sizeof(std::uint16_t), "short column read");
      src_->read_exact(out.dport(), n * sizeof(std::uint16_t), "short column read");
      src_->read_exact(out.proto(), n, "short column read");
      src_->read_exact(out.start_time(), n * sizeof(double), "short column read");
      src_->read_exact(out.end_time(), n * sizeof(double), "short column read");
      src_->read_exact(out.pkts_src(), n * sizeof(std::uint64_t), "short column read");
      src_->read_exact(out.pkts_dst(), n * sizeof(std::uint64_t), "short column read");
      src_->read_exact(out.bytes_src(), n * sizeof(std::uint64_t), "short column read");
      src_->read_exact(out.bytes_dst(), n * sizeof(std::uint64_t), "short column read");
      src_->read_exact(out.state(), n, "short column read");
      src_->read_exact(out.payload_len(), n, "short column read");
      src_->read_exact(out.payload(0), n * kPayloadPrefixLen, "short column read");
    } catch (...) {
      out.clear();
      lose_sync(base + 1);
      return false;
    }
    records_consumed_ += n;

    // Per-row value validation, in stream order so resync-run accounting
    // matches a record-at-a-time read. Unlike v1, a bad payload_len does
    // not lose sync here: the payload column has a fixed stride, so framing
    // survives and only the row is quarantined.
    std::vector<std::uint32_t> bad;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        out.proto()[i] = protocol_from_byte(static_cast<std::uint8_t>(out.proto()[i]));
        out.state()[i] =
            flow_state_from_byte(static_cast<std::uint8_t>(out.state()[i]));
        if (out.payload_len()[i] > kPayloadPrefixLen)
          throw util::ParseError("binary trace: bad payload len");
        if (!(out.end_time()[i] >= out.start_time()[i]))
          throw util::ParseError("binary trace: end_time precedes start_time");
      } catch (...) {
        try {
          quarantine(base + i + 1);
        } catch (...) {
          // Thrown fault (kStrict / exhausted kStopAfter): the v3 stream is
          // block-granular, so none of the block survives — discard whole.
          out.clear();
          throw;
        }
        bad.push_back(static_cast<std::uint32_t>(i));
        continue;
      }
      in_bad_run_ = false;
      // Canonicalize the slot: zero past payload_len, so views and
      // materialized records match what the v1 decoder would produce even
      // for writers that left junk in the padding.
      const std::uint8_t len = out.payload_len()[i];
      if (len < kPayloadPrefixLen)
        std::memset(out.payload(i) + len, 0, kPayloadPrefixLen - len);
    }
    out.erase_rows(bad);
    if (!out.empty()) return true;
    // Every row of this block was quarantined; try the next block.
  }
  return false;
}

std::size_t TraceReader::next_batch(FlowBatch& out) {
  out.clear();
  if (done_) return 0;
  const auto fill = [&] {
    if (format_ != TraceFormat::kBinary) {
      next_batch_csv(out);
    } else if (bin_version_ == kBinVersionColumnar) {
      next_batch_columnar(out);
    } else {
      next_batch_binary(out);
    }
  };
  if (obs::enabled()) {
    IngestObs& o = IngestObs::get();
    const std::size_t ok_before = stats_.records_ok;
    const std::size_t quarantined_before = stats_.records_quarantined;
    const std::size_t resyncs_before = stats_.resync_events;
    const auto settle = [&] {
      o.records_ok.add(stats_.records_ok - ok_before);
      o.records_quarantined.add(stats_.records_quarantined - quarantined_before);
      o.resync_events.add(stats_.resync_events - resyncs_before);
    };
    const obs::StageTimer timer(obs::Stage::kBatchDecode);
    try {
      fill();
    } catch (...) {
      settle();  // rows decoded before the fault are already in stats_
      throw;
    }
    if (!out.empty()) o.batches.add();
    settle();
  } else {
    fill();
  }
  if (out.empty()) done_ = true;
  return out.size();
}

void TraceReader::next_batch_csv(FlowBatch& out) {
  std::string_view line;
  while (!out.full() && src_->next_line(line)) {
    ++lineno_;
    if (line.empty()) continue;
    if (line[0] == '#') {
      try {
        parse_csv_comment(line);
      } catch (...) {
        quarantine(lineno_);  // rethrows under kStrict / exhausted kStopAfter
      }
      continue;
    }
    const std::size_t row = out.append_default();
    if (parse_flow_line_fast(line, batch_row_refs(out, row))) {
      ++flows_read_;
      ++stats_.records_ok;
      in_bad_run_ = false;
      continue;
    }
    // The fast path may have half-written the row; undo the append, then
    // let the reference decoder either accept the rare shapes the fast path
    // refuses or throw the pinned per-line diagnostic.
    out.truncate(row);
    FlowRecord scratch;
    try {
      parse_flow_line_slow(line, lineno_, scratch);
    } catch (...) {
      quarantine(lineno_);
      continue;  // resync: the line boundary was already consumed
    }
    out.push_back(scratch);
    ++flows_read_;
    ++stats_.records_ok;
    in_bad_run_ = false;
  }
}

void TraceReader::next_batch_binary(FlowBatch& out) {
  FlowRecord scratch;
  while (!out.full() && next_binary(scratch)) {
    out.push_back(scratch);
    ++flows_read_;
    ++stats_.records_ok;
    in_bad_run_ = false;
  }
}

void TraceReader::next_batch_columnar(FlowBatch& out) {
  // Serve rows already staged by record-mode next() calls first, so mixed
  // next()/next_batch() usage delivers every record exactly once.
  if (staged_ != nullptr && staged_pos_ < staged_->size()) {
    for (std::size_t i = staged_pos_; i < staged_->size(); ++i)
      out.push_back(staged_->record(i));
    staged_pos_ = staged_->size();
  } else {
    // A block can be quarantined away entirely; keep reading until rows
    // survive or the stream ends (an empty batch means end-of-trace).
    while (out.empty() && read_columnar_block(out)) {
    }
  }
  flows_read_ += out.size();
  stats_.records_ok += out.size();
}

TraceSet TraceReader::read_all() {
  TraceSet trace;
  if (format_ == TraceFormat::kBinary) {
    if (flow_count_ > flows_read_) trace.reserve_flows(flow_count_ - flows_read_);
    FlowRecord rec;
    while (next(rec)) trace.add_flow(rec);
  } else if (policy_.action != OnError::kStrict) {
    // Skip policies go through the serial next() path so that quarantine
    // accounting (stats, resync runs, kStopAfter budgets) behaves exactly
    // like pull-mode ingestion; the parallel drain below is strict-only.
    FlowRecord rec;
    while (next(rec)) trace.add_flow(rec);
  } else {
    read_all_csv(trace);
  }
  trace.set_window(window_start_, window_end_);
  for (const auto& [ip, kind] : truth_) trace.set_truth(ip, kind);
  return trace;
}

void TraceReader::read_all_csv(TraceSet& trace) {
  if (done_) return;
  const obs::StageTimer parse_timer(obs::Stage::kParse);

  // Materialize the remainder and index it: comment lines are applied
  // serially in file order (so truth overrides behave sequentially), flow
  // lines are recorded for the parallel pass. A malformed comment stops the
  // scan — lines past it must not be decoded, exactly like a serial pass.
  std::string blob;
  src_->drain(blob);
  std::vector<std::string_view> lines;
  std::vector<std::size_t> linenos;
  std::size_t err_line = static_cast<std::size_t>(-1);
  std::exception_ptr err;
  const char* p = blob.data();
  const char* const blob_end = blob.data() + blob.size();
  while (p != blob_end) {
    const auto* nl = static_cast<const char*>(std::memchr(p, '\n', blob_end - p));
    std::string_view line(p, nl != nullptr ? static_cast<std::size_t>(nl - p)
                                           : static_cast<std::size_t>(blob_end - p));
    p = nl != nullptr ? nl + 1 : blob_end;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    ++lineno_;
    if (line.empty()) continue;
    if (line[0] == '#') {
      try {
        parse_csv_comment(line);
      } catch (...) {
        err_line = lineno_;
        err = std::current_exception();
        break;
      }
      continue;
    }
    lines.push_back(line);
    linenos.push_back(lineno_);
  }

  // Decode into pre-sized slots: slot i holds line i regardless of thread
  // schedule, so the flow order (and every byte) matches the serial read.
  const std::size_t base = trace.flows().size();
  trace.flows().resize(base + lines.size());
  std::mutex err_mutex;
  util::parallel_for(0, lines.size(), 4096, [&](std::size_t i) {
    try {
      parse_flow_line(lines[i], linenos[i], trace.flows()[base + i]);
    } catch (...) {
      // Don't let parallel_for rethrow an arbitrary chunk's exception; keep
      // the earliest line's error so diagnostics match the serial reader.
      const std::lock_guard<std::mutex> lock(err_mutex);
      if (linenos[i] < err_line) {
        err_line = linenos[i];
        err = std::current_exception();
      }
    }
  });
  if (err) std::rethrow_exception(err);
  flows_read_ += lines.size();
  stats_.records_ok += lines.size();
  if (obs::enabled()) IngestObs::get().records_ok.add(lines.size());
  done_ = true;
}

}  // namespace tradeplot::netflow
