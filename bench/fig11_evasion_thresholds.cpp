// Figure 11: challenges for Plotters to evade θ_vol (a) and θ_churn (b) -
// the per-day detection thresholds versus the median values observed from
// hosts with overlaid Plotter traffic.
//
// Paper numbers: the median Storm Plotter needs >5x its per-flow volume to
// clear τ_vol; Nugache needs ~1.3x. To clear τ_churn, Plotters must raise
// their new-IP fraction by >= 1.5x.
#include "bench/bench_util.h"

using namespace tradeplot;

int main() {
  benchx::header("Figure 11 - per-day thresholds vs median Plotter feature values");

  const eval::EvalConfig cfg = benchx::paper_eval_config();
  std::printf("  generating %d days...\n", cfg.days);
  const eval::DaySet days = eval::make_days(cfg);
  const auto rows = eval::evasion_thresholds(days);

  std::printf("\n  (a) volume: avg bytes uploaded per flow\n");
  std::printf("  %-5s %12s %12s %9s %12s %9s\n", "day", "tau_vol", "Storm med", "x-need",
              "Nugache med", "x-need");
  double storm_vol_factor = 0, nugache_vol_factor = 0;
  for (const auto& row : rows) {
    const double sf = row.storm_median_volume > 0 ? row.tau_vol / row.storm_median_volume : 0;
    const double nf =
        row.nugache_median_volume > 0 ? row.tau_vol / row.nugache_median_volume : 0;
    storm_vol_factor += sf / static_cast<double>(rows.size());
    nugache_vol_factor += nf / static_cast<double>(rows.size());
    std::printf("  %-5d %12.1f %12.1f %8.2fx %12.1f %8.2fx\n", row.day, row.tau_vol,
                row.storm_median_volume, sf, row.nugache_median_volume, nf);
  }

  std::printf("\n  (b) churn: fraction of new IPs contacted\n");
  std::printf("  %-5s %12s %12s %9s %12s %9s\n", "day", "tau_churn", "Storm med", "x-need",
              "Nugache med", "x-need");
  double storm_churn_factor = 0, nugache_churn_factor = 0;
  for (const auto& row : rows) {
    const double sf = row.storm_median_churn > 0 ? row.tau_churn / row.storm_median_churn : 0;
    const double nf =
        row.nugache_median_churn > 0 ? row.tau_churn / row.nugache_median_churn : 0;
    storm_churn_factor += sf / static_cast<double>(rows.size());
    nugache_churn_factor += nf / static_cast<double>(rows.size());
    std::printf("  %-5d %12.3f %12.3f %8.2fx %12.3f %8.2fx\n", row.day, row.tau_churn,
                row.storm_median_churn, sf, row.nugache_median_churn, nf);
  }

  std::printf("\n  average multiplicative change needed to evade:\n");
  std::printf("    theta_vol:   Storm %.2fx, Nugache %.2fx\n", storm_vol_factor,
              nugache_vol_factor);
  std::printf("    theta_churn: Storm %.2fx, Nugache %.2fx\n", storm_churn_factor,
              nugache_churn_factor);

  benchx::paper_reference(
      "Fig. 11: 'To evade the volume test, the median Storm Plotter would\n"
      "need to generate more than five times its original traffic volume\n"
      "per flow. The corresponding factor for the median Nugache Plotter\n"
      "is roughly 1.3. ... a Plotter ... would need to increase the\n"
      "fraction of new hosts it contacts by a factor of 1.5 or more.'\n"
      "Expect: Storm volume factor >> Nugache's (several x vs near 1x);\n"
      "churn factors >= ~1.5x.");
  return 0;
}
