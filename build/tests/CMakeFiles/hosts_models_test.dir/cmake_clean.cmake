file(REMOVE_RECURSE
  "CMakeFiles/hosts_models_test.dir/hosts_models_test.cpp.o"
  "CMakeFiles/hosts_models_test.dir/hosts_models_test.cpp.o.d"
  "hosts_models_test"
  "hosts_models_test.pdb"
  "hosts_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosts_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
