// Figure 2: new IPs contacted by a Trader and a Storm Plotter over one day.
//
// Paper shape: over 55% of the IPs a Trader contacts are new (first seen
// after its first hour of activity); more than 60% of the peers a Storm bot
// contacts have been contacted before.
#include <set>

#include "bench/bench_util.h"
#include "detect/features.h"

using namespace tradeplot;

namespace {

// Hour-by-hour: how many of the IPs contacted this hour were never seen in
// any earlier hour, as a fraction of this hour's distinct contacts.
void print_hourly_new(const char* label, const netflow::TraceSet& trace, simnet::Ipv4 host) {
  std::set<simnet::Ipv4> seen;
  std::printf("  %-10s", label);
  const double window = trace.window_end() - trace.window_start();
  const int hours = static_cast<int>(window / 3600.0);
  double total_new_after_h1 = 0, total_dsts = 0;
  for (int h = 0; h < hours; ++h) {
    const double lo = trace.window_start() + h * 3600.0;
    const double hi = lo + 3600.0;
    std::set<simnet::Ipv4> this_hour;
    for (const netflow::FlowRecord& rec : trace.flows()) {
      if (rec.src != host || rec.start_time < lo || rec.start_time >= hi) continue;
      this_hour.insert(rec.dst);
    }
    int fresh = 0;
    for (const simnet::Ipv4 dst : this_hour) {
      if (!seen.contains(dst)) {
        ++fresh;
        if (h > 0) ++total_new_after_h1;
      }
    }
    total_dsts += static_cast<double>(fresh);
    seen.insert(this_hour.begin(), this_hour.end());
    if (this_hour.empty()) {
      std::printf("   --  ");
    } else {
      std::printf(" %5.1f%%", 100.0 * fresh / static_cast<double>(this_hour.size()));
    }
  }
  std::printf("   | day new-IP fraction: %5.1f%%\n",
              total_dsts > 0 ? 100.0 * total_new_after_h1 / total_dsts : 0.0);
}

}  // namespace

int main() {
  benchx::header("Figure 2 - new IPs contacted per hour: a Trader vs a Storm Plotter");

  const eval::EvalConfig cfg = benchx::paper_eval_config();
  // Traders come from a full-length (24 h) campus-style run so the hourly
  // series matches the paper's one-day horizontal axis.
  trace::CampusConfig campus_cfg = cfg.campus;
  campus_cfg.window = 24 * 3600.0;
  const netflow::TraceSet campus = trace::generate_campus_trace(campus_cfg);
  const netflow::TraceSet storm = botnet::generate_storm_trace(cfg.honeynet);

  // Pick the busiest BitTorrent Trader and the first Storm bot.
  simnet::Ipv4 trader;
  std::size_t best = 0;
  std::unordered_map<simnet::Ipv4, std::size_t> counts;
  for (const auto& rec : campus.flows()) counts[rec.src] += 1;
  for (const auto ip : campus.hosts_of_kind(netflow::HostKind::kBitTorrent)) {
    if (counts[ip] > best) {
      best = counts[ip];
      trader = ip;
    }
  }
  const simnet::Ipv4 bot = storm.hosts_of_kind(netflow::HostKind::kStorm).front();

  std::printf("  hour:      ");
  for (int h = 1; h <= 24; ++h) std::printf(" %5d ", h);
  std::printf("\n");
  print_hourly_new("Trader", campus, trader);
  print_hourly_new("Storm", storm, bot);

  benchx::paper_reference(
      "Fig. 2: 'over 55% of the IPs [the Trader] contacted appear to be\n"
      "new. In contrast, generally more than 60% of the peers contacted by\n"
      "the Storm Plotter have been contacted previously' - i.e. the Trader\n"
      "day new-IP fraction should exceed ~55% and Storm's stay below ~40%.");
  return 0;
}
