#include "hosts/web.h"

#include <algorithm>

namespace tradeplot::hosts {

namespace {
constexpr std::string_view kHttpGet = "GET /index.html HTTP/1.1\r\nHost: www.example.com\r\n";
constexpr std::uint16_t kHttp = 80;
constexpr std::uint16_t kHttps = 443;
}  // namespace

WebClient::WebClient(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
                     WebClientConfig config)
    : env_(std::move(env)), rng_(rng), emit_(&env_, self, &rng_), config_(config) {
  // Personalise: every simulated user browses differently. Failure rate is
  // mostly anti-correlated with browsing intensity: the hosts with many
  // failed connections on a real campus are typically flaky, lightly-used
  // boxes (roaming laptops, half-broken installs, leftover P2P stubs) —
  // heavy browsers dial working sites. A minority is heavy *and* flaky
  // (dorm machines behind broken proxies, ad-ridden installs); they
  // populate the high-failed-rate half of the campus with genuinely
  // diverse human timing.
  flakiness_ = rng_.uniform();
  const bool heavy_and_flaky = rng_.chance(config_.heavy_flaky_prob);
  if (heavy_and_flaky) flakiness_ = rng_.uniform(0.55, 0.95);
  fail_prob_ = std::clamp(0.005 + 0.55 * flakiness_ * flakiness_ * flakiness_, 0.005, 0.6);
  const double slowdown = heavy_and_flaky ? 0.0 : flakiness_ * 0.9;
  if (heavy_and_flaky) flakiness_ = 0.0;  // browsing intensity stays full
  think_mu_ = config_.think_mu + slowdown +
              rng_.uniform(-config_.think_mu_spread, config_.think_mu_spread);
  think_sigma_ = rng_.uniform(config_.think_sigma_lo, config_.think_sigma_hi);
  new_site_prob_ = rng_.uniform(config_.new_site_prob_lo, config_.new_site_prob_hi);
  objects_max_ = static_cast<int>(rng_.uniform_int(config_.objects_max_lo, config_.objects_max_hi));
  const int favourites =
      static_cast<int>(rng_.uniform_int(config_.favourite_sites_lo, config_.favourite_sites_hi));
  favourites_.reserve(static_cast<std::size_t>(favourites));
  for (int i = 0; i < favourites; ++i) favourites_.push_back(env_.external_addr());
}

void WebClient::start() {
  if (flakiness_ > 0.7) {
    // Flaky boxes are barely *used*, but they are on all day: roaming
    // laptops and half-broken installs keep up sparse background chatter
    // (update checks, ad beacons, sync retries) to ever-new addresses.
    // Their activity therefore spans the whole window, and most of the
    // addresses they dial are first seen after their first active hour —
    // exactly the high-churn, high-failure corner of the feature space the
    // campus background contributes in the paper's Fig. 11(b).
    background_chatter_loop();
    return;
  }
  const int sessions =
      static_cast<int>(rng_.uniform_int(config_.sessions_min, config_.sessions_max));
  for (int s = 0; s < sessions; ++s) {
    env_.sim->schedule_at(rng_.uniform(0.0, env_.window_end * 0.85), [this] { begin_session(); });
  }
}

void WebClient::background_chatter_loop() {
  const double gap = rng_.exponential(rng_.uniform(600.0, 1800.0));
  if (emit_.now() + gap >= env_.window_end) return;
  env_.sim->schedule_after(gap, [this] {
    // A burst of a few dials, mostly to fresh addresses, often failing.
    const int dials = static_cast<int>(rng_.uniform_int(1, 4));
    for (int i = 0; i < dials; ++i) {
      const simnet::Ipv4 target =
          rng_.chance(0.5) ? rng_.pick(favourites_) : env_.external_addr();
      if (rng_.chance(fail_prob_)) {
        emit_.tcp_failed(target, 443);
      } else {
        emit_.tcp(target, 443,
                  static_cast<std::uint64_t>(rng_.uniform(config_.bytes_up_lo, config_.bytes_up_hi)),
                  static_cast<std::uint64_t>(rng_.uniform(2e3, 6e4)), rng_.uniform(0.2, 4.0),
                  kHttpGet);
      }
    }
    background_chatter_loop();
  });
}

void WebClient::begin_session() {
  const double session_len = rng_.lognormal(config_.session_mu, config_.session_sigma);
  const double session_end = std::min(emit_.now() + session_len, env_.window_end);
  visit_page(session_end);
  browse_loop(session_end);
}

void WebClient::browse_loop(double session_end) {
  const double think = rng_.lognormal(think_mu_, think_sigma_);
  if (emit_.now() + think >= session_end) return;
  env_.sim->schedule_after(think, [this, session_end] {
    visit_page(session_end);
    browse_loop(session_end);
  });
}

void WebClient::visit_page(double session_end) {
  if (emit_.now() >= session_end) return;
  simnet::Ipv4 site;
  if (rng_.chance(new_site_prob_)) {
    site = env_.external_addr();
  } else {
    const auto rank = rng_.zipf(static_cast<std::uint64_t>(favourites_.size()),
                                config_.zipf_exponent);
    site = favourites_[rank - 1];
  }
  const int objects = static_cast<int>(rng_.uniform_int(config_.objects_min, objects_max_));
  for (int o = 0; o < objects; ++o) {
    // The page itself comes from the site; most assets come off CDNs and ad
    // networks at ever-changing addresses. Flows to the *same* site are
    // therefore separated by human revisit times (minutes to hours), not by
    // sub-second asset fan-out.
    const simnet::Ipv4 target = (o == 0 || rng_.chance(0.05)) ? site : env_.external_addr();
    // Page assets load over the next second or two.
    env_.sim->schedule_after(rng_.uniform(0.0, 2.0), [this, target] {
      const simnet::Ipv4 site = target;
      const std::uint16_t port = rng_.chance(0.7) ? kHttps : kHttp;
      if (rng_.chance(fail_prob_)) {
        emit_.tcp_failed(site, port);
        return;
      }
      double down = rng_.uniform(config_.bytes_down_lo, config_.bytes_down_hi);
      if (rng_.chance(config_.big_download_prob)) down *= rng_.uniform(20.0, 80.0);
      emit_.tcp(site, port,
                static_cast<std::uint64_t>(rng_.uniform(config_.bytes_up_lo, config_.bytes_up_hi)),
                static_cast<std::uint64_t>(down), rng_.uniform(0.2, 8.0), kHttpGet);
    });
  }
}

WebServer::WebServer(netflow::AppEnv env, simnet::Ipv4 self, util::Pcg32 rng,
                     WebServerConfig config)
    : env_(std::move(env)), rng_(rng), emit_(&env_, self, &rng_), config_(config) {}

void WebServer::start() {
  serve_loop();
  outbound_loop();
}

void WebServer::serve_loop() {
  const double gap = rng_.exponential(3600.0 / config_.inbound_per_hour);
  if (emit_.now() + gap >= env_.window_end) return;
  env_.sim->schedule_after(gap, [this] {
    emit_.inbound_tcp(
        env_.external_addr(), rng_.chance(0.6) ? kHttps : kHttp,
        static_cast<std::uint64_t>(rng_.uniform(config_.bytes_req_lo, config_.bytes_req_hi)),
        static_cast<std::uint64_t>(rng_.uniform(config_.bytes_resp_lo, config_.bytes_resp_hi)),
        rng_.uniform(0.1, 10.0), kHttpGet);
    serve_loop();
  });
}

void WebServer::outbound_loop() {
  const double gap = rng_.exponential(3600.0 / config_.outbound_per_hour);
  if (emit_.now() + gap >= env_.window_end) return;
  env_.sim->schedule_after(gap, [this] {
    emit_.tcp(env_.external_addr(), kHttps,
              static_cast<std::uint64_t>(rng_.uniform(500, 5e3)),
              static_cast<std::uint64_t>(rng_.uniform(2e3, 2e5)), rng_.uniform(0.1, 3.0),
              kHttpGet);
    outbound_loop();
  });
}

}  // namespace tradeplot::hosts
