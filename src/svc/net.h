// POSIX socket plumbing for the monitor daemon and its clients.
//
// Thin, exception-throwing wrappers over the BSD socket calls with the same
// signal discipline as util/stream_retry.h: every blocking call retries
// EINTR unless a cooperative shutdown was requested, so a SIGHUP reload or a
// profiler signal never masquerades as a dead connection. Endpoints are
// spelled as strings ("unix:/run/tp.sock", "tcp:127.0.0.1:7171", ":0") so
// config files, CLI flags, and tests share one parser.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tradeplot::svc {

/// RAII file descriptor: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// A listen/connect address: "unix:PATH", "tcp:HOST:PORT", or "HOST:PORT"
/// (empty host means 127.0.0.1; port 0 lets the kernel pick).
struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kTcp;
  std::string path;  // unix
  std::string host;  // tcp
  std::uint16_t port = 0;

  /// Parses a spec string. Throws util::ConfigError on malformed input.
  [[nodiscard]] static Endpoint parse(const std::string& spec);
  [[nodiscard]] std::string to_string() const;
};

/// Creates a bound, listening socket. TCP sockets get SO_REUSEADDR; a stale
/// unix socket path is unlinked first. When `bound_port` is non-null it
/// receives the actual port (useful with port 0). Throws util::IoError.
[[nodiscard]] Fd listen_on(const Endpoint& ep, int backlog = 16,
                           std::uint16_t* bound_port = nullptr);

/// Connects to `ep`. Throws util::IoError on failure.
[[nodiscard]] Fd connect_to(const Endpoint& ep);

/// poll(2) for readability, retrying EINTR. Returns true when `fd` is
/// readable (or has an error/hangup pending — the subsequent read reports
/// it), false on timeout or when shutdown was requested mid-wait.
/// `timeout_ms < 0` blocks indefinitely.
[[nodiscard]] bool wait_readable(int fd, int timeout_ms);

/// accept(2) with EINTR retry. Returns an invalid Fd when interrupted by
/// shutdown or when the listener reports a transient error (ECONNABORTED);
/// throws util::IoError on hard listener failure.
[[nodiscard]] Fd accept_conn(int listen_fd);

/// recv(2) up to `n` bytes, retrying EINTR. Returns the byte count, or 0 for
/// orderly peer shutdown / shutdown_requested(). Throws util::IoError on
/// hard error (except ECONNRESET, which reads as 0: a vanished peer and a
/// departed peer get the same clean end-of-stream treatment).
[[nodiscard]] std::size_t recv_some(int fd, char* dst, std::size_t n);

/// send(2) until all `n` bytes are accepted, retrying EINTR and short
/// writes. Returns false when the peer is gone (EPIPE/ECONNRESET) or
/// shutdown was requested; throws util::IoError on other failures.
[[nodiscard]] bool send_all(int fd, const char* data, std::size_t n);

}  // namespace tradeplot::svc
